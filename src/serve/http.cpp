#include "serve/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <sstream>

#include "support/expect.hpp"

namespace congestlb::serve {

namespace {

constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 4 * 1024 * 1024;

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

/// Parse "METHOD /path?query HTTP/1.x" + headers + Content-Length body
/// from fd. Returns false (and sets *error_status) on anything malformed.
bool read_request(int fd, HttpRequest* req, int* error_status) {
  *error_status = 400;
  std::string buf;
  std::size_t header_end = std::string::npos;
  char chunk[4096];
  while (header_end == std::string::npos) {
    if (buf.size() > kMaxHeaderBytes) {
      *error_status = 413;
      return false;
    }
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) return false;  // peer gone or timeout
    buf.append(chunk, static_cast<std::size_t>(got));
    header_end = buf.find("\r\n\r\n");
  }
  const std::string head = buf.substr(0, header_end);
  std::string rest = buf.substr(header_end + 4);

  std::istringstream lines(head);
  std::string line;
  if (!std::getline(lines, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  {
    std::istringstream rl(line);
    std::string version;
    if (!(rl >> req->method >> req->path >> version)) return false;
    if (version.rfind("HTTP/1.", 0) != 0) return false;
    const auto q = req->path.find('?');
    if (q != std::string::npos) {
      req->query = req->path.substr(q + 1);
      req->path.resize(q);
    }
  }
  while (std::getline(lines, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) return false;
    std::string value = line.substr(colon + 1);
    const auto first = value.find_first_not_of(" \t");
    value = first == std::string::npos ? "" : value.substr(first);
    req->headers[lower(line.substr(0, colon))] = value;
  }

  std::size_t content_length = 0;
  if (const auto it = req->headers.find("content-length");
      it != req->headers.end()) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0') return false;
    content_length = static_cast<std::size_t>(v);
    if (content_length > kMaxBodyBytes) {
      *error_status = 413;
      return false;
    }
  }
  while (rest.size() < content_length) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) return false;
    rest.append(chunk, static_cast<std::size_t>(got));
  }
  req->body = rest.substr(0, content_length);
  return true;
}

}  // namespace

std::string query_param(const std::string& query, std::string_view key) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string_view pair(query.data() + pos, amp - pos);
    const auto eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return std::string(pair.substr(eq + 1));
    }
    pos = amp + 1;
  }
  return {};
}

bool HttpConn::write_all(std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t put =
        ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (put <= 0) return false;
    off += static_cast<std::size_t>(put);
  }
  return true;
}

void HttpConn::respond(const HttpResponse& res) {
  responded_ = true;
  std::ostringstream out;
  out << "HTTP/1.1 " << res.status << ' ' << status_text(res.status)
      << "\r\nContent-Type: " << res.content_type
      << "\r\nContent-Length: " << res.body.size()
      << "\r\nConnection: close\r\n\r\n"
      << res.body;
  write_all(out.str());
}

bool HttpConn::begin_sse() {
  responded_ = true;
  return write_all(
      "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n"
      "Cache-Control: no-store\r\nConnection: close\r\n\r\n");
}

bool HttpConn::send_sse(std::string_view data) {
  std::string msg = "data: ";
  msg.append(data);
  msg += "\n\n";
  return write_all(msg);
}

bool HttpConn::send_sse_comment(std::string_view text) {
  std::string msg = ": ";
  msg.append(text);
  msg += "\n\n";
  return write_all(msg);
}

bool HttpConn::server_stopping() const { return server_->stopping(); }

HttpServer::HttpServer(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  CLB_EXPECT(listen_fd_ >= 0, "http: cannot create socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    CLB_EXPECT(false, "http: cannot bind/listen (port in use?)");
  }
  socklen_t len = sizeof(addr);
  CLB_EXPECT(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                           &len) == 0,
             "http: getsockname failed");
  port_ = ntohs(addr.sin_port);
}

HttpServer::~HttpServer() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void HttpServer::serve(Handler handler) {
  CLB_EXPECT(handler != nullptr, "http: null handler");
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal: re-check the stop flag
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Bound read stalls so a half-open peer cannot pin a thread forever.
    timeval tv{/*tv_sec=*/10, /*tv_usec=*/0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      ++active_conns_;
    }
    std::thread([this, fd, &handler] {
      handle_connection(fd, handler);
      std::lock_guard<std::mutex> lock(conn_mu_);
      --active_conns_;
      conn_cv_.notify_all();
    }).detach();
  }
  // Stand-in for joining the detached connection threads: every handler is
  // bounded (recv timeout; SSE loops watch stopping()), so this converges.
  std::unique_lock<std::mutex> lock(conn_mu_);
  conn_cv_.wait(lock, [this] { return active_conns_ == 0; });
}

void HttpServer::handle_connection(int fd, const Handler& handler) {
  HttpRequest req;
  HttpConn conn(fd, this);
  int error_status = 400;
  if (read_request(fd, &req, &error_status)) {
    handler(req, conn);
    if (!conn.responded_) {
      conn.respond({404, "application/json", "{\"error\": \"not found\"}\n"});
    }
  } else {
    conn.respond({error_status, "application/json",
                  "{\"error\": \"bad request\"}\n"});
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

void HttpServer::stop() { stop_.store(true, std::memory_order_relaxed); }

}  // namespace congestlb::serve
