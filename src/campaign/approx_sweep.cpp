#include "campaign/approx_sweep.hpp"

#include <algorithm>
#include <ostream>

#include "comm/blackboard.hpp"
#include "congest/approx_mis.hpp"
#include "congest/blackboard_mis.hpp"
#include "congest/network.hpp"
#include "maxis/branch_and_bound.hpp"
#include "maxis/verify.hpp"
#include "support/json.hpp"
#include "support/math.hpp"
#include "support/table.hpp"

namespace congestlb::campaign {
namespace {

/// Largest instance the sandwich certifies with branch and bound; above
/// it opt_exact stays -1 and the clique-partition bound is the only upper
/// slice. 40 matches maxis::kBruteForceLimit, the size the exact-solver
/// test suite itself treats as routinely solvable.
constexpr std::size_t kCertifyLimit = 40;

std::size_t id_bits_of(std::size_t n) {
  return static_cast<std::size_t>(
      std::max(1, ceil_log2(std::max<std::size_t>(2, n))));
}

}  // namespace

ApproxBenchRow measure_approx_row(const graph::Graph& g, std::string name,
                                  std::size_t eps_num, std::size_t eps_den,
                                  std::uint64_t seed) {
  ApproxBenchRow row;
  row.name = std::move(name);
  row.variant =
      "kkss-" + std::to_string(eps_num) + "/" + std::to_string(eps_den);
  row.nodes = g.num_nodes();
  row.edges = g.num_edges();
  row.eps_num = eps_num;
  row.eps_den = eps_den;

  graph::Weight max_w = 1;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    max_w = std::max(max_w, g.weight(v));
  }

  congest::ApproxMisConfig acfg;
  acfg.eps_num = eps_num;
  acfg.eps_den = eps_den;
  congest::NetworkConfig ncfg;
  ncfg.seed = seed;
  ncfg.bits_per_edge = congest::approx_mis_local_bits(g.num_nodes(), max_w);
  congest::Network net(
      g,
      congest::approx_mis_factory(
          [](const graph::Graph& ball) {
            return maxis::solve_exact(ball).nodes;
          },
          acfg),
      ncfg);
  const auto stats = net.run();
  const auto members = net.selected_nodes();

  row.rounds = stats.rounds;
  row.round_bound = congest::approx_mis_round_bound(
      g.num_nodes(), g.total_weight(), eps_num, eps_den, ncfg.bits_per_edge);
  row.bits = stats.bits_sent;
  row.alg_weight = g.weight_of(members);
  row.opt_upper = maxis::clique_partition_upper_bound(g);
  if (g.num_nodes() <= kCertifyLimit) {
    row.opt_exact = maxis::solve_exact(g).weight;
  }

  bool holds = stats.all_finished && !stats.any_failed &&
               g.is_independent_set(members) && row.rounds <= row.round_bound;
  if (row.opt_exact >= 0) {
    // w * (den + num) >= OPT * den, exact integer arithmetic — and the
    // lower slice of the sandwich can never exceed the certified optimum.
    holds = holds &&
            row.alg_weight * static_cast<std::int64_t>(eps_den + eps_num) >=
                row.opt_exact * static_cast<std::int64_t>(eps_den) &&
            row.alg_weight <= row.opt_exact;
  }
  holds = holds && row.alg_weight <= row.opt_upper;
  row.holds = holds;
  return row;
}

std::vector<ApproxBenchRow> measure_blackboard_rows(const graph::Graph& g,
                                                    std::string name,
                                                    std::size_t players,
                                                    std::uint64_t seed) {
  const std::size_t n = g.num_nodes();
  const std::size_t id_bits = id_bits_of(n);
  // The board registers at least two parties even when the protocol only
  // exercises one of them (comm::Blackboard's own floor).
  const std::size_t board_players = std::max<std::size_t>(2, players);

  std::vector<ApproxBenchRow> rows;
  {
    comm::Blackboard board(board_players);
    const auto rep = congest::full_revelation_mis(g, players, board);
    ApproxBenchRow row;
    row.name = name;
    row.variant = "full-revelation";
    row.nodes = n;
    row.edges = g.num_edges();
    row.rounds = rep.blackboard_rounds;
    row.round_bound = 1;
    row.bits = rep.bits_posted;
    row.bit_budget = static_cast<std::uint64_t>(g.num_edges()) * 2 * id_bits;
    row.alg_weight = g.weight_of(rep.mis);
    row.opt_upper = maxis::clique_partition_upper_bound(g);
    // The bit leg is exact for full revelation: the protocol posts every
    // half-open incident edge exactly once, no more, no less.
    row.holds = g.is_independent_set(rep.mis) && rep.blackboard_rounds == 1 &&
                rep.bits_posted == row.bit_budget &&
                row.alg_weight <= row.opt_upper;
    rows.push_back(std::move(row));
  }
  {
    comm::Blackboard board(board_players);
    const auto rep = congest::luby_blackboard_mis(g, players, board, seed);
    ApproxBenchRow row;
    row.name = std::move(name);
    row.variant = "luby";
    row.nodes = n;
    row.edges = g.num_edges();
    row.rounds = rep.blackboard_rounds;
    row.round_bound = 2 * n;
    row.bits = rep.bits_posted;
    row.bit_budget = static_cast<std::uint64_t>(2 * n) * id_bits;
    row.alg_weight = g.weight_of(rep.mis);
    row.opt_upper = maxis::clique_partition_upper_bound(g);
    row.holds = g.is_independent_set(rep.mis) &&
                rep.blackboard_rounds <= row.round_bound &&
                rep.bits_posted <= row.bit_budget &&
                row.alg_weight <= row.opt_upper;
    rows.push_back(std::move(row));
  }
  return rows;
}

void write_approx_bench_json(std::ostream& os,
                             const std::vector<ApproxBenchRow>& rows,
                             std::string_view sweep) {
  JsonWriter jw(os);
  jw.begin_object();
  jw.kv("schema", "clb-bench-v1");
  jw.kv("benchmark", "approx");
  jw.kv("sweep", sweep);
  jw.key("entries");
  jw.begin_array();
  for (const ApproxBenchRow& r : rows) {
    jw.begin_object();
    jw.kv("name", r.name);
    jw.kv("variant", r.variant);
    jw.kv("threads", std::uint64_t{1});
    jw.kv("nodes", r.nodes);
    jw.kv("edges", r.edges);
    jw.kv("eps_num", static_cast<std::uint64_t>(r.eps_num));
    jw.kv("eps_den", static_cast<std::uint64_t>(r.eps_den));
    jw.kv("rounds", r.rounds);
    jw.kv("round_bound", r.round_bound);
    jw.kv("bits", r.bits);
    jw.kv("bit_budget", r.bit_budget);
    jw.kv("alg_weight", r.alg_weight);
    jw.kv("opt_exact", r.opt_exact);
    jw.kv("opt_upper", r.opt_upper);
    jw.kv("holds", r.holds);
    jw.kv("ns_per_round", r.ns_per_round);
    jw.end_object();
  }
  jw.end_array();
  jw.end_object();
  os << "\n";
}

void render_gap_sandwich(std::ostream& os,
                         const std::vector<ApproxBenchRow>& rows) {
  print_heading(os,
                "gap sandwich: alg weight <= OPT <= clique-partition UB");
  Table t({"instance", "variant", "n", "m", "alg W", "OPT", "UB", "rounds",
           "envelope", "bits", "budget", "holds"});
  for (const ApproxBenchRow& r : rows) {
    t.row(r.name, r.variant, r.nodes, r.edges, r.alg_weight,
          r.opt_exact >= 0 ? std::to_string(r.opt_exact) : std::string("-"),
          r.opt_upper, r.rounds, r.round_bound, r.bits,
          r.bit_budget > 0 ? std::to_string(r.bit_budget) : std::string("-"),
          r.holds);
  }
  t.print(os);
}

}  // namespace congestlb::campaign
