// Exact maximum-weight independent set by branch and bound.
//
// The workhorse oracle behind every claim verification (Claims 1-7 all
// quantify OPT on gadget instances). Branching is include/exclude on a
// (weight, degree)-priority vertex; the upper bound is a greedy clique
// cover of the remaining candidates — an IS takes at most the single
// heaviest vertex from each clique, and since the gadget graphs are unions
// of large cliques the bound is near-exact there, which is what makes exact
// solving feasible at hundreds of nodes.

#pragma once

#include <cstdint>
#include <optional>

#include "maxis/verify.hpp"

namespace congestlb::maxis {

struct BnBOptions {
  /// Abort (throw InvariantError) after this many search-tree nodes; keeps
  /// tests failing loudly instead of hanging. 0 = unlimited.
  std::uint64_t max_search_nodes = 200'000'000;
};

struct BnBResult {
  IsSolution solution;
  std::uint64_t search_nodes = 0;  ///< search-tree size actually explored
};

/// Exact solver. Requires nonnegative weights.
BnBResult solve_branch_and_bound(const graph::Graph& g, BnBOptions opts = {});

/// Exact solve through the full engine (kernelize + decompose + warm-start
/// + branch and bound; maxis/parallel_bnb.hpp) with default options.
/// Defined in parallel_bnb.cpp. Callers that want the *plain* single-tree
/// search — e.g. as the ablation baseline — use solve_branch_and_bound.
IsSolution solve_exact(const graph::Graph& g);

}  // namespace congestlb::maxis
