// Code-mappings (paper Definition 3).
//
// A code-mapping with parameters (L, M, d, Sigma) is a function
// C : Sigma^L -> Sigma^M such that distinct messages map to codewords at
// Hamming distance >= d. The paper (Theorem 4, via Arora-Barak Lemma 19.11 /
// Reed-Solomon) uses parameters (alpha, ell+alpha, ell, Sigma) with
// |Sigma| = ell+alpha, and identifies the k = |Sigma|^alpha messages with the
// indices m in [k] of the disjointness universe.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace congestlb::codes {

using Symbol = std::uint64_t;
using Word = std::vector<Symbol>;

/// Abstract code-mapping C : Sigma^L -> Sigma^M with minimum distance d.
class CodeMapping {
 public:
  virtual ~CodeMapping() = default;

  /// |Sigma|. Symbols are integers in [0, alphabet_size()).
  virtual std::uint64_t alphabet_size() const = 0;
  /// L — message length in symbols.
  virtual std::size_t message_length() const = 0;
  /// M — codeword length in symbols.
  virtual std::size_t codeword_length() const = 0;
  /// d — guaranteed minimum distance between distinct codewords.
  virtual std::size_t min_distance() const = 0;
  virtual std::string name() const = 0;

  /// Encode a message of exactly message_length() symbols, each < q.
  virtual Word encode(std::span<const Symbol> message) const = 0;

  /// Number of messages q^L (throws if it would overflow uint64).
  std::uint64_t num_messages() const;

  /// The m-th message under the base-q unranking order, m in
  /// [0, num_messages()). This is the paper's "arbitrary ordering of
  /// Sigma^alpha": index m maps to its base-q digit string.
  Word message_of_index(std::uint64_t m) const;

  /// encode(message_of_index(m)) — the paper's C(m).
  Word encode_index(std::uint64_t m) const;
};

/// Hamming distance between equal-length words.
std::size_t hamming_distance(std::span<const Symbol> a,
                             std::span<const Symbol> b);

/// Verify d(C(x), C(y)) >= min_distance() for all message pairs if
/// num_messages() <= exhaustive_limit, otherwise for `samples` random pairs
/// drawn with the given seed. Returns the smallest distance observed.
std::size_t verify_min_distance(const CodeMapping& code,
                                std::uint64_t exhaustive_limit = 4096,
                                std::size_t samples = 20000,
                                std::uint64_t seed = 1);

}  // namespace congestlb::codes
