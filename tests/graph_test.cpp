// Tests for the weighted graph substrate: construction, adjacency,
// weights, set operations, subgraphs, complement.

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph.hpp"
#include "support/expect.hpp"
#include "support/rng.hpp"

namespace congestlb::graph {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.total_weight(), 0);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(Graph, DefaultWeightsAreOne) {
  Graph g(5);
  EXPECT_EQ(g.total_weight(), 5);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.weight(v), 1);
}

TEST(Graph, CustomDefaultWeight) {
  Graph g(4, 3);
  EXPECT_EQ(g.total_weight(), 12);
}

TEST(Graph, AddNodeReturnsDenseIds) {
  Graph g(2);
  EXPECT_EQ(g.add_node(7, "x"), 2u);
  EXPECT_EQ(g.add_node(), 3u);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.weight(2), 7);
  EXPECT_EQ(g.label(2), "x");
}

TEST(Graph, AddEdgeIsSymmetricAndDeduplicated) {
  Graph g(3);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(1, 0));  // duplicate, reversed
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, SelfLoopRejected) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(1, 1), InvariantError);
}

TEST(Graph, OutOfRangeRejected) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 2), InvariantError);
  EXPECT_THROW(g.weight(5), InvariantError);
  EXPECT_THROW(g.neighbors(2), InvariantError);
  EXPECT_THROW(g.set_weight(9, 1), InvariantError);
}

TEST(Graph, NeighborsSorted) {
  Graph g(6);
  g.add_edge(3, 5);
  g.add_edge(3, 0);
  g.add_edge(3, 4);
  g.add_edge(3, 1);
  const auto& nb = g.neighbors(3);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  EXPECT_EQ(nb.size(), 4u);
  EXPECT_EQ(g.degree(3), 4u);
  EXPECT_EQ(g.max_degree(), 4u);
}

TEST(Graph, AddClique) {
  Graph g(5);
  std::vector<NodeId> c{0, 2, 4};
  g.add_clique(c);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_TRUE(g.has_edge(2, 4));
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Graph, AddBiclique) {
  Graph g(5);
  std::vector<NodeId> a{0, 1}, b{2, 3, 4};
  g.add_biclique(a, b);
  EXPECT_EQ(g.num_edges(), 6u);
  for (NodeId u : a) {
    for (NodeId v : b) EXPECT_TRUE(g.has_edge(u, v));
  }
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(2, 3));
}

TEST(Graph, WeightOfSums) {
  Graph g(4);
  g.set_weight(1, 10);
  g.set_weight(3, 5);
  std::vector<NodeId> s{1, 3};
  EXPECT_EQ(g.weight_of(s), 15);
  EXPECT_EQ(g.total_weight(), 17);
}

TEST(Graph, IndependentSetDetection) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  EXPECT_TRUE(g.is_independent_set(std::vector<NodeId>{0, 2, 3}));
  EXPECT_TRUE(g.is_independent_set(std::vector<NodeId>{}));
  EXPECT_TRUE(g.is_independent_set(std::vector<NodeId>{4}));
  EXPECT_FALSE(g.is_independent_set(std::vector<NodeId>{0, 1}));
  EXPECT_FALSE(g.is_independent_set(std::vector<NodeId>{0, 2, 4, 3}));
}

TEST(Graph, IndependentSetRejectsDuplicates) {
  Graph g(3);
  EXPECT_THROW(g.is_independent_set(std::vector<NodeId>{1, 1}),
               InvariantError);
}

TEST(Graph, InducedSubgraphKeepsStructure) {
  Graph g(6);
  g.set_weight(2, 9);
  g.set_label(2, "two");
  g.add_edge(0, 2);
  g.add_edge(2, 4);
  g.add_edge(4, 5);
  g.add_edge(1, 3);
  const std::vector<NodeId> keep{0, 2, 4};
  Graph sub = g.induced_subgraph(keep);
  ASSERT_EQ(sub.num_nodes(), 3u);
  EXPECT_EQ(sub.num_edges(), 2u);
  EXPECT_TRUE(sub.has_edge(0, 1));  // 0-2
  EXPECT_TRUE(sub.has_edge(1, 2));  // 2-4
  EXPECT_FALSE(sub.has_edge(0, 2));
  EXPECT_EQ(sub.weight(1), 9);
  EXPECT_EQ(sub.label(1), "two");
}

TEST(Graph, InducedSubgraphRespectsOrder) {
  Graph g(4);
  g.add_edge(0, 3);
  Graph sub = g.induced_subgraph(std::vector<NodeId>{3, 0});
  EXPECT_TRUE(sub.has_edge(0, 1));
}

TEST(Graph, InducedSubgraphRejectsDuplicates) {
  Graph g(3);
  EXPECT_THROW(g.induced_subgraph(std::vector<NodeId>{0, 0}), InvariantError);
}

TEST(Graph, ComplementInvolution) {
  Rng rng(5);
  Graph g(12);
  for (NodeId u = 0; u < 12; ++u) {
    g.set_weight(u, static_cast<Weight>(1 + rng.below(5)));
    for (NodeId v = u + 1; v < 12; ++v) {
      if (rng.chance(0.4)) g.add_edge(u, v);
    }
  }
  const Graph cc = g.complement().complement();
  EXPECT_TRUE(cc == g);
}

TEST(Graph, ComplementEdgeCount) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const Graph c = g.complement();
  EXPECT_EQ(c.num_edges(), 5u * 4 / 2 - 2);
  EXPECT_FALSE(c.has_edge(0, 1));
  EXPECT_TRUE(c.has_edge(0, 2));
}

TEST(Graph, EqualityIgnoresLabels) {
  Graph a(2), b(2);
  a.add_edge(0, 1);
  b.add_edge(0, 1);
  a.set_label(0, "foo");
  EXPECT_TRUE(a == b);
  b.set_weight(0, 2);
  EXPECT_FALSE(a == b);
}

TEST(Graph, EdgeListSortedAndComplete) {
  Graph g(5);
  g.add_edge(4, 0);
  g.add_edge(2, 1);
  g.add_edge(0, 1);
  const auto edges = edge_list(g);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
  for (auto [u, v] : edges) EXPECT_LT(u, v);
}

// Property sweep: random graphs keep degree/edge-count invariants.
class GraphRandomProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphRandomProperty, HandshakeLemmaAndAdjacencyConsistency) {
  Rng rng(GetParam());
  const std::size_t n = 2 + rng.below(40);
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.chance(0.3)) g.add_edge(u, v);
    }
  }
  std::size_t degree_sum = 0;
  for (NodeId v = 0; v < n; ++v) degree_sum += g.degree(v);
  EXPECT_EQ(degree_sum, 2 * g.num_edges());
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId nb : g.neighbors(v)) {
      EXPECT_TRUE(g.has_edge(nb, v));
    }
  }
  EXPECT_EQ(edge_list(g).size(), g.num_edges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphRandomProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace congestlb::graph
