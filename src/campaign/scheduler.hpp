// Work-stealing DAG executor for campaign jobs.
//
// Differs from support/thread_pool.hpp on purpose: the engine pool runs a
// fixed shard loop per phase, while campaigns execute a *dependency graph*
// of irregular jobs (a branch-and-bound solve can be 1000x a property
// check). Each worker owns a deque; it pushes newly-ready jobs to its back
// and pops from its back (LIFO keeps a gadget's dependents hot), and an
// idle worker steals from the *front* of a victim's deque (FIFO steals
// take the oldest, largest-subtree work — the classic Blumofe-Leiserson
// discipline, here with a mutex per deque instead of a lock-free Chase-Lev
// since jobs are milliseconds, not nanoseconds).
//
// Scheduling freedom never shows in results: jobs are pure functions of
// their pre-bound seeds (campaign/campaign.cpp derives every seed from the
// spec hash and the job's structural position), so which worker ran what,
// and in which steal order, is unobservable in the output — the property
// the determinism tests pin down across 1/2/8 workers.
//
// A budget (`max_executed`) supports kill simulation and bounded runs:
// once the budget is exhausted (or a job throws), the scheduler flips into
// abandon mode and drains remaining jobs without running them, so run()
// always terminates with a consistent executed/abandoned partition.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace congestlb::campaign {

class WorkStealingScheduler {
 public:
  /// fn(worker) — worker index in [0, num_threads), usable as a metrics
  /// shard. Must not touch non-dependency-ordered shared state.
  using JobFn = std::function<void(std::size_t worker)>;

  explicit WorkStealingScheduler(std::size_t num_threads);

  WorkStealingScheduler(const WorkStealingScheduler&) = delete;
  WorkStealingScheduler& operator=(const WorkStealingScheduler&) = delete;

  std::size_t num_threads() const { return num_threads_; }

  /// Register a job; returns its id. All jobs and dependencies must be
  /// added before run().
  std::size_t add_job(JobFn fn);

  /// `job` may only start after `prerequisite` finished (or was abandoned).
  void add_dependency(std::size_t job, std::size_t prerequisite);

  struct Report {
    std::size_t executed = 0;   ///< jobs whose fn actually ran
    std::size_t abandoned = 0;  ///< drained without running (budget/error)
    /// Jobs popped from a victim's deque rather than the worker's own.
    /// Scheduling-dependent by nature: observability only, never part of
    /// any determinism contract.
    std::uint64_t steals = 0;
    /// ran[j] — whether job j executed. Indexed by add_job id.
    std::vector<std::uint8_t> ran;
  };

  /// Execute the DAG; blocks until every job is executed or abandoned.
  /// max_executed > 0 stops issuing new jobs after that many executed
  /// (in-flight jobs finish; the rest are abandoned). The first job
  /// exception is rethrown here after the drain. Single-shot: run() may
  /// only be called once per scheduler.
  ///
  /// Exception safety: a throwing job flips the scheduler into abandon
  /// mode (never std::terminate), and the spawned workers are joined via
  /// RAII even if the coordinator loop itself throws — run() never leaks a
  /// thread, whatever unwinds through it.
  Report run(std::size_t max_executed = 0);

 private:
  struct Job {
    JobFn fn;
    std::vector<std::size_t> dependents;
    std::size_t num_deps = 0;
  };

  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::size_t> q;
  };

  void worker_loop(std::size_t w);
  bool pop_or_steal(std::size_t w, std::size_t* job);
  void execute(std::size_t w, std::size_t job);
  void make_ready(std::size_t w, std::size_t job);

  std::size_t num_threads_;
  std::vector<Job> jobs_;
  std::unique_ptr<WorkerQueue[]> queues_;
  std::vector<std::atomic<std::size_t>> deps_left_;
  std::vector<std::uint8_t> ran_;

  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::size_t> done_{0};
  std::atomic<std::size_t> issued_{0};
  std::atomic<bool> abandon_{false};
  /// Emergency drain: set by the RAII joiner when run() unwinds past the
  /// coordinator loop, so workers exit as soon as they run out of poppable
  /// work instead of waiting for a done_ count that may never arrive.
  std::atomic<bool> halt_{false};
  std::size_t max_executed_ = 0;
  bool started_ = false;

  std::mutex error_mu_;
  std::exception_ptr first_error_;
};

}  // namespace congestlb::campaign
