// Console table rendering for bench output.
//
// Every bench binary prints "paper claim vs measured" rows; Table keeps them
// aligned and can also emit CSV so EXPERIMENTS.md tables are regenerable.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace congestlb {

/// A simple right-aligned console table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: stringify an arbitrary mix of cell values.
  template <typename... Ts>
  void row(const Ts&... vals) {
    add_row({cell(vals)...});
  }

  /// Render with box-drawing separators.
  void print(std::ostream& os) const;

  /// Render as CSV (RFC-4180-style quoting for commas/quotes).
  void print_csv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

  static std::string cell(const std::string& s) { return s; }
  static std::string cell(const char* s) { return s; }
  static std::string cell(bool b) { return b ? "yes" : "no"; }
  static std::string cell(double d);
  template <typename T>
  static std::string cell(T v)
    requires std::is_integral_v<T>
  {
    return std::to_string(v);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print an underlined section heading (used by benches between tables).
void print_heading(std::ostream& os, const std::string& title);

/// Format a double with `digits` significant decimals (fixed notation).
std::string fmt_double(double v, int digits = 3);

}  // namespace congestlb
