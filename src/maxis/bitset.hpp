// A fixed-capacity dynamic bitset tuned for the branch-and-bound solver:
// word-parallel and/andnot, first-set-bit scan, popcount. Kept header-only
// and minimal on purpose (no bounds resizing; capacity fixed at
// construction).
//
// The `words` namespace below exposes the same operations on raw
// 64-bit-word rows. The branch-and-bound solver keeps its adjacency matrix
// and per-depth candidate sets as rows of one flat word arena and drives
// the search entirely through these kernels — no per-node Bitset copies,
// no allocations inside the search.

#pragma once

#include <cstdint>
#include <vector>

#include "support/expect.hpp"
#include "support/simd.hpp"

namespace congestlb::maxis {

/// Word-row kernels: every function operates on rows of `nw` 64-bit words
/// representing a fixed-capacity bitset of n <= 64*nw bits. Callers
/// guarantee bounds; these are the hot inner loops of the exact solver.
///
/// Rows of at least kSimdDispatchWords words route through the runtime
/// SIMD dispatch table (support/simd.hpp, CLB_SIMD override); shorter rows
/// keep the inline scalar loop — below one AVX-512 register's worth the
/// indirect call costs more than it saves. Both paths are exact bitwise
/// ops, so results are identical by construction (enforced by
/// tests/simd_test.cpp).
namespace words {

/// Dispatch threshold in words (512 bits — one AVX-512 register).
inline constexpr std::size_t kSimdDispatchWords = 8;

/// Words needed for an n-bit row.
inline std::size_t row_words(std::size_t n) { return (n + 63) / 64; }

inline void set_bit(std::uint64_t* row, std::size_t i) {
  row[i >> 6] |= 1ULL << (i & 63);
}

inline void clear_bit(std::uint64_t* row, std::size_t i) {
  row[i >> 6] &= ~(1ULL << (i & 63));
}

inline bool test_bit(const std::uint64_t* row, std::size_t i) {
  return (row[i >> 6] >> (i & 63)) & 1ULL;
}

inline void copy(std::uint64_t* dst, const std::uint64_t* src,
                 std::size_t nw) {
  for (std::size_t w = 0; w < nw; ++w) dst[w] = src[w];
}

inline void fill_prefix(std::uint64_t* row, std::size_t n, std::size_t nw) {
  for (std::size_t w = 0; w < nw; ++w) row[w] = ~0ULL;
  if (n & 63) row[nw - 1] = (1ULL << (n & 63)) - 1;
}

/// dst = a & b (dst may alias a or b).
inline void and_rows(std::uint64_t* dst, const std::uint64_t* a,
                     const std::uint64_t* b, std::size_t nw) {
  if (nw >= kSimdDispatchWords) {
    simd::kernels().and_rows(dst, a, b, nw);
    return;
  }
  for (std::size_t w = 0; w < nw; ++w) dst[w] = a[w] & b[w];
}

/// dst = a & ~b (dst may alias a or b).
inline void and_not_rows(std::uint64_t* dst, const std::uint64_t* a,
                         const std::uint64_t* b, std::size_t nw) {
  if (nw >= kSimdDispatchWords) {
    simd::kernels().and_not_rows(dst, a, b, nw);
    return;
  }
  for (std::size_t w = 0; w < nw; ++w) dst[w] = a[w] & ~b[w];
}

/// Index of the lowest set bit; `none` if the row is empty.
inline std::size_t first_bit(const std::uint64_t* row, std::size_t nw,
                             std::size_t none) {
  if (nw >= kSimdDispatchWords) return simd::kernels().first_bit(row, nw, none);
  for (std::size_t w = 0; w < nw; ++w) {
    if (row[w]) {
      return w * 64 + static_cast<std::size_t>(__builtin_ctzll(row[w]));
    }
  }
  return none;
}

inline std::size_t popcount(const std::uint64_t* row, std::size_t nw) {
  if (nw >= kSimdDispatchWords) return simd::kernels().popcount(row, nw);
  std::size_t c = 0;
  for (std::size_t w = 0; w < nw; ++w) {
    c += static_cast<std::size_t>(__builtin_popcountll(row[w]));
  }
  return c;
}

/// popcount(a & b) without materializing the intersection — the clique
/// cover's "how many candidates does this vertex dominate" probe.
inline std::size_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t nw) {
  if (nw >= kSimdDispatchWords) return simd::kernels().and_popcount(a, b, nw);
  std::size_t c = 0;
  for (std::size_t w = 0; w < nw; ++w) {
    c += static_cast<std::size_t>(__builtin_popcountll(a[w] & b[w]));
  }
  return c;
}

}  // namespace words

class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(std::size_t n) : n_(n), words_((n + 63) / 64, 0) {}

  std::size_t capacity() const { return n_; }

  void set(std::size_t i) {
    CLB_EXPECT(i < n_, "Bitset::set out of range");
    words_[i >> 6] |= 1ULL << (i & 63);
  }
  void reset(std::size_t i) {
    CLB_EXPECT(i < n_, "Bitset::reset out of range");
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }
  bool test(std::size_t i) const {
    CLB_EXPECT(i < n_, "Bitset::test out of range");
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  bool any() const {
    for (std::uint64_t w : words_) {
      if (w) return true;
    }
    return false;
  }

  std::size_t count() const {
    std::size_t c = 0;
    for (std::uint64_t w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

  /// Index of the lowest set bit; capacity() if none.
  std::size_t first() const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      if (words_[wi]) return wi * 64 + static_cast<std::size_t>(__builtin_ctzll(words_[wi]));
    }
    return n_;
  }

  Bitset& operator&=(const Bitset& other) {
    CLB_EXPECT(n_ == other.n_, "Bitset size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }

  /// *this &= ~other
  Bitset& and_not(const Bitset& other) {
    CLB_EXPECT(n_ == other.n_, "Bitset size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
    return *this;
  }

  friend Bitset operator&(Bitset a, const Bitset& b) { return a &= b; }

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace congestlb::maxis
