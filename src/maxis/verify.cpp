#include "maxis/verify.hpp"

#include <algorithm>
#include <cstdint>

#include "support/expect.hpp"

namespace congestlb::maxis {

IsSolution checked(const graph::Graph& g, std::vector<NodeId> nodes) {
  std::sort(nodes.begin(), nodes.end());
  CLB_EXPECT(g.is_independent_set(nodes), "checked: not an independent set");
  IsSolution sol;
  sol.weight = g.weight_of(nodes);
  sol.nodes = std::move(nodes);
  return sol;
}

double approximation_ratio(Weight got, Weight opt) {
  CLB_EXPECT(opt > 0, "approximation_ratio: OPT must be positive");
  CLB_EXPECT(got >= 0 && got <= opt, "approximation_ratio: got outside [0, OPT]");
  return static_cast<double>(got) / static_cast<double>(opt);
}

Weight clique_partition_upper_bound(const graph::Graph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (g.degree(a) != g.degree(b)) return g.degree(a) > g.degree(b);
    return a < b;
  });
  std::vector<std::uint8_t> assigned(n, 0);
  Weight bound = 0;
  std::vector<NodeId> clique;
  for (const NodeId seed : order) {
    if (assigned[seed]) continue;
    // Grow a clique from seed among its unassigned neighbors: candidate u
    // joins if adjacent to every current member. Neighbor lists are sorted,
    // so membership checks use has_edge.
    clique.assign(1, seed);
    assigned[seed] = 1;
    Weight best = g.weight(seed);
    g.for_each_neighbor(seed, [&](const NodeId u) {
      if (assigned[u]) return;
      for (std::size_t i = 1; i < clique.size(); ++i) {
        if (!g.has_edge(u, clique[i])) return;
      }
      clique.push_back(u);
      assigned[u] = 1;
      best = std::max(best, g.weight(u));
    });
    bound += best;
  }
  return bound;
}

}  // namespace congestlb::maxis
