#include "congest/algorithms/luby_mis.hpp"

#include <vector>

#include "congest/algorithms/mis_common.hpp"
#include "support/expect.hpp"
#include "support/math.hpp"

namespace congestlb::congest {

namespace {

class LubyMisProgram final : public NodeProgram {
 public:
  void round(const NodeInfo& info, const Inbox& inbox, Outbox& outbox,
             Rng& rng) override {
    if (neighbor_state_.empty() && !info.neighbors.empty()) {
      neighbor_state_.assign(info.neighbors.size(), IsState::kUndecided);
      neighbor_key_.assign(info.neighbors.size(), 0);
    }
    if (key_bits_ == 0) {
      key_bits_ = 2 * static_cast<std::size_t>(
                          std::max(1, ceil_log2(std::max<std::size_t>(2, info.n)))) +
                  2;
      // Keep 2 bits for the state field.
      if (key_bits_ + 2 > info.bits_per_edge) {
        key_bits_ = info.bits_per_edge > 2 ? info.bits_per_edge - 2 : 1;
      }
      key_bits_ = std::min<std::size_t>(key_bits_, 62);
    }

    for (std::size_t s = 0; s < inbox.size(); ++s) {
      if (!inbox[s]) continue;
      MessageReader r(*inbox[s]);
      neighbor_state_[s] = static_cast<IsState>(r.get(2));
      neighbor_key_[s] = r.get(key_bits_);
    }

    if (state_ == IsState::kUndecided) {
      for (IsState s : neighbor_state_) {
        if (s == IsState::kIn) {
          state_ = IsState::kOut;
          break;
        }
      }
    }
    // Evaluate the previous phase's lottery: we win if our announced key
    // strictly beats every undecided neighbor's (key, id) pair.
    if (state_ == IsState::kUndecided && heard_once_) {
      bool win = true;
      for (std::size_t s = 0; s < neighbor_state_.size(); ++s) {
        if (neighbor_state_[s] != IsState::kUndecided) continue;
        const auto their = std::pair(neighbor_key_[s], info.neighbors[s]);
        const auto mine = std::pair(current_key_, info.id);
        if (their >= mine) {
          win = false;
          break;
        }
      }
      if (win) state_ = IsState::kIn;
    }
    heard_once_ = true;

    const bool neighbors_decided = [&] {
      for (IsState s : neighbor_state_) {
        if (s == IsState::kUndecided) return false;
      }
      return true;
    }();
    if (state_ != IsState::kUndecided && neighbors_decided &&
        announced_final_) {
      finished_ = true;
      return;
    }
    if (state_ == IsState::kUndecided) {
      current_key_ = rng.next() & ((1ULL << key_bits_) - 1);
    }
    Message m = std::move(MessageWriter()
                              .put(static_cast<std::uint64_t>(state_), 2)
                              .put(current_key_, key_bits_))
                    .finish();
    outbox.send_all(m);
    if (state_ != IsState::kUndecided) announced_final_ = true;
  }

  bool finished() const override { return finished_; }
  std::int64_t output() const override { return state_ == IsState::kIn ? 1 : 0; }

 private:
  IsState state_ = IsState::kUndecided;
  std::vector<IsState> neighbor_state_;
  std::vector<std::uint64_t> neighbor_key_;
  std::uint64_t current_key_ = 0;
  std::size_t key_bits_ = 0;
  bool heard_once_ = false;
  bool announced_final_ = false;
  bool finished_ = false;
};

}  // namespace

ProgramFactory luby_mis_factory() {
  return [](NodeId, const NodeInfo&) {
    return std::make_unique<LubyMisProgram>();
  };
}

}  // namespace congestlb::congest
