#include "lowerbound/unweighted.hpp"

#include "support/expect.hpp"

namespace congestlb::lb {

UnweightedExpansion to_unweighted(const graph::Graph& g) {
  UnweightedExpansion ex;
  ex.copies_of.resize(g.num_nodes());
  std::size_t total = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const graph::Weight w = g.weight(v);
    CLB_EXPECT(w >= 1, "to_unweighted requires weights >= 1");
    for (graph::Weight c = 0; c < w; ++c) {
      ex.copies_of[v].push_back(total++);
    }
  }
  ex.graph = graph::Graph(total);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (std::size_t c = 0; c < ex.copies_of[v].size(); ++c) {
      ex.graph.set_label(ex.copies_of[v][c],
                         g.label(v).empty()
                             ? std::to_string(v) + "#" + std::to_string(c)
                             : g.label(v) + "#" + std::to_string(c));
    }
  }
  for (auto [u, v] : graph::edge_list(g)) {
    ex.graph.add_biclique(ex.copies_of[u], ex.copies_of[v]);
  }
  return ex;
}

std::vector<graph::NodeId> UnweightedExpansion::expand_set(
    const std::vector<graph::NodeId>& weighted_set) const {
  std::vector<graph::NodeId> out;
  for (graph::NodeId v : weighted_set) {
    CLB_EXPECT(v < copies_of.size(), "expand_set: node out of range");
    out.insert(out.end(), copies_of[v].begin(), copies_of[v].end());
  }
  return out;
}

}  // namespace congestlb::lb
