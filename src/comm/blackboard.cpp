#include "comm/blackboard.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/expect.hpp"

namespace congestlb::comm {

Blackboard::Blackboard(std::size_t num_players)
    : bits_by_player_(num_players, 0) {
  CLB_EXPECT(num_players >= 2, "a blackboard needs at least two players");
}

void Blackboard::post(std::size_t player, std::vector<std::byte> data,
                      std::size_t bits, std::string tag) {
  CLB_EXPECT(player < num_players(), "blackboard: player index out of range");
  CLB_EXPECT(bits <= 8 * data.size(), "blackboard: declared bits exceed payload");
  CLB_EXPECT(bits > 0, "blackboard: empty writes are not charged, don't post them");
  bits_by_player_[player] += bits;
  total_bits_ += bits;
  if (tracer_) {
    tracer_->emit({bits, static_cast<std::uint32_t>(entries_.size()),
                   static_cast<std::uint32_t>(player),
                   obs::TraceEvent::kNone, obs::EventKind::kBlackboardPost});
  }
  if (posts_metric_) {
    posts_metric_->add(1);
    bits_metric_->add(bits);
  }
  entries_.push_back(BoardEntry{player, std::move(data), bits, std::move(tag)});
}

void Blackboard::attach_observability(obs::Tracer* tracer,
                                      obs::MetricsRegistry* metrics) {
  tracer_ = (tracer != nullptr && tracer->enabled()) ? tracer : nullptr;
  if (metrics != nullptr) {
    posts_metric_ = &metrics->counter("blackboard.posts");
    bits_metric_ = &metrics->counter("blackboard.bits");
  } else {
    posts_metric_ = nullptr;
    bits_metric_ = nullptr;
  }
}

void Blackboard::post_uint(std::size_t player, std::uint64_t value,
                           std::size_t bits, std::string tag) {
  CLB_EXPECT(bits >= 1 && bits <= 64, "post_uint: bits must be in [1,64]");
  if (bits < 64) {
    CLB_EXPECT(value < (1ULL << bits), "post_uint: value does not fit in bits");
  }
  std::vector<std::byte> data((bits + 7) / 8);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>((value >> (8 * i)) & 0xff);
  }
  post(player, std::move(data), bits, std::move(tag));
}

void Blackboard::post_bits(std::size_t player,
                           const std::vector<std::uint8_t>& bits01,
                           std::string tag) {
  CLB_EXPECT(!bits01.empty(), "post_bits: empty bit vector");
  std::vector<std::byte> data((bits01.size() + 7) / 8);
  for (std::size_t i = 0; i < bits01.size(); ++i) {
    CLB_EXPECT(bits01[i] <= 1, "post_bits: entries must be 0 or 1");
    if (bits01[i]) {
      data[i / 8] |= static_cast<std::byte>(1u << (i % 8));
    }
  }
  post(player, std::move(data), bits01.size(), std::move(tag));
}

std::uint64_t Blackboard::read_uint(const BoardEntry& entry) {
  CLB_EXPECT(entry.bits <= 64, "read_uint: entry wider than 64 bits");
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < entry.data.size() && i < 8; ++i) {
    value |= static_cast<std::uint64_t>(entry.data[i]) << (8 * i);
  }
  if (entry.bits < 64) value &= (1ULL << entry.bits) - 1;
  return value;
}

std::vector<std::uint8_t> Blackboard::read_bits(const BoardEntry& entry) {
  std::vector<std::uint8_t> bits01(entry.bits);
  for (std::size_t i = 0; i < entry.bits; ++i) {
    bits01[i] = (static_cast<unsigned>(entry.data[i / 8]) >> (i % 8)) & 1u;
  }
  return bits01;
}

std::size_t Blackboard::bits_by(std::size_t player) const {
  CLB_EXPECT(player < num_players(), "blackboard: player index out of range");
  return bits_by_player_[player];
}

}  // namespace congestlb::comm
