// Minimal streaming JSON writer for machine-readable benchmark artifacts.
//
// Benches emit BENCH_*.json files (see docs/PERFORMANCE.md) so the perf
// trajectory of the simulator can be tracked across PRs by scripts instead
// of by scraping stdout tables. The writer handles nesting, commas, and
// string escaping; values are emitted in insertion order.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace congestlb {

class JsonWriter {
 public:
  /// Writes to `os`; the stream must outlive the writer. Emits pretty-printed
  /// JSON with two-space indentation.
  explicit JsonWriter(std::ostream& os);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit the key of the next object member.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v);
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v);
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }

  /// key(k) followed by value(v).
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

 private:
  void separate();  ///< comma/newline/indent before a new element
  void indent();
  void write_escaped(std::string_view s);

  std::ostream* os_;
  /// One entry per open container: true once the container has an element.
  std::vector<bool> has_element_;
  bool after_key_ = false;
};

}  // namespace congestlb
