// Graph serialization: a plain edge-list text format (round-trippable) and
// Graphviz DOT output used to regenerate the paper's Figures 1-6.

#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "graph/graph.hpp"

namespace congestlb::graph {

/// Write as text:
///   line 1: "n <num_nodes>"
///   then    "w <id> <weight>"      for every non-unit weight
///   then    "e <u> <v>"            for every edge (u < v)
void write_edge_list(std::ostream& os, const Graph& g);

/// Parse the format produced by write_edge_list. Throws InvariantError on
/// malformed input.
Graph read_edge_list(std::istream& is);

/// Options for DOT rendering.
struct DotOptions {
  /// Cluster name per node (nodes with equal values are grouped into a DOT
  /// subgraph cluster); empty string means no cluster.
  std::map<NodeId, std::string> cluster;
  /// Show node weights in the label.
  bool show_weights = true;
  std::string graph_name = "G";
};

/// Graphviz DOT output (undirected). Node labels come from Graph::label when
/// set, otherwise the node id.
void write_dot(std::ostream& os, const Graph& g, const DotOptions& opts = {});

}  // namespace congestlb::graph
