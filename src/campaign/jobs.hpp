// Campaign job bodies: gadget builds, exact solves, claim checks.
//
// Every job here is a pure function of (resolved parameters, seed): the
// instance draws, pair samples, and solver calls consume only an Rng built
// from the pre-bound seed, so a job's outputs are identical no matter
// which scheduler worker runs it, in what order, or on which run of the
// process. That purity is what makes the content-addressed cache sound
// (equal canonical inputs => equal outputs) and the run manifests
// bit-identical across worker counts.
//
// The check semantics are ports of the bench sweeps:
//   - P1/P2/P3 mirror bench_properties (witness independence, cross-copy
//     matching >= ell, <= alpha shared positions);
//   - Claim12/Claim35 mirror bench_gap_linear's measure(): max exact OPT
//     over `trials` instance draws per branch, compared against the
//     closed-form bounds of Claims 1-5.

#pragma once

#include <cstdint>
#include <string>

#include "campaign/manifest.hpp"
#include "graph/graph.hpp"
#include "lowerbound/linear_family.hpp"
#include "lowerbound/params.hpp"

namespace congestlb {
class DeadlineToken;
}

namespace congestlb::campaign {

/// A GridPoint with k resolved to the concrete universe size the gadget
/// will be built with (the paper default when the spec left k empty).
struct ResolvedPoint {
  std::size_t ell = 0;
  std::size_t alpha = 0;
  std::size_t t = 0;
  std::size_t k = 0;

  /// "ell=2,alpha=1,t=2,k=3" — the canonical point id used in job ids and
  /// cache keys.
  std::string canonical() const;
};

/// Resolve a spec point (throws InvariantError if the shape is invalid,
/// e.g. the code capacity cannot cover the requested k).
ResolvedPoint resolve_point(const GridPoint& p);

/// The gadget parameters for a resolved point (Reed-Solomon default code).
lb::GadgetParams gadget_params(const ResolvedPoint& p);

/// Canonical cache-key string for the fixed linear construction at this
/// point — includes the code name, so an ablation code change invalidates.
std::string gadget_cache_key(const ResolvedPoint& p);

/// Every measured quantity a job can produce; stages fill the fields they
/// define and leave the rest at their defaults. Integer-valued on purpose:
/// records round-trip exactly through manifests.
struct PointOutcome {
  // build:
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;
  std::uint64_t cut = 0;
  // properties:
  std::uint64_t checked = 0;       ///< witnesses (P1) or sampled pairs (P2/P3)
  std::uint64_t min_matching = 0;  ///< P2
  std::uint64_t max_shared = 0;    ///< P3
  // solves / claims:
  std::int64_t opt = -1;        ///< solve stages: max OPT over trials
  std::int64_t yes_opt = -1;    ///< claim checks
  std::int64_t no_opt = -1;
  std::int64_t bound_yes = 0;
  std::int64_t bound_no = 0;
  // algorithm sweeps (kApproxSweep / kBlackboardSweep); alg_weight < 0
  // means "not an algorithm record" and keeps these out of manifests:
  std::int64_t alg_weight = -1;   ///< weight the algorithm selected
  std::uint64_t rounds = 0;       ///< measured rounds
  std::uint64_t round_bound = 0;  ///< published round envelope
  std::uint64_t bits = 0;         ///< measured bits sent / posted
  bool holds = false;  ///< check stages only
  /// A deadline cancelled part of the work that produced this outcome: the
  /// values are certified lower bounds, not necessarily the true OPTs.
  /// Approximate outcomes are never cached and never honored on resume.
  bool approximate = false;
};

/// Build the fixed construction for a point from scratch (the cold path).
lb::LinearConstruction build_gadget(const ResolvedPoint& p,
                                    const std::string& cached_edge_list);

/// Serialize a fixed graph for the cache (graph/io edge-list text, which
/// is canonical: sorted "e u v" lines with u < v).
std::string serialize_graph(const graph::Graph& g);

/// Cache payload for a built gadget: a "linear <nodes> <edges> <cut>"
/// header line followed by the edge-list text. The header lets a warm
/// build job record its counts without parsing the (possibly large) graph
/// body — rehydration is deferred until a dependent actually needs the
/// graph, which a fully warm run never does.
std::string serialize_gadget(const lb::LinearConstruction& c);

struct GadgetHeader {
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;
  std::uint64_t cut = 0;
};

/// Parse the header line of a serialize_gadget payload (throws
/// InvariantError on a malformed payload).
GadgetHeader parse_gadget_header(const std::string& payload);

/// Rehydrate the full construction from a serialize_gadget payload (strips
/// the header, parses the edge list, and re-binds it to the point's
/// parameters with node/edge-count verification).
lb::LinearConstruction rehydrate_gadget(const ResolvedPoint& p,
                                        const std::string& payload);

/// Outcome of a build (node/edge/cut counts for the manifest record).
PointOutcome build_outcome(const lb::LinearConstruction& c);

/// P1/P2/P3 on a built construction. `seed` drives the P2/P3 pair
/// sampling; P1 is exhaustive over all k witnesses.
PointOutcome check_property(CheckKind kind, const lb::LinearConstruction& c,
                            std::uint64_t seed, std::size_t sample_budget);

/// Result of solving one promise branch. When a deadline fired, `opt` is
/// the best certified incumbent found before cancellation (a lower bound on
/// the true max) and `approximate` is set.
struct SolveResult {
  std::int64_t opt = -1;
  bool approximate = false;
};

/// Max exact OPT over `trials` instance draws of one promise branch
/// (trial seeds hash-derived from `seed`). Densities match
/// bench_gap_linear: 0.3 intersecting, 0.4 disjoint. `deadline` (may be
/// null) cooperatively cancels the underlying engine searches; once it has
/// fired, remaining trials are skipped and the result is approximate.
SolveResult solve_branch(const lb::LinearConstruction& c, bool yes_branch,
                         std::size_t trials, std::uint64_t seed,
                         const DeadlineToken* deadline = nullptr);

/// Claim verdict from solver outcomes + the closed-form bounds (no graph
/// needed — usable when both solves were replayed from a manifest).
PointOutcome check_claim(CheckKind kind, const ResolvedPoint& p,
                         std::int64_t yes_opt, std::int64_t no_opt);

/// Algorithm-sweep verdict (kApproxSweep / kBlackboardSweep): run the
/// upper-bound algorithm on the point's fixed gadget graph and evaluate
/// its full approximation contract — the gap sandwich plus round and bit
/// envelopes (campaign/approx_sweep.hpp). `opt` records the certified
/// optimum (or -1), `bound_no` the clique-partition upper bound.
PointOutcome check_algorithm(CheckKind kind, const lb::LinearConstruction& c,
                             std::uint64_t seed, std::size_t eps_num,
                             std::size_t eps_den);

}  // namespace congestlb::campaign
