#include "congest/network.hpp"

#include <algorithm>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/expect.hpp"
#include "support/simd.hpp"

namespace congestlb::congest {

namespace {

/// Trace events carry 32-bit node ids; simulated networks stay far below.
inline std::uint32_t tid(NodeId v) { return static_cast<std::uint32_t>(v); }
inline std::uint32_t trnd(std::size_t round) {
  return static_cast<std::uint32_t>(round);
}

}  // namespace

// ------------------------------------------------------------------ Outbox --

Outbox::Outbox(std::size_t num_neighbors, std::size_t cap_bits)
    : own_kind_(num_neighbors, 0),
      own_msgs_(num_neighbors),
      kind_(own_kind_.data()),
      msgs_(own_msgs_.data()),
      count_(num_neighbors),
      cap_bits_(cap_bits) {}

void Outbox::send(std::size_t slot, const Message& msg) {
  CLB_EXPECT(slot < count_, "Outbox: neighbor slot out of range");
  CLB_EXPECT(msg.bits > 0, "Outbox: refusing to send an empty message");
  // The model constraint is checked at send time, faults or not: a program
  // that oversends is buggy even if the message would be lost.
  CLB_EXPECT(msg.bits <= cap_bits_,
             "CONGEST bandwidth exceeded: message of " +
                 std::to_string(msg.bits) + " bits on a " +
                 std::to_string(cap_bits_) + "-bit edge");
  if (bcast_) {
    // Broadcast (hybrid) mode: one slot backs all neighbors; every send in
    // a round must agree byte-for-byte.
    if (kind_[0] != 0) {
      CLB_EXPECT(msgs_[0].bits == msg.bits && msgs_[0].data == msg.data,
                 "implicit-block topology requires identical messages to "
                 "all neighbors in a round");
    } else {
      msgs_[0] = msg;
      kind_[0] = 1;
    }
    ++sent_count_;
    return;
  }
  CLB_EXPECT(kind_[slot] == 0, "Outbox: one message per neighbor per round");
  msgs_[slot] = msg;  // copy-assign reuses the arena slot's capacity
  kind_[slot] = 1;
}

void Outbox::send_all(const Message& msg) {
  if (bcast_) {
    if (count_ == 0) return;
    send(0, msg);
    sent_count_ = count_;
    return;
  }
  for (std::size_t i = 0; i < count_; ++i) send(i, msg);
}

// ----------------------------------------------------------------- Network --

Network::Network(const graph::Graph& g, const ProgramFactory& factory,
                 NetworkConfig config)
    : topo_(Topology::build(g)),
      hybrid_(topo_->has_implicit()),
      config_(std::move(config)),
      pool_(config_.num_threads == 0 ? 1 : config_.num_threads) {
  CLB_EXPECT(topo_->n > 0, "Network: empty graph");
  bits_per_edge_ = config_.bits_per_edge != 0
                       ? config_.bits_per_edge
                       : congest_bandwidth_bits(topo_->n);
  CLB_EXPECT(bits_per_edge_ >= 1, "Network: bandwidth must be positive");
  if (config_.faults.enabled()) {
    CLB_EXPECT(!hybrid_,
               "fault injection requires a materialized topology (implicit "
               "blocks deliver by reference; per-edge faults need per-edge "
               "slots)");
    injector_.emplace(config_.faults, topo_->n, config_.seed);
  }
  if (hybrid_) {
    // Per-edge trace events and per-delivery metric observations are
    // O(total degree) — the very cost implicit blocks exist to avoid.
    CLB_EXPECT(config_.tracer == nullptr || !config_.tracer->enabled(),
               "tracing requires a materialized topology");
    CLB_EXPECT(config_.metrics == nullptr,
               "engine metrics require a materialized topology");
  }

  const std::size_t n = topo_->n;
  if (hybrid_) {
    // Broadcast arenas: one slot per *node*. The per-directed-slot arenas
    // stay empty — with 10^9+ block-implied slots they must never exist.
    bc_out_kind_.assign(n, 0);
    bc_out_msgs_.resize(n);
    bc_in_kind_.assign(n, 0);
    bc_in_msgs_.resize(n);
    dbits_node_.assign(n, 0);
    total_degree_.resize(n);
    for (NodeId v = 0; v < n; ++v) total_degree_[v] = topo_->total_degree(v);
  } else {
    const std::size_t slots = topo_->neighbors.size();  // 2m directed slots
    in_kind_.assign(slots, 0);
    in_msgs_.resize(slots);
    out_kind_.assign(slots, 0);
    out_msgs_.resize(slots);
    echo_kind_.assign(slots, 0);
    echo_msgs_.resize(slots);
    dbits_.assign(slots, 0);
    in_bits_.assign(slots, 0);
  }
  was_crashed_.assign(n, 0);
  crashed_now_.assign(n, 0);

  num_shards_ = pool_.num_threads();
  shard_range_ = edge_tiled_shards(*topo_, num_shards_);
  shard_.resize(num_shards_);
  shard_error_.resize(num_shards_);

  Rng seeder(config_.seed);
  infos_.reserve(n);
  programs_.reserve(n);
  node_rng_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    NodeInfo info;
    info.id = v;
    info.n = n;
    info.weight = topo_->weights[v];
    info.neighbors =
        hybrid_ ? NeighborsView(topo_.get(), v, total_degree_[v])
                : NeighborsView(topo_->neighbors.data() + topo_->offsets[v],
                                topo_->degree(v));
    info.bits_per_edge = bits_per_edge_;
    infos_.push_back(info);
    node_rng_.push_back(seeder.fork());
  }
  for (NodeId v = 0; v < n; ++v) {
    programs_.push_back(factory(v, infos_[v]));
    CLB_EXPECT(programs_.back() != nullptr, "Network: factory returned null");
  }

  if (config_.tracer && config_.tracer->enabled()) {
    tracer_ = config_.tracer;
    trace_sends_ = tracer_->config().record_sends;
    // Stage capacity: the most events one shard can emit in one phase of
    // one round — compute emits at most one send per out slot plus one
    // crash/recover mark per node; deliver emits at most a fresh-message
    // event plus an echo event per inbound slot.
    std::size_t max_stage = 0;
    for (std::size_t s = 0; s < num_shards_; ++s) {
      const auto [begin, end] = shard_range_[s];
      const std::size_t shard_slots =
          topo_->offsets[end] - topo_->offsets[begin];
      max_stage = std::max(max_stage, 2 * shard_slots + (end - begin) + 4);
    }
    tracer_->bind(num_shards_, max_stage);
    if (injector_.has_value()) {
      trace_crash_schedule(injector_->plan(), *tracer_);
    }
  }
  if (config_.metrics) {
    obs::MetricsRegistry& reg = *config_.metrics;
    reg.ensure_shards(num_shards_);
    em_.rounds = &reg.counter("engine.rounds");
    em_.messages_delivered = &reg.counter("engine.messages_delivered");
    em_.bits_delivered = &reg.counter("engine.bits_delivered");
    em_.messages_dropped = &reg.counter("engine.messages_dropped");
    em_.bits_dropped = &reg.counter("engine.bits_dropped");
    em_.messages_corrupted = &reg.counter("engine.messages_corrupted");
    em_.messages_duplicated = &reg.counter("engine.messages_duplicated");
    em_.crashes = &reg.counter("engine.crashes");
    em_.recoveries = &reg.counter("engine.recoveries");
    em_.inflight = &reg.gauge("engine.inflight_messages");
    em_.message_bits =
        &reg.histogram("engine.message_bits", {8, 16, 32, 64, 128, 256});
  }
}

bool Network::receiver_lost(NodeId v, std::size_t consume_round) const {
  return injector_.has_value() && injector_->node_crashed(v, consume_round);
}

void Network::compute_shard(std::size_t shard) {
  try {
    const auto [begin, end] = shard_range_[shard];
    ShardCounters& sc = shard_[shard];
    const std::size_t round = stats_.rounds;
    for (NodeId v = begin; v < end; ++v) {
      // Crash bookkeeping: record crash/recovery transitions for this round.
      if (injector_.has_value()) {
        const std::uint8_t c = injector_->node_crashed(v, round) ? 1 : 0;
        if (c && !was_crashed_[v]) {
          sc.crashes += 1;
          if (em_.crashes) em_.crashes->add(1, shard);
          if (trace_round_) {
            tracer_->emit_shard(0, shard,
                                {0, trnd(round), tid(v), obs::TraceEvent::kNone,
                                 obs::EventKind::kCrash});
          }
        }
        if (!c && was_crashed_[v]) {
          sc.recoveries += 1;
          if (em_.recoveries) em_.recoveries->add(1, shard);
          if (trace_round_) {
            tracer_->emit_shard(0, shard,
                                {0, trnd(round), tid(v), obs::TraceEvent::kNone,
                                 obs::EventKind::kRecover});
          }
        }
        was_crashed_[v] = c;
        crashed_now_[v] = c;
      }
      // A crashed node neither computes nor sends; its program state is
      // frozen until recovery (crash-stop, not amnesia).
      if (crashed_now_[v]) continue;
      if (hybrid_) {
        const std::size_t fan = total_degree_[v];
        Inbox inbox(topo_.get(), v, bc_in_kind_.data(), bc_in_msgs_.data(),
                    fan);
        Outbox outbox = Outbox::broadcast_view(
            &bc_out_kind_[v], &bc_out_msgs_[v], fan, bits_per_edge_);
        programs_[v]->round(infos_[v], inbox, outbox, node_rng_[v]);
        const std::size_t sends = outbox.broadcast_sends();
        CLB_EXPECT(sends == 0 || sends == fan,
                   "implicit-block topology requires all-or-none fan-out "
                   "(partial sends need per-edge slots)");
        continue;
      }
      const std::size_t off = topo_->offsets[v];
      const std::size_t deg = topo_->degree(v);
      Inbox inbox(in_kind_.data() + off, in_msgs_.data() + off, deg);
      Outbox outbox(out_kind_.data() + off, out_msgs_.data() + off, deg,
                    bits_per_edge_);
      programs_[v]->round(infos_[v], inbox, outbox, node_rng_[v]);
      if (trace_round_ && trace_sends_) {
        for (std::size_t s = 0; s < deg; ++s) {
          if (!out_kind_[off + s]) continue;
          tracer_->emit_shard(0, shard,
                              {out_msgs_[off + s].bits, trnd(round), tid(v),
                               tid(topo_->neighbors[off + s]),
                               obs::EventKind::kSend});
        }
      }
      if (config_.broadcast_only) {
        // All non-empty slots must carry identical payloads.
        const Message* first = nullptr;
        for (std::size_t s = 0; s < deg; ++s) {
          if (!out_kind_[off + s]) continue;
          const Message& m = out_msgs_[off + s];
          if (!first) {
            first = &m;
          } else {
            CLB_EXPECT(first->bits == m.bits && first->data == m.data,
                       "CONGEST-Broadcast: different messages to different "
                       "neighbors in one round");
          }
        }
      }
    }
  } catch (...) {
    shard_error_[shard] = std::current_exception();
  }
}

void Network::deliver_shard_hybrid(std::size_t shard) {
  try {
    const auto [begin, end] = shard_range_[shard];
    ShardCounters& sc = shard_[shard];
    for (NodeId u = begin; u < end; ++u) {
      if (bc_out_kind_[u] == 0) continue;
      const std::uint64_t fan = total_degree_[u];
      const std::uint64_t bits = bc_out_msgs_[u].bits;
      sc.attempted += fan;
      sc.delivered += fan;
      sc.bits_delivered += bits * fan;
      dbits_node_[u] += bits;
    }
  } catch (...) {
    shard_error_[shard] = std::current_exception();
  }
}

void Network::deliver_shard(std::size_t shard) {
  try {
    const auto [begin, end] = shard_range_[shard];
    ShardCounters& sc = shard_[shard];
    const std::size_t round = stats_.rounds;
    const std::size_t* off = topo_->offsets.data();
    const NodeId* nbrs = topo_->neighbors.data();
    const std::uint32_t* rev = topo_->reverse_slot.data();
    if (!injector_.has_value()) {
      if (!trace_round_ && em_.messages_delivered == nullptr) {
        // Fault-free unobserved fast path: the copy loop only moves
        // payloads and records per-slot presence/bits; all counter and
        // dbits_ accounting happens afterwards as bulk SIMD passes over
        // this shard's contiguous slot range.
        const std::size_t lo = off[begin];
        const std::size_t hi = off[end];
        for (std::size_t e = lo; e < hi; ++e) {
          const std::size_t o = off[nbrs[e]] + rev[e];
          if (out_kind_[o]) {
            out_kind_[o] = 0;  // consume; only this slot's owner reads it
            in_msgs_[e] = out_msgs_[o];
            in_kind_[e] = kNormal;
            // Message bits are bounded by bits_per_edge (O(log n)) — far
            // below 32 bits of count.
            in_bits_[e] = static_cast<std::uint32_t>(in_msgs_[e].bits);
          } else {
            in_kind_[e] = kEmpty;
            in_bits_[e] = 0;
          }
        }
        const simd::Kernels& k = simd::kernels();
        const std::size_t delivered =
            k.count_nonzero_u8(in_kind_.data() + lo, hi - lo);
        sc.attempted += delivered;
        sc.delivered += delivered;
        sc.bits_delivered += k.sum_u32(in_bits_.data() + lo, hi - lo);
        k.accumulate_u32_to_u64(dbits_.data() + lo, in_bits_.data() + lo,
                                hi - lo);
        return;
      }
      // Fault-free traced/metered path: no losses, no echoes (the echo
      // arena stays all-zero without an injector), every sent message is
      // delivered, but tracing/metrics want per-slot hooks.
      for (NodeId v = begin; v < end; ++v) {
        for (std::size_t e = off[v]; e < off[v + 1]; ++e) {
          const std::size_t o = off[nbrs[e]] + rev[e];
          if (out_kind_[o]) {
            out_kind_[o] = 0;  // consume; only this slot's owner reads it
            in_msgs_[e] = out_msgs_[o];
            sc.attempted += 1;
            sc.delivered += 1;
            sc.bits_delivered += in_msgs_[e].bits;
            dbits_[e] += in_msgs_[e].bits;
            in_kind_[e] = kNormal;
            if (trace_round_) {
              tracer_->emit_shard(1, shard,
                                  {in_msgs_[e].bits, trnd(round), tid(nbrs[e]),
                                   tid(v), obs::EventKind::kDeliver});
            }
            if (em_.messages_delivered) {
              em_.messages_delivered->add(1, shard);
              em_.bits_delivered->add(in_msgs_[e].bits, shard);
              em_.message_bits->observe(in_msgs_[e].bits, shard);
            }
          } else {
            in_kind_[e] = kEmpty;
          }
        }
      }
      return;
    }
    for (NodeId v = begin; v < end; ++v) {
      // Messages sent this round are consumed next round; a receiver
      // crashed at consumption time loses them.
      const bool lost = receiver_lost(v, round + 1);
      for (std::size_t e = off[v]; e < off[v + 1]; ++e) {
        const NodeId u = nbrs[e];
        const std::size_t o = off[u] + rev[e];  // u's out slot toward v
        const std::uint8_t pending = echo_kind_[e];
        std::uint8_t placed = kEmpty;
        bool stage_echo = false;
        if (out_kind_[o]) {
          out_kind_[o] = 0;  // consume; only this slot's owner reads it
          const Message& m = out_msgs_[o];
          sc.attempted += 1;
          if (lost) {
            sc.dropped += 1;
            sc.bits_dropped += m.bits;
            if (trace_round_) {
              tracer_->emit_shard(1, shard,
                                  {m.bits, trnd(round), tid(u), tid(v),
                                   obs::EventKind::kDrop});
            }
            if (em_.messages_dropped) {
              em_.messages_dropped->add(1, shard);
              em_.bits_dropped->add(m.bits, shard);
            }
          } else {
            const FaultAction action = injector_.has_value()
                                           ? injector_->classify(round, u, v)
                                           : FaultAction::kDeliver;
            switch (action) {
              case FaultAction::kDrop:
                sc.dropped += 1;
                sc.bits_dropped += m.bits;
                if (trace_round_) {
                  tracer_->emit_shard(1, shard,
                                      {m.bits, trnd(round), tid(u), tid(v),
                                       obs::EventKind::kDrop});
                }
                if (em_.messages_dropped) {
                  em_.messages_dropped->add(1, shard);
                  em_.bits_dropped->add(m.bits, shard);
                }
                break;
              case FaultAction::kCorrupt:
                in_msgs_[e] = m;
                injector_->corrupt(round, u, v, in_msgs_[e]);
                sc.corrupted += 1;
                placed = kNormal;
                if (trace_round_) {
                  tracer_->emit_shard(1, shard,
                                      {in_msgs_[e].bits, trnd(round), tid(u),
                                       tid(v), obs::EventKind::kDeliverCorrupt});
                }
                if (em_.messages_corrupted) {
                  em_.messages_corrupted->add(1, shard);
                }
                break;
              case FaultAction::kDuplicate:
                in_msgs_[e] = m;
                placed = kNormal;
                stage_echo = true;
                if (trace_round_) {
                  tracer_->emit_shard(1, shard,
                                      {m.bits, trnd(round), tid(u), tid(v),
                                       obs::EventKind::kDeliver});
                }
                break;
              case FaultAction::kDeliver:
                in_msgs_[e] = m;
                placed = kNormal;
                if (trace_round_) {
                  tracer_->emit_shard(1, shard,
                                      {m.bits, trnd(round), tid(u), tid(v),
                                       obs::EventKind::kDeliver});
                }
                break;
            }
          }
        }
        // Place the echo staged in the previous round: a duplicated message
        // is redelivered one round after the original, but only if the edge
        // slot is otherwise idle this round (one message per edge per round
        // — a fault never violates the CONGEST budget) and the receiver
        // survives. Displaced or crash-lost echoes vanish without charge.
        if (pending) {
          sc.attempted += 1;
          if (placed == kEmpty && !lost) {
            sc.duplicated += 1;
            in_msgs_[e] = echo_msgs_[e];
            placed = kEcho;
            if (trace_round_) {
              tracer_->emit_shard(1, shard,
                                  {in_msgs_[e].bits, trnd(round), tid(u),
                                   tid(v), obs::EventKind::kDeliverEcho});
            }
            if (em_.messages_duplicated) {
              em_.messages_duplicated->add(1, shard);
            }
          }
        }
        if (placed != kEmpty) {
          sc.delivered += 1;
          sc.bits_delivered += in_msgs_[e].bits;
          dbits_[e] += in_msgs_[e].bits;
          if (em_.messages_delivered) {
            em_.messages_delivered->add(1, shard);
            em_.bits_delivered->add(in_msgs_[e].bits, shard);
            em_.message_bits->observe(in_msgs_[e].bits, shard);
          }
        }
        in_kind_[e] = placed;
        if (stage_echo) {
          echo_msgs_[e] = out_msgs_[o];
          echo_kind_[e] = 1;
          sc.echoes_staged += 1;
        } else {
          echo_kind_[e] = 0;
        }
      }
    }
  } catch (...) {
    shard_error_[shard] = std::current_exception();
  }
}

void Network::notify_observer() {
  // Canonical order, independent of num_threads: every normal delivery in
  // (sender, out-slot) order, then every echo delivery in the same order —
  // exactly the order the serial seed engine produced.
  const std::size_t round = stats_.rounds;
  if (hybrid_) {
    // Expand each sender's broadcast over its merged neighbor cursor —
    // identical (sender, neighbor-ascending) order to the materialized
    // normal pass; there is no echo pass (faults are rejected in hybrid
    // mode). O(total degree): observers are a small-n contract tool.
    for (NodeId u = 0; u < topo_->n; ++u) {
      if (bc_in_kind_[u] == 0) continue;
      for (NodeId v = topo_->neighbor_after(u, graph::kNoNode);
           v != graph::kNoNode; v = topo_->neighbor_after(u, v)) {
        config_.on_message(round, u, v, bc_in_msgs_[u]);
      }
    }
    return;
  }
  const std::size_t* off = topo_->offsets.data();
  const NodeId* nbrs = topo_->neighbors.data();
  const std::uint32_t* rev = topo_->reverse_slot.data();
  for (int pass = 0; pass < 2; ++pass) {
    const std::uint8_t want = pass == 0 ? kNormal : kEcho;
    for (NodeId u = 0; u < topo_->n; ++u) {
      for (std::size_t d = off[u]; d < off[u + 1]; ++d) {
        const NodeId v = nbrs[d];
        const std::size_t e = off[v] + rev[d];
        if (in_kind_[e] == want) config_.on_message(round, u, v, in_msgs_[e]);
      }
    }
  }
}

void Network::rethrow_shard_error() {
  for (std::size_t s = 0; s < num_shards_; ++s) {
    if (shard_error_[s]) {
      std::exception_ptr err = shard_error_[s];
      shard_error_[s] = nullptr;
      std::rethrow_exception(err);
    }
  }
}

bool Network::step() {
  const bool any_inbound = inflight_count_ > 0;
  for (auto& sc : shard_) sc.reset();
  trace_round_ = tracer_ != nullptr && tracer_->sampled(stats_.rounds);
  if (trace_round_) {
    tracer_->emit({topo_->n, trnd(stats_.rounds), obs::TraceEvent::kNone,
                   obs::TraceEvent::kNone, obs::EventKind::kRoundBegin});
  }

  // Phase 1: programs run (sharded by sender), filling the send arena.
  pool_.run(num_shards_,
            [this](std::size_t shard) { compute_shard(shard); });
  rethrow_shard_error();
  // Phase 2: pull-based delivery (sharded by receiver). Each thread writes
  // only its own receivers' inbound slots — race-free and schedule-
  // independent, hence bit-identical across thread counts.
  if (hybrid_) {
    pool_.run(num_shards_,
              [this](std::size_t shard) { deliver_shard_hybrid(shard); });
    rethrow_shard_error();
    // Publish this round's broadcasts: swap arenas (messages move by
    // pointer — payload capacity is retained, the steady state stays
    // allocation-free) and clear the new out arena's presence bytes.
    std::swap(bc_in_kind_, bc_out_kind_);
    std::swap(bc_in_msgs_, bc_out_msgs_);
    std::fill(bc_out_kind_.begin(), bc_out_kind_.end(), 0);
  } else {
    pool_.run(num_shards_,
              [this](std::size_t shard) { deliver_shard(shard); });
    rethrow_shard_error();
  }

  // Merge per-shard counters in shard order (integer sums, so the totals
  // are independent of the shard partition).
  std::uint64_t attempted = 0;
  std::uint64_t delivered = 0;
  std::size_t staged = 0;
  for (const ShardCounters& sc : shard_) {
    attempted += sc.attempted;
    delivered += sc.delivered;
    stats_.messages_sent += sc.delivered;
    stats_.bits_sent += sc.bits_delivered;
    stats_.messages_dropped += sc.dropped;
    stats_.bits_dropped += sc.bits_dropped;
    stats_.messages_corrupted += sc.corrupted;
    stats_.messages_duplicated += sc.duplicated;
    stats_.nodes_crashed += sc.crashes;
    stats_.nodes_recovered += sc.recoveries;
    staged += sc.echoes_staged;
  }
  if (attempted > 0 && delivered == 0) stats_.rounds_stalled += 1;
  inflight_count_ = delivered;
  echo_count_ = staged;
  // Seal before the observer runs so the staged phase events precede any
  // kBlackboardPost the observer emits; kRoundEnd closes the round after.
  if (trace_round_) tracer_->seal_round();
  if (config_.on_message) notify_observer();
  if (trace_round_) {
    tracer_->emit({delivered, trnd(stats_.rounds), obs::TraceEvent::kNone,
                   obs::TraceEvent::kNone, obs::EventKind::kRoundEnd});
  }
  if (em_.rounds) {
    em_.rounds->add(1);
    em_.inflight->set(static_cast<std::int64_t>(delivered));
  }
  stats_.rounds += 1;
  return delivered > 0 || any_inbound;
}

bool Network::node_terminal(NodeId v) const {
  if (programs_[v]->finished() || programs_[v]->failed()) return true;
  // A permanently crashed node will never act again: waiting for it would
  // spin to max_rounds for nothing.
  if (injector_.has_value()) {
    const auto& span = injector_->plan().crashes[v];
    if (span.has_value() && span->permanent() &&
        span->crash_round <= stats_.rounds) {
      return true;
    }
  }
  return false;
}

RunStats Network::run() {
  while (stats_.rounds < config_.max_rounds) {
    bool all_done = true;
    for (NodeId v = 0; v < programs_.size(); ++v) {
      if (!node_terminal(v)) {
        all_done = false;
        break;
      }
    }
    if (all_done && inflight_count_ == 0 && echo_count_ == 0) break;
    step();
  }
  stats_.all_finished =
      std::all_of(programs_.begin(), programs_.end(),
                  [](const auto& p) { return p->finished(); });
  stats_.any_failed =
      std::any_of(programs_.begin(), programs_.end(),
                  [](const auto& p) { return p->failed(); });
  return stats_;
}

RunStats Network::run_rounds(std::size_t rounds) {
  for (std::size_t r = 0; r < rounds && stats_.rounds < config_.max_rounds;
       ++r) {
    step();
  }
  stats_.all_finished =
      std::all_of(programs_.begin(), programs_.end(),
                  [](const auto& p) { return p->finished(); });
  stats_.any_failed =
      std::any_of(programs_.begin(), programs_.end(),
                  [](const auto& p) { return p->failed(); });
  return stats_;
}

const NodeProgram& Network::program(NodeId v) const {
  CLB_EXPECT(v < programs_.size(), "Network: node id out of range");
  return *programs_[v];
}

const NodeInfo& Network::info(NodeId v) const {
  CLB_EXPECT(v < infos_.size(), "Network: node id out of range");
  return infos_[v];
}

const FaultPlan* Network::fault_plan() const {
  return injector_.has_value() ? &injector_->plan() : nullptr;
}

bool Network::node_crashed(NodeId v) const {
  CLB_EXPECT(v < programs_.size(), "Network: node id out of range");
  return injector_.has_value() && injector_->node_crashed(v, stats_.rounds);
}

std::vector<std::string> Network::failure_diagnostics() const {
  std::vector<std::string> out;
  for (NodeId v = 0; v < programs_.size(); ++v) {
    if (!programs_[v]->failed()) continue;
    std::string line = "node " + std::to_string(v);
    const std::string detail = programs_[v]->diagnostic();
    if (!detail.empty()) line += ": " + detail;
    out.push_back(std::move(line));
  }
  return out;
}

std::uint64_t Network::bits_on_edge(NodeId u, NodeId v) const {
  CLB_EXPECT(u < topo_->n && v < topo_->n,
             "bits_on_edge: node id out of range");
  if (hybrid_) {
    CLB_EXPECT(topo_->has_edge(u, v), "bits_on_edge: no such edge");
    // Fault-free broadcast: every bit u ever sent was delivered to v (and
    // vice versa), so the per-sender accumulators are exactly the per-edge
    // totals of the materialized engine.
    return dbits_node_[u] + dbits_node_[v];
  }
  const std::size_t su = topo_->slot_of(v, u);  // u's position in v's list
  CLB_EXPECT(su != Topology::kNoSlot, "bits_on_edge: no such edge");
  const std::size_t sv = topo_->slot_of(u, v);
  return dbits_[topo_->offsets[v] + su] + dbits_[topo_->offsets[u] + sv];
}

std::vector<std::int64_t> Network::outputs() const {
  std::vector<std::int64_t> out;
  out.reserve(programs_.size());
  for (const auto& p : programs_) out.push_back(p->output());
  return out;
}

std::vector<NodeId> Network::selected_nodes() const {
  std::vector<NodeId> sel;
  for (NodeId v = 0; v < programs_.size(); ++v) {
    if (programs_[v]->output() != 0) sel.push_back(v);
  }
  return sel;
}

}  // namespace congestlb::congest
