#include "maxis/parallel_bnb.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <optional>
#include <utility>
#include <vector>

#include "campaign/scheduler.hpp"
#include "graph/algorithms.hpp"
#include "maxis/bitset.hpp"
#include "maxis/branch_and_bound.hpp"
#include "maxis/local_search.hpp"
#include "obs/metrics.hpp"
#include "support/deadline.hpp"
#include "support/expect.hpp"

namespace congestlb::maxis {

namespace {

/// Read-only search context for one kernel component: the adjacency word
/// matrix and vertex order of the reference branch and bound (weight desc,
/// degree desc, id), plus a fixed root clique partition, shared by the
/// serial probe and every subtree job of the component.
class ComponentContext {
 public:
  explicit ComponentContext(const graph::Graph& g)
      : n_(g.num_nodes()), nw_(words::row_words(n_ == 0 ? 1 : n_)) {
    order_.resize(n_);
    std::iota(order_.begin(), order_.end(), 0);
    std::sort(order_.begin(), order_.end(), [&](NodeId a, NodeId b) {
      if (g.weight(a) != g.weight(b)) return g.weight(a) > g.weight(b);
      if (g.degree(a) != g.degree(b)) return g.degree(a) > g.degree(b);
      return a < b;
    });
    pos_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) pos_[order_[i]] = i;
    weight_.resize(n_);
    adj_.assign(n_ * nw_, 0);
    for (std::size_t i = 0; i < n_; ++i) {
      const NodeId v = order_[i];
      weight_[i] = g.weight(v);
      CLB_EXPECT(weight_[i] >= 0,
                 "solver engine requires nonnegative weights");
      g.for_each_neighbor(v, [&](NodeId nb) {
        words::set_bit(adj_.data() + i * nw_, pos_[nb]);
      });
    }
    build_clique_partition();
  }

  std::size_t n() const { return n_; }
  std::size_t nw() const { return nw_; }
  NodeId original(std::size_t i) const { return order_[i]; }
  Weight weight(std::size_t i) const { return weight_[i]; }
  const std::uint64_t* row(std::size_t i) const {
    return adj_.data() + i * nw_;
  }

  /// Clique c of the root partition, as order-positions ascending — which
  /// is weight descending, because order_ sorts by weight first.
  std::size_t num_cliques() const { return clique_off_.size() - 1; }
  const std::uint32_t* clique_begin(std::size_t c) const {
    return clique_members_.data() + clique_off_[c];
  }
  const std::uint32_t* clique_end(std::size_t c) const {
    return clique_members_.data() + clique_off_[c + 1];
  }

  /// Greedy IS in (weight desc, degree desc) order over the word arena —
  /// the engine's base incumbent before local search.
  std::vector<std::size_t> greedy_positions() const {
    std::vector<std::uint64_t> cand(nw_, 0);
    words::fill_prefix(cand.data(), n_, nw_);
    std::vector<std::size_t> chosen;
    while (true) {
      const std::size_t v = words::first_bit(cand.data(), nw_, n_);
      if (v == n_) break;
      chosen.push_back(v);
      words::and_not_rows(cand.data(), cand.data(), row(v), nw_);
      words::clear_bit(cand.data(), v);
    }
    return chosen;
  }

 private:
  /// The same greedy clique cover the tight bound uses, computed once over
  /// the full vertex set and kept as a *partition*. A partition of the root
  /// vertices stays a valid clique cover of every candidate subset, so the
  /// sum of max-weight-present per clique upper-bounds any IS below it —
  /// that is the cheap first-tier bound of SubtreeSearch.
  void build_clique_partition() {
    std::vector<std::uint64_t> c(nw_, 0), common(nw_, 0);
    words::fill_prefix(c.data(), n_, nw_);
    clique_off_.push_back(0);
    // Extraction is always the lowest live bit and bits only get cleared,
    // so the scan fronts (cw for the cover set, mw for the common set)
    // move monotonically right — word loops run on [front, nw) instead of
    // the full row, which is most of the cost of a cover at scale.
    std::size_t cw = 0;
    while (true) {
      while (cw < nw_ && c[cw] == 0) ++cw;
      if (cw == nw_) break;
      const std::size_t v =
          cw * 64 + static_cast<std::size_t>(__builtin_ctzll(c[cw]));
      clique_members_.push_back(static_cast<std::uint32_t>(v));
      c[cw] &= c[cw] - 1;
      const std::uint64_t* av = row(v);
      words::and_rows(common.data() + cw, c.data() + cw, av + cw, nw_ - cw);
      std::size_t mw = cw;
      while (true) {
        while (mw < nw_ && common[mw] == 0) ++mw;
        if (mw == nw_) break;
        const std::size_t u =
            mw * 64 + static_cast<std::size_t>(__builtin_ctzll(common[mw]));
        clique_members_.push_back(static_cast<std::uint32_t>(u));
        words::clear_bit(c.data(), u);
        common[mw] &= common[mw] - 1;
        const std::uint64_t* au = row(u);
        words::and_rows(common.data() + mw, common.data() + mw, au + mw,
                        nw_ - mw);
      }
      clique_off_.push_back(clique_members_.size());
    }
  }

  std::size_t n_;
  std::size_t nw_;
  std::vector<NodeId> order_;
  std::vector<std::size_t> pos_;
  std::vector<Weight> weight_;
  std::vector<std::uint64_t> adj_;
  std::vector<std::uint32_t> clique_members_;
  std::vector<std::size_t> clique_off_;
};

/// One structural subtree job: a candidate row plus the include decisions
/// that led to it. Pure data, derived from the component alone — never from
/// the thread count.
struct JobSpec {
  std::vector<std::uint64_t> cand;
  std::vector<std::size_t> chosen;  ///< order-positions already included
  Weight acc = 0;
};

struct JobOutcome {
  Weight best = 0;            ///< max(bound_in, best found in the subtree)
  bool improved = false;      ///< best > bound_in (chosen is then valid)
  bool aborted = false;       ///< node cap hit (probe mode only) or cancel
  bool cancelled = false;     ///< deadline token observed (subtree partial)
  std::vector<char> chosen;   ///< order-position membership of the best IS
  std::uint64_t nodes = 0;    ///< search nodes visited
};

/// The include/exclude search of branch_and_bound.cpp, restarted from an
/// arbitrary subtree root, with all mutable state owned by the runner —
/// concurrent runners share only the immutable ComponentContext.
///
/// Bounding is two-tier with lazy refresh. Tier 1 evaluates the *active*
/// clique partition — initially the component's root partition, thereafter
/// the most recent ancestor refresh — in O(bit probes), no row-wide word
/// ops. Only when tier 1 fails to prune is the greedy clique cover
/// recomputed over the live candidates (the seed solver's bound, paid at
/// every node there); the recomputed cover is *kept* as the active
/// partition for the whole subtree below, so descendants get tight cheap
/// checks instead of the degraded root partition. Both tiers are pure
/// functions of the candidate set, so node counts stay deterministic.
class SubtreeSearch {
 public:
  /// stop_on_budget: exhausting max_nodes sets outcome.aborted and returns
  /// the best found so far — the probe mode, still deterministic because
  /// the traversal order and the cap are fixed. Otherwise exhaustion
  /// throws, matching the seed solver's budget contract.
  SubtreeSearch(const ComponentContext& cx, std::uint64_t max_nodes,
                bool stop_on_budget, const DeadlineToken* deadline = nullptr)
      : cx_(&cx), max_nodes_(max_nodes), stop_on_budget_(stop_on_budget),
        deadline_(deadline), n_(cx.n()), nw_(cx.nw()) {
    cand_stack_.assign((n_ + 1) * nw_, 0);
    cover_cand_.assign(nw_, 0);
    cover_common_.assign(nw_, 0);
    chosen_.assign(n_, 0);
    best_chosen_.assign(n_, 0);
    seen_.assign(n_ + 1, 0);
    // Partition slots: one position -> clique-id map per depth (slot 0 =
    // the root partition). Sized for the worst-case depth but allocated
    // untouched; only pages the search actually writes get committed.
    part_cid_ = std::make_unique_for_overwrite<std::uint32_t[]>(
        (n_ + 1) * (n_ == 0 ? 1 : n_));
    std::uint32_t* cid = part_cid_.get();
    for (std::size_t c = 0; c < cx.num_cliques(); ++c) {
      for (const std::uint32_t* m = cx.clique_begin(c); m != cx.clique_end(c);
           ++m) {
        cid[*m] = static_cast<std::uint32_t>(c);
      }
    }
  }

  JobOutcome run(const JobSpec& spec, Weight bound_in) {
    words::copy(cand_row(0), spec.cand.data(), nw_);
    std::fill(chosen_.begin(), chosen_.end(), 0);
    for (const std::size_t p : spec.chosen) chosen_[p] = 1;
    best_ = bound_in;
    improved_ = false;
    aborted_ = false;
    cancelled_ = false;
    nodes_ = 0;
    recurse(0, spec.acc, 0);
    JobOutcome out;
    out.best = best_;
    out.improved = improved_;
    out.aborted = aborted_;
    out.cancelled = cancelled_;
    out.nodes = nodes_;
    if (improved_) {
      out.chosen.assign(best_chosen_.begin(), best_chosen_.end());
    }
    return out;
  }

 private:
  const std::uint64_t* adj_row(std::size_t i) const { return cx_->row(i); }
  std::uint64_t* cand_row(std::size_t depth) {
    return cand_stack_.data() + depth * nw_;
  }

  /// Tier 1: evaluate partition slot `part` against cand by iterating the
  /// *live* candidates only — dead cliques cost nothing. Ascending position
  /// is descending weight, so the first live member seen of a clique is
  /// that clique's max; the epoch stamp dedupes cliques with no clearing.
  /// Returns early (with a partial sum > limit) as soon as the bound can
  /// no longer prune; callers only compare the result against limit.
  Weight partition_bound(const std::uint64_t* cand, std::size_t part,
                         Weight limit) {
    const std::uint32_t* cid = part_cid_.get() + part * n_;
    const std::uint64_t epoch = ++epoch_;
    Weight bound = 0;
    for (std::size_t w = 0; w < nw_; ++w) {
      std::uint64_t bits = cand[w];
      while (bits != 0) {
        const std::size_t v =
            w * 64 + static_cast<std::size_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        const std::uint32_t c = cid[v];
        if (seen_[c] != epoch) {
          seen_[c] = epoch;
          bound += cx_->weight(v);
          if (bound > limit) return bound;
        }
      }
    }
    return bound;
  }

  /// Tier 2: the greedy clique cover recomputed over the live candidates
  /// (the seed solver's bound), recorded into partition slot `part` as a
  /// position -> clique-id map for tier-1 reuse across the subtree below.
  /// Positions outside cand keep stale ids, which is safe: descendants only
  /// probe candidates, and those are subsets of this cand.
  Weight refresh_partition(const std::uint64_t* cand, std::size_t part) {
    std::uint64_t* c = cover_cand_.data();
    std::uint64_t* common = cover_common_.data();
    words::copy(c, cand, nw_);
    std::uint32_t* cid = part_cid_.get() + part * n_;
    std::uint32_t cnt = 0;
    Weight bound = 0;
    // Monotone scan fronts, as in build_clique_partition: extraction is
    // always the lowest live bit, so word loops shrink to [front, nw).
    std::size_t cw = 0;
    while (true) {
      while (cw < nw_ && c[cw] == 0) ++cw;
      if (cw == nw_) break;
      const std::size_t v =
          cw * 64 + static_cast<std::size_t>(__builtin_ctzll(c[cw]));
      cid[v] = cnt;
      Weight mx = cx_->weight(v);
      c[cw] &= c[cw] - 1;
      const std::uint64_t* av = adj_row(v);
      words::and_rows(common + cw, c + cw, av + cw, nw_ - cw);
      std::size_t mw = cw;
      while (true) {
        while (mw < nw_ && common[mw] == 0) ++mw;
        if (mw == nw_) break;
        const std::size_t u =
            mw * 64 + static_cast<std::size_t>(__builtin_ctzll(common[mw]));
        cid[u] = cnt;
        mx = std::max(mx, cx_->weight(u));
        words::clear_bit(c, u);
        common[mw] &= common[mw] - 1;
        const std::uint64_t* au = adj_row(u);
        words::and_rows(common + mw, common + mw, au + mw, nw_ - mw);
      }
      bound += mx;
      ++cnt;
    }
    return bound;
  }

  void recurse(std::size_t depth, Weight acc, std::size_t part) {
    std::uint64_t* cand = cand_row(depth);
    while (true) {
      if (aborted_) return;
      ++nodes_;
      // Cancellation outranks the budget contract: a cancelled search
      // never throws, even in stop_on_budget=false (fanout job) mode — it
      // unwinds with its incumbent and the caller flags the result
      // approximate.
      if (deadline_ != nullptr && deadline_->poll(nodes_)) {
        aborted_ = true;
        cancelled_ = true;
        return;
      }
      if (max_nodes_ != 0 && nodes_ > max_nodes_) {
        CLB_EXPECT(stop_on_budget_,
                   "solver engine: per-job search-node budget exhausted");
        aborted_ = true;
        return;
      }
      if (acc > best_) {
        best_ = acc;
        best_chosen_ = chosen_;
        improved_ = true;
      }
      const std::size_t v = words::first_bit(cand, nw_, n_);
      if (v == n_) return;
      const Weight limit = best_ - acc;  // prune iff bound <= limit
      if (partition_bound(cand, part, limit) <= limit) return;
      // Tier 1 failed: refresh into this depth's slot (slot 0 is the root
      // partition, so depth d owns slot d + 1) and re-check — at most once
      // per level; later iterations at this level reuse it via tier 1.
      if (part != depth + 1) {
        part = depth + 1;
        if (refresh_partition(cand, part) <= limit) return;
      }

      std::uint64_t* next = cand_row(depth + 1);
      words::and_not_rows(next, cand, adj_row(v), nw_);
      words::clear_bit(next, v);
      chosen_[v] = 1;
      recurse(depth + 1, acc + cx_->weight(v), part);
      chosen_[v] = 0;
      words::clear_bit(cand, v);
    }
  }

  const ComponentContext* cx_;
  std::uint64_t max_nodes_;
  bool stop_on_budget_;
  const DeadlineToken* deadline_;
  std::size_t n_;
  std::size_t nw_;
  std::vector<std::uint64_t> cand_stack_;
  std::vector<std::uint64_t> cover_cand_;
  std::vector<std::uint64_t> cover_common_;
  std::vector<char> chosen_;
  std::vector<char> best_chosen_;
  std::vector<std::uint64_t> seen_;  ///< clique-id epoch stamps (tier 1)
  std::unique_ptr<std::uint32_t[]> part_cid_;
  std::uint64_t epoch_ = 0;
  Weight best_ = 0;
  bool improved_ = false;
  bool aborted_ = false;
  bool cancelled_ = false;
  std::uint64_t nodes_ = 0;
};

JobSpec whole_component_spec(const ComponentContext& cx) {
  JobSpec s;
  s.cand.assign(cx.nw(), 0);
  words::fill_prefix(s.cand.data(), cx.n(), cx.nw());
  return s;
}

/// Split a component into at most `fanout` structural subtree jobs: job i
/// includes order-position i after excluding positions 0..i-1 (the first
/// `fanout - 1` top-level include branches of the serial search), and one
/// residual job excludes them all. The union is an exact partition of the
/// search space.
std::vector<JobSpec> make_jobs(const ComponentContext& cx,
                               std::size_t fanout) {
  std::vector<JobSpec> jobs;
  const std::size_t n = cx.n();
  const std::size_t nw = cx.nw();
  if (fanout <= 1 || n == 0) {
    jobs.push_back(whole_component_spec(cx));
    return jobs;
  }
  std::vector<std::uint64_t> all(nw, 0);
  words::fill_prefix(all.data(), n, nw);
  const std::size_t f = std::min(fanout - 1, n);
  for (std::size_t i = 0; i < f; ++i) {
    JobSpec s;
    s.cand.assign(nw, 0);
    words::and_not_rows(s.cand.data(), all.data(), cx.row(i), nw);
    words::clear_bit(s.cand.data(), i);
    s.chosen = {i};
    s.acc = cx.weight(i);
    jobs.push_back(std::move(s));
    words::clear_bit(all.data(), i);
  }
  JobSpec residual;
  residual.cand = all;
  jobs.push_back(std::move(residual));
  return jobs;
}

struct ComponentPlan {
  std::vector<NodeId> nodes;   ///< search-graph ids, ascending
  graph::Graph owned;          ///< storage when an induced copy is needed
  const graph::Graph* sub = nullptr;  ///< the component graph
  std::optional<ComponentContext> cx;
  IsSolution warm;             ///< component-local ids
  JobOutcome probe;            ///< serial capped probe result
  Weight bound = 0;            ///< max(warm, probe best): fanout-job bound
  std::vector<JobSpec> jobs;   ///< empty when the probe finished exactly
  std::size_t first_job = 0;   ///< index into the flat job array
};

}  // namespace

EngineResult solve_maxis(const graph::Graph& g, const EngineOptions& opts) {
  CLB_EXPECT(opts.threads >= 1, "solver engine: threads must be >= 1");
  CLB_EXPECT(opts.fanout >= 1, "solver engine: fanout must be >= 1");
  EngineResult res;

  // ---- Kernelize --------------------------------------------------------
  // kernelizable() certifies irreducible inputs (every instantiated paper
  // gadget) with a single CSR scan, so the common path never copies the
  // graph or builds reduction state. Only a reducible input pays for a
  // Kernel — and then earns it back in the search.
  std::optional<Kernel> kernel;
  const graph::Graph* search_graph = &g;
  if (opts.kernelize && kernelizable(g)) {
    KernelOptions kopts;
    kopts.deadline = opts.deadline;
    kernel.emplace(g, kopts);
    res.kernel = kernel->stats();
    // Identity kernel (nothing fired): search the input graph directly and
    // skip the unfold.
    if (res.kernel.decisions() > 0) search_graph = &kernel->reduced();
  }
  res.kernel_nodes = search_graph->num_nodes();

  // ---- Decompose into components ----------------------------------------
  const std::vector<std::size_t> comp_id =
      graph::connected_components(*search_graph);
  std::size_t num_comps = 0;
  for (const std::size_t c : comp_id) {
    num_comps = std::max(num_comps, c + 1);
  }
  std::vector<ComponentPlan> plans(num_comps);
  for (NodeId v = 0; v < search_graph->num_nodes(); ++v) {
    plans[comp_id[v]].nodes.push_back(v);
  }

  // ---- Per component: context, warm start, serial probe, fanout plan ----
  // The probe runs the canonical serial search — which chains its incumbent
  // across subtrees exactly like the seed solver — under a fixed node cap;
  // a component the probe finishes is solved outright. Only cap-exhausted
  // components fan out, every job pruning against the deterministic
  // max(warm, probe-best) incumbent.
  std::size_t total_jobs = 0;
  for (ComponentPlan& plan : plans) {
    if (num_comps == 1) {
      plan.sub = search_graph;  // plan.nodes is the identity map
    } else {
      plan.owned = search_graph->induced_subgraph(plan.nodes);
      plan.sub = &plan.owned;
    }
    plan.cx.emplace(*plan.sub);
    std::vector<NodeId> greedy;
    for (const std::size_t p : plan.cx->greedy_positions()) {
      greedy.push_back(plan.cx->original(p));
    }
    std::sort(greedy.begin(), greedy.end());
    plan.warm =
        improve_local_search(*plan.sub, std::move(greedy)).solution;

    const bool probe_on =
        opts.probe_search_nodes > 0 &&
        (opts.max_search_nodes == 0 ||
         opts.probe_search_nodes < opts.max_search_nodes);
    if (probe_on) {
      SubtreeSearch probe(*plan.cx, opts.probe_search_nodes, true,
                          opts.deadline);
      plan.probe =
          probe.run(whole_component_spec(*plan.cx), plan.warm.weight);
      if (plan.probe.cancelled) res.approximate = true;
    } else {
      plan.probe.aborted = true;  // skip straight to the fanout
    }
    plan.bound = std::max(plan.warm.weight, plan.probe.best);
    if (plan.probe.aborted) {
      const std::size_t fanout =
          plan.cx->n() >= opts.fanout_min_nodes ? opts.fanout : 1;
      plan.jobs = make_jobs(*plan.cx, fanout);
      plan.first_job = total_jobs;
      total_jobs += plan.jobs.size();
    }
    res.search_nodes += plan.probe.nodes;
  }

  // ---- Run the fanout jobs ----------------------------------------------
  // Each job prunes against the deterministic warm/probe incumbent plus its
  // own local best; the shared register below is a monotone max the final
  // selection reads. Outcomes land in per-job slots (disjoint writes).
  std::vector<JobOutcome> outcomes(total_jobs);
  std::vector<std::atomic<Weight>> incumbent(num_comps);
  for (std::size_t c = 0; c < num_comps; ++c) {
    incumbent[c].store(plans[c].bound, std::memory_order_relaxed);
  }
  const auto run_flat = [&](std::size_t c, std::size_t j) {
    const ComponentPlan& plan = plans[c];
    SubtreeSearch search(*plan.cx, opts.max_search_nodes, false,
                         opts.deadline);
    JobOutcome out = search.run(plan.jobs[j], plan.bound);
    // Publish to the shared incumbent: relaxed max-CAS. The final value is
    // the max over all jobs — independent of publish order.
    Weight cur = incumbent[c].load(std::memory_order_relaxed);
    while (out.best > cur &&
           !incumbent[c].compare_exchange_weak(cur, out.best,
                                               std::memory_order_relaxed)) {
    }
    outcomes[plan.first_job + j] = std::move(out);
  };

  if (opts.threads == 1 || total_jobs <= 1) {
    for (std::size_t c = 0; c < num_comps; ++c) {
      for (std::size_t j = 0; j < plans[c].jobs.size(); ++j) {
        run_flat(c, j);
      }
    }
  } else {
    campaign::WorkStealingScheduler sched(opts.threads);
    for (std::size_t c = 0; c < num_comps; ++c) {
      for (std::size_t j = 0; j < plans[c].jobs.size(); ++j) {
        sched.add_job([&run_flat, c, j](std::size_t) { run_flat(c, j); });
      }
    }
    const auto report = sched.run();
    res.steals = report.steals;
  }

  // ---- Select winners structurally and compose the solution -------------
  std::vector<NodeId> search_solution;
  Weight search_weight = 0;
  for (std::size_t c = 0; c < num_comps; ++c) {
    const ComponentPlan& plan = plans[c];
    const Weight best = incumbent[c].load(std::memory_order_relaxed);
    search_weight += best;
    const std::vector<NodeId>* comp_nodes = nullptr;
    std::vector<NodeId> from_chosen;
    const auto collect = [&](const std::vector<char>& chosen) {
      for (std::size_t p = 0; p < plan.cx->n(); ++p) {
        if (chosen[p] != 0) from_chosen.push_back(plan.cx->original(p));
      }
      comp_nodes = &from_chosen;
    };
    if (best > plan.bound) {
      // Structural tie-break: the lowest-index job holding the max wins,
      // regardless of which worker finished first.
      for (std::size_t j = 0; j < plan.jobs.size(); ++j) {
        const JobOutcome& out = outcomes[plan.first_job + j];
        if (out.improved && out.best == best) {
          collect(out.chosen);
          break;
        }
      }
      CLB_EXPECT(comp_nodes != nullptr,
                 "solver engine: incumbent without a witnessing job");
    } else if (plan.probe.improved && plan.probe.best == best) {
      collect(plan.probe.chosen);
    } else {
      comp_nodes = &plan.warm.nodes;  // warm start was already optimal
    }
    for (const NodeId local : *comp_nodes) {
      search_solution.push_back(plan.nodes[local]);
    }
  }
  for (std::size_t k = 0; k < total_jobs; ++k) {
    res.search_nodes += outcomes[k].nodes;
    if (outcomes[k].cancelled) res.approximate = true;
  }
  res.components = num_comps;
  res.jobs = total_jobs;

  // ---- Unfold and certify on the original graph -------------------------
  const bool kernelized = kernel.has_value() && res.kernel.decisions() > 0;
  std::vector<NodeId> original_nodes =
      kernelized ? kernel->unfold(search_solution)
                 : std::move(search_solution);
  std::sort(original_nodes.begin(), original_nodes.end());
  const Weight expected =
      search_weight + (kernelized ? kernel->offset() : 0);
  res.solution = checked(g, std::move(original_nodes));
  CLB_EXPECT(res.solution.weight == expected,
             "solver engine: unfolded weight mismatch");

  if (opts.metrics != nullptr) {
    obs::MetricsRegistry& m = *opts.metrics;
    m.counter("maxis.kernel.isolated").add(res.kernel.isolated);
    m.counter("maxis.kernel.folded").add(res.kernel.folded);
    m.counter("maxis.kernel.degree1").add(res.kernel.degree1);
    m.counter("maxis.kernel.dominated").add(res.kernel.dominated);
    m.counter("maxis.kernel.simplicial").add(res.kernel.simplicial);
    m.counter("maxis.kernel.twins").add(res.kernel.twins);
    m.counter("maxis.engine.solves").inc();
    m.counter("maxis.engine.components").add(res.components);
    m.counter("maxis.engine.jobs").add(res.jobs);
    m.counter("maxis.engine.search_nodes").add(res.search_nodes);
    m.counter("maxis.engine.steals").add(res.steals);
    if (res.approximate) m.counter("maxis.engine.cancelled").inc();
  }
  return res;
}

IsSolution solve_exact(const graph::Graph& g) {
  return solve_maxis(g).solution;
}

}  // namespace congestlb::maxis
