#include "maxis/verify.hpp"

#include <algorithm>

#include "support/expect.hpp"

namespace congestlb::maxis {

IsSolution checked(const graph::Graph& g, std::vector<NodeId> nodes) {
  std::sort(nodes.begin(), nodes.end());
  CLB_EXPECT(g.is_independent_set(nodes), "checked: not an independent set");
  IsSolution sol;
  sol.weight = g.weight_of(nodes);
  sol.nodes = std::move(nodes);
  return sol;
}

double approximation_ratio(Weight got, Weight opt) {
  CLB_EXPECT(opt > 0, "approximation_ratio: OPT must be positive");
  CLB_EXPECT(got >= 0 && got <= opt, "approximation_ratio: got outside [0, OPT]");
  return static_cast<double>(got) / static_cast<double>(opt);
}

}  // namespace congestlb::maxis
