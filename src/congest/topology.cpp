#include "congest/topology.hpp"

#include <algorithm>

namespace congestlb::congest {

std::size_t Topology::slot_of(NodeId v, NodeId u) const {
  const auto nb = neighbors_of(v);
  const auto it = std::lower_bound(nb.begin(), nb.end(), u);
  if (it == nb.end() || *it != u) return kNoSlot;
  return static_cast<std::size_t>(it - nb.begin());
}

std::shared_ptr<const Topology> Topology::build(const graph::Graph& g) {
  auto topo = std::make_shared<Topology>();
  topo->n = g.num_nodes();
  topo->m = g.num_edges();

  graph::Csr csr = graph::export_csr(g);
  topo->offsets = std::move(csr.offsets);
  topo->neighbors = std::move(csr.targets);

  topo->weights.resize(topo->n);
  for (NodeId v = 0; v < topo->n; ++v) topo->weights[v] = g.weight(v);

  // reverse_slot via the cursor trick: iterating senders u in ascending
  // order visits, for each receiver v, the entries "u appears in v's sorted
  // list" in ascending u — so u's position in v's list is exactly how many
  // earlier senders were adjacent to v.
  topo->reverse_slot.resize(topo->neighbors.size());
  std::vector<std::uint32_t> cursor(topo->n, 0);
  for (NodeId u = 0; u < topo->n; ++u) {
    for (std::size_t d = topo->offsets[u]; d < topo->offsets[u + 1]; ++d) {
      const NodeId v = topo->neighbors[d];
      topo->reverse_slot[d] = cursor[v]++;
    }
  }
  return topo;
}

std::vector<std::pair<NodeId, NodeId>> edge_tiled_shards(
    const Topology& topo, std::size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  const std::size_t n = topo.n;
  // Prefix cost of the first v nodes: directed slots + one unit per node.
  // offsets[v] + v is strictly increasing, so each boundary is a binary
  // search for the first prefix at or past the shard's proportional target.
  const auto prefix_cost = [&](std::size_t v) { return topo.offsets[v] + v; };
  const std::size_t total = prefix_cost(n);
  std::vector<std::pair<NodeId, NodeId>> ranges(num_shards);
  std::size_t begin = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    std::size_t end = n;
    if (s + 1 < num_shards) {
      const std::size_t target = total * (s + 1) / num_shards;
      std::size_t lo = begin;
      std::size_t hi = n;
      while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (prefix_cost(mid) < target) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      end = lo;
    }
    ranges[s] = {static_cast<NodeId>(begin), static_cast<NodeId>(end)};
    begin = end;
  }
  return ranges;
}

}  // namespace congestlb::congest
