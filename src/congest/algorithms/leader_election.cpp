#include "congest/algorithms/leader_election.hpp"

#include "support/expect.hpp"
#include "support/math.hpp"

namespace congestlb::congest {

namespace {

class LeaderElectionProgram final : public NodeProgram {
 public:
  void round(const NodeInfo& info, const Inbox& inbox, Outbox& outbox,
             Rng&) override {
    if (id_bits_ == 0) {
      id_bits_ = static_cast<std::size_t>(
          std::max(1, ceil_log2(std::max<std::size_t>(2, info.n))));
      best_ = info.id;
      pending_announce_ = true;
    }
    for (const auto& msg : inbox) {
      if (!msg) continue;
      MessageReader r(*msg);
      const std::uint64_t candidate = r.get(id_bits_);
      if (candidate > best_) {
        best_ = candidate;
        pending_announce_ = true;
      }
    }
    ++rounds_seen_;
    // After n rounds no new maximum can arrive (diameter < n).
    if (rounds_seen_ > info.n) {
      done_ = true;
      return;
    }
    if (pending_announce_ && !info.neighbors.empty()) {
      Message m = std::move(MessageWriter().put(best_, id_bits_)).finish();
      outbox.send_all(m);
    }
    pending_announce_ = false;
    my_id_ = info.id;
  }

  bool finished() const override { return done_; }
  std::int64_t output() const override { return best_ == my_id_ ? 1 : 0; }

 private:
  std::uint64_t best_ = 0;
  std::uint64_t my_id_ = ~0ULL;
  std::size_t id_bits_ = 0;
  std::size_t rounds_seen_ = 0;
  bool pending_announce_ = false;
  bool done_ = false;
};

/// The retrying variant: flood the best id every round until the deadline,
/// believe only checksummed floods.
class FaultTolerantLeaderProgram final : public NodeProgram {
 public:
  explicit FaultTolerantLeaderProgram(std::size_t deadline)
      : deadline_(deadline) {}

  void round(const NodeInfo& info, const Inbox& inbox, Outbox& outbox,
             Rng&) override {
    if (id_bits_ == 0) {
      id_bits_ = static_cast<std::size_t>(
          std::max(1, ceil_log2(std::max<std::size_t>(2, info.n))));
      CLB_EXPECT(info.bits_per_edge > id_bits_,
                 "fault-tolerant election: bandwidth too small for id + "
                 "checksum");
      checksum_bits_ = std::min<std::size_t>(4, info.bits_per_edge - id_bits_);
      if (deadline_ == 0) deadline_ = 2 * info.n + 16;
      best_ = info.id;
      my_id_ = info.id;
    }
    for (const auto& msg : inbox) {
      if (!msg) continue;
      MessageReader r(*msg);
      const std::uint64_t candidate = r.get(id_bits_);
      if (r.get(checksum_bits_) != fold_checksum(candidate, checksum_bits_)) {
        continue;  // corrupted flood — the sender will retry next round
      }
      heard_valid_ = true;
      if (candidate > best_) best_ = candidate;
    }
    ++rounds_seen_;
    if (rounds_seen_ >= deadline_) {
      done_ = true;
      return;
    }
    // Retry logic: re-flood the best id every round, improvement or not —
    // under message loss the one announcement of the true maximum may have
    // been the one that was dropped.
    if (!info.neighbors.empty()) {
      outbox.send_all(std::move(MessageWriter()
                                    .put(best_, id_bits_)
                                    .put(fold_checksum(best_, checksum_bits_),
                                         checksum_bits_))
                          .finish());
    }
    has_neighbors_ = !info.neighbors.empty();
  }

  bool finished() const override { return done_ && !isolated(); }
  bool failed() const override { return done_ && isolated(); }
  std::string diagnostic() const override {
    if (!failed()) return {};
    return "leader election: no valid message received in " +
           std::to_string(deadline_) + " rounds (isolated by faults)";
  }
  std::int64_t output() const override { return best_ == my_id_ ? 1 : 0; }

 private:
  bool isolated() const { return has_neighbors_ && !heard_valid_; }

  std::size_t deadline_;
  std::uint64_t best_ = 0;
  std::uint64_t my_id_ = ~0ULL;
  std::size_t id_bits_ = 0;
  std::size_t checksum_bits_ = 0;
  std::size_t rounds_seen_ = 0;
  bool heard_valid_ = false;
  bool has_neighbors_ = false;
  bool done_ = false;
};

}  // namespace

ProgramFactory leader_election_factory() {
  return [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<LeaderElectionProgram>();
  };
}

ProgramFactory fault_tolerant_leader_election_factory(
    std::size_t deadline_rounds) {
  return [deadline_rounds](graph::NodeId, const NodeInfo&) {
    return std::make_unique<FaultTolerantLeaderProgram>(deadline_rounds);
  };
}

}  // namespace congestlb::congest
