#include "maxis/vertex_cover.hpp"

#include <algorithm>

#include "maxis/branch_and_bound.hpp"
#include "support/expect.hpp"

namespace congestlb::maxis {

bool is_vertex_cover(const graph::Graph& g, std::span<const NodeId> nodes) {
  std::vector<bool> in(g.num_nodes(), false);
  for (NodeId v : nodes) {
    CLB_EXPECT(v < g.num_nodes(), "vertex cover: node out of range");
    in[v] = true;
  }
  for (auto [u, v] : graph::edge_list(g)) {
    if (!in[u] && !in[v]) return false;
  }
  return true;
}

VcSolution checked_cover(const graph::Graph& g, std::vector<NodeId> nodes) {
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  CLB_EXPECT(is_vertex_cover(g, nodes), "checked_cover: not a vertex cover");
  VcSolution sol;
  sol.weight = g.weight_of(nodes);
  sol.nodes = std::move(nodes);
  return sol;
}

VcSolution cover_from_independent_set(const graph::Graph& g,
                                      std::span<const NodeId> is) {
  CLB_EXPECT(g.is_independent_set(is),
             "cover_from_independent_set: input is not independent");
  std::vector<bool> in_is(g.num_nodes(), false);
  for (NodeId v : is) in_is[v] = true;
  std::vector<NodeId> cover;
  cover.reserve(g.num_nodes() - is.size());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!in_is[v]) cover.push_back(v);
  }
  return checked_cover(g, std::move(cover));
}

VcSolution solve_vertex_cover_exact(const graph::Graph& g) {
  const IsSolution is = solve_exact(g);
  VcSolution sol = cover_from_independent_set(g, is.nodes);
  CLB_EXPECT(sol.weight == g.total_weight() - is.weight,
             "vertex cover: complement accounting mismatch");
  return sol;
}

VcSolution solve_vertex_cover_local_ratio(const graph::Graph& g) {
  std::vector<Weight> residual(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    residual[v] = g.weight(v);
    CLB_EXPECT(residual[v] >= 0, "local ratio requires nonnegative weights");
  }
  for (auto [u, v] : graph::edge_list(g)) {
    if (residual[u] == 0 || residual[v] == 0) continue;  // already covered
    const Weight pay = std::min(residual[u], residual[v]);
    residual[u] -= pay;
    residual[v] -= pay;
  }
  std::vector<NodeId> cover;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    // Zero-weight vertices are free: taking them never hurts and keeps the
    // cover property independent of tie-breaking.
    if (residual[v] == 0 && (g.weight(v) > 0 || g.degree(v) > 0)) {
      cover.push_back(v);
    }
  }
  return checked_cover(g, std::move(cover));
}

VcSolution solve_vertex_cover_matching(const graph::Graph& g) {
  std::vector<bool> used(g.num_nodes(), false);
  std::vector<NodeId> cover;
  for (auto [u, v] : graph::edge_list(g)) {
    if (used[u] || used[v]) continue;
    used[u] = used[v] = true;
    cover.push_back(u);
    cover.push_back(v);
  }
  return checked_cover(g, std::move(cover));
}

}  // namespace congestlb::maxis
