#include "campaign/jobs.hpp"

#include <algorithm>
#include <sstream>

#include "campaign/approx_sweep.hpp"
#include "comm/instances.hpp"
#include "graph/io.hpp"
#include "graph/matching.hpp"
#include "maxis/parallel_bnb.hpp"
#include "support/deadline.hpp"
#include "support/expect.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"

namespace congestlb::campaign {

std::string ResolvedPoint::canonical() const {
  std::ostringstream os;
  os << "ell=" << ell << ",alpha=" << alpha << ",t=" << t << ",k=" << k;
  return os.str();
}

ResolvedPoint resolve_point(const GridPoint& p) {
  const lb::GadgetParams params = lb::GadgetParams::from_l_alpha(
      p.ell, p.alpha, p.k);
  return ResolvedPoint{params.ell, params.alpha, p.t, params.k};
}

lb::GadgetParams gadget_params(const ResolvedPoint& p) {
  return lb::GadgetParams::from_l_alpha(p.ell, p.alpha, p.k);
}

std::string gadget_cache_key(const ResolvedPoint& p) {
  const lb::GadgetParams params = gadget_params(p);
  return "gadget/linear|" + p.canonical() + "|code=" + params.code->name();
}

lb::LinearConstruction build_gadget(const ResolvedPoint& p,
                                    const std::string& cached_edge_list) {
  lb::GadgetParams params = gadget_params(p);
  if (cached_edge_list.empty()) {
    return lb::LinearConstruction(std::move(params), p.t);
  }
  std::istringstream in(cached_edge_list);
  return lb::LinearConstruction(std::move(params), p.t,
                                graph::read_edge_list(in));
}

std::string serialize_graph(const graph::Graph& g) {
  std::ostringstream os;
  graph::write_edge_list(os, g);
  return os.str();
}

std::string serialize_gadget(const lb::LinearConstruction& c) {
  std::ostringstream os;
  os << "linear " << c.num_nodes() << ' ' << c.fixed_graph().num_edges()
     << ' ' << c.cut_size() << '\n';
  graph::write_edge_list(os, c.fixed_graph());
  return os.str();
}

GadgetHeader parse_gadget_header(const std::string& payload) {
  std::istringstream in(payload);
  std::string tag;
  GadgetHeader h;
  in >> tag >> h.nodes >> h.edges >> h.cut;
  CLB_EXPECT(static_cast<bool>(in) && tag == "linear",
             "campaign: malformed gadget cache payload header");
  return h;
}

lb::LinearConstruction rehydrate_gadget(const ResolvedPoint& p,
                                        const std::string& payload) {
  const std::size_t eol = payload.find('\n');
  CLB_EXPECT(eol != std::string::npos,
             "campaign: malformed gadget cache payload");
  parse_gadget_header(payload);  // validates the header line
  return build_gadget(p, payload.substr(eol + 1));
}

PointOutcome build_outcome(const lb::LinearConstruction& c) {
  PointOutcome out;
  out.nodes = c.num_nodes();
  out.edges = c.fixed_graph().num_edges();
  out.cut = c.cut_size();
  return out;
}

PointOutcome check_property(CheckKind kind, const lb::LinearConstruction& c,
                            std::uint64_t seed, std::size_t sample_budget) {
  const lb::GadgetParams& p = c.params();
  PointOutcome out;
  switch (kind) {
    case CheckKind::kProperty1: {
      // Exhaustive: every yes-witness must be independent in the fixed G.
      bool all_ok = true;
      for (std::size_t m = 0; m < p.k; ++m) {
        ++out.checked;
        all_ok =
            all_ok && c.fixed_graph().is_independent_set(c.yes_witness(m));
      }
      out.holds = all_ok && out.checked == p.k;
      return out;
    }
    case CheckKind::kProperty2:
    case CheckKind::kProperty3: {
      Rng rng(seed);
      const std::size_t budget =
          std::min<std::size_t>(p.k * (p.k - 1), sample_budget);
      std::size_t min_matching = p.num_positions() + 1;
      std::size_t max_shared = 0;
      for (std::size_t trial = 0; trial < budget; ++trial) {
        const std::size_t m1 = rng.below(p.k);
        std::size_t m2 = rng.below(p.k - 1);
        if (m2 >= m1) ++m2;
        const auto left = c.codeword_nodes(0, m1);
        const auto right = c.codeword_nodes(1, m2);
        if (kind == CheckKind::kProperty2) {
          const auto matching = graph::max_bipartite_matching(
              c.fixed_graph(), left, right);
          min_matching = std::min(min_matching, matching.size());
        } else {
          std::size_t shared = 0;
          for (std::size_t h = 0; h < p.num_positions(); ++h) {
            if (!c.fixed_graph().has_edge(left[h], right[h])) ++shared;
          }
          max_shared = std::max(max_shared, shared);
        }
        ++out.checked;
      }
      if (kind == CheckKind::kProperty2) {
        out.min_matching = min_matching;
        out.holds = min_matching >= p.ell;
      } else {
        out.max_shared = max_shared;
        out.holds = max_shared <= p.alpha;
      }
      return out;
    }
    case CheckKind::kClaim12:
    case CheckKind::kClaim35:
    case CheckKind::kApproxSweep:
    case CheckKind::kBlackboardSweep:
      break;
  }
  throw InvariantError("check_property: not a property check");
}

PointOutcome check_algorithm(CheckKind kind, const lb::LinearConstruction& c,
                             std::uint64_t seed, std::size_t eps_num,
                             std::size_t eps_den) {
  const graph::Graph& g = c.fixed_graph();
  PointOutcome out;
  out.nodes = g.num_nodes();
  out.edges = g.num_edges();
  switch (kind) {
    case CheckKind::kApproxSweep: {
      const ApproxBenchRow row =
          measure_approx_row(g, "gadget", eps_num, eps_den, seed);
      out.alg_weight = row.alg_weight;
      out.opt = row.opt_exact;
      out.bound_no = row.opt_upper;
      out.rounds = row.rounds;
      out.round_bound = row.round_bound;
      out.bits = row.bits;
      out.checked = 1;
      out.holds = row.holds;
      return out;
    }
    case CheckKind::kBlackboardSweep: {
      // Both protocols, players = t (the gadget's natural party count).
      const auto rows =
          measure_blackboard_rows(g, "gadget", c.num_players(), seed);
      bool holds = true;
      for (const ApproxBenchRow& row : rows) holds = holds && row.holds;
      // Recorded legs: the Luby run (the interesting tradeoff point); the
      // full-revelation legs are pinned by its exact-bit holds check.
      const ApproxBenchRow& luby = rows.back();
      out.alg_weight = luby.alg_weight;
      out.bound_no = luby.opt_upper;
      out.rounds = luby.rounds;
      out.round_bound = luby.round_bound;
      out.bits = luby.bits;
      out.checked = rows.size();
      out.holds = holds;
      return out;
    }
    case CheckKind::kProperty1:
    case CheckKind::kProperty2:
    case CheckKind::kProperty3:
    case CheckKind::kClaim12:
    case CheckKind::kClaim35:
      break;
  }
  throw InvariantError("check_algorithm: not an algorithm check");
}

SolveResult solve_branch(const lb::LinearConstruction& c, bool yes_branch,
                         std::size_t trials, std::uint64_t seed,
                         const DeadlineToken* deadline) {
  const lb::GadgetParams& p = c.params();
  SolveResult res;
  graph::Weight best = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    Rng rng(hash_mix(seed, trial, yes_branch ? 1 : 0));
    const auto inst =
        yes_branch
            ? comm::make_uniquely_intersecting(p.k, c.num_players(), rng, 0.3)
            : comm::make_pairwise_disjoint(p.k, c.num_players(), rng, 0.4);
    // Full engine, single-threaded: the campaign already parallelizes
    // across jobs, so nesting worker pools here would only oversubscribe.
    maxis::EngineOptions eopts;
    eopts.deadline = deadline;
    const maxis::EngineResult r = maxis::solve_maxis(c.instantiate(inst), eopts);
    best = std::max(best, r.solution.weight);
    if (r.approximate) res.approximate = true;
    if (deadline != nullptr && deadline->expired()) {
      // Remaining trials would each be cancelled at their first node; the
      // max over the trials run so far is still a certified lower bound.
      res.approximate = true;
      break;
    }
  }
  res.opt = static_cast<std::int64_t>(best);
  return res;
}

PointOutcome check_claim(CheckKind kind, const ResolvedPoint& p,
                         std::int64_t yes_opt, std::int64_t no_opt) {
  CLB_EXPECT(kind == CheckKind::kClaim12 || kind == CheckKind::kClaim35,
             "check_claim: not a claim check");
  CLB_EXPECT(yes_opt >= 0 && no_opt >= 0,
             "check_claim: missing solver outcomes");
  const lb::GadgetParams params = gadget_params(p);
  PointOutcome out;
  out.yes_opt = yes_opt;
  out.no_opt = no_opt;
  out.bound_yes =
      static_cast<std::int64_t>(lb::linear_yes_weight_formula(params, p.t));
  out.bound_no =
      static_cast<std::int64_t>(lb::linear_no_bound_formula(params, p.t));
  out.holds = yes_opt >= out.bound_yes && no_opt <= out.bound_no;
  return out;
}

}  // namespace congestlb::campaign
