// Exact MaxIS on lower-bound graphs via the paper's own case analysis.
//
// General-purpose exact MaxIS is NP-hard, but the gadget families are
// engineered so that every independent set decomposes the way the proofs
// of Claims 2, 4 and 5 dissect it:
//
//   * at most one clique node v^i_{m_i} per copy (A^i is a clique);
//   * once the set S of copies holding a clique node and their messages
//     m_i are fixed, the code-gadget part splits over positions h: all
//     code picks at position h must carry the SAME symbol r (the Figure-2
//     anti-matchings forbid mixed symbols), a copy in S can join only if
//     its codeword agrees (C(m_i)_h = r), and every copy outside S always
//     can. The per-position optimum is therefore
//         (t - |S|) + max_r #{ i in S : C(m_i)_h = r },
//     independent across positions.
//
// Enumerating (S, m-vector) costs (k+1)^t tuples — polynomial for fixed t
// and dramatically cheaper than branch-and-bound when alpha >= 2 blows up
// the search tree. Both solvers return a checked witness, so correctness
// does not rest on the derivation above: the result is a genuine
// independent set, and tests cross-validate its optimality against
// branch-and-bound.

#pragma once

#include <cstdint>

#include "comm/instances.hpp"
#include "lowerbound/linear_family.hpp"
#include "lowerbound/quadratic_family.hpp"
#include "maxis/verify.hpp"

namespace congestlb::lb {

/// Exact MaxIS of c.instantiate(inst), with an explicit witness. Cost
/// O((k+1)^t * (ell+alpha)); throws if the tuple count exceeds
/// `max_tuples` (keeps misuse failing loudly instead of hanging).
maxis::IsSolution solve_linear_structured(const LinearConstruction& c,
                                          const comm::PromiseInstance& inst,
                                          std::uint64_t max_tuples = 100'000'000);

/// Exact MaxIS of c.instantiate(inst) for the quadratic family. Each copy
/// picks an (m1-or-none, m2-or-none) pair subject to its input edges, so
/// the cost is O(((k+1)^2)^t * (ell+alpha)).
maxis::IsSolution solve_quadratic_structured(const QuadraticConstruction& c,
                                             const comm::PromiseInstance& inst,
                                             std::uint64_t max_tuples = 100'000'000);

}  // namespace congestlb::lb
