#include "support/json.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <ostream>

#include "support/expect.hpp"

namespace congestlb {

JsonWriter::JsonWriter(std::ostream& os) : os_(&os) {}

void JsonWriter::indent() {
  for (std::size_t i = 0; i < has_element_.size(); ++i) *os_ << "  ";
}

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;  // value follows "key": inline
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) *os_ << ',';
    *os_ << '\n';
    indent();
    has_element_.back() = true;
  }
}

void JsonWriter::write_escaped(std::string_view s) {
  *os_ << '"';
  for (char c : s) {
    switch (c) {
      case '"': *os_ << "\\\""; break;
      case '\\': *os_ << "\\\\"; break;
      case '\n': *os_ << "\\n"; break;
      case '\t': *os_ << "\\t"; break;
      case '\r': *os_ << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          *os_ << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          *os_ << c;
        }
    }
  }
  *os_ << '"';
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  *os_ << '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  CLB_EXPECT(!has_element_.empty(), "JsonWriter: unbalanced end_object");
  const bool had = has_element_.back();
  has_element_.pop_back();
  if (had) {
    *os_ << '\n';
    indent();
  }
  *os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  *os_ << '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  CLB_EXPECT(!has_element_.empty(), "JsonWriter: unbalanced end_array");
  const bool had = has_element_.back();
  has_element_.pop_back();
  if (had) {
    *os_ << '\n';
    indent();
  }
  *os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  CLB_EXPECT(!after_key_, "JsonWriter: key after key");
  separate();
  write_escaped(k);
  *os_ << ": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separate();
  write_escaped(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string_view(v));
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  *os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separate();
  if (std::isfinite(v)) {
    const auto flags = os_->flags();
    const auto precision = os_->precision();
    os_->precision(12);
    *os_ << v;
    os_->flags(flags);
    os_->precision(precision);
  } else {
    *os_ << "null";  // JSON has no Inf/NaN
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  *os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  *os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  return value(static_cast<std::int64_t>(v));
}

// --------------------------------------------------------------- JsonValue --

namespace {

[[noreturn]] void json_fail(std::size_t offset, const std::string& what) {
  throw InvariantError("json parse error at byte " + std::to_string(offset) +
                       ": " + what);
}

/// Recursive-descent parser over a string_view; pos_ is the byte cursor.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) json_fail(pos_, "trailing characters");
    return v;
  }

 private:
  static constexpr std::size_t kMaxDepth = 128;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) json_fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      json_fail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kMaxDepth) json_fail(pos_, "nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::make_bool(true);
        json_fail(pos_, "bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::make_bool(false);
        json_fail(pos_, "bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::make_null();
        json_fail(pos_, "bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object(std::size_t depth) {
    expect('{');
    std::vector<JsonValue::Member> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char sep = peek();
      ++pos_;
      if (sep == '}') break;
      if (sep != ',') json_fail(pos_ - 1, "expected ',' or '}'");
    }
    return JsonValue::make_object(std::move(members));
  }

  JsonValue parse_array(std::size_t depth) {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value(depth + 1));
      skip_ws();
      const char sep = peek();
      ++pos_;
      if (sep == ']') break;
      if (sep != ',') json_fail(pos_ - 1, "expected ',' or ']'");
    }
    return JsonValue::make_array(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) json_fail(pos_, "unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        json_fail(pos_ - 1, "raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) json_fail(pos_, "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) json_fail(pos_, "short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else json_fail(pos_ - 1, "bad \\u digit");
          }
          // The writer only emits \u00XX for control bytes; decode the
          // BMP code point as UTF-8 so any well-formed input survives.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: json_fail(pos_ - 1, "bad escape character");
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    bool negative = false;
    if (peek() == '-') {
      negative = true;
      ++pos_;
    }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      json_fail(pos_, "bad number");
    }
    bool integral = true;
    bool overflow = false;
    std::uint64_t mag = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      const std::uint64_t digit =
          static_cast<std::uint64_t>(text_[pos_] - '0');
      if (mag > (~0ULL - digit) / 10) overflow = true;
      else mag = mag * 10 + digit;
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        json_fail(pos_, "bad fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        json_fail(pos_, "bad exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    const double d = std::strtod(token.c_str(), nullptr);
    if (errno == ERANGE && !integral) json_fail(start, "number out of range");
    if (integral && !overflow) {
      JsonValue v = JsonValue::make_integer(mag, negative);
      return v;
    }
    return JsonValue::make_number(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void require_kind(JsonValue::Kind got, JsonValue::Kind want,
                  const char* accessor) {
  if (got != want) {
    throw InvariantError(std::string("JsonValue::") + accessor +
                         ": wrong kind");
  }
}

}  // namespace

bool JsonValue::as_bool() const {
  require_kind(kind_, Kind::kBool, "as_bool");
  return bool_;
}

double JsonValue::as_double() const {
  require_kind(kind_, Kind::kNumber, "as_double");
  if (is_integer_) {
    const double mag = static_cast<double>(int_mag_);
    return int_negative_ ? -mag : mag;
  }
  return num_;
}

std::uint64_t JsonValue::as_u64() const {
  require_kind(kind_, Kind::kNumber, "as_u64");
  CLB_EXPECT(is_integer_ && !int_negative_,
             "JsonValue::as_u64: not a non-negative integer token");
  return int_mag_;
}

std::int64_t JsonValue::as_i64() const {
  require_kind(kind_, Kind::kNumber, "as_i64");
  CLB_EXPECT(is_integer_, "JsonValue::as_i64: not an integer token");
  if (int_negative_) {
    CLB_EXPECT(int_mag_ <= 0x8000000000000000ULL,
               "JsonValue::as_i64: out of range");
    return static_cast<std::int64_t>(~int_mag_ + 1);
  }
  CLB_EXPECT(int_mag_ <= 0x7FFFFFFFFFFFFFFFULL,
             "JsonValue::as_i64: out of range");
  return static_cast<std::int64_t>(int_mag_);
}

const std::string& JsonValue::as_string() const {
  require_kind(kind_, Kind::kString, "as_string");
  return str_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  require_kind(kind_, Kind::kArray, "as_array");
  return items_;
}

const std::vector<JsonValue::Member>& JsonValue::as_object() const {
  require_kind(kind_, Kind::kObject, "as_object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  CLB_EXPECT(v != nullptr,
             "JsonValue::at: missing member '" + std::string(key) + "'");
  return *v;
}

JsonValue JsonValue::make_null() { return JsonValue(); }

JsonValue JsonValue::make_bool(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.num_ = v;
  return j;
}

JsonValue JsonValue::make_integer(std::uint64_t v, bool negative) {
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.is_integer_ = true;
  j.int_mag_ = v;
  j.int_negative_ = negative && v != 0;
  return j;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.str_ = std::move(v);
  return j;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue j;
  j.kind_ = Kind::kArray;
  j.items_ = std::move(items);
  return j;
}

JsonValue JsonValue::make_object(std::vector<Member> members) {
  JsonValue j;
  j.kind_ = Kind::kObject;
  j.members_ = std::move(members);
  return j;
}

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace congestlb
