// Leader election by maximum-id flooding.
//
// Every node tracks the largest id it has seen (initially its own) and
// re-broadcasts whenever the value improves; after n rounds the value has
// stabilized network-wide (any id travels at most D < n hops), so nodes
// stop. O(n) rounds worst case, O(D) until stabilization; one O(log n)-bit
// message per improvement.
//
// The fault-tolerant variant re-broadcasts its current best *every* round
// (not only on improvement — a dropped improvement would otherwise never be
// retried), checksums the id so corrupted floods cannot forge a leader, and
// runs for an extended deadline sized for lossy links. A node that has
// neighbors yet never receives a single valid message reports failed()
// ("isolated by faults") instead of silently electing itself.

#pragma once

#include "congest/network.hpp"

namespace congestlb::congest {

/// output(): 1 for the elected leader (the maximum id in the node's
/// connected component), 0 otherwise — so Network::selected_nodes()
/// returns exactly the leaders.
ProgramFactory leader_election_factory();

/// Retry/timeout max-id flooding for faulty networks. Same outputs;
/// terminates by `deadline_rounds` (0 = auto: 2n + 16).
ProgramFactory fault_tolerant_leader_election_factory(
    std::size_t deadline_rounds = 0);

}  // namespace congestlb::congest
