#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

namespace congestlb::serve {

namespace {

bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t put =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (put <= 0) return false;
    off += static_cast<std::size_t>(put);
  }
  return true;
}

std::string build_request(std::string_view method, std::string_view path,
                          std::string_view body) {
  std::ostringstream out;
  out << method << ' ' << path << " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
      << "Connection: close\r\n";
  if (!body.empty() || method == "POST") {
    out << "Content-Type: application/json\r\nContent-Length: "
        << body.size() << "\r\n";
  }
  out << "\r\n" << body;
  return out.str();
}

/// Parse "HTTP/1.1 <code> ..." + headers out of buf (which must contain
/// the full header block); returns the body start offset, npos on junk.
std::size_t parse_status(const std::string& buf, int* status) {
  const auto header_end = buf.find("\r\n\r\n");
  if (header_end == std::string::npos) return std::string::npos;
  int code = 0;
  if (std::sscanf(buf.c_str(), "HTTP/1.%*c %d", &code) != 1) {
    return std::string::npos;
  }
  *status = code;
  return header_end + 4;
}

}  // namespace

int HttpClient::connect_fd(std::string* error) const {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = "socket: " + std::string(std::strerror(errno));
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = "connect: " + std::string(std::strerror(errno));
    ::close(fd);
    return -1;
  }
  return fd;
}

ClientResponse HttpClient::request(std::string_view method,
                                   std::string_view path,
                                   std::string_view body) {
  ClientResponse res;
  const int fd = connect_fd(&res.error);
  if (fd < 0) return res;
  if (!send_all(fd, build_request(method, path, body))) {
    res.error = "send failed";
    ::close(fd);
    return res;
  }
  std::string buf;
  char chunk[4096];
  ssize_t got;
  while ((got = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    buf.append(chunk, static_cast<std::size_t>(got));
  }
  ::close(fd);
  const std::size_t body_at = parse_status(buf, &res.status);
  if (body_at == std::string::npos) {
    res.status = 0;
    res.error = "malformed response";
    return res;
  }
  res.body = buf.substr(body_at);
  return res;
}

int HttpClient::stream(
    std::string_view path,
    const std::function<bool(std::string_view data)>& on_data) {
  std::string error;
  const int fd = connect_fd(&error);
  if (fd < 0) return 0;
  if (!send_all(fd, build_request("GET", path, {}))) {
    ::close(fd);
    return 0;
  }
  std::string buf;
  char chunk[4096];
  int status = 0;
  std::size_t scan = std::string::npos;  // npos until headers parsed
  bool keep_going = true;
  while (keep_going) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(got));
    if (scan == std::string::npos) {
      scan = parse_status(buf, &status);
      if (scan == std::string::npos) continue;  // headers incomplete
      if (status != 200) break;  // error body, not an event stream
    }
    std::size_t nl;
    while (keep_going && (nl = buf.find('\n', scan)) != std::string::npos) {
      std::string_view line(buf.data() + scan, nl - scan);
      scan = nl + 1;
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (line.rfind("data: ", 0) == 0) {
        keep_going = on_data(line.substr(6));
      }
    }
  }
  ::close(fd);
  return status;
}

}  // namespace congestlb::serve
