#include "campaign/manifest.hpp"

#include <ostream>
#include <sstream>

#include "support/expect.hpp"
#include "support/hash.hpp"
#include "support/json.hpp"

namespace congestlb::campaign {

std::string_view to_string(CheckKind kind) {
  switch (kind) {
    case CheckKind::kProperty1: return "property1";
    case CheckKind::kProperty2: return "property2";
    case CheckKind::kProperty3: return "property3";
    case CheckKind::kClaim12: return "claim12";
    case CheckKind::kClaim35: return "claim35";
    case CheckKind::kApproxSweep: return "approx";
    case CheckKind::kBlackboardSweep: return "blackboard";
  }
  return "unknown";
}

std::optional<CheckKind> check_kind_from_string(std::string_view s) {
  if (s == "property1") return CheckKind::kProperty1;
  if (s == "property2") return CheckKind::kProperty2;
  if (s == "property3") return CheckKind::kProperty3;
  if (s == "claim12") return CheckKind::kClaim12;
  if (s == "claim35") return CheckKind::kClaim35;
  if (s == "approx") return CheckKind::kApproxSweep;
  if (s == "blackboard") return CheckKind::kBlackboardSweep;
  return std::nullopt;
}

std::string CampaignSpec::canonical() const {
  std::ostringstream os;
  os << "campaign=" << name << "|seed=" << seed << "\n";
  for (const SweepSpec& s : sweeps) {
    os << "sweep=" << s.name << "|check=" << to_string(s.check)
       << "|trials=" << s.trials << "|budget=" << s.sample_budget;
    // Appended only when non-default: pre-approx specs hash identically.
    if (s.eps_num != 1 || s.eps_den != 4) {
      os << "|eps=" << s.eps_num << "/" << s.eps_den;
    }
    os << ":";
    for (const GridPoint& p : s.points) {
      os << " (" << p.ell << "," << p.alpha << "," << p.t << ",";
      if (p.k.has_value()) {
        os << *p.k;
      } else {
        os << "auto";
      }
      os << ")";
    }
    os << "\n";
  }
  return os.str();
}

std::uint64_t CampaignSpec::content_hash() const { return fnv1a64(canonical()); }

namespace {

std::size_t parse_size(const JsonValue& v, const char* what) {
  const std::uint64_t raw = v.as_u64();
  CLB_EXPECT(raw <= ~std::size_t{0}, std::string(what) + " out of range");
  return static_cast<std::size_t>(raw);
}

GridPoint parse_point(const JsonValue& v) {
  GridPoint p;
  p.ell = parse_size(v.at("ell"), "ell");
  p.alpha = parse_size(v.at("alpha"), "alpha");
  p.t = parse_size(v.at("t"), "t");
  if (const JsonValue* k = v.find("k")) p.k = parse_size(*k, "k");
  CLB_EXPECT(p.ell >= 1 && p.alpha >= 1 && p.t >= 2,
             "campaign point: need ell >= 1, alpha >= 1, t >= 2");
  return p;
}

std::vector<std::size_t> parse_axis(const JsonValue& grid, const char* name,
                                    bool required) {
  const JsonValue* axis = grid.find(name);
  if (axis == nullptr) {
    CLB_EXPECT(!required,
               std::string("campaign grid: missing axis '") + name + "'");
    return {};
  }
  std::vector<std::size_t> out;
  for (const JsonValue& v : axis->as_array()) {
    out.push_back(parse_size(v, name));
  }
  CLB_EXPECT(!out.empty(), std::string("campaign grid: empty axis '") + name +
                               "'");
  return out;
}

void expand_grid(const JsonValue& grid, std::vector<GridPoint>& out) {
  const auto ells = parse_axis(grid, "ell", true);
  const auto alphas = parse_axis(grid, "alpha", true);
  const auto ts = parse_axis(grid, "t", true);
  const auto ks = parse_axis(grid, "k", false);
  for (const std::size_t ell : ells) {
    for (const std::size_t alpha : alphas) {
      for (const std::size_t t : ts) {
        if (ks.empty()) {
          GridPoint p{ell, alpha, t, std::nullopt};
          CLB_EXPECT(t >= 2, "campaign grid: t >= 2");
          out.push_back(p);
        } else {
          for (const std::size_t k : ks) {
            out.push_back(GridPoint{ell, alpha, t, k});
          }
        }
      }
    }
  }
}

}  // namespace

CampaignSpec parse_campaign_spec(const JsonValue& doc) {
  CLB_EXPECT(doc.is_object(), "campaign spec: document must be an object");
  CampaignSpec spec;
  if (const JsonValue* name = doc.find("campaign")) {
    spec.name = name->as_string();
  }
  if (const JsonValue* seed = doc.find("seed")) spec.seed = seed->as_u64();
  const JsonValue& sweeps = doc.at("sweeps");
  for (const JsonValue& sv : sweeps.as_array()) {
    SweepSpec s;
    s.name = sv.at("name").as_string();
    CLB_EXPECT(!s.name.empty() && s.name.find('/') == std::string::npos,
               "campaign sweep: name must be non-empty and '/'-free");
    const auto kind = check_kind_from_string(sv.at("check").as_string());
    CLB_EXPECT(kind.has_value(),
               "campaign sweep: unknown check '" + sv.at("check").as_string() +
                   "'");
    s.check = *kind;
    if (const JsonValue* trials = sv.find("trials")) {
      s.trials = parse_size(*trials, "trials");
      CLB_EXPECT(s.trials >= 1, "campaign sweep: trials >= 1");
    }
    if (const JsonValue* budget = sv.find("sample_budget")) {
      s.sample_budget = parse_size(*budget, "sample_budget");
      CLB_EXPECT(s.sample_budget >= 1, "campaign sweep: sample_budget >= 1");
    }
    if (const JsonValue* en = sv.find("eps_num")) {
      s.eps_num = parse_size(*en, "eps_num");
    }
    if (const JsonValue* ed = sv.find("eps_den")) {
      s.eps_den = parse_size(*ed, "eps_den");
    }
    CLB_EXPECT(s.eps_num >= 1 && s.eps_den >= 1,
               "campaign sweep: eps_num and eps_den must be >= 1");
    if (const JsonValue* grid = sv.find("grid")) expand_grid(*grid, s.points);
    if (const JsonValue* points = sv.find("points")) {
      for (const JsonValue& pv : points->as_array()) {
        s.points.push_back(parse_point(pv));
      }
    }
    CLB_EXPECT(!s.points.empty(),
               "campaign sweep '" + s.name + "': no points (need grid/points)");
    if (s.check == CheckKind::kClaim12) {
      for (const GridPoint& p : s.points) {
        CLB_EXPECT(p.t == 2, "claim12 sweep '" + s.name + "': requires t = 2");
      }
    }
    spec.sweeps.push_back(std::move(s));
  }
  CLB_EXPECT(!spec.sweeps.empty(), "campaign spec: no sweeps");
  for (std::size_t i = 0; i < spec.sweeps.size(); ++i) {
    for (std::size_t j = i + 1; j < spec.sweeps.size(); ++j) {
      CLB_EXPECT(spec.sweeps[i].name != spec.sweeps[j].name,
                 "campaign spec: duplicate sweep name '" +
                     spec.sweeps[i].name + "'");
    }
  }
  return spec;
}

CampaignSpec parse_campaign_spec_text(std::string_view json_text) {
  return parse_campaign_spec(parse_json(json_text));
}

void write_campaign_spec(std::ostream& os, const CampaignSpec& spec) {
  JsonWriter jw(os);
  jw.begin_object();
  jw.kv("campaign", spec.name);
  jw.kv("seed", spec.seed);
  jw.key("sweeps");
  jw.begin_array();
  for (const SweepSpec& s : spec.sweeps) {
    jw.begin_object();
    jw.kv("name", s.name);
    jw.kv("check", to_string(s.check));
    jw.kv("trials", static_cast<std::uint64_t>(s.trials));
    jw.kv("sample_budget", static_cast<std::uint64_t>(s.sample_budget));
    // Emitted only when non-default, mirroring canonical(): pre-approx
    // specs round-trip to byte-identical documents.
    if (s.eps_num != 1 || s.eps_den != 4) {
      jw.kv("eps_num", static_cast<std::uint64_t>(s.eps_num));
      jw.kv("eps_den", static_cast<std::uint64_t>(s.eps_den));
    }
    jw.key("points");
    jw.begin_array();
    for (const GridPoint& p : s.points) {
      jw.begin_object();
      jw.kv("ell", static_cast<std::uint64_t>(p.ell));
      jw.kv("alpha", static_cast<std::uint64_t>(p.alpha));
      jw.kv("t", static_cast<std::uint64_t>(p.t));
      if (p.k.has_value()) jw.kv("k", static_cast<std::uint64_t>(*p.k));
      jw.end_object();
    }
    jw.end_array();
    jw.end_object();
  }
  jw.end_array();
  jw.end_object();
  os << "\n";
}

CampaignSpec builtin_paper_campaign() {
  CampaignSpec spec;
  spec.name = "paper";
  spec.seed = 2020;

  // The 8 bench_properties shapes (P1-P3 sweep over gadget geometry).
  const std::vector<GridPoint> property_shapes = {
      {2, 1, 2, std::nullopt}, {3, 1, 3, std::nullopt},
      {4, 1, 4, std::nullopt}, {3, 2, 2, std::nullopt},
      {4, 2, 3, std::nullopt}, {6, 1, 5, std::nullopt},
      {5, 2, 4, std::nullopt}, {8, 2, 3, std::nullopt}};
  const CheckKind property_checks[] = {
      CheckKind::kProperty1, CheckKind::kProperty2, CheckKind::kProperty3};
  const char* property_names[] = {"P1", "P2", "P3"};
  for (std::size_t i = 0; i < 3; ++i) {
    SweepSpec s;
    s.name = property_names[i];
    s.check = property_checks[i];
    s.points = property_shapes;
    spec.sweeps.push_back(std::move(s));
  }

  // Claims 1-2 at t = 2: the 6 bench_gap_linear C12 shapes.
  {
    SweepSpec s;
    s.name = "C12";
    s.check = CheckKind::kClaim12;
    s.trials = 3;
    s.points = {{2, 1, 2, 3}, {3, 1, 2, 4}, {4, 1, 2, 5},
                {6, 1, 2, 7}, {4, 2, 2, 16}, {8, 1, 2, 9}};
    spec.sweeps.push_back(std::move(s));
  }

  // Claims 3+5 at general t: the 7 bench_gap_linear C35 shapes.
  {
    SweepSpec s;
    s.name = "C35";
    s.check = CheckKind::kClaim35;
    s.trials = 2;
    s.points = {{5, 1, 3, 6}, {4, 1, 3, 5},  {6, 1, 4, 7}, {8, 1, 4, 9},
                {8, 1, 5, 9}, {5, 2, 3, 20}, {10, 1, 6, 11}};
    spec.sweeps.push_back(std::move(s));
  }
  return spec;
}

CampaignSpec builtin_smoke_campaign() {
  CampaignSpec spec;
  spec.name = "smoke";
  spec.seed = 2020;
  const std::vector<GridPoint> shapes = {{2, 1, 2, std::nullopt},
                                         {2, 1, 3, std::nullopt},
                                         {3, 1, 2, std::nullopt},
                                         {3, 1, 3, std::nullopt}};
  SweepSpec p1{"P1", CheckKind::kProperty1, shapes, 1, 20};
  SweepSpec p2{"P2", CheckKind::kProperty2, shapes, 1, 20};
  SweepSpec p3{"P3", CheckKind::kProperty3, shapes, 1, 20};
  SweepSpec c12{"C12",
                CheckKind::kClaim12,
                {{2, 1, 2, 3}, {3, 1, 2, 4}},
                2,
                20};
  SweepSpec c35{"C35",
                CheckKind::kClaim35,
                {{4, 1, 3, 5}, {5, 1, 3, 6}},
                1,
                20};
  spec.sweeps = {p1, p2, p3, c12, c35};
  return spec;
}

CampaignSpec builtin_approx_campaign() {
  CampaignSpec spec;
  spec.name = "approx_sweep";
  spec.seed = 2020;
  // Gadget shapes small enough for branch and bound to certify the
  // optimum (<= 40 nodes), so every point's gap sandwich closes exactly.
  const std::vector<GridPoint> shapes = {{2, 1, 2, std::nullopt},
                                         {2, 1, 3, std::nullopt},
                                         {3, 1, 2, std::nullopt}};
  SweepSpec coarse;
  coarse.name = "A4";
  coarse.check = CheckKind::kApproxSweep;
  coarse.points = shapes;
  SweepSpec fine;
  fine.name = "A8";
  fine.check = CheckKind::kApproxSweep;
  fine.points = shapes;
  fine.eps_num = 1;
  fine.eps_den = 8;
  spec.sweeps = {coarse, fine};
  return spec;
}

CampaignSpec builtin_blackboard_campaign() {
  CampaignSpec spec;
  spec.name = "blackboard_sweep";
  spec.seed = 2020;
  SweepSpec s;
  s.name = "BB";
  s.check = CheckKind::kBlackboardSweep;
  s.points = {{2, 1, 2, std::nullopt},
              {2, 1, 3, std::nullopt},
              {3, 1, 2, std::nullopt},
              {3, 1, 3, std::nullopt}};
  spec.sweeps = {s};
  return spec;
}

std::optional<CampaignSpec> builtin_campaign(std::string_view name) {
  if (name == "paper") return builtin_paper_campaign();
  if (name == "smoke") return builtin_smoke_campaign();
  if (name == "approx_sweep") return builtin_approx_campaign();
  if (name == "blackboard_sweep") return builtin_blackboard_campaign();
  return std::nullopt;
}

}  // namespace congestlb::campaign
