// Regenerate the paper's figures as Graphviz files.
//
//   $ ./figures [output_dir]
//
// Writes figure1..figure5 .dot files (render with `dot -Tpng`). Unlike
// bench_constructions (which prints verification tables), this example is
// the user-facing figure generator, with per-cluster layouts matching the
// paper's drawings.

#include <filesystem>
#include <fstream>
#include <iostream>

#include "comm/instances.hpp"
#include "graph/io.hpp"
#include "lowerbound/linear_family.hpp"
#include "lowerbound/quadratic_family.hpp"
#include "lowerbound/unweighted.hpp"
#include "support/rng.hpp"

namespace clb = congestlb;

namespace {

void write(const std::filesystem::path& dir, const std::string& name,
           const clb::graph::Graph& g, const clb::graph::DotOptions& opts) {
  const auto path = dir / (name + ".dot");
  std::ofstream out(path);
  clb::graph::write_dot(out, g, opts);
  std::cout << "wrote " << path.string() << "  (" << g.num_nodes()
            << " nodes, " << g.num_edges() << " edges)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : "paper-figures";
  std::filesystem::create_directories(dir);

  const auto p = clb::lb::GadgetParams::from_l_alpha(2, 1, 3);

  // Figure 1: the base gadget H.
  {
    const clb::lb::BaseGadget h(p);
    clb::graph::DotOptions opts;
    opts.graph_name = "H";
    for (std::size_t m = 0; m < p.k; ++m) opts.cluster[h.a_node(m)] = "A";
    for (std::size_t pos = 0; pos < p.num_positions(); ++pos) {
      for (std::size_t r = 0; r < p.clique_size(); ++r) {
        opts.cluster[h.code_node(pos, r)] = "C" + std::to_string(pos + 1);
      }
    }
    write(dir, "figure1_base_gadget", h.graph(), opts);
  }

  // Figure 2: one anti-matching, isolated for clarity.
  {
    const clb::lb::LinearConstruction c(p, 2);
    std::vector<clb::graph::NodeId> nodes;
    for (std::size_t r = 0; r < p.clique_size(); ++r) {
      nodes.push_back(c.code_node(0, 0, r));
    }
    for (std::size_t r = 0; r < p.clique_size(); ++r) {
      nodes.push_back(c.code_node(1, 0, r));
    }
    const auto sub = c.fixed_graph().induced_subgraph(nodes);
    clb::graph::DotOptions opts;
    opts.graph_name = "AntiMatching";
    for (std::size_t i = 0; i < p.clique_size(); ++i) {
      opts.cluster[i] = "C_h^i";
      opts.cluster[p.clique_size() + i] = "C_h^j";
    }
    write(dir, "figure2_anti_matching", sub, opts);
  }

  // Figure 3: the 3-player construction with an instantiated input.
  {
    const clb::lb::LinearConstruction c(p, 3);
    clb::Rng rng(1);
    const auto inst = clb::comm::make_uniquely_intersecting(p.k, 3, rng, 0.3);
    const auto g = c.instantiate(inst);
    clb::graph::DotOptions opts;
    opts.graph_name = "G_x";
    for (std::size_t i = 0; i < 3; ++i) {
      for (clb::graph::NodeId v : c.partition(i)) {
        opts.cluster[v] = "V^" + std::to_string(i + 1);
      }
    }
    write(dir, "figure3_linear_t3", g, opts);
  }

  // Figures 4-6: the quadratic construction with one input edge.
  {
    const clb::lb::QuadraticConstruction c(p, 2);
    clb::comm::PromiseInstance inst;
    inst.k = c.string_length();
    inst.t = 2;
    inst.kind = clb::comm::PromiseKind::kUniquelyIntersecting;
    inst.strings = {std::vector<std::uint8_t>(inst.k, 1),
                    std::vector<std::uint8_t>(inst.k, 1)};
    inst.strings[0][c.pair_index(0, 0)] = 0;
    inst.witness = c.pair_index(1, 1);
    const auto g = c.instantiate(inst);
    clb::graph::DotOptions opts;
    opts.graph_name = "F_x";
    for (std::size_t i = 0; i < 2; ++i) {
      for (std::size_t b = 0; b < 2; ++b) {
        const auto base = c.a_node(i, b, 0);
        for (std::size_t off = 0; off < p.nodes_per_copy(); ++off) {
          opts.cluster[base + off] = "V^(" + std::to_string(i + 1) + "," +
                                     std::to_string(b + 1) + ")";
        }
      }
    }
    write(dir, "figure5_quadratic_t2", g, opts);
  }

  // Bonus: the Remark-1 unweighted expansion of a tiny weighted instance.
  {
    const clb::lb::LinearConstruction c(p, 2);
    clb::Rng rng(2);
    const auto inst = clb::comm::make_uniquely_intersecting(p.k, 2, rng, 0.3);
    const auto ex = clb::lb::to_unweighted(c.instantiate(inst));
    clb::graph::DotOptions opts;
    opts.graph_name = "Unweighted";
    write(dir, "remark1_unweighted_expansion", ex.graph, opts);
  }

  std::cout << "render with: dot -Tpng " << (dir / "figure1_base_gadget.dot").string()
            << " -o figure1.png\n";
  return 0;
}
