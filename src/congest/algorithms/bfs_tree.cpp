#include "congest/algorithms/bfs_tree.hpp"

#include "support/expect.hpp"
#include "support/math.hpp"

namespace congestlb::congest {

namespace {

class BfsLevelProgram final : public NodeProgram {
 public:
  explicit BfsLevelProgram(graph::NodeId root) : root_(root) {}

  void round(const NodeInfo& info, const Inbox& inbox, Outbox& outbox,
             Rng&) override {
    if (level_bits_ == 0) {
      level_bits_ = static_cast<std::size_t>(
          std::max(1, ceil_log2(std::max<std::size_t>(2, info.n + 1))));
      if (info.id == root_) level_ = 0;
    }
    // Adopt the first level we hear (BFS delivers the minimum first in a
    // synchronous network).
    for (const auto& msg : inbox) {
      if (!msg || level_ != kUnset) continue;
      MessageReader r(*msg);
      level_ = r.get(level_bits_) + 1;
    }
    if (level_ != kUnset && !announced_) {
      announced_ = true;
      if (!info.neighbors.empty()) {
        Message m =
            std::move(MessageWriter().put(level_, level_bits_)).finish();
        outbox.send_all(m);
      }
    }
  }

  bool finished() const override { return announced_; }
  std::int64_t output() const override {
    return level_ == kUnset ? 0 : static_cast<std::int64_t>(level_ + 1);
  }

 private:
  static constexpr std::uint64_t kUnset = ~0ULL;
  graph::NodeId root_;
  std::uint64_t level_ = kUnset;
  std::size_t level_bits_ = 0;
  bool announced_ = false;
};

/// The retrying variant: re-broadcast the current best level every round
/// until the deadline, believe only checksummed messages, keep the minimum.
class FaultTolerantBfsProgram final : public NodeProgram {
 public:
  FaultTolerantBfsProgram(graph::NodeId root, std::size_t deadline)
      : root_(root), deadline_(deadline) {}

  void round(const NodeInfo& info, const Inbox& inbox, Outbox& outbox,
             Rng&) override {
    if (level_bits_ == 0) {
      level_bits_ = static_cast<std::size_t>(
          std::max(1, ceil_log2(std::max<std::size_t>(2, info.n + 1))));
      // Spend up to 4 bits on the checksum, fewer on very narrow edges.
      CLB_EXPECT(info.bits_per_edge > level_bits_,
                 "fault-tolerant BFS: bandwidth too small for level + checksum");
      checksum_bits_ = std::min<std::size_t>(4, info.bits_per_edge - level_bits_);
      if (deadline_ == 0) deadline_ = 3 * info.n + 16;
      if (info.id == root_) level_ = 0;
    }
    for (const auto& msg : inbox) {
      if (!msg) continue;
      MessageReader r(*msg);
      const std::uint64_t heard = r.get(level_bits_);
      if (r.get(checksum_bits_) != fold_checksum(heard, checksum_bits_)) {
        continue;  // corrupted in flight — retry will bring a clean copy
      }
      if (heard + 1 < level_) level_ = heard + 1;
    }
    ++rounds_seen_;
    if (rounds_seen_ >= deadline_) {
      done_ = true;
      return;
    }
    // Retry logic: announce the best known level every round — a dropped
    // announcement is simply re-sent next round.
    if (level_ != kUnset && !info.neighbors.empty()) {
      outbox.send_all(std::move(MessageWriter()
                                    .put(level_, level_bits_)
                                    .put(fold_checksum(level_, checksum_bits_),
                                         checksum_bits_))
                          .finish());
    }
  }

  bool finished() const override { return done_ && level_ != kUnset; }
  bool failed() const override { return done_ && level_ == kUnset; }
  std::string diagnostic() const override {
    if (!failed()) return {};
    return "BFS level never heard from root " + std::to_string(root_) +
           " within " + std::to_string(deadline_) + " rounds";
  }
  std::int64_t output() const override {
    return level_ == kUnset ? 0 : static_cast<std::int64_t>(level_ + 1);
  }

 private:
  static constexpr std::uint64_t kUnset = ~0ULL;
  graph::NodeId root_;
  std::size_t deadline_;
  std::uint64_t level_ = kUnset;
  std::size_t level_bits_ = 0;
  std::size_t checksum_bits_ = 0;
  std::size_t rounds_seen_ = 0;
  bool done_ = false;
};

}  // namespace

ProgramFactory bfs_level_factory(graph::NodeId root) {
  return [root](graph::NodeId, const NodeInfo&) {
    return std::make_unique<BfsLevelProgram>(root);
  };
}

ProgramFactory fault_tolerant_bfs_factory(graph::NodeId root,
                                          std::size_t deadline_rounds) {
  return [root, deadline_rounds](graph::NodeId, const NodeInfo&) {
    return std::make_unique<FaultTolerantBfsProgram>(root, deadline_rounds);
  };
}

}  // namespace congestlb::congest
