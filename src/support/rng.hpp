// Deterministic, seedable random number generation.
//
// All randomized components of the library (instance generators, Luby's
// algorithm, property-test sweeps) draw from Rng so that every experiment is
// reproducible from a single 64-bit seed. The generator is xoshiro256**,
// seeded through splitmix64 — fast, high quality, and fully self-contained
// (no dependence on libstdc++'s unspecified distribution implementations,
// so streams are identical across platforms).

#pragma once

#include <cstdint>
#include <vector>

namespace congestlb {

/// splitmix64 step; used for seeding and as a cheap standalone mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG with convenience sampling helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 random bits.
  std::uint64_t next();

  // UniformRandomBitGenerator interface (usable with std::shuffle etc.).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli(p) coin flip, p in [0,1].
  bool chance(double p);

  /// Uniform double in [0,1).
  double uniform();

  /// A uniformly random size-m subset of {0,...,n-1}, sorted ascending.
  /// Requires m <= n. (Floyd's algorithm; O(m) expected draws.)
  std::vector<std::size_t> sample(std::size_t n, std::size_t m);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-node randomness).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace congestlb
