// Experiment FAULT: the robustness layer under measurement.
//
// Two questions: (1) what does fault injection cost the fault-tolerant
// algorithms — extra rounds and extra delivered bits — as the drop rate
// rises; (2) what is the injector's own overhead on a fault-free run (the
// classify() hash per message when all rates are zero is skipped entirely,
// so the baseline column doubles as a sanity check that faults are pay-as-
// you-go). Every row is reproducible from the printed seed.

#include <chrono>
#include <iostream>

#include "congest/algorithms/bfs_tree.hpp"
#include "congest/algorithms/leader_election.hpp"
#include "congest/algorithms/luby_mis.hpp"
#include "congest/network.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace clb = congestlb;
using clb::Table;

namespace {

struct FaultRun {
  std::size_t rounds = 0;
  std::uint64_t bits = 0;
  std::uint64_t dropped = 0;
  bool all_finished = false;
  bool any_failed = false;
  double millis = 0;
};

FaultRun run(const clb::graph::Graph& g,
             const clb::congest::ProgramFactory& factory, double drop_rate,
             std::uint64_t seed) {
  clb::congest::NetworkConfig cfg;
  cfg.seed = seed;
  cfg.faults.drop_rate = drop_rate;
  clb::congest::Network net(g, factory, cfg);
  const auto t0 = std::chrono::steady_clock::now();
  const auto stats = net.run();
  const auto t1 = std::chrono::steady_clock::now();
  FaultRun r;
  r.rounds = stats.rounds;
  r.bits = stats.bits_sent;
  r.dropped = stats.messages_dropped;
  r.all_finished = stats.all_finished;
  r.any_failed = stats.any_failed;
  r.millis = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return r;
}

}  // namespace

int main() {
  std::cout << "=== bench_faults: fault injection cost ===\n";
  constexpr std::uint64_t kSeed = 808;
  clb::Rng rng(kSeed);

  struct Algo {
    const char* name;
    clb::congest::ProgramFactory factory;
  };

  clb::print_heading(std::cout,
                     "fault-tolerant algorithms vs drop rate "
                     "(G(n, 0.15) connected, seed 808)");
  {
    Table t({"n", "algorithm", "drop", "rounds", "bits", "dropped",
             "finished", "failed", "ms"});
    for (std::size_t n : {32, 64, 128}) {
      const auto g = clb::graph::gnp_random_connected(rng, n, 0.15);
      const Algo algos[] = {
          {"ft-bfs", clb::congest::fault_tolerant_bfs_factory(0)},
          {"ft-leader", clb::congest::fault_tolerant_leader_election_factory()},
          {"ft-luby", clb::congest::fault_tolerant_luby_mis_factory()},
      };
      for (const auto& a : algos) {
        for (double drop : {0.0, 0.02, 0.05, 0.10, 0.20}) {
          const auto r = run(g, a.factory, drop, kSeed + n);
          t.row(n, a.name, clb::fmt_double(drop, 2), r.rounds, r.bits,
                r.dropped, r.all_finished ? "yes" : "no",
                r.any_failed ? "yes" : "no", clb::fmt_double(r.millis, 2));
        }
      }
    }
    t.print(std::cout);
  }

  std::cout << "\nfault-free rows show the injector is pay-as-you-go: zero\n"
               "rates bypass classify() entirely, so the drop=0 line is the\n"
               "plain simulator. Rounds grow only modestly with the drop\n"
               "rate — the every-round re-broadcast bounds recovery time.\n";
  return 0;
}
