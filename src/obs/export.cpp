#include "obs/export.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <string>

#include "support/json.hpp"

namespace congestlb::obs {

namespace {

/// Trace-clock offsets inside one round: begin < scheduled marks < sends <
/// deliveries < end, so the timeline mirrors the engine's phase order.
constexpr std::uint64_t kOffBegin = 0;
constexpr std::uint64_t kOffSend = 1;
constexpr std::uint64_t kOffDeliver = 2;

std::uint64_t lane_of_node(std::uint32_t v) {
  // tid 0 is the "rounds" lane; nodes start at 1.
  return static_cast<std::uint64_t>(v) + 1;
}

/// One instant ("i") event on a node/round lane.
void instant(JsonWriter& jw, const char* name, std::uint64_t ts,
             std::uint64_t pid, std::uint64_t tid) {
  jw.begin_object();
  jw.kv("name", name);
  jw.kv("ph", "i");
  jw.kv("s", "t");
  jw.kv("ts", ts);
  jw.kv("pid", pid);
  jw.kv("tid", tid);
}

void meta_name(JsonWriter& jw, const char* kind, std::uint64_t pid,
               std::uint64_t tid, const std::string& name) {
  jw.begin_object();
  jw.kv("name", kind);
  jw.kv("ph", "M");
  jw.kv("pid", pid);
  jw.kv("tid", tid);
  jw.key("args");
  jw.begin_object();
  jw.kv("name", name);
  jw.end_object();
  jw.end_object();
}

}  // namespace

void write_chrome_trace(std::ostream& os, std::span<const TraceEvent> events,
                        const ChromeTraceOptions& options) {
  const std::uint64_t ticks = options.ticks_per_round == 0
                                  ? 1
                                  : options.ticks_per_round;
  JsonWriter jw(os);
  jw.begin_object();
  jw.kv("displayTimeUnit", "ms");
  jw.key("traceEvents");
  jw.begin_array();

  // Process/thread metadata for every lane that will appear.
  meta_name(jw, "process_name", 0, 0, "congest engine");
  meta_name(jw, "thread_name", 0, 0, "rounds");
  std::uint32_t max_node = 0;
  bool any_node = false;
  bool any_board = false;
  std::uint32_t max_player = 0;
  for (const TraceEvent& ev : events) {
    if (ev.kind == EventKind::kBlackboardPost) {
      any_board = true;
      if (ev.a != TraceEvent::kNone) max_player = std::max(max_player, ev.a);
      continue;
    }
    for (std::uint32_t v : {ev.a, ev.b}) {
      if (v != TraceEvent::kNone) {
        any_node = true;
        max_node = std::max(max_node, v);
      }
    }
  }
  if (any_node) {
    for (std::uint32_t v = 0; v <= max_node; ++v) {
      meta_name(jw, "thread_name", 0, lane_of_node(v),
                "node " + std::to_string(v));
    }
  }
  if (any_board) {
    meta_name(jw, "process_name", 1, 0, "blackboard");
    for (std::uint32_t p = 0; p <= max_player; ++p) {
      meta_name(jw, "thread_name", 1, p, "player " + std::to_string(p));
    }
  }
  if (!options.cut_edges.empty()) {
    meta_name(jw, "process_name", 2, 0, "cut edges");
  }

  // Per-(cut-edge, round) delivered bits, filled while walking the events.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> cut_index;
  for (std::size_t i = 0; i < options.cut_edges.size(); ++i) {
    auto [u, v] = options.cut_edges[i];
    if (u > v) std::swap(u, v);
    cut_index.emplace(std::make_pair(u, v), i);
  }
  std::vector<std::map<std::uint32_t, std::uint64_t>> cut_bits(
      options.cut_edges.size());

  for (const TraceEvent& ev : events) {
    const std::uint64_t base = static_cast<std::uint64_t>(ev.round) * ticks;
    switch (ev.kind) {
      case EventKind::kRoundBegin:
        break;  // the round slice is emitted at kRoundEnd
      case EventKind::kRoundEnd:
        jw.begin_object();
        jw.kv("name", "round");
        jw.kv("ph", "X");
        jw.kv("ts", base + kOffBegin);
        jw.kv("dur", ticks);
        jw.kv("pid", 0);
        jw.kv("tid", 0);
        jw.key("args");
        jw.begin_object();
        jw.kv("round", static_cast<std::uint64_t>(ev.round));
        jw.kv("delivered", ev.value);
        jw.end_object();
        jw.end_object();
        break;
      case EventKind::kSend:
        instant(jw, "send", base + kOffSend, 0, lane_of_node(ev.a));
        jw.key("args");
        jw.begin_object();
        jw.kv("to", static_cast<std::uint64_t>(ev.b));
        jw.kv("bits", ev.value);
        jw.end_object();
        jw.end_object();
        break;
      case EventKind::kDeliver:
      case EventKind::kDeliverCorrupt:
      case EventKind::kDeliverEcho:
      case EventKind::kDrop: {
        instant(jw, to_string(ev.kind), base + kOffDeliver, 0,
                lane_of_node(ev.b));
        jw.key("args");
        jw.begin_object();
        jw.kv("from", static_cast<std::uint64_t>(ev.a));
        jw.kv("bits", ev.value);
        jw.end_object();
        jw.end_object();
        if (ev.kind != EventKind::kDrop && !cut_index.empty()) {
          auto key = std::make_pair(std::min(ev.a, ev.b),
                                    std::max(ev.a, ev.b));
          const auto it = cut_index.find(key);
          if (it != cut_index.end()) {
            cut_bits[it->second][ev.round] += ev.value;
          }
        }
        break;
      }
      case EventKind::kCrash:
      case EventKind::kRecover:
      case EventKind::kCrashScheduled:
      case EventKind::kRecoverScheduled:
        instant(jw, to_string(ev.kind), base + kOffBegin, 0,
                lane_of_node(ev.a));
        jw.end_object();
        break;
      case EventKind::kPhase:
        instant(jw, "phase", base + kOffBegin, 0, 0);
        jw.key("args");
        jw.begin_object();
        jw.kv("id", ev.value);
        jw.end_object();
        jw.end_object();
        break;
      case EventKind::kBlackboardPost:
        // `round` carries the transcript entry index for blackboard posts.
        instant(jw, "post", base, 1, static_cast<std::uint64_t>(ev.a));
        jw.key("args");
        jw.begin_object();
        jw.kv("bits", ev.value);
        jw.end_object();
        jw.end_object();
        break;
    }
  }

  // One counter lane per cut edge: the bits that crossed it each round.
  for (std::size_t i = 0; i < options.cut_edges.size(); ++i) {
    const auto [u, v] = options.cut_edges[i];
    const std::string name =
        "cut " + std::to_string(u) + "-" + std::to_string(v);
    for (const auto& [round, bits] : cut_bits[i]) {
      jw.begin_object();
      jw.kv("name", name);
      jw.kv("ph", "C");
      jw.kv("ts", static_cast<std::uint64_t>(round) * ticks);
      jw.kv("pid", 2);
      jw.kv("tid", static_cast<std::uint64_t>(i));
      jw.key("args");
      jw.begin_object();
      jw.kv("bits", bits);
      jw.end_object();
      jw.end_object();
    }
  }

  jw.end_array();
  jw.end_object();
  os << "\n";
}

void append_metrics(JsonWriter& jw, const MetricsRegistry& registry) {
  append_metrics(jw, registry, std::string_view{});
}

void append_metrics(JsonWriter& jw, const MetricsRegistry& registry,
                    std::string_view prefix) {
  const auto matches = [prefix](const std::string& name) {
    return name.size() >= prefix.size() &&
           std::string_view(name).substr(0, prefix.size()) == prefix;
  };
  jw.begin_object();
  jw.key("counters");
  jw.begin_object();
  for (const auto& c : registry.counters()) {
    if (matches(c->name())) jw.kv(c->name(), c->value());
  }
  jw.end_object();
  jw.key("gauges");
  jw.begin_object();
  for (const auto& g : registry.gauges()) {
    if (matches(g->name())) jw.kv(g->name(), g->value());
  }
  jw.end_object();
  jw.key("histograms");
  jw.begin_object();
  for (const auto& h : registry.histograms()) {
    if (!matches(h->name())) continue;
    jw.key(h->name());
    jw.begin_object();
    jw.key("upper_bounds");
    jw.begin_array();
    for (std::uint64_t b : h->upper_bounds()) jw.value(b);
    jw.end_array();
    jw.key("counts");
    jw.begin_array();
    for (std::uint64_t c : h->bucket_counts()) jw.value(c);
    jw.end_array();
    jw.kv("count", h->count());
    jw.kv("sum", h->sum());
    jw.end_object();
  }
  jw.end_object();
  jw.end_object();
}

void write_metrics_json(std::ostream& os, const MetricsRegistry& registry) {
  JsonWriter jw(os);
  append_metrics(jw, registry);
  os << "\n";
}

}  // namespace congestlb::obs
