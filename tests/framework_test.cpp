// The reduction framework (Section 3): partition-locality diffing, the
// Theorem 5 / Corollary 1 round-bound arithmetic, the Theorem 1/2 closed
// forms, and the 1/t-approximation split-solver limitation argument.

#include <gtest/gtest.h>

#include "lowerbound/framework.hpp"
#include "lowerbound/linear_family.hpp"
#include "comm/instances.hpp"
#include "comm/lower_bound.hpp"
#include "maxis/branch_and_bound.hpp"
#include "maxis/brute_force.hpp"
#include "support/expect.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"

namespace congestlb::lb {
namespace {

// ------------------------------------------------------ locality diffing --

TEST(Locality, IdenticalGraphsAreOk) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  const auto d = verify_partition_locality(g, g, 0, 2);
  EXPECT_TRUE(d.ok);
  EXPECT_EQ(d.edge_diffs_inside + d.edge_diffs_outside, 0u);
}

TEST(Locality, InsideWeightDiffIsOk) {
  graph::Graph a(4), b(4);
  b.set_weight(1, 7);
  const auto d = verify_partition_locality(a, b, 0, 2);
  EXPECT_TRUE(d.ok);
  EXPECT_EQ(d.weight_diffs_inside, 1u);
}

TEST(Locality, OutsideWeightDiffFlagged) {
  graph::Graph a(4), b(4);
  b.set_weight(3, 7);
  const auto d = verify_partition_locality(a, b, 0, 2);
  EXPECT_FALSE(d.ok);
  EXPECT_EQ(d.weight_diffs_outside, 1u);
}

TEST(Locality, EdgeDiffClassification) {
  graph::Graph a(4), b(4);
  b.add_edge(0, 1);  // inside [0,2)
  b.add_edge(2, 3);  // outside
  a.add_edge(1, 2);  // straddling: counts as outside
  const auto d = verify_partition_locality(a, b, 0, 2);
  EXPECT_FALSE(d.ok);
  EXPECT_EQ(d.edge_diffs_inside, 1u);
  EXPECT_EQ(d.edge_diffs_outside, 2u);
}

TEST(Locality, RejectsMismatchedSizes) {
  EXPECT_THROW(verify_partition_locality(graph::Graph(2), graph::Graph(3), 0, 1),
               InvariantError);
  EXPECT_THROW(verify_partition_locality(graph::Graph(2), graph::Graph(2), 1, 3),
               InvariantError);
}

// ------------------------------------------------------------ round bound --

TEST(RoundBound, CorollaryOneArithmetic) {
  // rounds = CC(k,t) / (cut * log2 n): k=1000, t=2 -> 500 bits;
  // cut=10, n=1024 -> 10 bits/edge -> 5 rounds.
  const auto rb = reduction_round_bound(1000, 2, 10, 1024);
  EXPECT_DOUBLE_EQ(rb.cc_bits, 500.0);
  EXPECT_EQ(rb.bits_per_edge, 10u);
  EXPECT_DOUBLE_EQ(rb.rounds, 5.0);
}

TEST(RoundBound, ExplicitBandwidthOverride) {
  const auto rb = reduction_round_bound(1000, 2, 10, 1024, 25);
  EXPECT_EQ(rb.bits_per_edge, 25u);
  EXPECT_DOUBLE_EQ(rb.rounds, 2.0);
}

TEST(RoundBound, EmptyCutRejected) {
  EXPECT_THROW(reduction_round_bound(10, 2, 0, 16), InvariantError);
}

TEST(Theorem1, BoundGrowsNearLinearly) {
  // Omega(n / log^3 n). Per-step growth is jittery (the realized cut jumps
  // with the prime alphabet), so assert monotonicity plus the aggregate
  // scaling over 10 doublings: n grows 1024x, the bound should grow by
  // roughly 1024 / (log-ratio)^3 ~ 200x, within generous constants.
  const double eps = 0.25;
  double first = 0, prev = 0;
  for (std::size_t e = 14; e <= 24; e += 2) {
    const auto rb = theorem1_bound(std::size_t{1} << e, eps);
    EXPECT_GT(rb.rounds, prev) << "n=2^" << e;
    prev = rb.rounds;
    if (first == 0) first = rb.rounds;
  }
  const double total_growth = prev / first;
  EXPECT_GT(total_growth, 50.0);
  EXPECT_LT(total_growth, 500.0);
}

TEST(Theorem2, BoundGrowsNearQuadratically) {
  // Omega(n^2 / log^3 n): over 10 doublings, growth ~ 2^20 / slack ~ 2e5.
  const double eps = 0.2;
  double first = 0, prev = 0;
  for (std::size_t e = 14; e <= 24; e += 2) {
    const auto rb = theorem2_bound(std::size_t{1} << e, eps);
    EXPECT_GT(rb.rounds, prev) << "n=2^" << e;
    prev = rb.rounds;
    if (first == 0) first = rb.rounds;
  }
  const double total_growth = prev / first;
  EXPECT_GT(total_growth, 5e4);
  EXPECT_LT(total_growth, 5e5);
}

TEST(Theorems, QuadraticDominatesLinearAtSameN) {
  const auto lin = theorem1_bound(1 << 14, 0.25);
  const auto quad = theorem2_bound(1 << 14, 0.2);
  EXPECT_GT(quad.rounds, lin.rounds);
}

TEST(Theorems, SmallerEpsilonWeakensConstants) {
  // Smaller eps -> more players -> bigger cut and smaller CC share -> a
  // smaller concrete bound at fixed n (the asymptotics hide t).
  const auto loose = theorem1_bound(1 << 14, 0.4);
  const auto tight = theorem1_bound(1 << 14, 0.05);
  EXPECT_GT(loose.rounds, tight.rounds);
}

TEST(Theorems, RejectTinyN) {
  EXPECT_THROW(theorem1_bound(8, 0.2), InvariantError);
  EXPECT_THROW(theorem2_bound(8, 0.2), InvariantError);
}

// ----------------------------------------------------------- split solver --

TEST(SplitSolver, AchievesAtLeastOneOverT) {
  Rng rng(55);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 6 + rng.below(12);
    const std::size_t parts_count = 2 + rng.below(3);
    graph::Graph g(n);
    for (graph::NodeId v = 0; v < n; ++v) {
      g.set_weight(v, static_cast<graph::Weight>(1 + rng.below(5)));
    }
    for (graph::NodeId u = 0; u < n; ++u) {
      for (graph::NodeId v = u + 1; v < n; ++v) {
        if (rng.chance(0.35)) g.add_edge(u, v);
      }
    }
    std::vector<std::vector<graph::NodeId>> parts(parts_count);
    for (graph::NodeId v = 0; v < n; ++v) {
      parts[rng.below(parts_count)].push_back(v);
    }
    // Drop empty parts (allowed by the API contract to be non-empty sets).
    std::erase_if(parts, [](const auto& p) { return p.empty(); });
    if (parts.empty()) continue;

    const auto result = split_solver_approximation(g, parts);
    EXPECT_TRUE(g.is_independent_set(result.best_part_solution.nodes));
    const auto opt = maxis::solve_brute_force(g).weight;
    EXPECT_GE(result.best_part_solution.weight * static_cast<graph::Weight>(parts.size()),
              opt)
        << "split solver below 1/t";
    EXPECT_LT(result.winning_part, parts.size());
  }
}

TEST(SplitSolver, CommunicationIsLogarithmic) {
  graph::Graph g(100);
  for (graph::NodeId v = 0; v + 1 < 100; ++v) g.add_edge(v, v + 1);
  std::vector<std::vector<graph::NodeId>> parts(2);
  for (graph::NodeId v = 0; v < 100; ++v) parts[v < 50 ? 0 : 1].push_back(v);
  const auto result = split_solver_approximation(g, parts);
  // 2 players, each announcing O(log totalweight) bits.
  EXPECT_LE(result.communication_bits, 2u * 8);
  EXPECT_GT(result.communication_bits, 0u);
}

TEST(SplitSolver, TwoPartyLimitationOnTheGadgetItself) {
  // The Section-1 limitation, executed: on the t = 2 hard instances, the
  // split solver already achieves >= OPT/2 with O(log n) bits — which is
  // exactly why the 2-party framework cannot rule out 1/2-approximations.
  const auto p = GadgetParams::from_l_alpha(4, 1, 5);
  const LinearConstruction c(p, 2);
  Rng rng(66);
  const auto inst = comm::make_uniquely_intersecting(5, 2, rng, 0.4);
  const auto g = c.instantiate(inst);
  std::vector<std::vector<graph::NodeId>> parts{c.partition(0), c.partition(1)};
  const auto result = split_solver_approximation(g, parts);
  const auto opt = maxis::solve_exact(g).weight;
  EXPECT_GE(2 * result.best_part_solution.weight, opt);
  EXPECT_LE(result.communication_bits,
            2 * static_cast<std::size_t>(
                    1 + ceil_log2(static_cast<std::uint64_t>(g.total_weight()) + 1)));
}

TEST(SplitSolver, RejectsEmptyPartition) {
  graph::Graph g(3);
  EXPECT_THROW(
      split_solver_approximation(g, std::span<const std::vector<graph::NodeId>>{}),
      InvariantError);
}

}  // namespace
}  // namespace congestlb::lb
