// Experiments C12, C35, L2: the linear family's YES/NO gap (Section 4).
//
// Table 1: Claims 1-2 (t = 2) — exact OPT on uniquely-intersecting vs
//          pairwise-disjoint instances against the claimed bounds
//          4l+2a and 3l+2a+1.
// Table 2: Claims 3+5 (general t) — t(2l+a) vs (t+1)l+at^2.
// Table 3: Lemma 2 — hardness ratio vs t: measured at buildable sizes,
//          formula at asymptotic ell, plus the eps -> t mapping.
//
// Expected shape (matches the paper): YES OPT == t(2l+a) exactly; NO OPT
// <= the claim bound; ratio -> 1/2 as t grows with ell >> alpha*t.

#include <iostream>

#include "comm/instances.hpp"
#include "lowerbound/linear_family.hpp"
#include "maxis/branch_and_bound.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace clb = congestlb;
using clb::Table;

namespace {

struct GapRow {
  clb::graph::Weight yes_opt = 0;
  clb::graph::Weight no_opt = 0;
};

GapRow measure(const clb::lb::LinearConstruction& c, clb::Rng& rng,
               int trials) {
  GapRow row;
  const auto& p = c.params();
  for (int trial = 0; trial < trials; ++trial) {
    const auto yes =
        clb::comm::make_uniquely_intersecting(p.k, c.num_players(), rng, 0.3);
    row.yes_opt = std::max(
        row.yes_opt, clb::maxis::solve_exact(c.instantiate(yes)).weight);
    const auto no =
        clb::comm::make_pairwise_disjoint(p.k, c.num_players(), rng, 0.4);
    row.no_opt = std::max(
        row.no_opt, clb::maxis::solve_exact(c.instantiate(no)).weight);
  }
  return row;
}

}  // namespace

int main() {
  std::cout << "=== bench_gap_linear: Claims 1-3, 5 and Lemma 2 ===\n";
  clb::Rng rng(2020);

  clb::print_heading(std::cout,
                     "C12 — two players (Claims 1-2): YES >= 4l+2a, NO <= 3l+2a+1");
  {
    Table t({"ell", "alpha", "k", "n", "YES OPT", "claim YES>=", "NO OPT",
             "claim NO<=", "holds"});
    for (auto [ell, alpha, k] :
         {std::tuple<std::size_t, std::size_t, std::size_t>{2, 1, 3},
          {3, 1, 4},
          {4, 1, 5},
          {6, 1, 7},
          {4, 2, 16},
          {8, 1, 9}}) {
      const auto p = clb::lb::GadgetParams::from_l_alpha(ell, alpha, k);
      const clb::lb::LinearConstruction c(p, 2);
      const auto row = measure(c, rng, 3);
      const bool holds =
          row.yes_opt >= c.yes_weight() && row.no_opt <= c.no_bound();
      t.row(ell, alpha, k, c.num_nodes(), row.yes_opt, c.yes_weight(),
            row.no_opt, c.no_bound(), holds);
    }
    t.print(std::cout);
  }

  clb::print_heading(
      std::cout,
      "C35 — t players (Claims 3+5): YES >= t(2l+a), NO <= (t+1)l+at^2");
  {
    Table t({"t", "ell", "alpha", "k", "n", "YES OPT", "claim YES>=", "NO OPT",
             "claim NO<=", "separated", "holds"});
    for (auto [t_players, ell, alpha, k] :
         {std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>{
              3, 5, 1, 6},
          {3, 4, 1, 5},
          {4, 6, 1, 7},
          {4, 8, 1, 9},
          {5, 8, 1, 9},
          {3, 5, 2, 20},
          {6, 10, 1, 11}}) {
      const auto p = clb::lb::GadgetParams::from_l_alpha(ell, alpha, k);
      const clb::lb::LinearConstruction c(p, t_players);
      const auto row = measure(c, rng, 2);
      const bool holds =
          row.yes_opt >= c.yes_weight() && row.no_opt <= c.no_bound();
      t.row(t_players, ell, alpha, k, c.num_nodes(), row.yes_opt,
            c.yes_weight(), row.no_opt, c.no_bound(), c.separated(), holds);
    }
    t.print(std::cout);
  }

  clb::print_heading(std::cout,
                     "L2 — hardness ratio vs t (paper: -> 1/2 + eps)");
  {
    Table t({"t", "measured NO/YES (l=t+2,a=1)", "formula (l=2^20)",
             "limit (t+1)/2t"});
    for (std::size_t tp : {2, 3, 4, 5, 6, 8, 12, 16}) {
      std::string measured = "-";
      if (tp <= 5) {
        const auto p = clb::lb::GadgetParams::for_linear_separation(tp, 2);
        const clb::lb::LinearConstruction c(p, tp);
        const auto row = measure(c, rng, 2);
        measured = clb::fmt_double(static_cast<double>(row.no_opt) /
                                   static_cast<double>(row.yes_opt));
      }
      t.row(tp, measured,
            clb::lb::linear_hardness_ratio_formula(1 << 20, 1, tp),
            (tp + 1.0) / (2.0 * tp));
    }
    t.print(std::cout);
  }

  clb::print_heading(std::cout, "L2 — epsilon to player-count mapping");
  {
    Table t({"eps", "t = ceil(2/eps)", "ruled-out approximation"});
    for (double eps : {0.4, 0.25, 0.125, 0.0625, 0.03125}) {
      const auto tp = clb::lb::linear_players_for_epsilon(eps);
      t.row(clb::fmt_double(eps, 5), tp,
            "(1/2 + " + clb::fmt_double(eps, 5) + ")");
    }
    t.print(std::cout);
  }

  std::cout << "\nLinear gap experiments completed.\n";
  return 0;
}
