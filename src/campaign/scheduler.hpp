// Work-stealing DAG executor for campaign jobs.
//
// Differs from support/thread_pool.hpp on purpose: the engine pool runs a
// fixed shard loop per phase, while campaigns execute a *dependency graph*
// of irregular jobs (a branch-and-bound solve can be 1000x a property
// check). Each worker owns a deque; it pushes newly-ready jobs to its back
// and pops from its back (LIFO keeps a gadget's dependents hot), and an
// idle worker steals from the *front* of a victim's deque (FIFO steals
// take the oldest, largest-subtree work — the classic Blumofe-Leiserson
// discipline, here with a mutex per deque instead of a lock-free Chase-Lev
// since jobs are milliseconds, not nanoseconds).
//
// Scheduling freedom never shows in results: jobs are pure functions of
// their pre-bound seeds (campaign/campaign.cpp derives every seed from the
// spec hash and the job's structural position), so which worker ran what,
// and in which steal order, is unobservable in the output — the property
// the determinism tests pin down across 1/2/8 workers.
//
// A budget (`max_executed`) supports kill simulation and bounded runs:
// once the budget is exhausted (or a job throws), the scheduler flips into
// abandon mode and drains remaining jobs without running them, so run()
// always terminates with a consistent executed/abandoned partition.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace congestlb::campaign {

class WorkStealingScheduler {
 public:
  /// fn(worker) — worker index in [0, num_threads), usable as a metrics
  /// shard. Must not touch non-dependency-ordered shared state.
  using JobFn = std::function<void(std::size_t worker)>;

  explicit WorkStealingScheduler(std::size_t num_threads);

  WorkStealingScheduler(const WorkStealingScheduler&) = delete;
  WorkStealingScheduler& operator=(const WorkStealingScheduler&) = delete;

  std::size_t num_threads() const { return num_threads_; }

  /// Register a job; returns its id. All jobs and dependencies must be
  /// added before run().
  std::size_t add_job(JobFn fn);

  /// `job` may only start after `prerequisite` finished (or was abandoned).
  void add_dependency(std::size_t job, std::size_t prerequisite);

  struct Report {
    std::size_t executed = 0;   ///< jobs whose fn actually ran
    std::size_t abandoned = 0;  ///< drained without running (budget/error)
    /// Jobs popped from a victim's deque rather than the worker's own.
    /// Scheduling-dependent by nature: observability only, never part of
    /// any determinism contract.
    std::uint64_t steals = 0;
    /// ran[j] — whether job j executed. Indexed by add_job id.
    std::vector<std::uint8_t> ran;
  };

  /// Execute the DAG; blocks until every job is executed or abandoned.
  /// max_executed > 0 stops issuing new jobs after that many executed
  /// (in-flight jobs finish; the rest are abandoned). The first job
  /// exception is rethrown here after the drain. Single-shot: run() may
  /// only be called once per scheduler.
  ///
  /// Exception safety: a throwing job flips the scheduler into abandon
  /// mode (never std::terminate), and the spawned workers are joined via
  /// RAII even if the coordinator loop itself throws — run() never leaks a
  /// thread, whatever unwinds through it.
  Report run(std::size_t max_executed = 0);

 private:
  struct Job {
    JobFn fn;
    std::vector<std::size_t> dependents;
    std::size_t num_deps = 0;
  };

  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::size_t> q;
  };

  void worker_loop(std::size_t w);
  bool pop_or_steal(std::size_t w, std::size_t* job);
  void execute(std::size_t w, std::size_t job);
  void make_ready(std::size_t w, std::size_t job);

  std::size_t num_threads_;
  std::vector<Job> jobs_;
  std::unique_ptr<WorkerQueue[]> queues_;
  std::vector<std::atomic<std::size_t>> deps_left_;
  std::vector<std::uint8_t> ran_;

  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::size_t> done_{0};
  std::atomic<std::size_t> issued_{0};
  std::atomic<bool> abandon_{false};
  /// Emergency drain: set by the RAII joiner when run() unwinds past the
  /// coordinator loop, so workers exit as soon as they run out of poppable
  /// work instead of waiting for a done_ count that may never arrive.
  std::atomic<bool> halt_{false};
  std::size_t max_executed_ = 0;
  bool started_ = false;

  std::mutex error_mu_;
  std::exception_ptr first_error_;
};

/// Long-running multi-tenant executor for the campaign service
/// (docs/SERVICE.md). Where WorkStealingScheduler executes one frozen DAG
/// and retires, a SharedScheduler outlives every campaign submitted to it:
/// `clb serve` owns exactly one, and every accepted sweep feeds its jobs
/// into the same worker pool. Jobs carry an integer priority; the pool
/// always runs the highest-priority ready job next, FIFO within a
/// priority, so a tenant submitting at priority 10 overtakes the backlog
/// of a priority-0 bulk sweep without preempting jobs already running.
///
/// Dependency tracking stays with the submitting campaign (campaign.cpp
/// submits a job only once its prerequisites completed), which keeps this
/// class a pure priority pool: one mutex, one heap, N workers. Campaign
/// jobs are milliseconds-to-seconds of solver work, so — as with the
/// per-deque mutexes above — contention on the single lock is noise.
class SharedScheduler {
 public:
  using JobFn = std::function<void(std::size_t worker)>;

  explicit SharedScheduler(std::size_t num_threads);
  /// Stops accepting, abandons jobs still queued, joins the workers.
  /// Graceful shutdown (finish everything) is drain() then destruction.
  ~SharedScheduler();

  SharedScheduler(const SharedScheduler&) = delete;
  SharedScheduler& operator=(const SharedScheduler&) = delete;

  std::size_t num_threads() const { return num_threads_; }

  /// Enqueue a ready job. Higher `priority` runs first; equal priorities
  /// run in submission order. Returns false (job not enqueued) once
  /// close() has been called — submitters must treat that as "the server
  /// is draining", not as an error.
  bool submit(int priority, JobFn fn);

  /// Stop admitting new jobs (submit() returns false from now on).
  void close();

  /// Wait until every job admitted so far has finished executing. Does not
  /// close the scheduler: new jobs may still arrive unless close() was
  /// called first. Drain-then-exit is close(); drain().
  void drain();

  /// Jobs whose fn ran to completion (or threw; a throwing job counts as
  /// executed and its exception is swallowed after being counted — job
  /// bodies are supervised upstream and must not leak exceptions).
  std::uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  /// Jobs admitted but not yet finished (queued + running).
  std::size_t pending() const;
  /// Jobs that threw out of their body (harness bugs; see executed()).
  std::uint64_t job_errors() const {
    return job_errors_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    int priority = 0;
    std::uint64_t seq = 0;  ///< admission order; FIFO tie-break
    JobFn fn;
  };
  struct EntryOrder {
    bool operator()(const Entry& a, const Entry& b) const {
      // priority_queue surfaces the *largest*: higher priority first,
      // then the smaller (older) sequence number.
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.seq > b.seq;
    }
  };

  void worker_loop(std::size_t w);

  std::size_t num_threads_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers: queue non-empty or stop
  std::condition_variable drain_cv_;  ///< drain(): pending reached zero
  std::priority_queue<Entry, std::vector<Entry>, EntryOrder> queue_;
  std::uint64_t next_seq_ = 0;
  std::size_t running_ = 0;  ///< jobs currently inside fn
  bool closed_ = false;
  bool stop_ = false;
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> job_errors_{0};
  std::vector<std::thread> workers_;
};

}  // namespace congestlb::campaign
