#include "congest/faults.hpp"

#include <sstream>

#include "obs/trace.hpp"
#include "support/expect.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"

namespace congestlb::congest {

namespace {

// Domain-separation tags so the per-message action stream, the corruption
// bit choices, and the crash schedule never draw from overlapping hash
// inputs.
constexpr std::uint64_t kActionTag = 0xFA171AC700000001ULL;
constexpr std::uint64_t kCorruptTag = 0xFA17C02200000002ULL;
constexpr std::uint64_t kCrashTag = 0xFA17C2A500000003ULL;

}  // namespace

std::size_t FaultPlan::num_crashing_nodes() const {
  std::size_t count = 0;
  for (const auto& span : crashes) {
    if (span.has_value()) ++count;
  }
  return count;
}

std::size_t FaultPlan::num_permanently_crashed() const {
  std::size_t count = 0;
  for (const auto& span : crashes) {
    if (span.has_value() && span->permanent()) ++count;
  }
  return count;
}

bool FaultPlan::crashed_at(NodeId v, std::size_t round) const {
  CLB_EXPECT(v < crashes.size(), "FaultPlan: node id out of range");
  return crashes[v].has_value() && crashes[v]->covers(round);
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  for (NodeId v = 0; v < crashes.size(); ++v) {
    if (!crashes[v]) continue;
    os << "node " << v << " crashes at round " << crashes[v]->crash_round;
    if (crashes[v]->permanent()) {
      os << " (permanent)\n";
    } else {
      os << ", recovers at round " << crashes[v]->recover_round << "\n";
    }
  }
  return std::move(os).str();
}

FaultPlan make_fault_plan(const FaultConfig& config, std::size_t num_nodes,
                          std::uint64_t seed) {
  FaultPlan plan;
  plan.crashes.assign(num_nodes, std::nullopt);
  if (config.crash_rate <= 0.0) return plan;
  CLB_EXPECT(config.crash_round_limit >= 1,
             "FaultConfig: crash_round_limit must be >= 1");
  for (NodeId v = 0; v < num_nodes; ++v) {
    const std::uint64_t h = hash_mix(seed, kCrashTag, v);
    if (hash_to_unit(h) >= config.crash_rate) continue;
    CrashSpan span;
    span.crash_round =
        1 + hash_mix(seed, kCrashTag, v, std::uint64_t{1}) %
                config.crash_round_limit;
    if (config.recovery_delay > 0) {
      span.recover_round = span.crash_round + config.recovery_delay;
    }
    plan.crashes[v] = span;
  }
  return plan;
}

void trace_crash_schedule(const FaultPlan& plan, obs::Tracer& tracer) {
  if (!tracer.enabled()) return;
  for (NodeId v = 0; v < plan.crashes.size(); ++v) {
    if (!plan.crashes[v]) continue;
    const CrashSpan& span = *plan.crashes[v];
    tracer.emit({0, static_cast<std::uint32_t>(span.crash_round),
                 static_cast<std::uint32_t>(v), obs::TraceEvent::kNone,
                 obs::EventKind::kCrashScheduled});
    if (!span.permanent()) {
      tracer.emit({0, static_cast<std::uint32_t>(span.recover_round),
                   static_cast<std::uint32_t>(v), obs::TraceEvent::kNone,
                   obs::EventKind::kRecoverScheduled});
    }
  }
}

FaultInjector::FaultInjector(FaultConfig config, std::size_t num_nodes,
                             std::uint64_t seed)
    : config_(config), seed_(seed) {
  const auto in_unit = [](double p) { return p >= 0.0 && p <= 1.0; };
  CLB_EXPECT(in_unit(config_.drop_rate) && in_unit(config_.corrupt_rate) &&
                 in_unit(config_.duplicate_rate) &&
                 in_unit(config_.crash_rate),
             "FaultConfig: rates must be in [0,1]");
  CLB_EXPECT(
      config_.drop_rate + config_.corrupt_rate + config_.duplicate_rate <=
          1.0,
      "FaultConfig: drop + corrupt + duplicate rates must sum to <= 1");
  plan_ = make_fault_plan(config_, num_nodes, seed);
}

FaultAction FaultInjector::classify(std::size_t round, NodeId from,
                                    NodeId to) const {
  const double u =
      hash_to_unit(hash_mix(seed_, kActionTag, round, from, to));
  if (u < config_.drop_rate) return FaultAction::kDrop;
  if (u < config_.drop_rate + config_.corrupt_rate) {
    return FaultAction::kCorrupt;
  }
  if (u < config_.drop_rate + config_.corrupt_rate + config_.duplicate_rate) {
    return FaultAction::kDuplicate;
  }
  return FaultAction::kDeliver;
}

void FaultInjector::corrupt(std::size_t round, NodeId from, NodeId to,
                            Message& msg) const {
  CLB_EXPECT(msg.bits > 0, "FaultInjector: cannot corrupt an empty message");
  const std::uint64_t h = hash_mix(seed_, kCorruptTag, round, from, to);
  const std::size_t flips = 1 + h % 3;
  for (std::size_t f = 0; f < flips; ++f) {
    const std::size_t bit =
        hash_mix(seed_, kCorruptTag, round, from, to, f) % msg.bits;
    msg.data[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
  }
}

}  // namespace congestlb::congest
