#include "obs/trace.hpp"

#include <ostream>

#include "support/expect.hpp"

namespace congestlb::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kRoundBegin: return "round_begin";
    case EventKind::kRoundEnd: return "round_end";
    case EventKind::kSend: return "send";
    case EventKind::kDeliver: return "deliver";
    case EventKind::kDeliverCorrupt: return "deliver_corrupt";
    case EventKind::kDeliverEcho: return "deliver_echo";
    case EventKind::kDrop: return "drop";
    case EventKind::kCrash: return "crash";
    case EventKind::kRecover: return "recover";
    case EventKind::kCrashScheduled: return "crash_scheduled";
    case EventKind::kRecoverScheduled: return "recover_scheduled";
    case EventKind::kPhase: return "phase";
    case EventKind::kBlackboardPost: return "blackboard_post";
  }
  return "unknown";
}

Tracer::Tracer(TraceConfig config) : config_(config) {
  CLB_EXPECT(config_.sample_period >= 1,
             "TraceConfig: sample_period must be >= 1");
  if (enabled()) ring_.resize(config_.capacity);
}

void Tracer::bind(std::size_t num_shards, std::size_t per_shard_capacity) {
  if (!enabled()) return;
  CLB_EXPECT(num_shards >= 1, "Tracer::bind: need at least one shard");
  num_shards_ = num_shards;
  stage_.assign(2 * num_shards, Stage{});
  for (Stage& st : stage_) st.buf.resize(per_shard_capacity);
}

void Tracer::push(const TraceEvent& ev) {
  if (!enabled()) return;
  const std::size_t cap = ring_.size();
  if (count_ < cap) {
    ring_[(head_ + count_) % cap] = ev;
    ++count_;
  } else {
    ring_[head_] = ev;  // overwrite the oldest
    head_ = (head_ + 1) % cap;
    ++dropped_;
  }
  ++recorded_;
}

void Tracer::seal_round() {
  if (!enabled()) return;
  for (std::size_t phase = 0; phase < 2; ++phase) {
    for (std::size_t shard = 0; shard < num_shards_; ++shard) {
      Stage& st = stage_[phase * num_shards_ + shard];
      for (std::size_t i = 0; i < st.len; ++i) push(st.buf[i]);
      dropped_ += st.overflow;
      st.len = 0;
      st.overflow = 0;
    }
  }
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(count_);
  const std::size_t cap = ring_.size();
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(head_ + i) % cap]);
  }
  return out;
}

std::vector<TraceEvent> Tracer::events_since(std::uint64_t since,
                                             std::uint64_t* next) const {
  CLB_EXPECT(next != nullptr, "Tracer::events_since: next must not be null");
  *next = recorded_;
  std::vector<TraceEvent> out;
  const std::uint64_t oldest = recorded_ - count_;  // seq of ring_[head_]
  if (since >= recorded_) return out;
  const std::uint64_t from = since < oldest ? oldest : since;
  const std::size_t cap = ring_.size();
  out.reserve(static_cast<std::size_t>(recorded_ - from));
  for (std::uint64_t s = from; s < recorded_; ++s) {
    out.push_back(ring_[(head_ + static_cast<std::size_t>(s - oldest)) % cap]);
  }
  return out;
}

void Tracer::clear() {
  head_ = 0;
  count_ = 0;
  recorded_ = 0;
  dropped_ = 0;
  for (Stage& st : stage_) {
    st.len = 0;
    st.overflow = 0;
  }
}

void write_canonical(std::ostream& os, std::span<const TraceEvent> events) {
  for (const TraceEvent& ev : events) {
    os << ev.round << ' ' << to_string(ev.kind) << ' ';
    if (ev.a == TraceEvent::kNone) {
      os << '-';
    } else {
      os << ev.a;
    }
    os << ' ';
    if (ev.b == TraceEvent::kNone) {
      os << '-';
    } else {
      os << ev.b;
    }
    os << ' ' << ev.value << '\n';
  }
}

}  // namespace congestlb::obs
