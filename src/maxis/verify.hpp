// Independent-set verification and bookkeeping.
//
// Every solver in this module returns an IsSolution that has been passed
// through checked() — callers can rely on the invariant that `nodes` is a
// genuine independent set and `weight` equals its total weight.

#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace congestlb::maxis {

using graph::NodeId;
using graph::Weight;

struct IsSolution {
  std::vector<NodeId> nodes;  ///< sorted ascending
  Weight weight = 0;
};

/// Validate `nodes` against g: distinct ids, pairwise non-adjacent. Returns
/// the solution with nodes sorted and weight filled in; throws otherwise.
IsSolution checked(const graph::Graph& g, std::vector<NodeId> nodes);

/// The approximation ratio achieved by `got` against optimal weight `opt`
/// (paper Definition 5 uses w(I) >= OPT/gamma; we report w(I)/OPT in [0,1]).
double approximation_ratio(Weight got, Weight opt);

/// Certified upper bound on OPT via a greedy clique partition: any
/// independent set takes at most one vertex from each clique, so the sum
/// of per-clique maximum weights bounds OPT from above. Cheap (O(m) after
/// a degree sort) and valid at any size — the contract harness uses it on
/// instances too large for the exact solver. Deterministic: cliques are
/// grown greedily from vertices in descending-degree (then ascending-id)
/// order.
Weight clique_partition_upper_bound(const graph::Graph& g);

}  // namespace congestlb::maxis
