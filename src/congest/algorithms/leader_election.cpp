#include "congest/algorithms/leader_election.hpp"

#include "support/expect.hpp"
#include "support/math.hpp"

namespace congestlb::congest {

namespace {

class LeaderElectionProgram final : public NodeProgram {
 public:
  void round(const NodeInfo& info, const Inbox& inbox, Outbox& outbox,
             Rng&) override {
    if (id_bits_ == 0) {
      id_bits_ = static_cast<std::size_t>(
          std::max(1, ceil_log2(std::max<std::size_t>(2, info.n))));
      best_ = info.id;
      pending_announce_ = true;
    }
    for (const auto& msg : inbox) {
      if (!msg) continue;
      MessageReader r(*msg);
      const std::uint64_t candidate = r.get(id_bits_);
      if (candidate > best_) {
        best_ = candidate;
        pending_announce_ = true;
      }
    }
    ++rounds_seen_;
    // After n rounds no new maximum can arrive (diameter < n).
    if (rounds_seen_ > info.n) {
      done_ = true;
      return;
    }
    if (pending_announce_ && !info.neighbors.empty()) {
      Message m = std::move(MessageWriter().put(best_, id_bits_)).finish();
      outbox.send_all(m);
    }
    pending_announce_ = false;
    my_id_ = info.id;
  }

  bool finished() const override { return done_; }
  std::int64_t output() const override { return best_ == my_id_ ? 1 : 0; }

 private:
  std::uint64_t best_ = 0;
  std::uint64_t my_id_ = ~0ULL;
  std::size_t id_bits_ = 0;
  std::size_t rounds_seen_ = 0;
  bool pending_announce_ = false;
  bool done_ = false;
};

}  // namespace

ProgramFactory leader_election_factory() {
  return [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<LeaderElectionProgram>();
  };
}

}  // namespace congestlb::congest
