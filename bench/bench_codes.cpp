// Experiment T4: the large-distance codes behind Theorem 4, plus the code
// ablation from DESIGN.md.
//
// Table 1: Reed-Solomon at the gadget shapes (alpha, ell+alpha, >= ell):
//          declared vs measured minimum distance.
// Table 2: ablation — swap Reed-Solomon for a padding code of the same
//          (L, M) shape but distance 1: Property 2's matching collapses
//          below ell and the NO-side optimum inflates past Claim 2's bound.
//          This is *why* the construction needs an error-correcting code.

#include <chrono>
#include <iostream>

#include "codes/params.hpp"
#include "codes/trivial_codes.hpp"
#include "comm/instances.hpp"
#include "graph/matching.hpp"
#include "lowerbound/linear_family.hpp"
#include "maxis/branch_and_bound.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace clb = congestlb;
using clb::Table;

int main() {
  std::cout << "=== bench_codes: Theorem 4 codes and the code ablation ===\n";

  clb::print_heading(std::cout,
                     "T4 — Reed-Solomon distance at gadget shapes "
                     "(need d >= ell; RS gives M-L+1 = ell+1)");
  {
    Table t({"ell", "alpha", "q=p", "k capacity", "declared d", "measured min d",
             "d >= ell"});
    for (auto [ell, alpha] : {std::pair<std::size_t, std::size_t>{2, 1},
                              {4, 1},
                              {6, 1},
                              {4, 2},
                              {6, 2},
                              {8, 3},
                              {12, 2}}) {
      const auto gc = clb::codes::make_gadget_code(ell, alpha);
      const std::size_t measured =
          clb::codes::verify_min_distance(*gc.code, 2048, 4000);
      t.row(ell, alpha, gc.prime, gc.max_messages, gc.code->min_distance(),
            measured, measured >= ell);
    }
    t.print(std::cout);
  }

  clb::print_heading(std::cout, "encode throughput (codewords/second)");
  {
    Table t({"code", "codewords", "wall ms", "codewords/s"});
    for (auto [ell, alpha] :
         {std::pair<std::size_t, std::size_t>{6, 2}, {12, 2}, {20, 3}}) {
      const auto gc = clb::codes::make_gadget_code(ell, alpha);
      const std::size_t count =
          std::min<std::uint64_t>(gc.max_messages, 200000);
      const auto start = std::chrono::steady_clock::now();
      std::size_t checksum = 0;
      for (std::size_t m = 0; m < count; ++m) {
        checksum += gc.code->encode_index(m)[0];
      }
      const auto end = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(end - start).count();
      t.row(gc.code->name(), count, clb::fmt_double(ms, 1),
            clb::fmt_double(count / (ms / 1000.0), 0));
      if (checksum == static_cast<std::size_t>(-1)) return 1;  // keep the loop alive
    }
    t.print(std::cout);
  }

  clb::print_heading(
      std::cout,
      "ablation — Reed-Solomon vs padding code in the same gadget (t=2)");
  {
    const std::size_t ell = 4, alpha = 1, k = 5, t_players = 2;
    const auto strong = clb::lb::GadgetParams::from_l_alpha(ell, alpha, k);
    const auto weak = clb::lb::GadgetParams::with_code(
        ell, alpha, k,
        std::make_shared<clb::codes::PaddingCode>(alpha, ell + alpha, k));
    Table t({"code", "min cross-matching (P2 needs >= 4)", "worst NO OPT",
             "Claim-2 bound", "NO bound holds"});
    clb::Rng rng(31);
    for (const auto* params : {&strong, &weak}) {
      const clb::lb::LinearConstruction c(*params, t_players);
      std::size_t min_match = ell + alpha + 1;
      for (std::size_t m1 = 0; m1 < k; ++m1) {
        for (std::size_t m2 = 0; m2 < k; ++m2) {
          if (m1 == m2) continue;
          min_match = std::min(
              min_match, clb::graph::max_bipartite_matching(
                             c.fixed_graph(), c.codeword_nodes(0, m1),
                             c.codeword_nodes(1, m2))
                             .size());
        }
      }
      clb::graph::Weight worst_no = 0;
      for (int trial = 0; trial < 6; ++trial) {
        const auto inst =
            clb::comm::make_pairwise_disjoint(k, t_players, rng, 0.6);
        worst_no = std::max(
            worst_no, clb::maxis::solve_exact(c.instantiate(inst)).weight);
      }
      t.row(params->code->name(), min_match, worst_no, c.no_bound(),
            worst_no <= c.no_bound());
    }
    t.print(std::cout);
    std::cout << "  (padding row must show matching < ell and a violated "
                 "NO bound — the gap erodes without code distance)\n";
  }

  std::cout << "\nCode experiments completed.\n";
  return 0;
}
