// Campaign sweep specifications (docs/CAMPAIGN.md).
//
// A campaign declares, as data, the parameter sweeps that verify the
// paper's numbered statements: each sweep names a claim check (Properties
// 1-3 of Section 4.1, Claims 1-2 / 3+5 of Section 4) and a set of gadget
// shapes (ell, alpha, t, k) to run it over. Shapes come either from an
// explicit point list or from a grid whose axes are crossed in declaration
// order — deterministic expansion, so a spec's job set (and with it every
// content hash) is a pure function of the spec text.
//
// Specs are JSON documents parseable by parse_campaign_spec (schema in
// docs/CAMPAIGN.md); the two built-in specs reproduce the bench sweeps:
// builtin_paper_campaign() is the P1-P3 + C12 + C35 sweep behind the
// EXPERIMENTS.md tables, builtin_smoke_campaign() a tiny CI-sized grid.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace congestlb {
class JsonValue;
}

namespace congestlb::campaign {

/// Which mechanical check a sweep runs at every grid point.
enum class CheckKind : std::uint8_t {
  kProperty1,  ///< P1: every yes-witness is independent
  kProperty2,  ///< P2: cross-copy codeword matching >= ell
  kProperty3,  ///< P3: <= alpha positions host both codewords
  kClaim12,    ///< Claims 1-2 (t = 2): YES >= 4l+2a, NO <= 3l+2a+1
  kClaim35,    ///< Claims 3+5 (general t): YES >= t(2l+a), NO <= (t+1)l+at^2
  /// Upper-bound algorithm sweeps (docs/ALGORITHMS.md): run the algorithm
  /// on the point's fixed gadget graph and check its full approximation
  /// contract (gap sandwich + round/bit envelopes, campaign/approx_sweep).
  kApproxSweep,      ///< KKSS-style (1+eps)-approximate MaxIS
  kBlackboardSweep,  ///< Assadi–Kol–Zhang blackboard MIS protocols
};

std::string_view to_string(CheckKind kind);
std::optional<CheckKind> check_kind_from_string(std::string_view s);

/// One gadget shape. k empty means "the paper's default choice for
/// (ell, alpha)" (GadgetParams::from_l_alpha's capped (ell+alpha)^alpha).
struct GridPoint {
  std::size_t ell = 0;
  std::size_t alpha = 0;
  std::size_t t = 0;
  std::optional<std::size_t> k;
};

/// One sweep: a check applied over a list of points.
struct SweepSpec {
  std::string name;  ///< short id, e.g. "P1"; becomes the job-id prefix
  CheckKind check = CheckKind::kProperty1;
  std::vector<GridPoint> points;
  /// Instance draws per branch for claim sweeps (max OPT over trials).
  std::size_t trials = 2;
  /// Pair-sampling budget for P2/P3 (min(k*(k-1), budget) pairs).
  std::size_t sample_budget = 60;
  /// Approximation target for kApproxSweep: eps = eps_num / eps_den. The
  /// defaults are appended to canonical() only when changed, so specs from
  /// before the approx sweeps keep their content hashes bit for bit.
  std::size_t eps_num = 1;
  std::size_t eps_den = 4;
};

struct CampaignSpec {
  std::string name = "campaign";
  /// Base seed; every job seed is hash-derived from it plus the job's
  /// structural position, so results never depend on execution order.
  std::uint64_t seed = 2020;
  std::vector<SweepSpec> sweeps;

  /// Canonical one-line-per-sweep textual form (the content hashed into
  /// spec_hash and every job's inputs_hash).
  std::string canonical() const;
  std::uint64_t content_hash() const;
};

/// Parse a spec document. Schema (docs/CAMPAIGN.md):
///   {"campaign": "name", "seed": 2020, "sweeps": [
///      {"name": "P1", "check": "property1", "trials": 3,
///       "grid": {"ell": [2,3], "alpha": [1], "t": [2], "k": [3]},
///       "points": [{"ell": 2, "alpha": 1, "t": 2}]}]}
/// "grid" axes are crossed ell-major (ell, then alpha, then t, then k);
/// "k" may be omitted from grids and points. "points" are appended after
/// the grid expansion. Throws InvariantError on schema violations.
CampaignSpec parse_campaign_spec(const JsonValue& doc);
CampaignSpec parse_campaign_spec_text(std::string_view json_text);

/// Serialize a spec back to the schema above (explicit points only — grid
/// shorthand is expanded at parse time).
void write_campaign_spec(std::ostream& os, const CampaignSpec& spec);

/// The full paper sweep: P1-P3 over the 8 bench_properties shapes, Claims
/// 1-2 over the 6 bench_gap_linear t=2 shapes, Claims 3+5 over its 7
/// general-t shapes.
CampaignSpec builtin_paper_campaign();

/// A CI-sized grid: ell in {2,3}, t in {2,3}, alpha = 1.
CampaignSpec builtin_smoke_campaign();

/// KKSS (1+eps)-approximate MaxIS over small gadget shapes at eps = 1/4
/// and 1/8 — the BENCH_approx gap-sandwich sweep as a resumable campaign.
CampaignSpec builtin_approx_campaign();

/// Blackboard MIS protocols (full revelation + shared-seed Luby) over the
/// same gadget shapes, with exact bit accounting.
CampaignSpec builtin_blackboard_campaign();

/// Look up a built-in spec by name ("paper", "smoke", "approx_sweep", or
/// "blackboard_sweep").
std::optional<CampaignSpec> builtin_campaign(std::string_view name);

}  // namespace congestlb::campaign
