// The shared-blackboard number-in-hand communication model (Definition 1).
//
// t players exchange information by appending bit strings to a blackboard
// visible to everyone. The cost of a protocol is the total number of bits
// written. Blackboard is the single accounting point for both the reference
// disjointness protocols (comm/protocols.hpp) and the CONGEST simulation
// argument of Theorem 5 (sim/reduction.hpp): whenever a simulated CONGEST
// message crosses between two players' node sets, its bits land here.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace congestlb::obs {
class Counter;
class MetricsRegistry;
class Tracer;
}

namespace congestlb::comm {

/// One blackboard write. `bits` is the charged cost; `data` holds the
/// payload rounded up to whole bytes (readable by every player).
struct BoardEntry {
  std::size_t player = 0;
  std::vector<std::byte> data;
  std::size_t bits = 0;
  std::string tag;  ///< free-form annotation for transcript inspection
};

class Blackboard {
 public:
  explicit Blackboard(std::size_t num_players);

  std::size_t num_players() const { return bits_by_player_.size(); }

  /// Append raw bytes with an explicit bit cost (bits <= 8 * data.size()).
  void post(std::size_t player, std::vector<std::byte> data, std::size_t bits,
            std::string tag = {});

  /// Append the low `bits` bits of `value` (bits in [1, 64]).
  void post_uint(std::size_t player, std::uint64_t value, std::size_t bits,
                 std::string tag = {});

  /// Append a 0/1 bit vector, one payload bit per element.
  void post_bits(std::size_t player, const std::vector<std::uint8_t>& bits01,
                 std::string tag = {});

  /// Decode an entry previously written by post_uint.
  static std::uint64_t read_uint(const BoardEntry& entry);

  /// Decode an entry previously written by post_bits.
  static std::vector<std::uint8_t> read_bits(const BoardEntry& entry);

  const std::vector<BoardEntry>& transcript() const { return entries_; }
  std::size_t total_bits() const { return total_bits_; }
  std::size_t bits_by(std::size_t player) const;

  /// Mirror every post into a trace (kBlackboardPost, a = player, round =
  /// entry index, value = charged bits) and/or a metrics registry
  /// ("blackboard.posts" / "blackboard.bits" counters). Either pointer may
  /// be null; both are non-owning and must outlive the board.
  void attach_observability(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

 private:
  std::vector<BoardEntry> entries_;
  std::vector<std::size_t> bits_by_player_;
  std::size_t total_bits_ = 0;
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* posts_metric_ = nullptr;
  obs::Counter* bits_metric_ = nullptr;
};

}  // namespace congestlb::comm
