#include "maxis/branch_and_bound.hpp"

#include <algorithm>
#include <numeric>

#include "maxis/bitset.hpp"
#include "support/expect.hpp"

namespace congestlb::maxis {

namespace {

/// Exact solver over a flat 64-bit-word arena (bitset.hpp's `words`
/// kernels). The adjacency matrix is n rows of nw words; the candidate set
/// of each search depth is one row of a preallocated (n+1)-row stack, and
/// the exclude branch is a loop over the current row rather than a
/// recursive call — the search itself performs zero allocations and zero
/// Bitset copies, visiting exactly the same tree as the reference
/// formulation (include-first, then exclude).
class BnBSolver {
 public:
  BnBSolver(const graph::Graph& g, const BnBOptions& opts)
      : g_(&g), opts_(opts), n_(g.num_nodes()), nw_(words::row_words(n_)) {
    // Order vertices by weight desc, then degree desc: heavy, constrained
    // vertices are decided first, which tightens the bound early.
    order_.resize(n_);
    std::iota(order_.begin(), order_.end(), 0);
    std::sort(order_.begin(), order_.end(), [&](NodeId a, NodeId b) {
      if (g.weight(a) != g.weight(b)) return g.weight(a) > g.weight(b);
      if (g.degree(a) != g.degree(b)) return g.degree(a) > g.degree(b);
      return a < b;
    });
    pos_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) pos_[order_[i]] = i;

    weight_.resize(n_);
    adj_words_.assign(n_ * nw_, 0);
    for (std::size_t i = 0; i < n_; ++i) {
      const NodeId v = order_[i];
      weight_[i] = g.weight(v);
      CLB_EXPECT(weight_[i] >= 0, "branch-and-bound requires nonnegative weights");
      g.for_each_neighbor(v, [&](NodeId nb) {
        words::set_bit(adj_row(i), pos_[nb]);
      });
    }
    cand_stack_.assign((n_ + 1) * nw_, 0);
    cover_cand_.assign(nw_, 0);
    cover_common_.assign(nw_, 0);
  }

  BnBResult solve() {
    words::fill_prefix(cand_row(0), n_, nw_);
    chosen_.assign(n_, false);
    best_chosen_.assign(n_, false);
    recurse(0, 0);
    std::vector<NodeId> nodes;
    for (std::size_t i = 0; i < n_; ++i) {
      if (best_chosen_[i]) nodes.push_back(order_[i]);
    }
    BnBResult result;
    result.solution = checked(*g_, std::move(nodes));
    CLB_EXPECT(result.solution.weight == best_,
               "branch-and-bound: weight bookkeeping mismatch");
    result.search_nodes = search_nodes_;
    return result;
  }

 private:
  std::uint64_t* adj_row(std::size_t i) { return adj_words_.data() + i * nw_; }
  std::uint64_t* cand_row(std::size_t depth) {
    return cand_stack_.data() + depth * nw_;
  }

  /// Greedy clique cover of `cand`; sum over cliques of the max weight in
  /// the clique upper-bounds any IS weight within cand. Works in the two
  /// scratch rows (not reentrant; the search calls it sequentially).
  Weight clique_cover_bound(const std::uint64_t* cand) {
    std::uint64_t* c = cover_cand_.data();
    std::uint64_t* common = cover_common_.data();
    words::copy(c, cand, nw_);
    Weight bound = 0;
    while (true) {
      const std::size_t v = words::first_bit(c, nw_, n_);
      if (v == n_) break;
      Weight mx = weight_[v];
      words::clear_bit(c, v);
      words::and_rows(common, c, adj_row(v), nw_);
      while (true) {
        const std::size_t u = words::first_bit(common, nw_, n_);
        if (u == n_) break;
        mx = std::max(mx, weight_[u]);
        words::clear_bit(c, u);
        words::clear_bit(common, u);
        words::and_rows(common, common, adj_row(u), nw_);
      }
      bound += mx;
    }
    return bound;
  }

  /// One search node per loop iteration: the exclude branch continues the
  /// loop on the same candidate row, the include branch descends one row.
  void recurse(std::size_t depth, Weight acc) {
    std::uint64_t* cand = cand_row(depth);
    while (true) {
      ++search_nodes_;
      CLB_EXPECT(opts_.max_search_nodes == 0 ||
                     search_nodes_ <= opts_.max_search_nodes,
                 "branch-and-bound search-node budget exhausted");
      if (acc > best_) {
        best_ = acc;
        best_chosen_ = chosen_;
      }
      const std::size_t v = words::first_bit(cand, nw_, n_);
      if (v == n_) return;
      if (acc + clique_cover_bound(cand) <= best_) return;

      // Include v: candidates minus v and its neighbors, one row deeper.
      std::uint64_t* next = cand_row(depth + 1);
      words::and_not_rows(next, cand, adj_row(v), nw_);
      words::clear_bit(next, v);
      chosen_[v] = true;
      recurse(depth + 1, acc + weight_[v]);
      chosen_[v] = false;
      // Exclude v: drop it from this row and continue as the next node.
      words::clear_bit(cand, v);
    }
  }

  const graph::Graph* g_;
  BnBOptions opts_;
  std::size_t n_;
  std::size_t nw_;  ///< words per row
  std::vector<NodeId> order_;
  std::vector<std::size_t> pos_;
  std::vector<Weight> weight_;
  std::vector<std::uint64_t> adj_words_;   ///< n rows: adjacency matrix
  std::vector<std::uint64_t> cand_stack_;  ///< n+1 rows: per-depth candidates
  std::vector<std::uint64_t> cover_cand_;    ///< scratch row
  std::vector<std::uint64_t> cover_common_;  ///< scratch row
  std::vector<char> chosen_;
  std::vector<char> best_chosen_;
  Weight best_ = -1;  ///< -1 so the empty set (weight 0) is recorded
  std::uint64_t search_nodes_ = 0;
};

}  // namespace

BnBResult solve_branch_and_bound(const graph::Graph& g, BnBOptions opts) {
  if (g.num_nodes() == 0) {
    return BnBResult{IsSolution{}, 0};
  }
  return BnBSolver(g, opts).solve();
}

}  // namespace congestlb::maxis
