// Experiment STR (design-choice ablation from DESIGN.md): the structured
// exact solver — the Claim 2/4/5 case analysis as an algorithm — versus
// general branch-and-bound.
//
// Two payoffs are measured:
//   1. speed: (k+1)^t tuple enumeration vs an NP-hard search whose tree
//      explodes when alpha >= 2 (codewords overlap, the clique-cover bound
//      loosens);
//   2. reach: claim verification at parameter sizes branch-and-bound
//      cannot touch, e.g. k in the hundreds.

#include <chrono>
#include <iostream>

#include "comm/instances.hpp"
#include "lowerbound/structured_solver.hpp"
#include "maxis/branch_and_bound.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace clb = congestlb;
using clb::Table;

namespace {

template <typename F>
double ms(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
  std::cout << "=== bench_structured: case-analysis solver vs branch-and-bound ===\n";
  clb::Rng rng(11);

  clb::print_heading(std::cout,
                     "head-to-head on pairwise-disjoint instances (NO side)");
  {
    Table t({"t", "ell", "alpha", "k", "n", "OPT", "agree", "BnB ms",
             "BnB search nodes", "structured ms", "speedup"});
    for (auto [tp, ell, alpha, k] :
         {std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>{
              2, 4, 1, 5},
          {3, 5, 1, 6},
          {2, 8, 2, 100},
          {3, 8, 2, 64},
          {4, 8, 1, 9},
          {3, 10, 2, 100}}) {
      const auto p = clb::lb::GadgetParams::from_l_alpha(ell, alpha, k);
      const clb::lb::LinearConstruction c(p, tp);
      const auto inst = clb::comm::make_pairwise_disjoint(k, tp, rng, 0.4);
      clb::maxis::BnBResult bnb;
      const double bnb_ms = ms([&] {
        bnb = clb::maxis::solve_branch_and_bound(c.instantiate(inst));
      });
      clb::maxis::IsSolution structured;
      const double str_ms =
          ms([&] { structured = clb::lb::solve_linear_structured(c, inst); });
      t.row(tp, ell, alpha, k, c.num_nodes(), structured.weight,
            structured.weight == bnb.solution.weight,
            clb::fmt_double(bnb_ms, 2), bnb.search_nodes,
            clb::fmt_double(str_ms, 2),
            clb::fmt_double(bnb_ms / std::max(str_ms, 0.001), 1));
    }
    t.print(std::cout);
  }

  clb::print_heading(std::cout,
                     "reach — Claims 3+5 verified at sizes beyond BnB "
                     "(structured only)");
  {
    Table t({"t", "ell", "alpha", "k", "n", "YES OPT", "claim YES",
             "NO OPT", "claim NO<=", "holds", "ms"});
    for (auto [tp, ell, alpha, k] :
         {std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>{
              2, 12, 2, 280},
          {2, 16, 3, 900},
          {3, 12, 2, 200},
          {2, 20, 3, 2000}}) {
      const auto p = clb::lb::GadgetParams::from_l_alpha(ell, alpha, k);
      const clb::lb::LinearConstruction c(p, tp);
      const auto yes = clb::comm::make_uniquely_intersecting(k, tp, rng, 0.2);
      const auto no = clb::comm::make_pairwise_disjoint(k, tp, rng, 0.2);
      clb::graph::Weight wy = 0, wn = 0;
      const double total_ms = ms([&] {
        wy = clb::lb::solve_linear_structured(c, yes).weight;
        wn = clb::lb::solve_linear_structured(c, no).weight;
      });
      const bool holds = wy >= c.yes_weight() && wn <= c.no_bound();
      t.row(tp, ell, alpha, k, c.num_nodes(), wy, c.yes_weight(), wn,
            c.no_bound(), holds, clb::fmt_double(total_ms, 1));
    }
    t.print(std::cout);
  }

  clb::print_heading(std::cout, "quadratic family head-to-head");
  {
    Table t({"t", "ell", "k", "strings", "n", "OPT", "agree", "BnB ms",
             "structured ms"});
    for (auto [tp, ell, k] :
         {std::tuple<std::size_t, std::size_t, std::size_t>{2, 4, 5},
          {2, 6, 7},
          {3, 4, 5}}) {
      const auto p = clb::lb::GadgetParams::from_l_alpha(ell, 1, k);
      const clb::lb::QuadraticConstruction c(p, tp);
      const auto inst = clb::comm::make_pairwise_disjoint(c.string_length(),
                                                          tp, rng, 0.4);
      clb::maxis::BnBResult bnb;
      const double bnb_ms = ms([&] {
        bnb = clb::maxis::solve_branch_and_bound(c.instantiate(inst));
      });
      clb::maxis::IsSolution structured;
      const double str_ms = ms(
          [&] { structured = clb::lb::solve_quadratic_structured(c, inst); });
      t.row(tp, ell, k, c.string_length(), c.num_nodes(), structured.weight,
            structured.weight == bnb.solution.weight,
            clb::fmt_double(bnb_ms, 2), clb::fmt_double(str_ms, 2));
    }
    t.print(std::cout);
  }

  std::cout << "\nStructured-solver experiments completed.\n";
  return 0;
}
