// Solver shootout: every MaxIS / vertex-cover method in the library on the
// same instances.
//
//   $ ./solver_shootout [seed]
//
// Compares, on a random weighted graph and on a gadget hard instance:
// greedy (three variants), greedy + local search, branch-and-bound (exact),
// the structured gadget solver (exact, gadgets only), and the vertex-cover
// algorithms — with wall-clock timings.

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "comm/instances.hpp"
#include "graph/generators.hpp"
#include "lowerbound/structured_solver.hpp"
#include "maxis/branch_and_bound.hpp"
#include "maxis/greedy.hpp"
#include "maxis/local_search.hpp"
#include "maxis/vertex_cover.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace clb = congestlb;

namespace {

template <typename F>
double ms(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void shootout(const std::string& title, const clb::graph::Graph& g,
              clb::graph::Weight exact_hint = -1) {
  clb::print_heading(std::cout, title);
  clb::maxis::IsSolution exact;
  const double exact_ms =
      ms([&] { exact = clb::maxis::solve_exact(g); });
  if (exact_hint >= 0 && exact.weight != exact_hint) {
    std::cout << "  WARNING: exact solver disagrees with structured hint!\n";
  }
  clb::Table t({"method", "weight", "ratio", "ms"});
  auto row = [&](const std::string& name, const clb::maxis::IsSolution& sol,
                 double time_ms) {
    t.add_row({name, std::to_string(sol.weight),
               clb::fmt_double(static_cast<double>(sol.weight) /
                               static_cast<double>(exact.weight)),
               clb::fmt_double(time_ms, 2)});
  };
  clb::maxis::IsSolution s;
  double d;
  d = ms([&] { s = clb::maxis::solve_greedy_max_weight(g); });
  row("greedy (max weight)", s, d);
  d = ms([&] { s = clb::maxis::solve_greedy_min_degree(g); });
  row("greedy (min degree)", s, d);
  d = ms([&] { s = clb::maxis::solve_greedy_weight_degree(g); });
  row("greedy (w/(d+1))", s, d);
  d = ms([&] { s = clb::maxis::solve_greedy_plus_local_search(g); });
  row("greedy + local search", s, d);
  row("branch & bound (exact)", exact, exact_ms);
  t.print(std::cout);

  clb::maxis::VcSolution vc_exact, vc_lr;
  const double vce_ms =
      ms([&] { vc_exact = clb::maxis::solve_vertex_cover_exact(g); });
  const double vclr_ms =
      ms([&] { vc_lr = clb::maxis::solve_vertex_cover_local_ratio(g); });
  std::cout << "  min vertex cover: exact " << vc_exact.weight << " ("
            << clb::fmt_double(vce_ms, 2) << " ms), local-ratio 2-approx "
            << vc_lr.weight << " (" << clb::fmt_double(vclr_ms, 2)
            << " ms)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  clb::Rng rng(seed);

  auto random_g = clb::graph::gnp_random(rng, 60, 0.2, 9);
  shootout("random G(60, 0.2), weights 1..9", random_g);

  const auto p = clb::lb::GadgetParams::from_l_alpha(8, 2, 100);
  const clb::lb::LinearConstruction c(p, 2);
  const auto inst = clb::comm::make_pairwise_disjoint(100, 2, rng, 0.4);
  const auto gadget = c.instantiate(inst);

  // The structured solver only applies to gadget instances — show it first.
  clb::maxis::IsSolution structured;
  const double str_ms =
      ms([&] { structured = clb::lb::solve_linear_structured(c, inst); });
  std::cout << "\nstructured gadget solver (exact, case analysis): weight "
            << structured.weight << " in " << clb::fmt_double(str_ms, 2)
            << " ms\n";
  shootout("gadget G_x (t=2, ell=8, alpha=2, k=100, n=" +
               std::to_string(c.num_nodes()) + ")",
           gadget, structured.weight);
  return 0;
}
