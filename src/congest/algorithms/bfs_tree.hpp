// Distributed BFS layering from a root.
//
// The root announces level 0; every node adopts level = 1 + (first heard
// level), announces once, then goes quiet. O(D) rounds, one O(log n)-bit
// message per edge per direction. Foundation for the convergecast
// aggregation (aggregate.hpp) and a standard sanity workload for the
// simulator. Requires a connected graph (unreached nodes never finish).
//
// The fault-tolerant variant survives the adversarial schedules of
// faults.hpp: nodes re-broadcast their best level every round (lost
// messages are retried for free), adopt the *minimum* level ever heard
// (late or duplicated announcements cannot inflate a level), checksum their
// payload (corrupted announcements are discarded, not believed), and stop
// at a round deadline — finished() with the converged layering, or
// failed() with a diagnostic when the root was never heard.

#pragma once

#include "congest/network.hpp"

namespace congestlb::congest {

/// Program outputs: every node's output() is its BFS level + 1 (so the
/// root outputs 1); nodes that never hear from the root output 0.
ProgramFactory bfs_level_factory(graph::NodeId root);

/// Retry/timeout BFS layering for faulty networks. Same outputs as
/// bfs_level_factory; every node terminates by `deadline_rounds` (0 = auto:
/// 3n + 16, enough for 5%-drop schedules on any connected topology), either
/// finished() with a level or failed() with a diagnostic.
ProgramFactory fault_tolerant_bfs_factory(graph::NodeId root,
                                          std::size_t deadline_rounds = 0);

}  // namespace congestlb::congest
