// The base graph H of Section 4.1 (Figure 1).
//
// H consists of a clique A = {v_1, ..., v_k} and ell+alpha "code gadget"
// cliques C_1, ..., C_{ell+alpha}, each holding one node per alphabet
// symbol. Node sigma_(h,r) in C_h represents "position h carries symbol r".
// The codeword C(m) of index m selects one node per clique — the set
// Code_m — and v_m is connected to every code node *outside* Code_m, so
// {v_m} + Code_m is independent while {v_m} + any other codeword's nodes
// collides in >= ell positions (the code distance).

#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "lowerbound/params.hpp"

namespace congestlb::lb {

using graph::NodeId;

/// Construction-time options shared by the gadget-family builders.
struct BuildOptions {
  /// Minimum dense-substructure edge count at which the builders record an
  /// ImplicitBlock (clique / anti-matching grid) instead of materializing
  /// adjacency. Graph::kNeverImplicit — the default — reproduces the
  /// materialized construction edge-for-edge; a finite threshold keeps
  /// build time and resident memory proportional to the *explicit* edges
  /// (the codeword stars), which is what makes the 10^6-node scaled
  /// families buildable.
  std::size_t implicit_threshold = graph::Graph::kNeverImplicit;
  /// Skip the presentation-only node labels (millions of label strings
  /// would dwarf the topology itself at scale).
  bool skip_labels = false;
};

class BaseGadget {
 public:
  explicit BaseGadget(GadgetParams params);
  BaseGadget(GadgetParams params, const BuildOptions& opts);

  const GadgetParams& params() const { return params_; }
  const graph::Graph& graph() const { return g_; }

  /// v_m, m in [0, k).
  NodeId a_node(std::size_t m) const;
  /// sigma_(h,r): position h in [0, ell+alpha), symbol r in [0, p).
  NodeId code_node(std::size_t h, std::size_t r) const;

  /// The clique A as node ids.
  std::vector<NodeId> a_nodes() const;
  /// The clique C_h as node ids.
  std::vector<NodeId> clique_nodes(std::size_t h) const;
  /// All code-gadget nodes (union of the C_h).
  std::vector<NodeId> code_nodes() const;
  /// Code_m: the nodes spelling out the codeword C(m), one per position.
  std::vector<NodeId> codeword_nodes(std::size_t m) const;

  /// The cached codeword symbols of message m.
  const codes::Word& codeword(std::size_t m) const;

 private:
  GadgetParams params_;
  std::vector<codes::Word> codewords_;  ///< per message m
  graph::Graph g_;
};

}  // namespace congestlb::lb
