// Message transcript recording for the CONGEST simulator.
//
// A TranscriptRecorder plugs into NetworkConfig::on_message and keeps the
// full (round, from, to, bits) log plus per-round aggregates — the raw
// material for debugging algorithms, for the Theorem-5 accounting plots,
// and for exporting runs as CSV.

#pragma once

#include <iosfwd>
#include <vector>

#include "congest/network.hpp"

namespace congestlb::congest {

struct TranscriptEntry {
  std::size_t round = 0;
  graph::NodeId from = 0;
  graph::NodeId to = 0;
  std::size_t bits = 0;

  /// Field-wise equality — the determinism suite compares whole transcripts.
  friend bool operator==(const TranscriptEntry&,
                         const TranscriptEntry&) = default;
};

class TranscriptRecorder {
 public:
  /// The observer to install: cfg.on_message = recorder.observer();
  /// The recorder must outlive the Network.
  std::function<void(std::size_t, graph::NodeId, graph::NodeId,
                     const Message&)>
  observer();

  const std::vector<TranscriptEntry>& entries() const { return entries_; }
  std::size_t total_bits() const { return total_bits_; }
  std::size_t num_messages() const { return entries_.size(); }

  /// Bits sent in each round, indexed by round number (0-based rounds as
  /// reported by the hook; missing rounds are zero).
  std::vector<std::size_t> bits_per_round() const;

  /// CSV dump: round,from,to,bits.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<TranscriptEntry> entries_;
  std::size_t total_bits_ = 0;
};

}  // namespace congestlb::congest
