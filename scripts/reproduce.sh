#!/usr/bin/env bash
# Full reproduction: configure, build, run the test suite and every
# experiment bench, capturing outputs at the repository root
# (test_output.txt, bench_output.txt) — the artifacts EXPERIMENTS.md is
# written from.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "===== $(basename "$b") =====" | tee -a bench_output.txt
    "$b" 2>&1 | tee -a bench_output.txt
  fi
done

echo "done: test_output.txt, bench_output.txt"
