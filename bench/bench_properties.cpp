// Experiments P1-P3: Properties 1, 2 and 3 of Section 4.1, verified
// mechanically across a sweep of gadget shapes.
//
//   P1: union_i ({v^i_m} + Code^i_m) is an independent set, every m.
//   P2: the bipartite graph (Code^i_{m1}, Code^j_{m2}) has a maximum
//       matching of size >= ell for all m1 != m2.
//   P3: an IS can pick from both Code^i_{m1} and Code^j_{m2} in at most
//       alpha positions.

#include <iostream>

#include "graph/matching.hpp"
#include "lowerbound/linear_family.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace clb = congestlb;
using clb::Table;

int main() {
  std::cout << "=== bench_properties: Properties 1-3 across gadget shapes ===\n";

  struct Shape {
    std::size_t ell, alpha, t;
  };
  const Shape shapes[] = {{2, 1, 2}, {3, 1, 3}, {4, 1, 4}, {3, 2, 2},
                          {4, 2, 3}, {6, 1, 5}, {5, 2, 4}, {8, 2, 3}};

  clb::print_heading(std::cout, "P1 — Property 1 witness independence");
  {
    Table t({"ell", "alpha", "t", "k", "witnesses checked", "all independent"});
    for (const auto& s : shapes) {
      const auto p = clb::lb::GadgetParams::from_l_alpha(s.ell, s.alpha);
      const clb::lb::LinearConstruction c(p, s.t);
      bool all_ok = true;
      std::size_t checked = 0;
      for (std::size_t m = 0; m < p.k; ++m) {
        ++checked;
        all_ok = all_ok &&
                 c.fixed_graph().is_independent_set(c.yes_witness(m));
      }
      t.row(s.ell, s.alpha, s.t, p.k, checked, all_ok);
    }
    t.print(std::cout);
  }

  clb::print_heading(std::cout,
                     "P2 — min max-matching between distinct codeword gadgets "
                     "(paper: >= ell)");
  {
    Table t({"ell", "alpha", "t", "pairs checked", "min matching", "claim >= ell",
             "holds"});
    clb::Rng rng(7);
    for (const auto& s : shapes) {
      const auto p = clb::lb::GadgetParams::from_l_alpha(s.ell, s.alpha);
      const clb::lb::LinearConstruction c(p, s.t);
      std::size_t min_matching = p.num_positions() + 1;
      std::size_t pairs = 0;
      const std::size_t budget = std::min<std::size_t>(p.k * (p.k - 1), 60);
      for (std::size_t trial = 0; trial < budget; ++trial) {
        const std::size_t m1 = rng.below(p.k);
        std::size_t m2 = rng.below(p.k - 1);
        if (m2 >= m1) ++m2;
        const auto matching = clb::graph::max_bipartite_matching(
            c.fixed_graph(), c.codeword_nodes(0, m1),
            c.codeword_nodes(1, m2));
        min_matching = std::min(min_matching, matching.size());
        ++pairs;
      }
      t.row(s.ell, s.alpha, s.t, pairs, min_matching, s.ell,
            min_matching >= s.ell);
    }
    t.print(std::cout);
  }

  clb::print_heading(std::cout,
                     "P3 — positions where an IS can hold both codewords "
                     "(paper: <= alpha)");
  {
    Table t({"ell", "alpha", "t", "pairs checked", "max shared positions",
             "claim <= alpha", "holds"});
    clb::Rng rng(13);
    for (const auto& s : shapes) {
      const auto p = clb::lb::GadgetParams::from_l_alpha(s.ell, s.alpha);
      const clb::lb::LinearConstruction c(p, s.t);
      std::size_t max_shared = 0;
      std::size_t pairs = 0;
      const std::size_t budget = std::min<std::size_t>(p.k * (p.k - 1), 60);
      for (std::size_t trial = 0; trial < budget; ++trial) {
        const std::size_t m1 = rng.below(p.k);
        std::size_t m2 = rng.below(p.k - 1);
        if (m2 >= m1) ++m2;
        const auto left = c.codeword_nodes(0, m1);
        const auto right = c.codeword_nodes(1, m2);
        std::size_t shared = 0;
        for (std::size_t h = 0; h < p.num_positions(); ++h) {
          if (!c.fixed_graph().has_edge(left[h], right[h])) ++shared;
        }
        max_shared = std::max(max_shared, shared);
        ++pairs;
      }
      t.row(s.ell, s.alpha, s.t, pairs, max_shared, s.alpha,
            max_shared <= s.alpha);
    }
    t.print(std::cout);
  }

  std::cout << "\nAll property sweeps completed.\n";
  return 0;
}
