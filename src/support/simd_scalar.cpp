// The portable dispatch table: the reference implementations every vector
// level must match bit for bit. This is what CLB_SIMD=scalar runs, on any
// architecture.

#include "support/simd.hpp"
#include "support/simd_detail.hpp"

namespace congestlb::simd::detail {

namespace {

const Kernels kTable = {
    Level::kScalar,
    scalar_and_rows,
    scalar_and_not_rows,
    scalar_popcount,
    scalar_and_popcount,
    scalar_first_bit,
    scalar_pack_bits,
    scalar_unpack_bits,
    scalar_count_nonzero_u8,
    scalar_sum_u32,
    scalar_accumulate_u32_to_u64,
};

}  // namespace

const Kernels* scalar_table() { return &kTable; }

}  // namespace congestlb::simd::detail
