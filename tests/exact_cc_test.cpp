// Exact deterministic communication complexity at toy scale: the solver
// reproduces the textbook values that seed the whole lower-bound
// framework, most importantly D(DISJ_k) = k + 1.

#include <gtest/gtest.h>

#include "comm/exact_cc.hpp"
#include "support/expect.hpp"
#include "support/rng.hpp"

namespace congestlb::comm {
namespace {

TEST(ExactCc, ConstantFunctionsAreFree) {
  CcMatrix zeros(4, std::vector<std::uint8_t>(6, 0));
  EXPECT_EQ(exact_deterministic_cc(zeros), 0u);
  CcMatrix ones(3, std::vector<std::uint8_t>(3, 1));
  EXPECT_EQ(exact_deterministic_cc(ones), 0u);
}

TEST(ExactCc, SingleBitAndNeedsTwoBits) {
  // f(x, y) = x AND y: after any single bit the live rectangle is still
  // mixed, so D = 2.
  CcMatrix f{{0, 0}, {0, 1}};
  EXPECT_EQ(exact_deterministic_cc(f), 2u);
}

TEST(ExactCc, RowFunctionNeedsOneBit) {
  // f depends only on Alice's bit: she announces it, done.
  CcMatrix f{{0, 0}, {1, 1}};
  EXPECT_EQ(exact_deterministic_cc(f), 1u);
}

TEST(ExactCc, DisjointnessIsKPlusOne) {
  // THE foundational fact (exact form of the Omega(k) bound [19, 25]):
  // deciding disjointness of k-bit sets costs exactly k + 1 deterministic
  // bits.
  for (std::size_t k = 1; k <= 3; ++k) {
    EXPECT_EQ(exact_deterministic_cc(disjointness_matrix(k)), k + 1)
        << "k=" << k;
  }
}

TEST(ExactCc, EqualityAndGreaterThanAreLogPlusOne) {
  EXPECT_EQ(exact_deterministic_cc(equality_matrix(2)), 2u);
  EXPECT_EQ(exact_deterministic_cc(equality_matrix(4)), 3u);
  EXPECT_EQ(exact_deterministic_cc(equality_matrix(8)), 4u);
  EXPECT_EQ(exact_deterministic_cc(greater_than_matrix(4)), 3u);
  EXPECT_EQ(exact_deterministic_cc(greater_than_matrix(8)), 4u);
}

TEST(ExactCc, TrivialUpperBoundHolds) {
  // D(f) <= ceil(log2 rows) + 1 (Alice announces her input, Bob answers).
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t rows = 1 + rng.below(8), cols = 1 + rng.below(8);
    CcMatrix f(rows, std::vector<std::uint8_t>(cols));
    for (auto& row : f) {
      for (auto& v : row) v = rng.chance(0.5) ? 1 : 0;
    }
    std::size_t bound = 1;
    std::size_t b = 0;
    while ((1u << b) < rows) ++b;
    bound += b;
    EXPECT_LE(exact_deterministic_cc(f), bound)
        << rows << "x" << cols;
  }
}

TEST(ExactCc, MonotoneUnderSubmatrices) {
  // Restricting Bob's domain can only make the problem easier.
  const auto full = disjointness_matrix(2);
  CcMatrix restricted(full.size());
  for (std::size_t r = 0; r < full.size(); ++r) {
    restricted[r] = {full[r][0], full[r][1]};  // first two columns
  }
  EXPECT_LE(exact_deterministic_cc(restricted),
            exact_deterministic_cc(full));
}

TEST(FoolingSet, CanonicalDisjointnessSetCertifiesK) {
  for (std::size_t k = 1; k <= 3; ++k) {
    const auto f = disjointness_matrix(k);
    const auto fs = disjointness_fooling_set(k);
    EXPECT_EQ(fs.size(), std::size_t{1} << k);
    EXPECT_EQ(fooling_set_lower_bound(f, fs), k) << "k=" << k;
    // The certified bound is consistent with the exact value k + 1.
    EXPECT_LE(fooling_set_lower_bound(f, fs), exact_deterministic_cc(f));
  }
}

TEST(FoolingSet, EqualityDiagonalIsFooling) {
  const auto f = equality_matrix(8);
  std::vector<std::pair<std::size_t, std::size_t>> diag;
  for (std::size_t i = 0; i < 8; ++i) diag.emplace_back(i, i);
  EXPECT_EQ(fooling_set_lower_bound(f, diag), 3u);
}

TEST(FoolingSet, RejectsInvalidCertificates) {
  const auto f = disjointness_matrix(2);
  // Mixed diagonal values.
  EXPECT_THROW(fooling_set_lower_bound(f, {{0, 0}, {1, 1}}), InvariantError);
  // Two pairs inside one monochromatic rectangle: (0, y) is disjoint for
  // every y, so {(0,1),(0,2)} does not fool.
  EXPECT_THROW(fooling_set_lower_bound(f, {{0, 1}, {0, 2}}), InvariantError);
  // Out of range.
  EXPECT_THROW(fooling_set_lower_bound(f, {{9, 0}}), InvariantError);
  EXPECT_THROW(fooling_set_lower_bound(f, {}), InvariantError);
}

TEST(ExactCc, InputValidation) {
  EXPECT_THROW(exact_deterministic_cc(CcMatrix{}), InvariantError);
  EXPECT_THROW(exact_deterministic_cc(CcMatrix{{0, 2}}), InvariantError);
  EXPECT_THROW(exact_deterministic_cc(CcMatrix{{0, 1}, {0}}), InvariantError);
  CcMatrix too_big(kMaxCcDomain + 1,
                   std::vector<std::uint8_t>(2, 0));
  EXPECT_THROW(exact_deterministic_cc(too_big), InvariantError);
  EXPECT_THROW(disjointness_matrix(4), InvariantError);
  EXPECT_THROW(equality_matrix(0), InvariantError);
}

}  // namespace
}  // namespace congestlb::comm
