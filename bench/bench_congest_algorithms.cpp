// Experiment ALG: the upper-bound side the paper contrasts with.
//
// Fast local algorithms (greedy MIS, Luby, weighted greedy) terminate in
// few rounds but only guarantee ~Delta-factor approximations; the universal
// gather-everything algorithm is exact but needs Theta(m) rounds — the
// O(n^2) generic upper bound that makes Theorem 2 near-tight. The tables
// measure rounds and approximation ratios on random graphs and on actual
// hard instances.

#include <iostream>

#include "comm/instances.hpp"
#include "congest/algorithms/aggregate.hpp"
#include "congest/algorithms/bfs_tree.hpp"
#include "congest/algorithms/coloring.hpp"
#include "congest/algorithms/greedy_mis.hpp"
#include "congest/algorithms/leader_election.hpp"
#include "congest/algorithms/luby_mis.hpp"
#include "congest/algorithms/universal_maxis.hpp"
#include "congest/algorithms/weighted_greedy.hpp"
#include "congest/network.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "lowerbound/linear_family.hpp"
#include "maxis/branch_and_bound.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace clb = congestlb;
using clb::Table;

namespace {

clb::graph::Graph random_connected(clb::Rng& rng, std::size_t n, double p,
                                   clb::graph::Weight max_w) {
  clb::graph::Graph g(n);
  for (clb::graph::NodeId v = 0; v < n; ++v) {
    g.set_weight(v, static_cast<clb::graph::Weight>(1 + rng.below(max_w)));
  }
  for (clb::graph::NodeId u = 0; u < n; ++u) {
    for (clb::graph::NodeId v = u + 1; v < n; ++v) {
      if (rng.chance(p)) g.add_edge(u, v);
    }
  }
  for (clb::graph::NodeId v = 0; v + 1 < n; ++v) {
    if (!g.has_edge(v, v + 1)) g.add_edge(v, v + 1);
  }
  return g;
}

struct AlgoRun {
  std::size_t rounds = 0;
  clb::graph::Weight weight = 0;
};

AlgoRun run(const clb::graph::Graph& g, const clb::congest::ProgramFactory& f,
            std::size_t bits_per_edge = 0) {
  clb::congest::NetworkConfig cfg;
  cfg.bits_per_edge = bits_per_edge;
  cfg.max_rounds = 400'000;
  clb::congest::Network net(g, f, cfg);
  const auto stats = net.run();
  AlgoRun r;
  r.rounds = stats.rounds;
  r.weight = g.weight_of(net.selected_nodes());
  return r;
}

}  // namespace

int main() {
  std::cout << "=== bench_congest_algorithms: upper-bound context ===\n";
  clb::Rng rng(707);

  clb::print_heading(std::cout, "random G(n, p) graphs, weights 1..8");
  {
    Table t({"n", "p", "Delta", "algorithm", "rounds", "weight", "OPT",
             "ratio"});
    for (auto [n, pr] : {std::pair<std::size_t, double>{24, 0.2},
                         {24, 0.5},
                         {40, 0.15}}) {
      auto g = random_connected(rng, n, pr, 8);
      const auto opt = clb::maxis::solve_exact(g).weight;
      const auto ub = clb::congest::universal_required_bits(n, 8);
      struct Entry {
        const char* name;
        clb::congest::ProgramFactory factory;
        std::size_t bits;
      };
      const Entry entries[] = {
          {"greedy-mis", clb::congest::greedy_mis_factory(), 0},
          {"luby-mis", clb::congest::luby_mis_factory(), 0},
          {"weighted-greedy", clb::congest::weighted_greedy_factory(), 0},
          {"universal-exact",
           clb::congest::universal_maxis_factory([](const clb::graph::Graph& gg) {
             return clb::maxis::solve_exact(gg).nodes;
           }),
           ub},
      };
      for (const auto& e : entries) {
        const auto r = run(g, e.factory, e.bits);
        t.row(n, clb::fmt_double(pr, 2), g.max_degree(), e.name, r.rounds,
              r.weight, opt,
              clb::fmt_double(static_cast<double>(r.weight) / opt));
      }
    }
    t.print(std::cout);
  }

  clb::print_heading(
      std::cout,
      "hard instances (linear family): local algorithms vs the gap");
  {
    Table t({"t", "branch", "algorithm", "rounds", "weight", "yes threshold",
             "would decide correctly"});
    for (std::size_t tp : {2, 3}) {
      const auto p = clb::lb::GadgetParams::for_linear_separation(tp, 1);
      const clb::lb::LinearConstruction c(p, tp);
      for (bool intersecting : {true, false}) {
        const auto inst =
            intersecting
                ? clb::comm::make_uniquely_intersecting(p.k, tp, rng, 0.3)
                : clb::comm::make_pairwise_disjoint(p.k, tp, rng, 0.3);
        const auto g = c.instantiate(inst);
        struct Entry {
          const char* name;
          clb::congest::ProgramFactory factory;
          std::size_t bits;
        };
        const Entry entries[] = {
            {"weighted-greedy", clb::congest::weighted_greedy_factory(), 0},
            {"universal-exact",
             clb::congest::universal_maxis_factory(
                 [](const clb::graph::Graph& gg) {
                   return clb::maxis::solve_exact(gg).nodes;
                 }),
             clb::congest::universal_required_bits(
                 c.num_nodes(), static_cast<clb::graph::Weight>(p.ell))},
        };
        for (const auto& e : entries) {
          const auto r = run(g, e.factory, e.bits);
          const bool decided_intersecting = r.weight >= c.yes_weight();
          t.row(tp, intersecting ? "YES" : "NO", e.name, r.rounds, r.weight,
                c.yes_weight(), decided_intersecting == intersecting);
        }
      }
    }
    t.print(std::cout);
    std::cout << "  (the fast local algorithm misses the gap; the exact one "
                 "decides it but pays Theta(m) rounds — the paper's "
                 "trade-off.)\n";
  }

  clb::print_heading(std::cout,
                     "primitive round complexity vs topology (rounds; "
                     "D = diameter)");
  {
    Table t({"graph", "n", "D", "bfs-levels", "leader", "aggregate",
             "coloring"});
    struct Shape {
      const char* name;
      clb::graph::Graph g;
    };
    clb::Rng grng(11);
    Shape shapes[] = {
        {"path", clb::graph::path_graph(64)},
        {"cycle", clb::graph::cycle_graph(64)},
        {"star", clb::graph::star_graph(64)},
        {"gnp(0.1)", clb::graph::gnp_random_connected(grng, 64, 0.1)},
        {"complete", clb::graph::complete_graph(32)},
    };
    for (auto& s : shapes) {
      const std::size_t d = clb::graph::diameter(s.g);
      auto rounds_of = [&](const clb::congest::ProgramFactory& f,
                           std::size_t bits) {
        clb::congest::NetworkConfig cfg;
        cfg.bits_per_edge = bits;
        cfg.max_rounds = 100'000;
        clb::congest::Network net(s.g, f, cfg);
        return net.run().rounds;
      };
      t.row(s.name, s.g.num_nodes(), d,
            rounds_of(clb::congest::bfs_level_factory(0), 0),
            rounds_of(clb::congest::leader_election_factory(), 0),
            rounds_of(clb::congest::aggregate_weight_factory(0),
                      clb::congest::aggregate_required_bits(s.g.num_nodes())),
            rounds_of(clb::congest::random_coloring_factory(), 0));
    }
    t.print(std::cout);
    std::cout << "  (bfs/aggregate track D; leader is Theta(n) by its "
                 "termination rule; coloring is O(log n) w.h.p.)\n";
  }

  std::cout << "\nCONGEST algorithm experiments completed.\n";
  return 0;
}
