// Fault-domain supervision (campaign/supervise.hpp): deterministic retry
// backoff (byte-identical across worker counts), quarantine on exhaustion,
// chaos injection and its environment contract, blocked-dependent
// propagation through a real campaign, and the deadline-cancelled solve
// path returning a certified approximate incumbent.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/jobs.hpp"
#include "campaign/manifest.hpp"
#include "campaign/supervise.hpp"
#include "lowerbound/linear_family.hpp"
#include "lowerbound/params.hpp"
#include "support/deadline.hpp"
#include "support/expect.hpp"

namespace clb = congestlb;
namespace cmp = clb::campaign;

namespace {

/// Unit-test policy: real retry discipline, no real sleeping.
cmp::RetryPolicy fast_policy(std::size_t max_attempts = 3) {
  cmp::RetryPolicy p;
  p.max_attempts = max_attempts;
  p.sleep = false;
  return p;
}

std::string canonical_manifest(const cmp::CampaignResult& result) {
  std::ostringstream os;
  cmp::ManifestWriteOptions opts;
  opts.include_volatile = false;
  cmp::write_manifest(os, result, opts);
  return os.str();
}

/// Scoped CLB_CHAOS_* environment: sets on construction, clears all chaos
/// variables on destruction so tests cannot leak config into each other.
struct ChaosEnv {
  explicit ChaosEnv(
      std::initializer_list<std::pair<const char*, const char*>> kv) {
    clear();
    for (const auto& [k, v] : kv) ::setenv(k, v, 1);
  }
  ~ChaosEnv() { clear(); }
  static void clear() {
    for (const char* k :
         {"CLB_CHAOS_KILL_AFTER_JOBS", "CLB_CHAOS_FAIL_RATE",
          "CLB_CHAOS_FAIL_SEED", "CLB_CHAOS_POISON"}) {
      ::unsetenv(k);
    }
  }
};

}  // namespace

// ------------------------------------------------------ backoff determinism --

TEST(Supervisor, BackoffIsPureAndStaysInEnvelope) {
  const cmp::RetryPolicy policy = fast_policy(8);
  cmp::Supervisor a(policy, /*seed=*/2020);
  cmp::Supervisor b(policy, /*seed=*/2020);
  for (const char* job : {"gadget/l2a1t2", "C12/l2a1t2k3/solve-yes"}) {
    for (std::size_t attempt = 0; attempt < 8; ++attempt) {
      const std::uint64_t d = a.backoff_for(job, attempt);
      // Pure: same (seed, job, attempt) -> same delay, across instances
      // and repeated calls.
      EXPECT_EQ(d, a.backoff_for(job, attempt));
      EXPECT_EQ(d, b.backoff_for(job, attempt));
      // Envelope: base*2^k capped, jittered into [envelope/2, envelope].
      const std::uint64_t envelope = std::min(
          policy.backoff_cap_us, policy.backoff_base_us << attempt);
      EXPECT_GE(d, envelope / 2) << job << " attempt " << attempt;
      EXPECT_LE(d, envelope) << job << " attempt " << attempt;
    }
  }
  // The campaign seed namespaces the jitter: a different seed must not
  // reproduce the same delay stream (overwhelmingly likely to differ).
  cmp::Supervisor other(policy, /*seed=*/2021);
  bool any_differ = false;
  for (std::size_t attempt = 0; attempt < 8; ++attempt) {
    any_differ |= other.backoff_for("gadget/l2a1t2", attempt) !=
                  a.backoff_for("gadget/l2a1t2", attempt);
  }
  EXPECT_TRUE(any_differ);
}

TEST(Supervisor, RetryRecoversFromTransientFailures) {
  cmp::Supervisor sup(fast_policy(3), 7);
  int calls = 0;
  const auto out = sup.supervise("job", [&] {
    if (++calls < 3) throw clb::InvariantError("transient");
  });
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(out.attempts, 3u);
  EXPECT_EQ(out.backoff_total_us,
            sup.backoff_for("job", 0) + sup.backoff_for("job", 1));
  EXPECT_EQ(sup.retries(), 2u);
  EXPECT_EQ(sup.quarantined(), 0u);
  EXPECT_TRUE(sup.faults().empty());
}

TEST(Supervisor, ExhaustionQuarantinesWithDiagnostic) {
  cmp::Supervisor sup(fast_policy(3), 7);
  int calls = 0;
  const auto out = sup.supervise("P2/l3a1t3/check", [&] {
    ++calls;
    throw std::runtime_error("poison payload " + std::to_string(calls));
  });
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(out.attempts, 3u);
  // The diagnostic is the *last* failure, not the first.
  EXPECT_NE(out.diagnostic.find("poison payload 3"), std::string::npos);
  EXPECT_EQ(sup.retries(), 2u);
  EXPECT_EQ(sup.quarantined(), 1u);
  const auto faults = sup.faults();
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].job_id, "P2/l3a1t3/check");
  EXPECT_EQ(faults[0].attempts, 3u);
  EXPECT_EQ(faults[0].backoff_total_us, out.backoff_total_us);
  EXPECT_EQ(faults[0].diagnostic, out.diagnostic);
}

TEST(Supervisor, SingleAttemptPolicyNeverRetries) {
  cmp::Supervisor sup(fast_policy(1), 7);
  const auto out =
      sup.supervise("job", [] { throw clb::InvariantError("once"); });
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_EQ(out.backoff_total_us, 0u);
  EXPECT_EQ(sup.retries(), 0u);
  EXPECT_EQ(sup.quarantined(), 1u);
}

TEST(Supervisor, NonStdExceptionPropagates) {
  // Only std::exception is a "job failure"; anything else is a harness bug
  // and must unwind through the supervisor untouched.
  cmp::Supervisor sup(fast_policy(3), 7);
  bool caught = false;
  try {
    sup.supervise("job", [] { throw 42; });
  } catch (int v) {
    caught = (v == 42);
  }
  EXPECT_TRUE(caught);
  EXPECT_EQ(sup.quarantined(), 0u);
}

// ------------------------------------------------------------------- chaos --

TEST(Supervisor, PoisonSubstringQuarantinesWithoutRunningBody) {
  cmp::ChaosConfig chaos;
  chaos.poison_substring = "solve-yes";
  cmp::Supervisor sup(fast_policy(3), 7, chaos);
  int poisoned_calls = 0;
  const auto bad = sup.supervise("C12/l2a1t2k3/solve-yes",
                                 [&] { ++poisoned_calls; });
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(poisoned_calls, 0) << "poison must fail before the body runs";
  EXPECT_EQ(bad.attempts, 3u);
  EXPECT_EQ(sup.quarantined(), 1u);
  // A job whose id does not match runs normally under the same config.
  int clean_calls = 0;
  const auto good =
      sup.supervise("C12/l2a1t2k3/solve-no", [&] { ++clean_calls; });
  EXPECT_TRUE(good.ok);
  EXPECT_EQ(clean_calls, 1);
}

TEST(Supervisor, InjectedFailuresAreDeterministic) {
  cmp::ChaosConfig chaos;
  chaos.fail_rate = 0.5;
  chaos.fail_seed = 42;
  const auto attempts_per_job = [&] {
    cmp::Supervisor sup(fast_policy(4), 7, chaos);
    std::vector<std::size_t> attempts;
    for (int j = 0; j < 32; ++j) {
      attempts.push_back(
          sup.supervise("job-" + std::to_string(j), [] {}).attempts);
    }
    return attempts;
  };
  const auto first = attempts_per_job();
  EXPECT_EQ(first, attempts_per_job());
  // At rate 0.5 over 32 jobs, both clean first tries and retries must
  // occur (the injection actually bites and actually spares).
  bool any_clean = false, any_retried = false;
  for (const std::size_t a : first) {
    any_clean |= a == 1;
    any_retried |= a > 1;
  }
  EXPECT_TRUE(any_clean);
  EXPECT_TRUE(any_retried);
  // A different fail seed yields a different failure pattern.
  chaos.fail_seed = 43;
  EXPECT_NE(first, attempts_per_job());
}

TEST(ChaosEnvContract, RoundTripAndRejection) {
  {
    ChaosEnv env({});
    EXPECT_EQ(cmp::chaos_from_env(), std::nullopt);
  }
  {
    ChaosEnv env({{"CLB_CHAOS_KILL_AFTER_JOBS", "3"},
                  {"CLB_CHAOS_FAIL_RATE", "0.25"},
                  {"CLB_CHAOS_FAIL_SEED", "99"},
                  {"CLB_CHAOS_POISON", "solve-no"}});
    const auto chaos = cmp::chaos_from_env();
    ASSERT_TRUE(chaos.has_value());
    EXPECT_EQ(chaos->kill_after_jobs, 3);
    EXPECT_DOUBLE_EQ(chaos->fail_rate, 0.25);
    EXPECT_EQ(chaos->fail_seed, 99u);
    EXPECT_EQ(chaos->poison_substring, "solve-no");
  }
  {
    // One variable set is enough to arm chaos.
    ChaosEnv env({{"CLB_CHAOS_POISON", "check"}});
    const auto chaos = cmp::chaos_from_env();
    ASSERT_TRUE(chaos.has_value());
    EXPECT_EQ(chaos->poison_substring, "check");
    EXPECT_EQ(chaos->kill_after_jobs, -1);
    EXPECT_DOUBLE_EQ(chaos->fail_rate, 0.0);
  }
  // Malformed values must throw, never silently run non-chaotic.
  {
    ChaosEnv env({{"CLB_CHAOS_KILL_AFTER_JOBS", "soon"}});
    EXPECT_THROW(cmp::chaos_from_env(), clb::InvariantError);
  }
  {
    ChaosEnv env({{"CLB_CHAOS_FAIL_RATE", "1.5"}});
    EXPECT_THROW(cmp::chaos_from_env(), clb::InvariantError);
  }
  {
    ChaosEnv env({{"CLB_CHAOS_FAIL_SEED", "-1"}});
    EXPECT_THROW(cmp::chaos_from_env(), clb::InvariantError);
  }
}

// ------------------------------------------- supervision inside a campaign --

namespace {

/// id -> (attempts, backoff_us, verdict) for every record: the full
/// fault-visible surface of a run.
std::map<std::string, std::tuple<std::size_t, std::uint64_t, std::string>>
fault_surface(const cmp::CampaignResult& result) {
  std::map<std::string, std::tuple<std::size_t, std::uint64_t, std::string>>
      m;
  for (const auto& r : result.records) {
    m.emplace(r.id, std::make_tuple(r.attempts, r.backoff_us, r.verdict));
  }
  return m;
}

}  // namespace

TEST(CampaignSupervision, RetrySequenceByteIdenticalAcrossThreadCounts) {
  // The acceptance pin: with deterministic fault injection, the retry
  // count, total backoff, and verdict of every job — and the canonical
  // manifest — are identical for 1, 2, and 8 workers.
  const auto spec = cmp::builtin_smoke_campaign();
  const auto run_at = [&](std::size_t threads) {
    cmp::RunOptions opts;
    opts.threads = threads;
    opts.retry = fast_policy(3);
    cmp::ChaosConfig chaos;
    chaos.fail_rate = 0.35;
    chaos.fail_seed = 11;
    opts.chaos = chaos;
    return cmp::run_campaign(spec, opts);
  };
  const auto base = run_at(1);
  EXPECT_GT(base.retries, 0u) << "fail_rate 0.35 never bit — raise it";
  const auto base_surface = fault_surface(base);
  const std::string base_manifest = canonical_manifest(base);
  for (const std::size_t threads : {2u, 8u}) {
    const auto got = run_at(threads);
    EXPECT_EQ(got.retries, base.retries) << "threads=" << threads;
    EXPECT_EQ(got.jobs_quarantined, base.jobs_quarantined);
    EXPECT_EQ(got.jobs_blocked, base.jobs_blocked);
    EXPECT_EQ(fault_surface(got), base_surface) << "threads=" << threads;
    EXPECT_EQ(canonical_manifest(got), base_manifest)
        << "threads=" << threads;
  }
}

TEST(CampaignSupervision, PoisonQuarantinesAndBlocksDependents) {
  const auto spec = cmp::builtin_smoke_campaign();

  // Reference: the clean run this degraded campaign must converge back to.
  cmp::RunOptions clean_opts;
  clean_opts.retry = fast_policy(2);
  const auto reference = cmp::run_campaign(spec, clean_opts);
  ASSERT_TRUE(reference.all_hold);

  // Poison every solve-no job: those quarantine, and every claim check
  // depending on one is blocked without executing.
  cmp::RunOptions opts;
  opts.retry = fast_policy(2);
  cmp::ChaosConfig chaos;
  chaos.poison_substring = "/solve-no";
  opts.chaos = chaos;
  const auto degraded = cmp::run_campaign(spec, opts);

  EXPECT_TRUE(degraded.complete) << "every job still gets a record";
  EXPECT_FALSE(degraded.all_hold) << "a degraded run must not claim victory";
  EXPECT_EQ(degraded.jobs_quarantined, 4u);  // C12 x2 + C35 x2 solve-no
  EXPECT_EQ(degraded.jobs_blocked, 4u);      // ... and their checks
  for (const auto& r : degraded.records) {
    if (r.id.find("/solve-no") != std::string::npos) {
      EXPECT_EQ(r.verdict, "quarantined") << r.id;
      EXPECT_FALSE(r.diagnostic.empty()) << r.id;
      EXPECT_EQ(r.attempts, 2u) << r.id;
    } else if (r.id.find("C12/") == 0 || r.id.find("C35/") == 0) {
      if (r.stage == "check") {
        EXPECT_EQ(r.verdict, "blocked") << r.id;
      }
    } else if (r.stage == "check") {
      // Property sweeps have no solve dependency and still hold.
      EXPECT_EQ(r.verdict, "holds") << r.id;
    }
  }

  // Fault verdicts are canonical (the manifest shows the degradation)...
  const std::string degraded_manifest = canonical_manifest(degraded);
  EXPECT_NE(degraded_manifest.find("\"quarantined\""), std::string::npos);
  EXPECT_NE(degraded_manifest.find("\"blocked\""), std::string::npos);

  // ... but never honored on resume: with chaos off and the degraded
  // records as prior, exactly the faulted jobs re-run and the campaign
  // converges to the clean reference manifest.
  std::map<std::string, cmp::JobRecord> prior;
  for (const auto& r : degraded.records) prior.emplace(r.id, r);
  cmp::RunOptions resume_opts;
  resume_opts.retry = fast_policy(2);
  const auto recovered = cmp::run_campaign(spec, resume_opts, &prior);
  EXPECT_TRUE(recovered.all_hold);
  EXPECT_EQ(recovered.jobs_quarantined, 0u);
  EXPECT_EQ(recovered.jobs_blocked, 0u);
  EXPECT_EQ(canonical_manifest(recovered), canonical_manifest(reference));
  EXPECT_GT(recovered.jobs_resumed, 0u) << "healthy records must carry over";
  EXPECT_GE(recovered.jobs_run, 8u) << "faulted jobs must actually re-run";
}

// ------------------------------------------------------ deadline cancelling --

TEST(CampaignSupervision, CancelledSolveBranchIsCertifiedApproximate) {
  const auto params = clb::lb::GadgetParams::from_l_alpha(3, 1, 4);
  const clb::lb::LinearConstruction c(params, 2);

  clb::DeadlineToken cancelled;
  cancelled.cancel();
  const auto partial =
      cmp::solve_branch(c, /*yes_branch=*/true, /*trials=*/2, 2020,
                        &cancelled);
  EXPECT_TRUE(partial.approximate);
  EXPECT_GE(partial.opt, 0) << "incumbent weight is still a certified IS";

  const auto exact = cmp::solve_branch(c, true, 2, 2020);
  EXPECT_FALSE(exact.approximate);
  EXPECT_LE(partial.opt, exact.opt)
      << "a partial incumbent can never exceed OPT";

  // An armed-but-generous deadline must not perturb the exact result.
  const clb::DeadlineToken generous(std::chrono::minutes(10));
  const auto timed = cmp::solve_branch(c, true, 2, 2020, &generous);
  EXPECT_FALSE(timed.approximate);
  EXPECT_EQ(timed.opt, exact.opt);
}

TEST(CampaignSupervision, ApproximateResultsAreNeverCachedOrResumed) {
  const auto spec = cmp::builtin_smoke_campaign();
  cmp::RunOptions opts;
  // A 0-tolerance deadline cannot be set through job_deadline_ms (0 means
  // "none"), so 1 ms is the tightest configurable budget; on any machine
  // this cancels at least the larger solves. Either way the contract
  // below must hold for whatever did get flagged.
  opts.job_deadline_ms = 1;
  const auto result = cmp::run_campaign(spec, opts);
  ASSERT_TRUE(result.complete);

  std::map<std::string, cmp::JobRecord> prior;
  std::size_t approx = 0;
  for (const auto& r : result.records) {
    approx += r.outcome.approximate ? 1u : 0u;
    prior.emplace(r.id, r);
  }

  // Resume over those records: every approximate record must be re-run
  // (match() refuses it), every exact one carried over.
  cmp::RunOptions resume_opts;
  const auto resumed = cmp::run_campaign(spec, resume_opts, &prior);
  EXPECT_TRUE(resumed.all_hold);
  for (const auto& r : resumed.records) {
    EXPECT_FALSE(r.outcome.approximate) << r.id;
  }
  EXPECT_EQ(resumed.jobs_resumed + approx, resumed.jobs_total)
      << "exactly the approximate records were refused on resume";
}
