#include "support/json.hpp"

#include <cmath>
#include <ostream>

#include "support/expect.hpp"

namespace congestlb {

JsonWriter::JsonWriter(std::ostream& os) : os_(&os) {}

void JsonWriter::indent() {
  for (std::size_t i = 0; i < has_element_.size(); ++i) *os_ << "  ";
}

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;  // value follows "key": inline
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) *os_ << ',';
    *os_ << '\n';
    indent();
    has_element_.back() = true;
  }
}

void JsonWriter::write_escaped(std::string_view s) {
  *os_ << '"';
  for (char c : s) {
    switch (c) {
      case '"': *os_ << "\\\""; break;
      case '\\': *os_ << "\\\\"; break;
      case '\n': *os_ << "\\n"; break;
      case '\t': *os_ << "\\t"; break;
      case '\r': *os_ << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          *os_ << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          *os_ << c;
        }
    }
  }
  *os_ << '"';
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  *os_ << '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  CLB_EXPECT(!has_element_.empty(), "JsonWriter: unbalanced end_object");
  const bool had = has_element_.back();
  has_element_.pop_back();
  if (had) {
    *os_ << '\n';
    indent();
  }
  *os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  *os_ << '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  CLB_EXPECT(!has_element_.empty(), "JsonWriter: unbalanced end_array");
  const bool had = has_element_.back();
  has_element_.pop_back();
  if (had) {
    *os_ << '\n';
    indent();
  }
  *os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  CLB_EXPECT(!after_key_, "JsonWriter: key after key");
  separate();
  write_escaped(k);
  *os_ << ": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separate();
  write_escaped(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string_view(v));
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  *os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separate();
  if (std::isfinite(v)) {
    const auto flags = os_->flags();
    const auto precision = os_->precision();
    os_->precision(12);
    *os_ << v;
    os_->flags(flags);
    os_->precision(precision);
  } else {
    *os_ << "null";  // JSON has no Inf/NaN
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  *os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  *os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  return value(static_cast<std::int64_t>(v));
}

}  // namespace congestlb
