// Reference protocols for promise pairwise disjointness.
//
// These provide measured *upper bounds* to contrast with the CKS lower bound
// (Theorem 3): the gap between the cheapest protocol here (~k bits) and
// Omega(k / t log t) shows the lower bound is tight up to O(t log t).
// They also serve as executable documentation of the shared-blackboard model.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "comm/blackboard.hpp"
#include "comm/instances.hpp"

namespace congestlb::comm {

/// A deterministic protocol that decides promise pairwise disjointness on a
/// shared blackboard. run() must only let player i read its own string plus
/// the blackboard (enforced by code review, not types: players receive the
/// full instance but honest implementations index strings[i] only).
class DisjointnessProtocol {
 public:
  virtual ~DisjointnessProtocol() = default;

  /// Execute on a validated promise instance; every bit of communication
  /// goes through `board`. Returns TRUE iff pairwise disjoint (Definition 2).
  virtual bool run(const PromiseInstance& inst, Blackboard& board) const = 0;

  virtual std::string name() const = 0;
};

/// Every player posts its entire string: t*k bits. The naive baseline.
class FullRevelationProtocol final : public DisjointnessProtocol {
 public:
  bool run(const PromiseInstance& inst, Blackboard& board) const override;
  std::string name() const override { return "full-revelation"; }
};

/// Player 0 posts the positions of its 1-bits (|x^0| * ceil(log2 k) bits
/// plus a count header); every other player posts one bit per candidate.
/// Cheap when the strings are sparse.
class SupportExchangeProtocol final : public DisjointnessProtocol {
 public:
  bool run(const PromiseInstance& inst, Blackboard& board) const override;
  std::string name() const override { return "support-exchange"; }
};

/// Exploits the promise: the strings are uniquely intersecting iff x^0 and
/// x^1 already intersect (in the pairwise-disjoint case they do not; in the
/// intersecting case they share the witness). Player 0 posts its k bits,
/// player 1 posts a single answer bit: k + 1 bits total, within O(t log t)
/// of the CKS lower bound.
class PromiseAwareProtocol final : public DisjointnessProtocol {
 public:
  bool run(const PromiseInstance& inst, Blackboard& board) const override;
  std::string name() const override { return "promise-aware"; }
};

/// All reference protocols, for sweep-style benches.
std::vector<std::unique_ptr<DisjointnessProtocol>> all_reference_protocols();

}  // namespace congestlb::comm
