// Convergecast weight aggregation over a BFS tree (upcast + downcast).
//
// The classic three-phase CONGEST pattern:
//   1. BFS layering from the root; every node adopts a parent and tells
//      every neighbor whether it adopted them (so child sets are known
//      exactly);
//   2. upcast: each node, once all children reported, sends its subtree
//      weight to its parent; the root obtains the global total;
//   3. downcast: the total is flooded back down the tree.
// O(D) rounds for phases 1 and 3, O(depth) for phase 2; every node ends
// with output() = total node weight of the graph. Requires a connected
// graph and total weight < 2^32.

#pragma once

#include "congest/network.hpp"

namespace congestlb::congest {

/// Per-edge bandwidth needed by the aggregation messages on an n-node
/// network (type tag + max(level+adopt, 32-bit sum)).
std::size_t aggregate_required_bits(std::size_t n);

/// Program outputs: every node's output() is the network's total weight
/// (0 until known).
ProgramFactory aggregate_weight_factory(graph::NodeId root);

}  // namespace congestlb::congest
