// Quickstart: build a lower-bound family, instantiate it on both promise
// branches, and watch the MaxIS gap appear.
//
//   $ ./quickstart [t] [seed]
//
// This is the smallest end-to-end tour of the library's core objects:
// GadgetParams -> LinearConstruction -> PromiseInstance -> instantiate ->
// exact MaxIS -> gap predicate.

#include <cstdlib>
#include <iostream>

#include "comm/instances.hpp"
#include "lowerbound/linear_family.hpp"
#include "maxis/branch_and_bound.hpp"
#include "support/rng.hpp"

namespace clb = congestlb;

int main(int argc, char** argv) {
  const std::size_t t = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  std::cout << "congestlb quickstart: the (1/2+eps) MaxIS gap of Efron-"
               "Grossman-Khoury (PODC 2020)\n\n";

  // 1. Pick gadget parameters with a guaranteed YES/NO separation for t
  //    players (ell > alpha * t).
  const auto params = clb::lb::GadgetParams::for_linear_separation(t);
  std::cout << "parameters: t = " << t << ", ell = " << params.ell
            << ", alpha = " << params.alpha << ", k = " << params.k
            << " (code: " << params.code->name() << ")\n";

  // 2. Build the fixed graph construction G: t copies of the base gadget H
  //    plus the Figure-2 anti-matchings between code cliques.
  const clb::lb::LinearConstruction c(params, t);
  std::cout << "construction: " << c.num_nodes() << " nodes, "
            << c.fixed_graph().num_edges() << " edges, cut = " << c.cut_size()
            << " edges\n";
  std::cout << "gap predicate: YES weight >= " << c.yes_weight()
            << ", NO weight <= " << c.no_bound()
            << "  (ratio -> 1/2 as t grows)\n\n";

  // 3. Draw both branches of the promise and solve MaxIS exactly.
  clb::Rng rng(seed);
  const auto yes = clb::comm::make_uniquely_intersecting(params.k, t, rng);
  const auto no = clb::comm::make_pairwise_disjoint(params.k, t, rng);

  const auto g_yes = c.instantiate(yes);
  const auto opt_yes = clb::maxis::solve_exact(g_yes);
  std::cout << "uniquely-intersecting instance (witness index m = "
            << *yes.witness << "):\n";
  std::cout << "  exact MaxIS = " << opt_yes.weight << "  (claim: >= "
            << c.yes_weight() << ")\n";

  // The paper's Property-1 witness achieves the bound constructively.
  const auto witness = c.yes_witness(*yes.witness);
  std::cout << "  Property-1 witness {v^i_m} + Code^i_m: weight = "
            << g_yes.weight_of(witness) << ", independent = "
            << (g_yes.is_independent_set(witness) ? "yes" : "no") << "\n\n";

  const auto g_no = c.instantiate(no);
  const auto opt_no = clb::maxis::solve_exact(g_no);
  std::cout << "pairwise-disjoint instance:\n";
  std::cout << "  exact MaxIS = " << opt_no.weight << "  (claim: <= "
            << c.no_bound() << ")\n\n";

  // 4. The punchline: any algorithm that approximates MaxIS better than
  //    no_bound/yes_weight distinguishes the branches, and therefore pays
  //    the communication lower bound.
  const double ratio = static_cast<double>(opt_no.weight) /
                       static_cast<double>(opt_yes.weight);
  std::cout << "measured NO/YES ratio = " << ratio
            << " -> any better-than-" << ratio
            << " approximation decides promise pairwise disjointness.\n";
  std::cout << "By Theorem 3 [CKS03] + Theorem 5, that costs Omega(k / (t "
               "log t * cut * log n)) rounds.\n";
  return 0;
}
