// Gadget parameter selection: paper-regime formulas, capacity repair,
// separation helper, custom code injection.

#include <gtest/gtest.h>

#include "codes/trivial_codes.hpp"
#include "lowerbound/params.hpp"
#include "support/expect.hpp"
#include "support/math.hpp"

namespace congestlb::lb {
namespace {

TEST(GadgetParams, FromLAlphaDefaultsToPaperK) {
  const auto p = GadgetParams::from_l_alpha(2, 1);
  EXPECT_EQ(p.ell, 2u);
  EXPECT_EQ(p.alpha, 1u);
  EXPECT_EQ(p.k, 3u);  // (ell+alpha)^alpha = 3
  EXPECT_EQ(p.num_positions(), 3u);
  EXPECT_EQ(p.clique_size(), 3u);  // 3 is prime already
  EXPECT_EQ(p.nodes_per_copy(), 3u + 3 * 3);
}

TEST(GadgetParams, ExplicitKHonored) {
  const auto p = GadgetParams::from_l_alpha(4, 2, 20);
  EXPECT_EQ(p.k, 20u);
}

TEST(GadgetParams, CompositeAlphabetRoundsUpToPrime) {
  const auto p = GadgetParams::from_l_alpha(5, 1);  // ell+alpha = 6 -> p = 7
  EXPECT_EQ(p.clique_size(), 7u);
  EXPECT_EQ(p.num_positions(), 6u);  // clique *count* stays ell+alpha
}

TEST(GadgetParams, KCapacityEnforced) {
  // alpha=1, ell=2: capacity = p^1 = 3 messages.
  EXPECT_THROW(GadgetParams::from_l_alpha(2, 1, 4), InvariantError);
  EXPECT_NO_THROW(GadgetParams::from_l_alpha(2, 1, 3));
  EXPECT_THROW(GadgetParams::from_l_alpha(2, 1, 1), InvariantError);  // k >= 2
}

TEST(GadgetParams, FromKCoversRequestedUniverse) {
  for (std::size_t k : {2, 5, 16, 64, 256, 1000, 5000}) {
    const auto p = GadgetParams::from_k(k);
    EXPECT_EQ(p.k, k);
    EXPECT_LE(p.k, p.code->num_messages());
    EXPECT_GE(p.code->min_distance(), p.ell);
  }
}

TEST(GadgetParams, FromKTracksPaperRegime) {
  // For large k the selected (ell, alpha) should be near the paper's
  // formulas (the repair loop only bumps ell when rounding undershoots).
  const std::size_t k = 1 << 16;
  const auto p = GadgetParams::from_k(k);
  const auto paper = paper_ell_alpha(k);
  EXPECT_EQ(p.alpha, paper.alpha);
  EXPECT_GE(p.ell, paper.ell);
  EXPECT_LE(p.ell, paper.ell + 4);
}

TEST(GadgetParams, ForLinearSeparationGivesGap) {
  for (std::size_t t : {2, 3, 4, 6}) {
    const auto p = GadgetParams::for_linear_separation(t);
    // Claims 3 & 5 separate iff t(2l+a) > (t+1)l + a t^2, i.e. l > a t
    // (for t > 2; t = 2 uses the tighter Claim 2 bound).
    EXPECT_GT(p.ell, p.alpha * t);
  }
  EXPECT_THROW(GadgetParams::for_linear_separation(1), InvariantError);
}

TEST(GadgetParams, WithCodeAcceptsMatchingShape) {
  auto weak = std::make_shared<codes::PaddingCode>(2, 7, 9);  // L=2, M=7
  const auto p = GadgetParams::with_code(5, 2, 30, weak);
  EXPECT_EQ(p.clique_size(), 9u);
  EXPECT_EQ(p.num_positions(), 7u);
  EXPECT_EQ(p.code->min_distance(), 1u);  // deliberately weak
}

TEST(GadgetParams, WithCodeRejectsWrongShape) {
  auto code = std::make_shared<codes::PaddingCode>(2, 7, 9);
  // ell+alpha != codeword length
  EXPECT_THROW(GadgetParams::with_code(6, 2, 30, code), InvariantError);
  // alpha != message length
  EXPECT_THROW(GadgetParams::with_code(6, 1, 30, code), InvariantError);
  EXPECT_THROW(GadgetParams::with_code(5, 2, 30, nullptr), InvariantError);
  // k over capacity 9^2 = 81
  EXPECT_THROW(GadgetParams::with_code(5, 2, 82, code), InvariantError);
}

}  // namespace
}  // namespace congestlb::lb
