#include "congest/algorithms/aggregate.hpp"

#include "support/expect.hpp"
#include "support/math.hpp"

namespace congestlb::congest {

namespace {

constexpr std::uint64_t kTypeLevel = 0;
constexpr std::uint64_t kTypeSum = 1;
constexpr std::uint64_t kTypeTotal = 2;
constexpr std::size_t kSumBits = 32;

std::size_t level_bits_for(std::size_t n) {
  return static_cast<std::size_t>(
      std::max(1, ceil_log2(std::max<std::size_t>(2, n + 1))));
}

class AggregateProgram final : public NodeProgram {
 public:
  explicit AggregateProgram(graph::NodeId root) : root_(root) {}

  void round(const NodeInfo& info, const Inbox& inbox, Outbox& outbox,
             Rng&) override {
    if (!initialized_) initialize(info);

    // ---- ingest ----------------------------------------------------------
    for (std::size_t s = 0; s < inbox.size(); ++s) {
      if (!inbox[s]) continue;
      MessageReader r(*inbox[s]);
      const std::uint64_t type = r.get(2);
      if (type == kTypeLevel) {
        const std::uint64_t their_level = r.get(level_bits_);
        const bool adopted_me = r.get(1) != 0;
        if (level_ == kUnset) {
          level_ = their_level + 1;
          parent_slot_ = s;
        }
        neighbor_declared_[s] = true;
        is_child_[s] = adopted_me;
      } else if (type == kTypeSum) {
        child_sum_ += r.get(kSumBits);
        ++sums_received_;
      } else {  // kTypeTotal
        if (total_ == kUnset) total_ = r.get(kSumBits);
      }
    }

    // ---- decide this round's (single) action ----------------------------
    // Each action fires at most once; one message per neighbor per round is
    // guaranteed by acting on one phase at a time.
    if (level_ != kUnset && !announced_level_) {
      announced_level_ = true;
      for (std::size_t s = 0; s < info.neighbors.size(); ++s) {
        MessageWriter w;
        w.put(kTypeLevel, 2);
        w.put(level_, level_bits_);
        w.put(parent_slot_.has_value() && *parent_slot_ == s ? 1 : 0, 1);
        outbox.send(s, std::move(w).finish());
      }
      return;
    }

    const bool all_declared = [&] {
      for (bool d : neighbor_declared_) {
        if (!d) return false;
      }
      return true;
    }();
    const std::size_t num_children = [&] {
      std::size_t c = 0;
      for (bool ch : is_child_) c += ch ? 1 : 0;
      return c;
    }();

    if (announced_level_ && all_declared && sums_received_ == num_children &&
        !sum_done_) {
      sum_done_ = true;
      const std::uint64_t subtree =
          static_cast<std::uint64_t>(info.weight) + child_sum_;
      CLB_EXPECT(subtree < (1ULL << kSumBits),
                 "aggregate: subtree weight exceeds 32-bit field");
      if (parent_slot_.has_value()) {
        MessageWriter w;
        w.put(kTypeSum, 2);
        w.put(subtree, kSumBits);
        outbox.send(*parent_slot_, std::move(w).finish());
        return;
      }
      // Root: the subtree sum is the global total.
      total_ = subtree;
    }

    if (total_ != kUnset && !forwarded_total_) {
      forwarded_total_ = true;
      for (std::size_t s = 0; s < info.neighbors.size(); ++s) {
        if (!is_child_[s]) continue;
        MessageWriter w;
        w.put(kTypeTotal, 2);
        w.put(total_, kSumBits);
        outbox.send(s, std::move(w).finish());
      }
    }
  }

  bool finished() const override { return total_ != kUnset && forwarded_total_; }
  std::int64_t output() const override {
    return total_ == kUnset ? 0 : static_cast<std::int64_t>(total_);
  }

 private:
  void initialize(const NodeInfo& info) {
    initialized_ = true;
    level_bits_ = level_bits_for(info.n);
    CLB_EXPECT(info.bits_per_edge >= aggregate_required_bits(info.n),
               "aggregate: per-edge bandwidth too small; use "
               "aggregate_required_bits()");
    neighbor_declared_.assign(info.neighbors.size(), false);
    is_child_.assign(info.neighbors.size(), false);
    if (info.id == root_) level_ = 0;
  }

  static constexpr std::uint64_t kUnset = ~0ULL;
  graph::NodeId root_;
  bool initialized_ = false;
  std::size_t level_bits_ = 0;
  std::uint64_t level_ = kUnset;
  std::optional<std::size_t> parent_slot_;
  std::vector<bool> neighbor_declared_;
  std::vector<bool> is_child_;
  std::uint64_t child_sum_ = 0;
  std::size_t sums_received_ = 0;
  bool announced_level_ = false;
  bool sum_done_ = false;
  std::uint64_t total_ = kUnset;
  bool forwarded_total_ = false;
};

}  // namespace

std::size_t aggregate_required_bits(std::size_t n) {
  return 2 + std::max(level_bits_for(n) + 1, kSumBits);
}

ProgramFactory aggregate_weight_factory(graph::NodeId root) {
  return [root](graph::NodeId, const NodeInfo&) {
    return std::make_unique<AggregateProgram>(root);
  };
}

}  // namespace congestlb::congest
