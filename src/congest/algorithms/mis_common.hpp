// Shared state machine for the independent-set node programs.
//
// All three local algorithms (greedy-by-id, Luby, weighted-greedy) follow the
// same skeleton: undecided nodes repeatedly exchange a comparison key with
// their neighbors; a node joins the IS when its key beats every undecided
// neighbor, and a node leaves when a neighbor joins. They differ only in the
// key (static id / fresh randomness / weight).

#pragma once

#include <cstdint>

namespace congestlb::congest {

enum class IsState : std::uint8_t {
  kUndecided = 0,
  kIn = 1,
  kOut = 2,
};

}  // namespace congestlb::congest
