// Cross-module integration: the full epsilon -> t -> gadget -> CONGEST ->
// blackboard -> answer pipeline, the code ablation (a weak code breaks
// Property 2), and consistency between formula-level and measured objects.

#include <gtest/gtest.h>

#include "codes/trivial_codes.hpp"
#include "comm/lower_bound.hpp"
#include "congest/algorithms/universal_maxis.hpp"
#include <sstream>

#include "graph/algorithms.hpp"
#include "graph/io.hpp"
#include "graph/matching.hpp"
#include "lowerbound/framework.hpp"
#include "maxis/branch_and_bound.hpp"
#include "sim/reduction.hpp"
#include "support/expect.hpp"
#include "support/rng.hpp"

namespace congestlb {
namespace {

TEST(Integration, FullPipelineFromEpsilon) {
  // Pick eps, derive t per Lemma 2, build separated params, run the whole
  // reduction with the universal algorithm, and get the right answer on
  // both branches while respecting the Theorem-5 bit budget.
  const double eps = 0.45;  // small t so the test stays fast
  const std::size_t t = lb::linear_players_for_epsilon(eps);
  ASSERT_EQ(t, 5u);
  // Default k = (ell+alpha)^alpha = 7 >= t, within code capacity.
  const auto p = lb::GadgetParams::for_linear_separation(t, 1);
  const lb::LinearConstruction c(p, t);
  ASSERT_TRUE(c.separated());

  Rng rng(1);
  for (bool intersecting : {true, false}) {
    const auto inst = intersecting
                          ? comm::make_uniquely_intersecting(p.k, t, rng, 0.3)
                          : comm::make_pairwise_disjoint(p.k, t, rng, 0.3);
    comm::Blackboard board(t);
    congest::NetworkConfig cfg;
    cfg.bits_per_edge = congest::universal_required_bits(
        c.num_nodes(), static_cast<graph::Weight>(p.ell));
    cfg.max_rounds = 500'000;
    const auto rep = sim::run_linear_reduction(
        c, inst,
        congest::universal_maxis_factory([](const graph::Graph& g) {
          return maxis::solve_exact(g).nodes;
        }),
        board, cfg);
    EXPECT_TRUE(rep.correct);
    EXPECT_TRUE(rep.accounting_ok);
    // The protocol the players ran costs what the board says; a genuine
    // protocol for promise disjointness must respect the CKS bound.
    EXPECT_GE(static_cast<double>(rep.blackboard_bits),
              comm::cks_lower_bound_bits(p.k, t));
  }
}

TEST(Integration, HardInstancesHaveSmallDiameter) {
  // The paper: "our results hold even for constant diameter graphs."
  // Instantiated linear gadgets are connected with diameter <= 4 whenever
  // some input weight is on (the graph is dense across copies).
  const auto p = lb::GadgetParams::from_l_alpha(3, 1, 4);
  const lb::LinearConstruction c(p, 3);
  Rng rng(5);
  const auto inst = comm::make_uniquely_intersecting(4, 3, rng, 0.5);
  const auto g = c.instantiate(inst);
  ASSERT_TRUE(graph::is_connected(g));
  EXPECT_LE(graph::diameter(g), 4u);
}

TEST(Integration, CutIsThetaLogSquaredOfK) {
  // cut = C(t,2)(l+a)p(p-1) with l+a ~ log k and p ~ log k: the measured
  // cut should track t^2 log^3 k within small constants (one log from the
  // clique count, two from the anti-matching size). We check the growth
  // exponent in k is polylogarithmic: quadrupling k should grow the cut by
  // far less than 4x.
  const std::size_t t = 3;
  const auto small = lb::GadgetParams::from_k(256);
  const auto large = lb::GadgetParams::from_k(1024);
  const lb::LinearConstruction cs(small, t);
  const lb::LinearConstruction cl(large, t);
  const double growth = static_cast<double>(cl.cut_size()) /
                        static_cast<double>(cs.cut_size());
  EXPECT_LT(growth, 2.5);
  EXPECT_GE(growth, 1.0);
}

TEST(Integration, WeakCodeBreaksProperty2) {
  // Ablation: swap Reed-Solomon (distance ell+1) for a padding code
  // (distance 1). Property 2 demands a matching of size >= ell between
  // distinct codeword gadgets; with the weak code some pair of messages
  // yields a matching far below ell, voiding the NO-side argument.
  const std::size_t ell = 4, alpha = 1, k = 5;
  auto weak = std::make_shared<codes::PaddingCode>(alpha, ell + alpha, k);
  const auto weak_params = lb::GadgetParams::with_code(ell, alpha, k, weak);
  const lb::LinearConstruction c(weak_params, 2);

  std::size_t min_matching = ell + alpha + 1;
  for (std::size_t m1 = 0; m1 < k; ++m1) {
    for (std::size_t m2 = 0; m2 < k; ++m2) {
      if (m1 == m2) continue;
      const auto matching = graph::max_bipartite_matching(
          c.fixed_graph(), c.codeword_nodes(0, m1), c.codeword_nodes(1, m2));
      min_matching = std::min(min_matching, matching.size());
    }
  }
  EXPECT_LT(min_matching, ell) << "padding code should violate Property 2";

  // Reed-Solomon on the same shape does satisfy it.
  const auto strong_params = lb::GadgetParams::from_l_alpha(ell, alpha, k);
  const lb::LinearConstruction cs(strong_params, 2);
  std::size_t strong_min = ell + alpha + 1;
  for (std::size_t m1 = 0; m1 < k; ++m1) {
    for (std::size_t m2 = 0; m2 < k; ++m2) {
      if (m1 == m2) continue;
      const auto matching = graph::max_bipartite_matching(
          cs.fixed_graph(), cs.codeword_nodes(0, m1), cs.codeword_nodes(1, m2));
      strong_min = std::min(strong_min, matching.size());
    }
  }
  EXPECT_GE(strong_min, ell);
}

TEST(Integration, WeakCodeInflatesNoSideOptimum) {
  // The consequence of broken Property 2: pairwise-disjoint instances can
  // support heavier independent sets under the weak code than under
  // Reed-Solomon, eroding the YES/NO gap.
  const std::size_t ell = 4, alpha = 1, k = 5, t = 2;
  auto weak = std::make_shared<codes::PaddingCode>(alpha, ell + alpha, k);
  const auto weak_params = lb::GadgetParams::with_code(ell, alpha, k, weak);
  const auto strong_params = lb::GadgetParams::from_l_alpha(ell, alpha, k);
  const lb::LinearConstruction cw(weak_params, t);
  const lb::LinearConstruction cs(strong_params, t);

  Rng rng(23);
  graph::Weight worst_weak = 0, worst_strong = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const auto inst = comm::make_pairwise_disjoint(k, t, rng, 0.6);
    worst_weak =
        std::max(worst_weak, maxis::solve_exact(cw.instantiate(inst)).weight);
    worst_strong =
        std::max(worst_strong, maxis::solve_exact(cs.instantiate(inst)).weight);
  }
  EXPECT_GT(worst_weak, worst_strong);
  // Strong code respects Claim 2's bound; weak code exceeds it.
  EXPECT_LE(worst_strong, cs.no_bound());
  EXPECT_GT(worst_weak, cw.no_bound());
}

TEST(Integration, FormulaBoundsMatchConstructedObjects) {
  // theorem1_bound builds (k, t, cut) from formulas; cross-check the cut
  // against an actually constructed gadget of the same parameters.
  const double eps = 0.45;
  const std::size_t n = 4096;
  const auto rb = lb::theorem1_bound(n, eps);
  const std::size_t t = lb::linear_players_for_epsilon(eps);
  const auto p = lb::GadgetParams::from_k(n / t);
  const lb::LinearConstruction c(p, t);
  EXPECT_EQ(rb.cut_edges, c.cut_size());
}

TEST(Integration, GadgetSerializationRoundTrip) {
  // Persist an instantiated hard instance through the edge-list format and
  // confirm the gap survives: a downstream user can export G_xbar, feed it
  // to any solver (e.g. `clb solve`), and reproduce the decision.
  const auto p = lb::GadgetParams::for_linear_separation(2, 1, 3);
  const lb::LinearConstruction c(p, 2);
  Rng rng(15);
  const auto inst = comm::make_uniquely_intersecting(p.k, 2, rng, 0.4);
  const auto g = c.instantiate(inst);
  std::stringstream ss;
  graph::write_edge_list(ss, g);
  const auto back = graph::read_edge_list(ss);
  ASSERT_TRUE(back == g);
  EXPECT_EQ(maxis::solve_exact(back).weight, maxis::solve_exact(g).weight);
  EXPECT_GE(maxis::solve_exact(back).weight, c.yes_weight());
}

TEST(Integration, RemarkOneRoundPenaltyIsLogarithmic) {
  // Unweighted expansion multiplies n by ~ell ~ log k, which costs exactly
  // one log factor in the Corollary-1 denominator.
  const auto p = lb::GadgetParams::from_k(512);
  const lb::LinearConstruction c(p, 2);
  const std::size_t n_weighted = c.num_nodes();
  // Weighted node weights are 1 or ell; expansion size is bounded by
  // n * ell.
  const std::size_t n_unweighted_max = n_weighted * p.ell;
  const auto rb_w = lb::reduction_round_bound(p.k, 2, c.cut_size(), n_weighted);
  const auto rb_u =
      lb::reduction_round_bound(p.k, 2, c.cut_size(), n_unweighted_max);
  EXPECT_LT(rb_u.rounds, rb_w.rounds);
  EXPECT_GT(rb_u.rounds, rb_w.rounds / 3.0);  // only a log-ish factor
}

}  // namespace
}  // namespace congestlb
