#include "serve/events.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace congestlb::serve {

EventHub::EventHub(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.resize(capacity_);
}

void EventHub::publish(ServeEvent ev) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ev.seq = published_++;
    if (count_ < capacity_) {
      ring_[(head_ + count_) % capacity_] = std::move(ev);
      ++count_;
    } else {
      ring_[head_] = std::move(ev);  // overwrite the oldest
      head_ = (head_ + 1) % capacity_;
    }
  }
  cv_.notify_all();
}

std::vector<ServeEvent> EventHub::poll_locked(const std::string& sweep,
                                              std::uint64_t since,
                                              std::uint64_t* next) const {
  *next = published_;
  std::vector<ServeEvent> out;
  const std::uint64_t oldest = published_ - count_;  // seq of ring_[head_]
  if (since >= published_) return out;
  const std::uint64_t from = since < oldest ? oldest : since;
  for (std::uint64_t s = from; s < published_; ++s) {
    const ServeEvent& ev =
        ring_[(head_ + static_cast<std::size_t>(s - oldest)) % capacity_];
    if (sweep.empty() || ev.sweep == sweep) out.push_back(ev);
  }
  return out;
}

std::vector<ServeEvent> EventHub::poll(const std::string& sweep,
                                       std::uint64_t since,
                                       std::uint64_t* next) const {
  std::lock_guard<std::mutex> lock(mu_);
  return poll_locked(sweep, since, next);
}

std::vector<ServeEvent> EventHub::poll_wait(const std::string& sweep,
                                            std::uint64_t since,
                                            std::uint64_t* next,
                                            std::uint64_t timeout_ms) const {
  std::unique_lock<std::mutex> lock(mu_);
  auto out = poll_locked(sweep, since, next);
  if (!out.empty()) return out;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (out.empty()) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return poll_locked(sweep, since, next);
    }
    out = poll_locked(sweep, since, next);
  }
  return out;
}

std::uint64_t EventHub::published() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_;
}

}  // namespace congestlb::serve
