#include "congest/transcript.hpp"

#include <algorithm>
#include <ostream>

namespace congestlb::congest {

std::function<void(std::size_t, graph::NodeId, graph::NodeId, const Message&)>
TranscriptRecorder::observer() {
  return [this](std::size_t round, graph::NodeId from, graph::NodeId to,
                const Message& m) {
    entries_.push_back(TranscriptEntry{round, from, to, m.bits});
    total_bits_ += m.bits;
  };
}

std::vector<std::size_t> TranscriptRecorder::bits_per_round() const {
  std::size_t max_round = 0;
  for (const auto& e : entries_) max_round = std::max(max_round, e.round);
  std::vector<std::size_t> per_round(entries_.empty() ? 0 : max_round + 1, 0);
  for (const auto& e : entries_) per_round[e.round] += e.bits;
  return per_round;
}

void TranscriptRecorder::write_csv(std::ostream& os) const {
  os << "round,from,to,bits\n";
  for (const auto& e : entries_) {
    os << e.round << ',' << e.from << ',' << e.to << ',' << e.bits << '\n';
  }
}

}  // namespace congestlb::congest
