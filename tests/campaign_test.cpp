// Campaign subsystem: JSON document parser, spec parsing/expansion, the
// work-stealing scheduler, and manifest determinism across worker counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <sstream>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/manifest.hpp"
#include "campaign/scheduler.hpp"
#include "support/expect.hpp"
#include "support/json.hpp"

namespace clb = congestlb;
namespace cmp = clb::campaign;

// ----------------------------------------------------------- JSON parser --

TEST(JsonParse, ScalarsAndContainers) {
  const auto doc = clb::parse_json(
      R"({"s": "a\"b\nA", "t": true, "f": false, "z": null,)"
      R"( "arr": [1, 2.5, -3], "obj": {"nested": [{}]}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("s").as_string(), "a\"b\nA");
  EXPECT_TRUE(doc.at("t").as_bool());
  EXPECT_FALSE(doc.at("f").as_bool());
  EXPECT_TRUE(doc.at("z").is_null());
  const auto& arr = doc.at("arr").as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr[0].as_u64(), 1u);
  EXPECT_DOUBLE_EQ(arr[1].as_double(), 2.5);
  EXPECT_EQ(arr[2].as_i64(), -3);
  EXPECT_EQ(doc.at("obj").at("nested").as_array().size(), 1u);
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonParse, IntegerTokensRoundTripExactly) {
  // 2^64 - 1 and large i64 values do not survive a double round trip; the
  // parser must keep the integral magnitude (campaign hashes need this).
  const auto doc =
      clb::parse_json(R"({"u": 18446744073709551615, "i": -9007199254740993})");
  EXPECT_EQ(doc.at("u").as_u64(), 18446744073709551615ull);
  EXPECT_EQ(doc.at("i").as_i64(), -9007199254740993ll);
  EXPECT_THROW(doc.at("i").as_u64(), clb::InvariantError);
  EXPECT_THROW(clb::parse_json("1.5").as_u64(), clb::InvariantError);
}

TEST(JsonParse, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "1 2",
        "{\"a\": 1,}", "nul", "[1 2]", "\"bad\\q\""}) {
    EXPECT_THROW(clb::parse_json(bad), clb::InvariantError) << bad;
  }
}

// ------------------------------------------------------------- spec parse --

TEST(CampaignSpec, GridExpandsEllMajor) {
  const auto spec = cmp::parse_campaign_spec_text(R"({
    "campaign": "g", "seed": 1, "sweeps": [
      {"name": "P1", "check": "property1",
       "grid": {"ell": [2, 3], "alpha": [1], "t": [2, 3]},
       "points": [{"ell": 4, "alpha": 1, "t": 2, "k": 9}]}]})");
  ASSERT_EQ(spec.sweeps.size(), 1u);
  const auto& pts = spec.sweeps[0].points;
  ASSERT_EQ(pts.size(), 5u);  // 2x1x2 grid + 1 explicit point
  EXPECT_EQ(pts[0].ell, 2u);
  EXPECT_EQ(pts[0].t, 2u);
  EXPECT_EQ(pts[1].ell, 2u);
  EXPECT_EQ(pts[1].t, 3u);
  EXPECT_EQ(pts[2].ell, 3u);
  EXPECT_EQ(pts[2].t, 2u);
  EXPECT_EQ(pts[3].ell, 3u);
  EXPECT_EQ(pts[3].t, 3u);
  EXPECT_EQ(pts[4].k, std::optional<std::size_t>(9));
}

TEST(CampaignSpec, WriteParseRoundTripPreservesCanonicalForm) {
  const auto spec = cmp::builtin_paper_campaign();
  std::ostringstream os;
  cmp::write_campaign_spec(os, spec);
  const auto reparsed = cmp::parse_campaign_spec_text(os.str());
  EXPECT_EQ(spec.canonical(), reparsed.canonical());
  EXPECT_EQ(spec.content_hash(), reparsed.content_hash());
}

TEST(CampaignSpec, RejectsInvalidSpecs) {
  // claim12 is a t = 2 statement.
  EXPECT_THROW(cmp::parse_campaign_spec_text(R"({
    "campaign": "x", "sweeps": [{"name": "C", "check": "claim12",
      "points": [{"ell": 2, "alpha": 1, "t": 3}]}]})"),
               clb::InvariantError);
  // Unknown check name.
  EXPECT_THROW(cmp::parse_campaign_spec_text(R"({
    "campaign": "x", "sweeps": [{"name": "C", "check": "property9",
      "points": [{"ell": 2, "alpha": 1, "t": 2}]}]})"),
               clb::InvariantError);
  // Duplicate sweep names collide in job-id space.
  EXPECT_THROW(cmp::parse_campaign_spec_text(R"({
    "campaign": "x", "sweeps": [
      {"name": "A", "check": "property1",
       "points": [{"ell": 2, "alpha": 1, "t": 2}]},
      {"name": "A", "check": "property2",
       "points": [{"ell": 2, "alpha": 1, "t": 2}]}]})"),
               clb::InvariantError);
}

TEST(CampaignSpec, BuiltinsResolve) {
  ASSERT_TRUE(cmp::builtin_campaign("paper").has_value());
  ASSERT_TRUE(cmp::builtin_campaign("smoke").has_value());
  EXPECT_FALSE(cmp::builtin_campaign("nope").has_value());
  // Seed changes move the content hash (it keys job invalidation).
  auto a = cmp::builtin_smoke_campaign();
  auto b = a;
  b.seed += 1;
  EXPECT_NE(a.content_hash(), b.content_hash());
}

// -------------------------------------------------------------- scheduler --

TEST(Scheduler, RespectsDependenciesAcrossWorkers) {
  for (const std::size_t threads : {1u, 4u}) {
    cmp::WorkStealingScheduler sched(threads);
    std::mutex mu;
    std::vector<std::size_t> order;
    const auto record = [&](std::size_t id) {
      return [&, id](std::size_t) {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(id);
      };
    };
    // Diamond fan-out: 0 -> {1..8} -> 9.
    const std::size_t src = sched.add_job(record(0));
    std::vector<std::size_t> mid;
    for (std::size_t i = 1; i <= 8; ++i) {
      mid.push_back(sched.add_job(record(i)));
      sched.add_dependency(mid.back(), src);
    }
    const std::size_t sink = sched.add_job(record(9));
    for (const std::size_t m : mid) sched.add_dependency(sink, m);

    const auto report = sched.run();
    EXPECT_EQ(report.executed, 10u);
    EXPECT_EQ(report.abandoned, 0u);
    ASSERT_EQ(order.size(), 10u);
    EXPECT_EQ(order.front(), 0u);
    EXPECT_EQ(order.back(), 9u);
  }
}

TEST(Scheduler, BudgetAbandonsRemainingJobs) {
  cmp::WorkStealingScheduler sched(2);
  std::atomic<std::size_t> ran{0};
  for (int i = 0; i < 10; ++i) {
    sched.add_job([&](std::size_t) { ran.fetch_add(1); });
  }
  const auto report = sched.run(/*max_executed=*/3);
  EXPECT_EQ(report.executed, 3u);
  EXPECT_EQ(report.abandoned, 7u);
  EXPECT_EQ(ran.load(), 3u);
  EXPECT_EQ(std::count(report.ran.begin(), report.ran.end(), 1), 3);
}

TEST(Scheduler, FirstJobExceptionPropagatesAfterDrain) {
  cmp::WorkStealingScheduler sched(4);
  std::atomic<std::size_t> ran{0};
  sched.add_job([](std::size_t) { throw clb::InvariantError("boom"); });
  for (int i = 0; i < 6; ++i) {
    sched.add_job([&](std::size_t) { ran.fetch_add(1); });
  }
  EXPECT_THROW(sched.run(), clb::InvariantError);
}

TEST(Scheduler, RejectsMisuse) {
  cmp::WorkStealingScheduler sched(1);
  const auto a = sched.add_job([](std::size_t) {});
  const auto b = sched.add_job([](std::size_t) {});
  EXPECT_THROW(sched.add_dependency(a, a), clb::InvariantError);
  EXPECT_THROW(sched.add_dependency(a, 99), clb::InvariantError);
  sched.add_dependency(b, a);
  sched.run();
  EXPECT_THROW(sched.run(), clb::InvariantError);          // single-shot
  EXPECT_THROW(sched.add_job([](std::size_t) {}), clb::InvariantError);
}

// ------------------------------------------------- campaign determinism --

namespace {

std::string canonical_manifest(const cmp::CampaignResult& result) {
  std::ostringstream os;
  cmp::ManifestWriteOptions opts;
  opts.include_volatile = false;
  cmp::write_manifest(os, result, opts);
  return os.str();
}

}  // namespace

TEST(Campaign, SmokeRunHoldsAndIsDeterministicAcrossWorkerCounts) {
  const auto spec = cmp::builtin_smoke_campaign();
  std::string reference;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    cmp::RunOptions opts;
    opts.threads = threads;
    const auto result = cmp::run_campaign(spec, opts);
    EXPECT_TRUE(result.complete);
    EXPECT_TRUE(result.all_hold);
    EXPECT_EQ(result.jobs_run, result.jobs_total);
    EXPECT_EQ(result.jobs_resumed, 0u);
    const std::string manifest = canonical_manifest(result);
    if (reference.empty()) {
      reference = manifest;
    } else {
      // Bit-identical manifests no matter the worker count / steal order.
      EXPECT_EQ(manifest, reference) << "threads=" << threads;
    }
  }
  EXPECT_FALSE(reference.empty());
}

TEST(Campaign, ClaimBoundsMatchTheFormulas) {
  const auto spec = cmp::builtin_smoke_campaign();
  cmp::RunOptions opts;
  const auto result = cmp::run_campaign(spec, opts);
  std::size_t claim_checks = 0;
  for (const auto& rec : result.records) {
    if (rec.stage != "check" || rec.outcome.yes_opt < 0) continue;
    ++claim_checks;
    EXPECT_GE(rec.outcome.yes_opt, rec.outcome.bound_yes) << rec.id;
    EXPECT_LE(rec.outcome.no_opt, rec.outcome.bound_no) << rec.id;
  }
  EXPECT_GT(claim_checks, 0u);
}

TEST(Campaign, ManifestRoundTripsThroughReadManifest) {
  const auto spec = cmp::builtin_smoke_campaign();
  cmp::RunOptions opts;
  const auto result = cmp::run_campaign(spec, opts);

  std::ostringstream os;
  cmp::write_manifest(os, result, {});  // full form, volatile included
  const auto parsed = cmp::read_manifest(os.str());
  EXPECT_EQ(parsed.campaign, spec.name);
  EXPECT_EQ(parsed.spec_hash, spec.content_hash());
  EXPECT_EQ(parsed.records.size(), result.records.size());
  EXPECT_TRUE(parsed.complete);
  EXPECT_TRUE(parsed.all_hold);
  for (const auto& rec : result.records) {
    const auto it = parsed.records.find(rec.id);
    ASSERT_NE(it, parsed.records.end()) << rec.id;
    EXPECT_EQ(it->second.inputs_hash, rec.inputs_hash);
    EXPECT_EQ(it->second.verdict, rec.verdict);
    EXPECT_EQ(it->second.outcome.opt, rec.outcome.opt);
    EXPECT_EQ(it->second.outcome.nodes, rec.outcome.nodes);
  }
  EXPECT_THROW(cmp::read_manifest("{\"not\": \"a manifest\"}"),
               clb::InvariantError);
}

TEST(Campaign, RepeatedPointInSweepIsRejected) {
  cmp::CampaignSpec spec;
  spec.name = "dup";
  cmp::SweepSpec sweep;
  sweep.name = "P1";
  sweep.check = cmp::CheckKind::kProperty1;
  sweep.points.push_back({2, 1, 2, std::nullopt});
  sweep.points.push_back({2, 1, 2, std::nullopt});
  spec.sweeps.push_back(sweep);
  EXPECT_THROW(cmp::run_campaign(spec, {}), clb::InvariantError);
}
