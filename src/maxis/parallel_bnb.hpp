// The exact MaxIS solver engine: kernelize, decompose, warm-start, then
// branch and bound — optionally fanned out over the campaign work-stealing
// pool (docs/SOLVER.md).
//
// Pipeline per solve:
//   1. kernelization (maxis/kernel.hpp) to a fixpoint; the search runs on
//      the reduced instance and the solution is unfolded and re-verified on
//      the original graph (an identity kernel searches the input directly);
//   2. connected-component decomposition of the kernel — components solve
//      independently and their solutions concatenate (a single component
//      skips the induced-subgraph copy);
//   3. an incumbent warm start per component (word-arena greedy + 2-swap
//      local search), so the bound prunes from the first search node;
//   4. a serial *probe*: the canonical single-tree search under a node cap,
//      which chains its incumbent across subtrees exactly like the seed
//      solver. Components the probe finishes are solved outright; only
//      cap-exhausted components fan out their top search subtrees as jobs
//      on a campaign::WorkStealingScheduler, each pruning against the
//      deterministic max(warm, probe-best) incumbent.
//
// Bounding is two-tier: a fixed clique partition computed once per
// component gives an O(#cliques) bit-probe bound (near-exact on the
// paper's union-of-cliques gadgets, and ~10x cheaper than the seed
// solver's per-node cover rebuild); only when it fails to prune is the
// greedy clique cover recomputed over the live candidate set.
//
// Determinism contract (pinned by parallel_bnb_test across threads 1/2/8):
// the returned solution, its weight, and search_nodes are bit-identical for
// every thread count. The probe is serial and capped by a constant, the job
// set is a pure function of the graph (fanout never depends on `threads`),
// each job prunes only against the deterministic warm/probe incumbent plus
// its own local best, and the shared incumbent is a monotone max register
// combined with a structural (lowest-job-index) tie-break — so neither
// execution order nor steal pattern can leak into any output.
// Report.steals is the one deliberately volatile observable.

#pragma once

#include <cstdint>
#include <string_view>

#include "maxis/kernel.hpp"
#include "maxis/verify.hpp"

namespace congestlb::obs {
class MetricsRegistry;
}

namespace congestlb::maxis {

/// Version tag for downstream content-addressed caches (campaign solve
/// jobs hash it into their cache keys). Any change to the engine's search
/// semantics must bump this, so OPTs recorded by one solver generation are
/// never replayed as another's — old cache slots simply stop being
/// addressed instead of going stale.
inline constexpr std::string_view kSolverVersion = "kernel-bnb-v2";

struct EngineOptions {
  /// Run the reduction pipeline before searching. Off = search the input
  /// graph directly (the `clb solve --kernel=off` ablation path).
  bool kernelize = true;
  /// Worker threads for the subtree jobs. 1 runs the same jobs inline in
  /// structural order; results are bit-identical either way.
  std::size_t threads = 1;
  /// Per-job search budget (throws InvariantError when exhausted; 0 =
  /// unlimited). Deliberately per-job, not global: a shared countdown would
  /// make the abort point depend on scheduling.
  std::uint64_t max_search_nodes = 200'000'000;
  /// Serial probe budget per component: the whole-tree search runs inline
  /// up to this many nodes and, if it finishes, the component never fans
  /// out. The default generously covers every gadget search observed in
  /// the paper campaign (hundreds to a few thousand nodes) — fanning out a
  /// search the probe can finish only loses, because root-level subtree
  /// jobs forfeit the probe's chained incumbent. 0 disables the probe
  /// (every component goes straight to the fanout — the path the
  /// determinism tests exercise). When max_search_nodes is smaller than
  /// this, the probe is skipped so the budget-exhaustion contract stays
  /// with the throwing job search.
  std::uint64_t probe_search_nodes = 20'000;
  /// Subtree jobs fanned out per cap-exhausted component. Structural:
  /// never derived from `threads`, so the job set (and with it
  /// search_nodes) is identical for every worker count.
  std::size_t fanout = 16;
  /// Cap-exhausted components smaller than this still solve as one job —
  /// fanout bookkeeping costs more than the search there.
  std::size_t fanout_min_nodes = 48;
  /// Optional sink for maxis.kernel.* rule hit-counts and maxis.engine.*
  /// job/steal counters (serial update after the pool drains).
  obs::MetricsRegistry* metrics = nullptr;
  /// Cooperative cancellation (support/deadline.hpp). The kernelization
  /// checks it between passes and every search polls it per node (a relaxed
  /// atomic load; the clock only every DeadlineToken::kClockStride nodes).
  /// A cancelled solve stops promptly and returns its best incumbent so far
  /// — still a *certified* independent set of the original graph, flagged
  /// EngineResult::approximate because it may not be maximum. Cancellation
  /// timing is inherently scheduling-dependent, so a cancelled solve is
  /// outside the bit-identity determinism contract (an uncancelled solve
  /// with a deadline that never fires is not).
  const DeadlineToken* deadline = nullptr;
};

struct EngineResult {
  IsSolution solution;             ///< verified on the *original* graph
  std::uint64_t search_nodes = 0;  ///< probe + jobs; thread-invariant
  std::size_t components = 0;      ///< kernel components searched
  std::size_t jobs = 0;            ///< fanout jobs executed (0 = probe won)
  std::uint64_t steals = 0;        ///< pool steals (volatile; see header)
  KernelStats kernel;              ///< rule hit counts (zero if kernelize off)
  std::size_t kernel_nodes = 0;    ///< vertices surviving into the search
  /// True when EngineOptions::deadline cancelled any search: `solution` is
  /// a certified independent set (checked() on the original graph) but its
  /// weight is a lower bound on OPT, not necessarily OPT itself.
  bool approximate = false;
};

/// Exact maximum-weight independent set via the full engine. Requires
/// nonnegative weights.
EngineResult solve_maxis(const graph::Graph& g, const EngineOptions& opts = {});

}  // namespace congestlb::maxis
