// Campaign service (docs/SERVICE.md): shared-pool priority scheduling,
// the event hub feed, per-client quotas, and the Service admission and
// durability contracts — warm hits without dispatch, concurrent admission
// deduplicating to one cold execution, deterministic quota rejections,
// restart-resume, a multi-client soak, and the HTTP/SSE round trip.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/manifest.hpp"
#include "campaign/scheduler.hpp"
#include "serve/client.hpp"
#include "serve/events.hpp"
#include "serve/http.hpp"
#include "serve/routes.hpp"
#include "serve/service.hpp"
#include "serve/session.hpp"
#include "support/expect.hpp"
#include "support/json.hpp"

namespace clb = congestlb;
namespace cmp = clb::campaign;
namespace srv = clb::serve;
namespace fs = std::filesystem;

namespace {

/// A unique scratch directory, removed on scope exit.
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& tag)
      : path(fs::path(::testing::TempDir()) / ("clb_serve_test_" + tag)) {
    fs::remove_all(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

/// Smallest valid campaign: one property1 point. Distinct seeds give
/// distinct content hashes, i.e. distinct sweeps from the service's view.
cmp::CampaignSpec tiny_spec(std::uint64_t seed) {
  cmp::CampaignSpec spec;
  spec.name = "tiny";
  spec.seed = seed;
  cmp::SweepSpec sweep;
  sweep.name = "P1";
  sweep.check = cmp::CheckKind::kProperty1;
  sweep.points.push_back({2, 1, 2, std::nullopt});
  spec.sweeps.push_back(sweep);
  return spec;
}

/// The canonical manifest the determinism contract promises: what
/// `clb campaign run --canonical` of the same spec writes.
std::string reference_manifest(const cmp::CampaignSpec& spec) {
  cmp::RunOptions opts;
  const auto result = cmp::run_campaign(spec, opts);
  std::ostringstream os;
  cmp::ManifestWriteOptions wopts;
  wopts.include_volatile = false;
  cmp::write_manifest(os, result, wopts);
  return os.str();
}

}  // namespace

// -------------------------------------------------------- SharedScheduler --

TEST(SharedScheduler, RunsByPriorityThenFifo) {
  cmp::SharedScheduler pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::vector<int> order;
  // Park the single worker so every later submit lands in the queue and
  // ordering is decided by the priority queue alone.
  pool.submit(100, [&](std::size_t) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  auto tagged = [&](int tag) {
    return [&order, &mu, tag](std::size_t) {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(tag);
    };
  };
  ASSERT_TRUE(pool.submit(0, tagged(1)));
  ASSERT_TRUE(pool.submit(5, tagged(2)));
  ASSERT_TRUE(pool.submit(0, tagged(3)));
  ASSERT_TRUE(pool.submit(5, tagged(4)));
  ASSERT_TRUE(pool.submit(-3, tagged(5)));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.drain();
  // Priority 5 first (FIFO within), then 0, then -3.
  EXPECT_EQ(order, (std::vector<int>{2, 4, 1, 3, 5}));
  EXPECT_EQ(pool.executed(), 6u);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(SharedScheduler, CloseRejectsAndCountsErrors) {
  cmp::SharedScheduler pool(2);
  ASSERT_TRUE(pool.submit(0, [](std::size_t) { throw std::runtime_error("x"); }));
  pool.drain();
  EXPECT_EQ(pool.job_errors(), 1u);
  EXPECT_EQ(pool.executed(), 1u);
  pool.close();
  EXPECT_FALSE(pool.submit(0, [](std::size_t) {}));
  pool.drain();
  EXPECT_EQ(pool.executed(), 1u);
}

// --------------------------------------------------------------- EventHub --

TEST(EventHub, PollTailsWithCursorAndFilters) {
  srv::EventHub hub(8);
  std::uint64_t next = 0;
  EXPECT_TRUE(hub.poll("", 0, &next).empty());
  EXPECT_EQ(next, 0u);
  for (int i = 0; i < 5; ++i) {
    srv::ServeEvent ev;
    ev.sweep = (i % 2 == 0) ? "aaaa" : "bbbb";
    ev.kind = "job";
    hub.publish(ev);
  }
  auto all = hub.poll("", 0, &next);
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(next, 5u);
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i].seq, i);
  // Sweep filter keeps global seq numbers but only matching events.
  auto only_a = hub.poll("aaaa", 0, &next);
  ASSERT_EQ(only_a.size(), 3u);
  EXPECT_EQ(only_a[1].seq, 2u);
  // Tailing: re-poll from the cursor is empty until a new publish.
  EXPECT_TRUE(hub.poll("", next, &next).empty());
  hub.publish({});
  EXPECT_EQ(hub.poll("", next, &next).size(), 1u);
  EXPECT_EQ(hub.published(), 6u);
}

TEST(EventHub, OverwriteShowsAsGapLikeTheTraceRing) {
  srv::EventHub hub(4);
  for (int i = 0; i < 7; ++i) hub.publish({});
  std::uint64_t next = 0;
  const auto events = hub.poll("", 0, &next);
  // Seqs 0..2 were overwritten: the consumer sees next - since (7) greater
  // than the returned size (4) — the same gap contract as
  // obs::Tracer::events_since.
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(next, 7u);
  EXPECT_EQ(events.front().seq, 3u);
}

TEST(EventHub, PollWaitWakesOnPublishAndTimesOutEmpty) {
  srv::EventHub hub(8);
  std::uint64_t next = 0;
  // Timeout path: nothing published, bounded wait, empty result.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(hub.poll_wait("", 0, &next, 30).empty());
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(25));
  // Wake path: a publisher thread lands an event mid-wait.
  std::thread pub([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    srv::ServeEvent ev;
    ev.sweep = "aaaa";
    hub.publish(ev);
  });
  const auto got = hub.poll_wait("aaaa", 0, &next, 5000);
  pub.join();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].sweep, "aaaa");
}

// ---------------------------------------------------------- SessionManager --

TEST(SessionManager, EnforcesQueuedQuotaPerClient) {
  srv::SessionManager sm({/*max_queued=*/2, /*max_inflight=*/1});
  EXPECT_TRUE(sm.try_enqueue("alice"));
  EXPECT_TRUE(sm.try_enqueue("alice"));
  EXPECT_FALSE(sm.try_enqueue("alice"));  // at max_queued
  EXPECT_TRUE(sm.try_enqueue("bob"));     // quotas are per client
  EXPECT_TRUE(sm.can_start("alice"));
  sm.on_start("alice");
  EXPECT_FALSE(sm.can_start("alice"));  // at max_inflight
  EXPECT_TRUE(sm.try_enqueue("alice"));  // start freed a queued slot
  sm.on_finish("alice");
  EXPECT_TRUE(sm.can_start("alice"));
  // force_enqueue (restart-resume) ignores the quota.
  sm.force_enqueue("bob");
  sm.force_enqueue("bob");
  sm.force_enqueue("bob");
  EXPECT_EQ(sm.queued("bob"), 4u);
  const auto stats = sm.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].client, "alice");
  EXPECT_EQ(stats[1].client, "bob");
}

// ---------------------------------------------------------------- Service --

TEST(Service, ColdRunMatchesCanonicalManifestByteForByte) {
  ScratchDir scratch("cold");
  const auto spec = tiny_spec(1);
  srv::ServiceConfig config;
  config.state_dir = scratch.str();
  config.pool_threads = 2;
  config.orchestrators = 1;
  srv::Service service(config);

  const auto res = service.submit("alice", spec, 0);
  ASSERT_EQ(res.outcome, srv::SubmitOutcome::kAccepted);
  EXPECT_EQ(res.sweep.size(), 16u);
  ASSERT_TRUE(service.wait_idle(/*timeout_ms=*/60000));

  const auto st = service.status(res.sweep);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->state, srv::SweepState::kComplete);
  EXPECT_TRUE(st->all_hold);
  EXPECT_EQ(st->jobs_done, st->jobs_total);
  EXPECT_EQ(st->jobs_total, cmp::count_campaign_jobs(spec));

  const auto manifest = service.manifest_text(res.sweep);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(*manifest, reference_manifest(spec));
}

TEST(Service, WarmHitServesFromDiskWithoutDispatch) {
  ScratchDir scratch("warm");
  const auto spec = tiny_spec(2);
  srv::ServiceConfig config;
  config.state_dir = scratch.str();
  config.orchestrators = 1;
  std::string key;
  {
    srv::Service service(config);
    const auto res = service.submit("alice", spec, 0);
    ASSERT_EQ(res.outcome, srv::SubmitOutcome::kAccepted);
    key = res.sweep;
    ASSERT_TRUE(service.wait_idle(60000));
    // Same server, same spec, again: warm hit, pool untouched.
    const auto executed = service.pool_executed();
    const auto warm = service.submit("bob", spec, 0);
    EXPECT_EQ(warm.outcome, srv::SubmitOutcome::kWarmHit);
    EXPECT_EQ(warm.sweep, key);
    EXPECT_EQ(service.pool_executed(), executed);
  }
  // A fresh server on the same state dir loads the completed sweep from
  // the ledger and answers warm with zero scheduler dispatch.
  srv::Service reborn(config);
  EXPECT_EQ(reborn.pool_executed(), 0u);
  const auto warm = reborn.submit("carol", spec, 0);
  EXPECT_EQ(warm.outcome, srv::SubmitOutcome::kWarmHit);
  EXPECT_EQ(reborn.pool_executed(), 0u);
  const auto manifest = reborn.manifest_text(key);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(*manifest, reference_manifest(spec));
}

TEST(Service, DuplicateWhileQueuedAndInvalidSpecAndDrain) {
  ScratchDir scratch("dup");
  srv::ServiceConfig config;
  config.state_dir = scratch.str();
  config.orchestrators = 0;  // admission-only: queued sweeps stay queued
  srv::Service service(config);

  const auto spec = tiny_spec(3);
  const auto first = service.submit("alice", spec, 0);
  ASSERT_EQ(first.outcome, srv::SubmitOutcome::kAccepted);
  const auto dup = service.submit("bob", spec, 5);
  EXPECT_EQ(dup.outcome, srv::SubmitOutcome::kDuplicate);
  EXPECT_EQ(dup.sweep, first.sweep);

  // An unparsable document is rejected without a sweep key.
  const auto bad = service.submit_text("alice", "{\"not\": \"a spec\"}", 0);
  EXPECT_EQ(bad.outcome, srv::SubmitOutcome::kInvalid);
  EXPECT_TRUE(bad.sweep.empty());
  EXPECT_FALSE(bad.message.empty());
  // Builtin names resolve through submit_text.
  const auto builtin = service.submit_text("alice", "smoke", 0);
  EXPECT_EQ(builtin.outcome, srv::SubmitOutcome::kAccepted);

  service.begin_drain();
  const auto drained = service.submit("carol", tiny_spec(4), 0);
  EXPECT_EQ(drained.outcome, srv::SubmitOutcome::kDraining);
}

// Satellite: N racing clients submitting the same spec must produce
// exactly one cold execution; everyone else attaches (duplicate) or is
// served warm, and every fetched manifest is byte-identical.
TEST(Service, ConcurrentAdmissionColdExecutesExactlyOnce) {
  ScratchDir scratch("race");
  const auto spec = tiny_spec(5);
  srv::ServiceConfig config;
  config.state_dir = scratch.str();
  config.pool_threads = 4;
  config.orchestrators = 2;
  srv::Service service(config);

  constexpr int kClients = 8;
  std::vector<srv::SubmitResult> results(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      results[i] = service.submit("client" + std::to_string(i), spec, 0);
    });
  }
  for (auto& t : threads) t.join();

  int accepted = 0, attached = 0;
  for (const auto& r : results) {
    if (r.outcome == srv::SubmitOutcome::kAccepted) ++accepted;
    if (r.outcome == srv::SubmitOutcome::kDuplicate ||
        r.outcome == srv::SubmitOutcome::kWarmHit) {
      ++attached;
    }
    EXPECT_EQ(r.sweep, results[0].sweep);
  }
  EXPECT_EQ(accepted, 1);
  EXPECT_EQ(attached, kClients - 1);

  ASSERT_TRUE(service.wait_idle(60000));
  // One cold execution: the pool ran exactly one campaign's worth of jobs.
  EXPECT_EQ(service.pool_executed(), cmp::count_campaign_jobs(spec));
  const auto manifest = service.manifest_text(results[0].sweep);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(*manifest, reference_manifest(spec));
}

// Satellite: quota rejections depend only on the client's own serial
// submit order — the same sequence replays identically on a fresh server.
TEST(Service, QuotaRejectionsAreDeterministicUnderReplay) {
  constexpr std::size_t kMaxQueued = 3;
  constexpr int kSubmits = 6;
  auto run_once = [&](const std::string& dir) {
    srv::ServiceConfig config;
    config.state_dir = dir;
    config.orchestrators = 0;  // admission-only: no timing in the answer
    config.quota.max_queued = kMaxQueued;
    srv::Service service(config);
    std::vector<srv::SubmitOutcome> outcomes;
    for (int i = 0; i < kSubmits; ++i) {
      outcomes.push_back(
          service.submit("alice", tiny_spec(100 + i), 0).outcome);
    }
    // Other tenants never consume alice's quota.
    EXPECT_EQ(service.submit("bob", tiny_spec(999), 0).outcome,
              srv::SubmitOutcome::kAccepted);
    return outcomes;
  };
  ScratchDir a("quota_a"), b("quota_b");
  const auto first = run_once(a.str());
  const auto replay = run_once(b.str());
  ASSERT_EQ(first.size(), replay.size());
  EXPECT_EQ(first, replay);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], i < kMaxQueued ? srv::SubmitOutcome::kAccepted
                                       : srv::SubmitOutcome::kRejectedQuota)
        << "submit " << i;
  }
}

// Accepted sweeps survive the server: an admission-only Service persists
// them, and a successor on the same state dir completes every one with
// the canonical manifest bytes.
TEST(Service, RestartResumeCompletesEveryAcceptedSweep) {
  ScratchDir scratch("resume");
  std::vector<cmp::CampaignSpec> specs = {tiny_spec(10), tiny_spec(11),
                                          tiny_spec(12)};
  std::vector<std::string> keys;
  {
    srv::ServiceConfig config;
    config.state_dir = scratch.str();
    config.orchestrators = 0;  // accept + persist, never start
    srv::Service service(config);
    for (const auto& spec : specs) {
      const auto res = service.submit("alice", spec, 0);
      ASSERT_EQ(res.outcome, srv::SubmitOutcome::kAccepted);
      keys.push_back(res.sweep);
    }
    // Destructor = graceful shutdown; queued sweeps stay in the ledger.
  }
  srv::ServiceConfig config;
  config.state_dir = scratch.str();
  config.orchestrators = 2;
  srv::Service service(config);
  ASSERT_TRUE(service.wait_idle(120000));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto st = service.status(keys[i]);
    ASSERT_TRUE(st.has_value()) << keys[i];
    EXPECT_EQ(st->state, srv::SweepState::kComplete);
    const auto manifest = service.manifest_text(keys[i]);
    ASSERT_TRUE(manifest.has_value());
    EXPECT_EQ(*manifest, reference_manifest(specs[i]));
  }
}

// Acceptance soak: >= 8 concurrent clients with mixed cold, warm, and
// duplicate submissions. Every distinct spec executes at most once on the
// pool and every manifest equals the serial one-shot canonical bytes.
TEST(Service, SoakEightClientsMixedColdWarmDuplicate) {
  ScratchDir scratch("soak");
  constexpr int kClients = 8;
  constexpr int kDistinct = 4;
  std::vector<cmp::CampaignSpec> specs;
  specs.reserve(kDistinct);
  for (int i = 0; i < kDistinct; ++i) specs.push_back(tiny_spec(200 + i));

  srv::ServiceConfig config;
  config.state_dir = scratch.str();
  config.pool_threads = 4;
  config.orchestrators = 3;
  config.quota.max_queued = 16;  // the soak mixes outcomes, not quotas
  srv::Service service(config);

  std::atomic<int> executions_claimed{0};
  std::atomic<int> attached{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const std::string name = "client" + std::to_string(c);
      // Each client walks every spec, starting at a different offset, and
      // submits each twice — the second touch is a duplicate (still
      // running) or a warm hit (already complete).
      for (int round = 0; round < 2 * kDistinct; ++round) {
        const auto& spec = specs[(c + round) % kDistinct];
        const auto res = service.submit(name, spec, c % 3);
        ASSERT_NE(res.outcome, srv::SubmitOutcome::kInvalid);
        ASSERT_NE(res.outcome, srv::SubmitOutcome::kRejectedQuota);
        if (res.outcome == srv::SubmitOutcome::kAccepted) {
          executions_claimed.fetch_add(1);
        } else {
          attached.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  ASSERT_TRUE(service.wait_idle(120000));

  // Exactly one cold admission per distinct spec; everyone else attached.
  EXPECT_EQ(executions_claimed.load(), kDistinct);
  EXPECT_EQ(attached.load(), kClients * 2 * kDistinct - kDistinct);

  // The pool ran each distinct campaign exactly once — warm and duplicate
  // paths never dispatched.
  std::uint64_t expected_jobs = 0;
  for (const auto& spec : specs) expected_jobs += cmp::count_campaign_jobs(spec);
  EXPECT_EQ(service.pool_executed(), expected_jobs);

  // Byte-identity against the serial one-shot reference, per spec.
  for (const auto& spec : specs) {
    const auto key = cmp::ContentCache::hex_key(spec.content_hash());
    const auto manifest = service.manifest_text(key);
    ASSERT_TRUE(manifest.has_value()) << key;
    EXPECT_EQ(*manifest, reference_manifest(spec)) << key;
  }
  // And the feed saw every lifecycle: one accepted/started/completed per
  // distinct spec plus one event per landed job.
  std::uint64_t next = 0;
  const auto events = service.events().poll("", 0, &next);
  std::uint64_t completed = 0;
  for (const auto& ev : events) completed += ev.kind == "completed";
  EXPECT_EQ(completed, static_cast<std::uint64_t>(kDistinct));
}

// ------------------------------------------------------------- HTTP layer --

TEST(ServeHttp, RoundTripSubmitStatusManifestEventsDrain) {
  ScratchDir scratch("http");
  const auto spec = tiny_spec(42);
  srv::ServiceConfig config;
  config.state_dir = scratch.str();
  config.pool_threads = 2;
  config.orchestrators = 1;
  srv::Service service(config);

  srv::HttpServer http(0);  // ephemeral port
  std::thread server([&] { http.serve(srv::make_service_handler(service)); });
  srv::HttpClient client(http.port());

  auto ping = client.request("GET", "/v1/ping");
  ASSERT_EQ(ping.status, 200) << ping.error;

  // Submit the spec as an embedded JSON document.
  std::ostringstream spec_text;
  cmp::write_campaign_spec(spec_text, spec);
  const auto submit = client.request(
      "POST", "/v1/sweeps",
      "{\"spec\": " + spec_text.str() + ", \"client\": \"http\"}");
  ASSERT_EQ(submit.status, 202) << submit.body;
  const auto doc = clb::parse_json(submit.body);
  const std::string key = doc.at("sweep").as_string();
  ASSERT_EQ(key.size(), 16u);

  // Poll status until the sweep completes.
  std::string state;
  for (int i = 0; i < 600 && state != "complete"; ++i) {
    const auto st = client.request("GET", "/v1/sweeps/" + key);
    ASSERT_EQ(st.status, 200);
    state = clb::parse_json(st.body).at("state").as_string();
    if (state != "complete") {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  ASSERT_EQ(state, "complete");

  // Manifest fetch equals the canonical reference bytes.
  const auto manifest = client.request("GET", "/v1/sweeps/" + key + "/manifest");
  ASSERT_EQ(manifest.status, 200);
  EXPECT_EQ(manifest.body, reference_manifest(spec));
  EXPECT_EQ(client.request("GET", "/v1/sweeps/ffffffffffffffff/manifest").status,
            404);

  // The event stream replays from cursor 0 and ends on the terminal frame
  // (warm attach: the sweep already finished).
  std::vector<std::string> kinds;
  const int stream_status = client.stream(
      "/v1/sweeps/" + key + "/events?since=0", [&](std::string_view data) {
        kinds.push_back(clb::parse_json(std::string(data)).at("kind").as_string());
        return kinds.back() != "completed" && kinds.back() != "failed";
      });
  EXPECT_EQ(stream_status, 200);
  ASSERT_FALSE(kinds.empty());
  EXPECT_EQ(kinds.back(), "completed");
  EXPECT_EQ(kinds.front(), "accepted");

  // Duplicate submit of a finished sweep over HTTP: 200 warm_hit.
  const auto warm = client.request(
      "POST", "/v1/sweeps",
      "{\"spec\": " + spec_text.str() + ", \"client\": \"http2\"}");
  EXPECT_EQ(warm.status, 200);
  EXPECT_EQ(clb::parse_json(warm.body).at("outcome").as_string(), "warm_hit");

  // Bad spec: 400 with a diagnostic.
  const auto bad =
      client.request("POST", "/v1/sweeps", "{\"spec\": \"no-such-builtin\"}");
  EXPECT_EQ(bad.status, 400);

  // Drain: subsequent submissions are refused with 503.
  EXPECT_EQ(client.request("POST", "/v1/drain").status, 200);
  std::ostringstream other_text;
  cmp::write_campaign_spec(other_text, tiny_spec(43));
  const auto refused = client.request(
      "POST", "/v1/sweeps", "{\"spec\": " + other_text.str() + "}");
  EXPECT_EQ(refused.status, 503);

  const auto stats = client.request("GET", "/v1/stats");
  ASSERT_EQ(stats.status, 200);
  EXPECT_TRUE(clb::parse_json(stats.body).at("draining").as_bool());

  http.stop();
  server.join();
  service.shutdown();
}
