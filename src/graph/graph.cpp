#include "graph/graph.hpp"

#include <algorithm>

#include "support/expect.hpp"

namespace congestlb::graph {

Graph::Graph(std::size_t n, Weight default_weight)
    : adj_(n), weight_(n, default_weight), label_(n) {}

NodeId Graph::add_node(Weight w, std::string label) {
  adj_.emplace_back();
  weight_.push_back(w);
  label_.push_back(std::move(label));
  return adj_.size() - 1;
}

void Graph::check_node(NodeId v) const {
  CLB_EXPECT(v < adj_.size(), "node id out of range");
}

bool Graph::add_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  CLB_EXPECT(u != v, "self-loops are not allowed");
  auto& nu = adj_[u];
  auto it = std::lower_bound(nu.begin(), nu.end(), v);
  if (it != nu.end() && *it == v) return false;
  nu.insert(it, v);
  auto& nv = adj_[v];
  nv.insert(std::lower_bound(nv.begin(), nv.end(), u), u);
  ++num_edges_;
  return true;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  if (u == v) return false;
  const auto& nu = adj_[u];
  if (std::binary_search(nu.begin(), nu.end(), v)) return true;
  for (const auto& b : blocks_) {
    if (b.is_edge(u, v)) return true;
  }
  return false;
}

void Graph::reserve_edges(std::size_t expected_edges) {
  if (adj_.empty()) return;
  const std::size_t per_node = 2 * expected_edges / adj_.size() + 1;
  for (auto& nb : adj_) nb.reserve(nb.size() + per_node);
}

std::size_t Graph::finalize_bulk_node(NodeId v) {
  auto& nb = adj_[v];
  std::sort(nb.begin(), nb.end());
  CLB_EXPECT(!std::binary_search(nb.begin(), nb.end(), v),
             "self-loops are not allowed");
  nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
  return nb.size();
}

std::size_t Graph::add_edges(
    std::span<const std::pair<NodeId, NodeId>> edges) {
  if (edges.empty()) return 0;
  std::vector<NodeId> touched;
  touched.reserve(2 * edges.size());
  for (auto [u, v] : edges) {
    check_node(u);
    check_node(v);
    CLB_EXPECT(u != v, "self-loops are not allowed");
    adj_[u].push_back(v);
    adj_[v].push_back(u);
    touched.push_back(u);
    touched.push_back(v);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  // The pre-bulk lists were sorted and unique, so dedup removes exactly the
  // appends that duplicated an existing or batch-repeated edge; every
  // surviving append counts its edge twice (once per endpoint).
  std::size_t removed = 0;
  for (NodeId v : touched) {
    const std::size_t before = adj_[v].size();
    removed += before - finalize_bulk_node(v);
  }
  const std::size_t added = (2 * edges.size() - removed) / 2;
  num_edges_ += added;
  return added;
}

namespace {

/// True when `nodes` is exactly the ascending contiguous range
/// [nodes.front(), nodes.front() + size).
bool is_contiguous_run(std::span<const NodeId> nodes) {
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    if (nodes[i] != nodes[0] + i) return false;
  }
  return true;
}

}  // namespace

void Graph::add_implicit_block(const ImplicitBlock& b) {
  CLB_EXPECT(b.max_node_excl() <= adj_.size(),
             "implicit block range out of bounds");
  blocks_.push_back(b);
  implicit_edges_ += b.num_edges();
}

bool Graph::in_implicit_block(NodeId v) const {
  for (const auto& b : blocks_) {
    if (b.contains(v)) return true;
  }
  return false;
}

void Graph::add_clique(std::span<const NodeId> nodes) {
  if (nodes.size() < 2) return;
  const std::size_t clique_edges = nodes.size() * (nodes.size() - 1) / 2;
  if (clique_edges >= implicit_threshold_ && is_contiguous_run(nodes)) {
    check_node(nodes.back());
    add_implicit_block(
        ImplicitBlock::clique(nodes.front(), nodes.front() + nodes.size()));
    return;
  }
  std::size_t old_total = 0;
  for (NodeId v : nodes) {
    check_node(v);
    old_total += adj_[v].size();
  }
  for (NodeId u : nodes) {
    auto& nb = adj_[u];
    nb.reserve(nb.size() + nodes.size() - 1);
    for (NodeId v : nodes) {
      if (u != v) nb.push_back(v);
    }
  }
  // Lists were sorted+unique before the append, so the surviving growth
  // counts every new edge exactly twice (once per endpoint).
  std::size_t new_total = 0;
  for (NodeId v : nodes) new_total += finalize_bulk_node(v);
  num_edges_ += (new_total - old_total) / 2;
}

void Graph::add_biclique(std::span<const NodeId> a,
                         std::span<const NodeId> b) {
  if (a.empty() || b.empty()) return;
  if (a.size() * b.size() >= implicit_threshold_ && is_contiguous_run(a) &&
      is_contiguous_run(b)) {
    check_node(a.back());
    check_node(b.back());
    add_implicit_block(ImplicitBlock::biclique(a.front(),
                                               a.front() + a.size(),
                                               b.front(),
                                               b.front() + b.size()));
    return;
  }
  std::size_t old_total = 0;
  for (NodeId u : a) {
    check_node(u);
    old_total += adj_[u].size();
  }
  for (NodeId v : b) {
    check_node(v);
    old_total += adj_[v].size();
  }
  for (NodeId u : a) {
    auto& nb = adj_[u];
    nb.reserve(nb.size() + b.size());
    nb.insert(nb.end(), b.begin(), b.end());
  }
  for (NodeId v : b) {
    auto& nb = adj_[v];
    nb.reserve(nb.size() + a.size());
    nb.insert(nb.end(), a.begin(), a.end());
  }
  std::size_t new_total = 0;
  for (NodeId u : a) new_total += finalize_bulk_node(u);
  for (NodeId v : b) new_total += finalize_bulk_node(v);
  num_edges_ += (new_total - old_total) / 2;
}

void Graph::add_anti_matching_grid(NodeId base, std::size_t stride,
                                   std::size_t rows, std::size_t row_len) {
  const auto block =
      ImplicitBlock::anti_matching_grid(base, stride, rows, row_len);
  if (block.num_edges() >= implicit_threshold_) {
    add_implicit_block(block);
    return;
  }
  CLB_EXPECT(block.max_node_excl() <= adj_.size(),
             "anti-matching grid range out of bounds");
  std::vector<std::pair<NodeId, NodeId>> batch;
  batch.reserve(static_cast<std::size_t>(block.num_edges()));
  block.for_each_edge([&](NodeId u, NodeId v) { batch.emplace_back(u, v); });
  add_edges(batch);
}

const std::vector<NodeId>& Graph::neighbors(NodeId v) const {
  check_node(v);
  CLB_EXPECT(!in_implicit_block(v),
             "node is covered by an implicit block; use for_each_neighbor "
             "(or explicit_neighbors) instead of neighbors()");
  return adj_[v];
}

const std::vector<NodeId>& Graph::explicit_neighbors(NodeId v) const {
  check_node(v);
  return adj_[v];
}

std::size_t Graph::explicit_degree(NodeId v) const {
  check_node(v);
  return adj_[v].size();
}

std::size_t Graph::implicit_degree(NodeId v) const {
  check_node(v);
  std::size_t d = 0;
  for (const auto& b : blocks_) d += b.degree_of(v);
  return d;
}

Graph Graph::materialized() const {
  Graph g = *this;
  g.blocks_.clear();
  g.implicit_edges_ = 0;
  g.implicit_threshold_ = kNeverImplicit;
  std::vector<std::pair<NodeId, NodeId>> batch;
  constexpr std::size_t kChunk = 1 << 16;
  batch.reserve(kChunk);
  for (const auto& b : blocks_) {
    b.for_each_edge([&](NodeId u, NodeId v) {
      batch.emplace_back(u, v);
      if (batch.size() >= kChunk) {
        g.add_edges(batch);
        batch.clear();
      }
    });
  }
  if (!batch.empty()) g.add_edges(batch);
  return g;
}

std::size_t Graph::max_degree() const {
  std::size_t d = 0;
  if (blocks_.empty()) {
    for (const auto& nb : adj_) d = std::max(d, nb.size());
    return d;
  }
  for (NodeId v = 0; v < adj_.size(); ++v) d = std::max(d, degree(v));
  return d;
}

Weight Graph::weight(NodeId v) const {
  check_node(v);
  return weight_[v];
}

void Graph::set_weight(NodeId v, Weight w) {
  check_node(v);
  weight_[v] = w;
}

Weight Graph::total_weight() const {
  Weight sum = 0;
  for (Weight w : weight_) sum += w;
  return sum;
}

Weight Graph::weight_of(std::span<const NodeId> nodes) const {
  Weight sum = 0;
  for (NodeId v : nodes) sum += weight(v);
  return sum;
}

bool Graph::is_independent_set(std::span<const NodeId> nodes) const {
  std::vector<NodeId> sorted(nodes.begin(), nodes.end());
  std::sort(sorted.begin(), sorted.end());
  CLB_EXPECT(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
             "independent-set check requires distinct node ids");
  for (NodeId v : sorted) {
    check_node(v);
    // Intersect neighbors(v) (sorted) with the sorted candidate set.
    const auto& nb = adj_[v];
    auto a = nb.begin();
    auto b = sorted.begin();
    while (a != nb.end() && b != sorted.end()) {
      if (*a < *b) {
        ++a;
      } else if (*b < *a) {
        ++b;
      } else {
        return false;
      }
    }
  }
  // Implicit blocks: each is dense enough that a direct member scan is
  // cheap relative to |I| (witness sets are small; blocks are checked
  // pairwise only among their own members).
  for (const auto& b : blocks_) {
    std::vector<NodeId> members;
    for (NodeId v : sorted) {
      if (b.contains(v)) members.push_back(v);
    }
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        if (b.is_edge(members[i], members[j])) return false;
      }
    }
  }
  return true;
}

Graph Graph::induced_subgraph(std::span<const NodeId> nodes) const {
  CLB_EXPECT(blocks_.empty(),
             "induced_subgraph requires a block-free graph; materialize() first");
  std::vector<NodeId> order(nodes.begin(), nodes.end());
  std::vector<NodeId> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  CLB_EXPECT(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
             "induced_subgraph requires distinct node ids");

  Graph sub(order.size());
  // old id -> new id
  std::vector<std::size_t> pos(adj_.size(), static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < order.size(); ++i) {
    check_node(order[i]);
    pos[order[i]] = i;
    sub.set_weight(i, weight_[order[i]]);
    sub.set_label(i, label_[order[i]]);
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (NodeId nb : adj_[order[i]]) {
      if (pos[nb] != static_cast<std::size_t>(-1) && pos[nb] > i) {
        sub.add_edge(i, pos[nb]);
      }
    }
  }
  return sub;
}

Graph Graph::complement() const {
  CLB_EXPECT(blocks_.empty(),
             "complement requires a block-free graph; materialize() first");
  Graph comp(num_nodes());
  for (NodeId v = 0; v < num_nodes(); ++v) {
    comp.set_weight(v, weight_[v]);
    comp.set_label(v, label_[v]);
  }
  for (NodeId u = 0; u < num_nodes(); ++u) {
    const auto& nb = adj_[u];
    auto it = nb.begin();
    for (NodeId v = u + 1; v < num_nodes(); ++v) {
      while (it != nb.end() && *it < v) ++it;
      const bool adjacent = (it != nb.end() && *it == v);
      if (!adjacent) comp.add_edge(u, v);
    }
  }
  return comp;
}

const std::string& Graph::label(NodeId v) const {
  check_node(v);
  return label_[v];
}

void Graph::set_label(NodeId v, std::string label) {
  check_node(v);
  label_[v] = std::move(label);
}

bool Graph::operator==(const Graph& other) const {
  return adj_ == other.adj_ && weight_ == other.weight_ &&
         blocks_ == other.blocks_;
}

Csr export_csr(const Graph& g) {
  Csr csr;
  const std::size_t n = g.num_nodes();
  csr.offsets.resize(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    csr.offsets[v + 1] = csr.offsets[v] + g.explicit_degree(v);
  }
  csr.targets.resize(csr.offsets[n]);
  for (NodeId v = 0; v < n; ++v) {
    const auto& nb = g.explicit_neighbors(v);
    std::copy(nb.begin(), nb.end(), csr.targets.begin() + csr.offsets[v]);
  }
  return csr;
}

std::vector<std::pair<NodeId, NodeId>> edge_list(const Graph& g) {
  CLB_EXPECT(!g.has_implicit_blocks(),
             "edge_list would materialize implicit blocks; iterate "
             "implicit_blocks() or materialize() deliberately");
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.explicit_neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

}  // namespace congestlb::graph
