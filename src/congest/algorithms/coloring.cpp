#include "congest/algorithms/coloring.hpp"

#include <vector>

#include "support/expect.hpp"
#include "support/math.hpp"

namespace congestlb::congest {

namespace {

class RandomColoringProgram final : public NodeProgram {
 public:
  void round(const NodeInfo& info, const Inbox& inbox, Outbox& outbox,
             Rng& rng) override {
    if (color_bits_ == 0) {
      // Colors never exceed deg(v) <= n-1; one shared field width.
      color_bits_ = static_cast<std::size_t>(
          std::max(1, ceil_log2(std::max<std::size_t>(2, info.n + 1))));
      neighbor_decided_.assign(info.neighbors.size(), false);
      neighbor_color_.assign(info.neighbors.size(), 0);
      palette_blocked_.assign(info.neighbors.size() + 1, false);
    }
    for (std::size_t s = 0; s < inbox.size(); ++s) {
      if (!inbox[s]) continue;
      MessageReader r(*inbox[s]);
      const bool their_final = r.get(1) != 0;
      const std::uint64_t their_color = r.get(color_bits_);
      neighbor_color_[s] = their_color;
      if (their_final && !neighbor_decided_[s]) {
        neighbor_decided_[s] = true;
        if (their_color < palette_blocked_.size()) {
          palette_blocked_[their_color] = true;
        }
      }
    }

    if (!decided_ && announced_tentative_) {
      // Did last round's tentative survive? It conflicts if any undecided
      // neighbor announced the same tentative, or a neighbor finalized it.
      bool conflict = palette_blocked_[tentative_];
      for (std::size_t s = 0; s < neighbor_color_.size() && !conflict; ++s) {
        if (!neighbor_decided_[s] && neighbor_color_[s] == tentative_) {
          conflict = true;
        }
      }
      if (!conflict) decided_ = true;
    }

    const bool neighbors_done = [&] {
      for (bool d : neighbor_decided_) {
        if (!d) return false;
      }
      return true;
    }();
    if (decided_ && neighbors_done && announced_final_) {
      finished_ = true;
      return;
    }

    if (!decided_) {
      // Fresh tentative from the unblocked palette.
      std::vector<std::uint64_t> open;
      for (std::uint64_t c = 0; c < palette_blocked_.size(); ++c) {
        if (!palette_blocked_[c]) open.push_back(c);
      }
      CLB_EXPECT(!open.empty(), "coloring: palette exhausted — impossible");
      tentative_ = open[rng.below(open.size())];
      announced_tentative_ = true;
    }
    if (!info.neighbors.empty()) {
      Message m = std::move(MessageWriter()
                                .put(decided_ ? 1 : 0, 1)
                                .put(tentative_, color_bits_))
                      .finish();
      outbox.send_all(m);
    }
    if (decided_) announced_final_ = true;
  }

  bool finished() const override { return finished_; }
  std::int64_t output() const override {
    return decided_ ? static_cast<std::int64_t>(tentative_ + 1) : 0;
  }

 private:
  std::size_t color_bits_ = 0;
  std::uint64_t tentative_ = 0;
  bool announced_tentative_ = false;
  bool decided_ = false;
  bool announced_final_ = false;
  bool finished_ = false;
  std::vector<bool> neighbor_decided_;
  std::vector<std::uint64_t> neighbor_color_;
  std::vector<bool> palette_blocked_;
};

}  // namespace

ProgramFactory random_coloring_factory() {
  return [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<RandomColoringProgram>();
  };
}

}  // namespace congestlb::congest
