#include "campaign/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "campaign/scheduler.hpp"
#include "campaign/supervise.hpp"
#include "maxis/parallel_bnb.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "support/deadline.hpp"
#include "support/expect.hpp"
#include "support/hash.hpp"
#include "support/json.hpp"

namespace congestlb::campaign {
namespace {

enum class Stage : std::uint8_t { kBuild, kSolveYes, kSolveNo, kCheck };
enum class Mode : std::uint8_t { kRun, kReplay, kSkip };

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

std::string_view stage_name(Stage s) {
  switch (s) {
    case Stage::kBuild: return "build";
    case Stage::kSolveYes: return "solve-yes";
    case Stage::kSolveNo: return "solve-no";
    case Stage::kCheck: return "check";
  }
  return "?";
}

bool is_claim(CheckKind kind) {
  return kind == CheckKind::kClaim12 || kind == CheckKind::kClaim35;
}

bool is_algorithm(CheckKind kind) {
  return kind == CheckKind::kApproxSweep ||
         kind == CheckKind::kBlackboardSweep;
}

/// One node of the expanded job DAG. Everything here — ids, seeds, input
/// hashes, dependency edges — is derived purely from the spec, before any
/// job runs; the scheduler only decides *when*, never *what*.
struct ExpandedJob {
  std::string id;
  Stage stage = Stage::kBuild;
  CheckKind check = CheckKind::kProperty1;
  ResolvedPoint point;
  std::uint64_t seed = 0;
  std::size_t trials = 0;
  std::size_t sample_budget = 0;
  std::size_t eps_num = 1;  ///< algorithm sweeps only
  std::size_t eps_den = 4;
  std::size_t gadget_idx = 0;     ///< shared built-construction slot
  std::size_t point_slot = kNone; ///< claim sweeps: solve-result slot
  std::uint64_t inputs_hash = 0;
  std::vector<std::size_t> deps;  ///< expanded-job indices
};

struct Expansion {
  std::vector<ExpandedJob> jobs;
  std::vector<ResolvedPoint> gadget_points;  ///< indexed by gadget_idx
  std::size_t num_point_slots = 0;
};

Expansion expand(const CampaignSpec& spec) {
  Expansion x;
  std::map<std::string, std::size_t> build_by_key;  // gadget key -> job idx
  std::map<std::string, std::size_t> by_id;

  const auto push = [&](ExpandedJob e) -> std::size_t {
    const std::size_t idx = x.jobs.size();
    CLB_EXPECT(by_id.emplace(e.id, idx).second,
               "campaign: duplicate job id (repeated point in a sweep?)");
    x.jobs.push_back(std::move(e));
    return idx;
  };

  // One build job per distinct gadget shape, shared across sweeps — this
  // dedup is what keeps "which sweep got the cache hit" out of the DAG.
  const auto build_job_for = [&](const ResolvedPoint& p,
                                 const std::string& key) -> std::size_t {
    const auto it = build_by_key.find(key);
    if (it != build_by_key.end()) return it->second;
    ExpandedJob e;
    e.id = "gadget/" + p.canonical();
    e.stage = Stage::kBuild;
    e.point = p;
    e.inputs_hash = fnv1a64(key);
    e.gadget_idx = x.gadget_points.size();
    x.gadget_points.push_back(p);
    const std::size_t idx = push(std::move(e));
    build_by_key.emplace(key, idx);
    return idx;
  };

  for (const SweepSpec& sweep : spec.sweeps) {
    const std::uint64_t sweep_hash = fnv1a64(sweep.name);
    for (std::size_t pi = 0; pi < sweep.points.size(); ++pi) {
      const ResolvedPoint p = resolve_point(sweep.points[pi]);
      const std::string gkey = gadget_cache_key(p);
      const std::size_t build = build_job_for(p, gkey);
      const std::string prefix = sweep.name + "/" + p.canonical() + "/";

      if (!is_claim(sweep.check)) {
        ExpandedJob c;
        c.id = prefix + "check";
        c.stage = Stage::kCheck;
        c.check = sweep.check;
        c.point = p;
        c.seed = hash_mix(spec.seed, sweep_hash, pi, 3);
        c.sample_budget = sweep.sample_budget;
        c.eps_num = sweep.eps_num;
        c.eps_den = sweep.eps_den;
        c.gadget_idx = x.jobs[build].gadget_idx;
        std::string hash_src = gkey + "|check=" +
                               std::string(to_string(sweep.check)) +
                               "|seed=" + std::to_string(c.seed) +
                               "|budget=" +
                               std::to_string(sweep.sample_budget);
        // Algorithm checks bind eps (kkss) into the verdict identity, so a
        // retargeted sweep invalidates exactly its own records.
        if (is_algorithm(sweep.check)) {
          hash_src += "|eps=" + std::to_string(sweep.eps_num) + "/" +
                      std::to_string(sweep.eps_den);
        }
        c.inputs_hash = fnv1a64(hash_src);
        c.deps = {build};
        push(std::move(c));
        continue;
      }

      const std::size_t slot = x.num_point_slots++;
      std::size_t solve_idx[2];
      std::uint64_t solve_hash[2];
      for (int b = 0; b < 2; ++b) {
        const bool yes = b == 0;
        ExpandedJob s;
        s.stage = yes ? Stage::kSolveYes : Stage::kSolveNo;
        s.id = prefix + std::string(stage_name(s.stage));
        s.check = sweep.check;
        s.point = p;
        s.seed = hash_mix(spec.seed, sweep_hash, pi, yes ? 1 : 2);
        s.trials = sweep.trials;
        s.gadget_idx = x.jobs[build].gadget_idx;
        s.point_slot = slot;
        s.inputs_hash = fnv1a64(
            gkey + "|stage=" + std::string(stage_name(s.stage)) +
            "|trials=" + std::to_string(sweep.trials) +
            "|seed=" + std::to_string(s.seed) +
            "|density=" + (yes ? "0.3" : "0.4") +
            "|solver=" + std::string(maxis::kSolverVersion));
        solve_hash[b] = s.inputs_hash;
        s.deps = {build};
        solve_idx[b] = push(std::move(s));
      }

      ExpandedJob c;
      c.id = prefix + "check";
      c.stage = Stage::kCheck;
      c.check = sweep.check;
      c.point = p;
      c.point_slot = slot;
      c.gadget_idx = x.jobs[build].gadget_idx;
      // Chaining the solve hashes makes any solve-input change (seed,
      // trials, density, solver) invalidate the recorded verdict too.
      c.inputs_hash = fnv1a64(gkey + "|check=" +
                              std::string(to_string(sweep.check)) +
                              "|solve-yes=" +
                              ContentCache::hex_key(solve_hash[0]) +
                              "|solve-no=" +
                              ContentCache::hex_key(solve_hash[1]));
      c.deps = {solve_idx[0], solve_idx[1]};
      push(std::move(c));
    }
  }
  return x;
}

/// Cache payload for a check verdict: "k=v;k=v;..." over the outcome
/// fields, integer-valued so the round trip is exact.
std::string outcome_payload(CheckKind kind, const PointOutcome& o) {
  std::ostringstream os;
  if (is_claim(kind)) {
    os << "yes_opt=" << o.yes_opt << ";no_opt=" << o.no_opt
       << ";bound_yes=" << o.bound_yes << ";bound_no=" << o.bound_no;
  } else if (is_algorithm(kind)) {
    os << "alg_weight=" << o.alg_weight << ";opt=" << o.opt
       << ";bound_no=" << o.bound_no << ";rounds=" << o.rounds
       << ";round_bound=" << o.round_bound << ";bits=" << o.bits
       << ";checked=" << o.checked << ";nodes=" << o.nodes
       << ";edges=" << o.edges;
  } else {
    os << "checked=" << o.checked << ";min_matching=" << o.min_matching
       << ";max_shared=" << o.max_shared;
  }
  os << ";holds=" << (o.holds ? 1 : 0);
  return os.str();
}

std::int64_t parse_i64(std::string_view s, std::string_view what) {
  errno = 0;
  char* end = nullptr;
  const std::string buf(s);
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  CLB_EXPECT(end == buf.c_str() + buf.size() && !buf.empty() && errno == 0,
             std::string("campaign: malformed integer in ") +
                 std::string(what));
  return static_cast<std::int64_t>(v);
}

PointOutcome parse_outcome_payload(const std::string& payload) {
  PointOutcome o;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t semi = payload.find(';', pos);
    if (semi == std::string::npos) semi = payload.size();
    const std::string_view field(payload.data() + pos, semi - pos);
    const std::size_t eq = field.find('=');
    CLB_EXPECT(eq != std::string_view::npos,
               "campaign: malformed verdict payload");
    const std::string_view key = field.substr(0, eq);
    const std::int64_t v = parse_i64(field.substr(eq + 1), "verdict payload");
    if (key == "checked") {
      o.checked = static_cast<std::uint64_t>(v);
    } else if (key == "min_matching") {
      o.min_matching = static_cast<std::uint64_t>(v);
    } else if (key == "max_shared") {
      o.max_shared = static_cast<std::uint64_t>(v);
    } else if (key == "yes_opt") {
      o.yes_opt = v;
    } else if (key == "no_opt") {
      o.no_opt = v;
    } else if (key == "bound_yes") {
      o.bound_yes = v;
    } else if (key == "bound_no") {
      o.bound_no = v;
    } else if (key == "alg_weight") {
      o.alg_weight = v;
    } else if (key == "opt") {
      o.opt = v;
    } else if (key == "rounds") {
      o.rounds = static_cast<std::uint64_t>(v);
    } else if (key == "round_bound") {
      o.round_bound = static_cast<std::uint64_t>(v);
    } else if (key == "bits") {
      o.bits = static_cast<std::uint64_t>(v);
    } else if (key == "nodes") {
      o.nodes = static_cast<std::uint64_t>(v);
    } else if (key == "edges") {
      o.edges = static_cast<std::uint64_t>(v);
    } else if (key == "holds") {
      o.holds = v != 0;
    } else {
      throw InvariantError("campaign: unknown verdict payload key");
    }
    pos = semi + 1;
  }
  return o;
}

std::uint64_t parse_hex(const std::string& s, std::string_view what) {
  CLB_EXPECT(!s.empty() && s.size() <= 16,
             std::string("campaign: bad hex hash in ") + std::string(what));
  std::uint64_t v = 0;
  for (const char c : s) {
    int d;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      d = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      d = c - 'A' + 10;
    } else {
      throw InvariantError(std::string("campaign: bad hex hash in ") +
                           std::string(what));
    }
    v = v * 16 + static_cast<std::uint64_t>(d);
  }
  return v;
}

}  // namespace

const JobRecord* CampaignResult::find(std::string_view id) const {
  for (const JobRecord& r : records) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

std::size_t count_campaign_jobs(const CampaignSpec& spec) {
  return expand(spec).jobs.size();
}

void register_campaign_metrics(obs::MetricsRegistry& metrics,
                               std::size_t worker_slots) {
  metrics.ensure_shards(worker_slots);
  metrics.counter("campaign.jobs.executed");
  metrics.counter("campaign.jobs.replayed");
  metrics.counter("campaign.checks.holds");
  metrics.counter("campaign.checks.violated");
  metrics.counter("campaign.jobs.retried");
  metrics.counter("campaign.jobs.quarantined");
  metrics.counter("campaign.jobs.blocked");
  metrics.histogram("campaign.job_wall_us",
                    {100, 1000, 10000, 100000, 1000000});
}

CampaignResult run_campaign(const CampaignSpec& spec, const RunOptions& opts,
                            const std::map<std::string, JobRecord>* prior) {
  CLB_EXPECT(opts.threads >= 1, "campaign: threads must be >= 1");
  CLB_EXPECT(opts.shared == nullptr || opts.max_jobs == 0,
             "campaign: max_jobs is not supported on a shared scheduler");
  // The worker-index space metrics shards are keyed by.
  const std::size_t worker_slots =
      opts.shared != nullptr ? opts.shared->num_threads() : opts.threads;
  const auto run_start = std::chrono::steady_clock::now();

  Expansion x = expand(spec);
  const std::size_t n = x.jobs.size();

  // ---- Resume-mode resolution ------------------------------------------
  // A prior record counts only when its (id, inputs_hash, stage) all match
  // the expanded job — so a spec/seed change silently invalidates exactly
  // the affected jobs and nothing else.
  std::vector<Mode> mode(n, Mode::kRun);
  std::vector<const JobRecord*> carried(n, nullptr);
  const auto match = [&](const ExpandedJob& e) -> const JobRecord* {
    if (prior == nullptr) return nullptr;
    const auto it = prior->find(e.id);
    if (it == prior->end()) return nullptr;
    const JobRecord& r = it->second;
    if (r.inputs_hash != e.inputs_hash) return nullptr;
    if (r.stage != stage_name(e.stage)) return nullptr;
    if (r.verdict.empty()) return nullptr;
    // Fault verdicts and deadline-degraded outcomes are recorded so the
    // manifest tells the truth, but never honored on resume — the job
    // re-runs with whatever budget/luck the new run has.
    if (r.verdict == "quarantined" || r.verdict == "blocked") return nullptr;
    if (r.outcome.approximate) return nullptr;
    return &r;
  };

  // Pass 1: checks skip iff recorded.
  for (std::size_t i = 0; i < n; ++i) {
    if (x.jobs[i].stage != Stage::kCheck) continue;
    carried[i] = match(x.jobs[i]);
    mode[i] = carried[i] != nullptr ? Mode::kSkip : Mode::kRun;
  }
  // Pass 2: a recorded solve skips with its check, otherwise replays (its
  // recorded OPT feeds the re-run check without branch-and-bound).
  std::vector<std::size_t> check_of(n, kNone);
  for (std::size_t i = 0; i < n; ++i) {
    if (x.jobs[i].stage == Stage::kCheck && is_claim(x.jobs[i].check)) {
      for (const std::size_t d : x.jobs[i].deps) check_of[d] = i;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const Stage st = x.jobs[i].stage;
    if (st != Stage::kSolveYes && st != Stage::kSolveNo) continue;
    carried[i] = match(x.jobs[i]);
    if (carried[i] == nullptr) {
      mode[i] = Mode::kRun;
    } else if (check_of[i] != kNone && mode[check_of[i]] == Mode::kSkip) {
      mode[i] = Mode::kSkip;
    } else {
      mode[i] = Mode::kReplay;
    }
  }
  // Pass 3: a build must run when any dependent actually needs the graph
  // (a running solve, or a running property check); otherwise it skips if
  // recorded and runs (cheaply, usually a disk hit) just to produce its
  // record if not.
  std::vector<std::uint8_t> graph_needed(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const ExpandedJob& e = x.jobs[i];
    const bool needs_graph =
        (e.stage == Stage::kSolveYes || e.stage == Stage::kSolveNo)
            ? mode[i] == Mode::kRun
            : (e.stage == Stage::kCheck && !is_claim(e.check) &&
               mode[i] == Mode::kRun);
    if (!needs_graph) continue;
    for (const std::size_t d : e.deps) {
      if (x.jobs[d].stage == Stage::kBuild) graph_needed[d] = 1;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (x.jobs[i].stage != Stage::kBuild) continue;
    carried[i] = match(x.jobs[i]);
    if (graph_needed[i] != 0) {
      mode[i] = Mode::kRun;
    } else {
      mode[i] = carried[i] != nullptr ? Mode::kSkip : Mode::kRun;
    }
  }

  // ---- Runtime state ----------------------------------------------------
  ContentCache cache(opts.cache_dir);
  // A build job that hits the gadget cache records its counts from the
  // payload header and leaves `payload` for dependents; the full graph is
  // rehydrated lazily (once) only if a dependent misses its own cache —
  // a fully warm run never parses a graph body.
  struct GadgetSlot {
    std::once_flag once;
    std::optional<lb::LinearConstruction> c;
    std::string payload;
  };
  std::vector<GadgetSlot> gadgets(x.gadget_points.size());
  const auto ensure_built = [&](std::size_t g) -> const lb::LinearConstruction& {
    GadgetSlot& s = gadgets[g];
    std::call_once(s.once, [&] {
      if (!s.c.has_value()) {
        s.c.emplace(rehydrate_gadget(x.gadget_points[g], s.payload));
      }
    });
    return *s.c;
  };
  struct Slot {
    std::int64_t yes = -1;
    std::int64_t no = -1;
    bool yes_approx = false;
    bool no_approx = false;
  };
  std::vector<Slot> slots(x.num_point_slots);
  std::vector<std::optional<JobRecord>> out(n);
  // Fault-domain state. `poisoned[i]` marks a quarantined or blocked job;
  // dependents read it before running. Plain bytes are safe: the scheduler
  // orders every dependency completion before its dependent starts
  // (deps_left_ acq_rel in scheduler.cpp).
  Supervisor supervisor(opts.retry, spec.seed, opts.chaos);
  std::vector<std::uint8_t> poisoned(n, 0);

  obs::Counter* m_exec = nullptr;
  obs::Counter* m_replay = nullptr;
  obs::Counter* m_holds = nullptr;
  obs::Counter* m_violated = nullptr;
  obs::Counter* m_retried = nullptr;
  obs::Counter* m_quarantined = nullptr;
  obs::Counter* m_blocked = nullptr;
  obs::Histogram* m_wall = nullptr;
  if (opts.metrics != nullptr) {
    register_campaign_metrics(*opts.metrics, worker_slots);
    m_exec = &opts.metrics->counter("campaign.jobs.executed");
    m_replay = &opts.metrics->counter("campaign.jobs.replayed");
    m_holds = &opts.metrics->counter("campaign.checks.holds");
    m_violated = &opts.metrics->counter("campaign.checks.violated");
    m_retried = &opts.metrics->counter("campaign.jobs.retried");
    m_quarantined = &opts.metrics->counter("campaign.jobs.quarantined");
    m_blocked = &opts.metrics->counter("campaign.jobs.blocked");
    m_wall = &opts.metrics->histogram("campaign.job_wall_us",
                                      {100, 1000, 10000, 100000, 1000000});
  }

  const auto run_job = [&](std::size_t ei, std::size_t w) {
    const auto t0 = std::chrono::steady_clock::now();
    const ExpandedJob& e = x.jobs[ei];
    JobRecord rec;

    if (mode[ei] == Mode::kReplay) {
      rec = *carried[ei];
      rec.resumed = true;
      rec.cache_hit = false;
      Slot& s = slots[e.point_slot];
      (e.stage == Stage::kSolveYes ? s.yes : s.no) = rec.outcome.opt;
      if (m_replay != nullptr) m_replay->inc(w);
    } else {
      rec.id = e.id;
      rec.inputs_hash = e.inputs_hash;
      rec.stage = std::string(stage_name(e.stage));
      bool blocked = false;
      for (const std::size_t d : e.deps) {
        if (poisoned[d] != 0) blocked = true;
      }
      if (blocked) {
        // A quarantined dependency means this job's inputs don't exist;
        // running it would only fail confusingly. One poison job degrades
        // its cone of dependents, not the campaign.
        rec.verdict = "blocked";
        rec.diagnostic = "dependency quarantined or blocked";
        poisoned[ei] = 1;
        if (m_blocked != nullptr) m_blocked->inc(w);
      } else {
        JobRecord work;
        const auto body = [&] {
          // Every attempt starts from a clean record so a half-filled
          // record from a failed try cannot leak into the retry.
          work = JobRecord{};
          work.id = e.id;
          work.inputs_hash = e.inputs_hash;
          work.stage = std::string(stage_name(e.stage));
          switch (e.stage) {
            case Stage::kBuild: {
              auto payload = cache.load("gadget", e.inputs_hash);
              work.cache_hit = payload.has_value();
              GadgetSlot& slot = gadgets[e.gadget_idx];
              if (payload.has_value()) {
                const GadgetHeader h = parse_gadget_header(*payload);
                work.outcome.nodes = h.nodes;
                work.outcome.edges = h.edges;
                work.outcome.cut = h.cut;
                slot.payload = std::move(*payload);
              } else {
                lb::LinearConstruction c =
                    build_gadget(e.point, std::string());
                cache.store("gadget", e.inputs_hash, serialize_gadget(c));
                work.outcome = build_outcome(c);
                slot.c.emplace(std::move(c));
              }
              work.verdict = "built";
              break;
            }
            case Stage::kSolveYes:
            case Stage::kSolveNo: {
              const bool yes = e.stage == Stage::kSolveYes;
              Slot& s = slots[e.point_slot];
              const auto payload = cache.load("opt", e.inputs_hash);
              if (payload.has_value()) {
                work.outcome.opt = parse_i64(*payload, "opt cache slot");
                work.cache_hit = true;
              } else {
                std::optional<DeadlineToken> ddl;
                if (opts.job_deadline_ms > 0) {
                  ddl.emplace(
                      std::chrono::milliseconds(opts.job_deadline_ms));
                }
                const SolveResult sr =
                    solve_branch(ensure_built(e.gadget_idx), yes, e.trials,
                                 e.seed, ddl.has_value() ? &*ddl : nullptr);
                work.outcome.opt = sr.opt;
                work.outcome.approximate = sr.approximate;
                // An approximate OPT is run-local: caching one would let a
                // tight deadline silently weaken every later campaign.
                if (!sr.approximate) {
                  cache.store("opt", e.inputs_hash, std::to_string(sr.opt));
                }
              }
              work.verdict = "opt";
              (yes ? s.yes : s.no) = work.outcome.opt;
              (yes ? s.yes_approx : s.no_approx) = work.outcome.approximate;
              break;
            }
            case Stage::kCheck: {
              const auto payload = cache.load("verdict", e.inputs_hash);
              if (payload.has_value()) {
                work.outcome = parse_outcome_payload(*payload);
                work.cache_hit = true;
              } else {
                if (is_claim(e.check)) {
                  const Slot& s = slots[e.point_slot];
                  work.outcome = check_claim(e.check, e.point, s.yes, s.no);
                  work.outcome.approximate = s.yes_approx || s.no_approx;
                } else if (is_algorithm(e.check)) {
                  work.outcome =
                      check_algorithm(e.check, ensure_built(e.gadget_idx),
                                      e.seed, e.eps_num, e.eps_den);
                } else {
                  work.outcome =
                      check_property(e.check, ensure_built(e.gadget_idx),
                                     e.seed, e.sample_budget);
                }
                if (!work.outcome.approximate) {
                  cache.store("verdict", e.inputs_hash,
                              outcome_payload(e.check, work.outcome));
                }
              }
              work.verdict = work.outcome.holds ? "holds" : "violated";
              break;
            }
          }
        };
        const SuperviseOutcome so = supervisor.supervise(e.id, body);
        if (so.ok) {
          rec = std::move(work);
          if (m_exec != nullptr) m_exec->inc(w);
          // Verdict metrics only for attempts that stuck — a retried check
          // must not double-count its holds/violated tally.
          if (e.stage == Stage::kCheck && opts.metrics != nullptr) {
            (rec.outcome.holds ? m_holds : m_violated)->inc(w);
          }
        } else {
          rec.verdict = "quarantined";
          rec.diagnostic = so.diagnostic;
          poisoned[ei] = 1;
          if (m_quarantined != nullptr) m_quarantined->inc(w);
        }
        rec.attempts = so.attempts;
        rec.backoff_us = so.backoff_total_us;
        if (m_retried != nullptr && so.attempts > 1) {
          m_retried->add(so.attempts - 1, w);
        }
      }
    }

    const auto dt = std::chrono::steady_clock::now() - t0;
    rec.wall_ms =
        std::chrono::duration<double, std::milli>(dt).count();
    if (m_wall != nullptr) {
      m_wall->observe(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(dt)
                  .count()),
          w);
    }
    out[ei] = std::move(rec);
    if (opts.on_job) opts.on_job(*out[ei]);
  };

  // ---- Schedule + run ---------------------------------------------------
  if (opts.shared == nullptr) {
    WorkStealingScheduler sched(opts.threads);
    std::vector<std::size_t> sched_id(n, kNone);
    for (std::size_t i = 0; i < n; ++i) {
      if (mode[i] == Mode::kSkip) continue;
      sched_id[i] = sched.add_job([&run_job, i](std::size_t w) {
        run_job(i, w);
      });
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (sched_id[i] == kNone) continue;
      for (const std::size_t d : x.jobs[i].deps) {
        if (sched_id[d] != kNone) {
          sched.add_dependency(sched_id[i], sched_id[d]);
        }
      }
    }
    sched.run(opts.max_jobs);
  } else {
    // Shared-pool admission (docs/SERVICE.md): the DAG discipline lives
    // here — a job is handed to the pool only once its prerequisites
    // finished — while the pool interleaves this campaign's ready jobs
    // with every other tenant's by priority. Results are identical to the
    // private-scheduler path because jobs are pure functions of their
    // pre-bound seeds; only wall-clock ordering differs.
    struct SharedRun {
      std::vector<std::size_t> deps_left;
      std::vector<std::vector<std::size_t>> dependents;
      std::size_t remaining = 0;
      std::mutex mu;
      std::condition_variable cv;
      std::exception_ptr error;
    } sr;
    sr.deps_left.assign(n, 0);
    sr.dependents.assign(n, {});
    std::vector<std::uint8_t> scheduled(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      scheduled[i] = mode[i] != Mode::kSkip ? 1 : 0;
      if (scheduled[i] != 0) ++sr.remaining;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (scheduled[i] == 0) continue;
      for (const std::size_t d : x.jobs[i].deps) {
        if (scheduled[d] == 0) continue;
        sr.dependents[d].push_back(i);
        ++sr.deps_left[i];
      }
    }
    // submit_one is re-entered from pool workers as dependents become
    // ready; it must be alive until the last job finished, which the
    // final drain-wait below guarantees.
    std::function<void(std::size_t)> submit_one = [&](std::size_t i) {
      const bool admitted =
          opts.shared->submit(opts.priority, [&, i](std::size_t w) {
            try {
              // After a first error, later jobs drain without running —
              // mirroring WorkStealingScheduler's abandon mode.
              bool poisoned_run;
              {
                std::lock_guard<std::mutex> lock(sr.mu);
                poisoned_run = sr.error != nullptr;
              }
              if (!poisoned_run) run_job(i, w);
            } catch (...) {
              std::lock_guard<std::mutex> lock(sr.mu);
              if (sr.error == nullptr) sr.error = std::current_exception();
            }
            for (const std::size_t dep : sr.dependents[i]) {
              std::size_t left;
              {
                std::lock_guard<std::mutex> lock(sr.mu);
                left = --sr.deps_left[dep];
              }
              if (left == 0) submit_one(dep);
            }
            bool done;
            {
              std::lock_guard<std::mutex> lock(sr.mu);
              done = --sr.remaining == 0;
            }
            if (done) sr.cv.notify_all();
          });
      if (!admitted) {
        // The pool is draining: account the job (and, transitively, its
        // cone) as never-run, exactly like a kill — no record is written,
        // and a later resume re-runs it.
        for (const std::size_t dep : sr.dependents[i]) {
          std::size_t left;
          {
            std::lock_guard<std::mutex> lock(sr.mu);
            left = --sr.deps_left[dep];
          }
          if (left == 0) submit_one(dep);
        }
        bool done;
        {
          std::lock_guard<std::mutex> lock(sr.mu);
          done = --sr.remaining == 0;
        }
        if (done) sr.cv.notify_all();
      }
    };
    // Snapshot the initially-ready set BEFORE submitting anything: once a
    // job is in the pool its completion decrements deps_left concurrently,
    // and a later iteration of this loop reading a freshly-zeroed counter
    // would submit that dependent a second time.
    std::vector<std::size_t> initially_ready;
    for (std::size_t i = 0; i < n; ++i) {
      if (scheduled[i] != 0 && sr.deps_left[i] == 0) {
        initially_ready.push_back(i);
      }
    }
    for (const std::size_t i : initially_ready) submit_one(i);
    {
      std::unique_lock<std::mutex> lock(sr.mu);
      sr.cv.wait(lock, [&sr] { return sr.remaining == 0; });
    }
    if (sr.error != nullptr) std::rethrow_exception(sr.error);
  }

  // ---- Collect ----------------------------------------------------------
  CampaignResult res;
  res.campaign = spec.name;
  res.spec_hash = spec.content_hash();
  res.jobs_total = n;
  res.threads = worker_slots;
  for (std::size_t i = 0; i < n; ++i) {
    if (mode[i] == Mode::kSkip) {
      JobRecord r = *carried[i];
      r.resumed = true;
      r.cache_hit = false;
      r.wall_ms = 0;
      res.records.push_back(std::move(r));
      ++res.jobs_resumed;
    } else if (out[i].has_value()) {
      if (mode[i] == Mode::kReplay) {
        ++res.jobs_resumed;
      } else {
        ++res.jobs_run;
      }
      res.records.push_back(std::move(*out[i]));
    }
    // else: abandoned by the budget — no record, exactly like a kill.
  }
  std::sort(res.records.begin(), res.records.end(),
            [](const JobRecord& a, const JobRecord& b) { return a.id < b.id; });
  res.complete = res.records.size() == res.jobs_total;
  for (const JobRecord& r : res.records) {
    if (r.verdict == "quarantined") ++res.jobs_quarantined;
    if (r.verdict == "blocked") ++res.jobs_blocked;
    if (r.stage != "check") continue;
    ++res.checks;
    if (r.verdict == "holds") ++res.checks_holding;
  }
  res.retries = supervisor.retries();
  // A degraded campaign never claims success: quarantined or blocked jobs
  // veto all_hold even when every check that did run holds.
  res.all_hold = res.complete && res.checks_holding == res.checks &&
                 res.jobs_quarantined == 0 && res.jobs_blocked == 0;
  res.cache = cache.stats();
  res.total_wall_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - run_start)
                          .count();
  return res;
}

void write_manifest(std::ostream& os, const CampaignResult& result,
                    const ManifestWriteOptions& opts) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("clb_campaign_manifest", std::uint64_t{1});
  w.kv("campaign", result.campaign);
  w.kv("spec_hash", ContentCache::hex_key(result.spec_hash));
  w.kv("jobs_total", static_cast<std::uint64_t>(result.jobs_total));
  w.kv("complete", result.complete);
  w.key("summary");
  w.begin_object();
  w.kv("jobs_recorded", static_cast<std::uint64_t>(result.records.size()));
  w.kv("checks", static_cast<std::uint64_t>(result.checks));
  w.kv("checks_holding", static_cast<std::uint64_t>(result.checks_holding));
  w.kv("quarantined", static_cast<std::uint64_t>(result.jobs_quarantined));
  w.kv("blocked", static_cast<std::uint64_t>(result.jobs_blocked));
  w.kv("all_hold", result.all_hold);
  w.end_object();
  w.key("jobs");
  w.begin_array();
  for (const JobRecord& r : result.records) {
    w.begin_object();
    w.kv("id", r.id);
    w.kv("inputs_hash", ContentCache::hex_key(r.inputs_hash));
    w.kv("stage", r.stage);
    w.kv("verdict", r.verdict);
    w.key("data");
    w.begin_object();
    const PointOutcome& o = r.outcome;
    if (r.stage == "build") {
      w.kv("nodes", o.nodes);
      w.kv("edges", o.edges);
      w.kv("cut", o.cut);
    } else if (r.stage == "solve-yes" || r.stage == "solve-no") {
      w.kv("opt", o.opt);
      if (o.approximate) w.kv("approximate", true);
    } else if (o.alg_weight >= 0) {
      // Algorithm-sweep check: the gap-sandwich record. alg_weight >= 0 is
      // the marker (claim/property checks never set it), so pre-existing
      // manifests keep their exact field set.
      w.kv("checked", o.checked);
      w.kv("alg_weight", o.alg_weight);
      w.kv("opt", o.opt);
      w.kv("bound_no", o.bound_no);
      w.kv("rounds", o.rounds);
      w.kv("round_bound", o.round_bound);
      w.kv("bits", o.bits);
      w.kv("nodes", o.nodes);
      w.kv("edges", o.edges);
    } else {
      w.kv("checked", o.checked);
      w.kv("min_matching", o.min_matching);
      w.kv("max_shared", o.max_shared);
      w.kv("yes_opt", o.yes_opt);
      w.kv("no_opt", o.no_opt);
      w.kv("bound_yes", o.bound_yes);
      w.kv("bound_no", o.bound_no);
      if (o.approximate) w.kv("approximate", true);
    }
    w.end_object();
    if (opts.include_volatile) {
      w.kv("wall_ms", r.wall_ms);
      w.kv("cache_hit", r.cache_hit);
      w.kv("resumed", r.resumed);
      w.kv("attempts", static_cast<std::uint64_t>(r.attempts));
      w.kv("backoff_us", r.backoff_us);
      if (!r.diagnostic.empty()) w.kv("diagnostic", r.diagnostic);
    }
    w.end_object();
  }
  w.end_array();
  if (opts.include_volatile) {
    w.key("volatile");
    w.begin_object();
    w.kv("threads", static_cast<std::uint64_t>(result.threads));
    w.kv("jobs_run", static_cast<std::uint64_t>(result.jobs_run));
    w.kv("jobs_resumed", static_cast<std::uint64_t>(result.jobs_resumed));
    w.kv("retries", result.retries);
    w.kv("wall_ms", result.total_wall_ms);
    w.key("cache");
    w.begin_object();
    w.kv("mem_hits", result.cache.mem_hits);
    w.kv("disk_hits", result.cache.disk_hits);
    w.kv("misses", result.cache.misses);
    w.kv("writes", result.cache.writes);
    w.kv("invalid", result.cache.invalid);
    w.end_object();
    if (opts.metrics != nullptr) {
      w.key("metrics");
      obs::append_metrics(w, *opts.metrics, "campaign.");
    }
    w.end_object();
  }
  w.end_object();
  os << "\n";
}

ParsedManifest read_manifest(std::string_view json_text) {
  const JsonValue doc = parse_json(json_text);
  CLB_EXPECT(doc.is_object(), "manifest: not a JSON object");
  const JsonValue* magic = doc.find("clb_campaign_manifest");
  CLB_EXPECT(magic != nullptr && magic->as_u64() == 1,
             "manifest: not a clb campaign manifest");

  ParsedManifest m;
  m.campaign = doc.at("campaign").as_string();
  m.spec_hash = parse_hex(doc.at("spec_hash").as_string(), "spec_hash");
  m.jobs_total = doc.at("jobs_total").as_u64();
  m.complete = doc.at("complete").as_bool();
  m.all_hold = doc.at("summary").at("all_hold").as_bool();

  for (const JsonValue& j : doc.at("jobs").as_array()) {
    JobRecord r;
    r.id = j.at("id").as_string();
    r.inputs_hash = parse_hex(j.at("inputs_hash").as_string(), "inputs_hash");
    r.stage = j.at("stage").as_string();
    r.verdict = j.at("verdict").as_string();
    const JsonValue& d = j.at("data");
    PointOutcome& o = r.outcome;
    if (const JsonValue* v = d.find("nodes")) o.nodes = v->as_u64();
    if (const JsonValue* v = d.find("edges")) o.edges = v->as_u64();
    if (const JsonValue* v = d.find("cut")) o.cut = v->as_u64();
    if (const JsonValue* v = d.find("opt")) o.opt = v->as_i64();
    if (const JsonValue* v = d.find("checked")) o.checked = v->as_u64();
    if (const JsonValue* v = d.find("min_matching")) {
      o.min_matching = v->as_u64();
    }
    if (const JsonValue* v = d.find("max_shared")) o.max_shared = v->as_u64();
    if (const JsonValue* v = d.find("yes_opt")) o.yes_opt = v->as_i64();
    if (const JsonValue* v = d.find("no_opt")) o.no_opt = v->as_i64();
    if (const JsonValue* v = d.find("bound_yes")) o.bound_yes = v->as_i64();
    if (const JsonValue* v = d.find("bound_no")) o.bound_no = v->as_i64();
    if (const JsonValue* v = d.find("alg_weight")) o.alg_weight = v->as_i64();
    if (const JsonValue* v = d.find("rounds")) o.rounds = v->as_u64();
    if (const JsonValue* v = d.find("round_bound")) {
      o.round_bound = v->as_u64();
    }
    if (const JsonValue* v = d.find("bits")) o.bits = v->as_u64();
    if (const JsonValue* v = d.find("approximate")) {
      o.approximate = v->as_bool();
    }
    o.holds = r.verdict == "holds";
    if (const JsonValue* v = j.find("wall_ms")) r.wall_ms = v->as_double();
    if (const JsonValue* v = j.find("cache_hit")) r.cache_hit = v->as_bool();
    if (const JsonValue* v = j.find("resumed")) r.resumed = v->as_bool();
    if (const JsonValue* v = j.find("attempts")) {
      r.attempts = static_cast<std::size_t>(v->as_u64());
    }
    if (const JsonValue* v = j.find("backoff_us")) r.backoff_us = v->as_u64();
    if (const JsonValue* v = j.find("diagnostic")) {
      r.diagnostic = v->as_string();
    }
    if (r.verdict == "quarantined") ++m.jobs_quarantined;
    if (r.verdict == "blocked") ++m.jobs_blocked;
    CLB_EXPECT(m.records.emplace(r.id, std::move(r)).second,
               "manifest: duplicate job id");
  }
  return m;
}

}  // namespace congestlb::campaign
