// Streaming CSR construction, the binary topology snapshot, and the
// block-aware edge-list text format.
//
// The contract: every path that round-trips a topology — streamed chunks,
// spill files, mmapped snapshots, text — must reproduce exactly what the
// in-memory builders produce, blocks included.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "congest/topology.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "support/expect.hpp"
#include "support/rng.hpp"

namespace congestlb::graph {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const char* tag) {
  return (fs::temp_directory_path() / (std::string("clb_io_test_") + tag))
      .string();
}

Graph random_graph(std::uint64_t seed, std::size_t n, std::size_t edges) {
  Graph g(n);
  Rng rng(seed);
  for (std::size_t e = 0; e < edges; ++e) {
    const auto u = static_cast<NodeId>(
        rng.range(0, static_cast<std::int64_t>(n) - 1));
    const auto v = static_cast<NodeId>(
        rng.range(0, static_cast<std::int64_t>(n) - 1));
    if (u == v || g.has_edge(u, v)) continue;
    g.add_edge(u, v);
  }
  return g;
}

TEST(StreamingCsrBuilder, MatchesExportCsr) {
  const Graph g = random_graph(42, 300, 900);
  const Csr want = export_csr(g);

  // Tiny chunks force many flushes.
  StreamingCsrBuilder::Options opts;
  opts.chunk_edges = 64;
  StreamingCsrBuilder b(g.num_nodes(), opts);
  for (auto [u, v] : edge_list(g)) b.add_edge(u, v);
  EXPECT_EQ(b.num_edges(), g.num_edges());
  const Csr got = b.finish();
  EXPECT_EQ(got.offsets, want.offsets);
  EXPECT_EQ(got.targets, want.targets);
}

TEST(StreamingCsrBuilder, SpillFileMatchesInMemory) {
  const Graph g = random_graph(7, 200, 600);
  const Csr want = export_csr(g);

  StreamingCsrBuilder::Options opts;
  opts.chunk_edges = 32;
  opts.spill_path = temp_path("spill");
  {
    StreamingCsrBuilder b(g.num_nodes(), opts);
    for (auto [u, v] : edge_list(g)) b.add_edge(u, v);
    const Csr got = b.finish();
    EXPECT_EQ(got.offsets, want.offsets);
    EXPECT_EQ(got.targets, want.targets);
  }
  // finish() removes its scratch file.
  EXPECT_FALSE(fs::exists(opts.spill_path));
}

TEST(StreamingCsrBuilder, DuplicateEdgeThrows) {
  StreamingCsrBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // same undirected edge, other orientation
  EXPECT_THROW(b.finish(), InvariantError);
}

TEST(StreamingCsrBuilder, RejectsBadEndpoints) {
  StreamingCsrBuilder b(4);
  EXPECT_THROW(b.add_edge(1, 1), InvariantError);
  EXPECT_THROW(b.add_edge(0, 4), InvariantError);
}

TEST(TopologySnapshot, RoundTripsBlockedTopology) {
  Graph g(40);
  g.set_implicit_block_threshold(1);
  g.add_clique(std::vector<NodeId>{0, 1, 2, 3, 4});
  g.add_anti_matching_grid(5, 4, 3, 4);
  for (NodeId v = 17; v + 1 < 40; ++v) g.add_edge(v, v + 1);
  g.add_edge(0, 39);
  g.set_weight(3, 7);
  g.set_weight(20, 5);

  const auto built = congest::Topology::build(g);
  MappedCsr snap;
  snap.n = built->n;
  snap.m = built->m;
  snap.implicit_edges = built->implicit_edges;
  snap.offsets = built->offsets;
  snap.targets = built->neighbors;
  snap.reverse_slot = built->reverse_slot;
  snap.weights = built->weights;
  snap.blocks = built->blocks;

  const std::string path = temp_path("snapshot");
  write_topology_snapshot(path, snap);
  const MappedCsr mapped = map_topology_snapshot(path);
  const auto restored = congest::Topology::from_snapshot(mapped);

  ASSERT_EQ(restored->n, built->n);
  ASSERT_EQ(restored->m, built->m);
  ASSERT_EQ(restored->implicit_edges, built->implicit_edges);
  ASSERT_EQ(restored->blocks, built->blocks);
  EXPECT_TRUE(std::equal(restored->offsets.begin(), restored->offsets.end(),
                         built->offsets.begin(), built->offsets.end()));
  EXPECT_TRUE(std::equal(restored->neighbors.begin(),
                         restored->neighbors.end(),
                         built->neighbors.begin(), built->neighbors.end()));
  EXPECT_TRUE(std::equal(restored->reverse_slot.begin(),
                         restored->reverse_slot.end(),
                         built->reverse_slot.begin(),
                         built->reverse_slot.end()));
  EXPECT_TRUE(std::equal(restored->weights.begin(), restored->weights.end(),
                         built->weights.begin(), built->weights.end()));

  // Query-level equivalence, explicit and implicit.
  for (NodeId v = 0; v < built->n; ++v) {
    ASSERT_EQ(restored->total_degree(v), built->total_degree(v));
    for (NodeId u = 0; u < built->n; ++u) {
      ASSERT_EQ(restored->has_edge(v, u), built->has_edge(v, u));
    }
    for (std::size_t s = 0; s < built->total_degree(v); ++s) {
      ASSERT_EQ(restored->neighbor_at(v, s), built->neighbor_at(v, s));
    }
  }
  fs::remove(path);
}

TEST(TopologySnapshot, RejectsTruncatedFile) {
  Graph g(8);
  for (NodeId v = 0; v + 1 < 8; ++v) g.add_edge(v, v + 1);
  const auto built = congest::Topology::build(g);
  MappedCsr snap;
  snap.n = built->n;
  snap.m = built->m;
  snap.offsets = built->offsets;
  snap.targets = built->neighbors;
  snap.reverse_slot = built->reverse_slot;
  snap.weights = built->weights;

  const std::string path = temp_path("truncated");
  write_topology_snapshot(path, snap);
  fs::resize_file(path, fs::file_size(path) / 2);
  EXPECT_THROW(map_topology_snapshot(path), InvariantError);
  fs::remove(path);
}

TEST(EdgeListText, RoundTripsBlocks) {
  Graph g(30);
  g.set_implicit_block_threshold(1);
  g.add_clique(std::vector<NodeId>{0, 1, 2, 3});
  g.add_biclique(std::vector<NodeId>{4, 5}, std::vector<NodeId>{6, 7, 8});
  g.add_anti_matching_grid(9, 5, 3, 4);
  g.add_edge(24, 25);
  g.add_edge(0, 29);
  g.set_weight(2, 11);

  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph back = read_edge_list(ss);
  EXPECT_EQ(back, g);
  EXPECT_EQ(back.num_implicit_edges(), g.num_implicit_edges());
}

TEST(EdgeListText, RejectsMalformedBlockRecords) {
  {
    std::stringstream ss("n 10\nb clique 5 5\n");
    EXPECT_THROW(read_edge_list(ss), InvariantError);
  }
  {
    std::stringstream ss("n 10\nb grid 0 2 2 4\n");  // stride < row_len
    EXPECT_THROW(read_edge_list(ss), InvariantError);
  }
  {
    std::stringstream ss("n 4\nb clique 0 9\n");  // out of bounds
    EXPECT_THROW(read_edge_list(ss), InvariantError);
  }
}

}  // namespace
}  // namespace congestlb::graph
