#include "maxis/brute_force.hpp"

#include <vector>

#include "support/expect.hpp"

namespace congestlb::maxis {

namespace {

struct BruteState {
  std::vector<std::uint64_t> adj;  ///< adjacency masks
  std::vector<Weight> weight;
  std::uint64_t best_mask = 0;
  Weight best = 0;

  void recurse(std::uint64_t candidates, std::uint64_t chosen, Weight acc,
               Weight potential) {
    if (acc > best) {
      best = acc;
      best_mask = chosen;
    }
    if (candidates == 0 || acc + potential <= best) return;
    // Pick the lowest candidate; branch include / exclude.
    const int v = __builtin_ctzll(candidates);
    const std::uint64_t bit = 1ULL << v;
    // Include v.
    recurse(candidates & ~adj[v] & ~bit, chosen | bit, acc + weight[v],
            potential - weight[v]);
    // Exclude v.
    recurse(candidates & ~bit, chosen, acc, potential - weight[v]);
  }
};

}  // namespace

IsSolution solve_brute_force(const graph::Graph& g) {
  const std::size_t n = g.num_nodes();
  CLB_EXPECT(n <= kBruteForceLimit, "brute force limited to tiny graphs");
  BruteState st;
  st.adj.assign(n, 0);
  st.weight.resize(n);
  Weight total = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    st.weight[v] = g.weight(v);
    CLB_EXPECT(st.weight[v] >= 0, "brute force requires nonnegative weights");
    total += st.weight[v];
    g.for_each_neighbor(v, [&](graph::NodeId nb) { st.adj[v] |= 1ULL << nb; });
  }
  const std::uint64_t all =
      n == 64 ? ~0ULL : ((1ULL << n) - 1);
  st.recurse(all, 0, 0, total);
  std::vector<NodeId> nodes;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (st.best_mask & (1ULL << v)) nodes.push_back(v);
  }
  return checked(g, std::move(nodes));
}

}  // namespace congestlb::maxis
