#include "support/alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::malloc(size ? size : 1);
  if (!p) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

namespace congestlb::allochook {

std::uint64_t allocation_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

std::uint64_t allocated_bytes() {
  return g_alloc_bytes.load(std::memory_order_relaxed);
}

bool hook_active() { return true; }

}  // namespace congestlb::allochook

// Replaceable global allocation functions ([new.delete]); every form routes
// through malloc/posix_memalign so any new/delete pairing stays consistent.

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
