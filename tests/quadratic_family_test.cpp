// The quadratic lower-bound family (Section 5): structure (Figures 4-6),
// input-edge semantics, Definition 4 locality (edges inside V^i only),
// Claims 6-7 and Lemma 3 gap behavior.

#include <gtest/gtest.h>

#include "comm/instances.hpp"
#include "lowerbound/framework.hpp"
#include "lowerbound/quadratic_family.hpp"
#include "maxis/branch_and_bound.hpp"
#include "support/expect.hpp"
#include "support/rng.hpp"

namespace congestlb::lb {
namespace {

GadgetParams small_params() { return GadgetParams::from_l_alpha(2, 1, 3); }

// --------------------------------------------------------------- structure --

TEST(QuadraticConstruction, NodeCountIsTwiceLinear) {
  const QuadraticConstruction c(small_params(), 2);
  EXPECT_EQ(c.num_nodes(), 2u * 2 * 12);
  EXPECT_EQ(c.string_length(), 9u);
}

TEST(QuadraticConstruction, FixedWeightsAreEllOnACliques) {
  const auto p = small_params();
  const QuadraticConstruction c(p, 2);
  const auto& g = c.fixed_graph();
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t b = 0; b < 2; ++b) {
      for (std::size_t m = 0; m < p.k; ++m) {
        EXPECT_EQ(g.weight(c.a_node(i, b, m)),
                  static_cast<graph::Weight>(p.ell));
      }
      EXPECT_EQ(g.weight(c.code_node(i, b, 0, 0)), 1);
    }
  }
}

TEST(QuadraticConstruction, BlocksAreNotConnectedInFixedGraph) {
  // G^1 and G^2 touch only through input edges (absent in F itself).
  const auto p = small_params();
  const QuadraticConstruction c(p, 2);
  const auto& g = c.fixed_graph();
  for (graph::NodeId u : c.partition(0)) {
    for (graph::NodeId v : c.partition(1)) {
      if (g.has_edge(u, v)) {
        // Any cross-player edge must stay within one block.
        // Block of a node: position within the player's span.
        const auto npc = p.nodes_per_copy();
        EXPECT_EQ((u % (2 * npc)) / npc, (v % (2 * npc)) / npc)
            << "edge " << u << "-" << v << " crosses blocks";
      }
    }
  }
}

TEST(QuadraticConstruction, CutMatchesFormulaAndIsCodeOnly) {
  for (std::size_t t : {1, 2, 3}) {
    const QuadraticConstruction c(small_params(), t);
    const auto cut = c.cut_edges();
    EXPECT_EQ(cut.size(), c.cut_size()) << "t=" << t;
    // 2 blocks * C(t,2) * (l+a) * p(p-1)
    EXPECT_EQ(c.cut_size(), 2 * (t * (t - 1) / 2) * 3 * 3 * 2);
  }
}

TEST(QuadraticConstruction, TEqualsOneHasEmptyCut) {
  const QuadraticConstruction c(small_params(), 1);
  EXPECT_EQ(c.cut_size(), 0u);
  EXPECT_TRUE(c.cut_edges().empty());
}

TEST(QuadraticConstruction, PairIndexLayout) {
  const QuadraticConstruction c(small_params(), 2);
  EXPECT_EQ(c.pair_index(0, 0), 0u);
  EXPECT_EQ(c.pair_index(1, 2), 5u);
  EXPECT_EQ(c.pair_index(2, 2), 8u);
  EXPECT_THROW(c.pair_index(3, 0), InvariantError);
}

// -------------------------------------------------------------- input edges --

TEST(QuadraticInstantiate, Figure6InputEdgeSemantics) {
  // Figure 6's example: x^1 has bit (1,1) = 0 (paper indexing), everything
  // else 1 -> exactly one input edge, at player 1 between v^(1,1)_1 and
  // v^(1,2)_1. In our 0-based indexing: bit (0,0) of player 0.
  const auto p = small_params();
  const QuadraticConstruction c(p, 2);
  comm::PromiseInstance inst;
  inst.k = 9;
  inst.t = 2;
  inst.kind = comm::PromiseKind::kUniquelyIntersecting;
  inst.strings = {std::vector<std::uint8_t>(9, 1),
                  std::vector<std::uint8_t>(9, 1)};
  inst.strings[0][c.pair_index(0, 0)] = 0;
  inst.witness = c.pair_index(1, 1);
  const auto g = c.instantiate(inst);
  EXPECT_EQ(g.num_edges(), c.fixed_graph().num_edges() + 1);
  EXPECT_TRUE(g.has_edge(c.a_node(0, 0, 0), c.a_node(0, 1, 0)));
  EXPECT_FALSE(g.has_edge(c.a_node(1, 0, 0), c.a_node(1, 1, 0)));
}

TEST(QuadraticInstantiate, AllZeroStringsGiveCompleteInputBicliquePattern) {
  const auto p = small_params();
  const QuadraticConstruction c(p, 2);
  comm::PromiseInstance inst;
  inst.k = 9;
  inst.t = 2;
  inst.kind = comm::PromiseKind::kPairwiseDisjoint;
  inst.strings = {std::vector<std::uint8_t>(9, 0),
                  std::vector<std::uint8_t>(9, 0)};
  const auto g = c.instantiate(inst);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t m1 = 0; m1 < p.k; ++m1) {
      for (std::size_t m2 = 0; m2 < p.k; ++m2) {
        EXPECT_TRUE(g.has_edge(c.a_node(i, 0, m1), c.a_node(i, 1, m2)));
      }
    }
  }
}

TEST(QuadraticInstantiate, RejectsWrongStringLength) {
  const QuadraticConstruction c(small_params(), 2);
  Rng rng(3);
  const auto wrong = comm::make_pairwise_disjoint(8, 2, rng);
  EXPECT_THROW(c.instantiate(wrong), InvariantError);
}

// ---------------------------------------------------- Definition 4 locality --

TEST(QuadraticFamily, Definition4Condition1EdgesInsideOwnPart) {
  const auto p = small_params();
  const std::size_t t = 3;
  const QuadraticConstruction c(p, t);
  Rng rng(13);
  for (std::size_t i = 0; i < t; ++i) {
    const auto a = comm::make_pairwise_disjoint(c.string_length(), t, rng, 0.4);
    auto b = a;
    for (std::size_t pos = i; pos < c.string_length(); pos += t) {
      b.strings[i][pos] ^= 1;
    }
    if (comm::classify(b.strings) != comm::InstanceClass::kPairwiseDisjoint) {
      continue;
    }
    const auto [lo, hi] = c.partition_range(i);
    const auto diff =
        verify_partition_locality(c.instantiate(a), c.instantiate(b), lo, hi);
    EXPECT_TRUE(diff.ok) << "player " << i;
    EXPECT_GT(diff.edge_diffs_inside, 0u);   // the flips changed edges
    EXPECT_EQ(diff.weight_diffs_inside, 0u);  // quadratic family: edges only
  }
}

// ------------------------------------------------------------- gap claims --

struct QuadCase {
  std::size_t ell, alpha, k, t;
};

class QuadClaimSweep : public ::testing::TestWithParam<QuadCase> {};

TEST_P(QuadClaimSweep, Claim6YesInstancesReachTheBound) {
  const auto [ell, alpha, k, t] = GetParam();
  const auto p = GadgetParams::from_l_alpha(ell, alpha, k);
  const QuadraticConstruction c(p, t);
  Rng rng(500 + t);
  for (int trial = 0; trial < 2; ++trial) {
    const auto inst =
        comm::make_uniquely_intersecting(c.string_length(), t, rng, 0.3);
    const auto g = c.instantiate(inst);
    const std::size_t m1 = *inst.witness / k;
    const std::size_t m2 = *inst.witness % k;
    const auto witness = c.yes_witness(m1, m2);
    ASSERT_TRUE(g.is_independent_set(witness));
    EXPECT_EQ(g.weight_of(witness), c.yes_weight());
    EXPECT_GE(maxis::solve_exact(g).weight, c.yes_weight());
  }
}

TEST_P(QuadClaimSweep, Claim7NoInstancesStayBelowTheBound) {
  const auto [ell, alpha, k, t] = GetParam();
  const auto p = GadgetParams::from_l_alpha(ell, alpha, k);
  const QuadraticConstruction c(p, t);
  Rng rng(600 + t);
  for (int trial = 0; trial < 2; ++trial) {
    const auto inst =
        comm::make_pairwise_disjoint(c.string_length(), t, rng, 0.4);
    const auto g = c.instantiate(inst);
    EXPECT_LE(maxis::solve_exact(g).weight, c.no_bound())
        << "ell=" << ell << " k=" << k << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QuadClaimSweep,
    ::testing::Values(QuadCase{2, 1, 3, 3}, QuadCase{2, 1, 3, 2},
                      QuadCase{3, 1, 4, 2}, QuadCase{4, 1, 5, 2},
                      QuadCase{4, 1, 5, 3}, QuadCase{3, 2, 9, 2}));

TEST(Claim7, InductionBaseTIsOne) {
  // t = 1: any IS weighs at most 4*ell + 2*alpha <= 3(t+1)l + 3at^3 = 6l+3a.
  const auto p = GadgetParams::from_l_alpha(3, 1, 4);
  const QuadraticConstruction c(p, 1);
  Rng rng(7);
  // Build a 1-player "instance" manually (t=1 bypasses the t >= 2 generator
  // requirement).
  comm::PromiseInstance inst;
  inst.k = c.string_length();
  inst.t = 1;
  inst.kind = comm::PromiseKind::kPairwiseDisjoint;
  inst.strings = {std::vector<std::uint8_t>(inst.k, 0)};
  for (auto& bit : inst.strings[0]) bit = rng.chance(0.5) ? 1 : 0;
  // A single string is trivially pairwise disjoint... but classify requires
  // 2 strings; instantiate validates, so duplicate-free path: construct via
  // fixed graph + manual edges instead.
  graph::Graph g = c.fixed_graph();
  for (std::size_t m1 = 0; m1 < p.k; ++m1) {
    for (std::size_t m2 = 0; m2 < p.k; ++m2) {
      if (!inst.strings[0][c.pair_index(m1, m2)]) {
        g.add_edge(c.a_node(0, 0, m1), c.a_node(0, 1, m2));
      }
    }
  }
  EXPECT_LE(maxis::solve_exact(g).weight, 4 * 3 + 2 * 1);
}

// --------------------------------------------------------------- Lemma 3 --

TEST(Lemma3, HardnessRatioApproachesThreeQuarters) {
  // Formula-level (the graphs at these parameters are astronomically
  // large): with alpha*t^3 << ell the ratio is 3(t+1)/(4t) -> 3/4.
  double prev = 10.0;
  for (std::size_t t : {12, 16, 24, 40}) {
    const double ratio = quadratic_hardness_ratio_formula(1 << 24, 1, t);
    EXPECT_LT(ratio, prev);
    EXPECT_GT(ratio, 0.75);
    prev = ratio;
  }
  EXPECT_LT(prev, 0.78);  // t = 40: 3*41/160 + tiny
  // Consistency with the constructed object at a buildable size.
  const auto p = GadgetParams::from_l_alpha(3, 1, 4);
  const QuadraticConstruction c(p, 2);
  EXPECT_DOUBLE_EQ(c.hardness_ratio(),
                   quadratic_hardness_ratio_formula(3, 1, 2));
}

TEST(Lemma3, PlayersForEpsilon) {
  EXPECT_EQ(quadratic_players_for_epsilon(0.2), 3u);   // ceil(3/0.8 - 1)
  EXPECT_EQ(quadratic_players_for_epsilon(0.1), 7u);   // ceil(7.5 - 1) = 7
  EXPECT_EQ(quadratic_players_for_epsilon(0.01), 74u);
  EXPECT_THROW(quadratic_players_for_epsilon(0.0), InvariantError);
  EXPECT_THROW(quadratic_players_for_epsilon(0.25), InvariantError);
}

TEST(Lemma3, MeasuredGapAtSmallScale) {
  // At benchable sizes the *loose* Claim-7 bound does not separate, but the
  // measured OPT gap is already real: NO-instances land strictly below the
  // YES weight.
  const auto p = GadgetParams::from_l_alpha(4, 1, 5);
  const QuadraticConstruction c(p, 2);
  Rng rng(77);
  for (int trial = 0; trial < 3; ++trial) {
    const auto yes =
        comm::make_uniquely_intersecting(c.string_length(), 2, rng, 0.3);
    const auto no = comm::make_pairwise_disjoint(c.string_length(), 2, rng, 0.3);
    const auto wy = maxis::solve_exact(c.instantiate(yes)).weight;
    const auto wn = maxis::solve_exact(c.instantiate(no)).weight;
    EXPECT_GE(wy, c.yes_weight());
    EXPECT_LT(wn, wy);
  }
}

}  // namespace
}  // namespace congestlb::lb
