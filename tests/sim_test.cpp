// Theorem 5 end-to-end: t players simulate a CONGEST algorithm on the
// lower-bound graphs, cut messages land on the blackboard, the gap
// predicate answers promise disjointness, and the bit accounting holds.

#include <gtest/gtest.h>

#include "congest/algorithms/universal_maxis.hpp"
#include "congest/algorithms/weighted_greedy.hpp"
#include "maxis/branch_and_bound.hpp"
#include "sim/reduction.hpp"
#include "support/expect.hpp"
#include "support/rng.hpp"

namespace congestlb::sim {
namespace {

congest::LocalMaxIsSolver exact_solver() {
  return [](const graph::Graph& g) { return maxis::solve_exact(g).nodes; };
}

congest::NetworkConfig universal_cfg(std::size_t n, graph::Weight max_w) {
  congest::NetworkConfig cfg;
  cfg.bits_per_edge = congest::universal_required_bits(n, max_w);
  cfg.max_rounds = 200'000;
  return cfg;
}

class LinearReductionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinearReductionSweep, UniversalAlgorithmDecidesBothBranches) {
  const std::size_t t = 2 + GetParam() % 2;  // t in {2, 3}
  const auto p = lb::GadgetParams::for_linear_separation(t, 1,
                                                         std::min<std::size_t>(4, t + 2));
  const lb::LinearConstruction c(p, t);
  Rng rng(GetParam());
  for (bool intersecting : {true, false}) {
    const auto inst =
        intersecting
            ? comm::make_uniquely_intersecting(p.k, t, rng, 0.4)
            : comm::make_pairwise_disjoint(p.k, t, rng, 0.4);
    comm::Blackboard board(t);
    const auto rep = run_linear_reduction(
        c, inst, congest::universal_maxis_factory(exact_solver()), board,
        universal_cfg(c.num_nodes(), static_cast<graph::Weight>(p.ell)));
    EXPECT_TRUE(rep.algorithm_finished);
    EXPECT_TRUE(rep.correct) << "branch intersecting=" << intersecting;
    EXPECT_TRUE(rep.accounting_ok);
    EXPECT_EQ(rep.decided_disjoint, !intersecting);
    EXPECT_GT(rep.blackboard_entries, 0u);
    EXPECT_LE(rep.blackboard_bits, rep.theorem5_budget);
    EXPECT_EQ(rep.cut_edges, c.cut_size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearReductionSweep,
                         ::testing::Values(1, 2, 3, 4));

TEST(LinearReduction, BlackboardChargesOnlyCutTraffic) {
  const std::size_t t = 2;
  const auto p = lb::GadgetParams::for_linear_separation(t, 1, 3);
  const lb::LinearConstruction c(p, t);
  Rng rng(11);
  const auto inst = comm::make_uniquely_intersecting(p.k, t, rng, 0.4);
  comm::Blackboard board(t);
  const auto rep = run_linear_reduction(
      c, inst, congest::universal_maxis_factory(exact_solver()), board,
      universal_cfg(c.num_nodes(), static_cast<graph::Weight>(p.ell)));
  // Cut traffic is a strict subset of total traffic (the copies talk
  // internally a lot).
  EXPECT_LT(rep.blackboard_bits, rep.total_bits);
  // Every entry is tagged with a cut edge whose endpoints have different
  // owners.
  for (const auto& entry : board.transcript()) {
    EXPECT_LT(entry.player, t);
    EXPECT_NE(entry.tag.find("msg"), std::string::npos);
  }
}

TEST(LinearReduction, ApproximateAlgorithmStillAccountsCorrectly) {
  // weighted-greedy is not exact, so the decision may be wrong — but the
  // Theorem-5 *accounting* must hold regardless of the algorithm.
  const std::size_t t = 2;
  const auto p = lb::GadgetParams::for_linear_separation(t, 1, 3);
  const lb::LinearConstruction c(p, t);
  Rng rng(13);
  const auto inst = comm::make_uniquely_intersecting(p.k, t, rng, 0.4);
  comm::Blackboard board(t);
  congest::NetworkConfig cfg;
  cfg.max_rounds = 100'000;
  const auto rep = run_linear_reduction(c, inst,
                                        congest::weighted_greedy_factory(),
                                        board, cfg);
  EXPECT_TRUE(rep.algorithm_finished);
  EXPECT_TRUE(rep.accounting_ok);
  EXPECT_GT(rep.computed_weight, 0);
}

TEST(QuadraticReduction, UniversalAlgorithmEndToEnd) {
  // Small quadratic instance, t = 2. At this scale the loose Claim-7 bound
  // does not separate, but the exact-OPT decision rule (weight >= yes)
  // still answers correctly on intersecting instances and the accounting
  // always holds.
  const auto p = lb::GadgetParams::from_l_alpha(3, 1, 3);
  const lb::QuadraticConstruction c(p, 2);
  Rng rng(17);
  const auto inst =
      comm::make_uniquely_intersecting(c.string_length(), 2, rng, 0.5);
  comm::Blackboard board(2);
  const auto rep = run_quadratic_reduction(
      c, inst, congest::universal_maxis_factory(exact_solver()), board,
      universal_cfg(c.num_nodes(), static_cast<graph::Weight>(p.ell)));
  EXPECT_TRUE(rep.algorithm_finished);
  EXPECT_TRUE(rep.accounting_ok);
  EXPECT_FALSE(rep.decided_disjoint);  // YES branch: weight >= yes_weight
  EXPECT_TRUE(rep.correct);
  EXPECT_GT(rep.blackboard_entries, 0u);
}

TEST(QuadraticReduction, NoBranchDecidedByExactOptimum) {
  // At small scale the loose Claim-7 bound does not separate, but the
  // exact optimum on pairwise-disjoint inputs stays strictly below the
  // YES weight (measured in bench_gap_quadratic), so the exact-algorithm
  // decision rule is still correct on the NO branch.
  const auto p = lb::GadgetParams::from_l_alpha(3, 1, 3);
  const lb::QuadraticConstruction c(p, 2);
  Rng rng(23);
  const auto inst =
      comm::make_pairwise_disjoint(c.string_length(), 2, rng, 0.5);
  comm::Blackboard board(2);
  const auto rep = run_quadratic_reduction(
      c, inst, congest::universal_maxis_factory(exact_solver()), board,
      universal_cfg(c.num_nodes(), static_cast<graph::Weight>(p.ell)));
  EXPECT_TRUE(rep.algorithm_finished);
  EXPECT_TRUE(rep.decided_disjoint);
  EXPECT_TRUE(rep.correct);
  EXPECT_LT(rep.computed_weight, rep.yes_weight);
}

TEST(Reduction, RejectsForeignObserver) {
  const auto p = lb::GadgetParams::for_linear_separation(2, 1, 3);
  const lb::LinearConstruction c(p, 2);
  Rng rng(3);
  const auto inst = comm::make_pairwise_disjoint(p.k, 2, rng, 0.3);
  comm::Blackboard board(2);
  congest::NetworkConfig cfg;
  cfg.on_message = [](std::size_t, graph::NodeId, graph::NodeId,
                      const congest::Message&) {};
  EXPECT_THROW(run_linear_reduction(c, inst,
                                    congest::weighted_greedy_factory(), board,
                                    cfg),
               InvariantError);
}

TEST(Reduction, RejectsMismatchedBlackboard) {
  const auto p = lb::GadgetParams::for_linear_separation(3, 1, 4);
  const lb::LinearConstruction c(p, 3);
  Rng rng(3);
  const auto inst = comm::make_pairwise_disjoint(p.k, 3, rng, 0.3);
  comm::Blackboard board(2);  // wrong player count
  EXPECT_THROW(run_linear_reduction(c, inst,
                                    congest::weighted_greedy_factory(), board,
                                    {}),
               InvariantError);
}

}  // namespace
}  // namespace congestlb::sim
