#include "comm/instances.hpp"

#include <algorithm>

#include "support/expect.hpp"

namespace congestlb::comm {

namespace {

void check_kt(std::size_t k, std::size_t t) {
  CLB_EXPECT(t >= 2, "promise instances need t >= 2 players");
  CLB_EXPECT(k >= t, "promise instances need k >= t");
}

/// Split [k] \ {excluded} into t nearly-equal chunks; returns per-player
/// index pools.
std::vector<std::vector<std::size_t>> disjoint_pools(
    std::size_t k, std::size_t t, std::optional<std::size_t> excluded) {
  std::vector<std::vector<std::size_t>> pools(t);
  std::size_t next_player = 0;
  for (std::size_t m = 0; m < k; ++m) {
    if (excluded && *excluded == m) continue;
    pools[next_player].push_back(m);
    next_player = (next_player + 1) % t;
  }
  return pools;
}

}  // namespace

InstanceClass classify(const std::vector<std::vector<std::uint8_t>>& strings) {
  CLB_EXPECT(strings.size() >= 2, "classify: need at least 2 strings");
  const std::size_t k = strings[0].size();
  for (const auto& s : strings) {
    CLB_EXPECT(s.size() == k, "classify: ragged string lengths");
    for (std::uint8_t b : s) CLB_EXPECT(b <= 1, "classify: non-binary entry");
  }
  // Common index?
  for (std::size_t m = 0; m < k; ++m) {
    bool all = true;
    for (const auto& s : strings) {
      if (!s[m]) {
        all = false;
        break;
      }
    }
    if (all) return InstanceClass::kUniquelyIntersecting;
  }
  // Pairwise disjoint?
  for (std::size_t i = 0; i < strings.size(); ++i) {
    for (std::size_t j = i + 1; j < strings.size(); ++j) {
      for (std::size_t m = 0; m < k; ++m) {
        if (strings[i][m] && strings[j][m]) {
          return InstanceClass::kPromiseViolation;
        }
      }
    }
  }
  return InstanceClass::kPairwiseDisjoint;
}

PromiseInstance make_uniquely_intersecting(std::size_t k, std::size_t t,
                                           Rng& rng, double density) {
  check_kt(k, t);
  PromiseInstance inst;
  inst.k = k;
  inst.t = t;
  inst.kind = PromiseKind::kUniquelyIntersecting;
  inst.witness = static_cast<std::size_t>(rng.below(k));
  inst.strings.assign(t, std::vector<std::uint8_t>(k, 0));
  auto pools = disjoint_pools(k, t, inst.witness);
  for (std::size_t i = 0; i < t; ++i) {
    inst.strings[i][*inst.witness] = 1;
    for (std::size_t m : pools[i]) {
      if (rng.chance(density)) inst.strings[i][m] = 1;
    }
  }
  return inst;
}

PromiseInstance make_loose_intersecting(std::size_t k, std::size_t t, Rng& rng,
                                        double density) {
  check_kt(k, t);
  PromiseInstance inst;
  inst.k = k;
  inst.t = t;
  inst.kind = PromiseKind::kUniquelyIntersecting;
  inst.witness = static_cast<std::size_t>(rng.below(k));
  inst.strings.assign(t, std::vector<std::uint8_t>(k, 0));
  for (std::size_t i = 0; i < t; ++i) {
    inst.strings[i][*inst.witness] = 1;
    for (std::size_t m = 0; m < k; ++m) {
      if (m != *inst.witness && rng.chance(density)) inst.strings[i][m] = 1;
    }
  }
  return inst;
}

PromiseInstance make_pairwise_disjoint(std::size_t k, std::size_t t, Rng& rng,
                                       double density) {
  check_kt(k, t);
  PromiseInstance inst;
  inst.k = k;
  inst.t = t;
  inst.kind = PromiseKind::kPairwiseDisjoint;
  inst.strings.assign(t, std::vector<std::uint8_t>(k, 0));
  auto pools = disjoint_pools(k, t, std::nullopt);
  for (std::size_t i = 0; i < t; ++i) {
    for (std::size_t m : pools[i]) {
      if (rng.chance(density)) inst.strings[i][m] = 1;
    }
  }
  return inst;
}

const PromiseInstance& validate(const PromiseInstance& inst) {
  CLB_EXPECT(inst.strings.size() == inst.t, "instance: wrong player count");
  const InstanceClass cls = classify(inst.strings);
  CLB_EXPECT(cls != InstanceClass::kPromiseViolation,
             "instance violates the pairwise-disjointness promise");
  const bool want_intersecting =
      inst.kind == PromiseKind::kUniquelyIntersecting;
  CLB_EXPECT((cls == InstanceClass::kUniquelyIntersecting) ==
                 want_intersecting,
             "instance kind does not match its strings");
  if (want_intersecting) {
    CLB_EXPECT(inst.witness.has_value(), "intersecting instance lacks witness");
    for (const auto& s : inst.strings) {
      CLB_EXPECT(s[*inst.witness] == 1, "witness index not set for a player");
    }
  }
  return inst;
}

}  // namespace congestlb::comm
