#include "support/thread_pool.hpp"

namespace congestlb {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads > 1) {
    workers_.reserve(num_threads - 1);
    for (std::size_t i = 0; i + 1 < num_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::drain() {
  while (true) {
    const std::size_t s = next_shard_.fetch_add(1, std::memory_order_relaxed);
    if (s >= num_shards_) break;
    (*task_)(s);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_ready_.wait(
          lk, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
    }
    drain();
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--active_workers_ == 0) batch_done_.notify_all();
    }
  }
}

void ThreadPool::run(std::size_t num_shards,
                     const std::function<void(std::size_t)>& fn) {
  if (workers_.empty()) {
    for (std::size_t s = 0; s < num_shards; ++s) fn(s);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    task_ = &fn;
    num_shards_ = num_shards;
    next_shard_.store(0, std::memory_order_relaxed);
    active_workers_ = workers_.size();
    ++generation_;
  }
  work_ready_.notify_all();
  drain();  // the calling thread participates
  std::unique_lock<std::mutex> lk(mu_);
  batch_done_.wait(lk, [&] { return active_workers_ == 0; });
  task_ = nullptr;
}

}  // namespace congestlb
