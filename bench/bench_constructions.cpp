// Experiments F1-F6: regenerate the paper's figures as concrete graphs.
//
// Figure 1: the base graph H at ell = 2, alpha = 1, k = 3.
// Figure 2: the anti-matching between C^i_h and C^j_h.
// Figure 3: the 3-player linear construction and its Property-1 IS.
// Figures 4-6: the quadratic construction F for t = 2 and its input edges.
//
// Each figure is emitted both as a summary table (stdout) and as a
// Graphviz .dot file under ./figures/ for visual comparison with the paper.

#include <filesystem>
#include <fstream>
#include <iostream>

#include "comm/instances.hpp"
#include "graph/io.hpp"
#include "lowerbound/linear_family.hpp"
#include "lowerbound/quadratic_family.hpp"
#include "maxis/branch_and_bound.hpp"
#include "support/table.hpp"

namespace clb = congestlb;
using clb::Table;

namespace {

void dump_dot(const std::string& name, const clb::graph::Graph& g,
              const clb::graph::DotOptions& opts) {
  std::filesystem::create_directories("figures");
  std::ofstream out("figures/" + name + ".dot");
  clb::graph::write_dot(out, g, opts);
  std::cout << "  wrote figures/" << name << ".dot (" << g.num_nodes()
            << " nodes, " << g.num_edges() << " edges)\n";
}

void figure1() {
  clb::print_heading(std::cout, "Figure 1 — base graph H (ell=2, alpha=1, k=3)");
  const auto p = clb::lb::GadgetParams::from_l_alpha(2, 1, 3);
  const clb::lb::BaseGadget h(p);

  Table t({"object", "paper", "built"});
  t.row("clique A size (k)", 3, p.k);
  t.row("code cliques (ell+alpha)", 3, p.num_positions());
  t.row("clique size", "3", std::to_string(p.clique_size()));
  t.row("nodes", 12, h.graph().num_nodes());
  t.row("|E(A)|", 3, 3);
  t.row("total edges", "30", std::to_string(h.graph().num_edges()));
  t.print(std::cout);

  // The Figure-1 statement: v_1 is connected to all of Code except Code_1.
  const auto cw = h.codeword_nodes(0);
  std::size_t non_neighbors = 0;
  for (clb::graph::NodeId u : h.code_nodes()) {
    if (!h.graph().has_edge(h.a_node(0), u)) ++non_neighbors;
  }
  std::cout << "  v1 non-neighbors in Code: " << non_neighbors
            << " (= |Code_1| = " << cw.size() << ") -> "
            << (non_neighbors == cw.size() ? "matches Figure 1" : "MISMATCH")
            << "\n";

  clb::graph::DotOptions opts;
  for (std::size_t m = 0; m < p.k; ++m) opts.cluster[h.a_node(m)] = "A";
  for (std::size_t pos = 0; pos < p.num_positions(); ++pos) {
    for (std::size_t r = 0; r < p.clique_size(); ++r) {
      opts.cluster[h.code_node(pos, r)] = "C" + std::to_string(pos + 1);
    }
  }
  dump_dot("figure1_base_gadget", h.graph(), opts);
}

void figure2() {
  clb::print_heading(std::cout,
                     "Figure 2 — anti-matching between C^i_h and C^j_h (p=3)");
  const auto p = clb::lb::GadgetParams::from_l_alpha(2, 1, 3);
  const clb::lb::LinearConstruction c(p, 2);
  std::cout << "  adjacency of sigma^1_(1,r) x sigma^2_(1,r') "
               "(1 = edge; diagonal must be 0):\n";
  for (std::size_t r1 = 0; r1 < p.clique_size(); ++r1) {
    std::cout << "    ";
    for (std::size_t r2 = 0; r2 < p.clique_size(); ++r2) {
      std::cout << (c.fixed_graph().has_edge(c.code_node(0, 0, r1),
                                             c.code_node(1, 0, r2))
                        ? "1 "
                        : "0 ");
    }
    std::cout << "\n";
  }
}

void figure3() {
  clb::print_heading(std::cout,
                     "Figure 3 — 3-player construction, Property-1 witness");
  const auto p = clb::lb::GadgetParams::from_l_alpha(2, 1, 3);
  const clb::lb::LinearConstruction c(p, 3);
  Table t({"object", "paper", "built"});
  t.row("players t", 3, c.num_players());
  t.row("nodes", 36, c.num_nodes());
  t.row("cut edges", "t(t-1)/2*(l+a)*p(p-1) = 54",
        std::to_string(c.cut_edges().size()));
  t.print(std::cout);

  const auto witness = c.yes_witness(0);
  std::cout << "  {v^i_1} U Code^i_1 over i=1..3: independent = "
            << (c.fixed_graph().is_independent_set(witness) ? "yes" : "NO")
            << ", size = " << witness.size() << " (paper: t(1+l+a) = 12)\n";

  clb::graph::DotOptions opts;
  for (std::size_t i = 0; i < 3; ++i) {
    for (clb::graph::NodeId v : c.partition(i)) {
      opts.cluster[v] = "V^" + std::to_string(i + 1);
    }
  }
  dump_dot("figure3_linear_t3", c.fixed_graph(), opts);
}

void figures456() {
  clb::print_heading(std::cout,
                     "Figures 4-6 — quadratic construction F (t=2)");
  const auto p = clb::lb::GadgetParams::from_l_alpha(2, 1, 3);
  const clb::lb::QuadraticConstruction c(p, 2);
  Table t({"object", "paper", "built"});
  t.row("nodes", "2t * |V_H copy| = 48", std::to_string(c.num_nodes()));
  t.row("string length k^2", 9, c.string_length());
  t.row("A-node weight", "ell = 2",
        std::to_string(c.fixed_graph().weight(c.a_node(0, 0, 0))));
  t.row("cut edges", "2*C(t,2)*(l+a)*p(p-1) = 36",
        std::to_string(c.cut_edges().size()));
  t.print(std::cout);

  // Figure 6: x^1_(1,1) = 0, everything else 1 -> exactly one input edge.
  clb::comm::PromiseInstance inst;
  inst.k = 9;
  inst.t = 2;
  inst.kind = clb::comm::PromiseKind::kUniquelyIntersecting;
  inst.strings = {std::vector<std::uint8_t>(9, 1),
                  std::vector<std::uint8_t>(9, 1)};
  inst.strings[0][c.pair_index(0, 0)] = 0;
  inst.witness = c.pair_index(1, 1);
  const auto fx = c.instantiate(inst);
  std::cout << "  Figure 6 input-edge check: added edges = "
            << fx.num_edges() - c.fixed_graph().num_edges()
            << " (paper: 1), placed at v^(1,1)_1 -- v^(1,2)_1: "
            << (fx.has_edge(c.a_node(0, 0, 0), c.a_node(0, 1, 0)) ? "yes"
                                                                  : "NO")
            << "\n";

  clb::graph::DotOptions opts;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t b = 0; b < 2; ++b) {
      const auto base = c.a_node(i, b, 0);
      for (std::size_t off = 0; off < p.nodes_per_copy(); ++off) {
        opts.cluster[base + off] =
            "V^(" + std::to_string(i + 1) + "," + std::to_string(b + 1) + ")";
      }
    }
  }
  dump_dot("figure5_quadratic_t2", fx, opts);
}

}  // namespace

int main() {
  std::cout << "=== bench_constructions: Figures 1-6 as built objects ===\n";
  figure1();
  figure2();
  figure3();
  figures456();
  std::cout << "\nAll construction checks completed.\n";
  return 0;
}
