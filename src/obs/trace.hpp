// Round-level structured tracing for the CONGEST engine.
//
// The paper's lower bounds are statements about exact per-round, per-edge
// communication (Lemmas 1-3 charge cut-crossing bits round by round;
// Theorem 5 sums them), so the engine needs telemetry at exactly that
// granularity: which message crossed which directed edge in which round,
// and what the fault layer did to it. A Tracer records fixed-size POD
// TraceEvents into a preallocated ring buffer; exporters (obs/export.hpp)
// turn the ring into Chrome trace_event JSON or a canonical text form, and
// the property suite replays it against RunStats and the cut-bit
// accounting.
//
// Determinism contract: a traced run produces a bit-identical event
// sequence for every NetworkConfig::num_threads. The engine stages events
// from parallel phases into per-(phase, shard) buffers and seals each round
// by draining phase 0's shards in shard order, then phase 1's — since
// shards are contiguous ascending node ranges and each shard emits in
// ascending node order, the sealed order is the global ascending node order
// regardless of the shard count.
//
// Cost contract: the zero-allocation steady state of the engine survives
// tracing. All buffers are sized when the engine binds the tracer
// (Tracer::bind); emit/seal never allocate — a full staging buffer or ring
// drops events (counted in dropped()) instead of growing. Compiling with
// CONGESTLB_TRACE=0 (cmake -DCONGESTLB_TRACE=OFF) turns every emit path
// into a no-op that the optimizer deletes; at runtime, a null
// NetworkConfig::tracer or a zero-capacity ring disables recording, and a
// sample_period > 1 traces only every k-th round.

#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#ifndef CONGESTLB_TRACE
#define CONGESTLB_TRACE 1
#endif

namespace congestlb::obs {

/// True when the tracer is compiled into this build (the CONGESTLB_TRACE
/// kill switch); tests skip trace assertions when it is off.
constexpr bool trace_compiled_in() { return CONGESTLB_TRACE != 0; }

/// What one TraceEvent describes. Delivery kinds are disjoint so that event
/// counts reconcile exactly with RunStats: messages_sent = #kDeliver +
/// #kDeliverCorrupt + #kDeliverEcho, messages_dropped = #kDrop, and so on.
enum class EventKind : std::uint8_t {
  kRoundBegin = 0,    ///< value = number of nodes; round starts
  kRoundEnd,          ///< value = messages delivered this round
  kSend,              ///< a -> b, value = bits queued on the edge
  kDeliver,           ///< a -> b delivered untouched, value = bits
  kDeliverCorrupt,    ///< a -> b delivered with flipped bits, value = bits
  kDeliverEcho,       ///< a -> b duplication-fault echo, value = bits
  kDrop,              ///< a -> b lost (drop fault or crashed receiver)
  kCrash,             ///< node a crash-stops this round
  kRecover,           ///< node a recovers this round
  kCrashScheduled,    ///< plan: node a will crash at round `round`
  kRecoverScheduled,  ///< plan: node a will recover at round `round`
  kPhase,             ///< algorithm/driver phase mark, value = phase id
  kBlackboardPost,    ///< player a posts value bits; round = entry index
};

/// Stable name for an event kind ("deliver", "drop", ...).
const char* to_string(EventKind kind);

/// One structured trace record. 24-byte POD: fits a cache line pair per
/// ring slot and copies with memcpy semantics.
struct TraceEvent {
  static constexpr std::uint32_t kNone = ~std::uint32_t{0};

  std::uint64_t value = 0;        ///< bits / count / phase id (see kind)
  std::uint32_t round = 0;
  std::uint32_t a = kNone;        ///< node / sender / player
  std::uint32_t b = kNone;        ///< receiver (kNone when unary)
  EventKind kind = EventKind::kRoundBegin;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

struct TraceConfig {
  /// Ring capacity in events. 0 disables the tracer entirely. When the
  /// ring is full the oldest events are overwritten (dropped() counts
  /// them), so a bounded ring always holds the newest window.
  std::size_t capacity = std::size_t{1} << 16;
  /// Trace round r iff r % sample_period == 0. Must be >= 1. Reconciliation
  /// against RunStats requires 1 (every round) and dropped() == 0.
  std::size_t sample_period = 1;
  /// Record kSend events (compute phase). Delivery events alone suffice for
  /// bit accounting; sends roughly double the event volume.
  bool record_sends = true;
};

class Tracer {
 public:
  explicit Tracer(TraceConfig config = {});

  /// Recording is possible: compiled in and nonzero ring capacity.
  bool enabled() const { return trace_compiled_in() && config_.capacity > 0; }

  /// Should round `round` be traced?
  bool sampled(std::size_t round) const {
    return enabled() && round % config_.sample_period == 0;
  }

  const TraceConfig& config() const { return config_; }

  /// Engine binding: preallocate 2 * num_shards staging buffers (phase 0 =
  /// compute, phase 1 = deliver) of per_shard_capacity events each, plus
  /// the ring. Serial context only; the one place the tracer allocates.
  void bind(std::size_t num_shards, std::size_t per_shard_capacity);

  /// Record from phase `phase` (0 or 1) of shard `shard`. Safe to call
  /// concurrently for distinct (phase, shard); never allocates — a full
  /// staging buffer counts the event as dropped at seal time.
  void emit_shard(std::size_t phase, std::size_t shard, const TraceEvent& ev) {
    if constexpr (!trace_compiled_in()) {
      (void)phase, (void)shard, (void)ev;
      return;
    } else {
      Stage& st = stage_[phase * num_shards_ + shard];
      if (st.len < st.buf.size()) {
        st.buf[st.len++] = ev;
      } else {
        ++st.overflow;
      }
    }
  }

  /// Drain staging buffers into the ring in the canonical order (phase 0
  /// shards ascending, then phase 1 shards ascending). Serial context.
  void seal_round();

  /// Append directly to the ring (serial contexts: round begin/end, phase
  /// marks, blackboard posts).
  void emit(const TraceEvent& ev) {
    if constexpr (!trace_compiled_in()) {
      (void)ev;
      return;
    } else {
      push(ev);
    }
  }

  /// Events currently held, oldest first (allocates; not for hot paths).
  std::vector<TraceEvent> events() const;

  /// Tail the ring as a feed: every event whose global sequence number is
  /// >= `since`, oldest first, where event seq numbers run 0,1,2,... in
  /// recording order (recorded() is the next seq to be assigned). Events
  /// the ring has already overwritten are simply gone — a consumer that
  /// falls more than `capacity` events behind observes a gap, detectable
  /// as *next > since + result.size(). Sets *next to the seq to pass as
  /// `since` on the next call (never null). Serial context, like events().
  std::vector<TraceEvent> events_since(std::uint64_t since,
                                       std::uint64_t* next) const;

  /// Events currently in the ring.
  std::size_t size() const { return count_; }
  /// Events ever recorded into the ring (including later overwritten).
  std::uint64_t recorded() const { return recorded_; }
  /// Events lost: overwritten by ring wrap-around plus staging overflow.
  std::uint64_t dropped() const { return dropped_; }

  /// Empty the ring and reset counters; bindings and capacity survive.
  void clear();

 private:
  struct Stage {
    std::vector<TraceEvent> buf;
    std::size_t len = 0;
    std::uint64_t overflow = 0;
  };

  void push(const TraceEvent& ev);

  TraceConfig config_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;   ///< index of the oldest event
  std::size_t count_ = 0;  ///< events in the ring
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<Stage> stage_;  ///< 2 * num_shards_ entries, phase-major
  std::size_t num_shards_ = 0;
};

/// Canonical text form, one event per line: "<round> <kind> <a> <b>
/// <value>" with kNone printed as '-'. Byte-stable across platforms and
/// thread counts — the format the golden-trace test diffs.
void write_canonical(std::ostream& os, std::span<const TraceEvent> events);

}  // namespace congestlb::obs
