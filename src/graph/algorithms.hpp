// Basic graph algorithms: BFS distances, connectivity, diameter.
//
// The paper notes its lower bounds hold "even for constant diameter graphs";
// the diameter routine lets tests assert that property on the gadget
// instances. Connectivity is also a precondition for running CONGEST
// algorithms globally.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace congestlb::graph {

/// Distance (in hops) from `source` to every node; unreachable nodes get
/// kInfiniteDistance.
inline constexpr std::size_t kInfiniteDistance = static_cast<std::size_t>(-1);
std::vector<std::size_t> bfs_distances(const Graph& g, NodeId source);

/// True iff the graph is connected (vacuously true for the empty graph).
bool is_connected(const Graph& g);

/// Connected-component id per node (ids are dense, in discovery order).
std::vector<std::size_t> connected_components(const Graph& g);

/// Exact diameter via n BFS runs. Requires a connected non-empty graph.
std::size_t diameter(const Graph& g);

/// Greedy (first-fit, descending-degree order) proper coloring. Returns the
/// color of every node; uses at most max_degree+1 colors. Used as a cheap
/// clique-cover heuristic on complements and for test baselines.
std::vector<std::size_t> greedy_coloring(const Graph& g);

}  // namespace congestlb::graph
