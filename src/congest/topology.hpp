// Immutable flat topology snapshot for the CONGEST engine.
//
// Built once per graph and shared (read-only) by every phase of the
// simulator, including all worker threads of the parallel round executor.
// The layout is CSR: neighbors of v occupy neighbors[offsets[v] ..
// offsets[v+1]), sorted ascending. A *directed slot* is an index into that
// range — slot d = offsets[u] + s addresses the edge u -> neighbors[d].
//
// The precomputed reverse_slot map is what removes the per-message binary
// search from the delivery hot path: for directed slot d = (u, s) with
// v = neighbors[d], reverse_slot[d] is the position of u in v's neighbor
// list, so the receiver-side slot of the message u -> v is
// offsets[v] + reverse_slot[d], an O(1) lookup.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace congestlb::congest {

using graph::NodeId;

struct Topology {
  std::size_t n = 0;  ///< nodes
  std::size_t m = 0;  ///< undirected edges; 2m directed slots

  std::vector<std::size_t> offsets;        ///< size n+1
  std::vector<NodeId> neighbors;           ///< size 2m, sorted per node
  std::vector<std::uint32_t> reverse_slot; ///< size 2m, see file comment
  std::vector<graph::Weight> weights;      ///< size n

  std::size_t degree(NodeId v) const { return offsets[v + 1] - offsets[v]; }

  std::span<const NodeId> neighbors_of(NodeId v) const {
    return {neighbors.data() + offsets[v], degree(v)};
  }

  static constexpr std::size_t kNoSlot = ~static_cast<std::size_t>(0);

  /// Position of u in v's neighbor list, or kNoSlot when {u,v} is not an
  /// edge. O(log deg) — used only off the hot path (bits_on_edge).
  std::size_t slot_of(NodeId v, NodeId u) const;

  /// Snapshot g's adjacency. The graph may be mutated or destroyed
  /// afterwards; the topology is self-contained.
  static std::shared_ptr<const Topology> build(const graph::Graph& g);
};

/// Edge-tiled shard partition: `num_shards` contiguous [begin, end) node
/// ranges whose boundaries balance per-shard cost, where node v costs
/// degree(v) + 1 — directed message slots dominate both engine phases, the
/// +1 keeps degree-0 nodes from all landing in one shard's compute phase.
/// Unlike an equal-node split, a high-degree gadget hub (the clique/biclique
/// blocks of the paper's F_x̄/G_x̄ constructions) gets a shard of its own
/// instead of skewing whichever shard its id falls into.
///
/// A pure function of (topology, num_shards) — never of thread scheduling —
/// so the parallel round executor built on it stays bit-identical to serial
/// for every thread count. Shards may be empty; ranges cover [0, n) in
/// order.
std::vector<std::pair<NodeId, NodeId>> edge_tiled_shards(
    const Topology& topo, std::size_t num_shards);

}  // namespace congestlb::congest
