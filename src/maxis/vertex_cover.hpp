// Minimum (weighted) vertex cover.
//
// VC is MaxIS's complement — C is a vertex cover iff V \ C is independent,
// so min-VC weight = total weight - MaxIS weight. The paper's introduction
// uses VC as the second example of the two-party framework's limits ([4]
// showed the framework cannot rule out (3/2)-approximations for MVC);
// bench_baselines measures that ratio on our hard instances. The weighted
// 2-approximation is Bar-Yehuda & Even's local-ratio algorithm.

#pragma once

#include <span>

#include "maxis/verify.hpp"

namespace congestlb::maxis {

struct VcSolution {
  std::vector<NodeId> nodes;  ///< sorted ascending
  Weight weight = 0;
};

/// True iff every edge of g has at least one endpoint in `nodes`.
bool is_vertex_cover(const graph::Graph& g, std::span<const NodeId> nodes);

/// Validate and tally a vertex cover (throws if it is not one).
VcSolution checked_cover(const graph::Graph& g, std::vector<NodeId> nodes);

/// The complement V \ is of an independent set — always a vertex cover.
VcSolution cover_from_independent_set(const graph::Graph& g,
                                      std::span<const NodeId> is);

/// Exact minimum weighted vertex cover via exact MaxIS (branch and bound).
VcSolution solve_vertex_cover_exact(const graph::Graph& g);

/// Bar-Yehuda & Even local-ratio 2-approximation for weighted VC: sweep
/// the edges, on each uncovered edge pay min(residual(u), residual(v)) on
/// both endpoints, take every vertex whose residual hits zero.
VcSolution solve_vertex_cover_local_ratio(const graph::Graph& g);

/// Unweighted 2-approximation via greedy maximal matching (both endpoints
/// of every matched edge). Weights are ignored for selection, included in
/// the reported weight.
VcSolution solve_vertex_cover_matching(const graph::Graph& g);

}  // namespace congestlb::maxis
