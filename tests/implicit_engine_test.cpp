// Bit-identity contract between the hybrid (implicit-block) engine and the
// materialized engine.
//
// A topology carrying ImplicitBlock descriptors runs the broadcast engine:
// O(n)-per-round arenas, arithmetic delivery counters, NeighborsView
// cursors. This suite pins the contract that licenses all of it: on the
// SAME graph, blocked and materialized representations must produce
// identical RunStats, program outputs, per-edge traffic, and observer
// transcripts — for every thread count. (The CI build matrix re-runs this
// binary under each CLB_SIMD level, covering the SIMD axis.)

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "congest/message.hpp"
#include "congest/network.hpp"
#include "graph/graph.hpp"
#include "lowerbound/linear_family.hpp"
#include "lowerbound/params.hpp"
#include "support/rng.hpp"

namespace congestlb::congest {
namespace {

struct FullEntry {
  std::size_t round;
  graph::NodeId from;
  graph::NodeId to;
  std::size_t bits;
  std::vector<std::byte> data;

  friend bool operator==(const FullEntry&, const FullEntry&) = default;
};

struct RunRecord {
  RunStats stats;
  std::vector<std::int64_t> outputs;
  std::vector<std::uint64_t> edge_bits;
  std::vector<FullEntry> transcript;

  friend bool operator==(const RunRecord&, const RunRecord&) = default;
};

/// Broadcast flood: every round each node sends (id ^ sum-of-heard) to all
/// neighbors. The payload depends on the whole inbox, so any divergence in
/// delivery order, inbox iteration, or neighbor ranking shows up as a
/// different byte stream within a round or two.
class MixFlood final : public NodeProgram {
 public:
  explicit MixFlood(std::size_t rounds_to_run) : rounds_to_run_(rounds_to_run) {}

  void round(const NodeInfo& info, const Inbox& inbox, Outbox& outbox,
             Rng&) override {
    std::uint64_t mix = 0;
    for (const auto& m : inbox) {
      if (m) mix += MessageReader(*m).get(24);
    }
    // Random access through the hybrid Inbox's counting-select path too.
    if (inbox.size() > 1) {
      const auto& probe = inbox[inbox.size() / 2];
      if (probe) mix ^= MessageReader(*probe).get(24);
    }
    acc_ = acc_ * 31 + mix;
    ++rounds_seen_;
    if (rounds_seen_ > rounds_to_run_ || info.neighbors.empty()) return;
    const std::uint64_t payload =
        (static_cast<std::uint64_t>(info.id) ^ mix) & 0xFFFFFF;
    outbox.send_all(std::move(MessageWriter().put(payload, 24)).finish());
  }
  bool finished() const override { return rounds_seen_ > rounds_to_run_; }
  std::int64_t output() const override {
    return static_cast<std::int64_t>(acc_ & 0x7FFFFFFFFFFFFFFFULL);
  }

 private:
  std::size_t rounds_to_run_;
  std::size_t rounds_seen_ = 0;
  std::uint64_t acc_ = 0;
};

RunRecord run_once(const graph::Graph& g,
                   const std::vector<std::pair<graph::NodeId, graph::NodeId>>&
                       probe_edges,
                   std::size_t rounds, std::size_t num_threads) {
  RunRecord rec;
  NetworkConfig cfg;
  cfg.num_threads = num_threads;
  cfg.bits_per_edge = 32;
  cfg.broadcast_only = true;
  cfg.on_message = [&rec](std::size_t round, graph::NodeId from,
                          graph::NodeId to, const Message& msg) {
    rec.transcript.push_back(
        {round, from, to, msg.bits,
         std::vector<std::byte>(msg.data.begin(), msg.data.end())});
  };
  Network net(
      g,
      [rounds](graph::NodeId, const NodeInfo&) {
        return std::make_unique<MixFlood>(rounds);
      },
      cfg);
  rec.stats = net.run();
  rec.outputs = net.outputs();
  for (auto [u, v] : probe_edges) {
    rec.edge_bits.push_back(net.bits_on_edge(u, v));
  }
  return rec;
}

/// A random mixed graph: clique + biclique + grid blocks in dedicated id
/// ranges plus random explicit edges (skipping pairs a block already
/// covers). Returned with blocks recorded; materialize for the twin.
graph::Graph mixed_graph(std::uint64_t seed, std::size_t extra_nodes) {
  const std::size_t n = 24 + extra_nodes;
  graph::Graph g(n);
  g.set_implicit_block_threshold(1);
  g.add_clique(std::vector<graph::NodeId>{0, 1, 2, 3, 4});
  g.add_biclique(std::vector<graph::NodeId>{5, 6, 7},
                 std::vector<graph::NodeId>{8, 9, 10});
  g.add_anti_matching_grid(11, 4, 3, 4);  // nodes [11, 23)
  Rng rng(seed);
  const std::size_t want = n + n / 2;
  for (std::size_t e = 0; e < want; ++e) {
    const auto u = static_cast<graph::NodeId>(
        rng.range(0, static_cast<std::int64_t>(n) - 1));
    const auto v = static_cast<graph::NodeId>(
        rng.range(0, static_cast<std::int64_t>(n) - 1));
    if (u == v || g.has_edge(u, v)) continue;
    g.add_edge(std::min(u, v), std::max(u, v));
  }
  return g;
}

TEST(ImplicitEngine, BitIdenticalToMaterializedAcrossThreads) {
  for (std::uint64_t seed : {1ULL, 7ULL, 1234ULL}) {
    for (std::size_t extra : {std::size_t{0}, std::size_t{40}}) {
      const graph::Graph blocked = mixed_graph(seed, extra);
      ASSERT_TRUE(blocked.has_implicit_blocks());
      const graph::Graph dense = blocked.materialized();
      const auto probe = graph::edge_list(dense);

      const RunRecord reference = run_once(dense, probe, 6, 1);
      for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                  std::size_t{8}}) {
        const RunRecord hybrid = run_once(blocked, probe, 6, threads);
        const RunRecord materialized = run_once(dense, probe, 6, threads);
        EXPECT_EQ(hybrid, reference)
            << "hybrid diverged: seed=" << seed << " extra=" << extra
            << " threads=" << threads;
        EXPECT_EQ(materialized, reference)
            << "dense diverged: seed=" << seed << " extra=" << extra
            << " threads=" << threads;
      }
    }
  }
}

TEST(ImplicitEngine, NeighborsViewMatchesMaterializedSpans) {
  const graph::Graph blocked = mixed_graph(99, 20);
  const graph::Graph dense = blocked.materialized();
  const auto bt = Topology::build(blocked);
  const auto dt = Topology::build(dense);
  ASSERT_TRUE(bt->has_implicit());
  for (graph::NodeId v = 0; v < bt->n; ++v) {
    ASSERT_EQ(bt->total_degree(v), dt->degree(v)) << "node " << v;
    NeighborsView hv(bt.get(), v, bt->total_degree(v));
    NeighborsView dv(dt->neighbors.data() + dt->offsets[v], dt->degree(v));
    ASSERT_EQ(hv.size(), dv.size());
    // Indexed access (counting-select) and iteration (neighbor_after chain).
    for (std::size_t i = 0; i < hv.size(); ++i) {
      ASSERT_EQ(hv[i], dv[i]) << "node " << v << " slot " << i;
    }
    ASSERT_EQ(std::vector<graph::NodeId>(hv.begin(), hv.end()),
              std::vector<graph::NodeId>(dv.begin(), dv.end()))
        << "node " << v;
  }
  // Shard boundaries balance on the same merged costs.
  for (std::size_t shards : {1, 2, 5, 16}) {
    EXPECT_EQ(edge_tiled_shards(*bt, shards), edge_tiled_shards(*dt, shards));
  }
}

TEST(ImplicitEngine, LinearFamilyBlockedTwinIsBitIdentical) {
  const auto params = lb::GadgetParams::from_l_alpha(3, 1);
  const std::size_t t = 3;
  const lb::LinearConstruction plain(params, t);
  lb::BuildOptions opts;
  opts.implicit_threshold = 1;
  opts.skip_labels = true;
  const lb::LinearConstruction blocked(params, t, opts);

  ASSERT_TRUE(blocked.fixed_graph().has_implicit_blocks());
  ASSERT_EQ(blocked.fixed_graph().num_edges(), plain.fixed_graph().num_edges());
  EXPECT_EQ(graph::edge_list(blocked.fixed_graph().materialized()),
            graph::edge_list(plain.fixed_graph()));
  EXPECT_EQ(blocked.cut_edges(), plain.cut_edges());
  EXPECT_EQ(blocked.cut_edges().size(), blocked.cut_size());

  const auto probe = plain.cut_edges();
  const RunRecord a = run_once(plain.fixed_graph(), probe, 4, 2);
  const RunRecord b = run_once(blocked.fixed_graph(), probe, 4, 2);
  EXPECT_EQ(a, b);
}

TEST(ImplicitEngine, HybridRejectsNonUniformSends) {
  // A program that sends to a single slot violates the broadcast-uniform
  // requirement of implicit topologies and must trip the engine invariant.
  class OneSlot final : public NodeProgram {
   public:
    void round(const NodeInfo& info, const Inbox&, Outbox& outbox,
               Rng&) override {
      if (!info.neighbors.empty() && info.id == 0) {
        outbox.send(0, std::move(MessageWriter().put(1, 8)).finish());
      }
      done_ = true;
    }
    bool finished() const override { return done_; }

   private:
    bool done_ = false;
  };

  graph::Graph g(6);
  g.set_implicit_block_threshold(1);
  g.add_clique(std::vector<graph::NodeId>{0, 1, 2, 3, 4, 5});
  Network net(g, [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<OneSlot>();
  });
  EXPECT_THROW(net.run(), InvariantError);
}

TEST(ImplicitEngine, HybridRejectsFaultsAndMetrics) {
  graph::Graph g(6);
  g.set_implicit_block_threshold(1);
  g.add_clique(std::vector<graph::NodeId>{0, 1, 2, 3, 4, 5});
  const ProgramFactory factory = [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<MixFlood>(1);
  };
  NetworkConfig faulty;
  faulty.faults.drop_rate = 0.5;
  EXPECT_THROW(Network(g, factory, faulty), InvariantError);
}

}  // namespace
}  // namespace congestlb::congest
