// CONGEST simulator core: message bit-packing, bandwidth enforcement,
// synchronous delivery semantics, determinism, broadcast restriction, the
// message observer hook, and run statistics.

#include <gtest/gtest.h>

#include "congest/message.hpp"
#include "congest/network.hpp"
#include "graph/graph.hpp"
#include "support/expect.hpp"

namespace congestlb::congest {
namespace {

// ----------------------------------------------------------------- message --

TEST(Message, WriterReaderRoundTrip) {
  MessageWriter w;
  w.put(5, 3).put(0, 1).put(1023, 10).put(~0ULL >> 1, 63);
  Message m = std::move(w).finish();
  EXPECT_EQ(m.bits, 3u + 1 + 10 + 63);
  MessageReader r(m);
  EXPECT_EQ(r.get(3), 5u);
  EXPECT_EQ(r.get(1), 0u);
  EXPECT_EQ(r.get(10), 1023u);
  EXPECT_EQ(r.get(63), ~0ULL >> 1);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Message, WriterRejectsOverflowAndBadWidth) {
  MessageWriter w;
  EXPECT_THROW(w.put(8, 3), InvariantError);   // 8 needs 4 bits
  EXPECT_THROW(w.put(0, 0), InvariantError);   // zero width
  EXPECT_THROW(w.put(0, 65), InvariantError);  // too wide
}

TEST(Message, ReaderRejectsOverrun) {
  Message m = std::move(MessageWriter().put(3, 2)).finish();
  MessageReader r(m);
  EXPECT_EQ(r.get(2), 3u);
  EXPECT_THROW(r.get(1), InvariantError);
}

TEST(Message, CrossByteBoundary) {
  MessageWriter w;
  w.put(0b101, 3).put(0b110011, 6).put(0b1, 1);
  Message m = std::move(w).finish();
  MessageReader r(m);
  EXPECT_EQ(r.get(3), 0b101u);
  EXPECT_EQ(r.get(6), 0b110011u);
  EXPECT_EQ(r.get(1), 1u);
}

// ------------------------------------------------------------- test programs --

/// Sends its id to all neighbors for `rounds_to_run` rounds; records ids
/// heard.
class EchoProgram final : public NodeProgram {
 public:
  explicit EchoProgram(std::size_t rounds_to_run)
      : rounds_to_run_(rounds_to_run) {}

  void round(const NodeInfo& info, const Inbox& inbox, Outbox& outbox,
             Rng&) override {
    for (std::size_t s = 0; s < inbox.size(); ++s) {
      if (inbox[s]) {
        MessageReader r(*inbox[s]);
        heard_.push_back(r.get(16));
      }
    }
    ++rounds_seen_;
    if (rounds_seen_ > rounds_to_run_) return;
    Message m = std::move(MessageWriter().put(info.id, 16)).finish();
    for (std::size_t s = 0; s < info.neighbors.size(); ++s) {
      outbox.send(s, m);
    }
  }
  bool finished() const override { return rounds_seen_ > rounds_to_run_; }
  std::int64_t output() const override {
    return static_cast<std::int64_t>(heard_.size());
  }

 private:
  std::size_t rounds_to_run_;
  std::size_t rounds_seen_ = 0;
  std::vector<std::uint64_t> heard_;
};

/// Sends an oversized message to its first neighbor.
class OversizeProgram final : public NodeProgram {
 public:
  void round(const NodeInfo& info, const Inbox&, Outbox& outbox, Rng&) override {
    if (info.neighbors.empty()) return;
    MessageWriter w;
    for (std::size_t i = 0; i <= info.bits_per_edge; ++i) w.put(1, 1);
    outbox.send(0, std::move(w).finish());
  }
  bool finished() const override { return false; }
};

/// Sends different messages to different neighbors (illegal in broadcast
/// mode).
class PersonalizedProgram final : public NodeProgram {
 public:
  void round(const NodeInfo& info, const Inbox&, Outbox& outbox, Rng&) override {
    for (std::size_t s = 0; s < info.neighbors.size(); ++s) {
      outbox.send(s, std::move(MessageWriter().put(s & 1, 1)).finish());
    }
    done_ = true;
  }
  bool finished() const override { return done_; }

 private:
  bool done_ = false;
};

graph::Graph triangle() {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  return g;
}

/// 16-bit payloads need more than the tiny auto budget of a 3-node graph.
NetworkConfig echo_cfg() {
  NetworkConfig cfg;
  cfg.bits_per_edge = 16;
  return cfg;
}

// ----------------------------------------------------------------- network --

TEST(Network, AutoBandwidthIsLogarithmic) {
  EXPECT_EQ(congest_bandwidth_bits(2), 4u);
  EXPECT_EQ(congest_bandwidth_bits(1024), 40u);
  EXPECT_EQ(congest_bandwidth_bits(1025), 44u);
  // The budget is constexpr so program tables can embed it at compile time.
  static_assert(congest_bandwidth_bits(0) == 4);
  static_assert(congest_bandwidth_bits(2) == 4);
  static_assert(congest_bandwidth_bits(1024) == 40);
  static_assert(congest_bandwidth_bits(1 << 20) == 80);
}

TEST(Network, DeliversNextRound) {
  auto g = triangle();
  Network net(g, [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<EchoProgram>(1);
  }, echo_cfg());
  const RunStats stats = net.run();
  EXPECT_TRUE(stats.all_finished);
  // Round 1: everyone sends to both neighbors (6 messages); round 2:
  // delivered; nothing further.
  EXPECT_EQ(stats.messages_sent, 6u);
  for (graph::NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(net.program(v).output(), 2) << "node " << v;
  }
}

TEST(Network, RoundCountMatchesProgramLifetime) {
  auto g = triangle();
  Network net(g, [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<EchoProgram>(5);
  }, echo_cfg());
  const RunStats stats = net.run();
  // 5 sending rounds + 1 final quiet round to finish.
  EXPECT_EQ(stats.rounds, 6u);
  EXPECT_EQ(stats.messages_sent, 5u * 6);
}

TEST(Network, BandwidthEnforced) {
  auto g = triangle();
  Network net(g, [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<OversizeProgram>();
  });
  EXPECT_THROW(net.run(), InvariantError);
}

TEST(Network, CustomBandwidthHonored) {
  auto g = triangle();
  NetworkConfig cfg;
  cfg.bits_per_edge = 16;  // exactly the echo payload
  Network net(g, [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<EchoProgram>(1);
  }, cfg);
  EXPECT_NO_THROW(net.run());
  NetworkConfig tight;
  tight.bits_per_edge = 15;
  Network net2(g, [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<EchoProgram>(1);
  }, tight);
  EXPECT_THROW(net2.run(), InvariantError);
}

TEST(Network, BitAccounting) {
  auto g = triangle();
  Network net(g, [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<EchoProgram>(2);
  }, echo_cfg());
  const RunStats stats = net.run();
  EXPECT_EQ(stats.bits_sent, stats.messages_sent * 16);
  // Each edge carried 2 rounds x 2 directions x 16 bits.
  EXPECT_EQ(net.bits_on_edge(0, 1), 64u);
  EXPECT_EQ(net.bits_on_edge(1, 2), 64u);
  EXPECT_THROW(net.bits_on_edge(0, 0), InvariantError);
}

TEST(Network, MessageObserverSeesEverything) {
  auto g = triangle();
  std::size_t observed = 0;
  std::uint64_t observed_bits = 0;
  NetworkConfig cfg = echo_cfg();
  cfg.on_message = [&](std::size_t, graph::NodeId, graph::NodeId,
                       const Message& m) {
    ++observed;
    observed_bits += m.bits;
  };
  Network net(g, [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<EchoProgram>(3);
  }, cfg);
  const RunStats stats = net.run();
  EXPECT_EQ(observed, stats.messages_sent);
  EXPECT_EQ(observed_bits, stats.bits_sent);
}

TEST(Network, BroadcastModeRejectsPersonalizedMessages) {
  auto g = triangle();
  NetworkConfig cfg;
  cfg.broadcast_only = true;
  Network net(g, [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<PersonalizedProgram>();
  }, cfg);
  EXPECT_THROW(net.run(), InvariantError);
}

TEST(Network, BroadcastModeAllowsUniformMessages) {
  auto g = triangle();
  NetworkConfig cfg = echo_cfg();
  cfg.broadcast_only = true;
  Network net(g, [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<EchoProgram>(1);
  }, cfg);
  EXPECT_NO_THROW(net.run());
}

TEST(Network, MaxRoundsStopsRunaway) {
  auto g = triangle();
  NetworkConfig cfg = echo_cfg();
  cfg.max_rounds = 7;
  Network net(g, [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<EchoProgram>(1'000'000);
  }, cfg);
  const RunStats stats = net.run();
  EXPECT_EQ(stats.rounds, 7u);
  EXPECT_FALSE(stats.all_finished);
}

TEST(Network, RunRoundsExecutesExactly) {
  auto g = triangle();
  Network net(g, [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<EchoProgram>(100);
  }, echo_cfg());
  net.run_rounds(3);
  EXPECT_EQ(net.rounds_executed(), 3u);
  net.run_rounds(2);
  EXPECT_EQ(net.rounds_executed(), 5u);
}

TEST(Network, EmptyGraphRejected) {
  graph::Graph g(0);
  EXPECT_THROW(Network(g,
                       [](graph::NodeId, const NodeInfo&) {
                         return std::make_unique<EchoProgram>(1);
                       }),
               InvariantError);
}

TEST(Network, NullFactoryRejected) {
  auto g = triangle();
  EXPECT_THROW(
      Network(g, [](graph::NodeId, const NodeInfo&)
                  -> std::unique_ptr<NodeProgram> { return nullptr; }),
      InvariantError);
}

TEST(Network, NodeInfoIsAccurate) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.set_weight(0, 42);
  Network net(g, [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<EchoProgram>(0);
  });
  const NodeInfo& info = net.info(0);
  EXPECT_EQ(info.id, 0u);
  EXPECT_EQ(info.n, 4u);
  EXPECT_EQ(info.weight, 42);
  EXPECT_EQ(std::vector<graph::NodeId>(info.neighbors.begin(),
                                       info.neighbors.end()),
            (std::vector<graph::NodeId>{1, 2, 3}));
  EXPECT_EQ(std::vector<graph::NodeId>(net.info(1).neighbors.begin(),
                                       net.info(1).neighbors.end()),
            (std::vector<graph::NodeId>{0}));
}

TEST(Network, OutputsVectorCoversAllNodes) {
  auto g = triangle();
  Network net(g, [](graph::NodeId id, const NodeInfo&) {
    return std::make_unique<EchoProgram>(id == 0 ? 0 : 1);
  }, echo_cfg());
  net.run();
  const auto outs = net.outputs();
  ASSERT_EQ(outs.size(), 3u);
  // Node 0 sent nothing, so nodes 1 and 2 heard only each other.
  EXPECT_EQ(outs[0], 2);  // node 0 heard both senders
  EXPECT_EQ(outs[1], 1);
  EXPECT_EQ(outs[2], 1);
  const auto sel = net.selected_nodes();
  EXPECT_EQ(sel.size(), 3u);  // all nonzero
}

TEST(Network, RunAfterCompletionIsIdempotent) {
  auto g = triangle();
  Network net(g, [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<EchoProgram>(2);
  }, echo_cfg());
  const RunStats first = net.run();
  ASSERT_TRUE(first.all_finished);
  const RunStats again = net.run();
  EXPECT_EQ(again.rounds, first.rounds);
  EXPECT_EQ(again.messages_sent, first.messages_sent);
}

TEST(Network, StatsAccumulateAcrossRunRounds) {
  auto g = triangle();
  Network net(g, [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<EchoProgram>(10);
  }, echo_cfg());
  net.run_rounds(4);
  const auto mid = net.stats().messages_sent;
  net.run_rounds(4);
  EXPECT_GT(net.stats().messages_sent, mid);
  EXPECT_EQ(net.rounds_executed(), 8u);
}

TEST(Network, ResumeDeliversInFlightMessages) {
  // Messages sent in round r are consumed in round r+1 — including when
  // the network is paused between the two. A single stepped round leaves
  // every payload in flight; the next stepped round must deliver them.
  auto g = triangle();
  Network net(g, [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<EchoProgram>(1);
  }, echo_cfg());
  net.run_rounds(1);
  auto outs = net.outputs();
  EXPECT_EQ(outs, (std::vector<std::int64_t>{0, 0, 0}));  // all in flight
  net.run_rounds(1);
  outs = net.outputs();
  EXPECT_EQ(outs, (std::vector<std::int64_t>{2, 2, 2}));  // all delivered
}

TEST(Network, MaxRoundsEnforcedAcrossRepeatedRunRounds) {
  auto g = triangle();
  NetworkConfig cfg = echo_cfg();
  cfg.max_rounds = 5;
  Network net(g, [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<EchoProgram>(1'000'000);
  }, cfg);
  net.run_rounds(3);
  EXPECT_EQ(net.rounds_executed(), 3u);
  net.run_rounds(10);  // would overshoot; must clamp at max_rounds
  EXPECT_EQ(net.rounds_executed(), 5u);
  net.run_rounds(1);
  EXPECT_EQ(net.rounds_executed(), 5u);
  EXPECT_FALSE(net.stats().all_finished);
}

TEST(Network, RunAfterRunRoundsRespectsMaxRounds) {
  auto g = triangle();
  NetworkConfig cfg = echo_cfg();
  cfg.max_rounds = 6;
  Network net(g, [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<EchoProgram>(1'000'000);
  }, cfg);
  net.run_rounds(4);
  const RunStats stats = net.run();
  EXPECT_EQ(stats.rounds, 6u);
  EXPECT_FALSE(stats.all_finished);
}

TEST(Outbox, OneMessagePerNeighborPerRound) {
  Outbox out(2);
  out.send(0, std::move(MessageWriter().put(1, 1)).finish());
  EXPECT_THROW(out.send(0, std::move(MessageWriter().put(1, 1)).finish()),
               InvariantError);
  EXPECT_THROW(out.send(2, std::move(MessageWriter().put(1, 1)).finish()),
               InvariantError);
  Message empty;
  EXPECT_THROW(out.send(1, empty), InvariantError);
}

TEST(Outbox, EnforcesBandwidthAtSendTime) {
  Outbox out(2, /*cap_bits=*/8);
  out.send(0, std::move(MessageWriter().put(0xFF, 8)).finish());  // exactly B
  EXPECT_THROW(out.send(1, std::move(MessageWriter().put(0x1FF, 9)).finish()),
               InvariantError);
  EXPECT_FALSE(out.has(1)) << "rejected message must not occupy the slot";
}

TEST(Network, OversendThrowsFromSendEvenIfFaultWouldDropIt) {
  // The cap is a program-correctness check: it fires inside Outbox::send,
  // before the fault schedule could possibly lose the message.
  class Oversender final : public NodeProgram {
   public:
    void round(const NodeInfo& info, const Inbox&, Outbox& outbox,
               Rng&) override {
      outbox.send_all(std::move(MessageWriter()
                                    .put(0, info.bits_per_edge)
                                    .put(1, 1))
                          .finish());
    }
    bool finished() const override { return false; }
  };
  auto g = triangle();
  NetworkConfig cfg;
  cfg.bits_per_edge = 4;
  cfg.faults.drop_rate = 1.0;  // every message would be dropped anyway
  Network net(g, [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<Oversender>();
  }, cfg);
  EXPECT_THROW(net.run(), InvariantError);
}

}  // namespace
}  // namespace congestlb::congest
