#include "support/simd.hpp"

#include <cstdlib>
#include <string>

#include "support/expect.hpp"

namespace congestlb::simd {

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "?";
}

bool level_compiled(Level level) {
  switch (level) {
    case Level::kScalar:
      return detail::scalar_table() != nullptr;
    case Level::kAvx2:
      return detail::avx2_table() != nullptr;
    case Level::kAvx512:
      return detail::avx512_table() != nullptr;
  }
  return false;
}

namespace {

bool cpu_supports(Level level) {
#if defined(__x86_64__) || defined(__i386__)
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Level::kAvx512:
      // The avx512 table uses vpopcntq (VPOPCNTDQ, Ice Lake+) besides the
      // F/BW/DQ/VL core; a Skylake-X class CPU falls back to AVX2.
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0 &&
             __builtin_cpu_supports("avx512vpopcntdq") != 0;
  }
  return false;
#else
  return level == Level::kScalar;
#endif
}

}  // namespace

bool level_supported(Level level) {
  return level_compiled(level) && cpu_supports(level);
}

Level best_level() {
  if (level_supported(Level::kAvx512)) return Level::kAvx512;
  if (level_supported(Level::kAvx2)) return Level::kAvx2;
  return Level::kScalar;
}

const Kernels* kernels_for(Level level) {
  if (!level_supported(level)) return nullptr;
  switch (level) {
    case Level::kScalar:
      return detail::scalar_table();
    case Level::kAvx2:
      return detail::avx2_table();
    case Level::kAvx512:
      return detail::avx512_table();
  }
  return nullptr;
}

Level active_level() { return kernels().level; }

namespace detail {

std::atomic<const Kernels*> g_active{nullptr};

const Kernels& resolve_active() {
  Level level = best_level();
  if (const char* env = std::getenv("CLB_SIMD");
      env != nullptr && *env != '\0') {
    const std::string want(env);
    if (want == "scalar") {
      level = Level::kScalar;
    } else if (want == "avx2") {
      level = Level::kAvx2;
    } else if (want == "avx512") {
      level = Level::kAvx512;
    } else {
      CLB_EXPECT(want == "auto",
                 "CLB_SIMD must be scalar|avx2|avx512|auto, got \"" + want +
                     "\"");
    }
    // An explicitly requested level the build or CPU cannot run fails
    // loudly: silently degrading would invalidate any measurement the
    // override was set up for.
    CLB_EXPECT(level_supported(level),
               std::string("CLB_SIMD=") + want +
                   " requested but this build/CPU does not support it");
  }
  const Kernels* table = kernels_for(level);
  g_active.store(table, std::memory_order_relaxed);
  return *table;
}

}  // namespace detail

ScopedLevel::ScopedLevel(Level level) {
  const Kernels* table = kernels_for(level);
  CLB_EXPECT(table != nullptr,
             std::string("ScopedLevel: level \"") + level_name(level) +
                 "\" is not supported on this build/CPU");
  saved_ = &kernels();  // resolve CLB_SIMD first so the restore is stable
  detail::g_active.store(table, std::memory_order_relaxed);
}

ScopedLevel::~ScopedLevel() {
  detail::g_active.store(saved_, std::memory_order_relaxed);
}

}  // namespace congestlb::simd
