// Crash-recovery audit (fsck_campaign): classification of every
// enumerable crash artifact, repair semantics, and the central recovery
// property — a campaign whose manifest or cache slots are torn at *any*
// byte boundary converges back to the byte-identical canonical manifest
// after `fsck --repair` plus a resume.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "campaign/cache.hpp"
#include "campaign/campaign.hpp"
#include "campaign/manifest.hpp"
#include "campaign/supervise.hpp"
#include "support/expect.hpp"

namespace clb = congestlb;
namespace cmp = clb::campaign;
namespace fs = std::filesystem;

namespace {

struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& tag)
      : path(fs::path(::testing::TempDir()) / ("clb_fsck_test_" + tag)) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
};

void spew(const fs::path& p, std::string_view bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out << bytes;
  ASSERT_TRUE(out.good()) << p;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string canonical_manifest(const cmp::CampaignResult& result) {
  std::ostringstream os;
  cmp::ManifestWriteOptions opts;
  opts.include_volatile = false;
  cmp::write_manifest(os, result, opts);
  return os.str();
}

std::size_t count_kind(const cmp::FsckReport& report,
                       cmp::FsckIssue::Kind kind) {
  std::size_t n = 0;
  for (const auto& issue : report.issues) n += issue.kind == kind ? 1u : 0u;
  return n;
}

/// One claim point: 4 jobs (build, solve-yes, solve-no, check), so the
/// manifest is small enough to truncate at every single byte while still
/// covering the gadget/opt/verdict cache kinds.
cmp::CampaignSpec tiny_claim_spec() {
  cmp::CampaignSpec spec;
  spec.name = "tiny";
  spec.seed = 2020;
  cmp::SweepSpec sweep;
  sweep.name = "C12";
  sweep.check = cmp::CheckKind::kClaim12;
  sweep.points = {{2, 1, 2, std::size_t{3}}};
  sweep.trials = 1;
  spec.sweeps = {sweep};
  return spec;
}

}  // namespace

TEST(Fsck, MissingStateIsClean) {
  ScratchDir scratch("missing");
  const auto report =
      cmp::fsck_campaign((scratch.path / "no_cache").string(),
                         (scratch.path / "no_manifest.json").string());
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.issues.empty());
  EXPECT_EQ(report.slots_scanned, 0u);
}

TEST(Fsck, HealthyCampaignStateIsClean) {
  ScratchDir scratch("healthy");
  const std::string cache_dir = (scratch.path / "cache").string();
  const fs::path manifest = scratch.path / "campaign.json";

  cmp::RunOptions opts;
  opts.cache_dir = cache_dir;
  const auto result = cmp::run_campaign(tiny_claim_spec(), opts);
  ASSERT_TRUE(result.all_hold);
  {
    std::ofstream out(manifest, std::ios::binary);
    cmp::write_manifest(out, result);
  }

  const auto report = cmp::fsck_campaign(cache_dir, manifest.string());
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.issues.empty());
  EXPECT_GT(report.slots_scanned, 0u);
  EXPECT_EQ(report.slots_scanned, report.slots_valid);
}

TEST(Fsck, ClassifiesAndRepairsEveryCrashArtifact) {
  ScratchDir scratch("classify");
  const std::string cache_dir = (scratch.path / "cache").string();
  const fs::path manifest = scratch.path / "campaign.json";
  const fs::path kind_dir = fs::path(cache_dir) / "gadget";

  // One healthy slot, plus one of every crash artifact the write protocol
  // can strand: a dangling intent, an orphaned tmp, a torn slot — and a
  // foreign file outside the protocol entirely.
  {
    cmp::ContentCache cache(cache_dir);
    cache.store("gadget", 1, "healthy payload");
  }
  const auto hex = [](std::uint64_t k) { return cmp::ContentCache::hex_key(k); };
  spew(kind_dir / (hex(2) + ".clbc.intent"), "gadget/" + hex(2) + "\n");
  spew(kind_dir / (hex(3) + ".clbc.tmp." + hex(3)), "half a payload");
  spew(kind_dir / (hex(4) + ".clbc"), "clb-cache v2 gadget torn");
  spew(kind_dir / "README.txt", "not ours");
  spew(manifest, "{ not a manifest");
  spew(manifest.string() + ".intent", "campaign\n");
  spew(manifest.string() + ".tmp", "{ half a manifest");

  const auto found = cmp::fsck_campaign(cache_dir, manifest.string());
  EXPECT_FALSE(found.clean());
  EXPECT_EQ(found.slots_scanned, 2u);  // healthy + torn
  EXPECT_EQ(found.slots_valid, 1u);
  EXPECT_EQ(count_kind(found, cmp::FsckIssue::Kind::kDanglingIntent), 2u);
  EXPECT_EQ(count_kind(found, cmp::FsckIssue::Kind::kOrphanTmp), 2u);
  EXPECT_EQ(count_kind(found, cmp::FsckIssue::Kind::kTornSlot), 1u);
  EXPECT_EQ(count_kind(found, cmp::FsckIssue::Kind::kTornManifest), 1u);
  EXPECT_EQ(count_kind(found, cmp::FsckIssue::Kind::kForeignFile), 1u);
  EXPECT_EQ(found.repaired, 0u) << "no deletion without --repair";
  EXPECT_TRUE(fs::exists(manifest));

  cmp::FsckOptions repair;
  repair.repair = true;
  const auto fixed = cmp::fsck_campaign(cache_dir, manifest.string(), repair);
  EXPECT_EQ(fixed.repaired, 6u) << "everything but the foreign file";
  EXPECT_FALSE(fs::exists(manifest));
  EXPECT_TRUE(fs::exists(kind_dir / "README.txt"))
      << "foreign files are reported, never deleted";

  // Second pass: consistent by construction; the healthy slot survived.
  const auto again = cmp::fsck_campaign(cache_dir, manifest.string());
  EXPECT_TRUE(again.clean());
  EXPECT_EQ(again.slots_scanned, 1u);
  EXPECT_EQ(again.slots_valid, 1u);
  EXPECT_EQ(count_kind(again, cmp::FsckIssue::Kind::kForeignFile), 1u);
  cmp::ContentCache reader(cache_dir);
  EXPECT_EQ(reader.load("gadget", 1), "healthy payload");
}

TEST(Fsck, ReportWritesJson) {
  ScratchDir scratch("report");
  const std::string cache_dir = (scratch.path / "cache").string();
  fs::create_directories(fs::path(cache_dir) / "opt");
  spew(fs::path(cache_dir) / "opt" / "nope.clbc.intent", "opt/nope\n");
  const auto report = cmp::fsck_campaign(cache_dir);
  std::ostringstream os;
  cmp::write_fsck_report(os, report);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"clb_fsck_report\": 1"), std::string::npos);
  EXPECT_NE(json.find("dangling-intent"), std::string::npos);
}

TEST(Fsck, SlotTruncatedAtEveryByteIsInvalid) {
  // The checksummed v2 header makes torn slots *enumerable*: no strict
  // prefix of a valid slot file passes verification, so fsck can classify
  // any kill-point state without guessing.
  ScratchDir scratch("truncate_slot");
  const std::string cache_dir = (scratch.path / "cache").string();
  const std::string hex = cmp::ContentCache::hex_key(42);
  const fs::path slot = fs::path(cache_dir) / "gadget" / (hex + ".clbc");
  {
    cmp::ContentCache cache(cache_dir);
    cache.store("gadget", 42, "linear 2 1 3\n0 1\n1 2\n");
  }
  const std::string full = slurp(slot);
  ASSERT_GT(full.size(), 0u);
  ASSERT_TRUE(cmp::ContentCache::valid_slot_file(slot.string(), "gadget", hex));
  for (std::size_t len = 0; len < full.size(); ++len) {
    spew(slot, full.substr(0, len));
    EXPECT_FALSE(
        cmp::ContentCache::valid_slot_file(slot.string(), "gadget", hex))
        << "a slot truncated to " << len << "/" << full.size()
        << " bytes passed verification";
  }
  // ... and the load path agrees: the torn slot is a miss, not garbage.
  spew(slot, full.substr(0, full.size() / 2));
  cmp::ContentCache reader(cache_dir);
  EXPECT_EQ(reader.load("gadget", 42), std::nullopt);
  EXPECT_EQ(reader.stats().invalid, 1u);
}

TEST(Fsck, CampaignRecoversFromSlotTornAtAnyBoundary) {
  ScratchDir scratch("slot_recovery");
  const std::string cache_dir = (scratch.path / "cache").string();
  const auto spec = tiny_claim_spec();

  cmp::RunOptions opts;
  opts.cache_dir = cache_dir;
  const auto cold = cmp::run_campaign(spec, opts);
  ASSERT_TRUE(cold.all_hold);
  const std::string reference = canonical_manifest(cold);

  // Every slot the campaign wrote, torn at a handful of byte boundaries
  // (start, header, body, last byte): fsck --repair removes it, and a
  // rerun rebuilds it and converges.
  std::vector<fs::path> slots;
  for (const auto& entry : fs::recursive_directory_iterator(cache_dir)) {
    if (entry.is_regular_file()) slots.push_back(entry.path());
  }
  ASSERT_GT(slots.size(), 2u) << "expected gadget/opt/verdict slots";
  cmp::FsckOptions repair;
  repair.repair = true;
  for (const fs::path& slot : slots) {
    const std::string full = slurp(slot);
    for (const std::size_t len :
         {std::size_t{0}, std::size_t{12}, full.size() / 2,
          full.size() - 1}) {
      spew(slot, full.substr(0, std::min(len, full.size() - 1)));
      const auto fixed = cmp::fsck_campaign(cache_dir, "", repair);
      EXPECT_GE(fixed.repaired, 1u) << slot;
      EXPECT_FALSE(fs::exists(slot));

      const auto rerun = cmp::run_campaign(spec, opts);
      EXPECT_EQ(canonical_manifest(rerun), reference) << slot << " @" << len;
      ASSERT_TRUE(fs::exists(slot)) << "rerun must rewrite the slot";
      EXPECT_TRUE(cmp::fsck_campaign(cache_dir).clean());
    }
  }
}

TEST(Fsck, ManifestTornAtEveryByteRecoversToReference) {
  // The satellite acceptance pin: truncate the manifest at *every* byte
  // boundary; after fsck --repair plus a resume-style rerun, the canonical
  // manifest is byte-identical to the reference, whatever byte the crash
  // landed on.
  ScratchDir scratch("manifest_recovery");
  const std::string cache_dir = (scratch.path / "cache").string();
  const fs::path manifest = scratch.path / "campaign.json";
  const auto spec = tiny_claim_spec();

  cmp::RunOptions opts;
  opts.cache_dir = cache_dir;
  const auto cold = cmp::run_campaign(spec, opts);
  ASSERT_TRUE(cold.all_hold);
  const std::string reference = canonical_manifest(cold);
  std::ostringstream full_os;
  cmp::write_manifest(full_os, cold);  // the full form clb writes to disk
  const std::string full = full_os.str();

  cmp::FsckOptions repair;
  repair.repair = true;
  for (std::size_t len = 0; len <= full.size(); ++len) {
    spew(manifest, full.substr(0, len));
    const auto fixed =
        cmp::fsck_campaign(cache_dir, manifest.string(), repair);
    // Whatever fsck decided (torn -> deleted, parseable -> kept), what is
    // left must parse; resume from it and converge.
    std::map<std::string, cmp::JobRecord> prior;
    bool have_prior = false;
    if (fs::exists(manifest)) {
      EXPECT_EQ(count_kind(fixed, cmp::FsckIssue::Kind::kTornManifest), 0u)
          << "a kept manifest must not have been classified torn (len="
          << len << ")";
      prior = cmp::read_manifest(slurp(manifest)).records;
      have_prior = true;
    }
    const auto resumed =
        cmp::run_campaign(spec, opts, have_prior ? &prior : nullptr);
    ASSERT_EQ(canonical_manifest(resumed), reference)
        << "truncation at byte " << len << "/" << full.size()
        << " did not converge";
  }
}
