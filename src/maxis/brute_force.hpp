// Exhaustive exact maximum-weight independent set for tiny graphs.
//
// The cross-check oracle: branch_and_bound and the gadget constructions are
// validated against this on every graph small enough to afford it
// (n <= kBruteForceLimit). Simple include/exclude recursion over a 64-bit
// candidate mask with a weight-sum bound.

#pragma once

#include "maxis/verify.hpp"

namespace congestlb::maxis {

inline constexpr std::size_t kBruteForceLimit = 40;

/// Exact MaxIS by exhaustive search. Requires num_nodes <= kBruteForceLimit.
IsSolution solve_brute_force(const graph::Graph& g);

}  // namespace congestlb::maxis
