#include "lowerbound/quadratic_family.hpp"

#include <algorithm>
#include <cmath>

#include "support/expect.hpp"

namespace congestlb::lb {

QuadraticConstruction::QuadraticConstruction(GadgetParams params,
                                             std::size_t t)
    : QuadraticConstruction(std::move(params), t, BuildOptions{}) {}

QuadraticConstruction::QuadraticConstruction(GadgetParams params,
                                             std::size_t t,
                                             const BuildOptions& opts)
    : params_(std::move(params)), t_(t), base_(params_), g_(0) {
  CLB_EXPECT(t_ >= 1, "quadratic construction: t >= 1");
  const std::size_t npc = params_.nodes_per_copy();
  const std::size_t p = params_.clique_size();
  const std::size_t m_pos = params_.num_positions();
  const std::size_t k = params_.k;
  g_ = graph::Graph(2 * t_ * npc);
  g_.set_implicit_block_threshold(opts.implicit_threshold);

  // Per-copy structure (2t copies of H, indexed (i, b)): labels, the fixed
  // weights w_F, the cliques, and the explicit codeword stars.
  std::vector<std::pair<NodeId, NodeId>> stars;
  stars.reserve(2 * t_ * k * m_pos * (p - 1));
  for (std::size_t i = 0; i < t_; ++i) {
    for (std::size_t b = 0; b < 2; ++b) {
      const NodeId offset = a_node(i, b, 0);
      if (!opts.skip_labels) {
        for (NodeId local = 0; local < npc; ++local) {
          g_.set_label(offset + local, base_.graph().label(local) + "^(" +
                                           std::to_string(i + 1) + "," +
                                           std::to_string(b + 1) + ")");
        }
      }
      // Fixed weights w_F: the A cliques weigh ell.
      for (std::size_t m = 0; m < k; ++m) {
        g_.set_weight(a_node(i, b, m), static_cast<graph::Weight>(params_.ell));
      }
      std::vector<NodeId> a(k);
      for (std::size_t m = 0; m < k; ++m) a[m] = a_node(i, b, m);
      g_.add_clique(a);
      for (std::size_t h = 0; h < m_pos; ++h) {
        std::vector<NodeId> c(p);
        for (std::size_t r = 0; r < p; ++r) c[r] = code_node(i, b, h, r);
        g_.add_clique(c);
      }
      for (std::size_t m = 0; m < k; ++m) {
        const codes::Word& w = base_.codeword(m);
        for (std::size_t h = 0; h < m_pos; ++h) {
          for (std::size_t r = 0; r < p; ++r) {
            if (r != w[h]) {
              stars.emplace_back(a_node(i, b, m), code_node(i, b, h, r));
            }
          }
        }
      }
    }
  }
  g_.reserve_edges(stars.size());
  g_.add_edges(stars);

  // Within each block b: the Figure-2 anti-matchings between copies — one
  // grid per (b, h) over rows = copies (stride 2*npc), columns = symbols.
  if (t_ >= 2) {
    for (std::size_t b = 0; b < 2; ++b) {
      for (std::size_t h = 0; h < m_pos; ++h) {
        g_.add_anti_matching_grid(static_cast<NodeId>(b * npc + k + h * p),
                                  2 * npc, t_, p);
      }
    }
  }
}

graph::Graph QuadraticConstruction::instantiate(
    const comm::PromiseInstance& inst) const {
  comm::validate(inst);
  CLB_EXPECT(inst.k == string_length(),
             "instantiate: instance string length must be k^2");
  CLB_EXPECT(inst.t == t_, "instantiate: instance t mismatch");
  graph::Graph fx = g_;
  std::vector<std::pair<NodeId, NodeId>> zero_edges;
  zero_edges.reserve(t_ * params_.k * params_.k);
  for (std::size_t i = 0; i < t_; ++i) {
    for (std::size_t m1 = 0; m1 < params_.k; ++m1) {
      for (std::size_t m2 = 0; m2 < params_.k; ++m2) {
        if (inst.strings[i][pair_index(m1, m2)] == 0) {
          zero_edges.emplace_back(a_node(i, 0, m1), a_node(i, 1, m2));
        }
      }
    }
  }
  fx.add_edges(zero_edges);
  return fx;
}

NodeId QuadraticConstruction::a_node(std::size_t i, std::size_t b,
                                     std::size_t m) const {
  CLB_EXPECT(i < t_, "quadratic construction: player index out of range");
  CLB_EXPECT(b < 2, "quadratic construction: block index out of range");
  const std::size_t npc = params_.nodes_per_copy();
  return i * 2 * npc + b * npc + base_.a_node(m);
}

NodeId QuadraticConstruction::code_node(std::size_t i, std::size_t b,
                                        std::size_t h, std::size_t r) const {
  CLB_EXPECT(i < t_, "quadratic construction: player index out of range");
  CLB_EXPECT(b < 2, "quadratic construction: block index out of range");
  const std::size_t npc = params_.nodes_per_copy();
  return i * 2 * npc + b * npc + base_.code_node(h, r);
}

std::vector<NodeId> QuadraticConstruction::codeword_nodes(std::size_t i,
                                                          std::size_t b,
                                                          std::size_t m) const {
  std::vector<NodeId> out = base_.codeword_nodes(m);
  const NodeId offset = a_node(i, b, 0);
  for (NodeId& v : out) v += offset;
  return out;
}

std::size_t QuadraticConstruction::pair_index(std::size_t m1,
                                              std::size_t m2) const {
  CLB_EXPECT(m1 < params_.k && m2 < params_.k,
             "pair_index: message index out of range");
  return m1 * params_.k + m2;
}

std::pair<NodeId, NodeId> QuadraticConstruction::partition_range(
    std::size_t i) const {
  CLB_EXPECT(i < t_, "quadratic construction: player index out of range");
  const std::size_t span = 2 * params_.nodes_per_copy();
  return {i * span, (i + 1) * span};
}

std::vector<NodeId> QuadraticConstruction::partition(std::size_t i) const {
  auto [lo, hi] = partition_range(i);
  std::vector<NodeId> out;
  out.reserve(hi - lo);
  for (NodeId v = lo; v < hi; ++v) out.push_back(v);
  return out;
}

std::size_t QuadraticConstruction::owner(NodeId v) const {
  CLB_EXPECT(v < num_nodes(), "quadratic construction: node out of range");
  return v / (2 * params_.nodes_per_copy());
}

std::vector<std::pair<NodeId, NodeId>> QuadraticConstruction::cut_edges()
    const {
  std::vector<std::pair<NodeId, NodeId>> cut;
  const auto consider = [&](NodeId u, NodeId v) {
    if (owner(u) != owner(v)) cut.emplace_back(u, v);
  };
  if (!g_.has_implicit_blocks()) {
    for (auto [u, v] : graph::edge_list(g_)) consider(u, v);
    return cut;
  }
  for (NodeId u = 0; u < g_.num_nodes(); ++u) {
    for (NodeId v : g_.explicit_neighbors(u)) {
      if (u < v) consider(u, v);
    }
  }
  for (const auto& b : g_.implicit_blocks()) b.for_each_edge(consider);
  std::sort(cut.begin(), cut.end());
  return cut;
}

std::size_t QuadraticConstruction::cut_size() const {
  const std::size_t p = params_.clique_size();
  return 2 * (t_ * (t_ - 1) / 2) * params_.num_positions() * p * (p - 1);
}

std::vector<NodeId> QuadraticConstruction::yes_witness(std::size_t m1,
                                                       std::size_t m2) const {
  std::vector<NodeId> out;
  out.reserve(2 * t_ * (1 + params_.num_positions()));
  for (std::size_t i = 0; i < t_; ++i) {
    out.push_back(a_node(i, 0, m1));
    auto cw1 = codeword_nodes(i, 0, m1);
    out.insert(out.end(), cw1.begin(), cw1.end());
    out.push_back(a_node(i, 1, m2));
    auto cw2 = codeword_nodes(i, 1, m2);
    out.insert(out.end(), cw2.begin(), cw2.end());
  }
  return out;
}

graph::Weight QuadraticConstruction::yes_weight() const {
  return static_cast<graph::Weight>(t_ * (4 * params_.ell + 2 * params_.alpha));
}

graph::Weight QuadraticConstruction::no_bound() const {
  const auto ell = static_cast<graph::Weight>(params_.ell);
  const auto alpha = static_cast<graph::Weight>(params_.alpha);
  const auto t = static_cast<graph::Weight>(t_);
  return 3 * (t + 1) * ell + 3 * alpha * t * t * t;
}

double QuadraticConstruction::hardness_ratio() const {
  return static_cast<double>(no_bound()) / static_cast<double>(yes_weight());
}

double quadratic_hardness_ratio_formula(std::size_t ell, std::size_t alpha,
                                        std::size_t t) {
  CLB_EXPECT(t >= 1, "hardness ratio: t >= 1");
  const double no = 3.0 * (t + 1.0) * ell + 3.0 * alpha * t * t * t;
  const double yes = t * (4.0 * ell + 2.0 * alpha);
  return no / yes;
}

std::size_t quadratic_players_for_epsilon(double eps) {
  CLB_EXPECT(eps > 0.0 && eps < 0.25,
             "Theorem 2 applies for 0 < eps < 1/4");
  const double t = 3.0 / (4.0 * eps) - 1.0;
  return static_cast<std::size_t>(std::max(2.0, std::ceil(t)));
}

}  // namespace congestlb::lb
