// Experiment MAXIS: the exact-solver engine (kernelize + decompose +
// warm-start + parallel branch and bound, maxis/parallel_bnb.hpp) against
// the seed single-tree branch and bound, cold-solved on the paper's gadget
// instances.
//
// Per shape the bench replays the campaign's claim-check solve set: the
// linear construction instantiated on both branches (uniquely-intersecting
// YES and pairwise-disjoint NO promise instances) over several rng trials,
// exactly as campaign::solve_branch does. Every solve is timed cold
// through the seed solver, the engine at threads=1, and the engine at
// threads=4; the solvers must agree on OPT and the engine must return
// bit-identical (solution, search_nodes) across thread counts. Output: a
// console table plus BENCH_maxis.json with per-shape totals, search-node
// counts, kernel rule hits, and per-solve speedups.
//
// Gate: in the full run (no CLB_BENCH_SMOKE) the *median* per-solve
// speedup over a shape's claim-check set must reach kSpeedupGate (2.5x) on
// every shape marked `gate` — the largest stress shapes, where search and
// bound work dominate and the engine's advantages (arena search, two-tier
// bound, warm-start certificates on YES instances) compound — or the
// bench exits nonzero. The gate was 3x when both solvers ran scalar word
// loops; with the SIMD dispatch layer both get absolutely faster, but the
// seed's single tree over full-width rows (~158 words at ell20) gains far
// more from the vector kernels than the engine's kernelized components,
// so the ratio compresses (ell20: 3.9x scalar -> 2.9x avx512) even though
// the engine itself sped up. 2.5x keeps the architectural claim gated in
// the shipping configuration on any dispatch level; the SIMD win itself
// is gated separately by the words-kernel rows below.
// The median is the gate statistic because per-solve
// ratios split into a NO band and a much faster YES band; it is robust to
// scheduler noise on shared runners where a min or mean is not. Shapes at
// and below the EXPERIMENTS.md solved grid (n <= ~5000) are reported
// ungated: there a cold solve is about a millisecond and fixed costs bound
// any solver's ratio near 1. The smoke run (CI) uses small shapes and
// checks OPT agreement plus determinism but not the speedup; the
// regression guard there is scripts/check_bench_regression.py against
// bench/baselines/BENCH_maxis_baseline.json.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "comm/instances.hpp"
#include "lowerbound/linear_family.hpp"
#include "lowerbound/params.hpp"
#include "maxis/bitset.hpp"
#include "maxis/branch_and_bound.hpp"
#include "maxis/parallel_bnb.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"
#include "support/table.hpp"

namespace clb = congestlb;

namespace {

constexpr double kSpeedupGate = 2.5;

struct Shape {
  std::size_t ell, alpha, t, k;
  bool gate;  ///< full-run median-speedup gate applies
  std::string name() const {
    return "ell" + std::to_string(ell) + "-a" + std::to_string(alpha) + "-t" +
           std::to_string(t) + "-k" + std::to_string(k);
  }
};

// Smoke: the small C12 grid points CI can afford. Full: the EXPERIMENTS.md
// solved-grid tail (reported) plus the ell = t diagonal at code capacity
// k = ell + 1 — the shape family the L2 mapping sends eps = 1/8 to — as
// the gated stress sizes.
const std::vector<Shape> kSmokeShapes = {
    {4, 1, 2, 5, false},
    {6, 1, 2, 7, false},
    {4, 2, 2, 16, false},
};
const std::vector<Shape> kFullShapes = {
    {8, 1, 5, 9, false},
    {10, 1, 6, 11, false},
    {16, 1, 16, 17, false},
    {18, 1, 18, 19, true},
    {20, 1, 20, 21, true},
};

struct Row {
  std::string shape;
  std::size_t n = 0;
  std::size_t edges = 0;
  std::size_t solves = 0;
  double seed_ns = 0;       ///< total over the claim-check set
  double engine_ns = 0;     ///< total, threads = 1
  double engine_mt_ns = 0;  ///< total, threads = 4
  std::uint64_t seed_search_nodes = 0;
  std::uint64_t engine_search_nodes = 0;
  std::size_t kernel_nodes = 0;
  std::uint64_t kernel_decided = 0;
  std::vector<double> speedups;  ///< per solve, seed / engine(threads=1)
  double median_speedup = 0;
  bool gate = false;
};

double time_ns(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t m = v.size() / 2;
  return v.size() % 2 == 1 ? v[m] : (v[m - 1] + v[m]) / 2;
}

// ------------------------------------------------ SIMD word kernel rows --

/// Full-run gate on the nw=4096 synthetic row: the vector variant of the
/// solver's intersect+popcount kernel must hold this median speedup over
/// scalar on SIMD-capable hardware.
constexpr double kWordsKernelGate = 1.5;

struct WordsRow {
  std::string name;
  std::string variant;
  std::size_t nw = 0;
  double ns_per_pass = 0;  ///< one and_rows + and_popcount over the row
  bool gate = false;
};

/// Time `passes` rounds of the BnB inner-loop kernel pair (candidate-row
/// intersection plus the clique-cover domination probe) on nw-word rows
/// under a forced dispatch level. Returns ns per pass.
double time_words_pass(clb::simd::Level level, std::size_t nw,
                       std::size_t passes) {
  clb::Rng rng(42);
  std::vector<std::uint64_t> a(nw), b(nw), dst(nw);
  for (std::size_t w = 0; w < nw; ++w) {
    a[w] = rng.next();
    b[w] = rng.next() | rng.next();
  }
  const clb::simd::ScopedLevel forced(level);
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t p = 0; p < passes; ++p) {
    clb::maxis::words::and_rows(dst.data(), a.data(), b.data(), nw);
    sink += clb::maxis::words::and_popcount(dst.data(), b.data(), nw);
    a[sink % nw] ^= sink;  // keep passes data-dependent, defeat hoisting
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (sink == 0xDEAD) std::cout << "";
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                 .count()) /
         static_cast<double>(passes);
}

/// words/intersect-popcount rows: the gadget-shaped row width (what the
/// claim-check solves above actually use, reported ungated — at a dozen
/// words the dispatch indirection roughly cancels the vector win) and a
/// wide synthetic row where the vector kernels must pay off (gated in full
/// runs). Median over `trials` interleaved scalar/vector measurements.
std::vector<WordsRow> words_kernel_rows(std::size_t gadget_nw, bool smoke,
                                        double* gate_speedup) {
  const std::size_t trials = smoke ? 3 : 9;
  const std::size_t passes = smoke ? 2'000 : 20'000;
  const clb::simd::Level best = clb::simd::best_level();
  std::vector<WordsRow> rows;
  *gate_speedup = 0;
  struct Shape {
    std::size_t nw;
    bool gate;
  };
  const Shape shapes[] = {{gadget_nw, false}, {4096, true}};
  for (const auto& s : shapes) {
    std::vector<double> scalar_ns, vec_ns;
    for (std::size_t t = 0; t < trials; ++t) {
      scalar_ns.push_back(
          time_words_pass(clb::simd::Level::kScalar, s.nw, passes));
      if (best != clb::simd::Level::kScalar) {
        vec_ns.push_back(time_words_pass(best, s.nw, passes));
      }
    }
    WordsRow scalar;
    scalar.name = "words/intersect-popcount-nw" + std::to_string(s.nw);
    scalar.variant = "scalar";
    scalar.nw = s.nw;
    scalar.ns_per_pass = median(scalar_ns);
    scalar.gate = false;
    rows.push_back(scalar);
    if (!vec_ns.empty()) {
      WordsRow vec = scalar;
      vec.variant = clb::simd::level_name(best);
      vec.ns_per_pass = median(vec_ns);
      vec.gate = s.gate;
      rows.push_back(vec);
      if (s.gate) {
        // Median of per-trial ratios, robust to one noisy measurement.
        std::vector<double> ratios;
        for (std::size_t t = 0; t < trials; ++t) {
          ratios.push_back(scalar_ns[t] / vec_ns[t]);
        }
        *gate_speedup = median(ratios);
      }
    }
  }
  return rows;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("CLB_BENCH_SMOKE") != nullptr;
  const std::vector<Shape>& shapes = smoke ? kSmokeShapes : kFullShapes;
  const std::size_t trials = smoke ? 1 : 3;

  std::cout << "MAXIS solver engine vs seed branch-and-bound ("
            << (smoke ? "smoke" : "full")
            << " shapes; claim-check solve set: YES + NO branches x "
            << trials << " trials, cold solves)\n\n";

  clb::Table tbl({"shape", "n", "solves", "seed ms", "engine ms", "t4 ms",
                  "median speedup", "seed nodes", "engine nodes"});
  std::vector<Row> rows;
  bool opt_ok = true;
  bool det_ok = true;

  for (const Shape& s : shapes) {
    const auto params =
        clb::lb::GadgetParams::from_l_alpha(s.ell, s.alpha, s.k);
    const clb::lb::LinearConstruction c(params, s.t);

    Row row;
    row.shape = s.name();
    row.gate = s.gate;

    for (int yes = 0; yes < 2; ++yes) {
      for (std::uint64_t trial = 0; trial < trials; ++trial) {
        clb::Rng rng(0x9e3779b97f4a7c15ULL * trial + (yes != 0 ? 1 : 0));
        const auto inst =
            yes != 0 ? clb::comm::make_uniquely_intersecting(
                           params.k, c.num_players(), rng, 0.3)
                     : clb::comm::make_pairwise_disjoint(
                           params.k, c.num_players(), rng, 0.4);
        const clb::graph::Graph g = c.instantiate(inst);
        row.n = g.num_nodes();
        row.edges = g.num_edges();

        clb::maxis::BnBResult seed_res;
        const double seed_ns = time_ns(
            [&] { seed_res = clb::maxis::solve_branch_and_bound(g); });

        clb::maxis::EngineResult eng;
        const double eng_ns =
            time_ns([&] { eng = clb::maxis::solve_maxis(g); });

        clb::maxis::EngineOptions mt;
        mt.threads = 4;
        clb::maxis::EngineResult eng_mt;
        row.engine_mt_ns +=
            time_ns([&] { eng_mt = clb::maxis::solve_maxis(g, mt); });

        row.solves += 1;
        row.seed_ns += seed_ns;
        row.engine_ns += eng_ns;
        row.seed_search_nodes += seed_res.search_nodes;
        row.engine_search_nodes += eng.search_nodes;
        row.kernel_nodes = eng.kernel_nodes;
        row.kernel_decided = eng.kernel.decisions();
        row.speedups.push_back(seed_ns / eng_ns);

        if (eng.solution.weight != seed_res.solution.weight) {
          std::cerr << "OPT MISMATCH on " << row.shape
                    << (yes != 0 ? " YES" : " NO") << " trial " << trial
                    << ": seed=" << seed_res.solution.weight
                    << " engine=" << eng.solution.weight << "\n";
          opt_ok = false;
        }
        if (eng_mt.solution.weight != eng.solution.weight ||
            eng_mt.solution.nodes != eng.solution.nodes ||
            eng_mt.search_nodes != eng.search_nodes) {
          std::cerr << "DETERMINISM MISMATCH on " << row.shape
                    << (yes != 0 ? " YES" : " NO") << " trial " << trial
                    << ": threads=4 diverges from threads=1\n";
          det_ok = false;
        }
      }
    }

    row.median_speedup = median(row.speedups);
    tbl.row(row.shape, row.n, row.solves,
            clb::fmt_double(row.seed_ns / 1e6),
            clb::fmt_double(row.engine_ns / 1e6),
            clb::fmt_double(row.engine_mt_ns / 1e6),
            clb::fmt_double(row.median_speedup), row.seed_search_nodes,
            row.engine_search_nodes);
    rows.push_back(row);
  }
  tbl.print(std::cout);

  // SIMD word-kernel rows: scalar vs the best dispatch level on the
  // largest gadget row width seen above, plus the gated wide synthetic
  // row (active level: the CLB_SIMD-resolved default for this run).
  std::size_t max_n = 0;
  for (const Row& r : rows) max_n = std::max(max_n, r.n);
  double words_gate_speedup = 0;
  const auto words_rows = words_kernel_rows(
      clb::maxis::words::row_words(std::max<std::size_t>(max_n, 64)), smoke,
      &words_gate_speedup);
  std::cout << "\n";
  clb::Table wt({"kernel", "variant", "words", "ns/pass"});
  for (const auto& w : words_rows) {
    wt.add_row({w.name, w.variant, std::to_string(w.nw),
                clb::fmt_double(w.ns_per_pass, 1)});
  }
  wt.print(std::cout);
  if (words_gate_speedup > 0) {
    std::cout << "  simd words speedup (nw=4096, median of trials): "
              << clb::fmt_double(words_gate_speedup, 2) << "x vs scalar\n";
  }

  // ---- BENCH_maxis.json -------------------------------------------------
  double min_gate_speedup = std::numeric_limits<double>::infinity();
  bool any_gate = false;
  for (const Row& r : rows) {
    if (r.gate) {
      any_gate = true;
      min_gate_speedup = std::min(min_gate_speedup, r.median_speedup);
    }
  }
  {
    std::ofstream out("BENCH_maxis.json");
    clb::JsonWriter jw(out);
    jw.begin_object();
    jw.kv("schema", "clb-bench-v1");
    jw.kv("benchmark", "maxis_solver_engine");
    jw.kv("solver_version", std::string(clb::maxis::kSolverVersion));
    jw.kv("smoke", smoke);
    jw.key("entries");
    jw.begin_array();
    for (const Row& r : rows) {
      const double solves = static_cast<double>(r.solves);
      jw.begin_object();
      jw.kv("name", "seed-bnb/" + r.shape);
      jw.kv("n", static_cast<std::uint64_t>(r.n));
      jw.kv("edges", static_cast<std::uint64_t>(r.edges));
      jw.kv("threads", std::uint64_t{1});
      jw.kv("solves", static_cast<std::uint64_t>(r.solves));
      jw.kv("ns_per_solve", r.seed_ns / solves);
      jw.kv("search_nodes", r.seed_search_nodes);
      jw.end_object();
      jw.begin_object();
      jw.kv("name", "engine/" + r.shape);
      jw.kv("n", static_cast<std::uint64_t>(r.n));
      jw.kv("edges", static_cast<std::uint64_t>(r.edges));
      jw.kv("threads", std::uint64_t{1});
      jw.kv("solves", static_cast<std::uint64_t>(r.solves));
      jw.kv("ns_per_solve", r.engine_ns / solves);
      jw.kv("search_nodes", r.engine_search_nodes);
      jw.kv("kernel_nodes", static_cast<std::uint64_t>(r.kernel_nodes));
      jw.kv("kernel_decided", r.kernel_decided);
      jw.kv("median_speedup_vs_seed", r.median_speedup);
      jw.kv("gate", r.gate);
      jw.end_object();
      jw.begin_object();
      jw.kv("name", "engine/" + r.shape);
      jw.kv("n", static_cast<std::uint64_t>(r.n));
      jw.kv("edges", static_cast<std::uint64_t>(r.edges));
      jw.kv("threads", std::uint64_t{4});
      jw.kv("solves", static_cast<std::uint64_t>(r.solves));
      jw.kv("ns_per_solve", r.engine_mt_ns / solves);
      jw.end_object();
    }
    for (const auto& w : words_rows) {
      jw.begin_object();
      jw.kv("name", w.name);
      jw.kv("variant", w.variant);
      jw.kv("threads", std::uint64_t{1});
      jw.kv("words", static_cast<std::uint64_t>(w.nw));
      jw.kv("ns_per_solve", w.ns_per_pass);
      jw.kv("gate", w.gate);
      jw.end_object();
    }
    jw.end_array();
    jw.key("gate");
    jw.begin_object();
    jw.kv("factor", kSpeedupGate);
    jw.kv("statistic", "median_per_solve_speedup");
    jw.kv("applies", any_gate && !smoke);
    if (any_gate) jw.kv("min_median_speedup", min_gate_speedup);
    jw.end_object();
    jw.key("simd_gate");
    jw.begin_object();
    jw.kv("factor", kWordsKernelGate);
    jw.kv("statistic", "median_words_pass_speedup_nw4096");
    jw.kv("simd_level",
          std::string(clb::simd::level_name(clb::simd::best_level())));
    jw.kv("applies",
          !smoke && clb::simd::best_level() != clb::simd::Level::kScalar);
    if (words_gate_speedup > 0) {
      jw.kv("median_speedup", words_gate_speedup);
    }
    jw.end_object();
    jw.end_object();
    out << "\n";
  }
  std::cout << "\n  wrote BENCH_maxis.json (" << rows.size()
            << " shapes)\n";

  if (!opt_ok) {
    std::cerr << "\nFAILED: engine and seed solver disagree on OPT\n";
    return 1;
  }
  if (!det_ok) {
    std::cerr << "\nFAILED: engine output depends on thread count\n";
    return 1;
  }
  if (!smoke && any_gate && min_gate_speedup < kSpeedupGate) {
    std::cerr << "\nFAILED: min gated median speedup " << min_gate_speedup
              << " < " << kSpeedupGate << "x\n";
    return 1;
  }
  if (!smoke && clb::simd::best_level() != clb::simd::Level::kScalar &&
      words_gate_speedup < kWordsKernelGate) {
    std::cerr << "\nFAILED: SIMD words-kernel median speedup "
              << words_gate_speedup << " < " << kWordsKernelGate << "x\n";
    return 1;
  }
  std::cout << (smoke ? "\nsmoke run: OPT agreement and determinism "
                        "checked, speedup gate skipped (small shapes)\n"
                      : "\nspeedup gate passed\n");
  return 0;
}
