// Cooperative cancellation and deterministic retry backoff.
//
// DeadlineToken is the cancellation primitive the campaign runtime threads
// through long-running work (docs/ROBUSTNESS.md): the owner arms it with a
// wall-clock budget (or cancels it explicitly), and the worker polls it from
// its hot loop. The fast path is a single relaxed atomic load — cheap enough
// for the branch-and-bound search to poll at every node — and the clock is
// consulted only every kClockStride polls, so an armed deadline costs a few
// nanoseconds per node, not a syscall. Once expired or cancelled the token
// latches: cancelled() never goes back to false, so every worker sharing the
// token agrees on the decision even when they observe it at different times.
//
// Cancellation is advisory, never exact: a solve that observes the token
// stops at its next poll and returns its best incumbent so far (flagged
// approximate), which keeps every partial result certified — the token only
// decides *when* to stop, never *what* the answer is.
//
// backoff_delay_us is the retry half: a pure function (seed, attempt) ->
// delay, so a campaign's retry schedule is part of its deterministic
// contract — byte-identical across worker counts and resume histories, with
// the jitter drawn from the same splitmix64 mixing every other structural
// seed uses (support/hash.hpp), not from any global RNG state.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace congestlb {

class DeadlineToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Clock checks happen once per this many poll() calls; in between, a
  /// poll is one relaxed load. Power of two so the modulo is a mask.
  static constexpr std::uint64_t kClockStride = 4096;

  /// Unarmed token: never expires on its own, cancels only via cancel().
  DeadlineToken() = default;

  /// Armed token: expires `budget` after construction. A non-positive
  /// budget is already expired (poll() latches on its first clock check).
  explicit DeadlineToken(Clock::duration budget)
      : armed_(true), deadline_(Clock::now() + budget) {}

  DeadlineToken(const DeadlineToken&) = delete;
  DeadlineToken& operator=(const DeadlineToken&) = delete;

  /// Latch the token cancelled. Idempotent and safe from any thread.
  void cancel() const { cancelled_.store(true, std::memory_order_relaxed); }

  /// Has the token been cancelled (explicitly or by an observed expiry)?
  /// One relaxed load; safe from any thread.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Hot-loop check: pass a monotonically increasing tick (e.g. the search
  /// node counter). Reads the clock only when tick lands on a stride
  /// boundary; an observed expiry latches via cancel() so *all* sharers see
  /// it, stride-aligned or not. Returns cancelled().
  bool poll(std::uint64_t tick) const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (armed_ && (tick & (kClockStride - 1)) == 0 &&
        Clock::now() >= deadline_) {
      cancel();
      return true;
    }
    return false;
  }

  /// Unconditional clock check (for coarse-grained callers like the
  /// kernelization pass loop, where polls are rare and a syscall is fine).
  bool expired() const { return poll(0); }

 private:
  mutable std::atomic<bool> cancelled_{false};
  bool armed_ = false;
  Clock::time_point deadline_{};
};

/// Jittered exponential backoff delay before retry `attempt` (0-based: the
/// delay taken after the first failure is attempt 0). The envelope is
/// base_us * 2^attempt capped at cap_us; the returned delay is drawn
/// uniformly from [envelope/2, envelope] with jitter derived from
/// hash_mix(seed, attempt) — a pure function, so a job's retry schedule is
/// identical across thread counts, processes, and resume histories.
/// Requires base_us >= 1 and cap_us >= base_us.
std::uint64_t backoff_delay_us(std::uint64_t seed, std::size_t attempt,
                               std::uint64_t base_us, std::uint64_t cap_us);

}  // namespace congestlb
