// The quadratic-lower-bound family F_xbar of Section 5 (Theorem 2).
//
// The fixed construction F is two copies G^1, G^2 of the Section-4 fixed
// graph (Figures 4-5). Player i owns V^i = V^(i,1) + V^(i,2) — its copy-i
// slice of *both* blocks. Every A-clique node has fixed weight ell; weights
// do not depend on the input. Instead, each player's k^2-bit string selects
// edges *inside its own part*: the edge {v^(i,1)_{m1}, v^(i,2)_{m2}} is
// present iff x^i_(m1,m2) = 0 (Figure 6). Since the strings have length
// k^2 = Theta(n^2), Corollary 1 yields the near-quadratic bound.
//
// Gap (Claims 6-7): uniquely intersecting at (m1,m2) -> an IS of weight
// t(4*ell + 2*alpha); pairwise disjoint -> every IS weighs at most
// 3(t+1)*ell + 3*alpha*t^3.

#pragma once

#include <utility>
#include <vector>

#include "comm/instances.hpp"
#include "graph/graph.hpp"
#include "lowerbound/base_gadget.hpp"
#include "lowerbound/params.hpp"

namespace congestlb::lb {

class QuadraticConstruction {
 public:
  /// t >= 1 (t = 1 has an empty cut but lets tests exercise Claim 7's
  /// induction base).
  QuadraticConstruction(GadgetParams params, std::size_t t);

  /// Build with explicit construction options — see
  /// LinearConstruction(params, t, opts); the anti-matchings become one
  /// grid block per (block b, position h) pair. Default options reproduce
  /// the two-argument constructor edge-for-edge.
  QuadraticConstruction(GadgetParams params, std::size_t t,
                        const BuildOptions& opts);

  const GadgetParams& params() const { return params_; }
  std::size_t num_players() const { return t_; }
  std::size_t num_nodes() const { return 2 * t_ * params_.nodes_per_copy(); }
  /// String length per player: k^2.
  std::size_t string_length() const { return params_.k * params_.k; }

  /// The fixed graph F = (V_F, E_F, w_F); A-nodes weigh ell.
  const graph::Graph& fixed_graph() const { return g_; }

  /// F_xbar: fixed graph plus input edges inside each player's part.
  /// Requires a validated instance with k = k^2 and t players.
  graph::Graph instantiate(const comm::PromiseInstance& inst) const;

  // --- node addressing: block b in {0, 1} = the paper's G^(b+1) ----------
  NodeId a_node(std::size_t i, std::size_t b, std::size_t m) const;
  NodeId code_node(std::size_t i, std::size_t b, std::size_t h,
                   std::size_t r) const;
  std::vector<NodeId> codeword_nodes(std::size_t i, std::size_t b,
                                     std::size_t m) const;

  /// Flattened string index of the pair (m1, m2).
  std::size_t pair_index(std::size_t m1, std::size_t m2) const;

  // --- player partition ---------------------------------------------------
  std::pair<NodeId, NodeId> partition_range(std::size_t i) const;
  std::vector<NodeId> partition(std::size_t i) const;
  std::size_t owner(NodeId v) const;

  // --- cut ----------------------------------------------------------------
  std::vector<std::pair<NodeId, NodeId>> cut_edges() const;
  /// 2 * C(t,2) * (ell+alpha) * p * (p-1).
  std::size_t cut_size() const;

  // --- gap predicate --------------------------------------------------------
  /// Claim 6's witness for the pair (m1, m2).
  std::vector<NodeId> yes_witness(std::size_t m1, std::size_t m2) const;
  /// beta = t(4*ell + 2*alpha).
  graph::Weight yes_weight() const;
  /// 3(t+1)*ell + 3*alpha*t^3 (Claim 7).
  graph::Weight no_bound() const;
  bool separated() const { return yes_weight() > no_bound(); }
  /// no_bound / yes_weight (tends to 3/4; Lemma 3).
  double hardness_ratio() const;

 private:
  GadgetParams params_;
  std::size_t t_;
  BaseGadget base_;
  graph::Graph g_;
};

/// t = ceil(3/(4*eps) - 1): the player count Lemma 3 uses to rule out
/// (3/4 + eps)-approximation. Requires 0 < eps < 1/4.
std::size_t quadratic_players_for_epsilon(double eps);

/// no_bound/yes_weight from the formulas alone — usable at asymptotic
/// parameter values where actually building the graph is infeasible.
double quadratic_hardness_ratio_formula(std::size_t ell, std::size_t alpha,
                                        std::size_t t);

}  // namespace congestlb::lb
