// The fault-injection subsystem: determinism of schedules, exactness of
// bit accounting under drop/corrupt/duplicate/crash, termination of the
// fault-tolerant algorithms (finished or failed, never spinning to
// max_rounds), and the fault-aware reduction driver.

#include <gtest/gtest.h>

#include <algorithm>

#include "comm/blackboard.hpp"
#include "congest/algorithms/bfs_tree.hpp"
#include "congest/algorithms/leader_election.hpp"
#include "congest/algorithms/luby_mis.hpp"
#include "congest/algorithms/universal_maxis.hpp"
#include "congest/faults.hpp"
#include "congest/network.hpp"
#include "congest/transcript.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "lowerbound/linear_family.hpp"
#include "maxis/branch_and_bound.hpp"
#include "sim/reduction.hpp"
#include "support/expect.hpp"
#include "support/rng.hpp"

namespace congestlb::congest {
namespace {

// ------------------------------------------------------------ fault plans --

TEST(FaultPlan, IdenticalSeedsProduceIdenticalPlans) {
  FaultConfig cfg;
  cfg.crash_rate = 0.4;
  cfg.crash_round_limit = 10;
  cfg.recovery_delay = 3;
  const FaultPlan a = make_fault_plan(cfg, 64, 1234);
  const FaultPlan b = make_fault_plan(cfg, 64, 1234);
  ASSERT_EQ(a.crashes.size(), b.crashes.size());
  for (std::size_t v = 0; v < a.crashes.size(); ++v) {
    ASSERT_EQ(a.crashes[v].has_value(), b.crashes[v].has_value());
    if (a.crashes[v]) {
      EXPECT_EQ(a.crashes[v]->crash_round, b.crashes[v]->crash_round);
      EXPECT_EQ(a.crashes[v]->recover_round, b.crashes[v]->recover_round);
    }
  }
  EXPECT_GT(a.num_crashing_nodes(), 0u);
  EXPECT_EQ(a.num_permanently_crashed(), 0u);  // recovery_delay > 0
  EXPECT_FALSE(a.describe().empty());
}

TEST(FaultPlan, DifferentSeedsDiffer) {
  FaultConfig cfg;
  cfg.crash_rate = 0.5;
  const FaultPlan a = make_fault_plan(cfg, 256, 1);
  const FaultPlan b = make_fault_plan(cfg, 256, 2);
  bool any_difference = false;
  for (std::size_t v = 0; v < 256; ++v) {
    if (a.crashes[v].has_value() != b.crashes[v].has_value()) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultInjector, ClassifyIsPureAndOrderIndependent) {
  FaultConfig cfg;
  cfg.drop_rate = 0.2;
  cfg.corrupt_rate = 0.1;
  cfg.duplicate_rate = 0.1;
  const FaultInjector inj(cfg, 16, 99);
  // Re-querying any coordinate gives the same answer, in any order.
  std::vector<FaultAction> forward, backward;
  for (std::size_t r = 0; r < 50; ++r) forward.push_back(inj.classify(r, 3, 7));
  for (std::size_t r = 50; r-- > 0;) backward.push_back(inj.classify(r, 3, 7));
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(forward, backward);
  // All four actions occur at these rates within a few hundred draws.
  std::size_t drops = 0, corrupts = 0, dups = 0, delivers = 0;
  for (std::size_t r = 0; r < 300; ++r) {
    switch (inj.classify(r, 1, 2)) {
      case FaultAction::kDrop: ++drops; break;
      case FaultAction::kCorrupt: ++corrupts; break;
      case FaultAction::kDuplicate: ++dups; break;
      case FaultAction::kDeliver: ++delivers; break;
    }
  }
  EXPECT_GT(drops, 0u);
  EXPECT_GT(corrupts, 0u);
  EXPECT_GT(dups, 0u);
  EXPECT_GT(delivers, 0u);
}

TEST(FaultInjector, RejectsBadRates) {
  FaultConfig cfg;
  cfg.drop_rate = 0.7;
  cfg.corrupt_rate = 0.7;
  EXPECT_THROW(FaultInjector(cfg, 4, 1), InvariantError);
  cfg = FaultConfig{};
  cfg.drop_rate = -0.1;
  EXPECT_THROW(FaultInjector(cfg, 4, 1), InvariantError);
}

TEST(FaultInjector, CorruptionKeepsBitCountAndFlipsSomething) {
  FaultConfig cfg;
  cfg.corrupt_rate = 1.0;
  const FaultInjector inj(cfg, 4, 7);
  for (std::size_t r = 0; r < 20; ++r) {
    Message m = std::move(MessageWriter().put(0x2DEAD, 20)).finish();
    const Message original = m;
    inj.corrupt(r, 0, 1, m);
    EXPECT_EQ(m.bits, original.bits);
    EXPECT_EQ(m.data.size(), original.data.size());
    // Applying the same corruption twice undoes it (pure XOR of fixed bits)
    // — the deterministic-schedule property at the bit level.
    Message twice = m;
    inj.corrupt(r, 0, 1, twice);
    EXPECT_EQ(twice.data, original.data);
  }
  // At least some round must actually flip bits (1-3 flips, possibly on
  // the same bit — but not all rounds can cancel).
  bool changed = false;
  for (std::size_t r = 0; r < 20 && !changed; ++r) {
    Message m = std::move(MessageWriter().put(0x2DEAD, 20)).finish();
    const auto before = m.data;
    inj.corrupt(r, 0, 1, m);
    changed = m.data != before;
  }
  EXPECT_TRUE(changed);
}

// ------------------------------------------------- deterministic networks --

/// Floods its id for a fixed number of rounds; counts messages heard.
class FloodProgram final : public NodeProgram {
 public:
  explicit FloodProgram(std::size_t rounds_to_run)
      : rounds_to_run_(rounds_to_run) {}

  void round(const NodeInfo& info, const Inbox& inbox, Outbox& outbox,
             Rng&) override {
    for (const auto& m : inbox) {
      if (m) ++heard_;
    }
    ++rounds_seen_;
    if (rounds_seen_ > rounds_to_run_ || info.neighbors.empty()) return;
    outbox.send_all(std::move(MessageWriter().put(info.id, 16)).finish());
  }
  bool finished() const override { return rounds_seen_ > rounds_to_run_; }
  std::int64_t output() const override {
    return static_cast<std::int64_t>(heard_);
  }

 private:
  std::size_t rounds_to_run_;
  std::size_t rounds_seen_ = 0;
  std::size_t heard_ = 0;
};

ProgramFactory flood_factory(std::size_t rounds) {
  return [rounds](NodeId, const NodeInfo&) {
    return std::make_unique<FloodProgram>(rounds);
  };
}

NetworkConfig faulty_config(double drop, double corrupt, double dup,
                            std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.seed = seed;
  cfg.faults.drop_rate = drop;
  cfg.faults.corrupt_rate = corrupt;
  cfg.faults.duplicate_rate = dup;
  return cfg;
}

TEST(FaultyNetwork, IdenticalSeedsGiveIdenticalRunsAndStats) {
  Rng rng(5);
  const auto g = graph::gnp_random_connected(rng, 24, 0.2);
  const auto cfg = faulty_config(0.1, 0.05, 0.05, 0xFEED);
  Network a(g, flood_factory(12), cfg);
  Network b(g, flood_factory(12), cfg);
  const RunStats sa = a.run();
  const RunStats sb = b.run();
  EXPECT_EQ(sa.rounds, sb.rounds);
  EXPECT_EQ(sa.messages_sent, sb.messages_sent);
  EXPECT_EQ(sa.bits_sent, sb.bits_sent);
  EXPECT_EQ(sa.messages_dropped, sb.messages_dropped);
  EXPECT_EQ(sa.messages_corrupted, sb.messages_corrupted);
  EXPECT_EQ(sa.messages_duplicated, sb.messages_duplicated);
  EXPECT_EQ(a.outputs(), b.outputs());
  EXPECT_GT(sa.messages_dropped, 0u);
  EXPECT_GT(sa.messages_corrupted, 0u);
  EXPECT_GT(sa.messages_duplicated, 0u);
}

TEST(FaultyNetwork, DifferentSeedsGiveDifferentSchedules) {
  Rng rng(6);
  const auto g = graph::gnp_random_connected(rng, 24, 0.2);
  Network a(g, flood_factory(12), faulty_config(0.1, 0.0, 0.0, 1));
  Network b(g, flood_factory(12), faulty_config(0.1, 0.0, 0.0, 2));
  const RunStats sa = a.run();
  const RunStats sb = b.run();
  EXPECT_NE(sa.messages_dropped, sb.messages_dropped);
}

// ----------------------------------------------------------- accounting --

TEST(FaultyNetwork, AccountingMatchesDeliveredTrafficExactly) {
  Rng rng(7);
  const auto g = graph::gnp_random_connected(rng, 20, 0.25);
  auto cfg = faulty_config(0.15, 0.1, 0.1, 0xACC0);
  TranscriptRecorder recorder;
  cfg.on_message = recorder.observer();
  Network net(g, flood_factory(10), cfg);
  const RunStats stats = net.run();

  // Observer deliveries == stats == per-edge charges: the invariant that
  // keeps blackboard charging honest.
  EXPECT_EQ(recorder.num_messages(), stats.messages_sent);
  EXPECT_EQ(recorder.total_bits(), stats.bits_sent);
  std::uint64_t edge_total = 0;
  for (auto [u, v] : graph::edge_list(g)) edge_total += net.bits_on_edge(u, v);
  EXPECT_EQ(edge_total, stats.bits_sent);
  EXPECT_GT(stats.messages_dropped, 0u);
}

TEST(FaultyNetwork, DropOnlyConservesAttemptedMessages) {
  // With only drop faults, every attempted message is either delivered or
  // counted dropped; the fault-free run supplies the attempted total.
  Rng rng(8);
  const auto g = graph::gnp_random_connected(rng, 18, 0.3);
  NetworkConfig clean;
  clean.seed = 42;
  Network baseline(g, flood_factory(9), clean);
  const RunStats clean_stats = baseline.run();

  auto cfg = faulty_config(0.2, 0.0, 0.0, 42);
  Network net(g, flood_factory(9), cfg);
  const RunStats stats = net.run();
  EXPECT_EQ(stats.messages_sent + stats.messages_dropped,
            clean_stats.messages_sent);
  EXPECT_EQ(stats.bits_sent + stats.bits_dropped, clean_stats.bits_sent);
}

TEST(FaultyNetwork, FaultFreeConfigLeavesCountersZero) {
  Rng rng(9);
  const auto g = graph::gnp_random_connected(rng, 12, 0.3);
  Network net(g, flood_factory(5), NetworkConfig{});
  const RunStats stats = net.run();
  EXPECT_EQ(stats.messages_dropped, 0u);
  EXPECT_EQ(stats.messages_corrupted, 0u);
  EXPECT_EQ(stats.messages_duplicated, 0u);
  EXPECT_EQ(stats.nodes_crashed, 0u);
  EXPECT_EQ(net.fault_plan(), nullptr);
}

// -------------------------------------------------------------- crashes --

TEST(FaultyNetwork, PermanentCrashesTerminateWithoutSpinning) {
  Rng rng(10);
  const auto g = graph::gnp_random_connected(rng, 16, 0.3);
  NetworkConfig cfg;
  cfg.seed = 0xDEAD;
  cfg.max_rounds = 100000;
  cfg.faults.crash_rate = 0.3;
  cfg.faults.crash_round_limit = 5;
  Network net(g, fault_tolerant_bfs_factory(0), cfg);
  const RunStats stats = net.run();
  ASSERT_NE(net.fault_plan(), nullptr);
  EXPECT_EQ(stats.nodes_crashed, net.fault_plan()->num_crashing_nodes());
  EXPECT_GT(stats.nodes_crashed, 0u);
  // Crashed nodes never finish, yet the run halts far below max_rounds.
  EXPECT_LT(stats.rounds, 1000u);
  EXPECT_FALSE(stats.all_finished);
}

TEST(FaultyNetwork, CrashRecoveryIsCountedAndRunCompletes) {
  Rng rng(11);
  const auto g = graph::gnp_random_connected(rng, 16, 0.3);
  NetworkConfig cfg;
  cfg.seed = 0xBEEF;
  cfg.faults.crash_rate = 0.3;
  cfg.faults.crash_round_limit = 5;
  cfg.faults.recovery_delay = 4;
  Network net(g, fault_tolerant_bfs_factory(0), cfg);
  const RunStats stats = net.run();
  EXPECT_GT(stats.nodes_crashed, 0u);
  EXPECT_EQ(stats.nodes_recovered, stats.nodes_crashed);
  // With recovery, every node eventually hears a level: all finish.
  EXPECT_TRUE(stats.all_finished);
  EXPECT_FALSE(stats.any_failed);
}

// --------------------------------------- fault-tolerant algorithms: drop --

class DropSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  graph::Graph make_graph() {
    Rng rng(GetParam());
    return graph::gnp_random_connected(rng, 20 + rng.below(20), 0.15);
  }
  NetworkConfig drop_config() {
    NetworkConfig cfg;
    cfg.seed = GetParam() * 7919 + 1;
    cfg.max_rounds = 50000;
    cfg.faults.drop_rate = 0.05;
    return cfg;
  }
};

TEST_P(DropSweep, FaultTolerantBfsConvergesToTrueLevels) {
  const auto g = make_graph();
  Network net(g, fault_tolerant_bfs_factory(0), drop_config());
  const RunStats stats = net.run();
  EXPECT_TRUE(stats.all_finished);
  EXPECT_FALSE(stats.any_failed);
  EXPECT_LT(stats.rounds, drop_config().max_rounds);
  const auto dist = graph::bfs_distances(g, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(net.program(v).output(),
              static_cast<std::int64_t>(dist[v] + 1))
        << "node " << v;
  }
}

TEST_P(DropSweep, FaultTolerantLeaderElectionElectsTheMaximum) {
  const auto g = make_graph();
  Network net(g, fault_tolerant_leader_election_factory(), drop_config());
  const RunStats stats = net.run();
  EXPECT_TRUE(stats.all_finished);
  EXPECT_FALSE(stats.any_failed);
  const auto leaders = net.selected_nodes();
  ASSERT_EQ(leaders.size(), 1u);
  EXPECT_EQ(leaders[0], g.num_nodes() - 1);
}

TEST_P(DropSweep, FaultTolerantLubyDecidedSetIsIndependentAndTerminal) {
  const auto g = make_graph();
  Network net(g, fault_tolerant_luby_mis_factory(), drop_config());
  const RunStats stats = net.run();
  EXPECT_LT(stats.rounds, drop_config().max_rounds);
  // Every node is terminal: finished (decided) or failed (reported), no
  // silent spinning.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_TRUE(net.program(v).finished() || net.program(v).failed())
        << "node " << v;
  }
  // Safety: whatever was decided into the set is independent.
  EXPECT_TRUE(g.is_independent_set(net.selected_nodes()));
  // Under 5% drop the gate stalls rarely: expect full completion.
  EXPECT_TRUE(stats.all_finished);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DropSweep, ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------- corruption and duplication --

TEST(FaultTolerance, BfsTerminatesUnderCorruptionAndDuplication) {
  Rng rng(21);
  const auto g = graph::gnp_random_connected(rng, 24, 0.2);
  auto cfg = faulty_config(0.05, 0.1, 0.1, 0xC0DE);
  cfg.max_rounds = 50000;
  Network net(g, fault_tolerant_bfs_factory(0), cfg);
  const RunStats stats = net.run();
  EXPECT_LT(stats.rounds, cfg.max_rounds);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_TRUE(net.program(v).finished() || net.program(v).failed());
  }
  EXPECT_GT(stats.messages_corrupted, 0u);
}

TEST(FaultTolerance, FailedNodesReportDiagnostics) {
  // A root that never exists: every non-root node times out and reports.
  const auto g = graph::path_graph(4);
  NetworkConfig cfg;
  cfg.faults.drop_rate = 1.0;  // nothing ever arrives
  cfg.faults.crash_rate = 0.0;
  cfg.seed = 3;
  cfg.max_rounds = 10000;
  Network net(g, fault_tolerant_bfs_factory(0, 30), cfg);
  const RunStats stats = net.run();
  EXPECT_TRUE(stats.any_failed);
  EXPECT_LT(stats.rounds, cfg.max_rounds);
  const auto diags = net.failure_diagnostics();
  ASSERT_EQ(diags.size(), 3u);  // everyone but the root
  EXPECT_NE(diags[0].find("never heard"), std::string::npos);
}

// ------------------------------------------------------ reduction driver --

LocalMaxIsSolver exact_solver() {
  return [](const graph::Graph& g) { return maxis::solve_exact(g).nodes; };
}

TEST(FaultyReduction, CutAccountingStaysExactUnderFaults) {
  const auto params =
      lb::GadgetParams::for_linear_separation(2, 1, std::size_t{4});
  const lb::LinearConstruction c(params, 2);
  Rng rng(31);
  const auto inst = comm::make_uniquely_intersecting(params.k, 2, rng);

  congest::NetworkConfig cfg;
  cfg.bits_per_edge = universal_required_bits(
      c.num_nodes(), static_cast<graph::Weight>(params.ell));
  cfg.seed = 0xFA11;
  // The universal gossip algorithm is not fault-tolerant; cap the rounds —
  // the accounting invariant must hold whether or not the run completed.
  cfg.max_rounds = 300;
  cfg.faults.drop_rate = 0.1;
  cfg.faults.corrupt_rate = 0.0;  // corrupted tokens would crash decoding
  cfg.faults.duplicate_rate = 0.05;
  comm::Blackboard board(2);
  const auto rep = sim::run_linear_reduction(
      c, inst, universal_maxis_factory(exact_solver()), board, cfg);
  EXPECT_TRUE(rep.cut_accounting_exact);
  EXPECT_TRUE(rep.accounting_ok);
  EXPECT_GT(rep.net_stats.messages_dropped, 0u);
}

TEST(FaultyReduction, FaultFreeRunsKeepDecidingCorrectly) {
  const auto params =
      lb::GadgetParams::for_linear_separation(2, 1, std::size_t{4});
  const lb::LinearConstruction c(params, 2);
  Rng rng(32);
  const auto inst = comm::make_pairwise_disjoint(params.k, 2, rng);
  congest::NetworkConfig cfg;
  cfg.bits_per_edge = universal_required_bits(
      c.num_nodes(), static_cast<graph::Weight>(params.ell));
  cfg.max_rounds = 200'000;
  comm::Blackboard board(2);
  const auto rep = sim::run_linear_reduction(
      c, inst, universal_maxis_factory(exact_solver()), board, cfg);
  EXPECT_TRUE(rep.correct);
  EXPECT_TRUE(rep.cut_accounting_exact);
  EXPECT_TRUE(rep.algorithm_finished);
  EXPECT_FALSE(rep.algorithm_failed);
}

}  // namespace
}  // namespace congestlb::congest
