// Content-addressed artifact cache for campaign runs (docs/CAMPAIGN.md).
//
// Every expensive campaign artifact — a built gadget graph, an exact-solver
// OPT value, a claim verdict — is stored under the FNV-1a digest of a
// canonical textual description of its inputs (support/hash.hpp). Equal
// inputs therefore address equal payloads across runs, processes, and
// worker counts; a key collision with different inputs is treated as
// impossible at campaign scale (2^-64 per pair) and the payload is trusted
// on a key match.
//
// Two tiers: an in-process map (hits are free) backed by an optional
// on-disk store under a cache directory (default `.clb-cache/`). Disk slots
// are one file per artifact, `<dir>/<kind>/<hex16>.clbc`, written via a
// temp-file rename so a killed campaign never leaves a torn slot, and
// prefixed with a header line that is verified on load — a corrupt or
// foreign file demotes to a miss instead of poisoning the run. The header
// carries the payload's byte count and FNV-1a digest, so *any* torn slot
// (truncated payload, bit rot, a stray kill between write and rename that
// something later moved into place) is detected — without the digest, a
// truncated integer payload like "123" -> "12" would round-trip as a valid
// but wrong artifact.
//
// Crash-recovery audit (docs/ROBUSTNESS.md): every disk mutation is
// bracketed by a write-ahead intent marker (`<slot>.intent`) created before
// the temp file and removed after the rename. A crash can therefore leave
// only states `clb campaign fsck` can classify: a dangling intent (crash
// mid-write; the tmp and intent are garbage), an orphaned tmp (pre-intent
// era or interrupted cleanup), or a torn slot (fails header/digest
// verification). All three demote to a miss at load time; fsck --repair
// deletes them so the directory returns to exactly the valid-slots state.
//
// The cache is shared by concurrent scheduler workers; all operations take
// one internal mutex. That is deliberate cheapness: campaign jobs are
// milliseconds-to-seconds of solver work, so the cache is nowhere near the
// hot path.

#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace congestlb::campaign {

struct CacheStats {
  std::uint64_t mem_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writes = 0;
  std::uint64_t invalid = 0;  ///< disk slots rejected (bad header/torn file)

  std::uint64_t hits() const { return mem_hits + disk_hits; }
};

class ContentCache {
 public:
  /// `dir` empty = in-memory only. Otherwise the directory (plus per-kind
  /// subdirectories) is created lazily on first store.
  explicit ContentCache(std::string dir = {});

  ContentCache(const ContentCache&) = delete;
  ContentCache& operator=(const ContentCache&) = delete;

  /// Look up the payload stored for (kind, key). `kind` must be a short
  /// path-safe slug ([a-z0-9_-]); keys are canonical-input digests.
  /// Memory tier first, then disk; a disk hit is promoted to memory.
  std::optional<std::string> load(std::string_view kind, std::uint64_t key);

  /// Store a payload under (kind, key) in both tiers. Overwrites silently
  /// (content addressing makes overwrites idempotent).
  void store(std::string_view kind, std::uint64_t key,
             std::string_view payload);

  CacheStats stats() const;
  const std::string& dir() const { return dir_; }
  bool disk_backed() const { return !dir_.empty(); }

  /// "<hex16>" — the slot name for a key, also used in manifests.
  static std::string hex_key(std::uint64_t key);

  /// Full verification of a disk slot file at `path` claiming to hold
  /// (kind, hex16): header magic, kind, key, payload size, and payload
  /// digest must all match. This is exactly the rule load() applies;
  /// exposed so `clb campaign fsck` classifies slots the same way the
  /// runtime does. Returns false for unreadable files.
  static bool valid_slot_file(const std::string& path, std::string_view kind,
                              std::string_view hex16);

  /// Filename suffixes of the on-disk protocol, shared with fsck.
  static constexpr std::string_view kSlotSuffix = ".clbc";
  static constexpr std::string_view kIntentSuffix = ".intent";
  static constexpr std::string_view kTmpInfix = ".tmp.";

 private:
  std::string slot_path(std::string_view kind, std::uint64_t key) const;

  mutable std::mutex mu_;
  std::string dir_;
  std::unordered_map<std::string, std::string> mem_;
  CacheStats stats_;
};

}  // namespace congestlb::campaign
