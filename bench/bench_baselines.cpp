// Experiment BL: baselines and context.
//
// Table 1: the framework-limitation argument from the introduction — the
//          t-way split solver achieves >= OPT/t on the hard instances with
//          only O(t log n) bits, so a t-party reduction can never rule out
//          1/t-approximations. Measured on the actual gadgets.
// Table 2: the prior-work comparison the paper's abstract draws: [8] CKP17
//          (exact), [4] Bachrach et al. 19, and this paper — approximation
//          factor vs round bound, with concrete values at a reference n.

#include <cmath>
#include <iostream>

#include "comm/instances.hpp"
#include "lowerbound/framework.hpp"
#include "lowerbound/linear_family.hpp"
#include "maxis/branch_and_bound.hpp"
#include "maxis/vertex_cover.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace clb = congestlb;
using clb::Table;

int main() {
  std::cout << "=== bench_baselines: limitation argument + prior work ===\n";
  clb::Rng rng(606);

  clb::print_heading(std::cout,
                     "the 1/t limitation — split solver on hard instances");
  {
    Table t({"t", "branch", "OPT", "best part", "ratio", ">= 1/t",
             "comm bits"});
    for (std::size_t tp : {2, 3, 4}) {
      const auto p = clb::lb::GadgetParams::for_linear_separation(tp, 1);
      const clb::lb::LinearConstruction c(p, tp);
      std::vector<std::vector<clb::graph::NodeId>> parts;
      for (std::size_t i = 0; i < tp; ++i) parts.push_back(c.partition(i));
      for (bool intersecting : {true, false}) {
        const auto inst =
            intersecting
                ? clb::comm::make_uniquely_intersecting(p.k, tp, rng, 0.3)
                : clb::comm::make_pairwise_disjoint(p.k, tp, rng, 0.3);
        const auto g = c.instantiate(inst);
        const auto split = clb::lb::split_solver_approximation(g, parts);
        const auto opt = clb::maxis::solve_exact(g).weight;
        const double ratio =
            static_cast<double>(split.best_part_solution.weight) /
            static_cast<double>(opt);
        t.row(tp, intersecting ? "YES" : "NO", opt,
              split.best_part_solution.weight, clb::fmt_double(ratio),
              ratio + 1e-12 >= 1.0 / tp, split.communication_bits);
      }
    }
    t.print(std::cout);
    std::cout << "  (ratio >= 1/t everywhere -> no t-party reduction can "
                 "beat 1/t; the paper's Section 1 argument)\n";
  }

  clb::print_heading(
      std::cout,
      "the (3/2)-VC limitation — two-party split cover on hard instances");
  {
    // The paper's second limitation example: [4] proved the two-party
    // framework cannot rule out (3/2)-approximate minimum vertex cover.
    // We measure the natural split-based cover (complement of the best
    // per-part IS, plus the other part entirely): its ratio on the
    // two-party hard instances stays below 3/2 — the framework's blind
    // spot, exhibited on its own gadgets.
    Table t({"branch", "min VC", "split-based VC", "ratio", "< 3/2"});
    const auto p = clb::lb::GadgetParams::from_l_alpha(5, 1, 6);
    const clb::lb::LinearConstruction c(p, 2);
    for (bool intersecting : {true, false}) {
      const auto inst =
          intersecting
              ? clb::comm::make_uniquely_intersecting(p.k, 2, rng, 0.4)
              : clb::comm::make_pairwise_disjoint(p.k, 2, rng, 0.4);
      const auto g = c.instantiate(inst);
      const auto exact = clb::maxis::solve_vertex_cover_exact(g);
      // Each player covers its own part exactly (own-part min VC) and the
      // whole cut is covered because one side of every cut edge is taken
      // in full... simplest sound variant: best part's complement-IS plus
      // the entire other part.
      std::vector<std::vector<clb::graph::NodeId>> parts{c.partition(0),
                                                         c.partition(1)};
      const auto split = clb::lb::split_solver_approximation(g, parts);
      std::vector<clb::graph::NodeId> cover;
      std::vector<bool> in_is(g.num_nodes(), false);
      for (auto v : split.best_part_solution.nodes) in_is[v] = true;
      for (clb::graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        if (!in_is[v]) cover.push_back(v);
      }
      const auto vc = clb::maxis::checked_cover(g, std::move(cover));
      const double ratio = static_cast<double>(vc.weight) /
                           static_cast<double>(exact.weight);
      t.row(intersecting ? "YES" : "NO", exact.weight, vc.weight,
            clb::fmt_double(ratio), ratio < 1.5);
    }
    t.print(std::cout);
  }

  clb::print_heading(std::cout,
                     "prior work vs this paper (round bounds at n = 2^20)");
  {
    const double n = std::pow(2.0, 20);
    const double lg = 20.0;
    Table t({"result", "approximation", "bound", "value at n=2^20"});
    t.row("CKP17 [8]", "exact", "n^2 / log^2 n",
          clb::fmt_double(n * n / (lg * lg), 0));
    t.row("Bachrach+19 [4]", "5/6 + eps", "n / log^6 n",
          clb::fmt_double(n / std::pow(lg, 6), 3));
    t.row("Bachrach+19 [4]", "7/8 + eps", "n^2 / log^7 n",
          clb::fmt_double(n * n / std::pow(lg, 7), 0));
    t.row("THIS PAPER Thm 1", "1/2 + eps", "n / log^3 n",
          clb::fmt_double(n / std::pow(lg, 3), 1));
    t.row("THIS PAPER Thm 2", "3/4 + eps", "n^2 / log^3 n",
          clb::fmt_double(n * n / std::pow(lg, 3), 0));
    t.print(std::cout);
    std::cout
        << "  Improvements reproduced: (a) hardness extends from 5/6 to 1/2\n"
           "  and 7/8 to 3/4 (stronger approximation factors); (b) the round\n"
           "  bounds gain log^3 / log^4 factors over [4] at the same shape.\n";
  }

  clb::print_heading(std::cout,
                     "log-factor gain over [4] as n grows (Thm 1 vs 5/6 bound)");
  {
    Table t({"n", "n/log^3 n (this)", "n/log^6 n ([4])", "gain"});
    for (std::size_t e = 14; e <= 26; e += 4) {
      const double n = std::pow(2.0, static_cast<double>(e));
      const double ours = n / std::pow(e, 3);
      const double theirs = n / std::pow(e, 6);
      t.row("2^" + std::to_string(e), clb::fmt_double(ours, 1),
            clb::fmt_double(theirs, 4), clb::fmt_double(ours / theirs, 0));
    }
    t.print(std::cout);
  }

  std::cout << "\nBaseline experiments completed.\n";
  return 0;
}
