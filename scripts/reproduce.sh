#!/usr/bin/env bash
# Full reproduction: configure, build, run the test suite, every experiment
# bench, and the paper campaign, capturing outputs at the repository root
# (test_output.txt, bench_output.txt, campaign_output.txt) — the artifacts
# EXPERIMENTS.md is written from.
set -euo pipefail
cd "$(dirname "$0")/.."

CAMPAIGN_MANIFEST=campaign.json
CAMPAIGN_CACHE=.clb-cache

# An interrupted reproduction must not strand torn campaign artifacts: on
# SIGINT/SIGTERM, audit and repair the cache tree and drop any half-written
# manifest debris, so the next invocation resumes from a consistent state
# (the campaign step below uses `resume`, so completed work is kept).
cleanup_partial() {
  status=$?
  trap - INT TERM
  echo "interrupted -- repairing partial campaign state" >&2
  if [ -x build/tools/clb ]; then
    build/tools/clb campaign fsck --repair \
      --cache-dir "$CAMPAIGN_CACHE" --manifest "$CAMPAIGN_MANIFEST" || true
  fi
  rm -f "$CAMPAIGN_MANIFEST.tmp" "$CAMPAIGN_MANIFEST.intent"
  exit "$status"
}
trap cleanup_partial INT TERM

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "===== $(basename "$b") =====" | tee -a bench_output.txt
    "$b" 2>&1 | tee -a bench_output.txt
  fi
done

# The paper campaign, resumable: a previous partial manifest (e.g. from an
# interrupted run) is picked up instead of recomputed.
build/tools/clb campaign resume paper --threads "$(nproc)" \
  --cache-dir "$CAMPAIGN_CACHE" --manifest "$CAMPAIGN_MANIFEST" \
  2>&1 | tee campaign_output.txt
build/tools/clb campaign status --manifest "$CAMPAIGN_MANIFEST" \
  2>&1 | tee -a campaign_output.txt

echo "done: test_output.txt, bench_output.txt, campaign_output.txt"
