// Minimal JSON support for machine-readable artifacts: a streaming writer
// and a small document parser.
//
// Benches emit BENCH_*.json files (see docs/PERFORMANCE.md) so the perf
// trajectory of the simulator can be tracked across PRs by scripts instead
// of by scraping stdout tables. The writer handles nesting, commas, and
// string escaping; values are emitted in insertion order.
//
// The parser (parse_json) exists for the campaign subsystem: sweep specs
// and resumable run manifests (docs/CAMPAIGN.md) are JSON documents the
// library must read back. It is a strict recursive-descent parser over the
// JSON subset the writer emits (no \uXXXX surrogate pairs beyond Latin-1,
// no exotic number forms) and throws InvariantError with a byte offset on
// malformed input. Object members keep insertion order, so a parse/write
// round trip is byte-stable modulo whitespace.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace congestlb {

class JsonWriter {
 public:
  /// Writes to `os`; the stream must outlive the writer. Emits pretty-printed
  /// JSON with two-space indentation.
  explicit JsonWriter(std::ostream& os);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit the key of the next object member.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v);
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v);
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }

  /// key(k) followed by value(v).
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

 private:
  void separate();  ///< comma/newline/indent before a new element
  void indent();
  void write_escaped(std::string_view s);

  std::ostream* os_;
  /// One entry per open container: true once the container has an element.
  std::vector<bool> has_element_;
  bool after_key_ = false;
};

/// A parsed JSON document node. Numbers remember whether their token was
/// integral so u64/i64 round-trip exactly (campaign hashes and seeds do not
/// survive a double round trip).
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Typed accessors; each throws InvariantError on a kind mismatch.
  bool as_bool() const;
  double as_double() const;
  /// The number as an integer. Throws unless the token was integral and in
  /// range (e.g. "1.5" and "1e3" are rejected, "18446744073709551615" is
  /// fine for as_u64).
  std::uint64_t as_u64() const;
  std::int64_t as_i64() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::vector<Member>& as_object() const;

  /// Object member lookup (first match); null when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// find() that throws InvariantError when the member is absent.
  const JsonValue& at(std::string_view key) const;

  // Construction helpers for tests and programmatic documents.
  static JsonValue make_null();
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_integer(std::uint64_t v, bool negative = false);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(std::vector<Member> members);

 private:
  friend JsonValue parse_json(std::string_view);

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0;
  /// Set when the number token had no '.', 'e' or 'E': the exact magnitude
  /// lives in int_mag_ with int_negative_ giving the sign.
  bool is_integer_ = false;
  bool int_negative_ = false;
  std::uint64_t int_mag_ = 0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

/// Parse a complete JSON document (one value plus trailing whitespace).
/// Throws InvariantError with a byte offset on any syntax error.
JsonValue parse_json(std::string_view text);

}  // namespace congestlb
