#include "congest/algorithms/bfs_tree.hpp"

#include "support/expect.hpp"
#include "support/math.hpp"

namespace congestlb::congest {

namespace {

class BfsLevelProgram final : public NodeProgram {
 public:
  explicit BfsLevelProgram(graph::NodeId root) : root_(root) {}

  void round(const NodeInfo& info, const Inbox& inbox, Outbox& outbox,
             Rng&) override {
    if (level_bits_ == 0) {
      level_bits_ = static_cast<std::size_t>(
          std::max(1, ceil_log2(std::max<std::size_t>(2, info.n + 1))));
      if (info.id == root_) level_ = 0;
    }
    // Adopt the first level we hear (BFS delivers the minimum first in a
    // synchronous network).
    for (const auto& msg : inbox) {
      if (!msg || level_ != kUnset) continue;
      MessageReader r(*msg);
      level_ = r.get(level_bits_) + 1;
    }
    if (level_ != kUnset && !announced_) {
      announced_ = true;
      if (!info.neighbors.empty()) {
        Message m =
            std::move(MessageWriter().put(level_, level_bits_)).finish();
        outbox.send_all(m);
      }
    }
  }

  bool finished() const override { return announced_; }
  std::int64_t output() const override {
    return level_ == kUnset ? 0 : static_cast<std::int64_t>(level_ + 1);
  }

 private:
  static constexpr std::uint64_t kUnset = ~0ULL;
  graph::NodeId root_;
  std::uint64_t level_ = kUnset;
  std::size_t level_bits_ = 0;
  bool announced_ = false;
};

}  // namespace

ProgramFactory bfs_level_factory(graph::NodeId root) {
  return [root](graph::NodeId, const NodeInfo&) {
    return std::make_unique<BfsLevelProgram>(root);
  };
}

}  // namespace congestlb::congest
