#include "codes/trivial_codes.hpp"

#include "support/expect.hpp"

namespace congestlb::codes {

namespace {

void check_symbols(std::span<const Symbol> message, std::uint64_t q) {
  for (Symbol s : message) {
    CLB_EXPECT(s < q, "message symbol out of alphabet range");
  }
}

}  // namespace

IdentityCode::IdentityCode(std::size_t length, std::uint64_t q)
    : len_(length), q_(q) {
  CLB_EXPECT(len_ >= 1, "IdentityCode requires L >= 1");
  CLB_EXPECT(q_ >= 2, "IdentityCode requires |Sigma| >= 2");
}

std::string IdentityCode::name() const {
  return "Identity(L=" + std::to_string(len_) + ",q=" + std::to_string(q_) +
         ")";
}

Word IdentityCode::encode(std::span<const Symbol> message) const {
  CLB_EXPECT(message.size() == len_, "IdentityCode: wrong message length");
  check_symbols(message, q_);
  return Word(message.begin(), message.end());
}

PaddingCode::PaddingCode(std::size_t message_length,
                         std::size_t codeword_length, std::uint64_t q)
    : len_l_(message_length), len_m_(codeword_length), q_(q) {
  CLB_EXPECT(len_l_ >= 1, "PaddingCode requires L >= 1");
  CLB_EXPECT(len_l_ <= len_m_, "PaddingCode requires L <= M");
  CLB_EXPECT(q_ >= 2, "PaddingCode requires |Sigma| >= 2");
}

std::string PaddingCode::name() const {
  return "Padding(L=" + std::to_string(len_l_) + ",M=" + std::to_string(len_m_) +
         ",q=" + std::to_string(q_) + ")";
}

Word PaddingCode::encode(std::span<const Symbol> message) const {
  CLB_EXPECT(message.size() == len_l_, "PaddingCode: wrong message length");
  check_symbols(message, q_);
  Word cw(message.begin(), message.end());
  cw.resize(len_m_, 0);
  return cw;
}

RepetitionCode::RepetitionCode(std::size_t codeword_length, std::uint64_t q)
    : len_m_(codeword_length), q_(q) {
  CLB_EXPECT(len_m_ >= 1, "RepetitionCode requires M >= 1");
  CLB_EXPECT(q_ >= 2, "RepetitionCode requires |Sigma| >= 2");
}

std::string RepetitionCode::name() const {
  return "Repetition(M=" + std::to_string(len_m_) + ",q=" + std::to_string(q_) +
         ")";
}

Word RepetitionCode::encode(std::span<const Symbol> message) const {
  CLB_EXPECT(message.size() == 1, "RepetitionCode: message length is 1");
  check_symbols(message, q_);
  return Word(len_m_, message[0]);
}

}  // namespace congestlb::codes
