#include "comm/exact_cc.hpp"

#include <limits>
#include <unordered_map>

#include "support/expect.hpp"

namespace congestlb::comm {

namespace {

class CcSolver {
 public:
  explicit CcSolver(const CcMatrix& f) : f_(&f) {
    rows_ = f.size();
    CLB_EXPECT(rows_ >= 1 && rows_ <= kMaxCcDomain,
               "exact cc: row count out of range");
    cols_ = f[0].size();
    CLB_EXPECT(cols_ >= 1 && cols_ <= kMaxCcDomain,
               "exact cc: column count out of range");
    for (const auto& row : f) {
      CLB_EXPECT(row.size() == cols_, "exact cc: ragged matrix");
      for (auto v : row) CLB_EXPECT(v <= 1, "exact cc: non-boolean entry");
    }
  }

  std::size_t solve() {
    const std::uint32_t all_rows = (1u << rows_) - 1;
    const std::uint32_t all_cols = (1u << cols_) - 1;
    return depth(all_rows, all_cols);
  }

 private:
  /// Is f constant on the rectangle? (Empty rectangles never occur: splits
  /// are into nonempty parts.)
  bool constant(std::uint32_t rmask, std::uint32_t cmask) const {
    int seen = -1;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (!(rmask & (1u << r))) continue;
      for (std::size_t c = 0; c < cols_; ++c) {
        if (!(cmask & (1u << c))) continue;
        const int v = (*f_)[r][c];
        if (seen == -1) {
          seen = v;
        } else if (seen != v) {
          return false;
        }
      }
    }
    return true;
  }

  std::size_t depth(std::uint32_t rmask, std::uint32_t cmask) {
    const std::uint64_t key = (static_cast<std::uint64_t>(rmask) << 32) | cmask;
    if (auto it = memo_.find(key); it != memo_.end()) return it->second;
    std::size_t best;
    if (constant(rmask, cmask)) {
      best = 0;
    } else {
      best = std::numeric_limits<std::size_t>::max();
      // Alice speaks: partition the live rows into (sub, rest), both
      // nonempty. Enumerate proper nonempty submasks; (sub, rest) and
      // (rest, sub) are symmetric, so halve by requiring sub to contain
      // the lowest live row.
      const std::uint32_t low_row = rmask & (~rmask + 1);
      for (std::uint32_t sub = (rmask - 1) & rmask; sub; sub = (sub - 1) & rmask) {
        if (!(sub & low_row)) continue;
        const std::uint32_t rest = rmask ^ sub;
        const std::size_t d =
            1 + std::max(depth(sub, cmask), depth(rest, cmask));
        best = std::min(best, d);
        if (best == 1) break;
      }
      const std::uint32_t low_col = cmask & (~cmask + 1);
      for (std::uint32_t sub = (cmask - 1) & cmask; sub && best > 1;
           sub = (sub - 1) & cmask) {
        if (!(sub & low_col)) continue;
        const std::uint32_t rest = cmask ^ sub;
        const std::size_t d =
            1 + std::max(depth(rmask, sub), depth(rmask, rest));
        best = std::min(best, d);
      }
    }
    memo_.emplace(key, best);
    return best;
  }

  const CcMatrix* f_;
  std::size_t rows_ = 0, cols_ = 0;
  std::unordered_map<std::uint64_t, std::size_t> memo_;
};

}  // namespace

std::size_t exact_deterministic_cc(const CcMatrix& f) {
  return CcSolver(f).solve();
}

CcMatrix disjointness_matrix(std::size_t k) {
  CLB_EXPECT(k >= 1 && (1u << k) <= kMaxCcDomain,
             "disjointness matrix: k out of range");
  const std::size_t n = 1u << k;
  CcMatrix f(n, std::vector<std::uint8_t>(n));
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = 0; y < n; ++y) {
      f[x][y] = (x & y) == 0 ? 1 : 0;
    }
  }
  return f;
}

std::size_t fooling_set_lower_bound(
    const CcMatrix& f,
    const std::vector<std::pair<std::size_t, std::size_t>>& pairs) {
  CLB_EXPECT(!f.empty() && !pairs.empty(), "fooling set: empty input");
  const std::size_t rows = f.size(), cols = f[0].size();
  auto at = [&](std::size_t x, std::size_t y) -> std::uint8_t {
    CLB_EXPECT(x < rows && y < cols, "fooling set: pair out of range");
    return f[x][y];
  };
  const std::uint8_t b = at(pairs[0].first, pairs[0].second);
  for (const auto& [x, y] : pairs) {
    CLB_EXPECT(at(x, y) == b, "fooling set: diagonal values differ");
  }
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    for (std::size_t j = i + 1; j < pairs.size(); ++j) {
      const bool cross_breaks =
          at(pairs[i].first, pairs[j].second) != b ||
          at(pairs[j].first, pairs[i].second) != b;
      CLB_EXPECT(cross_breaks,
                 "fooling set: pairs " + std::to_string(i) + "," +
                     std::to_string(j) + " fit in one rectangle");
    }
  }
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < pairs.size()) ++bits;
  return bits;
}

std::vector<std::pair<std::size_t, std::size_t>> disjointness_fooling_set(
    std::size_t k) {
  CLB_EXPECT(k >= 1 && (1u << k) <= kMaxCcDomain,
             "disjointness fooling set: k out of range");
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  const std::size_t n = 1u << k;
  for (std::size_t s = 0; s < n; ++s) {
    pairs.emplace_back(s, (n - 1) ^ s);  // (S, complement of S)
  }
  return pairs;
}

CcMatrix equality_matrix(std::size_t n) {
  CLB_EXPECT(n >= 1 && n <= kMaxCcDomain, "equality matrix: n out of range");
  CcMatrix f(n, std::vector<std::uint8_t>(n, 0));
  for (std::size_t x = 0; x < n; ++x) f[x][x] = 1;
  return f;
}

CcMatrix greater_than_matrix(std::size_t n) {
  CLB_EXPECT(n >= 1 && n <= kMaxCcDomain,
             "greater-than matrix: n out of range");
  CcMatrix f(n, std::vector<std::uint8_t>(n, 0));
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = 0; y < x; ++y) f[x][y] = 1;
  }
  return f;
}

}  // namespace congestlb::comm
