// Campaign runner: spec -> job DAG -> scheduler -> resumable manifest.
//
// run_campaign expands a CampaignSpec into a DAG of jobs (one shared build
// job per distinct gadget shape, then per-sweep solve and check jobs),
// executes it on the work-stealing scheduler with the content-addressed
// cache underneath, and returns one JobRecord per job. The records are the
// run manifest: write_manifest serializes them as `campaign.json`,
// read_manifest parses one back, and passing the parsed records as `prior`
// to run_campaign resumes — jobs whose (id, inputs_hash) match a prior
// record are skipped (their records carried over) or replayed from
// recorded data instead of re-executed, so a killed campaign completes by
// re-running only the missing work.
//
// Determinism contract: every record field in the manifest's canonical
// form is a pure function of the spec. Worker count, steal order, cache
// temperature, and kill/resume history are all invisible there — the
// volatile fields (wall times, cache hits, thread count) live behind
// ManifestWriteOptions::include_volatile and are excluded from the
// canonical form that the bit-identity tests compare.

#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "campaign/cache.hpp"
#include "campaign/jobs.hpp"
#include "campaign/manifest.hpp"
#include "campaign/supervise.hpp"

namespace congestlb::obs {
class MetricsRegistry;
}

namespace congestlb::campaign {

class SharedScheduler;
struct JobRecord;

struct RunOptions {
  std::size_t threads = 1;
  /// Disk tier directory for the content cache; empty = in-memory only.
  std::string cache_dir;
  /// Stop issuing new jobs after this many executed (0 = run everything).
  /// Simulates a killed campaign: the returned records cover only the jobs
  /// that finished, exactly what a manifest written at kill time holds.
  std::size_t max_jobs = 0;
  /// Optional metrics sink; campaign.* counters/histograms are registered
  /// there and a campaign.*-filtered snapshot lands in the full manifest.
  obs::MetricsRegistry* metrics = nullptr;
  /// Per-job wall-clock deadline for exact-solve jobs (0 = none). A solve
  /// whose deadline fires still records its certified best incumbent,
  /// flagged approximate — approximate results are never cached and never
  /// honored on resume, so a later run with more budget replaces them.
  std::uint64_t job_deadline_ms = 0;
  /// Retry/quarantine discipline for failing jobs (campaign/supervise.hpp).
  RetryPolicy retry;
  /// Deterministic fault injection for tests and the chaos harness.
  std::optional<ChaosConfig> chaos;
  /// Multi-tenant execution (docs/SERVICE.md): run this campaign's jobs on
  /// a long-running shared pool instead of a private scheduler. The DAG is
  /// still enforced here (a job is only submitted once its prerequisites
  /// completed); the pool decides global ordering by `priority`. `threads`
  /// and `max_jobs` are ignored on this path — pool size belongs to the
  /// pool, and kill simulation to the chaos layer.
  SharedScheduler* shared = nullptr;
  /// Priority for every job of this campaign on the shared pool (higher
  /// runs first). Ignored when shared == nullptr.
  int priority = 0;
  /// Per-job completion hook, invoked from the executing worker right
  /// after each record lands (executed or replayed jobs; records carried
  /// whole from a prior manifest are skipped without a call). The service
  /// streams these to watching clients as server-sent events. Must be
  /// thread-safe; must not throw.
  std::function<void(const JobRecord&)> on_job;
};

struct JobRecord {
  std::string id;  ///< "gadget/<point>" or "<sweep>/<point>/<stage>"
  std::uint64_t inputs_hash = 0;
  std::string stage;    ///< "build" | "solve-yes" | "solve-no" | "check"
  /// "built" | "opt" | "holds" | "violated", or the fault verdicts:
  /// "quarantined" (failed every retry) | "blocked" (a dependency was
  /// quarantined or blocked, so this job never ran). Fault verdicts are
  /// canonical — a degraded campaign is visibly degraded in the manifest —
  /// but match() never honors them on resume, so the jobs re-run.
  std::string verdict;
  PointOutcome outcome;
  // Volatile (excluded from the canonical manifest form):
  bool resumed = false;    ///< carried/replayed from a prior manifest
  bool cache_hit = false;  ///< served from the content cache
  double wall_ms = 0;
  std::size_t attempts = 1;      ///< supervisor tries consumed
  std::uint64_t backoff_us = 0;  ///< total scheduled retry backoff
  std::string diagnostic;        ///< last failure (fault verdicts only)
};

struct CampaignResult {
  std::string campaign;
  std::uint64_t spec_hash = 0;
  /// One record per completed job, sorted by id. A truncated (max_jobs)
  /// run omits records for jobs that never executed.
  std::vector<JobRecord> records;
  std::size_t jobs_total = 0;    ///< jobs the spec expands to
  std::size_t jobs_run = 0;      ///< executed this run (incl. replays)
  std::size_t jobs_resumed = 0;  ///< carried or replayed from `prior`
  bool complete = false;         ///< every expanded job has a record
  std::size_t checks = 0;          ///< check records present
  std::size_t checks_holding = 0;  ///< ... with verdict "holds"
  /// complete && every check holds && nothing quarantined or blocked.
  bool all_hold = false;
  std::size_t jobs_quarantined = 0;  ///< verdict == "quarantined"
  std::size_t jobs_blocked = 0;      ///< verdict == "blocked"
  std::uint64_t retries = 0;         ///< supervisor retry attempts, total
  CacheStats cache;
  double total_wall_ms = 0;
  std::size_t threads = 1;

  const JobRecord* find(std::string_view id) const;
};

/// Number of jobs the spec expands to (shared builds + per-sweep solves
/// and checks) — what CampaignResult::jobs_total will report, computable
/// without running anything. The service uses it for progress totals.
std::size_t count_campaign_jobs(const CampaignSpec& spec);

/// Pre-register every campaign.* instrument and pre-size the registry's
/// shard space. MetricsRegistry registration is serial-only; run_campaign
/// registers lazily, which is fine for one-shot CLI runs but races when
/// many campaigns run concurrently against one registry (the service).
/// Calling this once at startup — before any concurrent run_campaign —
/// turns those lazy registrations into read-only lookups and the
/// ensure_shards call into a no-op.
void register_campaign_metrics(obs::MetricsRegistry& metrics,
                               std::size_t worker_slots);

/// Execute the campaign. `prior` (e.g. read_manifest of a partial run)
/// enables resume; pass nullptr for a fresh run. Throws InvariantError on
/// spec problems; job-level errors propagate after the DAG drains.
CampaignResult run_campaign(const CampaignSpec& spec, const RunOptions& opts,
                            const std::map<std::string, JobRecord>* prior =
                                nullptr);

struct ManifestWriteOptions {
  /// Include wall times, cache hits, thread count, cache stats, and the
  /// campaign.* metrics snapshot. OFF = the canonical form: bit-identical
  /// across worker counts, cache states, and kill/resume histories.
  bool include_volatile = true;
  const obs::MetricsRegistry* metrics = nullptr;
};

void write_manifest(std::ostream& os, const CampaignResult& result,
                    const ManifestWriteOptions& opts = {});

/// A parsed manifest: enough to resume (records) and to report status.
struct ParsedManifest {
  std::string campaign;
  std::uint64_t spec_hash = 0;
  std::map<std::string, JobRecord> records;
  std::size_t jobs_total = 0;
  bool complete = false;
  bool all_hold = false;
  std::size_t jobs_quarantined = 0;  ///< records with verdict "quarantined"
  std::size_t jobs_blocked = 0;      ///< records with verdict "blocked"
};

/// Parse a manifest document (canonical or full). Throws InvariantError on
/// anything that is not a clb campaign manifest.
ParsedManifest read_manifest(std::string_view json_text);

}  // namespace congestlb::campaign
