// Reed-Solomon codes: the construction behind Theorem 4.
//
// A message (c_0, ..., c_{L-1}) in GF(p)^L is the coefficient vector of a
// polynomial f of degree < L; its codeword is (f(0), f(1), ..., f(M-1)).
// Two distinct polynomials of degree < L agree on at most L-1 points, so the
// minimum distance is M - L + 1 >= M - L — meeting (in fact exceeding by one)
// the d = M - L promised by Theorem 4.

#pragma once

#include <optional>

#include "codes/code_mapping.hpp"
#include "codes/prime_field.hpp"

namespace congestlb::codes {

class ReedSolomonCode final : public CodeMapping {
 public:
  /// Requires: p prime, L >= 1, L <= M <= p.
  ReedSolomonCode(std::size_t message_length, std::size_t codeword_length,
                  std::uint64_t p);

  std::uint64_t alphabet_size() const override { return field_.order(); }
  std::size_t message_length() const override { return len_l_; }
  std::size_t codeword_length() const override { return len_m_; }
  /// Singleton-style distance M - L + 1.
  std::size_t min_distance() const override { return len_m_ - len_l_ + 1; }
  std::string name() const override;

  Word encode(std::span<const Symbol> message) const override;

  /// Erasure decoding: recover the message from a codeword with up to
  /// M - L erased positions (std::nullopt). Interpolates the unique
  /// degree-< L polynomial through any L known points (Lagrange) and
  /// verifies it against every remaining known position — throwing
  /// InvariantError if the known symbols are inconsistent with a codeword
  /// (i.e. corrupted rather than merely erased) or if fewer than L
  /// positions survive.
  Word decode(std::span<const std::optional<Symbol>> received) const;

  const PrimeField& field() const { return field_; }

 private:
  std::size_t len_l_;
  std::size_t len_m_;
  PrimeField field_;
};

}  // namespace congestlb::codes
