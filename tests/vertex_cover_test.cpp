// Minimum weighted vertex cover: complement duality with MaxIS, the
// local-ratio 2-approximation, the matching 2-approximation, and verifier
// rejections.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "maxis/branch_and_bound.hpp"
#include "maxis/brute_force.hpp"
#include "maxis/vertex_cover.hpp"
#include "support/expect.hpp"
#include "support/rng.hpp"

namespace congestlb::maxis {
namespace {

TEST(VertexCover, IsVertexCoverBasics) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  EXPECT_TRUE(is_vertex_cover(g, std::vector<NodeId>{1, 2}));
  EXPECT_TRUE(is_vertex_cover(g, std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_FALSE(is_vertex_cover(g, std::vector<NodeId>{0, 3}));  // misses 1-2
  EXPECT_FALSE(is_vertex_cover(g, std::vector<NodeId>{}));
  EXPECT_TRUE(is_vertex_cover(graph::Graph(3), std::vector<NodeId>{}));
  EXPECT_THROW(is_vertex_cover(g, std::vector<NodeId>{9}), InvariantError);
}

TEST(VertexCover, CheckedCoverValidatesAndDeduplicates) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.set_weight(1, 5);
  const auto sol = checked_cover(g, {1, 1});
  EXPECT_EQ(sol.nodes, (std::vector<NodeId>{1}));
  EXPECT_EQ(sol.weight, 5);
  EXPECT_THROW(checked_cover(g, {2}), InvariantError);
}

TEST(VertexCover, ComplementOfIndependentSet) {
  graph::Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const auto vc = cover_from_independent_set(g, std::vector<NodeId>{0, 2, 4});
  EXPECT_EQ(vc.nodes, (std::vector<NodeId>{1, 3}));
  EXPECT_THROW(
      cover_from_independent_set(g, std::vector<NodeId>{0, 1}),
      InvariantError);
}

class VcDuality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VcDuality, ExactVcEqualsTotalMinusMaxIs) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 15; ++trial) {
    auto g = graph::gnp_random(rng, 2 + rng.below(16), 0.35, 6);
    const auto vc = solve_vertex_cover_exact(g);
    const auto is = solve_brute_force(g);
    EXPECT_EQ(vc.weight, g.total_weight() - is.weight);
    EXPECT_TRUE(is_vertex_cover(g, vc.nodes));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VcDuality, ::testing::Values(71, 72, 73, 74));

class VcApproximations : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VcApproximations, LocalRatioWithinFactorTwo) {
  Rng rng(GetParam() + 10);
  for (int trial = 0; trial < 15; ++trial) {
    auto g = graph::gnp_random(rng, 2 + rng.below(16), 0.35, 6);
    const auto approx = solve_vertex_cover_local_ratio(g);
    const auto exact = solve_vertex_cover_exact(g);
    EXPECT_TRUE(is_vertex_cover(g, approx.nodes));
    EXPECT_LE(approx.weight, 2 * exact.weight);
    EXPECT_GE(approx.weight, exact.weight);
  }
}

TEST_P(VcApproximations, MatchingCoverWithinFactorTwoUnweighted) {
  Rng rng(GetParam() + 20);
  for (int trial = 0; trial < 15; ++trial) {
    auto g = graph::gnp_random(rng, 2 + rng.below(16), 0.35, 1);
    const auto approx = solve_vertex_cover_matching(g);
    const auto exact = solve_vertex_cover_exact(g);
    EXPECT_TRUE(is_vertex_cover(g, approx.nodes));
    EXPECT_LE(approx.weight, 2 * exact.weight);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VcApproximations,
                         ::testing::Values(81, 82, 83, 84));

TEST(VertexCover, LocalRatioTightOnStar) {
  // Star with a heavy center: local ratio pays the leaves, exact takes the
  // center — the classic factor-2 witness when center weight = sum of
  // leaf weights.
  auto g = graph::star_graph(5);
  g.set_weight(0, 4);
  const auto exact = solve_vertex_cover_exact(g);
  EXPECT_EQ(exact.weight, 4);
  const auto approx = solve_vertex_cover_local_ratio(g);
  EXPECT_LE(approx.weight, 8);
}

TEST(VertexCover, EdgelessGraphNeedsNothing) {
  graph::Graph g(6, 3);
  EXPECT_EQ(solve_vertex_cover_exact(g).weight, 0);
  EXPECT_EQ(solve_vertex_cover_local_ratio(g).nodes.size(), 0u);
}

}  // namespace
}  // namespace congestlb::maxis
