#include "sim/reduction.hpp"

#include "obs/trace.hpp"
#include "support/expect.hpp"

namespace congestlb::sim {

namespace {

// Driver phase ids carried by kPhase marks (value field); see
// docs/OBSERVABILITY.md.
constexpr std::uint64_t kPhaseSimulate = 1;  ///< network rounds running
constexpr std::uint64_t kPhaseDecide = 2;    ///< gap predicate evaluated

void phase_mark(obs::Tracer* tracer, std::uint64_t phase,
                std::uint32_t round) {
  if (tracer != nullptr && tracer->enabled()) {
    tracer->emit({phase, round, obs::TraceEvent::kNone, obs::TraceEvent::kNone,
                  obs::EventKind::kPhase});
  }
}

/// Shared implementation: `owner(v)` maps nodes to players, the thresholds
/// come from the construction's gap predicate.
template <typename OwnerFn>
ReductionReport run_reduction(
    const graph::Graph& gx, const comm::PromiseInstance& inst,
    const congest::ProgramFactory& factory, comm::Blackboard& board,
    congest::NetworkConfig cfg, OwnerFn owner,
    const std::vector<std::pair<graph::NodeId, graph::NodeId>>& cut,
    graph::Weight yes_weight, graph::Weight no_bound) {
  CLB_EXPECT(!cfg.on_message,
             "reduction driver installs its own message observer");
  CLB_EXPECT(board.num_players() == inst.t,
             "blackboard player count must match the instance");

  ReductionReport rep;
  rep.n = gx.num_nodes();
  rep.t = inst.t;
  rep.cut_edges = cut.size();
  rep.yes_weight = yes_weight;
  rep.no_bound = no_bound;
  rep.ground_truth_disjoint = inst.answer_is_disjoint();

  // The simulation argument: cut-crossing messages go on the blackboard,
  // charged to the owner of the sending node. Under fault injection the
  // observer fires per *delivery*, so the board sees corrupted payloads as
  // corrupted, echoes twice, and dropped messages never.
  std::uint64_t observed_cut_bits = 0;
  cfg.on_message = [&board, &rep, &observed_cut_bits, owner](
                       std::size_t round, graph::NodeId from,
                       graph::NodeId to, const congest::Message& msg) {
    const std::size_t po = owner(from);
    const std::size_t pd = owner(to);
    if (po == pd) return;  // internal to one player: simulated for free
    board.post(po, std::vector<std::byte>(msg.data.begin(), msg.data.end()),
               msg.bits,
               "msg " + std::to_string(from) + "->" + std::to_string(to));
    observed_cut_bits += msg.bits;
    if (rep.cut_bits_per_round.size() <= round) {
      rep.cut_bits_per_round.resize(round + 1, 0);
    }
    rep.cut_bits_per_round[round] += msg.bits;
  };

  // Mirror cut charges into the trace/metrics the caller configured on the
  // network, so a single trace shows rounds, deliveries, and board posts on
  // one timeline.
  board.attach_observability(cfg.tracer, cfg.metrics);

  congest::Network net(gx, factory, cfg);
  phase_mark(cfg.tracer, kPhaseSimulate, 0);
  const congest::RunStats stats = net.run();
  phase_mark(cfg.tracer, kPhaseDecide,
             static_cast<std::uint32_t>(stats.rounds));

  rep.rounds = stats.rounds;
  rep.bits_per_edge = net.bits_per_edge();
  rep.total_bits = stats.bits_sent;
  rep.algorithm_finished = stats.all_finished;
  rep.algorithm_failed = stats.any_failed;
  rep.net_stats = stats;
  rep.failure_diagnostics = net.failure_diagnostics();
  rep.blackboard_bits = board.total_bits();
  rep.blackboard_entries = board.transcript().size();
  // Each undirected cut edge carries up to one message per *direction* per
  // round, so the per-round budget is 2 * |cut| * B — the factor the
  // paper's O(log n) absorbs.
  rep.theorem5_budget = static_cast<std::uint64_t>(rep.rounds) * 2 *
                        rep.cut_edges * rep.bits_per_edge;
  rep.accounting_ok = rep.blackboard_bits <= rep.theorem5_budget;
  // Exactness: what the observer posted must equal what the network
  // charged to the cut edges — the invariant faults must not bend.
  std::uint64_t charged_cut_bits = 0;
  for (auto [u, v] : cut) charged_cut_bits += net.bits_on_edge(u, v);
  rep.cut_accounting_exact = observed_cut_bits == charged_cut_bits;

  // Read off the answer via the gap predicate: the strings intersect iff
  // the graph has an IS of weight >= yes_weight (Definition 6). Only a run
  // that actually completed gets to answer — a faulted run that failed()
  // or timed out reports itself through the flags above instead of
  // pretending its half-computed output means something.
  if (stats.all_finished && !stats.any_failed) {
    const auto selected = net.selected_nodes();
    CLB_EXPECT(gx.is_independent_set(selected),
               "reduction: algorithm output is not an independent set");
    rep.computed_weight = gx.weight_of(selected);
    rep.decided_disjoint = rep.computed_weight < yes_weight;
    rep.correct = rep.decided_disjoint == rep.ground_truth_disjoint;
  }
  return rep;
}

}  // namespace

ReductionReport run_linear_reduction(const lb::LinearConstruction& c,
                                     const comm::PromiseInstance& inst,
                                     const congest::ProgramFactory& factory,
                                     comm::Blackboard& board,
                                     congest::NetworkConfig cfg) {
  const graph::Graph gx = c.instantiate(inst);
  return run_reduction(
      gx, inst, factory, board, std::move(cfg),
      [&c](graph::NodeId v) { return c.owner(v); }, c.cut_edges(),
      c.yes_weight(), c.no_bound());
}

ReductionReport run_quadratic_reduction(const lb::QuadraticConstruction& c,
                                        const comm::PromiseInstance& inst,
                                        const congest::ProgramFactory& factory,
                                        comm::Blackboard& board,
                                        congest::NetworkConfig cfg) {
  const graph::Graph fx = c.instantiate(inst);
  return run_reduction(
      fx, inst, factory, board, std::move(cfg),
      [&c](graph::NodeId v) { return c.owner(v); }, c.cut_edges(),
      c.yes_weight(), c.no_bound());
}

}  // namespace congestlb::sim
