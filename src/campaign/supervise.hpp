// Fault-domain supervision for campaign jobs: retries with deterministic
// backoff, poison-job quarantine, chaos injection, and the crash-recovery
// audit behind `clb campaign fsck` (docs/ROBUSTNESS.md).
//
// The scheduler (campaign/scheduler.hpp) answers "when does a job run";
// this layer answers "what happens when it fails". A job body that throws
// is retried up to RetryPolicy::max_attempts times with an exponential
// backoff whose jitter comes from support/deadline.hpp's backoff_delay_us —
// a pure function of (job seed, attempt), so the retry/backoff sequence a
// job experiences is byte-identical across worker counts and runs. A job
// that fails every attempt is *quarantined*: the supervisor records a
// FaultRecord diagnostic and reports failure to the caller instead of
// rethrowing, so one poison job degrades one grid point rather than
// sinking the whole campaign.
//
// Chaos injection is the test seam for all of the above. ChaosConfig (or
// the CLB_CHAOS_* environment contract, read by chaos_from_env) injects
// deterministic per-(job, attempt) failures, marks matching job ids as
// unconditionally poisoned, and can simulate SIGKILL by _Exit(137)-ing the
// process after N supervised completions — destructors are deliberately
// skipped, so in-flight cache writes are torn exactly like a real kill.
//
// fsck_campaign audits the on-disk state such a kill leaves behind. Every
// cache mutation is bracketed by a write-ahead intent marker (see
// campaign/cache.hpp), so the possible crash states are enumerable:
// dangling intents, orphaned temp files, torn slots (header/digest
// verification fails), and a torn manifest. `--repair` deletes exactly
// those — the content cache is the campaign's write-ahead log, so a
// resumed run rebuilds anything deleted and converges to the same
// canonical manifest.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace congestlb::campaign {

struct RetryPolicy {
  /// Total tries per job (first attempt included). 1 = no retries.
  std::size_t max_attempts = 3;
  /// Backoff envelope: attempt k waits in [base*2^k / 2, base*2^k] us,
  /// saturating at cap (support/deadline.hpp).
  std::uint64_t backoff_base_us = 500;
  std::uint64_t backoff_cap_us = 50'000;
  /// Actually sleep the backoff. Off in unit tests: the *sequence* of
  /// delays stays identical (it is pure), only the waiting is skipped.
  bool sleep = true;
};

/// Deterministic fault injection. All decisions are pure functions of
/// (fail_seed, job id, attempt) — never of wall clock or scheduling.
struct ChaosConfig {
  /// Probability that a given (job, attempt) fails before the body runs.
  double fail_rate = 0.0;
  std::uint64_t fail_seed = 0;
  /// Job ids containing this substring fail *every* attempt — the poison
  /// job that must end up quarantined. Empty = no poison.
  std::string poison_substring;
  /// _Exit(137) after this many supervised jobs complete (success or
  /// quarantine), simulating SIGKILL mid-campaign. < 0 = never.
  std::int64_t kill_after_jobs = -1;
};

/// Environment contract (used by tests/chaos_harness and scripts/
/// chaos_campaign.py to attack a live `clb campaign run`):
///   CLB_CHAOS_KILL_AFTER_JOBS=N   kill_after_jobs
///   CLB_CHAOS_FAIL_RATE=p         fail_rate in [0,1]
///   CLB_CHAOS_FAIL_SEED=s         fail_seed (decimal u64)
///   CLB_CHAOS_POISON=substr       poison_substring
/// Returns nullopt when none of the variables is set; throws
/// InvariantError on malformed values (chaos config typos must not
/// silently run a non-chaotic campaign).
std::optional<ChaosConfig> chaos_from_env();

/// Diagnostic for a quarantined job, persisted into the manifest so a
/// post-mortem does not depend on scraped logs.
struct FaultRecord {
  std::string job_id;
  std::size_t attempts = 0;
  std::uint64_t backoff_total_us = 0;
  std::string diagnostic;  ///< what() of the last failure
};

/// What supervise() observed for one job.
struct SuperviseOutcome {
  bool ok = false;
  std::size_t attempts = 1;             ///< tries consumed (>= 1)
  std::uint64_t backoff_total_us = 0;   ///< sum of scheduled backoff delays
  std::string diagnostic;               ///< last failure message (!ok)
};

/// Thread-safe: supervise() may be called concurrently from scheduler
/// workers; counters and the fault log are internally synchronized.
class Supervisor {
 public:
  /// `seed` namespaces the backoff jitter per campaign (each job's delay
  /// stream is hash_mix(seed, fnv1a64(job_id))-derived).
  Supervisor(RetryPolicy policy, std::uint64_t seed,
             std::optional<ChaosConfig> chaos = std::nullopt);

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Run `body` under the retry/quarantine discipline. Body exceptions
  /// (std::exception) are caught and retried; on exhaustion the outcome
  /// reports !ok with a diagnostic and the job is logged as a fault —
  /// never rethrown. Exceptions that are not std::exception propagate
  /// (they indicate harness bugs, not job failures).
  SuperviseOutcome supervise(std::string_view job_id,
                             const std::function<void()>& body);

  /// Pure: the exact delay supervise() schedules before retry `attempt`
  /// (0-based) of `job_id`. Exposed so tests pin the cross-thread
  /// byte-identity of the backoff sequence without racing real sleeps.
  std::uint64_t backoff_for(std::string_view job_id,
                            std::size_t attempt) const;

  std::uint64_t retries() const { return retries_.load(); }
  std::uint64_t quarantined() const { return quarantined_.load(); }
  std::vector<FaultRecord> faults() const;

 private:
  bool inject_failure(std::string_view job_id, std::size_t attempt) const;
  void note_completed();

  RetryPolicy policy_;
  std::uint64_t seed_;
  std::optional<ChaosConfig> chaos_;
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> quarantined_{0};
  std::atomic<std::int64_t> completed_{0};
  mutable std::mutex mu_;
  std::vector<FaultRecord> faults_;
};

// ---- Crash-recovery audit (clb campaign fsck) ----------------------------

struct FsckOptions {
  /// Delete every classified artifact (dangling intents, orphan tmps, torn
  /// slots, a torn manifest). Foreign files are reported but never deleted.
  bool repair = false;
};

struct FsckIssue {
  enum class Kind : std::uint8_t {
    kDanglingIntent,  ///< write-ahead marker with no completed rename
    kOrphanTmp,       ///< temp file a crash stranded before rename
    kTornSlot,        ///< slot failing header/size/digest verification
    kTornManifest,    ///< manifest file that does not parse
    kForeignFile,     ///< unrecognized file in the cache tree (kept)
  };
  Kind kind = Kind::kForeignFile;
  std::string path;
  std::string detail;
  bool repaired = false;
};

std::string_view to_string(FsckIssue::Kind kind);

struct FsckReport {
  std::size_t slots_scanned = 0;  ///< .clbc files examined
  std::size_t slots_valid = 0;    ///< ... passing full verification
  std::size_t repaired = 0;       ///< issues deleted under --repair
  std::vector<FsckIssue> issues;

  /// No torn/dangling/orphaned artifacts (foreign files don't count: they
  /// are outside the protocol and left alone).
  bool clean() const;
};

/// Audit `cache_dir` (every kind subdirectory) and, when non-empty,
/// `manifest_path` plus its intent/tmp siblings. Missing cache_dir is
/// clean (a campaign that never wrote is consistent). With opts.repair,
/// deletes what it classifies; a second pass is then clean by
/// construction.
FsckReport fsck_campaign(const std::string& cache_dir,
                         const std::string& manifest_path = {},
                         const FsckOptions& opts = {});

/// JSON report (schema key "clb_fsck_report": 1) for CI artifacts.
void write_fsck_report(std::ostream& os, const FsckReport& report);

}  // namespace congestlb::campaign
