#include "graph/io.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#define CLB_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "support/expect.hpp"

namespace congestlb::graph {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << "n " << g.num_nodes() << '\n';
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.weight(v) != 1) os << "w " << v << ' ' << g.weight(v) << '\n';
  }
  for (const auto& b : g.implicit_blocks()) {
    switch (b.kind) {
      case BlockKind::kClique:
        os << "b clique " << b.a_begin << ' ' << b.a_end << '\n';
        break;
      case BlockKind::kBiclique:
        os << "b biclique " << b.a_begin << ' ' << b.a_end << ' ' << b.b_begin
           << ' ' << b.b_end << '\n';
        break;
      case BlockKind::kAntiMatchingGrid:
        os << "b grid " << b.base << ' ' << b.stride << ' ' << b.rows << ' '
           << b.row_len << '\n';
        break;
    }
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.explicit_neighbors(u)) {
      if (u < v) os << "e " << u << ' ' << v << '\n';
    }
  }
}

Graph read_edge_list(std::istream& is) {
  std::string line;
  Graph g;
  bool have_n = false;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    char kind = 0;
    ss >> kind;
    auto fail = [&](const char* why) {
      throw InvariantError("read_edge_list: " + std::string(why) + " at line " +
                           std::to_string(lineno));
    };
    if (kind == 'n') {
      std::size_t n = 0;
      if (!(ss >> n)) fail("bad node count");
      if (have_n) fail("duplicate 'n' line");
      g = Graph(n);
      have_n = true;
    } else if (kind == 'w') {
      std::size_t v = 0;
      Weight w = 0;
      if (!have_n) fail("'w' before 'n'");
      if (!(ss >> v >> w) || v >= g.num_nodes()) fail("bad weight line");
      g.set_weight(v, w);
    } else if (kind == 'b') {
      std::string bkind;
      if (!have_n) fail("'b' before 'n'");
      if (!(ss >> bkind)) fail("bad block line");
      try {
        if (bkind == "clique") {
          std::size_t a0 = 0, a1 = 0;
          if (!(ss >> a0 >> a1)) fail("bad clique block");
          g.add_implicit_block(ImplicitBlock::clique(a0, a1));
        } else if (bkind == "biclique") {
          std::size_t a0 = 0, a1 = 0, b0 = 0, b1 = 0;
          if (!(ss >> a0 >> a1 >> b0 >> b1)) fail("bad biclique block");
          g.add_implicit_block(ImplicitBlock::biclique(a0, a1, b0, b1));
        } else if (bkind == "grid") {
          std::size_t base = 0, stride = 0, rows = 0, row_len = 0;
          if (!(ss >> base >> stride >> rows >> row_len)) {
            fail("bad grid block");
          }
          g.add_implicit_block(
              ImplicitBlock::anti_matching_grid(base, stride, rows, row_len));
        } else {
          fail("unknown block kind");
        }
      } catch (const InvariantError&) {
        fail("invalid block parameters");
      }
    } else if (kind == 'e') {
      std::size_t u = 0, v = 0;
      if (!have_n) fail("'e' before 'n'");
      if (!(ss >> u >> v) || u >= g.num_nodes() || v >= g.num_nodes() || u == v) {
        fail("bad edge line");
      }
      g.add_edge(u, v);
    } else {
      fail("unknown record kind");
    }
  }
  CLB_EXPECT(have_n, "read_edge_list: missing 'n' line");
  return g;
}

void write_dot(std::ostream& os, const Graph& g, const DotOptions& opts) {
  os << "graph " << opts.graph_name << " {\n";
  os << "  node [shape=circle];\n";

  // Group nodes by cluster.
  std::map<std::string, std::vector<NodeId>> groups;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto it = opts.cluster.find(v);
    groups[it == opts.cluster.end() ? std::string{} : it->second].push_back(v);
  }
  auto emit_node = [&](NodeId v, const char* indent) {
    os << indent << 'n' << v << " [label=\"";
    if (!g.label(v).empty()) {
      os << g.label(v);
    } else {
      os << v;
    }
    if (opts.show_weights && g.weight(v) != 1) os << "\\nw=" << g.weight(v);
    os << "\"];\n";
  };
  std::size_t cluster_idx = 0;
  for (const auto& [name, nodes] : groups) {
    if (name.empty()) {
      for (NodeId v : nodes) emit_node(v, "  ");
    } else {
      os << "  subgraph cluster_" << cluster_idx++ << " {\n";
      os << "    label=\"" << name << "\";\n";
      for (NodeId v : nodes) emit_node(v, "    ");
      os << "  }\n";
    }
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.explicit_neighbors(u)) {
      if (u < v) os << "  n" << u << " -- n" << v << ";\n";
    }
  }
  for (const auto& b : g.implicit_blocks()) {
    b.for_each_edge([&](NodeId u, NodeId v) {
      os << "  n" << u << " -- n" << v << ";\n";
    });
  }
  os << "}\n";
}

// ---------------------------------------------------------------------------
// StreamingCsrBuilder

StreamingCsrBuilder::StreamingCsrBuilder(std::size_t n)
    : StreamingCsrBuilder(n, Options{}) {}

StreamingCsrBuilder::StreamingCsrBuilder(std::size_t n, Options opts)
    : n_(n), opts_(std::move(opts)), degree_(n, 0) {
  CLB_EXPECT(opts_.chunk_edges > 0, "chunk_edges must be positive");
  chunk_.reserve(opts_.chunk_edges);
  if (!opts_.spill_path.empty()) {
    spill_ = std::fopen(opts_.spill_path.c_str(), "wb+");
    CLB_EXPECT(spill_ != nullptr, "cannot open CSR spill file");
  }
}

StreamingCsrBuilder::~StreamingCsrBuilder() {
  if (spill_ != nullptr) {
    std::fclose(spill_);
    std::remove(opts_.spill_path.c_str());
  }
}

void StreamingCsrBuilder::add_edge(NodeId u, NodeId v) {
  CLB_EXPECT(!finished_, "builder already finished");
  CLB_EXPECT(u < n_ && v < n_, "edge endpoint out of range");
  CLB_EXPECT(u != v, "self-loops are not allowed");
  ++degree_[u];
  ++degree_[v];
  ++num_edges_;
  chunk_.emplace_back(u, v);
  if (chunk_.size() >= opts_.chunk_edges) flush_chunk();
}

void StreamingCsrBuilder::flush_chunk() {
  if (chunk_.empty()) return;
  if (spill_ != nullptr) {
    const std::size_t wrote = std::fwrite(
        chunk_.data(), sizeof(chunk_[0]), chunk_.size(), spill_);
    CLB_EXPECT(wrote == chunk_.size(), "CSR spill write failed");
  } else {
    spilled_chunks_.push_back(std::move(chunk_));
    chunk_ = {};
    chunk_.reserve(opts_.chunk_edges);
  }
  chunk_.clear();
}

Csr StreamingCsrBuilder::finish() {
  CLB_EXPECT(!finished_, "builder already finished");
  finished_ = true;
  Csr csr;
  csr.offsets.resize(n_ + 1, 0);
  for (std::size_t v = 0; v < n_; ++v) {
    csr.offsets[v + 1] = csr.offsets[v] + degree_[v];
  }
  csr.targets.resize(csr.offsets[n_]);
  // Reuse the degree array as the per-row scatter cursor.
  std::vector<std::uint32_t>& cursor = degree_;
  std::fill(cursor.begin(), cursor.end(), 0);
  const auto scatter = [&](std::span<const std::pair<NodeId, NodeId>> pairs) {
    for (auto [u, v] : pairs) {
      csr.targets[csr.offsets[u] + cursor[u]++] = v;
      csr.targets[csr.offsets[v] + cursor[v]++] = u;
    }
  };
  if (spill_ != nullptr) {
    std::rewind(spill_);
    std::vector<std::pair<NodeId, NodeId>> buf(opts_.chunk_edges);
    std::size_t got = 0;
    while ((got = std::fread(buf.data(), sizeof(buf[0]), buf.size(),
                             spill_)) > 0) {
      scatter({buf.data(), got});
    }
  } else {
    for (const auto& c : spilled_chunks_) scatter(c);
    spilled_chunks_.clear();
  }
  scatter(chunk_);
  chunk_.clear();
  chunk_.shrink_to_fit();
  for (std::size_t v = 0; v < n_; ++v) {
    const auto row_begin = csr.targets.begin() + csr.offsets[v];
    const auto row_end = csr.targets.begin() + csr.offsets[v + 1];
    std::sort(row_begin, row_end);
    CLB_EXPECT(std::adjacent_find(row_begin, row_end) == row_end,
               "duplicate edge in streamed CSR input");
  }
  return csr;
}

// ---------------------------------------------------------------------------
// Topology snapshots
//
// Native-endian binary cache format (not interchange):
//   u64 magic
//   u64 n, m, implicit_edges, num_blocks
//   num_blocks x 9 u64 block records
//   then, each padded to a 64-byte file offset:
//     offsets   (n+1) x u64
//     targets    2m   x u64
//     reverse    2m   x u32
//     weights     n   x i64

namespace {

constexpr std::uint64_t kSnapshotMagic = 0x31504e53424c43ULL;  // "CLBSNP1"
constexpr std::size_t kAlign = 64;

static_assert(sizeof(std::size_t) == 8 && sizeof(NodeId) == 8 &&
                  sizeof(Weight) == 8,
              "snapshot layout assumes 64-bit ids and weights");

std::size_t aligned_up(std::size_t off) {
  return (off + kAlign - 1) / kAlign * kAlign;
}

}  // namespace

void write_topology_snapshot(const std::string& path, const MappedCsr& snap) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  CLB_EXPECT(f != nullptr, "cannot open snapshot file for writing");
  std::size_t pos = 0;
  const auto put = [&](const void* data, std::size_t bytes) {
    if (bytes == 0) return;
    CLB_EXPECT(std::fwrite(data, 1, bytes, f) == bytes,
               "snapshot write failed");
    pos += bytes;
  };
  const auto pad = [&] {
    static const char zeros[kAlign] = {};
    const std::size_t target = aligned_up(pos);
    put(zeros, target - pos);
  };
  const std::uint64_t header[5] = {kSnapshotMagic, snap.n, snap.m,
                                   snap.implicit_edges, snap.blocks.size()};
  put(header, sizeof(header));
  for (const auto& b : snap.blocks) {
    const std::uint64_t rec[9] = {
        static_cast<std::uint64_t>(b.kind), b.a_begin, b.a_end, b.b_begin,
        b.b_end, b.base, b.stride, b.rows, b.row_len};
    put(rec, sizeof(rec));
  }
  pad();
  put(snap.offsets.data(), snap.offsets.size_bytes());
  pad();
  put(snap.targets.data(), snap.targets.size_bytes());
  pad();
  put(snap.reverse_slot.data(), snap.reverse_slot.size_bytes());
  pad();
  put(snap.weights.data(), snap.weights.size_bytes());
  CLB_EXPECT(std::fclose(f) == 0, "snapshot close failed");
}

MappedCsr map_topology_snapshot(const std::string& path) {
  std::shared_ptr<const void> keepalive;
  const char* data = nullptr;
  std::size_t size = 0;
#ifdef CLB_HAVE_MMAP
  {
    const int fd = ::open(path.c_str(), O_RDONLY);
    CLB_EXPECT(fd >= 0, "cannot open snapshot file");
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      CLB_EXPECT(false, "cannot stat snapshot file");
    }
    size = static_cast<std::size_t>(st.st_size);
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping outlives the descriptor
    if (map != MAP_FAILED) {
      data = static_cast<const char*>(map);
      keepalive = std::shared_ptr<const void>(
          map, [size](const void* p) {
            ::munmap(const_cast<void*>(p), size);
          });
    }
  }
#endif
  if (data == nullptr) {
    // Heap fallback: read the whole file. Correct everywhere; loses only
    // the demand-paging benefit.
    std::FILE* f = std::fopen(path.c_str(), "rb");
    CLB_EXPECT(f != nullptr, "cannot open snapshot file");
    std::fseek(f, 0, SEEK_END);
    size = static_cast<std::size_t>(std::ftell(f));
    std::rewind(f);
    auto buf = std::shared_ptr<char[]>(new char[size]);
    CLB_EXPECT(std::fread(buf.get(), 1, size, f) == size,
               "snapshot read failed");
    std::fclose(f);
    data = buf.get();
    keepalive = std::shared_ptr<const void>(buf, buf.get());
  }

  MappedCsr snap;
  snap.keepalive = std::move(keepalive);
  std::size_t pos = 0;
  const auto take = [&](std::size_t bytes) {
    CLB_EXPECT(pos + bytes <= size, "snapshot file truncated");
    const char* p = data + pos;
    pos += bytes;
    return p;
  };
  std::uint64_t header[5];
  std::memcpy(header, take(sizeof(header)), sizeof(header));
  CLB_EXPECT(header[0] == kSnapshotMagic, "not a topology snapshot file");
  snap.n = header[1];
  snap.m = header[2];
  snap.implicit_edges = header[3];
  const std::size_t num_blocks = header[4];
  snap.blocks.reserve(num_blocks);
  for (std::size_t i = 0; i < num_blocks; ++i) {
    std::uint64_t rec[9];
    std::memcpy(rec, take(sizeof(rec)), sizeof(rec));
    CLB_EXPECT(rec[0] <= static_cast<std::uint64_t>(
                             BlockKind::kAntiMatchingGrid),
               "snapshot block kind out of range");
    ImplicitBlock b;
    b.kind = static_cast<BlockKind>(rec[0]);
    b.a_begin = rec[1];
    b.a_end = rec[2];
    b.b_begin = rec[3];
    b.b_end = rec[4];
    b.base = rec[5];
    b.stride = rec[6];
    b.rows = rec[7];
    b.row_len = rec[8];
    snap.blocks.push_back(b);
  }
  const auto array = [&](std::size_t count, std::size_t elem) {
    pos = aligned_up(pos);
    return take(count * elem);
  };
  snap.offsets = {reinterpret_cast<const std::size_t*>(
                      array(snap.n + 1, sizeof(std::size_t))),
                  snap.n + 1};
  snap.targets = {
      reinterpret_cast<const NodeId*>(array(2 * snap.m, sizeof(NodeId))),
      2 * snap.m};
  snap.reverse_slot = {reinterpret_cast<const std::uint32_t*>(
                           array(2 * snap.m, sizeof(std::uint32_t))),
                       2 * snap.m};
  snap.weights =
      {reinterpret_cast<const Weight*>(array(snap.n, sizeof(Weight))), snap.n};
  return snap;
}

}  // namespace congestlb::graph
