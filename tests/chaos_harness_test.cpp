// Process-level chaos harness: drives the real `clb` binary (path baked in
// via CLB_TOOL_PATH by tools/CMakeLists.txt) as a subprocess, kills it
// mid-campaign through the CLB_CHAOS_KILL_AFTER_JOBS environment contract
// (_Exit(137) skips destructors, so in-flight cache writes tear exactly
// like a real SIGKILL), and pins the recovery invariant end to end:
//
//   kill at job N  ->  `campaign fsck --repair` exits 0
//                  ->  `campaign resume` exits 0
//                  ->  the canonical manifest is byte-identical to an
//                      undisturbed run's, and a final fsck finds zero
//                      orphaned artifacts.
//
// scripts/chaos_campaign.py runs the same loop at randomized kill points
// (200 locally, 25 in CI); this test keeps a deterministic ladder of kill
// points so a regression bisects.

#include <gtest/gtest.h>

#if !defined(_WIN32)

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace fs = std::filesystem;

#ifndef CLB_TOOL_PATH
#define CLB_TOOL_PATH "clb"  // fallback: resolve via PATH
#endif

namespace {

struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& tag)
      : path(fs::path(::testing::TempDir()) / ("clb_chaos_test_" + tag)) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
};

/// Run a shell command, return its exit status (-1 on abnormal death).
int run_cmd(const std::string& cmd) {
  const int rc = std::system(cmd.c_str());
  if (rc == -1) return -1;
  if (WIFEXITED(rc)) return WEXITSTATUS(rc);
  return -1;
}

std::string quoted(const fs::path& p) { return "'" + p.string() + "'"; }

/// `clb campaign <action> smoke ...` against one scratch state. `env`
/// prefixes the command (e.g. "CLB_CHAOS_KILL_AFTER_JOBS=3"), scoping any
/// chaos to that single invocation.
int run_campaign(const std::string& env, const std::string& action,
                 const fs::path& cache_dir, const fs::path& manifest,
                 const std::string& extra = "--threads 2 --canonical") {
  std::ostringstream cmd;
  cmd << env << (env.empty() ? "" : " ") << "'" << CLB_TOOL_PATH << "'"
      << " campaign " << action << " smoke --cache-dir " << quoted(cache_dir)
      << " --manifest " << quoted(manifest) << " " << extra
      << " >/dev/null 2>&1";
  return run_cmd(cmd.str());
}

int run_fsck(const fs::path& cache_dir, const fs::path& manifest,
             bool repair) {
  std::ostringstream cmd;
  cmd << "'" << CLB_TOOL_PATH << "' campaign fsck --cache-dir "
      << quoted(cache_dir) << " --manifest " << quoted(manifest)
      << (repair ? " --repair" : "") << " >/dev/null 2>&1";
  return run_cmd(cmd.str());
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

TEST(ChaosHarness, KilledCampaignsResumeToByteIdenticalManifest) {
  ScratchDir scratch("kill_ladder");

  // The undisturbed reference: one clean run's canonical manifest.
  const fs::path ref_manifest = scratch.path / "ref.json";
  ASSERT_EQ(run_campaign("", "run", scratch.path / "cache-ref", ref_manifest),
            0)
      << "clean smoke campaign failed — chaos results would be meaningless";
  const std::string reference = slurp(ref_manifest);
  ASSERT_FALSE(reference.empty());

  // Kill ladder: early, mid, and late kill points (the smoke campaign has
  // a few dozen jobs). A kill point past the end simply completes — that
  // terminates the ladder having proven the interesting prefix.
  for (const int kill_after : {1, 2, 3, 5, 8, 13, 21, 34, 55}) {
    const std::string tag = "k" + std::to_string(kill_after);
    const fs::path cache_dir = scratch.path / ("cache-" + tag);
    const fs::path manifest = scratch.path / (tag + ".json");

    const int killed = run_campaign(
        "CLB_CHAOS_KILL_AFTER_JOBS=" + std::to_string(kill_after), "run",
        cache_dir, manifest);
    if (killed == 0) {
      // The whole campaign fit under the kill budget; nothing torn.
      EXPECT_EQ(slurp(manifest), reference) << tag;
      break;
    }
    ASSERT_EQ(killed, 137) << tag << ": _Exit(137) contract broken";

    // The audit must leave a consistent tree (exit 0 == repaired clean)...
    EXPECT_EQ(run_fsck(cache_dir, manifest, /*repair=*/true), 0) << tag;
    // ... resume must complete from whatever survived ...
    ASSERT_EQ(run_campaign("", "resume", cache_dir, manifest), 0) << tag;
    // ... converging to the byte-identical canonical manifest, with zero
    // orphaned cache artifacts left behind.
    EXPECT_EQ(slurp(manifest), reference) << tag;
    EXPECT_EQ(run_fsck(cache_dir, manifest, /*repair=*/false), 0) << tag;
  }
}

TEST(ChaosHarness, KillDuringResumeStillConverges) {
  // Crash-on-recovery: the first run is killed, the *resume* is killed
  // too, and only the third attempt runs to completion. Recovery must
  // compose — fsck + resume is idempotent, not single-shot.
  ScratchDir scratch("double_kill");
  const fs::path ref_manifest = scratch.path / "ref.json";
  ASSERT_EQ(run_campaign("", "run", scratch.path / "cache-ref", ref_manifest),
            0);
  const std::string reference = slurp(ref_manifest);

  const fs::path cache_dir = scratch.path / "cache";
  const fs::path manifest = scratch.path / "campaign.json";
  ASSERT_EQ(run_campaign("CLB_CHAOS_KILL_AFTER_JOBS=4", "run", cache_dir,
                         manifest),
            137);
  EXPECT_EQ(run_fsck(cache_dir, manifest, true), 0);
  ASSERT_EQ(run_campaign("CLB_CHAOS_KILL_AFTER_JOBS=5", "resume", cache_dir,
                         manifest),
            137);
  EXPECT_EQ(run_fsck(cache_dir, manifest, true), 0);
  ASSERT_EQ(run_campaign("", "resume", cache_dir, manifest), 0);
  EXPECT_EQ(slurp(manifest), reference);
  EXPECT_EQ(run_fsck(cache_dir, manifest, false), 0);
}

TEST(ChaosHarness, InjectedFailuresDegradeButResumeRecovers) {
  // Poison every solve-no job via the environment contract: the campaign
  // survives (quarantine, not crash), exits nonzero, `status` flags the
  // degradation, and a chaos-free resume converges to the clean manifest.
  ScratchDir scratch("poison");
  const fs::path ref_manifest = scratch.path / "ref.json";
  ASSERT_EQ(run_campaign("", "run", scratch.path / "cache-ref", ref_manifest),
            0);
  const std::string reference = slurp(ref_manifest);

  const fs::path cache_dir = scratch.path / "cache";
  const fs::path manifest = scratch.path / "campaign.json";
  // --retries 0: poison jobs quarantine on their first failure, keeping
  // the degraded run fast.
  ASSERT_EQ(run_campaign("CLB_CHAOS_POISON=/solve-no", "run", cache_dir,
                         manifest, "--threads 2 --canonical --retries 0"),
            1)
      << "a degraded campaign must exit nonzero";
  // The degraded manifest is canonical and visibly degraded.
  const std::string degraded = slurp(manifest);
  EXPECT_NE(degraded.find("\"quarantined\""), std::string::npos);
  {
    std::ostringstream cmd;
    cmd << "'" << CLB_TOOL_PATH << "' campaign status --manifest "
        << quoted(manifest) << " >/dev/null 2>&1";
    EXPECT_EQ(run_cmd(cmd.str()), 1)
        << "status must fail a CI gate on quarantined jobs";
  }
  ASSERT_EQ(run_campaign("", "resume", cache_dir, manifest), 0);
  EXPECT_EQ(slurp(manifest), reference);
}

TEST(ChaosHarness, MalformedChaosEnvRefusesToRun) {
  // A chaos config typo must not silently run a non-chaotic campaign.
  ScratchDir scratch("typo");
  EXPECT_NE(run_campaign("CLB_CHAOS_KILL_AFTER_JOBS=soon", "run",
                         scratch.path / "cache", scratch.path / "m.json"),
            0);
}

#else  // _WIN32

TEST(ChaosHarness, SkippedOnThisPlatform) { GTEST_SKIP(); }

#endif
