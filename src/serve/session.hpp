// Per-client session accounting for the campaign service: quotas and the
// determinism contract behind admission decisions (docs/SERVICE.md).
//
// A client is a short opaque name (the `client` field of a submission; the
// CLI defaults it to "anon"). The service tracks, per client, how many of
// its sweeps are *queued* (accepted, waiting for an orchestrator) and how
// many are *in flight* (being orchestrated right now), and enforces two
// quotas: max_queued bounds admission (a submit that would exceed it is
// rejected with kRejectedQuota), max_inflight bounds orchestrator pickup
// (a queued sweep whose client is at its in-flight cap is skipped until
// one of that client's sweeps finishes — it is never rejected).
//
// Determinism: whether a given submit is rejected depends only on the
// client's own outstanding queued count, never on scheduler timing or on
// other tenants. A client that submits serially therefore sees the same
// accept/reject sequence on every replay with the same quota — the
// property the concurrent-admission test pins down with N racing clients.
//
// Not internally synchronized: SessionManager is a ledger the Service
// mutates under its own state lock, in the same critical sections that
// move sweeps between queued/running/done.

#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace congestlb::serve {

struct Quota {
  std::size_t max_queued = 8;    ///< accepted-but-not-started sweeps
  std::size_t max_inflight = 2;  ///< sweeps being orchestrated
};

class SessionManager {
 public:
  explicit SessionManager(Quota quota) : quota_(quota) {}

  const Quota& quota() const { return quota_; }

  /// Admission check + bookkeeping: true (and queued++) iff the client is
  /// under its max_queued quota.
  bool try_enqueue(const std::string& client);

  /// Orchestrator pickup gate: can this client start another sweep now?
  bool can_start(const std::string& client) const;

  /// A queued sweep of `client` started orchestration (queued--, inflight++).
  void on_start(const std::string& client);

  /// An in-flight sweep of `client` finished, whatever the outcome.
  void on_finish(const std::string& client);

  /// Restart-resume: re-admit a sweep recorded in the server manifest
  /// without quota enforcement — it was already accepted in a previous
  /// life, and an accepted sweep is never lost to a quota.
  void force_enqueue(const std::string& client);

  std::size_t queued(const std::string& client) const;
  std::size_t inflight(const std::string& client) const;

  struct ClientStats {
    std::string client;
    std::size_t queued = 0;
    std::size_t inflight = 0;
  };
  /// Every client with nonzero counts, name-ordered.
  std::vector<ClientStats> stats() const;

 private:
  struct Counts {
    std::size_t queued = 0;
    std::size_t inflight = 0;
  };

  Quota quota_;
  std::map<std::string, Counts> counts_;
};

}  // namespace congestlb::serve
