#include "congest/algorithms/weighted_greedy.hpp"

#include <vector>

#include "congest/algorithms/mis_common.hpp"
#include "support/expect.hpp"

namespace congestlb::congest {

namespace {

class WeightedGreedyProgram final : public NodeProgram {
 public:
  void round(const NodeInfo& info, const Inbox& inbox, Outbox& outbox,
             Rng& /*rng*/) override {
    if (neighbor_state_.empty() && !info.neighbors.empty()) {
      neighbor_state_.assign(info.neighbors.size(), IsState::kUndecided);
      neighbor_weight_.assign(info.neighbors.size(), 0);
    }
    if (weight_bits_ == 0) {
      weight_bits_ = info.bits_per_edge > 2
                         ? std::min<std::size_t>(32, info.bits_per_edge - 2)
                         : 1;
      CLB_EXPECT(info.weight >= 0 &&
                     (weight_bits_ >= 64 ||
                      static_cast<std::uint64_t>(info.weight) <
                          (1ULL << weight_bits_)),
                 "weighted-greedy: node weight does not fit the bandwidth");
    }

    for (std::size_t s = 0; s < inbox.size(); ++s) {
      if (!inbox[s]) continue;
      MessageReader r(*inbox[s]);
      neighbor_state_[s] = static_cast<IsState>(r.get(2));
      neighbor_weight_[s] = static_cast<graph::Weight>(r.get(weight_bits_));
    }

    if (state_ == IsState::kUndecided) {
      for (IsState s : neighbor_state_) {
        if (s == IsState::kIn) {
          state_ = IsState::kOut;
          break;
        }
      }
    }
    if (state_ == IsState::kUndecided && heard_once_) {
      bool dominated = false;
      for (std::size_t s = 0; s < neighbor_state_.size(); ++s) {
        if (neighbor_state_[s] != IsState::kUndecided) continue;
        const auto theirs = std::pair(neighbor_weight_[s], info.neighbors[s]);
        const auto mine = std::pair(info.weight, info.id);
        if (theirs > mine) {
          dominated = true;
          break;
        }
      }
      if (!dominated) state_ = IsState::kIn;
    }
    heard_once_ = true;

    const bool neighbors_decided = [&] {
      for (IsState s : neighbor_state_) {
        if (s == IsState::kUndecided) return false;
      }
      return true;
    }();
    if (state_ != IsState::kUndecided && neighbors_decided &&
        announced_final_) {
      finished_ = true;
      return;
    }
    Message m =
        std::move(MessageWriter()
                      .put(static_cast<std::uint64_t>(state_), 2)
                      .put(static_cast<std::uint64_t>(info.weight), weight_bits_))
            .finish();
    outbox.send_all(m);
    if (state_ != IsState::kUndecided) announced_final_ = true;
  }

  bool finished() const override { return finished_; }
  std::int64_t output() const override { return state_ == IsState::kIn ? 1 : 0; }

 private:
  IsState state_ = IsState::kUndecided;
  std::vector<IsState> neighbor_state_;
  std::vector<graph::Weight> neighbor_weight_;
  std::size_t weight_bits_ = 0;
  bool heard_once_ = false;
  bool announced_final_ = false;
  bool finished_ = false;
};

}  // namespace

ProgramFactory weighted_greedy_factory() {
  return [](NodeId, const NodeInfo&) {
    return std::make_unique<WeightedGreedyProgram>();
  };
}

}  // namespace congestlb::congest
