#include "congest/topology.hpp"

#include <algorithm>

#include "support/expect.hpp"

namespace congestlb::congest {

std::size_t Topology::slot_of(NodeId v, NodeId u) const {
  const auto nb = neighbors_of(v);
  const auto it = std::lower_bound(nb.begin(), nb.end(), u);
  if (it == nb.end() || *it != u) return kNoSlot;
  return static_cast<std::size_t>(it - nb.begin());
}

bool Topology::has_edge(NodeId u, NodeId v) const {
  if (u == v) return false;
  if (slot_of(v, u) != kNoSlot) return true;
  for (const auto& b : blocks) {
    if (b.is_edge(u, v)) return true;
  }
  return false;
}

std::size_t Topology::count_neighbors_leq(NodeId v, NodeId x) const {
  const auto nb = neighbors_of(v);
  std::size_t c = static_cast<std::size_t>(
      std::upper_bound(nb.begin(), nb.end(), x) - nb.begin());
  for (const auto& b : blocks) c += b.count_leq(v, x);
  return c;
}

NodeId Topology::neighbor_at(NodeId v, std::size_t slot) const {
  if (blocks.empty()) return neighbors_of(v)[slot];
  // Binary search for the smallest id x with count_neighbors_leq(v, x) >
  // slot; that x is the slot-th smallest merged neighbor.
  NodeId lo = 0, hi = n - 1;
  while (lo < hi) {
    const NodeId mid = lo + (hi - lo) / 2;
    if (count_neighbors_leq(v, mid) <= slot) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

NodeId Topology::neighbor_after(NodeId v, NodeId x) const {
  const auto nb = neighbors_of(v);
  NodeId next = graph::kNoNode;
  const auto it = x == graph::kNoNode
                      ? nb.begin()
                      : std::upper_bound(nb.begin(), nb.end(), x);
  if (it != nb.end()) next = *it;
  for (const auto& b : blocks) {
    const NodeId c = b.neighbor_after(v, x);
    if (c < next) next = c;
  }
  return next;
}

std::shared_ptr<const Topology> Topology::build(const graph::Graph& g) {
  auto topo = std::make_shared<Topology>();
  topo->n = g.num_nodes();
  topo->m = g.num_explicit_edges();
  topo->implicit_edges = g.num_implicit_edges();
  topo->blocks = g.implicit_blocks();

  graph::Csr csr = graph::export_csr(g);
  topo->own_offsets_ = std::move(csr.offsets);
  topo->own_neighbors_ = std::move(csr.targets);

  topo->own_weights_.resize(topo->n);
  for (NodeId v = 0; v < topo->n; ++v) topo->own_weights_[v] = g.weight(v);

  // reverse_slot via the cursor trick: iterating senders u in ascending
  // order visits, for each receiver v, the entries "u appears in v's sorted
  // list" in ascending u — so u's position in v's list is exactly how many
  // earlier senders were adjacent to v.
  topo->own_reverse_.resize(topo->own_neighbors_.size());
  std::vector<std::uint32_t> cursor(topo->n, 0);
  for (NodeId u = 0; u < topo->n; ++u) {
    for (std::size_t d = topo->own_offsets_[u]; d < topo->own_offsets_[u + 1];
         ++d) {
      const NodeId v = topo->own_neighbors_[d];
      topo->own_reverse_[d] = cursor[v]++;
    }
  }

  topo->offsets = topo->own_offsets_;
  topo->neighbors = topo->own_neighbors_;
  topo->reverse_slot = topo->own_reverse_;
  topo->weights = topo->own_weights_;
  return topo;
}

std::shared_ptr<const Topology> Topology::from_snapshot(graph::MappedCsr snap) {
  CLB_EXPECT(snap.offsets.size() == snap.n + 1 &&
                 snap.targets.size() == 2 * snap.m &&
                 snap.reverse_slot.size() == 2 * snap.m &&
                 snap.weights.size() == snap.n,
             "snapshot array sizes inconsistent with header");
  auto topo = std::make_shared<Topology>();
  topo->n = snap.n;
  topo->m = snap.m;
  topo->implicit_edges = snap.implicit_edges;
  topo->blocks = std::move(snap.blocks);
  topo->offsets = snap.offsets;
  topo->neighbors = snap.targets;
  topo->reverse_slot = snap.reverse_slot;
  topo->weights = snap.weights;
  topo->keepalive_ = std::move(snap.keepalive);
  return topo;
}

std::vector<std::pair<NodeId, NodeId>> edge_tiled_shards(
    const Topology& topo, std::size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  const std::size_t n = topo.n;
  // Prefix cost of the first v nodes: directed slots (explicit + implicit,
  // the latter in closed form per block) + one unit per node. Strictly
  // increasing in v, so each boundary is a binary search for the first
  // prefix at or past the shard's proportional target.
  const std::uint64_t total = topo.prefix_cost(n);
  std::vector<std::pair<NodeId, NodeId>> ranges(num_shards);
  std::size_t begin = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    std::size_t end = n;
    if (s + 1 < num_shards) {
      const std::uint64_t target = total * (s + 1) / num_shards;
      std::size_t lo = begin;
      std::size_t hi = n;
      while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (topo.prefix_cost(mid) < target) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      end = lo;
    }
    ranges[s] = {static_cast<NodeId>(begin), static_cast<NodeId>(end)};
    begin = end;
  }
  return ranges;
}

}  // namespace congestlb::congest
