// Reusable approximation-contract harness for the upper-bound algorithm
// zoo (congest/approx_mis.hpp, congest/blackboard_mis.hpp).
//
// A *contract* bundles everything an approximation algorithm promises into
// one checkable predicate over a single sample point (algorithm, workload
// graph, seed, thread count, fault profile):
//
//   1. output validity   — the selected set is independent; for MIS
//                          protocols additionally maximal;
//   2. approximation     — on instances small enough for the exact solver
//                          to certify an optimum, the algorithm's weight w
//                          satisfies w * (den + num) >= OPT * den (i.e.
//                          w >= OPT / (1 + eps), checked in exact integer
//                          arithmetic); on larger instances the output
//                          weight must respect the greedy clique-partition
//                          upper bound (maxis::clique_partition_upper_bound);
//   3. complexity        — round counts stay inside the published envelope
//                          (approx_mis_round_bound; 1 blackboard round for
//                          full revelation; 2n for blackboard Luby) and bit
//                          counts inside the model budget;
//   4. determinism       — outputs and RunStats are bit-identical across
//                          thread counts (the engine's core promise), fault
//                          schedules included;
//   5. fault degradation — under faults the run still terminates and the
//                          *converged* nodes still form an independent set;
//                          ratio and maximality are only owed fault-free.
//
// Checks return std::nullopt on success and a message on violation, so
// they plug directly into the property harness (property_harness.hpp) and
// inherit its seed-replay shrinking: a failing (seed, size) pair printed by
// check_seeds reproduces the exact sample.
//
// This header is test infrastructure, deliberately header-only: gtest files
// and fuzz drivers include it without a library target.

#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "comm/blackboard.hpp"
#include "congest/approx_mis.hpp"
#include "congest/blackboard_mis.hpp"
#include "congest/faults.hpp"
#include "congest/network.hpp"
#include "graph/graph.hpp"
#include "maxis/brute_force.hpp"
#include "maxis/branch_and_bound.hpp"
#include "maxis/verify.hpp"
#include "property_harness.hpp"
#include "support/hash.hpp"
#include "support/math.hpp"

namespace congestlb::testing {

/// One contract evaluation point. Thread counts cover the serial engine,
/// the smallest parallel engine, and an oversubscribed one.
struct ApproxContractOptions {
  std::size_t eps_num = 1;
  std::size_t eps_den = 4;
  std::vector<std::size_t> thread_counts = {1, 2, 8};
  congest::FaultConfig faults;  ///< all-zero = fault-free sample
  /// Largest n the harness certifies with the exact solver; above it the
  /// clique-partition upper bound is the only oracle.
  std::size_t solvable_limit = 24;
};

namespace detail {

inline std::string describe_graph(const graph::Graph& g) {
  return std::to_string(g.num_nodes()) + " nodes / " +
         std::to_string(g.num_edges()) + " edges";
}

inline bool fault_free(const congest::FaultConfig& fc) {
  return fc.drop_rate == 0.0 && fc.corrupt_rate == 0.0 &&
         fc.duplicate_rate == 0.0 && fc.crash_rate == 0.0;
}

/// The portion of the output that converged: nodes whose program finished
/// (not failed, not crashed mid-protocol) and reported membership.
inline std::vector<graph::NodeId> converged_members(
    const congest::Network& net) {
  std::vector<graph::NodeId> members;
  const auto outs = net.outputs();
  for (graph::NodeId v = 0; v < outs.size(); ++v) {
    if (outs[v] != 0 && net.program(v).finished()) members.push_back(v);
  }
  return members;
}

inline congest::LocalMaxIsSolver contract_ball_solver() {
  return [](const graph::Graph& g) { return maxis::solve_exact(g).nodes; };
}

}  // namespace detail

/// Exact-or-bounded optimum oracle used by the ratio leg of the contract.
struct OptimumEstimate {
  graph::Weight value = 0;
  bool certified = false;  ///< true: exact OPT; false: upper bound only
};

inline OptimumEstimate estimate_optimum(const graph::Graph& g,
                                        std::size_t solvable_limit) {
  if (g.num_nodes() <= solvable_limit &&
      g.num_nodes() <= maxis::kBruteForceLimit) {
    return {maxis::solve_exact(g).weight, true};
  }
  return {maxis::clique_partition_upper_bound(g), false};
}

/// Full contract for the KKSS-style (1+eps)-approximate MaxIS program on
/// `g` at LOCAL bandwidth. `seed` drives the network (and fault schedule).
inline std::optional<std::string> check_approx_mis_contract(
    const graph::Graph& g, std::uint64_t seed,
    const ApproxContractOptions& opts = {}) {
  graph::Weight max_w = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    max_w = std::max(max_w, g.weight(v));
  }
  congest::ApproxMisConfig cfg;
  cfg.eps_num = opts.eps_num;
  cfg.eps_den = opts.eps_den;

  congest::NetworkConfig ncfg;
  ncfg.seed = seed;
  ncfg.bits_per_edge = congest::approx_mis_local_bits(g.num_nodes(), max_w);
  ncfg.faults = opts.faults;
  const bool clean = detail::fault_free(opts.faults);

  std::optional<congest::RunStats> base_stats;
  std::optional<std::vector<std::int64_t>> base_outputs;
  for (const std::size_t threads : opts.thread_counts) {
    ncfg.num_threads = threads;
    congest::Network net(
        g, congest::approx_mis_factory(detail::contract_ball_solver(), cfg),
        ncfg);
    const auto stats = net.run();
    const auto outputs = net.outputs();

    // (4) determinism: every thread count reproduces the first run bit for
    // bit — outputs and the full RunStats (fault counters included).
    if (!base_stats.has_value()) {
      base_stats = stats;
      base_outputs = outputs;
    } else if (stats != *base_stats || outputs != *base_outputs) {
      return "approx-mis: thread count " + std::to_string(threads) +
             " diverged from thread count " +
             std::to_string(opts.thread_counts.front()) + " on " +
             detail::describe_graph(g);
    }
    if (threads != opts.thread_counts.front()) continue;

    // (5) termination: terminal state must be reached before max_rounds
    // even under faults (failed() at a deadline counts as terminal).
    if (!clean && stats.rounds >= ncfg.max_rounds) {
      return "approx-mis: did not reach a terminal state under faults";
    }

    // (1) validity on the converged portion, unconditionally.
    const auto members = detail::converged_members(net);
    if (!g.is_independent_set(members)) {
      return "approx-mis: converged output is not independent on " +
             detail::describe_graph(g);
    }

    if (!clean) continue;  // ratio/rounds owed fault-free only

    if (!stats.all_finished || stats.any_failed) {
      return "approx-mis: fault-free run did not converge (" +
             std::to_string(stats.rounds) + " rounds, " +
             detail::describe_graph(g) + ")";
    }

    // (3) complexity envelope.
    const std::size_t bound = congest::approx_mis_round_bound(
        g.num_nodes(), g.total_weight(), opts.eps_num, opts.eps_den,
        ncfg.bits_per_edge);
    if (stats.rounds > bound) {
      return "approx-mis: " + std::to_string(stats.rounds) +
             " rounds exceeds envelope " + std::to_string(bound);
    }

    // (2) approximation ratio, exact integer arithmetic.
    const graph::Weight alg_w = g.weight_of(members);
    const auto opt = estimate_optimum(g, opts.solvable_limit);
    if (opt.certified) {
      const auto lhs = static_cast<std::uint64_t>(alg_w) *
                       (opts.eps_den + opts.eps_num);
      const auto rhs =
          static_cast<std::uint64_t>(opt.value) * opts.eps_den;
      if (lhs < rhs) {
        std::ostringstream os;
        os << "approx-mis: ratio violated: w=" << alg_w
           << " OPT=" << opt.value << " eps=" << opts.eps_num << "/"
           << opts.eps_den << " on " << detail::describe_graph(g);
        return os.str();
      }
    }
    if (alg_w > opt.value && !opt.certified) {
      return "approx-mis: output exceeds the clique-partition upper bound";
    }
  }
  return std::nullopt;
}

/// Contract for the blackboard MIS protocols: validity (maximal +
/// independent, re-verified here, not just inside the protocol), exact bit
/// accounting against the published budgets, round counts, and determinism
/// across player counts for the shared-seed Luby variant.
inline std::optional<std::string> check_blackboard_contract(
    const graph::Graph& g, std::uint64_t seed, std::size_t players) {
  const std::size_t n = g.num_nodes();
  const std::size_t id_bits = static_cast<std::size_t>(
      std::max(1, ceil_log2(std::max<std::size_t>(2, n))));

  // The board itself requires >= 2 registered players; a protocol may
  // still involve only one of them.
  const std::size_t board_players = std::max<std::size_t>(2, players);
  comm::Blackboard board_full(board_players);
  const auto full = congest::full_revelation_mis(g, players, board_full);
  if (!g.is_independent_set(full.mis)) {
    return "blackboard full-revelation: output not independent";
  }
  if (full.blackboard_rounds != 1) {
    return "blackboard full-revelation: expected exactly 1 round";
  }
  const std::uint64_t full_budget =
      static_cast<std::uint64_t>(g.num_edges()) * 2 * id_bits;
  if (full.bits_posted != full_budget) {
    return "blackboard full-revelation: posted " +
           std::to_string(full.bits_posted) + " bits, budget is exactly " +
           std::to_string(full_budget);
  }

  comm::Blackboard board_luby(board_players);
  const auto luby = congest::luby_blackboard_mis(g, players, board_luby, seed);
  if (!g.is_independent_set(luby.mis)) {
    return "blackboard luby: output not independent";
  }
  // Every vertex is posted at most twice (winner, covered) and each phase
  // costs two board rounds while deciding at least one vertex.
  if (luby.bits_posted > static_cast<std::uint64_t>(2 * n) * id_bits) {
    return "blackboard luby: bits " + std::to_string(luby.bits_posted) +
           " exceed the 2 n log n budget";
  }
  if (luby.blackboard_rounds > 2 * n) {
    return "blackboard luby: rounds exceed 2n";
  }
  // Determinism in the player count: the protocol's transcript partitions
  // differently but the MIS (a pure function of seed and graph) must not.
  comm::Blackboard board_one(2);
  const auto solo = congest::luby_blackboard_mis(g, 1, board_one, seed);
  if (solo.mis != luby.mis) {
    return "blackboard luby: MIS depends on the player count";
  }
  return std::nullopt;
}

// --------------------------------------------------------- property forms --
// Pre-packaged Property lambdas: instance = random connected topology from
// (seed, size) via the shared generators, so failures shrink by seed replay.

inline Property approx_mis_contract_property(ApproxContractOptions opts,
                                             bool randomize_faults) {
  return [opts, randomize_faults](
             std::uint64_t seed,
             std::size_t size) -> std::optional<std::string> {
    Rng rng(hash_mix(seed, 0xac01ULL));
    auto g = random_topology(rng, size);
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      g.set_weight(v, static_cast<graph::Weight>(1 + rng.below(9)));
    }
    ApproxContractOptions local = opts;
    if (randomize_faults) local.faults = random_fault_config(rng, size);
    return check_approx_mis_contract(g, seed, local);
  };
}

inline Property blackboard_contract_property() {
  return [](std::uint64_t seed,
            std::size_t size) -> std::optional<std::string> {
    Rng rng(hash_mix(seed, 0xbb02ULL));
    const auto g = random_topology(rng, size);
    const std::size_t players = 1 + rng.below(1 + std::min<std::size_t>(
                                                      g.num_nodes(), 6));
    return check_blackboard_contract(g, seed, players);
  };
}

}  // namespace congestlb::testing
