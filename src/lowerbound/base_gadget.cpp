#include "lowerbound/base_gadget.hpp"

#include "support/expect.hpp"

namespace congestlb::lb {

BaseGadget::BaseGadget(GadgetParams params)
    : BaseGadget(std::move(params), BuildOptions{}) {}

BaseGadget::BaseGadget(GadgetParams params, const BuildOptions& opts)
    : params_(std::move(params)), g_(params_.nodes_per_copy()) {
  const std::size_t k = params_.k;
  const std::size_t m_pos = params_.num_positions();
  const std::size_t p = params_.clique_size();
  const auto& code = *params_.code;
  g_.set_implicit_block_threshold(opts.implicit_threshold);

  codewords_.reserve(k);
  for (std::size_t m = 0; m < k; ++m) {
    codewords_.push_back(code.encode_index(m));
    CLB_EXPECT(codewords_.back().size() == m_pos,
               "base gadget: codeword length != ell+alpha");
  }

  // Labels (presentation only; used by the figure generator).
  if (!opts.skip_labels) {
    for (std::size_t m = 0; m < k; ++m) {
      g_.set_label(a_node(m), "v" + std::to_string(m + 1));
    }
    for (std::size_t h = 0; h < m_pos; ++h) {
      for (std::size_t r = 0; r < p; ++r) {
        g_.set_label(code_node(h, r), "s(" + std::to_string(h + 1) + "," +
                                          std::to_string(r + 1) + ")");
      }
    }
  }

  // Bulk construction: the non-codeword star edges dominate (k * m_pos *
  // (p-1) of them), so reserve once and insert them as a single batch.
  g_.reserve_edges(k * (k - 1) / 2 + m_pos * p * (p - 1) / 2 +
                   k * m_pos * (p - 1));
  // The clique A.
  g_.add_clique(a_nodes());
  // The code-gadget cliques C_h.
  for (std::size_t h = 0; h < m_pos; ++h) {
    g_.add_clique(clique_nodes(h));
  }
  // v_m <-> Code \ Code_m.
  std::vector<std::pair<NodeId, NodeId>> star_edges;
  star_edges.reserve(k * m_pos * (p - 1));
  for (std::size_t m = 0; m < k; ++m) {
    const codes::Word& w = codewords_[m];
    for (std::size_t h = 0; h < m_pos; ++h) {
      for (std::size_t r = 0; r < p; ++r) {
        if (r != w[h]) star_edges.emplace_back(a_node(m), code_node(h, r));
      }
    }
  }
  g_.add_edges(star_edges);
}

NodeId BaseGadget::a_node(std::size_t m) const {
  CLB_EXPECT(m < params_.k, "base gadget: message index out of range");
  return m;
}

NodeId BaseGadget::code_node(std::size_t h, std::size_t r) const {
  CLB_EXPECT(h < params_.num_positions(), "base gadget: position out of range");
  CLB_EXPECT(r < params_.clique_size(), "base gadget: symbol out of range");
  return params_.k + h * params_.clique_size() + r;
}

std::vector<NodeId> BaseGadget::a_nodes() const {
  std::vector<NodeId> out(params_.k);
  for (std::size_t m = 0; m < params_.k; ++m) out[m] = a_node(m);
  return out;
}

std::vector<NodeId> BaseGadget::clique_nodes(std::size_t h) const {
  std::vector<NodeId> out(params_.clique_size());
  for (std::size_t r = 0; r < params_.clique_size(); ++r) {
    out[r] = code_node(h, r);
  }
  return out;
}

std::vector<NodeId> BaseGadget::code_nodes() const {
  std::vector<NodeId> out;
  out.reserve(params_.num_positions() * params_.clique_size());
  for (std::size_t h = 0; h < params_.num_positions(); ++h) {
    for (std::size_t r = 0; r < params_.clique_size(); ++r) {
      out.push_back(code_node(h, r));
    }
  }
  return out;
}

std::vector<NodeId> BaseGadget::codeword_nodes(std::size_t m) const {
  const codes::Word& w = codeword(m);
  std::vector<NodeId> out(w.size());
  for (std::size_t h = 0; h < w.size(); ++h) {
    out[h] = code_node(h, static_cast<std::size_t>(w[h]));
  }
  return out;
}

const codes::Word& BaseGadget::codeword(std::size_t m) const {
  CLB_EXPECT(m < codewords_.size(), "base gadget: message index out of range");
  return codewords_[m];
}

}  // namespace congestlb::lb
