// Runtime-dispatched SIMD kernels for the engine and solver hot paths.
//
// Three implementation levels — scalar, AVX2, AVX-512 — are compiled into
// every build (each in its own translation unit with the matching -m flags;
// non-x86 builds get the scalar table only). The active table is picked once
// at first use from CPUID, overridable with the CLB_SIMD environment
// variable:
//
//   CLB_SIMD=auto     highest level this build + CPU supports (default)
//   CLB_SIMD=scalar   portable reference kernels
//   CLB_SIMD=avx2     require AVX2 (InvariantError if unavailable)
//   CLB_SIMD=avx512   require AVX-512 (F+BW+DQ+VL+VPOPCNTDQ)
//
// Every kernel is an exact bitwise/integer operation, so results are
// bit-identical across levels by construction; the property suite
// (tests/simd_test.cpp) enforces this against the scalar reference, and the
// engine/solver determinism tests enforce it end to end.
//
// The per-call indirection costs a few cycles, so callers with tiny inputs
// (maxis word rows below kSimdDispatchWords in bitset.hpp) keep their inline
// scalar loops and only route larger inputs here.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace congestlb::simd {

enum class Level : std::uint8_t { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

inline constexpr std::size_t kNumLevels = 3;

/// Slack bytes the pack/unpack kernels may read (and write back unchanged)
/// past the last payload byte: the vector variants work on whole 8-byte
/// windows plus one spill byte. congest::PayloadBytes over-allocates every
/// buffer by exactly this amount to make the window access always in-bounds.
inline constexpr std::size_t kPackSlackBytes = 8;

/// One dispatch table. All row kernels operate on `nw` 64-bit words;
/// dst may alias a or b (elementwise ops).
struct Kernels {
  Level level;

  // --- maxis word-row kernels (bitset.hpp) --------------------------------
  void (*and_rows)(std::uint64_t* dst, const std::uint64_t* a,
                   const std::uint64_t* b, std::size_t nw);
  void (*and_not_rows)(std::uint64_t* dst, const std::uint64_t* a,
                       const std::uint64_t* b, std::size_t nw);
  std::size_t (*popcount)(const std::uint64_t* row, std::size_t nw);
  /// popcount(a & b) without materializing the intersection.
  std::size_t (*and_popcount)(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t nw);
  std::size_t (*first_bit)(const std::uint64_t* row, std::size_t nw,
                           std::size_t none);

  // --- congest message bit-packing (message.cpp) --------------------------
  /// OR the low `width` bits of value into the buffer at bit position
  /// `bit_pos` (LSB-first within and across bytes). Preconditions: all bits
  /// at positions >= bit_pos are currently zero, the buffer covers
  /// (bit_pos + width + 7) / 8 bytes, and kPackSlackBytes more are
  /// readable/writable (they are preserved).
  void (*pack_bits)(std::byte* bytes, std::size_t bit_pos, std::uint64_t value,
                    std::size_t width);
  /// Read `width` bits from bit position `bit_pos`, same layout and slack
  /// precondition (read-only).
  std::uint64_t (*unpack_bits)(const std::byte* bytes, std::size_t bit_pos,
                               std::size_t width);

  // --- congest bulk delivery accounting (network.cpp) ---------------------
  std::size_t (*count_nonzero_u8)(const std::uint8_t* p, std::size_t n);
  std::uint64_t (*sum_u32)(const std::uint32_t* p, std::size_t n);
  /// acc[i] += p[i] (widening), for per-slot delivered-bits accumulation.
  void (*accumulate_u32_to_u64)(std::uint64_t* acc, const std::uint32_t* p,
                                std::size_t n);
};

/// "scalar" / "avx2" / "avx512".
const char* level_name(Level level);

/// Was this level's translation unit built with its ISA enabled?
bool level_compiled(Level level);

/// level_compiled and the running CPU has the ISA (CPUID).
bool level_supported(Level level);

/// Highest supported level on this build + CPU.
Level best_level();

/// The level of the active dispatch table (resolves CLB_SIMD on first use).
Level active_level();

/// Table for an explicit level; null when !level_supported(level).
const Kernels* kernels_for(Level level);

namespace detail {

// Per-level table accessors, defined one per translation unit. A level
// compiled without its ISA (non-x86, or a toolchain lacking the -m flags)
// returns null.
const Kernels* scalar_table();
const Kernels* avx2_table();
const Kernels* avx512_table();

extern std::atomic<const Kernels*> g_active;
const Kernels& resolve_active();

}  // namespace detail

/// The active dispatch table. First call resolves CLB_SIMD (throwing
/// InvariantError on an unknown value or an explicitly requested level this
/// build/CPU cannot run); later calls are a relaxed atomic load.
inline const Kernels& kernels() {
  const Kernels* k = detail::g_active.load(std::memory_order_relaxed);
  return k != nullptr ? *k : detail::resolve_active();
}

/// Force a specific level for the lifetime of the object (tests and benches
/// comparing levels in-process). Not safe to overlap with concurrent kernel
/// users on other threads; construct/destroy only around single-threaded or
/// externally synchronized sections.
class ScopedLevel {
 public:
  explicit ScopedLevel(Level level);
  ~ScopedLevel();
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  const Kernels* saved_;
};

}  // namespace congestlb::simd
