// Graph generators: fixed topologies and seeded random families.

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "support/expect.hpp"

namespace congestlb::graph {
namespace {

TEST(Generators, PathShape) {
  const Graph g = path_graph(5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(diameter(g), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(path_graph(0).num_nodes(), 0u);
  EXPECT_EQ(path_graph(1).num_edges(), 0u);
}

TEST(Generators, CycleShape) {
  const Graph g = cycle_graph(6);
  EXPECT_EQ(g.num_edges(), 6u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_EQ(diameter(g), 3u);
  EXPECT_THROW(cycle_graph(2), InvariantError);
}

TEST(Generators, CompleteShape) {
  const Graph g = complete_graph(7);
  EXPECT_EQ(g.num_edges(), 21u);
  EXPECT_EQ(g.max_degree(), 6u);
  EXPECT_EQ(diameter(g), 1u);
}

TEST(Generators, StarShape) {
  const Graph g = star_graph(9);
  EXPECT_EQ(g.num_edges(), 8u);
  EXPECT_EQ(g.degree(0), 8u);
  EXPECT_EQ(g.degree(3), 1u);
  EXPECT_THROW(star_graph(0), InvariantError);
}

TEST(Generators, GnpIsSeededDeterministic) {
  Rng a(5), b(5);
  const Graph ga = gnp_random(a, 30, 0.3, 4);
  const Graph gb = gnp_random(b, 30, 0.3, 4);
  EXPECT_TRUE(ga == gb);
}

TEST(Generators, GnpEdgeCountNearExpectation) {
  Rng rng(9);
  const std::size_t n = 60;
  const double p = 0.25;
  double total = 0;
  const int reps = 20;
  for (int i = 0; i < reps; ++i) {
    total += static_cast<double>(gnp_random(rng, n, p).num_edges());
  }
  const double expected = p * n * (n - 1) / 2;
  EXPECT_NEAR(total / reps, expected, expected * 0.12);
}

TEST(Generators, GnpExtremes) {
  Rng rng(1);
  EXPECT_EQ(gnp_random(rng, 10, 0.0).num_edges(), 0u);
  EXPECT_EQ(gnp_random(rng, 10, 1.0).num_edges(), 45u);
  EXPECT_THROW(gnp_random(rng, 5, 0.5, 0), InvariantError);
}

TEST(Generators, GnpWeightsInRange) {
  Rng rng(2);
  const Graph g = gnp_random(rng, 50, 0.1, 6);
  bool saw_heavy = false;
  for (NodeId v = 0; v < 50; ++v) {
    EXPECT_GE(g.weight(v), 1);
    EXPECT_LE(g.weight(v), 6);
    saw_heavy = saw_heavy || g.weight(v) > 1;
  }
  EXPECT_TRUE(saw_heavy);
}

TEST(Generators, ConnectedVariantIsConnected) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(is_connected(gnp_random_connected(rng, 40, 0.02)));
  }
}

TEST(Generators, BipartiteHasNoSideEdges) {
  Rng rng(4);
  const Graph g = random_bipartite(rng, 8, 12, 0.5);
  for (NodeId u = 0; u < 8; ++u) {
    for (NodeId v = u + 1; v < 8; ++v) EXPECT_FALSE(g.has_edge(u, v));
  }
  for (NodeId u = 8; u < 20; ++u) {
    for (NodeId v = u + 1; v < 20; ++v) EXPECT_FALSE(g.has_edge(u, v));
  }
  EXPECT_GT(g.num_edges(), 0u);
}

}  // namespace
}  // namespace congestlb::graph
