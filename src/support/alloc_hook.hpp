// Heap-allocation counting for the engine's zero-allocation guarantee.
//
// Targets that link the `clb_alloc_hook` CMake library get replacement
// global operator new/delete that count every allocation through a relaxed
// atomic. The engine regression test and the JSON benches use the delta
// across a window of rounds to prove (and report) allocations/round.
//
// Targets that do not link the hook must not call these functions — the
// symbols live only in clb_alloc_hook.

#pragma once

#include <cstdint>

namespace congestlb::allochook {

/// Total operator-new calls in this process so far.
std::uint64_t allocation_count();

/// Total bytes requested from operator new so far.
std::uint64_t allocated_bytes();

/// Always true when the hook is linked (exists so callers can assert the
/// binary really carries the counting allocator).
bool hook_active();

}  // namespace congestlb::allochook
