#include "congest/algorithms/greedy_mis.hpp"

#include <vector>

#include "congest/algorithms/mis_common.hpp"
#include "support/expect.hpp"

namespace congestlb::congest {

namespace {

class GreedyMisProgram final : public NodeProgram {
 public:
  void round(const NodeInfo& info, const Inbox& inbox, Outbox& outbox,
             Rng& /*rng*/) override {
    if (neighbor_state_.empty()) {
      neighbor_state_.assign(info.neighbors.size(), IsState::kUndecided);
    }
    // Ingest neighbor states from last round.
    for (std::size_t s = 0; s < inbox.size(); ++s) {
      if (!inbox[s]) continue;
      MessageReader r(*inbox[s]);
      neighbor_state_[s] = static_cast<IsState>(r.get(2));
    }
    // A neighbor in the set forces us out.
    if (state_ == IsState::kUndecided) {
      for (IsState s : neighbor_state_) {
        if (s == IsState::kIn) {
          state_ = IsState::kOut;
          break;
        }
      }
    }
    // Join if we dominate all still-undecided neighbors by id. Valid only
    // once we've heard from everyone at least once (round >= 1).
    if (state_ == IsState::kUndecided && heard_once_) {
      bool dominated = false;
      for (std::size_t s = 0; s < info.neighbors.size(); ++s) {
        if (neighbor_state_[s] == IsState::kUndecided &&
            info.neighbors[s] > info.id) {
          dominated = true;
          break;
        }
      }
      if (!dominated) state_ = IsState::kIn;
    }
    heard_once_ = true;

    // Announce state while anything around us can still change. Once we and
    // all neighbors are decided and we've broadcast the decision, go quiet.
    const bool neighbors_decided = [&] {
      for (IsState s : neighbor_state_) {
        if (s == IsState::kUndecided) return false;
      }
      return true;
    }();
    if (state_ != IsState::kUndecided && neighbors_decided &&
        announced_final_) {
      finished_ = true;
      return;
    }
    Message m = std::move(MessageWriter()
                              .put(static_cast<std::uint64_t>(state_), 2))
                    .finish();
    outbox.send_all(m);
    if (state_ != IsState::kUndecided) announced_final_ = true;
  }

  bool finished() const override { return finished_; }
  std::int64_t output() const override { return state_ == IsState::kIn ? 1 : 0; }

 private:
  IsState state_ = IsState::kUndecided;
  std::vector<IsState> neighbor_state_;
  bool heard_once_ = false;
  bool announced_final_ = false;
  bool finished_ = false;
};

}  // namespace

ProgramFactory greedy_mis_factory() {
  return [](NodeId, const NodeInfo&) {
    return std::make_unique<GreedyMisProgram>();
  };
}

}  // namespace congestlb::congest
