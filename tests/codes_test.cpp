// Error-correcting codes: prime field axioms, Reed-Solomon distance
// (Theorem 4), baseline codes, gadget-code parameter selection.

#include <gtest/gtest.h>

#include "codes/code_mapping.hpp"
#include "codes/params.hpp"
#include "codes/prime_field.hpp"
#include "codes/reed_solomon.hpp"
#include "codes/trivial_codes.hpp"
#include "support/expect.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"

namespace congestlb::codes {
namespace {

// ------------------------------------------------------------ PrimeField --

class PrimeFieldAxioms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrimeFieldAxioms, RingAndFieldLaws) {
  const PrimeField f(GetParam());
  const std::uint64_t p = f.order();
  Rng rng(p);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.below(p), b = rng.below(p), c = rng.below(p);
    EXPECT_EQ(f.add(a, b), f.add(b, a));
    EXPECT_EQ(f.mul(a, b), f.mul(b, a));
    EXPECT_EQ(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
    EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
    EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
    EXPECT_EQ(f.add(a, f.neg(a)), 0u);
    EXPECT_EQ(f.sub(a, b), f.add(a, f.neg(b)));
    if (a != 0) {
      EXPECT_EQ(f.mul(a, f.inv(a)), 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Primes, PrimeFieldAxioms,
                         ::testing::Values(2, 3, 5, 7, 11, 13, 101, 257));

TEST(PrimeField, RejectsComposite) {
  EXPECT_THROW(PrimeField(4), InvariantError);
  EXPECT_THROW(PrimeField(1), InvariantError);
  EXPECT_THROW(PrimeField(0), InvariantError);
}

TEST(PrimeField, RejectsOutOfRangeElements) {
  const PrimeField f(7);
  EXPECT_THROW(f.add(7, 0), InvariantError);
  EXPECT_THROW(f.mul(0, 9), InvariantError);
  EXPECT_THROW(f.inv(0), InvariantError);
}

TEST(PrimeField, FermatPow) {
  const PrimeField f(13);
  for (std::uint64_t a = 1; a < 13; ++a) {
    EXPECT_EQ(f.pow(a, 12), 1u) << a;  // Fermat's little theorem
  }
  EXPECT_EQ(f.pow(0, 0), 1u);
  EXPECT_EQ(f.pow(5, 1), 5u);
}

TEST(PrimeField, PolyEvalMatchesManual) {
  const PrimeField f(11);
  // f(x) = 3 + 2x + x^2 at x = 4 -> 3 + 8 + 16 = 27 = 5 (mod 11)
  EXPECT_EQ(f.eval_poly({3, 2, 1}, 4), 5u);
  EXPECT_EQ(f.eval_poly({}, 4), 0u);
  EXPECT_EQ(f.eval_poly({7}, 9), 7u);
}

// ---------------------------------------------------------- Reed-Solomon --

TEST(ReedSolomon, ParameterValidation) {
  EXPECT_THROW(ReedSolomonCode(0, 3, 7), InvariantError);   // L >= 1
  EXPECT_THROW(ReedSolomonCode(4, 3, 7), InvariantError);   // L <= M
  EXPECT_THROW(ReedSolomonCode(2, 8, 7), InvariantError);   // M <= p
  EXPECT_THROW(ReedSolomonCode(2, 4, 6), InvariantError);   // p prime
  EXPECT_NO_THROW(ReedSolomonCode(2, 7, 7));
}

TEST(ReedSolomon, EncodeIsPolynomialEvaluation) {
  const ReedSolomonCode code(2, 5, 7);
  // message (3, 2): f(x) = 3 + 2x over GF(7), evaluated at 0..4.
  const Word cw = code.encode(std::vector<Symbol>{3, 2});
  const Word expect{3, 5, 0, 2, 4};
  EXPECT_EQ(cw, expect);
}

TEST(ReedSolomon, RejectsWrongMessageLength) {
  const ReedSolomonCode code(2, 5, 7);
  EXPECT_THROW(code.encode(std::vector<Symbol>{1}), InvariantError);
  EXPECT_THROW(code.encode(std::vector<Symbol>{1, 2, 3}), InvariantError);
}

TEST(ReedSolomon, DistanceIsSingleton) {
  const ReedSolomonCode code(2, 5, 7);
  EXPECT_EQ(code.min_distance(), 4u);  // M - L + 1
  EXPECT_EQ(code.num_messages(), 49u);
  // Exhaustive verification over all 49*48/2 pairs.
  const std::size_t min_seen = verify_min_distance(code);
  EXPECT_EQ(min_seen, 4u);  // Singleton bound met with equality by some pair
}

class RsDistanceSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RsDistanceSweep, MinimumDistanceHolds) {
  const auto [l, m, p] = GetParam();
  const ReedSolomonCode code(l, m, p);
  const std::size_t min_seen =
      verify_min_distance(code, /*exhaustive_limit=*/2048, /*samples=*/4000);
  EXPECT_GE(min_seen, code.min_distance());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RsDistanceSweep,
    ::testing::Values(std::tuple(1, 3, 3), std::tuple(1, 5, 5),
                      std::tuple(2, 6, 7), std::tuple(2, 11, 11),
                      std::tuple(3, 7, 7), std::tuple(3, 13, 13),
                      std::tuple(4, 11, 11)));

TEST(ReedSolomon, MessageIndexRoundTrip) {
  const ReedSolomonCode code(3, 7, 7);
  // message_of_index is a bijection on [0, q^L) — spot-check injectivity on
  // a prefix plus base-q digit identity.
  const std::uint64_t q = code.alphabet_size();
  for (std::uint64_t m = 0; m < 200; ++m) {
    const Word msg = code.message_of_index(m);
    std::uint64_t back = 0, mult = 1;
    for (Symbol s : msg) {
      back += s * mult;
      mult *= q;
    }
    EXPECT_EQ(back, m);
  }
  EXPECT_THROW(code.message_of_index(code.num_messages()), InvariantError);
}

class RsErasureDecoding : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RsErasureDecoding, RecoversFromMaximalErasures) {
  Rng rng(GetParam());
  const ReedSolomonCode code(3, 9, 11);
  for (int trial = 0; trial < 40; ++trial) {
    const std::uint64_t m = rng.below(code.num_messages());
    const Word msg = code.message_of_index(m);
    const Word cw = code.encode(msg);
    // Erase up to M - L = 6 random positions.
    const std::size_t erasures = rng.below(code.codeword_length() -
                                           code.message_length() + 1);
    std::vector<std::optional<Symbol>> received(cw.begin(), cw.end());
    for (std::size_t e : rng.sample(code.codeword_length(), erasures)) {
      received[e] = std::nullopt;
    }
    EXPECT_EQ(code.decode(received), msg) << "m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RsErasureDecoding,
                         ::testing::Values(91, 92, 93, 94));

TEST(ReedSolomon, DecodeRejectsTooManyErasures) {
  const ReedSolomonCode code(3, 7, 7);
  std::vector<std::optional<Symbol>> received(7, std::nullopt);
  received[0] = 1;
  received[1] = 2;  // only 2 < L = 3 known
  EXPECT_THROW(code.decode(received), InvariantError);
}

TEST(ReedSolomon, DecodeDetectsCorruption) {
  const ReedSolomonCode code(2, 6, 7);
  const Word cw = code.encode(std::vector<Symbol>{3, 4});
  std::vector<std::optional<Symbol>> received(cw.begin(), cw.end());
  received[5] = (*received[5] + 1) % 7;  // flip one symbol, keep all known
  EXPECT_THROW(code.decode(received), InvariantError);
}

TEST(ReedSolomon, DecodeValidatesInput) {
  const ReedSolomonCode code(2, 6, 7);
  std::vector<std::optional<Symbol>> wrong_len(5, Symbol{0});
  EXPECT_THROW(code.decode(wrong_len), InvariantError);
  std::vector<std::optional<Symbol>> bad_symbol(6, Symbol{0});
  bad_symbol[2] = Symbol{9};  // >= field order
  EXPECT_THROW(code.decode(bad_symbol), InvariantError);
}

TEST(HammingDistance, BasicsAndMismatchRejection) {
  EXPECT_EQ(hamming_distance(Word{1, 2, 3}, Word{1, 2, 3}), 0u);
  EXPECT_EQ(hamming_distance(Word{1, 2, 3}, Word{3, 2, 1}), 2u);
  EXPECT_THROW(hamming_distance(Word{1}, Word{1, 2}), InvariantError);
}

// --------------------------------------------------------- trivial codes --

TEST(TrivialCodes, IdentityProperties) {
  const IdentityCode code(4, 5);
  EXPECT_EQ(code.min_distance(), 1u);
  EXPECT_EQ(code.codeword_length(), 4u);
  const Word w = code.encode(std::vector<Symbol>{0, 4, 2, 1});
  EXPECT_EQ(w, (Word{0, 4, 2, 1}));
  EXPECT_GE(verify_min_distance(code, 700), 1u);
  EXPECT_THROW(code.encode(std::vector<Symbol>{0, 9, 0, 0}), InvariantError);
}

TEST(TrivialCodes, PaddingKeepsDistanceOne) {
  const PaddingCode code(2, 6, 4);
  const Word w = code.encode(std::vector<Symbol>{3, 1});
  EXPECT_EQ(w, (Word{3, 1, 0, 0, 0, 0}));
  // Two messages differing in one symbol stay at distance 1 despite M >> L.
  const Word a = code.encode(std::vector<Symbol>{3, 1});
  const Word b = code.encode(std::vector<Symbol>{2, 1});
  EXPECT_EQ(hamming_distance(a, b), 1u);
}

TEST(TrivialCodes, RepetitionIsMaxDistance) {
  const RepetitionCode code(5, 3);
  EXPECT_EQ(code.min_distance(), 5u);
  EXPECT_EQ(code.num_messages(), 3u);
  EXPECT_EQ(verify_min_distance(code), 5u);
}

TEST(TrivialCodes, ParameterValidation) {
  EXPECT_THROW(IdentityCode(0, 3), InvariantError);
  EXPECT_THROW(IdentityCode(3, 1), InvariantError);
  EXPECT_THROW(PaddingCode(4, 3, 5), InvariantError);
  EXPECT_THROW(RepetitionCode(0, 3), InvariantError);
}

// ------------------------------------------------------------ GadgetCode --

TEST(GadgetCode, MatchesTheorem4Shape) {
  // Theorem 4 instantiated at (alpha, ell+alpha, ell, Sigma).
  for (auto [ell, alpha] : {std::pair<std::size_t, std::size_t>{2, 1},
                            {4, 1},
                            {5, 2},
                            {10, 3}}) {
    const GadgetCode gc = make_gadget_code(ell, alpha);
    EXPECT_EQ(gc.code->message_length(), alpha);
    EXPECT_EQ(gc.code->codeword_length(), ell + alpha);
    EXPECT_GE(gc.code->min_distance(), ell);
    EXPECT_GE(gc.prime, ell + alpha);  // alphabet covers all positions
    EXPECT_GE(gc.max_messages,
              checked_pow(ell + alpha, alpha).value());  // capacity >= k
  }
}

TEST(GadgetCode, PrimeIsMinimal) {
  EXPECT_EQ(make_gadget_code(2, 1).prime, 3u);
  EXPECT_EQ(make_gadget_code(4, 1).prime, 5u);
  EXPECT_EQ(make_gadget_code(5, 1).prime, 7u);  // 6 -> 7
  EXPECT_EQ(make_gadget_code(6, 2).prime, 11u);  // 8 -> 11
}

TEST(GadgetCode, RejectsDegenerate) {
  EXPECT_THROW(make_gadget_code(0, 1), InvariantError);
  EXPECT_THROW(make_gadget_code(1, 0), InvariantError);
}

}  // namespace
}  // namespace congestlb::codes
