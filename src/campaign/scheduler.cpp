#include "campaign/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "support/expect.hpp"

namespace congestlb::campaign {

WorkStealingScheduler::WorkStealingScheduler(std::size_t num_threads)
    : num_threads_(std::max<std::size_t>(1, num_threads)) {}

std::size_t WorkStealingScheduler::add_job(JobFn fn) {
  CLB_EXPECT(!started_, "scheduler: add_job after run()");
  CLB_EXPECT(fn != nullptr, "scheduler: null job");
  jobs_.push_back(Job{std::move(fn), {}, 0});
  return jobs_.size() - 1;
}

void WorkStealingScheduler::add_dependency(std::size_t job,
                                           std::size_t prerequisite) {
  CLB_EXPECT(!started_, "scheduler: add_dependency after run()");
  CLB_EXPECT(job < jobs_.size() && prerequisite < jobs_.size(),
             "scheduler: dependency on unknown job");
  CLB_EXPECT(job != prerequisite, "scheduler: self-dependency");
  jobs_[prerequisite].dependents.push_back(job);
  jobs_[job].num_deps += 1;
}

void WorkStealingScheduler::make_ready(std::size_t w, std::size_t job) {
  {
    std::lock_guard<std::mutex> lock(queues_[w].mu);
    queues_[w].q.push_back(job);
  }
  wait_cv_.notify_all();
}

bool WorkStealingScheduler::pop_or_steal(std::size_t w, std::size_t* job) {
  {
    std::lock_guard<std::mutex> lock(queues_[w].mu);
    if (!queues_[w].q.empty()) {
      *job = queues_[w].q.back();
      queues_[w].q.pop_back();
      return true;
    }
  }
  for (std::size_t i = 1; i < num_threads_; ++i) {
    WorkerQueue& victim = queues_[(w + i) % num_threads_];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.q.empty()) {
      *job = victim.q.front();  // steal the oldest (largest-subtree) work
      victim.q.pop_front();
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void WorkStealingScheduler::execute(std::size_t w, std::size_t job) {
  bool run_it = !abandon_.load(std::memory_order_relaxed);
  if (run_it && max_executed_ > 0) {
    // issued_ counts claims on the budget; the claim that lands on the
    // boundary still runs, later claims see the flag and drain.
    const std::size_t prior =
        issued_.fetch_add(1, std::memory_order_relaxed);
    if (prior >= max_executed_) {
      run_it = false;
      abandon_.store(true, std::memory_order_relaxed);
    } else if (prior + 1 == max_executed_) {
      abandon_.store(true, std::memory_order_relaxed);
    }
  }
  if (run_it) {
    try {
      jobs_[job].fn(w);
      ran_[job] = 1;
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      abandon_.store(true, std::memory_order_relaxed);
    }
  }
  for (const std::size_t dep : jobs_[job].dependents) {
    if (deps_left_[dep].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      make_ready(w, dep);
    }
  }
  done_.fetch_add(1, std::memory_order_acq_rel);
  wait_cv_.notify_all();
}

void WorkStealingScheduler::worker_loop(std::size_t w) {
  while (true) {
    std::size_t job = 0;
    if (pop_or_steal(w, &job)) {
      execute(w, job);
      continue;
    }
    if (done_.load(std::memory_order_acquire) == jobs_.size()) return;
    // Emergency drain (coordinator unwinding): exit once there is nothing
    // poppable rather than waiting on a done_ count that may never arrive.
    if (halt_.load(std::memory_order_acquire)) return;
    // No local or stealable work but the DAG is not drained: another worker
    // is running a job whose completion will release more. Sleep with a
    // timeout — the timeout (rather than precise wakeup bookkeeping) keeps
    // the scheduler simple, and campaign jobs are far coarser than 1ms.
    std::unique_lock<std::mutex> lock(wait_mu_);
    wait_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

WorkStealingScheduler::Report WorkStealingScheduler::run(
    std::size_t max_executed) {
  CLB_EXPECT(!started_, "scheduler: run() is single-shot");
  started_ = true;
  max_executed_ = max_executed;
  ran_.assign(jobs_.size(), 0);
  deps_left_ = std::vector<std::atomic<std::size_t>>(jobs_.size());
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    deps_left_[j].store(jobs_[j].num_deps, std::memory_order_relaxed);
  }
  queues_ = std::make_unique<WorkerQueue[]>(num_threads_);
  // Seed ready jobs round-robin so every worker starts with local work.
  std::size_t next_worker = 0;
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    if (jobs_[j].num_deps == 0) {
      queues_[next_worker].q.push_back(j);
      next_worker = (next_worker + 1) % num_threads_;
    }
  }

  if (!jobs_.empty()) {
    std::vector<std::thread> workers;
    workers.reserve(num_threads_ - 1);
    // RAII join: whatever unwinds out of the coordinator loop (a lock
    // failure, an invariant check), every spawned worker is signalled to
    // halt and joined before run() exits — an exception can strand
    // abandoned jobs, but never a thread, and never reach std::terminate.
    // On the normal path the coordinator only returns once the DAG is
    // drained, so the halt flag is moot and this is a plain join.
    struct Joiner {
      WorkStealingScheduler* self;
      std::vector<std::thread>* threads;
      ~Joiner() {
        self->halt_.store(true, std::memory_order_release);
        self->wait_cv_.notify_all();
        for (std::thread& th : *threads) {
          if (th.joinable()) th.join();
        }
      }
    } joiner{this, &workers};
    for (std::size_t w = 1; w < num_threads_; ++w) {
      workers.emplace_back([this, w] { worker_loop(w); });
    }
    worker_loop(0);
  }

  CLB_EXPECT(done_.load() == jobs_.size(),
             "scheduler: drain incomplete (dependency cycle?)");
  if (first_error_) std::rethrow_exception(first_error_);

  Report report;
  report.steals = steals_.load(std::memory_order_relaxed);
  report.ran = ran_;
  for (const std::uint8_t r : ran_) report.executed += r;
  report.abandoned = jobs_.size() - report.executed;
  return report;
}

// ---- SharedScheduler -----------------------------------------------------

SharedScheduler::SharedScheduler(std::size_t num_threads)
    : num_threads_(std::max<std::size_t>(1, num_threads)) {
  workers_.reserve(num_threads_);
  for (std::size_t w = 0; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

SharedScheduler::~SharedScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& th : workers_) {
    if (th.joinable()) th.join();
  }
}

bool SharedScheduler::submit(int priority, JobFn fn) {
  CLB_EXPECT(fn != nullptr, "shared scheduler: null job");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    queue_.push(Entry{priority, next_seq_++, std::move(fn)});
  }
  work_cv_.notify_one();
  return true;
}

void SharedScheduler::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  work_cv_.notify_all();
}

void SharedScheduler::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

std::size_t SharedScheduler::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + running_;
}

void SharedScheduler::worker_loop(std::size_t w) {
  while (true) {
    JobFn fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;  // destructor: abandon whatever is still queued
      // priority_queue::top is const&; the Entry must be moved out via
      // const_cast-free copy of the fn — take it by extracting top into a
      // local before pop.
      fn = std::move(const_cast<Entry&>(queue_.top()).fn);
      queue_.pop();
      ++running_;
    }
    try {
      fn(w);
    } catch (...) {
      // Job bodies are supervised (campaign/supervise.hpp) and campaign
      // wrappers catch everything; an exception here is a harness bug.
      // Count it — the service surfaces job_errors() in /v1/stats — but
      // never take the worker down.
      job_errors_.fetch_add(1, std::memory_order_relaxed);
    }
    executed_.fetch_add(1, std::memory_order_relaxed);
    bool drained = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      drained = queue_.empty() && running_ == 0;
    }
    if (drained) drain_cv_.notify_all();
  }
}

}  // namespace congestlb::campaign
