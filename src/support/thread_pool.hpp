// A small reusable worker pool for deterministic sharded parallelism.
//
// The CONGEST engine partitions nodes into contiguous shards and runs one
// task per shard per phase; the pool hands shard indices to workers through
// an atomic counter. Which thread executes which shard is scheduling noise —
// callers must keep all cross-shard state disjoint (per-shard counters,
// per-slot arrays) and merge results in shard-index order, which is what
// makes the parallel engine bit-identical to the serial one.
//
// run() is allocation-light by design: the task is passed by reference and
// the pool reuses its synchronization state across invocations, so a
// long-lived Network pays no per-round setup beyond two condition-variable
// round trips.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace congestlb {

class ThreadPool {
 public:
  /// A pool that executes with `num_threads` total threads of parallelism:
  /// num_threads - 1 workers are spawned and the thread calling run() is the
  /// last participant. num_threads <= 1 spawns nothing (run() degrades to a
  /// plain serial loop).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads of parallelism (workers + the calling thread).
  std::size_t num_threads() const { return workers_.size() + 1; }

  /// Invoke fn(shard) for every shard in [0, num_shards), distributing
  /// shards across all threads; blocks until every shard completed. fn must
  /// not throw (wrap and capture exceptions per shard) and must be safe to
  /// call concurrently for distinct shard arguments.
  void run(std::size_t num_shards, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void drain();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t num_shards_ = 0;
  std::atomic<std::size_t> next_shard_{0};
  std::size_t active_workers_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace congestlb
