// "The Challenge" (Section 1), as testable behavior: on NO instances of
// PLAIN multi-party set-disjointness, the gadget's MaxIS depends on the
// pairwise-intersection pattern — each intersecting pair i,j lets the IS
// pick two weight-ell nodes v^i_m, v^j_m with the SAME index, recovering
// the full 2*ell + ... structure for that pair. The promise (pairwise
// disjoint XOR uniquely intersecting) eliminates every such sub-case.

#include <gtest/gtest.h>

#include "comm/instances.hpp"
#include "lowerbound/linear_family.hpp"
#include "maxis/branch_and_bound.hpp"
#include "support/expect.hpp"
#include "support/rng.hpp"

namespace congestlb::lb {
namespace {

std::vector<std::vector<std::uint8_t>> pattern_strings(std::size_t k,
                                                       bool i12, bool i13,
                                                       bool i23) {
  std::vector<std::vector<std::uint8_t>> s(3, std::vector<std::uint8_t>(k, 0));
  std::size_t next = 0;
  auto add_pair = [&](std::size_t a, std::size_t b) {
    s[a][next] = 1;
    s[b][next] = 1;
    ++next;
  };
  if (i12) add_pair(0, 1);
  if (i13) add_pair(0, 2);
  if (i23) add_pair(1, 2);
  for (std::size_t i = 0; i < 3; ++i) s[i][next++] = 1;
  return s;
}

TEST(Challenge, PairwiseIntersectionsInflateTheNoSide) {
  const auto p = GadgetParams::from_l_alpha(5, 1, 6);
  const LinearConstruction c(p, 3);
  const auto base = pattern_strings(p.k, false, false, false);
  const auto one_pair = pattern_strings(p.k, true, false, false);
  const auto w_base = maxis::solve_exact(c.instantiate_raw(base)).weight;
  const auto w_pair = maxis::solve_exact(c.instantiate_raw(one_pair)).weight;
  // A pairwise intersection strictly increases the achievable weight.
  EXPECT_GT(w_pair, w_base);
  // Neither input has a triple intersection, so plain 3-party
  // set-disjointness calls both "NO" — yet their gadget values differ:
  // no single threshold handles both sub-cases.
  EXPECT_EQ(comm::classify(base), comm::InstanceClass::kPairwiseDisjoint);
  EXPECT_EQ(comm::classify(one_pair), comm::InstanceClass::kPromiseViolation);
}

TEST(Challenge, PromiseLegalRowIsTheOnlySafeOne) {
  const auto p = GadgetParams::from_l_alpha(5, 1, 6);
  const LinearConstruction c(p, 3);
  for (int mask = 0; mask < 8; ++mask) {
    const auto s = pattern_strings(p.k, mask & 1, mask & 2, mask & 4);
    const auto cls = comm::classify(s);
    if (mask == 0) {
      EXPECT_EQ(cls, comm::InstanceClass::kPairwiseDisjoint);
      EXPECT_LE(maxis::solve_exact(c.instantiate_raw(s)).weight,
                c.no_bound());
    } else {
      EXPECT_EQ(cls, comm::InstanceClass::kPromiseViolation);
    }
  }
}

TEST(Challenge, RawInstantiateAgreesWithCheckedOnPromiseInputs) {
  const auto p = GadgetParams::from_l_alpha(4, 1, 5);
  const LinearConstruction c(p, 3);
  Rng rng(9);
  const auto inst = comm::make_pairwise_disjoint(5, 3, rng, 0.4);
  EXPECT_TRUE(c.instantiate(inst) == c.instantiate_raw(inst.strings));
}

TEST(Challenge, RawInstantiateValidatesShape) {
  const auto p = GadgetParams::from_l_alpha(4, 1, 5);
  const LinearConstruction c(p, 2);
  EXPECT_THROW(c.instantiate_raw({{1, 0, 0, 0, 0}}), InvariantError);
  EXPECT_THROW(c.instantiate_raw({{1, 0}, {0, 1}}), InvariantError);
  EXPECT_THROW(c.instantiate_raw({{1, 0, 0, 0, 2}, {0, 0, 0, 0, 0}}),
               InvariantError);
}

}  // namespace
}  // namespace congestlb::lb
