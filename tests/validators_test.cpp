// The invariant-validator layer: honest constructions pass with a nonzero
// check count; tampered instances produce structured diagnostics that name
// the property, the gadget, and the offending vertex or edge.

#include <gtest/gtest.h>

#include <algorithm>

#include "comm/instances.hpp"
#include "lowerbound/validators.hpp"
#include "support/rng.hpp"

namespace congestlb::lb {
namespace {

GadgetParams small_params() { return GadgetParams::from_l_alpha(2, 1, 3); }

// --------------------------------------------------------------- linear --

TEST(LinearValidator, HonestFixedConstructionPasses) {
  for (std::size_t t : {2u, 3u, 4u}) {
    const LinearConstruction c(small_params(), t);
    const auto rep = validate_linear_properties(c);
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_GT(rep.checks_run, 0u);
    EXPECT_NE(rep.summary().find("ok"), std::string::npos);
  }
}

TEST(LinearValidator, SamplingIsDeterministicInSeed) {
  const LinearConstruction c(small_params(), 3);
  const auto a = validate_linear_properties(c, 32, 7);
  const auto b = validate_linear_properties(c, 32, 7);
  EXPECT_EQ(a.checks_run, b.checks_run);
  EXPECT_EQ(a.issues.size(), b.issues.size());
}

TEST(LinearValidator, HonestInstancePasses) {
  const auto p = small_params();
  const LinearConstruction c(p, 2);
  Rng rng(41);
  const auto inst = comm::make_uniquely_intersecting(p.k, 2, rng);
  const auto gx = c.instantiate(inst);
  const auto rep = validate_linear_instance(c, inst, gx);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_GT(rep.checks_run, 0u);
}

TEST(LinearValidator, TamperedWeightIsLocatedExactly) {
  const auto p = small_params();
  const LinearConstruction c(p, 2);
  Rng rng(42);
  const auto inst = comm::make_uniquely_intersecting(p.k, 2, rng);
  auto gx = c.instantiate(inst);

  // Flip one A-node weight away from the instantiation rule.
  const graph::NodeId victim = c.a_node(1, 2);
  const graph::Weight honest = gx.weight(victim);
  const graph::Weight wrong =
      honest == 1 ? static_cast<graph::Weight>(p.ell) : graph::Weight{1};
  gx.set_weight(victim, wrong);

  const auto rep = validate_linear_instance(c, inst, gx);
  ASSERT_FALSE(rep.ok());
  const auto hit = std::find_if(
      rep.issues.begin(), rep.issues.end(),
      [&](const ValidationIssue& is) { return is.u == victim; });
  ASSERT_NE(hit, rep.issues.end()) << rep.summary();
  EXPECT_EQ(hit->property, "weights");
  EXPECT_EQ(hit->actual, static_cast<std::int64_t>(wrong));
  EXPECT_EQ(hit->expected, static_cast<std::int64_t>(honest));
  EXPECT_FALSE(hit->to_string().empty());
}

TEST(LinearValidator, ExtraEdgeIsReported) {
  const auto p = small_params();
  const LinearConstruction c(p, 2);
  Rng rng(43);
  const auto inst = comm::make_pairwise_disjoint(p.k, 2, rng);
  auto gx = c.instantiate(inst);

  // Splice in an edge the construction never creates: two A-nodes of
  // *different* copies (all cross-copy edges run between code nodes).
  const graph::NodeId u = c.a_node(0, 0);
  const graph::NodeId v = c.a_node(1, 0);
  ASSERT_FALSE(gx.has_edge(u, v));
  gx.add_edge(u, v);

  const auto rep = validate_linear_instance(c, inst, gx);
  ASSERT_FALSE(rep.ok());
  const auto& is = rep.issues.front();
  EXPECT_EQ(is.property, "edges");
  EXPECT_FALSE(is.detail.empty());
}

TEST(LinearValidator, WrongInstanceShapeIsRejectedNotCrashed) {
  const auto p = small_params();
  const LinearConstruction c(p, 2);
  Rng rng(44);
  // Honest graph, but validated against a *different* instance: the weight
  // rule can no longer hold everywhere (the two instances differ in some
  // bit with overwhelming probability at these sizes; both draws are
  // deterministic, so this test is stable).
  const auto inst_a = comm::make_uniquely_intersecting(p.k, 2, rng);
  const auto inst_b = comm::make_pairwise_disjoint(p.k, 2, rng);
  ASSERT_NE(inst_a.strings, inst_b.strings);
  const auto gx = c.instantiate(inst_a);
  const auto rep = validate_linear_instance(c, inst_b, gx);
  EXPECT_FALSE(rep.ok());
}

// ------------------------------------------------------------ quadratic --

TEST(QuadraticValidator, HonestFixedConstructionPasses) {
  for (std::size_t t : {1u, 2u, 3u}) {
    const QuadraticConstruction c(small_params(), t);
    const auto rep = validate_quadratic_properties(c);
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_GT(rep.checks_run, 0u);
  }
}

TEST(QuadraticValidator, HonestInstancePasses) {
  const auto p = small_params();
  const QuadraticConstruction c(p, 2);
  Rng rng(45);
  const auto inst =
      comm::make_uniquely_intersecting(c.string_length(), 2, rng, 0.3);
  const auto fx = c.instantiate(inst);
  const auto rep = validate_quadratic_instance(c, inst, fx);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_GT(rep.checks_run, 0u);
}

TEST(QuadraticValidator, TamperedACliqueWeightIsReported) {
  const auto p = small_params();
  const QuadraticConstruction c(p, 2);
  Rng rng(46);
  const auto inst =
      comm::make_pairwise_disjoint(c.string_length(), 2, rng, 0.4);
  auto fx = c.instantiate(inst);

  // A-node weights are *fixed* at ell in the quadratic family; lower one.
  const graph::NodeId victim = c.a_node(1, 1, 0);
  ASSERT_EQ(fx.weight(victim), static_cast<graph::Weight>(p.ell));
  fx.set_weight(victim, 1);

  const auto rep = validate_quadratic_instance(c, inst, fx);
  ASSERT_FALSE(rep.ok());
  const auto hit = std::find_if(
      rep.issues.begin(), rep.issues.end(),
      [&](const ValidationIssue& is) { return is.u == victim; });
  ASSERT_NE(hit, rep.issues.end()) << rep.summary();
  EXPECT_EQ(hit->expected, static_cast<std::int64_t>(p.ell));
  EXPECT_EQ(hit->actual, 1);
}

TEST(QuadraticValidator, MismatchedInputEdgesAreReported) {
  const auto p = small_params();
  const QuadraticConstruction c(p, 2);
  Rng rng(47);
  // Validate the instantiation of one honest instance against a different
  // honest instance: wherever their bits differ, an input edge is present
  // in the graph but absent per the instance (or vice versa).
  const auto inst_a =
      comm::make_uniquely_intersecting(c.string_length(), 2, rng, 0.4);
  const auto inst_b =
      comm::make_pairwise_disjoint(c.string_length(), 2, rng, 0.4);
  ASSERT_NE(inst_a.strings, inst_b.strings);
  const auto fx_a = c.instantiate(inst_a);
  const auto rep = validate_quadratic_instance(c, inst_b, fx_a);
  ASSERT_FALSE(rep.ok());
  EXPECT_FALSE(rep.issues.front().detail.empty());
  EXPECT_FALSE(rep.summary().empty());
}

}  // namespace
}  // namespace congestlb::lb
