// Golden-trace regression test: the canonical serialization of a traced
// Theorem-5 reduction (linear family, t = 3, seed 7, YES branch, first
// kGoldenRounds rounds) must match tests/golden/theorem5_t3_seed7.trace
// byte for byte.
//
// This pins the *entire* observable pipeline at once — fault-free engine
// scheduling, event staging order, blackboard post mirroring, and the
// canonical text format. Any intentional change to one of those layers
// shows up as a diff here and must be reviewed, then the golden refreshed:
//
//   CLB_UPDATE_GOLDEN=1 ./tests/golden_trace_test
//
// (run from the build directory; the file is written in-tree via the
// CLB_GOLDEN_DIR compile definition, so commit the result).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "comm/blackboard.hpp"
#include "comm/instances.hpp"
#include "congest/algorithms/universal_maxis.hpp"
#include "congest/network.hpp"
#include "lowerbound/linear_family.hpp"
#include "lowerbound/params.hpp"
#include "maxis/branch_and_bound.hpp"
#include "obs/trace.hpp"
#include "sim/reduction.hpp"
#include "support/rng.hpp"

#ifndef CLB_GOLDEN_DIR
#error "CLB_GOLDEN_DIR must point at tests/golden (set in tests/CMakeLists.txt)"
#endif

namespace congestlb {
namespace {

constexpr std::size_t kGoldenT = 3;
constexpr std::uint64_t kGoldenSeed = 7;
constexpr std::size_t kGoldenRounds = 3;

std::string golden_path() {
  return std::string(CLB_GOLDEN_DIR) + "/theorem5_t3_seed7.trace";
}

/// The exact run the golden file captures. Bounded to kGoldenRounds so the
/// file stays reviewable; determinism over a prefix implies determinism of
/// the full run (every event is a pure function of the prefix state).
std::string render_trace() {
  const auto p = lb::GadgetParams::for_linear_separation(kGoldenT, 1);
  const lb::LinearConstruction c(p, kGoldenT);
  Rng rng(kGoldenSeed);
  const auto inst = comm::make_uniquely_intersecting(p.k, kGoldenT, rng);
  comm::Blackboard board(kGoldenT);
  // Deliveries alone fix the accounting; sends would double the file size
  // without pinning anything sends-specific the property suite misses.
  obs::Tracer tracer(
      {.capacity = std::size_t{1} << 20, .record_sends = false});
  congest::NetworkConfig cfg;
  cfg.tracer = &tracer;
  cfg.bits_per_edge = congest::universal_required_bits(
      c.num_nodes(), static_cast<graph::Weight>(p.ell));
  cfg.max_rounds = kGoldenRounds;
  sim::run_linear_reduction(
      c, inst,
      congest::universal_maxis_factory([](const graph::Graph& g) {
        return maxis::solve_exact(g).nodes;
      }),
      board, cfg);
  EXPECT_EQ(tracer.dropped(), 0u) << "golden run must be lossless";
  std::ostringstream os;
  obs::write_canonical(os, tracer.events());
  return std::move(os).str();
}

TEST(GoldenTrace, Theorem5ReductionMatchesByteForByte) {
  if (!obs::trace_compiled_in()) {
    GTEST_SKIP() << "tracer compiled out (CONGESTLB_TRACE=0)";
  }
  const std::string got = render_trace();
  ASSERT_FALSE(got.empty());

  if (std::getenv("CLB_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << golden_path();
    out << got;
    GTEST_SKIP() << "golden refreshed at " << golden_path() << " ("
                 << got.size() << " bytes); commit the new file";
  }

  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << golden_path()
                  << "; regenerate with CLB_UPDATE_GOLDEN=1 "
                     "./tests/golden_trace_test";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string want = buf.str();

  if (got != want) {
    std::size_t line = 1, col = 0;
    const std::size_t limit = std::min(got.size(), want.size());
    std::size_t i = 0;
    for (; i < limit && got[i] == want[i]; ++i) {
      if (got[i] == '\n') {
        ++line;
        col = 0;
      } else {
        ++col;
      }
    }
    FAIL() << "golden trace diverges at byte " << i << " (line " << line
           << ", col " << col << "); got " << got.size() << " bytes, golden "
           << want.size()
           << ". If the change is intentional, regenerate with "
              "CLB_UPDATE_GOLDEN=1 ./tests/golden_trace_test and commit.";
  }
}

}  // namespace
}  // namespace congestlb
