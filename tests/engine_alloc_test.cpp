// Zero-allocation regression test for the simulation engine hot path.
//
// Links clb_alloc_hook, whose replacement global operator new/delete count
// every heap allocation in the process. After a short warm-up (payload
// small-buffers engaged, arenas sized), running further rounds of a
// steady-state program must perform ZERO allocations — that is the
// engine-rewrite contract, and the benches report it as allocs/round.

#include <gtest/gtest.h>

#include <memory>

#include "congest/message.hpp"
#include "congest/network.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/alloc_hook.hpp"
#include "support/rng.hpp"

namespace congestlb::congest {
namespace {

/// Sends a 16-bit payload to every neighbor, forever; allocation-free per
/// round (MessageWriter's payload fits the small-buffer inline capacity).
class SteadyFlood final : public NodeProgram {
 public:
  void round(const NodeInfo& info, const Inbox& inbox, Outbox& outbox,
             Rng&) override {
    std::size_t heard = 0;
    for (const auto& m : inbox) {
      if (m) ++heard;
    }
    heard_ += heard;
    if (!info.neighbors.empty()) {
      outbox.send_all(
          std::move(MessageWriter().put(info.id & 0xFFFF, 16)).finish());
    }
  }
  bool finished() const override { return false; }
  std::int64_t output() const override {
    return static_cast<std::int64_t>(heard_);
  }

 private:
  std::size_t heard_ = 0;
};

TEST(EngineAlloc, HookIsLinked) {
  ASSERT_TRUE(allochook::hook_active());
  const auto before = allochook::allocation_count();
  auto p = std::make_unique<int>(42);
  EXPECT_GT(allochook::allocation_count(), before);
}

TEST(EngineAlloc, SteadyStateRoundsAllocateNothing) {
  Rng rng(2024);
  const auto g = graph::gnp_random_connected(rng, 256, 0.05);
  NetworkConfig cfg;
  cfg.bits_per_edge = 16;
  cfg.max_rounds = 1'000'000;
  Network net(g, [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<SteadyFlood>();
  }, cfg);

  // Warm-up: first sends engage payload buffers; a few extra rounds for
  // any one-time lazy work elsewhere.
  net.run_rounds(8);

  const auto before = allochook::allocation_count();
  net.run_rounds(100);
  const auto after = allochook::allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "engine hot path allocated " << (after - before)
      << " times over 100 steady-state rounds";
}

TEST(EngineAlloc, SteadyStateRoundsAllocateNothingUnderFaults) {
  // Fault classification, corruption-in-place, and echo staging must also
  // be allocation-free: echoes copy into retained arena capacity.
  Rng rng(4048);
  const auto g = graph::gnp_random_connected(rng, 128, 0.08);
  NetworkConfig cfg;
  cfg.bits_per_edge = 16;
  cfg.max_rounds = 1'000'000;
  cfg.faults.drop_rate = 0.2;
  cfg.faults.corrupt_rate = 0.1;
  cfg.faults.duplicate_rate = 0.1;
  Network net(g, [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<SteadyFlood>();
  }, cfg);

  net.run_rounds(8);

  const auto before = allochook::allocation_count();
  net.run_rounds(100);
  const auto after = allochook::allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "faulted hot path allocated " << (after - before)
      << " times over 100 steady-state rounds";
}

TEST(EngineAlloc, DisabledTracerAndMetricsCostNothing) {
  // A zero-capacity tracer attached to the config must leave the hot path
  // untouched — the runtime kill switch, as opposed to CONGESTLB_TRACE=0.
  // Metrics updates go through preallocated per-shard cells, so they are
  // allocation-free even while live.
  Rng rng(2024);
  const auto g = graph::gnp_random_connected(rng, 128, 0.05);
  obs::Tracer tracer({.capacity = 0});
  obs::MetricsRegistry metrics;
  NetworkConfig cfg;
  cfg.bits_per_edge = 16;
  cfg.max_rounds = 1'000'000;
  cfg.tracer = &tracer;
  cfg.metrics = &metrics;
  Network net(g, [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<SteadyFlood>();
  }, cfg);

  net.run_rounds(8);

  const auto before = allochook::allocation_count();
  net.run_rounds(100);
  const auto after = allochook::allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "disabled-tracer hot path allocated " << (after - before)
      << " times over 100 steady-state rounds";
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_GT(metrics.counter("engine.rounds").value(), 0u);
}

TEST(EngineAlloc, EnabledTracingStaysAllocationFree) {
  // The cost contract of obs/trace.hpp: with tracing LIVE (every round
  // sampled, sends recorded, ring wrapping) and metrics live, steady-state
  // rounds still allocate nothing — staging buffers and the ring were sized
  // once at bind time, and overwrite-oldest handles the overflow.
  if (!obs::trace_compiled_in()) GTEST_SKIP() << "CONGESTLB_TRACE=0";
  Rng rng(4048);
  const auto g = graph::gnp_random_connected(rng, 128, 0.05);
  obs::Tracer tracer({.capacity = std::size_t{1} << 14});
  obs::MetricsRegistry metrics;
  NetworkConfig cfg;
  cfg.bits_per_edge = 16;
  cfg.max_rounds = 1'000'000;
  cfg.tracer = &tracer;
  cfg.metrics = &metrics;
  cfg.faults.drop_rate = 0.1;
  cfg.faults.duplicate_rate = 0.1;
  Network net(g, [](graph::NodeId, const NodeInfo&) {
    return std::make_unique<SteadyFlood>();
  }, cfg);

  net.run_rounds(8);

  const auto before = allochook::allocation_count();
  net.run_rounds(100);
  const auto after = allochook::allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "traced hot path allocated " << (after - before)
      << " times over 100 steady-state rounds";
  EXPECT_GT(tracer.recorded(), 0u);
  EXPECT_GT(tracer.dropped(), 0u) << "ring should have wrapped in this run";
  EXPECT_EQ(metrics.counter("engine.rounds").value(), 108u);
}

}  // namespace
}  // namespace congestlb::congest
