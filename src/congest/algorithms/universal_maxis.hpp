// The universal CONGEST algorithm: gather the whole graph, solve locally.
//
// The paper leans on the folklore fact that *any* graph problem is solvable
// in O(n^2) CONGEST rounds (making the quadratic lower bound of Theorem 2
// nearly tight). This program realizes that upper bound for MaxIS: every
// node gossips "node tokens" (id, degree, weight) and "edge tokens" (u, v),
// one token per edge per round; once a node has all n node tokens and all
// sum(deg)/2 edge tokens it reconstructs the graph, runs a pluggable exact
// (or approximate) solver locally, and outputs its own membership bit.
// Because every node reconstructs the same graph and the solver is
// deterministic, outputs are globally consistent.
//
// It is also the honest end-to-end algorithm for the reduction pipeline
// (sim::ReductionDriver): it decides the gap predicate exactly, so the
// simulated players always answer promise disjointness correctly — at a cut
// cost the Theorem 5 accounting makes visible.

#pragma once

#include <functional>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace congestlb::congest {

/// Deterministic local solver: graph -> independent set (node ids).
using LocalMaxIsSolver =
    std::function<std::vector<graph::NodeId>(const graph::Graph&)>;

/// Per-edge bandwidth the token encoding needs for an n-node network with
/// max node weight `max_weight` (1 type bit + 2 id fields + weight field).
std::size_t universal_required_bits(std::size_t n, graph::Weight max_weight);

/// One UniversalMaxIsProgram per node; `solver` must be deterministic and is
/// shared by all nodes. The network's bits_per_edge must be at least
/// universal_required_bits(...) — the program throws otherwise.
ProgramFactory universal_maxis_factory(LocalMaxIsSolver solver);

}  // namespace congestlb::congest
