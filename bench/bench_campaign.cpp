// Experiment CA: campaign subsystem throughput — cold build vs warm
// content-cache re-run, and scheduler scaling across worker counts.
//
// Writes BENCH_campaign.json:
//   - one entry per (phase, threads): wall ms, jobs run, cache traffic;
//   - "warm_speedup": cold_ms / warm_ms for the single-worker runs. The
//     acceptance bar is >= 2x (the warm run replays manifests and hits the
//     disk cache instead of re-running branch-and-bound); the binary exits
//     nonzero below that so CI catches a cache regression.
//
// CLB_BENCH_SMOKE=1 shrinks the sweep to the built-in smoke grid for CI.

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/manifest.hpp"
#include "campaign/report.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace clb = congestlb;
namespace cmp = clb::campaign;

namespace {

struct Row {
  std::string name;
  std::size_t threads = 0;
  double wall_ms = 0;
  std::size_t jobs_run = 0;
  std::size_t jobs_resumed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  // Fault-domain counters (campaign/supervise.hpp). A bench run executes
  // with no chaos injected, so any nonzero value means real jobs failed;
  // check_bench_regression.py fails the gate on them.
  std::uint64_t retries = 0;
  std::size_t jobs_quarantined = 0;
  std::size_t jobs_blocked = 0;
};

Row run_once(const cmp::CampaignSpec& spec, const std::string& name,
             std::size_t threads, const std::string& cache_dir) {
  cmp::RunOptions opts;
  opts.threads = threads;
  opts.cache_dir = cache_dir;
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = cmp::run_campaign(spec, opts);
  const auto t1 = std::chrono::steady_clock::now();
  if (!result.all_hold) {
    std::cerr << "campaign '" << name << "' has violated checks\n";
    std::exit(1);
  }
  Row r;
  r.name = name;
  r.threads = threads;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.jobs_run = result.jobs_run;
  r.jobs_resumed = result.jobs_resumed;
  r.cache_hits = result.cache.hits();
  r.cache_misses = result.cache.misses;
  r.retries = result.retries;
  r.jobs_quarantined = result.jobs_quarantined;
  r.jobs_blocked = result.jobs_blocked;
  return r;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("CLB_BENCH_SMOKE") != nullptr;
  std::cout << "=== bench_campaign: scheduler + content cache throughput ("
            << (smoke ? "smoke" : "paper") << " sweep) ===\n";

  const cmp::CampaignSpec spec = smoke ? cmp::builtin_smoke_campaign()
                                       : cmp::builtin_paper_campaign();

  namespace fs = std::filesystem;
  const fs::path cache_dir =
      fs::temp_directory_path() / "clb-bench-campaign-cache";
  std::error_code ec;
  fs::remove_all(cache_dir, ec);

  std::vector<Row> rows;
  // Cold: empty disk cache, every gadget built and every OPT solved.
  rows.push_back(run_once(spec, "campaign/cold", 1, cache_dir.string()));
  // Warm: same spec, same cache — builds rehydrate, solves are disk hits.
  rows.push_back(run_once(spec, "campaign/warm", 1, cache_dir.string()));
  // Scaling: warm cache out of the picture (memory-only) so the scheduler,
  // not the cache, is what the thread counts compare.
  for (const std::size_t threads : {1, 2, 4}) {
    rows.push_back(run_once(spec, "campaign/nocache", threads, ""));
  }

  const double cold_ms = rows[0].wall_ms;
  const double warm_ms = rows[1].wall_ms;
  const double speedup = warm_ms > 0 ? cold_ms / warm_ms : 0;

  clb::print_heading(std::cout, "campaign wall time by phase");
  clb::Table t({"phase", "threads", "wall ms", "jobs run", "cache hits",
                "cache misses"});
  for (const Row& r : rows) {
    t.row(r.name, r.threads, clb::fmt_double(r.wall_ms, 2), r.jobs_run,
          r.cache_hits, r.cache_misses);
  }
  t.print(std::cout);
  std::cout << "warm speedup (cold/warm, 1 worker): "
            << clb::fmt_double(speedup, 2) << "x\n";

  {
    std::ofstream out("BENCH_campaign.json");
    clb::JsonWriter jw(out);
    jw.begin_object();
    jw.kv("schema", "clb-bench-v1");
    jw.kv("benchmark", "campaign");
    jw.kv("sweep", smoke ? "smoke" : "paper");
    jw.key("entries");
    jw.begin_array();
    for (const Row& r : rows) {
      jw.begin_object();
      jw.kv("name", r.name);
      jw.kv("threads", static_cast<std::uint64_t>(r.threads));
      jw.kv("wall_ms", r.wall_ms);
      jw.kv("jobs_run", static_cast<std::uint64_t>(r.jobs_run));
      jw.kv("jobs_resumed", static_cast<std::uint64_t>(r.jobs_resumed));
      jw.kv("cache_hits", r.cache_hits);
      jw.kv("cache_misses", r.cache_misses);
      jw.kv("retries", r.retries);
      jw.kv("jobs_quarantined", static_cast<std::uint64_t>(r.jobs_quarantined));
      jw.kv("jobs_blocked", static_cast<std::uint64_t>(r.jobs_blocked));
      jw.end_object();
    }
    jw.end_array();
    jw.kv("cold_ms", cold_ms);
    jw.kv("warm_ms", warm_ms);
    jw.kv("warm_speedup", speedup);
    jw.end_object();
    out << "\n";
  }
  std::cout << "  wrote BENCH_campaign.json (" << rows.size()
            << " entries)\n";

  fs::remove_all(cache_dir, ec);

  if (speedup < 2.0) {
    std::cerr << "warm re-run is only " << clb::fmt_double(speedup, 2)
              << "x faster than cold (need >= 2x)\n";
    return 1;
  }
  std::cout << "\nCampaign bench completed.\n";
  return 0;
}
