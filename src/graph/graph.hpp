// Vertex-weighted undirected simple graphs.
//
// This is the substrate every construction in the paper lives on. The gadget
// graphs of Sections 4 and 5 are weighted (node weights in {1, ell}), so
// weights are first-class. Adjacency lists are kept sorted, which makes
// has_edge O(log deg) and lets the independent-set verifier run in
// O(|I| log n) per member.
//
// Dense gadget structure (cliques, bicliques, the Figure 2 anti-matching
// grids) can additionally be stored *implicitly*: above a caller-set edge
// threshold, add_clique / add_biclique / add_anti_matching_grid record an
// ImplicitBlock descriptor instead of materializing O(n^2) adjacency, and
// degrees / adjacency tests / neighbor iteration combine the explicit CSR
// with block arithmetic. The default threshold is kNeverImplicit, so
// existing callers see byte-identical behavior unless they opt in.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/implicit.hpp"

namespace congestlb::graph {

using Weight = std::int64_t;

/// An undirected simple graph with integer node weights and optional node
/// labels. Nodes are identified by dense indices [0, num_nodes()).
class Graph {
 public:
  /// A graph with n isolated nodes, each of weight `default_weight`.
  explicit Graph(std::size_t n = 0, Weight default_weight = 1);

  std::size_t num_nodes() const { return adj_.size(); }

  /// Total edges, explicit + implicit-block. Fits std::size_t on 64-bit
  /// targets even for the 10^10-edge scaled families.
  std::size_t num_edges() const {
    return num_edges_ + static_cast<std::size_t>(implicit_edges_);
  }

  std::size_t num_explicit_edges() const { return num_edges_; }
  std::uint64_t num_implicit_edges() const { return implicit_edges_; }

  /// Append a new isolated node; returns its id.
  NodeId add_node(Weight w = 1, std::string label = {});

  /// Capacity hint: about to add ~`expected_edges` edges spread over the
  /// graph. Reserves adjacency storage so bulk construction does not
  /// reallocate per edge.
  void reserve_edges(std::size_t expected_edges);

  /// Add edge {u,v}. Self-loops are rejected. Returns false if the edge was
  /// already present (the graph stays simple).
  bool add_edge(NodeId u, NodeId v);

  /// Batch edge insertion: appends every pair unsorted, then sorts and
  /// dedupes each touched adjacency list once — O((deg + batch) log) total
  /// instead of an O(deg) sorted insert per edge. Self-loops throw;
  /// duplicate and already-present edges are silently skipped (as with
  /// add_edge). Returns the number of edges actually added.
  std::size_t add_edges(std::span<const std::pair<NodeId, NodeId>> edges);

  bool has_edge(NodeId u, NodeId v) const;

  /// Add all C(|nodes|,2) edges among `nodes` (ids must be distinct).
  /// Bulk path: adjacency is appended unsorted and sorted once per node.
  /// When `nodes` is a contiguous ascending id range and the clique's edge
  /// count reaches the implicit threshold, an ImplicitBlock is recorded
  /// instead (precondition: none of those edges already exist).
  void add_clique(std::span<const NodeId> nodes);

  /// Add all |a|*|b| edges between disjoint sets a and b. Bulk path like
  /// add_clique; records an ImplicitBlock above the threshold when both
  /// sides are contiguous ascending ranges.
  void add_biclique(std::span<const NodeId> a, std::span<const NodeId> b);

  /// Add the Figure 2 anti-matching union over a rows x row_len grid: node
  /// (i, r) is base + i*stride + r, edge (i,r1)~(j,r2) iff i != j and
  /// r1 != r2. Records an ImplicitBlock above the threshold, otherwise
  /// materializes.
  void add_anti_matching_grid(NodeId base, std::size_t stride,
                              std::size_t rows, std::size_t row_len);

  /// Minimum block edge count at which the builders above record an
  /// ImplicitBlock instead of materializing. Defaults to kNeverImplicit.
  static constexpr std::size_t kNeverImplicit =
      std::numeric_limits<std::size_t>::max();
  void set_implicit_block_threshold(std::size_t min_edges) {
    implicit_threshold_ = min_edges;
  }
  std::size_t implicit_block_threshold() const { return implicit_threshold_; }

  /// Record a block descriptor directly. Ranges must be in bounds; the
  /// block's edges must be disjoint from all explicit edges and from every
  /// other block (the arithmetic adds degrees linearly and cannot dedupe).
  void add_implicit_block(const ImplicitBlock& b);

  const std::vector<ImplicitBlock>& implicit_blocks() const { return blocks_; }
  bool has_implicit_blocks() const { return !blocks_.empty(); }
  bool in_implicit_block(NodeId v) const;

  /// Explicit neighbors of v, sorted ascending. Throws when v is covered by
  /// an implicit block: iterating only the explicit list would silently
  /// miss block neighbors — such callers must use for_each_neighbor (or
  /// explicit_neighbors when they really mean the explicit part).
  const std::vector<NodeId>& neighbors(NodeId v) const;

  /// The explicit adjacency list alone, block members included. Callers own
  /// the responsibility of also consulting implicit_blocks().
  const std::vector<NodeId>& explicit_neighbors(NodeId v) const;

  std::size_t explicit_degree(NodeId v) const;
  std::size_t implicit_degree(NodeId v) const;
  std::size_t degree(NodeId v) const {
    return explicit_degree(v) + implicit_degree(v);
  }
  std::size_t max_degree() const;

  /// Visit every neighbor of v (explicit and block-implied) in ascending id
  /// order. This is the one neighbor cursor all block-aware consumers
  /// share; on a block-free graph it degenerates to the plain sorted list.
  template <class Fn>
  void for_each_neighbor(NodeId v, Fn&& fn) const {
    const auto& ex = neighbors_unchecked(v);
    if (blocks_.empty()) {
      for (NodeId u : ex) fn(u);
      return;
    }
    std::size_t i = 0;
    NodeId cur = kNoNode;  // kNoNode = "before the first neighbor"
    while (true) {
      NodeId next = i < ex.size() ? ex[i] : kNoNode;
      for (const auto& b : blocks_) {
        const NodeId c = b.neighbor_after(v, cur);
        if (c < next) next = c;
      }
      if (next == kNoNode) break;
      fn(next);
      cur = next;
      if (i < ex.size() && ex[i] == next) ++i;
    }
  }

  /// A copy with every implicit block expanded into explicit adjacency —
  /// the reference representation for the small-n bit-identity contracts.
  Graph materialized() const;

  Weight weight(NodeId v) const;
  void set_weight(NodeId v, Weight w);

  /// Sum of all node weights.
  Weight total_weight() const;

  /// Sum of weights of the given nodes (ids must be valid; duplicates count
  /// twice — callers pass sets).
  Weight weight_of(std::span<const NodeId> nodes) const;

  /// True iff no two nodes in `nodes` are adjacent. Duplicate ids are
  /// rejected (a multiset is not a set of vertices).
  bool is_independent_set(std::span<const NodeId> nodes) const;

  /// Induced subgraph on `nodes` (ids must be distinct). Node i of the result
  /// corresponds to nodes[i]; weights and labels are carried over. Requires
  /// a block-free graph (materialize first).
  Graph induced_subgraph(std::span<const NodeId> nodes) const;

  /// The complement graph (same nodes/weights, complemented edge set).
  /// Requires a block-free graph (materialize first).
  Graph complement() const;

  const std::string& label(NodeId v) const;
  void set_label(NodeId v, std::string label);

  /// Structural equality at the representation level: same node count,
  /// weights, explicit edge sets, and block tables. A materialized clique
  /// and its implicit twin compare unequal — use materialized() on both
  /// sides for edge-set equality.
  bool operator==(const Graph& other) const;

 private:
  void check_node(NodeId v) const;

  const std::vector<NodeId>& neighbors_unchecked(NodeId v) const {
    check_node(v);
    return adj_[v];
  }

  /// Sort + dedupe v's adjacency after a bulk append; throws on a self
  /// entry. Returns the deduped size.
  std::size_t finalize_bulk_node(NodeId v);

  std::vector<std::vector<NodeId>> adj_;
  std::vector<Weight> weight_;
  std::vector<std::string> label_;
  std::size_t num_edges_ = 0;

  std::vector<ImplicitBlock> blocks_;
  std::uint64_t implicit_edges_ = 0;
  std::size_t implicit_threshold_ = kNeverImplicit;
};

/// All *explicit* edges of g as (u,v) pairs with u < v, lexicographically
/// sorted. Throws on a graph with implicit blocks — callers there must
/// iterate blocks explicitly (or materialize) so 10^10-edge families are
/// never expanded by accident.
std::vector<std::pair<NodeId, NodeId>> edge_list(const Graph& g);

/// Compressed-sparse-row view of a graph's *explicit* adjacency:
/// targets[offsets[v] .. offsets[v+1]) are v's explicit neighbors, sorted
/// ascending. This is the flat snapshot the CONGEST engine's Topology is
/// built from; implicit blocks ride alongside it, never inside it.
struct Csr {
  std::vector<std::size_t> offsets;  ///< size num_nodes()+1
  std::vector<NodeId> targets;       ///< size 2*num_explicit_edges()
};

Csr export_csr(const Graph& g);

}  // namespace congestlb::graph
