// Vertex-weighted undirected simple graphs.
//
// This is the substrate every construction in the paper lives on. The gadget
// graphs of Sections 4 and 5 are weighted (node weights in {1, ell}), so
// weights are first-class. Adjacency lists are kept sorted, which makes
// has_edge O(log deg) and lets the independent-set verifier run in
// O(|I| log n) per member.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace congestlb::graph {

using NodeId = std::size_t;
using Weight = std::int64_t;

/// An undirected simple graph with integer node weights and optional node
/// labels. Nodes are identified by dense indices [0, num_nodes()).
class Graph {
 public:
  /// A graph with n isolated nodes, each of weight `default_weight`.
  explicit Graph(std::size_t n = 0, Weight default_weight = 1);

  std::size_t num_nodes() const { return adj_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  /// Append a new isolated node; returns its id.
  NodeId add_node(Weight w = 1, std::string label = {});

  /// Capacity hint: about to add ~`expected_edges` edges spread over the
  /// graph. Reserves adjacency storage so bulk construction does not
  /// reallocate per edge.
  void reserve_edges(std::size_t expected_edges);

  /// Add edge {u,v}. Self-loops are rejected. Returns false if the edge was
  /// already present (the graph stays simple).
  bool add_edge(NodeId u, NodeId v);

  /// Batch edge insertion: appends every pair unsorted, then sorts and
  /// dedupes each touched adjacency list once — O((deg + batch) log) total
  /// instead of an O(deg) sorted insert per edge. Self-loops throw;
  /// duplicate and already-present edges are silently skipped (as with
  /// add_edge). Returns the number of edges actually added.
  std::size_t add_edges(std::span<const std::pair<NodeId, NodeId>> edges);

  bool has_edge(NodeId u, NodeId v) const;

  /// Add all C(|nodes|,2) edges among `nodes` (ids must be distinct).
  /// Bulk path: adjacency is appended unsorted and sorted once per node.
  void add_clique(std::span<const NodeId> nodes);

  /// Add all |a|*|b| edges between disjoint sets a and b. Bulk path like
  /// add_clique.
  void add_biclique(std::span<const NodeId> a, std::span<const NodeId> b);

  /// Neighbors of v, sorted ascending.
  const std::vector<NodeId>& neighbors(NodeId v) const;

  std::size_t degree(NodeId v) const { return neighbors(v).size(); }
  std::size_t max_degree() const;

  Weight weight(NodeId v) const;
  void set_weight(NodeId v, Weight w);

  /// Sum of all node weights.
  Weight total_weight() const;

  /// Sum of weights of the given nodes (ids must be valid; duplicates count
  /// twice — callers pass sets).
  Weight weight_of(std::span<const NodeId> nodes) const;

  /// True iff no two nodes in `nodes` are adjacent. Duplicate ids are
  /// rejected (a multiset is not a set of vertices).
  bool is_independent_set(std::span<const NodeId> nodes) const;

  /// Induced subgraph on `nodes` (ids must be distinct). Node i of the result
  /// corresponds to nodes[i]; weights and labels are carried over.
  Graph induced_subgraph(std::span<const NodeId> nodes) const;

  /// The complement graph (same nodes/weights, complemented edge set).
  Graph complement() const;

  const std::string& label(NodeId v) const;
  void set_label(NodeId v, std::string label);

  /// Structural equality: same node count, weights, and edge sets.
  /// Labels are ignored (they are presentation-only).
  bool operator==(const Graph& other) const;

 private:
  void check_node(NodeId v) const;

  /// Sort + dedupe v's adjacency after a bulk append; throws on a self
  /// entry. Returns the deduped size.
  std::size_t finalize_bulk_node(NodeId v);

  std::vector<std::vector<NodeId>> adj_;
  std::vector<Weight> weight_;
  std::vector<std::string> label_;
  std::size_t num_edges_ = 0;
};

/// All edges of g as (u,v) pairs with u < v, lexicographically sorted.
std::vector<std::pair<NodeId, NodeId>> edge_list(const Graph& g);

/// Compressed-sparse-row view of a graph's adjacency: targets[offsets[v] ..
/// offsets[v+1]) are v's neighbors, sorted ascending. This is the flat
/// snapshot the CONGEST engine's Topology is built from.
struct Csr {
  std::vector<std::size_t> offsets;  ///< size num_nodes()+1
  std::vector<NodeId> targets;       ///< size 2*num_edges()
};

Csr export_csr(const Graph& g);

}  // namespace congestlb::graph
