#!/usr/bin/env python3
"""Kill -9 smoke for the campaign service (`clb serve`, docs/SERVICE.md).

End-to-end over real processes and real HTTP, the durability story the
service promises: an accepted sweep survives losing the server.

  1. Reference: `clb campaign run smoke --canonical` writes the canonical
     manifest an undisturbed one-shot run produces.
  2. Start the daemon with CLB_CHAOS_KILL_AFTER_JOBS=N (the same
     supervise.hpp contract the chaos harness uses): the process
     _Exit(137)s mid-sweep without destructors, tearing in-flight cache
     writes exactly like a real SIGKILL. A watchdog sends an actual
     SIGKILL if the chaos exit somehow does not land.
  3. Submit the smoke campaign over HTTP (POST /v1/sweeps) and require a
     202 accepted — the accept is durable before the response is sent.
  4. Wait for the server to die mid-run, then restart it on the same
     state dir with a clean environment. Startup fsck repairs the torn
     cache debris and the ledger re-enqueues the sweep.
  5. Poll /v1/sweeps/<key> until complete, fetch /v1/sweeps/<key>/manifest,
     and require it byte-equal to the reference manifest.
  6. SIGTERM the server and require a graceful exit 0 (drain contract).

Server stdout/stderr land in --workdir (serve1.log / serve2.log) so CI can
upload them on failure.

Usage:
    scripts/serve_smoke.py --clb build/tools/clb [--workdir DIR]
        [--kill-after-jobs 7] [--timeout 120]
"""

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

KILLED_EXIT = 137  # the _Exit status the chaos contract promises


def clean_env(extra=None):
    """The caller's environment without any CLB_CHAOS_* leakage."""
    env = os.environ.copy()
    for k in list(env):
        if k.startswith("CLB_CHAOS_"):
            del env[k]
    if extra:
        env.update(extra)
    return env


def wait_port(state_dir, proc, timeout):
    """The daemon's ephemeral port, read from <state-dir>/port."""
    port_file = os.path.join(state_dir, "port")
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"server exited {proc.returncode} before writing {port_file}")
        try:
            with open(port_file) as f:
                text = f.read().strip()
            if text:
                port = int(text)
                # The file exists before the accept loop starts; probe.
                try:
                    http(port, "GET", "/v1/ping")
                    return port
                except (urllib.error.URLError, ConnectionError, OSError):
                    pass
        except FileNotFoundError:
            pass
        time.sleep(0.05)
    raise RuntimeError(f"server never became reachable via {port_file}")


def http(port, method, path, body=None):
    """One request against the daemon; returns (status, parsed body)."""
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=None if body is None else json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method=method)
    try:
        with urllib.request.urlopen(req, timeout=10) as res:
            return res.status, json.loads(res.read().decode())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read().decode() or "{}")


def fetch_manifest(port, key):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}/v1/sweeps/{key}/manifest")
    with urllib.request.urlopen(req, timeout=10) as res:
        return res.read()


def start_server(clb, state_dir, log_path, env):
    log = open(log_path, "w")
    proc = subprocess.Popen(
        [clb, "serve", "--state-dir", state_dir, "--port", "0",
         "--pool", "2", "--orchestrators", "1"],
        stdout=log, stderr=subprocess.STDOUT, env=env)
    proc.log = log
    return proc


def fail(msg):
    print(f"serve-smoke: FAIL: {msg}", file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clb", required=True, help="path to the clb binary")
    parser.add_argument("--workdir", default="serve-smoke-work")
    parser.add_argument("--kill-after-jobs", type=int, default=7,
                        help="chaos kill point inside the 30-job smoke sweep")
    parser.add_argument("--timeout", type=float, default=120.0)
    args = parser.parse_args()

    clb = os.path.abspath(args.clb)
    work = os.path.abspath(args.workdir)
    shutil.rmtree(work, ignore_errors=True)
    os.makedirs(work)
    state_dir = os.path.join(work, "state")
    os.makedirs(state_dir)

    # 1. Undisturbed reference manifest (no cache: pure cold compute).
    ref_path = os.path.join(work, "reference.json")
    rc = subprocess.run(
        [clb, "campaign", "run", "smoke", "--canonical", "--cache-dir", "",
         "--manifest", ref_path], env=clean_env(),
        stdout=subprocess.DEVNULL).returncode
    if rc != 0:
        return fail(f"reference `clb campaign run smoke` exited {rc}")
    with open(ref_path, "rb") as f:
        reference = f.read()

    # 2. Doomed server: chaos kill after N supervised jobs.
    doomed = start_server(
        clb, state_dir, os.path.join(work, "serve1.log"),
        clean_env({"CLB_CHAOS_KILL_AFTER_JOBS": str(args.kill_after_jobs)}))
    try:
        port = wait_port(state_dir, doomed, args.timeout)

        # 3. Submit over HTTP; the accept must be durable before the reply.
        # With an early kill point the daemon can die while this response
        # is in flight — the sweep is already persisted (jobs only run
        # after the accept landed on disk), so a torn connection here is
        # tolerated and the key is recovered from the restarted ledger.
        key = None
        try:
            status, body = http(port, "POST", "/v1/sweeps",
                                {"spec": "smoke", "client": "ci"})
            if status != 202 or body.get("outcome") != "accepted":
                return fail(
                    f"submit: expected 202 accepted, got {status} {body}")
            key = body["sweep"]
        except (urllib.error.URLError, ConnectionError, OSError) as err:
            print(f"serve-smoke: note: submit response lost to the kill "
                  f"({err}); recovering the sweep key after restart")

        # 4. The chaos kill lands mid-sweep; a watchdog real-SIGKILLs if not.
        deadline = time.monotonic() + args.timeout
        while doomed.poll() is None and time.monotonic() < deadline:
            time.sleep(0.05)
        if doomed.poll() is None:
            doomed.kill()
            doomed.wait()
            print("serve-smoke: note: chaos exit never fired; "
                  "sent a real SIGKILL instead")
        elif doomed.returncode != KILLED_EXIT:
            return fail(
                f"doomed server exited {doomed.returncode}, "
                f"expected the chaos kill ({KILLED_EXIT})")
    finally:
        if doomed.poll() is None:
            doomed.kill()
            doomed.wait()
        doomed.log.close()

    # 5. Restart clean on the same state dir: fsck + ledger resume.
    server = start_server(clb, state_dir, os.path.join(work, "serve2.log"),
                          clean_env())
    try:
        port = wait_port(state_dir, server, args.timeout)
        if key is None:
            # The submit reply was torn; the accepted sweep must still be
            # in the restarted ledger — that IS the durability contract.
            status, body = http(port, "GET", "/v1/sweeps")
            sweeps = body.get("sweeps", [])
            if status != 200 or len(sweeps) != 1:
                return fail(
                    f"accepted sweep lost across the kill: {status} {body}")
            key = sweeps[0]["sweep"]
            print(f"serve-smoke: recovered sweep {key} from the ledger")
        state = None
        deadline = time.monotonic() + args.timeout
        while time.monotonic() < deadline:
            status, body = http(port, "GET", f"/v1/sweeps/{key}")
            if status != 200:
                return fail(f"status poll: {status} {body}")
            state = body.get("state")
            if state in ("complete", "failed"):
                break
            time.sleep(0.2)
        if state != "complete":
            return fail(f"resumed sweep never completed (state: {state})")
        if not body.get("all_hold"):
            return fail(f"resumed sweep completed degraded: {body}")

        resumed = fetch_manifest(port, key)
        if resumed != reference:
            return fail(
                "resumed manifest differs from the uninterrupted reference "
                f"({len(resumed)} vs {len(reference)} bytes)")
        print(f"serve-smoke: resumed manifest byte-identical to reference "
              f"({len(resumed)} bytes, sweep {key})")

        # 6. Graceful drain: SIGTERM -> exit 0.
        server.send_signal(signal.SIGTERM)
        try:
            rc = server.wait(timeout=args.timeout)
        except subprocess.TimeoutExpired:
            server.kill()
            return fail("server did not drain after SIGTERM")
        if rc != 0:
            return fail(f"drained server exited {rc}, expected 0")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()
        server.log.close()

    print("serve-smoke: PASS (kill -9 mid-run, restart, byte-equal resume, "
          "graceful drain)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
