// The full Theorem-5 pipeline, narrated.
//
//   $ ./reduction_demo [t] [seed]
//
// t players receive a promise pairwise disjointness instance. Instead of
// running a communication protocol, they build G_xbar, split it V^1..V^t,
// and jointly simulate a CONGEST algorithm (the universal exact-MaxIS
// program) — writing every cut-crossing message on a shared blackboard.
// The final independent-set weight answers the disjointness question via
// the gap predicate, and the blackboard tallies the protocol's cost.

#include <cstdlib>
#include <iostream>

#include "comm/lower_bound.hpp"
#include "congest/algorithms/universal_maxis.hpp"
#include "maxis/branch_and_bound.hpp"
#include "sim/reduction.hpp"
#include "support/rng.hpp"

namespace clb = congestlb;

int main(int argc, char** argv) {
  const std::size_t t = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  std::cout << "Theorem 5 demo: deciding promise pairwise disjointness by "
               "simulating a CONGEST MaxIS algorithm\n\n";

  const auto params = clb::lb::GadgetParams::for_linear_separation(t, 1);
  const clb::lb::LinearConstruction c(params, t);
  std::cout << "[setup] " << t << " players, k = " << params.k
            << "-bit strings; G_xbar has " << c.num_nodes()
            << " nodes, cut = " << c.cut_size() << " edges\n";

  clb::Rng rng(seed);
  for (bool intersecting : {true, false}) {
    const auto inst =
        intersecting
            ? clb::comm::make_uniquely_intersecting(params.k, t, rng)
            : clb::comm::make_pairwise_disjoint(params.k, t, rng);
    std::cout << "\n[input] strings are "
              << (intersecting ? "uniquely intersecting" : "pairwise disjoint")
              << " (hidden from the players' joint view)\n";

    clb::comm::Blackboard board(t);
    clb::congest::NetworkConfig cfg;
    cfg.bits_per_edge = clb::congest::universal_required_bits(
        c.num_nodes(), static_cast<clb::graph::Weight>(params.ell));
    cfg.max_rounds = 500'000;

    const auto rep = clb::sim::run_linear_reduction(
        c, inst,
        clb::congest::universal_maxis_factory([](const clb::graph::Graph& g) {
          return clb::maxis::solve_exact(g).nodes;
        }),
        board, cfg);

    std::cout << "[simulate] CONGEST algorithm ran " << rep.rounds
              << " rounds at B = " << rep.bits_per_edge << " bits/edge\n";
    std::cout << "[blackboard] " << rep.blackboard_entries
              << " cut messages posted, " << rep.blackboard_bits
              << " bits total (Theorem-5 budget: " << rep.theorem5_budget
              << ", within budget: " << (rep.accounting_ok ? "yes" : "NO")
              << ")\n";
    std::cout << "[decide] computed IS weight " << rep.computed_weight
              << " vs YES threshold " << rep.yes_weight << " -> answer: "
              << (rep.decided_disjoint ? "pairwise disjoint"
                                       : "uniquely intersecting")
              << " (" << (rep.correct ? "correct" : "WRONG") << ")\n";
  }

  std::cout << "\n[moral] the blackboard transcript is a genuine protocol "
               "for promise pairwise disjointness, so its cost is at least\n"
            << "        CC(k, t) = Omega(k / t log t) = "
            << clb::comm::cks_lower_bound_bits(params.k, t)
            << " bits here. Since each round contributes at most 2|cut|*B "
               "bits, the CONGEST algorithm needed\n"
            << "        Omega(k / (t log t * |cut| * log n)) rounds — "
               "Theorem 1's engine.\n";
  return 0;
}
