// The linear-lower-bound family G_xbar of Section 4 (Theorem 1).
//
// The fixed construction G holds t copies H^1..H^t of the base gadget; for
// every pair of copies i != j and every position h, C^i_h and C^j_h are
// joined by "all edges except the natural perfect matching" (Figure 2) —
// the only inter-copy edges, and therefore the whole communication cut.
// Instantiating with a promise instance xbar sets w(v^i_m) = ell iff
// x^i_m = 1 (all other nodes weigh 1).
//
// Gap (Claims 1-3, 5): if the strings uniquely intersect, some
// {v^i_m} + Code^i_m across all copies is independent with weight
// t(2*ell+alpha); if they are pairwise disjoint, every IS weighs at most
// (t+1)*ell + alpha*t^2 (for t = 2: 3*ell + 2*alpha + 1).

#pragma once

#include <utility>
#include <vector>

#include "comm/instances.hpp"
#include "graph/graph.hpp"
#include "lowerbound/base_gadget.hpp"
#include "lowerbound/params.hpp"

namespace congestlb::lb {

class LinearConstruction {
 public:
  LinearConstruction(GadgetParams params, std::size_t t);

  /// Build with explicit construction options. A finite
  /// opts.implicit_threshold records the Figure 2 inter-copy anti-matchings
  /// as one kAntiMatchingGrid block per code position (covering all C(t,2)
  /// copy pairs arithmetically) and large cliques as clique blocks, so the
  /// fixed graph costs O(t * k * (ell+alpha) * p) explicit edges however
  /// large t grows. With the default options this is edge-for-edge the same
  /// graph as the two-argument constructor.
  LinearConstruction(GadgetParams params, std::size_t t,
                     const BuildOptions& opts);

  /// Rehydrate from a cached fixed graph (the campaign subsystem's warm
  /// path, docs/CAMPAIGN.md): `cached_fixed` must be structurally identical
  /// to what the normal constructor builds for (params, t). Node and edge
  /// counts are verified; the edge structure itself is trusted — the cache
  /// is content-addressed, so a key match means the inputs were equal.
  /// Node labels are not restored (they are presentation-only).
  LinearConstruction(GadgetParams params, std::size_t t,
                     graph::Graph cached_fixed);

  const GadgetParams& params() const { return params_; }
  std::size_t num_players() const { return t_; }
  std::size_t num_nodes() const { return t_ * params_.nodes_per_copy(); }

  /// The fixed graph G (all weights 1).
  const graph::Graph& fixed_graph() const { return g_; }

  /// G_xbar: the fixed graph with input-dependent weights. Requires a
  /// validated instance with matching (k, t).
  graph::Graph instantiate(const comm::PromiseInstance& inst) const;

  /// Like instantiate, but accepts arbitrary 0/1 strings with NO promise
  /// (t strings of length k). Exists for the paper's "Challenge" analysis:
  /// on non-promise inputs the MaxIS value depends on the pattern of
  /// *pairwise* intersections, which is exactly why a reduction to plain
  /// multi-party set-disjointness is infeasible (Section 1).
  graph::Graph instantiate_raw(
      const std::vector<std::vector<std::uint8_t>>& strings) const;

  // --- node addressing -------------------------------------------------
  /// v^i_m.
  NodeId a_node(std::size_t i, std::size_t m) const;
  /// sigma^i_(h,r).
  NodeId code_node(std::size_t i, std::size_t h, std::size_t r) const;
  /// Code^i_m.
  std::vector<NodeId> codeword_nodes(std::size_t i, std::size_t m) const;
  /// The clique C^i_h.
  std::vector<NodeId> clique_nodes(std::size_t i, std::size_t h) const;

  // --- the player partition V = V^1 + ... + V^t (Definition 4) ----------
  /// V^i as a contiguous id range [first, last).
  std::pair<NodeId, NodeId> partition_range(std::size_t i) const;
  std::vector<NodeId> partition(std::size_t i) const;
  /// Which player owns node v.
  std::size_t owner(NodeId v) const;

  // --- the communication cut --------------------------------------------
  /// All edges crossing between different players' parts, sorted. Expands
  /// implicit blocks — small-t analysis only; use cut_size() at scale.
  std::vector<std::pair<NodeId, NodeId>> cut_edges() const;
  /// |cut| in closed form: C(t,2) * (ell+alpha) * p * (p-1).
  std::size_t cut_size() const;

  // --- gap predicate ------------------------------------------------------
  /// The Property-1 witness for index m:
  /// union_i {v^i_m} + Code^i_m (independent in every G_xbar).
  std::vector<NodeId> yes_witness(std::size_t m) const;
  /// beta = t(2*ell + alpha) — Claim 3's YES-side weight.
  graph::Weight yes_weight() const;
  /// Claim 5's NO-side bound (t+1)*ell + alpha*t^2; Claim 2's tighter
  /// 3*ell + 2*alpha + 1 when t = 2.
  graph::Weight no_bound() const;
  /// True iff yes_weight() > no_bound(), i.e. the gap predicate is
  /// well-defined at these parameters (requires ell > alpha*t roughly).
  bool separated() const { return yes_weight() > no_bound(); }
  /// The approximation factor this family rules out: no_bound / yes_weight
  /// (tends to 1/2 as t grows and ell/alpha -> infinity; Lemma 2).
  double hardness_ratio() const;

 private:
  GadgetParams params_;
  std::size_t t_;
  BaseGadget base_;  ///< one copy; used for codeword/node geometry
  graph::Graph g_;   ///< the full fixed construction
};

/// t = ceil(2/eps): the player count Lemma 2 uses to rule out
/// (1/2 + eps)-approximation. Requires 0 < eps < 1/2.
std::size_t linear_players_for_epsilon(double eps);

/// Claim 3's YES-side weight t(2*ell + alpha) from the parameters alone.
/// Identical to LinearConstruction::yes_weight(), but usable without
/// building the graph — the campaign's claim checks compare cached solver
/// results against these bounds without paying for a construction.
graph::Weight linear_yes_weight_formula(const GadgetParams& p, std::size_t t);

/// Claim 5's NO-side bound (t+1)*ell + alpha*t^2 (Claim 2's tighter
/// 3*ell + 2*alpha + 1 at t = 2), from the parameters alone.
graph::Weight linear_no_bound_formula(const GadgetParams& p, std::size_t t);

/// no_bound/yes_weight from the formulas alone — usable at asymptotic
/// parameter values where actually building the graph is infeasible.
double linear_hardness_ratio_formula(std::size_t ell, std::size_t alpha,
                                     std::size_t t);

}  // namespace congestlb::lb
