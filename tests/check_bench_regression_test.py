#!/usr/bin/env python3
"""Self-test for scripts/check_bench_regression.py.

Exercises the checker end-to-end over synthetic JSON files in a temp
directory: a healthy pair passes, a genuine regression fails (exit 1),
and — the bug this guards against — a baseline or measured file written
under an unknown schema is a hard error (exit 2) instead of a silent
pass on zero comparisons. Registered in tests/CMakeLists.txt as a plain
CTest command; runs standalone too:

    python3 tests/check_bench_regression_test.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

_SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       os.pardir, "scripts", "check_bench_regression.py")


def _clb_doc(entries):
    return {"schema": "clb-bench-v1", "entries": entries}


def _entry(name, ns, threads=1, variant="", **extra):
    e = {"name": name, "variant": variant, "threads": threads,
         "ns_per_round": ns}
    e.update(extra)
    return e


def _serve_doc(entries):
    return {"schema": "clb-serve-v1", "entries": entries}


def _scale_doc(entries):
    return {"schema": "clb-scale-v1", "entries": entries}


def _scale_entry(name, ns, n=9984, rss=100 * 1000 * 1000, variant="",
                 **extra):
    e = {"name": name, "variant": variant, "n": n, "threads": 1,
         "ns_per_round": ns, "peak_rss_bytes": rss}
    e.update(extra)
    return e


def _serve_entry(name, ns, clients=1, variant="warm_hit", **extra):
    e = {"name": name, "variant": variant, "clients": clients,
         "ns_per_op": ns}
    e.update(extra)
    return e


class CheckBenchRegressionTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)

    def _write(self, name, doc):
        path = os.path.join(self._tmp.name, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def _run(self, measured, baseline, *args):
        return subprocess.run(
            [sys.executable, _SCRIPT, measured, baseline, *args],
            capture_output=True, text=True)

    def test_healthy_pair_passes(self):
        base = self._write("base.json", _clb_doc([_entry("flood/ring", 100)]))
        meas = self._write("meas.json", _clb_doc([_entry("flood/ring", 150)]))
        proc = self._run(meas, base)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("passed", proc.stdout)

    def test_regression_fails(self):
        base = self._write("base.json", _clb_doc([_entry("flood/ring", 100)]))
        meas = self._write("meas.json", _clb_doc([_entry("flood/ring", 250)]))
        proc = self._run(meas, base)
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("REGRESSION", proc.stdout)

    def test_factor_flag_is_honored(self):
        base = self._write("base.json", _clb_doc([_entry("a", 100)]))
        meas = self._write("meas.json", _clb_doc([_entry("a", 250)]))
        self.assertEqual(self._run(meas, base, "--factor", "3.0").returncode, 0)

    def test_unknown_schema_baseline_is_an_error(self):
        # The original bug: a baseline with neither recognized array loaded
        # as zero entries, made the comparison vacuous, and the check
        # passed. It must now exit 2 with a schema diagnostic.
        base = self._write("base.json", {"rows": [_entry("flood/ring", 100)]})
        meas = self._write("meas.json", _clb_doc([_entry("flood/ring", 100)]))
        proc = self._run(meas, base)
        self.assertEqual(proc.returncode, 2, proc.stdout)
        self.assertIn("unrecognized bench schema", proc.stderr)
        self.assertIn("rows", proc.stderr)

    def test_unknown_schema_measured_is_an_error(self):
        base = self._write("base.json", _clb_doc([_entry("flood/ring", 100)]))
        meas = self._write("meas.json", {"results": []})
        self.assertEqual(self._run(meas, base).returncode, 2)

    def test_unknown_schema_marker_is_an_error(self):
        base = self._write("base.json", {
            "schema": "clb-bench-v99", "entries": [_entry("a", 100)]})
        meas = self._write("meas.json", _clb_doc([_entry("a", 100)]))
        proc = self._run(meas, base)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("clb-bench-v99", proc.stderr)

    def test_malformed_entries_are_an_error(self):
        base = self._write("base.json", _clb_doc(["not-an-object"]))
        meas = self._write("meas.json", _clb_doc([]))
        self.assertEqual(self._run(meas, base).returncode, 2)
        top = self._write("top.json", [1, 2, 3])
        self.assertEqual(self._run(meas, top).returncode, 2)

    def test_google_benchmark_schema_still_loads(self):
        gb = {"benchmarks": [
            {"name": "BM_solve", "run_type": "iteration",
             "real_time": 2.0, "time_unit": "us"},
            {"name": "BM_solve_mean", "run_type": "aggregate",
             "real_time": 9.9, "time_unit": "us"},
        ]}
        base = self._write("base.json", gb)
        meas = self._write("meas.json", gb)
        proc = self._run(meas, base)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("1 entries compared", proc.stdout)

    def test_vacuous_comparison_still_fails(self):
        base = self._write("base.json", _clb_doc([_entry("old/name", 100)]))
        meas = self._write("meas.json", _clb_doc([_entry("new/name", 100)]))
        proc = self._run(meas, base)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("no baseline entry matched", proc.stderr)

    def test_serve_schema_healthy_pair_passes(self):
        base = self._write("base.json", _serve_doc([
            _serve_entry("serve/submit", 50000, clients=1),
            _serve_entry("serve/submit", 80000, clients=8),
            _serve_entry("serve/submit", 200000, variant="admission"),
        ]))
        meas = self._write("meas.json", _serve_doc([
            _serve_entry("serve/submit", 60000, clients=1),
            _serve_entry("serve/submit", 90000, clients=8),
            _serve_entry("serve/submit", 210000, variant="admission"),
        ]))
        proc = self._run(meas, base)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("3 entries compared", proc.stdout)

    def test_serve_schema_regression_fails(self):
        base = self._write("base.json", _serve_doc(
            [_serve_entry("serve/submit", 50000, clients=4)]))
        meas = self._write("meas.json", _serve_doc(
            [_serve_entry("serve/submit", 500000, clients=4)]))
        proc = self._run(meas, base)
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("REGRESSION", proc.stdout)

    def test_serve_schema_keys_by_clients_not_threads(self):
        # A 1-client measurement must not satisfy an 8-client baseline:
        # with no matching key the comparison is vacuous, which fails.
        base = self._write("base.json", _serve_doc(
            [_serve_entry("serve/submit", 50000, clients=8)]))
        meas = self._write("meas.json", _serve_doc(
            [_serve_entry("serve/submit", 100, clients=1)]))
        proc = self._run(meas, base)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("no baseline entry matched", proc.stderr)

    def test_serve_variants_compare_independently(self):
        # warm_hit regressing is caught even when admission improved.
        base = self._write("base.json", _serve_doc([
            _serve_entry("serve/submit", 50000, variant="warm_hit"),
            _serve_entry("serve/submit", 900000, variant="admission"),
        ]))
        meas = self._write("meas.json", _serve_doc([
            _serve_entry("serve/submit", 150000, variant="warm_hit"),
            _serve_entry("serve/submit", 100000, variant="admission"),
        ]))
        proc = self._run(meas, base)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("warm_hit", proc.stdout)

    def test_scale_schema_healthy_pair_passes(self):
        base = self._write("base.json", _scale_doc([
            _scale_entry("scale/gxbar-1e4", 5e6, n=9984),
            _scale_entry("scale/gxbar-1e5", 8e7, n=99984),
        ]))
        meas = self._write("meas.json", _scale_doc([
            _scale_entry("scale/gxbar-1e4", 4e6, n=9984),
            _scale_entry("scale/gxbar-1e5", 9e7, n=99984),
        ]))
        proc = self._run(meas, base)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("2 entries compared", proc.stdout)
        self.assertIn("n=9984", proc.stdout)

    def test_scale_schema_keys_by_n_not_threads(self):
        # A small-n measurement must never satisfy a million-node
        # baseline: with no matching key the comparison is vacuous.
        base = self._write("base.json", _scale_doc(
            [_scale_entry("scale/gxbar-1e6", 9e8, n=999984)]))
        meas = self._write("meas.json", _scale_doc(
            [_scale_entry("scale/gxbar-1e6", 100, n=9984)]))
        proc = self._run(meas, base)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("no baseline entry matched", proc.stderr)

    def test_scale_rss_regression_fails(self):
        # The memory gate: same timing, 10x the resident set — a leaked
        # materialization of the implicit blocks must fail even when the
        # round time looks fine.
        base = self._write("base.json", _scale_doc(
            [_scale_entry("scale/gxbar-1e5", 8e7, n=99984, rss=4 * 10**8)]))
        meas = self._write("meas.json", _scale_doc(
            [_scale_entry("scale/gxbar-1e5", 8e7, n=99984, rss=4 * 10**9)]))
        proc = self._run(meas, base)
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("peak RSS", proc.stderr)

    def test_scale_timing_regression_fails(self):
        base = self._write("base.json", _scale_doc(
            [_scale_entry("scale/gxbar-1e4", 5e6)]))
        meas = self._write("meas.json", _scale_doc(
            [_scale_entry("scale/gxbar-1e4", 5e7)]))
        proc = self._run(meas, base)
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("REGRESSION", proc.stdout)

    def test_missing_large_n_baseline_rows_are_notes_only(self):
        # The scale-smoke CI job stops at n=1e5; the 1e6 baseline rows
        # exist for the nightly job and must not fail the smoke run.
        base = self._write("base.json", _scale_doc([
            _scale_entry("scale/gxbar-1e4", 5e6, n=9984),
            _scale_entry("scale/gxbar-1e6", 9e8, n=999984),
        ]))
        meas = self._write("meas.json", _scale_doc(
            [_scale_entry("scale/gxbar-1e4", 5e6, n=9984)]))
        proc = self._run(meas, base)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("missing from measured run", proc.stdout)

    def test_flood_alloc_gate_fails(self):
        base = self._write("base.json", _clb_doc([_entry("flood/ring", 100)]))
        meas = self._write("meas.json", _clb_doc(
            [_entry("flood/ring", 100, allocs_per_round=3)]))
        proc = self._run(meas, base)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("allocated", proc.stderr)


if __name__ == "__main__":
    unittest.main()
