// Randomized distributed (deg+1)-coloring.
//
// Each round every undecided node draws a tentative color uniformly from
// its palette {0, ..., deg(v)} minus the final colors of decided
// neighbors, announces it, and finalizes when no undecided neighbor drew
// the same color. The palette can never be exhausted (deg+1 colors, at
// most deg blocked), each trial succeeds with probability >= 1/2, so the
// algorithm finishes in O(log n) rounds w.h.p. — the third classic
// symmetry-breaking primitive next to MIS and leader election, rounding
// out the CONGEST algorithm library.

#pragma once

#include "congest/network.hpp"

namespace congestlb::congest {

/// output(): final color + 1 (so 0 means "still undecided", which after a
/// completed run never happens). Colors are in [0, deg(v)] per node, hence
/// at most max_degree+1 colors network-wide.
ProgramFactory random_coloring_factory();

}  // namespace congestlb::congest
