// Immutable flat topology snapshot for the CONGEST engine.
//
// Built once per graph and shared (read-only) by every phase of the
// simulator, including all worker threads of the parallel round executor.
// The layout is CSR: neighbors of v occupy neighbors[offsets[v] ..
// offsets[v+1]), sorted ascending. A *directed slot* is an index into that
// range — slot d = offsets[u] + s addresses the edge u -> neighbors[d].
//
// The precomputed reverse_slot map is what removes the per-message binary
// search from the delivery hot path: for directed slot d = (u, s) with
// v = neighbors[d], reverse_slot[d] is the position of u in v's neighbor
// list, so the receiver-side slot of the message u -> v is
// offsets[v] + reverse_slot[d], an O(1) lookup.
//
// Hybrid topologies: alongside the explicit CSR a topology may carry a
// small table of ImplicitBlock descriptors (cliques, bicliques, the
// Figure 2 anti-matching grids) whose edges are never stored. degree()
// and neighbors_of() keep their historical *explicit* meaning — the
// engine's per-slot arenas are sized by them — while total_degree(),
// count_neighbors_leq(), neighbor_at(), and neighbor_after() rank/select
// over the merged explicit+implicit neighbor set arithmetically. The CSR
// arrays are spans so a topology can either own its storage (build()) or
// borrow it from a memory-mapped snapshot (from_snapshot()) without
// copying.

#pragma once

#include <cstdint>
#include <iterator>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/io.hpp"

namespace congestlb::congest {

using graph::NodeId;

struct Topology {
  std::size_t n = 0;  ///< nodes
  std::size_t m = 0;  ///< explicit undirected edges; 2m directed slots
  std::uint64_t implicit_edges = 0;  ///< block-implied undirected edges

  std::span<const std::size_t> offsets;        ///< size n+1
  std::span<const NodeId> neighbors;           ///< size 2m, sorted per node
  std::span<const std::uint32_t> reverse_slot; ///< size 2m, see file comment
  std::span<const graph::Weight> weights;      ///< size n

  std::vector<graph::ImplicitBlock> blocks;    ///< implicit-edge table

  bool has_implicit() const { return !blocks.empty(); }

  /// Explicit slot count of v (the engine's per-slot arenas are sized by
  /// this; block-implied neighbors are not slots).
  std::size_t degree(NodeId v) const { return offsets[v + 1] - offsets[v]; }

  std::size_t implicit_degree(NodeId v) const {
    std::size_t d = 0;
    for (const auto& b : blocks) d += b.degree_of(v);
    return d;
  }

  /// Explicit + block-implied neighbors of v.
  std::size_t total_degree(NodeId v) const {
    return degree(v) + implicit_degree(v);
  }

  std::span<const NodeId> neighbors_of(NodeId v) const {
    return {neighbors.data() + offsets[v], degree(v)};
  }

  static constexpr std::size_t kNoSlot = ~static_cast<std::size_t>(0);

  /// Position of u in v's explicit neighbor list, or kNoSlot when {u,v} is
  /// not an explicit edge. O(log deg) — used only off the hot path
  /// (bits_on_edge).
  std::size_t slot_of(NodeId v, NodeId u) const;

  /// Explicit or block-implied adjacency test.
  bool has_edge(NodeId u, NodeId v) const;

  /// Rank over the merged neighbor set: how many neighbors of v (explicit
  /// and block-implied) have id <= x. O(log deg + |blocks|).
  std::size_t count_neighbors_leq(NodeId v, NodeId x) const;

  /// Select: the slot-th smallest neighbor of v in the merged set, for
  /// slot < total_degree(v). O(log n * (log deg + |blocks|)) via binary
  /// search over count_neighbors_leq — explicit-only topologies take the
  /// O(1) array path.
  NodeId neighbor_at(NodeId v, std::size_t slot) const;

  /// Smallest merged-set neighbor of v with id > x, or graph::kNoNode.
  /// Pass graph::kNoNode as x to start iteration. This is the sequential
  /// neighbor cursor: O(log deg + |blocks|) per step, no per-node state.
  NodeId neighbor_after(NodeId v, NodeId x) const;

  /// Sum of total_degree(w) over w < v — the implicit-aware prefix cost
  /// edge-tiled sharding balances on. Strictly increasing in v.
  std::uint64_t prefix_cost(NodeId v) const {
    std::uint64_t c = offsets[v] + v;
    for (const auto& b : blocks) c += b.degree_prefix(v);
    return c;
  }

  /// Snapshot g's adjacency (and implicit-block table). The graph may be
  /// mutated or destroyed afterwards; the topology is self-contained.
  static std::shared_ptr<const Topology> build(const graph::Graph& g);

  /// Adopt a (possibly memory-mapped) CSR snapshot produced by
  /// graph::write_topology_snapshot — zero-copy: the topology's spans alias
  /// the mapping, which is kept alive for the topology's lifetime.
  static std::shared_ptr<const Topology> from_snapshot(graph::MappedCsr snap);

 private:
  // Owned backing for build(); empty when viewing a snapshot.
  std::vector<std::size_t> own_offsets_;
  std::vector<NodeId> own_neighbors_;
  std::vector<std::uint32_t> own_reverse_;
  std::vector<graph::Weight> own_weights_;
  // Keeps a snapshot mapping alive while spans alias it.
  std::shared_ptr<const void> keepalive_;
};

/// A node's merged (explicit + implicit) neighbor list, presented with the
/// same surface as a sorted std::span<const NodeId> — size(), operator[],
/// forward iteration — so NodeProgram code is representation-agnostic. Two
/// modes:
///  - dense: wraps the CSR row directly; operator[] and iteration are
///    pointer arithmetic, exactly the old span behavior;
///  - hybrid: backed by Topology rank/select arithmetic; operator[] is a
///    counting-select (O(log n * |blocks|)) and iteration walks
///    neighbor_after, O(log deg + |blocks|) per step with no per-node
///    state — a grid node with millions of implied neighbors costs nothing
///    until visited.
class NeighborsView {
 public:
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = NodeId;
    using difference_type = std::ptrdiff_t;
    using pointer = const NodeId*;
    using reference = NodeId;

    const_iterator() = default;
    const_iterator(const NodeId* p) : ptr_(p) {}
    const_iterator(const Topology* topo, NodeId v, std::size_t idx, NodeId cur)
        : topo_(topo), v_(v), idx_(idx), cur_(cur) {}

    NodeId operator*() const { return ptr_ != nullptr ? *ptr_ : cur_; }
    const_iterator& operator++() {
      if (ptr_ != nullptr) {
        ++ptr_;
      } else {
        ++idx_;
        cur_ = topo_->neighbor_after(v_, cur_);
      }
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++*this;
      return copy;
    }
    bool operator==(const const_iterator& o) const {
      return ptr_ != nullptr ? ptr_ == o.ptr_ : idx_ == o.idx_;
    }
    bool operator!=(const const_iterator& o) const { return !(*this == o); }

   private:
    const NodeId* ptr_ = nullptr;  ///< dense mode; null in hybrid mode
    const Topology* topo_ = nullptr;
    NodeId v_ = 0;
    std::size_t idx_ = 0;
    NodeId cur_ = 0;
  };

  NeighborsView() = default;
  NeighborsView(const NodeId* data, std::size_t count)
      : data_(data), count_(count) {}
  NeighborsView(const Topology* topo, NodeId v, std::size_t count)
      : topo_(topo), v_(v), count_(count) {}

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  NodeId operator[](std::size_t i) const {
    return data_ != nullptr ? data_[i] : topo_->neighbor_at(v_, i);
  }
  NodeId front() const { return (*this)[0]; }
  NodeId back() const { return (*this)[count_ - 1]; }

  const_iterator begin() const {
    if (data_ != nullptr) return const_iterator(data_);
    return const_iterator(topo_, v_, 0,
                          topo_->neighbor_after(v_, graph::kNoNode));
  }
  const_iterator end() const {
    if (data_ != nullptr) return const_iterator(data_ + count_);
    return const_iterator(topo_, v_, count_, graph::kNoNode);
  }

 private:
  const NodeId* data_ = nullptr;  ///< dense mode
  const Topology* topo_ = nullptr;  ///< hybrid mode
  NodeId v_ = 0;
  std::size_t count_ = 0;
};

/// Edge-tiled shard partition: `num_shards` contiguous [begin, end) node
/// ranges whose boundaries balance per-shard cost, where node v costs
/// total_degree(v) + 1 — directed message slots dominate both engine
/// phases, the +1 keeps degree-0 nodes from all landing in one shard's
/// compute phase. Unlike an equal-node split, a high-degree gadget hub (the
/// clique/biclique blocks of the paper's F_x̄/G_x̄ constructions) gets a
/// shard of its own instead of skewing whichever shard its id falls into.
/// Implicit-block degrees count arithmetically, so the 10^10-edge scaled
/// families still balance on edges without touching them.
///
/// A pure function of (topology, num_shards) — never of thread scheduling —
/// so the parallel round executor built on it stays bit-identical to serial
/// for every thread count. Shards may be empty; ranges cover [0, n) in
/// order.
std::vector<std::pair<NodeId, NodeId>> edge_tiled_shards(
    const Topology& topo, std::size_t num_shards);

}  // namespace congestlb::congest
