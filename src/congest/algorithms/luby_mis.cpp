#include "congest/algorithms/luby_mis.hpp"

#include <vector>

#include "congest/algorithms/mis_common.hpp"
#include "support/expect.hpp"
#include "support/math.hpp"

namespace congestlb::congest {

namespace {

class LubyMisProgram final : public NodeProgram {
 public:
  void round(const NodeInfo& info, const Inbox& inbox, Outbox& outbox,
             Rng& rng) override {
    if (neighbor_state_.empty() && !info.neighbors.empty()) {
      neighbor_state_.assign(info.neighbors.size(), IsState::kUndecided);
      neighbor_key_.assign(info.neighbors.size(), 0);
    }
    if (key_bits_ == 0) {
      key_bits_ = 2 * static_cast<std::size_t>(
                          std::max(1, ceil_log2(std::max<std::size_t>(2, info.n)))) +
                  2;
      // Keep 2 bits for the state field.
      if (key_bits_ + 2 > info.bits_per_edge) {
        key_bits_ = info.bits_per_edge > 2 ? info.bits_per_edge - 2 : 1;
      }
      key_bits_ = std::min<std::size_t>(key_bits_, 62);
    }

    for (std::size_t s = 0; s < inbox.size(); ++s) {
      if (!inbox[s]) continue;
      MessageReader r(*inbox[s]);
      neighbor_state_[s] = static_cast<IsState>(r.get(2));
      neighbor_key_[s] = r.get(key_bits_);
    }

    if (state_ == IsState::kUndecided) {
      for (IsState s : neighbor_state_) {
        if (s == IsState::kIn) {
          state_ = IsState::kOut;
          break;
        }
      }
    }
    // Evaluate the previous phase's lottery: we win if our announced key
    // strictly beats every undecided neighbor's (key, id) pair.
    if (state_ == IsState::kUndecided && heard_once_) {
      bool win = true;
      for (std::size_t s = 0; s < neighbor_state_.size(); ++s) {
        if (neighbor_state_[s] != IsState::kUndecided) continue;
        const auto their = std::pair(neighbor_key_[s], info.neighbors[s]);
        const auto mine = std::pair(current_key_, info.id);
        if (their >= mine) {
          win = false;
          break;
        }
      }
      if (win) state_ = IsState::kIn;
    }
    heard_once_ = true;

    const bool neighbors_decided = [&] {
      for (IsState s : neighbor_state_) {
        if (s == IsState::kUndecided) return false;
      }
      return true;
    }();
    if (state_ != IsState::kUndecided && neighbors_decided &&
        announced_final_) {
      finished_ = true;
      return;
    }
    if (state_ == IsState::kUndecided) {
      current_key_ = rng.next() & ((1ULL << key_bits_) - 1);
    }
    Message m = std::move(MessageWriter()
                              .put(static_cast<std::uint64_t>(state_), 2)
                              .put(current_key_, key_bits_))
                    .finish();
    outbox.send_all(m);
    if (state_ != IsState::kUndecided) announced_final_ = true;
  }

  bool finished() const override { return finished_; }
  std::int64_t output() const override { return state_ == IsState::kIn ? 1 : 0; }

 private:
  IsState state_ = IsState::kUndecided;
  std::vector<IsState> neighbor_state_;
  std::vector<std::uint64_t> neighbor_key_;
  std::uint64_t current_key_ = 0;
  std::size_t key_bits_ = 0;
  bool heard_once_ = false;
  bool announced_final_ = false;
  bool finished_ = false;
};

/// Luby with an evaluation gate for faulty networks: the lottery is decided
/// only on rounds with a complete, checksum-valid picture of the undecided
/// neighborhood, and everything is bounded by a round deadline.
class FaultTolerantLubyProgram final : public NodeProgram {
 public:
  explicit FaultTolerantLubyProgram(std::size_t deadline)
      : deadline_(deadline) {}

  void round(const NodeInfo& info, const Inbox& inbox, Outbox& outbox,
             Rng& rng) override {
    if (key_bits_ == 0) {
      neighbor_state_.assign(info.neighbors.size(), IsState::kUndecided);
      neighbor_key_.assign(info.neighbors.size(), 0);
      key_bits_ = 2 * static_cast<std::size_t>(
                          std::max(1, ceil_log2(std::max<std::size_t>(2, info.n)))) +
                  2;
      // Message layout: 2 state bits + key + checksum.
      CLB_EXPECT(info.bits_per_edge > 2 + 1,
                 "fault-tolerant Luby: bandwidth too small");
      checksum_bits_ =
          std::min<std::size_t>(4, (info.bits_per_edge - 2) / 2);
      if (key_bits_ + 2 + checksum_bits_ > info.bits_per_edge) {
        key_bits_ = info.bits_per_edge - 2 - checksum_bits_;
      }
      key_bits_ = std::min<std::size_t>(key_bits_, 62);
      if (deadline_ == 0) {
        deadline_ = 24 * static_cast<std::size_t>(std::max(
                             1, ceil_log2(std::max<std::size_t>(2, info.n)))) +
                    40;
      }
    }

    // Read the fresh, integrity-checked view of the neighborhood. The
    // payload checksum covers state and key together, so a flipped state
    // bit cannot smuggle a bogus kIn/kOut through.
    std::vector<char> fresh(info.neighbors.size(), 0);
    for (std::size_t s = 0; s < inbox.size(); ++s) {
      if (!inbox[s]) continue;
      MessageReader r(*inbox[s]);
      const std::uint64_t state_raw = r.get(2);
      const std::uint64_t key = r.get(key_bits_);
      const std::uint64_t payload = (key << 2) | state_raw;
      if (state_raw > 2 ||
          r.get(checksum_bits_) != fold_checksum(payload, checksum_bits_)) {
        continue;  // corrupted — treat the slot as silent this round
      }
      neighbor_state_[s] = static_cast<IsState>(state_raw);
      neighbor_key_[s] = key;
      fresh[s] = 1;
    }

    if (state_ == IsState::kUndecided) {
      for (IsState s : neighbor_state_) {
        if (s == IsState::kIn) {
          state_ = IsState::kOut;
          break;
        }
      }
    }
    // Evaluation gate: join only when every still-undecided neighbor spoke
    // this very round — comparing against a stale key of a neighbor that
    // has since joined would break independence.
    if (state_ == IsState::kUndecided && announced_key_) {
      bool complete = true;
      bool win = true;
      for (std::size_t s = 0; s < neighbor_state_.size(); ++s) {
        if (neighbor_state_[s] != IsState::kUndecided) continue;
        if (!fresh[s]) {
          complete = false;
          break;
        }
        const auto their = std::pair(neighbor_key_[s], info.neighbors[s]);
        const auto mine = std::pair(current_key_, info.id);
        if (their >= mine) win = false;
      }
      if (complete && win) state_ = IsState::kIn;
    }

    ++rounds_seen_;
    if (rounds_seen_ >= deadline_) {
      done_ = true;
      return;
    }
    const bool neighbors_decided = [&] {
      for (IsState s : neighbor_state_) {
        if (s == IsState::kUndecided) return false;
      }
      return true;
    }();
    if (state_ != IsState::kUndecided && neighbors_decided &&
        announced_final_) {
      done_ = true;
      return;
    }
    if (state_ == IsState::kUndecided) {
      current_key_ = rng.next() & ((1ULL << key_bits_) - 1);
    }
    const std::uint64_t payload =
        (current_key_ << 2) | static_cast<std::uint64_t>(state_);
    outbox.send_all(std::move(MessageWriter()
                                  .put(static_cast<std::uint64_t>(state_), 2)
                                  .put(current_key_, key_bits_)
                                  .put(fold_checksum(payload, checksum_bits_),
                                       checksum_bits_))
                        .finish());
    announced_key_ = true;
    if (state_ != IsState::kUndecided) announced_final_ = true;
  }

  bool finished() const override {
    return done_ && state_ != IsState::kUndecided;
  }
  bool failed() const override {
    return done_ && state_ == IsState::kUndecided;
  }
  std::string diagnostic() const override {
    if (!failed()) return {};
    std::size_t undecided = 0;
    for (IsState s : neighbor_state_) {
      if (s == IsState::kUndecided) ++undecided;
    }
    return "Luby MIS: still undecided after " + std::to_string(deadline_) +
           " rounds (" + std::to_string(undecided) +
           " neighbors last known undecided)";
  }
  std::int64_t output() const override {
    return state_ == IsState::kIn ? 1 : 0;
  }

 private:
  std::size_t deadline_;
  IsState state_ = IsState::kUndecided;
  std::vector<IsState> neighbor_state_;
  std::vector<std::uint64_t> neighbor_key_;
  std::uint64_t current_key_ = 0;
  std::size_t key_bits_ = 0;
  std::size_t checksum_bits_ = 0;
  std::size_t rounds_seen_ = 0;
  bool announced_key_ = false;
  bool announced_final_ = false;
  bool done_ = false;
};

}  // namespace

ProgramFactory luby_mis_factory() {
  return [](NodeId, const NodeInfo&) {
    return std::make_unique<LubyMisProgram>();
  };
}

ProgramFactory fault_tolerant_luby_mis_factory(std::size_t deadline_rounds) {
  return [deadline_rounds](NodeId, const NodeInfo&) {
    return std::make_unique<FaultTolerantLubyProgram>(deadline_rounds);
  };
}

}  // namespace congestlb::congest
