// Theorem 5 executed for real: t players simulate a CONGEST algorithm on a
// lower-bound graph over a shared blackboard.
//
// The driver instantiates a lower-bound construction on a promise instance,
// runs any CONGEST NodeProgram on the resulting network, and — exactly as
// the simulation argument prescribes — posts every message that crosses
// between two players' node sets V^i, V^j to a comm::Blackboard, charged to
// the sending owner. When the algorithm terminates, the players read the
// computed independent set's weight off the gap predicate to answer promise
// pairwise disjointness.
//
// The report checks the facts Theorem 5 rests on:
//   1. accounting: blackboard bits <= rounds * |cut| * bits_per_edge;
//   2. exactness: the bits posted to the blackboard equal the bits the
//      network accounted on the cut edges — delivered traffic, nothing
//      more, nothing less. This holds under fault injection too
//      (NetworkConfig::faults): dropped messages are charged nowhere,
//      corrupted and duplicated deliveries are charged everywhere;
//   3. correctness: the gap predicate decides f(xbar) (when the supplied
//      algorithm is exact, e.g. universal_maxis_factory, and the run
//      completed — a faulted run that failed() reports itself instead).

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "comm/blackboard.hpp"
#include "comm/instances.hpp"
#include "congest/network.hpp"
#include "lowerbound/linear_family.hpp"
#include "lowerbound/quadratic_family.hpp"

namespace congestlb::sim {

struct ReductionReport {
  std::size_t n = 0;
  std::size_t t = 0;
  std::size_t rounds = 0;
  std::size_t bits_per_edge = 0;
  std::size_t cut_edges = 0;

  std::uint64_t blackboard_bits = 0;   ///< bits posted for cut messages
  std::uint64_t blackboard_entries = 0;
  /// Cut traffic per round (index = round as reported at delivery time);
  /// the raw series behind the Theorem-5 accounting.
  std::vector<std::uint64_t> cut_bits_per_round;
  std::uint64_t total_bits = 0;        ///< all delivered network traffic
  /// rounds * 2 * cut_edges * bits_per_edge (two directed messages per
  /// undirected cut edge per round).
  std::uint64_t theorem5_budget = 0;

  graph::Weight computed_weight = 0;   ///< weight of the algorithm's IS
  graph::Weight yes_weight = 0;        ///< beta
  graph::Weight no_bound = 0;          ///< gamma * beta
  bool decided_disjoint = false;       ///< the players' answer
  bool ground_truth_disjoint = false;  ///< f(xbar)
  bool correct = false;
  bool accounting_ok = false;          ///< blackboard_bits <= budget
  /// Bits posted to the blackboard == bits the network charged to the cut
  /// edges. The invariant that keeps Theorem-5 charging honest under
  /// faults.
  bool cut_accounting_exact = false;
  bool algorithm_finished = false;
  bool algorithm_failed = false;  ///< some node gave up (fault deadline)

  /// Full network statistics, including fault counters (drops, corruptions,
  /// echoes, crashes) when cfg.faults was enabled.
  congest::RunStats net_stats;
  /// "node <id>: <diagnostic>" for every failed node.
  std::vector<std::string> failure_diagnostics;
};

/// Simulate `factory`'s program on G_xbar for the linear family. The
/// network bandwidth comes from cfg (0 = auto); cfg.on_message must be
/// empty (the driver installs its own observer). cfg.faults is honored:
/// the run then exercises the adversarial schedule while the blackboard
/// still sees exactly the delivered cut traffic.
ReductionReport run_linear_reduction(const lb::LinearConstruction& c,
                                     const comm::PromiseInstance& inst,
                                     const congest::ProgramFactory& factory,
                                     comm::Blackboard& board,
                                     congest::NetworkConfig cfg = {});

/// Same for the quadratic family F_xbar.
ReductionReport run_quadratic_reduction(const lb::QuadraticConstruction& c,
                                        const comm::PromiseInstance& inst,
                                        const congest::ProgramFactory& factory,
                                        comm::Blackboard& board,
                                        congest::NetworkConfig cfg = {});

}  // namespace congestlb::sim
