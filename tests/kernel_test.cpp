// Kernelization (maxis/kernel.hpp): per-rule unit tests on hand-built
// graphs, the kernelizable() pre-check contract, unfold certification, and
// the property that kernel + search + unfold matches the plain
// branch-and-bound OPT on random instances (the soundness statement the
// solver engine relies on).

#include <gtest/gtest.h>

#include <numeric>
#include <optional>
#include <string>

#include "maxis/branch_and_bound.hpp"
#include "maxis/brute_force.hpp"
#include "maxis/kernel.hpp"
#include "maxis/verify.hpp"
#include "property_harness.hpp"
#include "support/expect.hpp"
#include "support/rng.hpp"

namespace congestlb::maxis {
namespace {

graph::Graph random_weighted(Rng& rng, std::size_t n, double p,
                             graph::Weight max_w) {
  graph::Graph g(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    g.set_weight(v, static_cast<graph::Weight>(1 + rng.below(max_w)));
  }
  for (graph::NodeId u = 0; u < n; ++u) {
    for (graph::NodeId v = u + 1; v < n; ++v) {
      if (rng.chance(p)) g.add_edge(u, v);
    }
  }
  return g;
}

/// Kernel-solve g and unfold; verifies the certificate and returns the
/// original-graph weight.
Weight kernel_solve(const graph::Graph& g, const KernelOptions& opts = {}) {
  Kernel kernel(g, opts);
  const BnBResult reduced = solve_branch_and_bound(kernel.reduced());
  const IsSolution lifted =
      checked(g, kernel.unfold(reduced.solution.nodes));
  EXPECT_EQ(lifted.weight, reduced.solution.weight + kernel.offset());
  return lifted.weight;
}

// ------------------------------------------------------------------- rules --

TEST(Kernel, IsolatedVerticesAreTaken) {
  graph::Graph g(3);
  for (graph::NodeId v = 0; v < 3; ++v) g.set_weight(v, 5);
  Kernel k(g);
  EXPECT_EQ(k.stats().isolated, 3u);
  EXPECT_EQ(k.reduced().num_nodes(), 0u);
  EXPECT_EQ(k.offset(), 15);
  EXPECT_EQ(checked(g, k.unfold({})).weight, 15);
}

TEST(Kernel, Degree1TakeWhenAtLeastNeighbor) {
  // v(3) - u(2): w(v) >= w(u), so v is taken and u deleted.
  graph::Graph g(2);
  g.set_weight(0, 3);
  g.set_weight(1, 2);
  g.add_edge(0, 1);
  Kernel k(g);
  EXPECT_EQ(k.stats().degree1, 1u);
  EXPECT_EQ(k.reduced().num_nodes(), 0u);
  EXPECT_EQ(k.offset(), 3);
}

TEST(Kernel, Degree1FoldWhenLighter) {
  // Path v(1) - u(5) - x(1): v folds into u, then the rest resolves; the
  // optimum keeps u alone (weight 5 > 1 + 1).
  graph::Graph g(3);
  g.set_weight(0, 1);
  g.set_weight(1, 5);
  g.set_weight(2, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  Kernel k(g);
  EXPECT_GE(k.stats().folded, 1u);
  EXPECT_EQ(kernel_solve(g), 5);
  EXPECT_EQ(solve_branch_and_bound(g).solution.weight, 5);
}

TEST(Kernel, TwinMerge) {
  // u and v share the same two neighbors and are non-adjacent: merged, and
  // the merged vertex (weight 4) beats the two neighbors (weight 3). The
  // neighbors {2, 3} are themselves a twin pair, so two merges fire.
  graph::Graph g(4);
  g.set_weight(0, 2);  // u
  g.set_weight(1, 2);  // v, twin of u
  g.set_weight(2, 1);
  g.set_weight(3, 2);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  Kernel k(g);
  EXPECT_EQ(k.stats().twins, 2u);
  EXPECT_EQ(kernel_solve(g), 4);
  EXPECT_EQ(solve_branch_and_bound(g).solution.weight, 4);
}

TEST(Kernel, SimplicialVertexTaken) {
  // v's neighborhood {a, b} is a clique and v carries the max weight: take
  // v, delete the closed neighborhood.
  graph::Graph g(3);
  g.set_weight(0, 4);  // v
  g.set_weight(1, 2);
  g.set_weight(2, 3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  Kernel k(g);
  EXPECT_GE(k.stats().simplicial + k.stats().dominated, 1u);
  EXPECT_EQ(k.reduced().num_nodes(), 0u);
  EXPECT_EQ(kernel_solve(g), 4);
}

TEST(Kernel, DominationDropsCoveredVertex) {
  // N[v] subset of N[u] with w(v) >= w(u): u never helps. Build a 4-cycle
  // with a chord so u = 3 is dominated by v = 1 (same closed neighborhood
  // minus u, lower weight).
  graph::Graph g(4);
  g.set_weight(0, 2);
  g.set_weight(1, 5);
  g.set_weight(2, 2);
  g.set_weight(3, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  g.add_edge(2, 3);
  g.add_edge(1, 3);  // chord: N[3] = {0,1,2,3} contains N[1] = {0,1,2,3}
  Kernel k(g);
  EXPECT_GE(k.stats().decisions(), 1u);
  EXPECT_EQ(kernel_solve(g), solve_branch_and_bound(g).solution.weight);
}

TEST(Kernel, RejectsNegativeWeights) {
  graph::Graph g(2);
  g.set_weight(0, -1);
  g.add_edge(0, 1);
  EXPECT_THROW(Kernel k(g), InvariantError);
}

// ------------------------------------------------------------ kernelizable --

TEST(Kernelizable, FalseOnIrreducibleGraphs) {
  // A 5-cycle with distinct weights: no isolated/degree-1 vertices, no
  // twins, no simplicial vertex (neighborhoods are independent pairs), and
  // no domination. The pre-check must certify it irreducible and the
  // kernel must be the identity.
  graph::Graph g(5);
  for (graph::NodeId v = 0; v < 5; ++v) {
    g.set_weight(v, static_cast<graph::Weight>(2 + v));
    g.add_edge(v, (v + 1) % 5);
  }
  EXPECT_FALSE(kernelizable(g));
  Kernel k(g);
  EXPECT_EQ(k.stats().decisions(), 0u);
  EXPECT_EQ(k.reduced().num_nodes(), 5u);
}

TEST(Kernelizable, TrueWheneverAnyRuleFires) {
  // Pendant vertex -> degree-1 rule applies.
  graph::Graph pendant(3);
  pendant.add_edge(0, 1);
  pendant.add_edge(1, 2);
  for (graph::NodeId v = 0; v < 3; ++v) pendant.set_weight(v, 1 + v);
  EXPECT_TRUE(kernelizable(pendant));

  // Clique -> its max-weight vertex is simplicial.
  graph::Graph clique(4);
  for (graph::NodeId u = 0; u < 4; ++u) {
    clique.set_weight(u, static_cast<graph::Weight>(1 + u));
    for (graph::NodeId v = u + 1; v < 4; ++v) clique.add_edge(u, v);
  }
  EXPECT_TRUE(kernelizable(clique));

  EXPECT_FALSE(kernelizable(graph::Graph(0)));
  EXPECT_TRUE(kernelizable(graph::Graph(1)));  // isolated vertex
}

TEST(Kernelizable, AgreesWithKernelOnRandomGraphs) {
  // Contract: kernelizable(g) == (Kernel(g) decides something), for the
  // same degree cap. This is exactly the identity-kernel fast path the
  // engine depends on.
  Rng rng(41);
  for (int it = 0; it < 200; ++it) {
    const std::size_t n = 1 + rng.below(24);
    const graph::Graph g =
        random_weighted(rng, n, 0.05 + rng.uniform() * 0.5, 6);
    const KernelOptions opts;
    Kernel k(g, opts);
    EXPECT_EQ(kernelizable(g, opts), k.stats().decisions() > 0)
        << "iteration " << it << " n=" << n;
  }
}

TEST(Kernelizable, DegreeCapMasksQuadraticRules) {
  // A triangle is reducible only through the capped rules (simplicial /
  // domination); with max_rule_degree below its degrees the pre-check and
  // the kernel must both treat it as irreducible.
  graph::Graph g(3);
  g.set_weight(0, 3);
  g.set_weight(1, 2);
  g.set_weight(2, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  KernelOptions capped;
  capped.max_rule_degree = 1;
  EXPECT_TRUE(kernelizable(g));
  EXPECT_FALSE(kernelizable(g, capped));
  Kernel k(g, capped);
  EXPECT_EQ(k.stats().decisions(), 0u);
}

// -------------------------------------------------------------- properties --

TEST(KernelProperty, KernelPlusUnfoldMatchesPlainBnB) {
  // Soundness: for random weighted graphs, solving the kernel and
  // unfolding yields a verified IS with exactly the plain branch-and-bound
  // optimum. Failures shrink by seed replay (see property_harness.hpp).
  const testing::Property prop =
      [](std::uint64_t seed, std::size_t size) -> std::optional<std::string> {
    Rng rng(seed);
    const std::size_t n = 1 + rng.below(2 + size);
    graph::Graph g = random_weighted(rng, n, 0.05 + rng.uniform() * 0.6,
                                     1 + static_cast<graph::Weight>(size));
    const Weight plain = solve_branch_and_bound(g).solution.weight;
    Kernel kernel(g);
    const BnBResult reduced = solve_branch_and_bound(kernel.reduced());
    const IsSolution lifted =
        checked(g, kernel.unfold(reduced.solution.nodes));  // throws if bad
    if (lifted.weight != plain) {
      return "kernel+unfold weight " + std::to_string(lifted.weight) +
             " != plain OPT " + std::to_string(plain);
    }
    return std::nullopt;
  };
  const auto failure = testing::check_seeds(prop, 2026, 120, 20);
  EXPECT_FALSE(failure.has_value()) << failure->describe();
}

TEST(KernelProperty, UnfoldMatchesBruteForceOnTinyGraphs) {
  const testing::Property prop =
      [](std::uint64_t seed, std::size_t size) -> std::optional<std::string> {
    Rng rng(seed ^ 0xabcd);
    const std::size_t n = 1 + rng.below(std::min<std::size_t>(size + 1, 12));
    graph::Graph g = random_weighted(rng, n, 0.3, 5);
    const Weight exact = solve_brute_force(g).weight;
    Kernel kernel(g);
    const BnBResult reduced = solve_branch_and_bound(kernel.reduced());
    const Weight lifted =
        checked(g, kernel.unfold(reduced.solution.nodes)).weight;
    if (lifted != exact) {
      return "kernel OPT " + std::to_string(lifted) + " != brute force " +
             std::to_string(exact);
    }
    return std::nullopt;
  };
  const auto failure = testing::check_seeds(prop, 7, 80, 11);
  EXPECT_FALSE(failure.has_value()) << failure->describe();
}

TEST(KernelProperty, EveryRuleMaskUnfoldsToBruteForceOptimum) {
  // Exactness must hold under *every* subset of enabled rules — each rule
  // is individually sound, so disabling some can only leave the kernel
  // larger, never change the unfolded optimum. Random graphs stay <= 24
  // nodes so brute force certifies the target; all 32 masks are swept per
  // instance, including the empty mask (identity kernel).
  const testing::Property prop =
      [](std::uint64_t seed, std::size_t size) -> std::optional<std::string> {
    Rng rng(seed ^ 0x5eedULL);
    const std::size_t n = 1 + rng.below(std::min<std::size_t>(size + 1, 24));
    graph::Graph g = random_weighted(rng, n, 0.05 + rng.uniform() * 0.5, 6);
    const Weight exact = solve_brute_force(g).weight;
    for (unsigned mask = 0; mask <= kAllKernelRules; ++mask) {
      KernelOptions opts;
      opts.rules = mask;
      Kernel kernel(g, opts);
      const BnBResult reduced = solve_branch_and_bound(kernel.reduced());
      const Weight lifted =
          checked(g, kernel.unfold(reduced.solution.nodes)).weight;
      if (lifted != exact) {
        return "rule mask " + std::to_string(mask) + ": kernel OPT " +
               std::to_string(lifted) + " != brute force " +
               std::to_string(exact);
      }
      // A disabled rule must never fire (stats are per-rule, so this is
      // directly checkable).
      const KernelStats& st = kernel.stats();
      if (((mask & kRuleIsolated) == 0 && st.isolated != 0) ||
          ((mask & kRuleDegree1) == 0 && (st.degree1 != 0 || st.folded != 0)) ||
          ((mask & kRuleDomination) == 0 && st.dominated != 0) ||
          ((mask & kRuleSimplicial) == 0 && st.simplicial != 0) ||
          ((mask & kRuleTwin) == 0 && st.twins != 0)) {
        return "rule mask " + std::to_string(mask) +
               ": a disabled rule fired";
      }
      // The pre-check must agree with the pipeline: if it says nothing can
      // fire, nothing may fire.
      if (!kernelizable(g, opts) && st.decisions() != 0) {
        return "rule mask " + std::to_string(mask) +
               ": kernelizable() == false but the pipeline decided " +
               std::to_string(st.decisions()) + " vertices";
      }
    }
    return std::nullopt;
  };
  const auto failure = testing::check_seeds(prop, 4242, 40, 23);
  EXPECT_FALSE(failure.has_value()) << failure->describe();
}

TEST(KernelRuleMask, EmptyMaskIsIdentity) {
  graph::Graph g(4);
  g.add_edge(0, 1);  // degree-1 rules would fire on 2, 3 (isolated)
  KernelOptions opts;
  opts.rules = 0;
  EXPECT_FALSE(kernelizable(g, opts));
  Kernel k(g, opts);
  EXPECT_EQ(k.stats().decisions(), 0u);
  EXPECT_EQ(k.reduced().num_nodes(), 4u);
  EXPECT_TRUE(kernelizable(g));  // full mask still sees the work
}

}  // namespace
}  // namespace congestlb::maxis
