// Solver engine (maxis/parallel_bnb.hpp): the determinism contract —
// solution, weight, and search_nodes bit-identical across thread counts,
// with the probe disabled so the fanout path really executes — plus OPT
// agreement with the seed solver, kernel on/off equivalence, budget
// enforcement, and structural edge cases.

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "comm/instances.hpp"
#include "lowerbound/linear_family.hpp"
#include "lowerbound/params.hpp"
#include "maxis/branch_and_bound.hpp"
#include "maxis/parallel_bnb.hpp"
#include "property_harness.hpp"
#include "support/deadline.hpp"
#include "support/expect.hpp"
#include "support/rng.hpp"

namespace congestlb::maxis {
namespace {

graph::Graph random_weighted(Rng& rng, std::size_t n, double p,
                             graph::Weight max_w) {
  graph::Graph g(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    g.set_weight(v, static_cast<graph::Weight>(1 + rng.below(max_w)));
  }
  for (graph::NodeId u = 0; u < n; ++u) {
    for (graph::NodeId v = u + 1; v < n; ++v) {
      if (rng.chance(p)) g.add_edge(u, v);
    }
  }
  return g;
}

/// A small instantiated paper gadget (the shape family the campaign
/// solves), YES or NO branch.
graph::Graph gadget(bool yes, std::uint64_t trial) {
  const auto params = lb::GadgetParams::from_l_alpha(6, 1, 7);
  const lb::LinearConstruction c(params, 3);
  Rng rng(0x9e3779b97f4a7c15ULL * trial + (yes ? 1 : 0));
  const auto inst = yes ? comm::make_uniquely_intersecting(
                              params.k, c.num_players(), rng, 0.3)
                        : comm::make_pairwise_disjoint(
                              params.k, c.num_players(), rng, 0.4);
  return c.instantiate(inst);
}

/// Options that force the fanout: probe off, fanout floor at zero, so the
/// multi-threaded job path runs even on small graphs.
EngineOptions fanout_options(std::size_t threads) {
  EngineOptions opts;
  opts.threads = threads;
  opts.probe_search_nodes = 0;
  opts.fanout_min_nodes = 0;
  return opts;
}

// ------------------------------------------------------------- determinism --

TEST(SolverEngine, BitIdenticalAcrossThreadCounts) {
  // The pinned contract: same solution nodes, weight, and search_nodes for
  // threads 1/2/8 — with the probe disabled so every component fans out
  // and the work-stealing pool actually races.
  for (const bool yes : {false, true}) {
    for (std::uint64_t trial = 0; trial < 2; ++trial) {
      const graph::Graph g = gadget(yes, trial);
      const EngineResult base = solve_maxis(g, fanout_options(1));
      EXPECT_GT(base.jobs, 0u) << "fanout did not engage";
      for (const std::size_t threads : {2u, 8u}) {
        const EngineResult got = solve_maxis(g, fanout_options(threads));
        EXPECT_EQ(got.solution.nodes, base.solution.nodes)
            << "threads=" << threads;
        EXPECT_EQ(got.solution.weight, base.solution.weight);
        EXPECT_EQ(got.search_nodes, base.search_nodes)
            << "threads=" << threads;
        EXPECT_EQ(got.jobs, base.jobs);
      }
    }
  }
}

TEST(SolverEngine, DefaultOptionsAreThreadInvariantToo) {
  // With the default probe the engine usually solves serially; the
  // observables must still not depend on the thread count.
  const graph::Graph g = gadget(false, 0);
  const EngineResult t1 = solve_maxis(g);
  EngineOptions mt;
  mt.threads = 8;
  const EngineResult t8 = solve_maxis(g, mt);
  EXPECT_EQ(t1.solution.nodes, t8.solution.nodes);
  EXPECT_EQ(t1.search_nodes, t8.search_nodes);
}

TEST(SolverEngine, DeterminismOnRandomGraphs) {
  const testing::Property prop =
      [](std::uint64_t seed, std::size_t size) -> std::optional<std::string> {
    Rng rng(seed);
    const std::size_t n = 1 + rng.below(2 + 3 * size);
    const graph::Graph g =
        random_weighted(rng, n, 0.02 + rng.uniform() * 0.3, 8);
    const EngineResult a = solve_maxis(g, fanout_options(1));
    const EngineResult b = solve_maxis(g, fanout_options(7));
    if (a.solution.nodes != b.solution.nodes ||
        a.search_nodes != b.search_nodes) {
      return "thread-dependent result on n=" + std::to_string(n);
    }
    return std::nullopt;
  };
  const auto failure = testing::check_seeds(prop, 99, 40, 16);
  EXPECT_FALSE(failure.has_value()) << failure->describe();
}

// --------------------------------------------------------------- exactness --

TEST(SolverEngine, MatchesSeedSolverOnGadgets) {
  for (const bool yes : {false, true}) {
    const graph::Graph g = gadget(yes, 1);
    const Weight seed_opt = solve_branch_and_bound(g).solution.weight;
    EXPECT_EQ(solve_maxis(g).solution.weight, seed_opt);
  }
}

TEST(SolverEngine, MatchesSeedSolverOnRandomGraphs) {
  const testing::Property prop =
      [](std::uint64_t seed, std::size_t size) -> std::optional<std::string> {
    Rng rng(seed ^ 0x5eed);
    const std::size_t n = 1 + rng.below(2 + 3 * size);
    const graph::Graph g =
        random_weighted(rng, n, 0.02 + rng.uniform() * 0.5, 6);
    const Weight seed_opt = solve_branch_and_bound(g).solution.weight;
    const Weight engine_opt = solve_maxis(g).solution.weight;
    if (engine_opt != seed_opt) {
      return "engine " + std::to_string(engine_opt) + " != seed " +
             std::to_string(seed_opt);
    }
    return std::nullopt;
  };
  const auto failure = testing::check_seeds(prop, 1234, 60, 14);
  EXPECT_FALSE(failure.has_value()) << failure->describe();
}

TEST(SolverEngine, KernelAblationAgrees) {
  Rng rng(7);
  for (int it = 0; it < 30; ++it) {
    const graph::Graph g =
        random_weighted(rng, 2 + rng.below(30), 0.15, 5);
    EngineOptions off;
    off.kernelize = false;
    const EngineResult with = solve_maxis(g);
    const EngineResult without = solve_maxis(g, off);
    EXPECT_EQ(with.solution.weight, without.solution.weight);
    EXPECT_EQ(without.kernel.decisions(), 0u);
    EXPECT_EQ(without.kernel_nodes, g.num_nodes());
  }
}

// -------------------------------------------------------------- edge cases --

TEST(SolverEngine, EmptyAndTrivialGraphs) {
  const EngineResult empty = solve_maxis(graph::Graph(0));
  EXPECT_EQ(empty.solution.weight, 0);
  EXPECT_TRUE(empty.solution.nodes.empty());

  graph::Graph one(1);
  one.set_weight(0, 9);
  EXPECT_EQ(solve_maxis(one).solution.weight, 9);

  // Zero-weight vertices are legal (nonnegative contract).
  graph::Graph zeros(3, /*default_weight=*/0);
  zeros.add_edge(0, 1);
  EXPECT_EQ(solve_maxis(zeros).solution.weight, 0);
}

TEST(SolverEngine, DisconnectedComponentsCompose) {
  // Two triangles and an isolated vertex: OPT is the per-component sum.
  graph::Graph g(7);
  for (graph::NodeId v = 0; v < 7; ++v) {
    g.set_weight(v, static_cast<graph::Weight>(1 + v));
  }
  for (graph::NodeId b : {0u, 3u}) {
    g.add_edge(b, b + 1);
    g.add_edge(b + 1, b + 2);
    g.add_edge(b, b + 2);
  }
  EngineOptions opts;
  opts.kernelize = false;  // keep the triangles (simplicial rule would
                           // solve them outright)
  const EngineResult res = solve_maxis(g, opts);
  EXPECT_EQ(res.components, 3u);
  EXPECT_EQ(res.solution.weight, 3 + 6 + 7);
}

TEST(SolverEngine, NegativeWeightRejected) {
  graph::Graph g(2);
  g.set_weight(0, -2);
  g.add_edge(0, 1);
  EXPECT_THROW(solve_maxis(g), InvariantError);
}

TEST(SolverEngine, OptionValidation) {
  const graph::Graph g = gadget(false, 0);
  EngineOptions bad;
  bad.threads = 0;
  EXPECT_THROW(solve_maxis(g, bad), InvariantError);
  bad = {};
  bad.fanout = 0;
  EXPECT_THROW(solve_maxis(g, bad), InvariantError);
}

// ------------------------------------------------------------- deadlines --

TEST(SolverEngine, CancelledDeadlineReturnsCertifiedIncumbent) {
  // A solve whose deadline already fired still returns a *verified*
  // independent set (the warm-start incumbent at worst), flagged
  // approximate — cancellation decides when to stop, never what the
  // answer is.
  const graph::Graph g = gadget(false, 0);
  const Weight opt = solve_maxis(g).solution.weight;

  DeadlineToken cancelled;
  cancelled.cancel();
  EngineOptions opts;
  opts.deadline = &cancelled;
  const EngineResult partial = solve_maxis(g, opts);
  EXPECT_TRUE(partial.approximate);
  EXPECT_LE(partial.solution.weight, opt);
  // Certified: independent on the original graph, weight consistent.
  Weight sum = 0;
  for (std::size_t i = 0; i < partial.solution.nodes.size(); ++i) {
    sum += g.weight(partial.solution.nodes[i]);
    for (std::size_t j = i + 1; j < partial.solution.nodes.size(); ++j) {
      EXPECT_FALSE(
          g.has_edge(partial.solution.nodes[i], partial.solution.nodes[j]));
    }
  }
  EXPECT_EQ(sum, partial.solution.weight);
}

TEST(SolverEngine, GenerousDeadlineDoesNotPerturbResults) {
  // An armed deadline that never fires stays inside the bit-identity
  // contract: same solution, weight, and search_nodes as no deadline.
  const graph::Graph g = gadget(true, 1);
  const EngineResult base = solve_maxis(g, fanout_options(1));
  DeadlineToken generous(std::chrono::minutes(10));
  for (const std::size_t threads : {1u, 8u}) {
    EngineOptions opts = fanout_options(threads);
    opts.deadline = &generous;
    const EngineResult got = solve_maxis(g, opts);
    EXPECT_FALSE(got.approximate);
    EXPECT_EQ(got.solution.nodes, base.solution.nodes);
    EXPECT_EQ(got.solution.weight, base.solution.weight);
    EXPECT_EQ(got.search_nodes, base.search_nodes);
  }
}

TEST(SolverEngine, SearchBudgetEnforced) {
  // A budget below the probe threshold skips the probe and must surface as
  // the job search's throwing exhaustion, same contract as the seed solver.
  const graph::Graph g = gadget(false, 0);
  EngineOptions tiny;
  tiny.max_search_nodes = 4;
  EXPECT_THROW(solve_maxis(g, tiny), InvariantError);
}

}  // namespace
}  // namespace congestlb::maxis
