// Scalar-vs-SIMD bit-identity suite for the runtime dispatch layer
// (support/simd.hpp).
//
// Three layers of evidence, each with seed-replay shrinking via
// tests/property_harness.hpp:
//
//   1. kernel-level: every dispatch-table entry of every supported level is
//      compared against the scalar reference (support/simd_detail.hpp) on
//      random inputs — word rows straddling the kSimdDispatchWords
//      threshold and vector-register boundaries, random pack/unpack field
//      sequences, random accounting arrays;
//   2. engine-level: the same random (topology, faults, flood plan)
//      instance is executed under every supported level via ScopedLevel and
//      every observable (RunStats, outputs, per-edge bits, full transcript
//      with payload bytes) must match the scalar run, serial and parallel;
//   3. solver-level: solve_maxis on random graphs — and on a
//      union-of-cliques instance wide enough to route word kernels through
//      the dispatch table — must return identical solutions, weights, and
//      search_nodes under every level.
//
// Plus unit tests for the edge-tiled shard partition that replaced the
// equal-node split in the parallel round executor.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "congest/algorithms/luby_mis.hpp"
#include "congest/message.hpp"
#include "congest/network.hpp"
#include "congest/topology.hpp"
#include "graph/generators.hpp"
#include "maxis/bitset.hpp"
#include "maxis/parallel_bnb.hpp"
#include "property_harness.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"
#include "support/simd_detail.hpp"

namespace congestlb {
namespace {

using simd::Kernels;
using simd::Level;
using simd::ScopedLevel;

/// Every level this build + CPU can actually run. Scalar is always first,
/// so [1..] are the vector levels under test; on a scalar-only machine the
/// comparisons below degenerate to scalar-vs-scalar and still pass.
std::vector<Level> supported_levels() {
  std::vector<Level> out;
  for (Level level : {Level::kScalar, Level::kAvx2, Level::kAvx512}) {
    if (simd::level_supported(level)) out.push_back(level);
  }
  return out;
}

TEST(SimdDispatch, ScalarAlwaysSupported) {
  EXPECT_TRUE(simd::level_compiled(Level::kScalar));
  EXPECT_TRUE(simd::level_supported(Level::kScalar));
  ASSERT_NE(simd::kernels_for(Level::kScalar), nullptr);
  EXPECT_EQ(simd::kernels_for(Level::kScalar)->level, Level::kScalar);
}

TEST(SimdDispatch, TablesMatchTheirLevel) {
  for (Level level : supported_levels()) {
    const Kernels* k = simd::kernels_for(level);
    ASSERT_NE(k, nullptr) << simd::level_name(level);
    EXPECT_EQ(k->level, level);
  }
  EXPECT_TRUE(simd::level_supported(simd::best_level()));
}

TEST(SimdDispatch, UnsupportedLevelYieldsNull) {
  for (Level level : {Level::kAvx2, Level::kAvx512}) {
    if (!simd::level_supported(level)) {
      EXPECT_EQ(simd::kernels_for(level), nullptr);
    }
  }
}

TEST(SimdDispatch, ScopedLevelForcesAndRestores) {
  const Level before = simd::active_level();
  for (Level level : supported_levels()) {
    {
      ScopedLevel forced(level);
      EXPECT_EQ(simd::active_level(), level);
      EXPECT_EQ(simd::kernels().level, level);
    }
    EXPECT_EQ(simd::active_level(), before);
  }
}

// ------------------------------------------------------ kernel properties --

/// Random word row mixing dense, sparse, and all-zero stretches, so
/// first_bit hits both early-exit and full-scan paths.
std::vector<std::uint64_t> random_row(Rng& rng, std::size_t nw) {
  std::vector<std::uint64_t> row(nw);
  for (auto& w : row) {
    switch (rng.below(4)) {
      case 0: w = 0; break;
      case 1: w = rng.next(); break;
      case 2: w = rng.next() & rng.next() & rng.next(); break;  // sparse
      default: w = rng.next() | rng.next(); break;              // dense
    }
  }
  return row;
}

std::string row_mismatch(const char* kernel, Level level, std::size_t nw,
                         std::string detail = {}) {
  return std::string(kernel) + " diverges from scalar at level=" +
         simd::level_name(level) + " nw=" + std::to_string(nw) +
         (detail.empty() ? "" : " (" + detail + ")");
}

/// Word-row kernels (and/andnot incl. aliasing, popcounts, first_bit)
/// against the scalar reference. Row lengths sweep 0..~4 registers so both
/// main loops and masked/scalar tails are exercised.
TEST(SimdKernelProperty, WordRowKernelsMatchScalar) {
  const auto levels = supported_levels();
  const testing::Property prop = [&](std::uint64_t seed,
                                     std::size_t size) -> std::optional<std::string> {
    Rng rng(seed);
    const std::size_t nw = rng.below(4 * size + 2);
    const auto a = random_row(rng, nw);
    const auto b = random_row(rng, nw);

    std::vector<std::uint64_t> ref_and(nw), ref_andnot(nw);
    simd::detail::scalar_and_rows(ref_and.data(), a.data(), b.data(), nw);
    simd::detail::scalar_and_not_rows(ref_andnot.data(), a.data(), b.data(),
                                      nw);
    const std::size_t ref_pop = simd::detail::scalar_popcount(a.data(), nw);
    const std::size_t ref_and_pop =
        simd::detail::scalar_and_popcount(a.data(), b.data(), nw);
    const std::size_t none = 64 * nw + 7;
    const std::size_t ref_first =
        simd::detail::scalar_first_bit(a.data(), nw, none);

    for (Level level : levels) {
      const Kernels& k = *simd::kernels_for(level);
      std::vector<std::uint64_t> got(nw);
      k.and_rows(got.data(), a.data(), b.data(), nw);
      if (got != ref_and) return row_mismatch("and_rows", level, nw);
      k.and_not_rows(got.data(), a.data(), b.data(), nw);
      if (got != ref_andnot) return row_mismatch("and_not_rows", level, nw);
      // Aliased forms (dst == a), the solver's dominant call shape.
      got = a;
      k.and_rows(got.data(), got.data(), b.data(), nw);
      if (got != ref_and) return row_mismatch("and_rows", level, nw, "aliased");
      got = a;
      k.and_not_rows(got.data(), got.data(), b.data(), nw);
      if (got != ref_andnot) {
        return row_mismatch("and_not_rows", level, nw, "aliased");
      }
      if (k.popcount(a.data(), nw) != ref_pop) {
        return row_mismatch("popcount", level, nw);
      }
      if (k.and_popcount(a.data(), b.data(), nw) != ref_and_pop) {
        return row_mismatch("and_popcount", level, nw);
      }
      if (k.first_bit(a.data(), nw, none) != ref_first) {
        return row_mismatch("first_bit", level, nw);
      }
      // All-zero row: every level must report `none`.
      const std::vector<std::uint64_t> zeros(nw, 0);
      if (k.first_bit(zeros.data(), nw, none) != none) {
        return row_mismatch("first_bit", level, nw, "all-zero row");
      }
    }
    return std::nullopt;
  };
  auto failure = testing::check_seeds(prop, 0x51D0'0001, 60, 12);
  EXPECT_FALSE(failure.has_value()) << failure->describe();
}

/// The words:: wrappers must agree with the raw scalar reference on both
/// sides of the kSimdDispatchWords threshold, whatever table is active.
TEST(SimdKernelProperty, WordsNamespaceMatchesScalarAcrossThreshold) {
  const testing::Property prop = [&](std::uint64_t seed,
                                     std::size_t size) -> std::optional<std::string> {
    Rng rng(seed);
    // Straddle the dispatch threshold: sizes from 1 below to a register
    // above, plus whatever `size` adds.
    const std::size_t nw =
        maxis::words::kSimdDispatchWords - 1 + rng.below(size + 10);
    const auto a = random_row(rng, nw);
    const auto b = random_row(rng, nw);
    for (Level level : supported_levels()) {
      ScopedLevel forced(level);
      std::vector<std::uint64_t> got(nw), ref(nw);
      maxis::words::and_rows(got.data(), a.data(), b.data(), nw);
      simd::detail::scalar_and_rows(ref.data(), a.data(), b.data(), nw);
      if (got != ref) return row_mismatch("words::and_rows", level, nw);
      maxis::words::and_not_rows(got.data(), a.data(), b.data(), nw);
      simd::detail::scalar_and_not_rows(ref.data(), a.data(), b.data(), nw);
      if (got != ref) return row_mismatch("words::and_not_rows", level, nw);
      if (maxis::words::popcount(a.data(), nw) !=
          simd::detail::scalar_popcount(a.data(), nw)) {
        return row_mismatch("words::popcount", level, nw);
      }
      if (maxis::words::and_popcount(a.data(), b.data(), nw) !=
          simd::detail::scalar_and_popcount(a.data(), b.data(), nw)) {
        return row_mismatch("words::and_popcount", level, nw);
      }
      if (maxis::words::first_bit(a.data(), nw, 64 * nw) !=
          simd::detail::scalar_first_bit(a.data(), nw, 64 * nw)) {
        return row_mismatch("words::first_bit", level, nw);
      }
    }
    return std::nullopt;
  };
  auto failure = testing::check_seeds(prop, 0x51D0'0002, 40, 12);
  EXPECT_FALSE(failure.has_value()) << failure->describe();
}

/// pack_bits/unpack_bits: a random field sequence packed through each
/// level's kernel must produce a byte-identical buffer to the scalar
/// byte-loop reference, and every level must read back every field from
/// every buffer.
TEST(SimdKernelProperty, PackUnpackMatchesScalar) {
  const auto levels = supported_levels();
  const testing::Property prop = [&](std::uint64_t seed,
                                     std::size_t size) -> std::optional<std::string> {
    Rng rng(seed);
    const std::size_t fields = 1 + rng.below(2 * size + 1);
    std::vector<std::pair<std::uint64_t, std::size_t>> layout;
    std::size_t total_bits = 0;
    for (std::size_t f = 0; f < fields; ++f) {
      const std::size_t width = 1 + rng.below(64);
      const std::uint64_t value =
          width == 64 ? rng.next() : rng.below(1ULL << width);
      layout.emplace_back(value, width);
      total_bits += width;
    }
    const std::size_t bytes = (total_bits + 7) / 8 + simd::kPackSlackBytes;

    std::vector<std::byte> ref(bytes, std::byte{0});
    std::size_t pos = 0;
    for (auto [value, width] : layout) {
      simd::detail::scalar_pack_bits(ref.data(), pos, value, width);
      pos += width;
    }

    for (Level level : levels) {
      const Kernels& k = *simd::kernels_for(level);
      std::vector<std::byte> got(bytes, std::byte{0});
      pos = 0;
      for (auto [value, width] : layout) {
        k.pack_bits(got.data(), pos, value, width);
        pos += width;
      }
      if (got != ref) {
        return row_mismatch("pack_bits", level, fields, "buffer bytes");
      }
      pos = 0;
      for (auto [value, width] : layout) {
        if (k.unpack_bits(ref.data(), pos, width) != value) {
          return row_mismatch("unpack_bits", level, fields,
                              "field at bit " + std::to_string(pos));
        }
        pos += width;
      }
    }
    return std::nullopt;
  };
  auto failure = testing::check_seeds(prop, 0x51D0'0003, 80, 10);
  EXPECT_FALSE(failure.has_value()) << failure->describe();
}

/// Delivery-accounting kernels on arrays with realistic zero density
/// (in_kind_ bytes are mostly 0/1, in_bits_ values small).
TEST(SimdKernelProperty, AccountingKernelsMatchScalar) {
  const auto levels = supported_levels();
  const testing::Property prop = [&](std::uint64_t seed,
                                     std::size_t size) -> std::optional<std::string> {
    Rng rng(seed);
    const std::size_t n = rng.below(70 * size + 2);
    std::vector<std::uint8_t> kinds(n);
    std::vector<std::uint32_t> bits(n);
    for (std::size_t i = 0; i < n; ++i) {
      kinds[i] = rng.chance(0.4) ? static_cast<std::uint8_t>(1 + rng.below(3))
                                 : 0;
      bits[i] = static_cast<std::uint32_t>(rng.below(1u << 20));
    }
    const std::size_t ref_nz =
        simd::detail::scalar_count_nonzero_u8(kinds.data(), n);
    const std::uint64_t ref_sum = simd::detail::scalar_sum_u32(bits.data(), n);
    std::vector<std::uint64_t> ref_acc(n);
    for (std::size_t i = 0; i < n; ++i) ref_acc[i] = rng.next() >> 32;
    std::vector<std::uint64_t> acc_scalar = ref_acc;
    simd::detail::scalar_accumulate_u32_to_u64(acc_scalar.data(), bits.data(),
                                               n);
    for (Level level : levels) {
      const Kernels& k = *simd::kernels_for(level);
      if (k.count_nonzero_u8(kinds.data(), n) != ref_nz) {
        return row_mismatch("count_nonzero_u8", level, n);
      }
      if (k.sum_u32(bits.data(), n) != ref_sum) {
        return row_mismatch("sum_u32", level, n);
      }
      std::vector<std::uint64_t> acc = ref_acc;
      k.accumulate_u32_to_u64(acc.data(), bits.data(), n);
      if (acc != acc_scalar) {
        return row_mismatch("accumulate_u32_to_u64", level, n);
      }
    }
    return std::nullopt;
  };
  auto failure = testing::check_seeds(prop, 0x51D0'0004, 50, 12);
  EXPECT_FALSE(failure.has_value()) << failure->describe();
}

// -------------------------------------------------- engine bit-identity ---

/// Floods node id for a fixed number of rounds (the determinism-suite
/// workload): exercises MessageWriter::put, bulk delivery accounting, and
/// the faulted path when a FaultConfig is active.
class FloodProgram final : public congest::NodeProgram {
 public:
  FloodProgram(std::size_t rounds_to_run, std::size_t payload_bits)
      : rounds_to_run_(rounds_to_run), payload_bits_(payload_bits) {}

  void round(const congest::NodeInfo& info, const congest::Inbox& inbox,
             congest::Outbox& outbox, Rng&) override {
    for (const auto& m : inbox) {
      if (m) ++heard_;
    }
    ++rounds_seen_;
    if (rounds_seen_ > rounds_to_run_ || info.neighbors.empty()) return;
    congest::MessageWriter w;
    std::size_t bits = payload_bits_;
    while (bits > 0) {
      const std::size_t width = bits < 16 ? bits : 16;
      w.put(info.id & ((1ULL << width) - 1), width);
      bits -= width;
    }
    outbox.send_all(std::move(w).finish());
  }
  bool finished() const override { return rounds_seen_ > rounds_to_run_; }
  std::int64_t output() const override {
    return static_cast<std::int64_t>(heard_);
  }

 private:
  std::size_t rounds_to_run_;
  std::size_t payload_bits_;
  std::size_t rounds_seen_ = 0;
  std::size_t heard_ = 0;
};

/// Everything observable about one engine run, payload bytes included.
struct EngineRecord {
  congest::RunStats stats;
  std::vector<std::int64_t> outputs;
  std::vector<std::uint64_t> edge_bits;
  std::string transcript;

  friend bool operator==(const EngineRecord&, const EngineRecord&) = default;
};

EngineRecord run_engine(const graph::Graph& g,
                        const congest::ProgramFactory& factory,
                        congest::NetworkConfig cfg) {
  EngineRecord rec;
  std::ostringstream ts;
  cfg.on_message = [&ts](std::size_t round, graph::NodeId from,
                         graph::NodeId to, const congest::Message& msg) {
    ts << round << ':' << from << '>' << to << '#' << msg.bits << '[';
    for (std::byte b : msg.data) ts << static_cast<unsigned>(b) << ',';
    ts << ']';
  };
  congest::Network net(g, factory, cfg);
  rec.stats = net.run();
  rec.outputs = net.outputs();
  for (auto [u, v] : graph::edge_list(g)) {
    rec.edge_bits.push_back(net.bits_on_edge(u, v));
  }
  rec.transcript = ts.str();
  return rec;
}

/// Random (topology, faults, flood plan): the run must be bit-identical
/// under every SIMD level, serial and parallel. The scalar serial run is
/// the reference — this subsumes pack/unpack and the bulk delivery fast
/// path end to end.
TEST(SimdEngineBitIdentity, FloodRunsMatchScalarAcrossLevels) {
  const auto levels = supported_levels();
  const testing::Property prop = [&](std::uint64_t seed,
                                     std::size_t size) -> std::optional<std::string> {
    Rng rng(seed);
    const auto g = testing::random_topology(rng, 4 * size);
    const auto plan = testing::random_program_plan(rng, size);
    congest::NetworkConfig cfg;
    cfg.seed = rng.next();
    cfg.faults = testing::random_fault_config(rng, size);
    cfg.max_rounds = 64;
    // Auto bandwidth is O(log n) bits and the plan floods up to 24; widen
    // the edges so the property tests packing, not the bandwidth check.
    cfg.bits_per_edge = 32;
    const congest::ProgramFactory factory =
        [&plan](graph::NodeId, const congest::NodeInfo&) {
          return std::make_unique<FloodProgram>(plan.flood_rounds,
                                                plan.payload_bits);
        };

    EngineRecord reference;
    {
      ScopedLevel forced(Level::kScalar);
      reference = run_engine(g, factory, cfg);
    }
    for (Level level : levels) {
      for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        ScopedLevel forced(level);
        congest::NetworkConfig run_cfg = cfg;
        run_cfg.num_threads = threads;
        const EngineRecord got = run_engine(g, factory, run_cfg);
        if (!(got == reference)) {
          return std::string("engine run diverges from scalar serial at "
                             "level=") +
                 simd::level_name(level) +
                 " threads=" + std::to_string(threads);
        }
      }
    }
    return std::nullopt;
  };
  auto failure = testing::check_seeds(prop, 0x51D0'0005, 12, 8);
  EXPECT_FALSE(failure.has_value()) << failure->describe();
}

/// Same bit-identity contract for Luby MIS (randomized rounds, real
/// termination logic) on random fault-free topologies.
TEST(SimdEngineBitIdentity, LubyMisMatchesScalarAcrossLevels) {
  const auto levels = supported_levels();
  const testing::Property prop = [&](std::uint64_t seed,
                                     std::size_t size) -> std::optional<std::string> {
    Rng rng(seed);
    const auto g = testing::random_topology(rng, 4 * size);
    congest::NetworkConfig cfg;
    cfg.seed = rng.next();
    const auto factory = congest::luby_mis_factory();

    EngineRecord reference;
    {
      ScopedLevel forced(Level::kScalar);
      reference = run_engine(g, factory, cfg);
    }
    for (Level level : levels) {
      for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        ScopedLevel forced(level);
        congest::NetworkConfig run_cfg = cfg;
        run_cfg.num_threads = threads;
        const EngineRecord got = run_engine(g, factory, run_cfg);
        if (!(got == reference)) {
          return std::string("Luby run diverges from scalar serial at "
                             "level=") +
                 simd::level_name(level) +
                 " threads=" + std::to_string(threads);
        }
      }
    }
    return std::nullopt;
  };
  auto failure = testing::check_seeds(prop, 0x51D0'0006, 10, 8);
  EXPECT_FALSE(failure.has_value()) << failure->describe();
}

// -------------------------------------------------- solver bit-identity ---

std::string engine_result_key(const maxis::EngineResult& r) {
  std::ostringstream os;
  os << r.solution.weight << '|' << r.search_nodes << '|' << r.components
     << '|' << r.jobs << '|' << r.kernel_nodes << '|';
  for (auto v : r.solution.nodes) os << v << ',';
  return os.str();
}

/// solve_maxis on random weighted graphs: solution, weight, search_nodes,
/// and kernel/job structure identical under every level and thread count.
TEST(SimdSolverBitIdentity, RandomGraphsMatchScalarAcrossLevels) {
  const auto levels = supported_levels();
  const testing::Property prop = [&](std::uint64_t seed,
                                     std::size_t size) -> std::optional<std::string> {
    Rng rng(seed);
    const auto g =
        graph::gnp_random(rng, 2 + rng.below(6 * size + 1),
                          0.05 + rng.uniform() * 0.3, /*max_weight=*/9);
    maxis::EngineOptions opts;
    std::string reference;
    {
      ScopedLevel forced(Level::kScalar);
      reference = engine_result_key(maxis::solve_maxis(g, opts));
    }
    for (Level level : levels) {
      for (std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
        ScopedLevel forced(level);
        maxis::EngineOptions run_opts = opts;
        run_opts.threads = threads;
        const std::string got =
            engine_result_key(maxis::solve_maxis(g, run_opts));
        if (got != reference) {
          return std::string("solve_maxis diverges from scalar at level=") +
                 simd::level_name(level) +
                 " threads=" + std::to_string(threads) + "\n  scalar: " +
                 reference + "\n  got:    " + got;
        }
      }
    }
    return std::nullopt;
  };
  auto failure = testing::check_seeds(prop, 0x51D0'0007, 8, 8);
  EXPECT_FALSE(failure.has_value()) << failure->describe();
}

/// A union-of-cliques instance wide enough (n = 540 -> 9-word rows) that
/// the solver's word kernels actually route through the dispatch table —
/// the small random graphs above stay below kSimdDispatchWords. OPT is the
/// per-clique weight maxima, checked exactly.
TEST(SimdSolverBitIdentity, WideUnionOfCliquesMatchesScalarAcrossLevels) {
  constexpr std::size_t kCliques = 60;
  constexpr std::size_t kCliqueSize = 9;
  Rng rng(0x51D0'0008);
  graph::Graph g(kCliques * kCliqueSize);
  graph::Weight expected_opt = 0;
  for (std::size_t c = 0; c < kCliques; ++c) {
    graph::Weight best = 0;
    for (std::size_t i = 0; i < kCliqueSize; ++i) {
      const graph::NodeId u = c * kCliqueSize + i;
      const graph::Weight w = 1 + static_cast<graph::Weight>(rng.below(50));
      g.set_weight(u, w);
      best = best > w ? best : w;
      for (std::size_t j = i + 1; j < kCliqueSize; ++j) {
        g.add_edge(u, c * kCliqueSize + j);
      }
    }
    expected_opt += best;
  }
  ASSERT_GE(maxis::words::row_words(g.num_nodes()),
            maxis::words::kSimdDispatchWords);

  std::string reference;
  {
    ScopedLevel forced(Level::kScalar);
    const auto r = maxis::solve_maxis(g);
    EXPECT_EQ(r.solution.weight, expected_opt);
    reference = engine_result_key(r);
  }
  for (Level level : supported_levels()) {
    ScopedLevel forced(level);
    const auto r = maxis::solve_maxis(g);
    EXPECT_EQ(engine_result_key(r), reference) << simd::level_name(level);
  }
}

// --------------------------------------------------- edge-tiled sharding --

/// The pre-SIMD equal-node split, kept here as the comparison baseline for
/// the load-balance test.
std::vector<std::pair<graph::NodeId, graph::NodeId>> node_sharded(
    std::size_t n, std::size_t num_shards) {
  std::vector<std::pair<graph::NodeId, graph::NodeId>> out;
  const std::size_t base = n / num_shards;
  const std::size_t extra = n % num_shards;
  graph::NodeId begin = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    const graph::NodeId end =
        begin + static_cast<graph::NodeId>(base + (s < extra ? 1 : 0));
    out.emplace_back(begin, end);
    begin = end;
  }
  return out;
}

std::size_t max_shard_slots(
    const congest::Topology& topo,
    const std::vector<std::pair<graph::NodeId, graph::NodeId>>& shards) {
  std::size_t worst = 0;
  for (auto [begin, end] : shards) {
    const std::size_t slots = topo.offsets[end] - topo.offsets[begin];
    worst = worst > slots ? worst : slots;
  }
  return worst;
}

/// The star gadget is the worst case for the old equal-node split: the hub
/// drags its whole shard. Edge tiling must give the hub a shard of its own
/// (1023 slots, the per-shard optimum) where node sharding piles 1150 slots
/// into shard 0.
TEST(EdgeTiledShards, StarGadgetBalancesHubShard) {
  const auto g = graph::star_graph(1024);
  const auto topo = congest::Topology::build(g);
  constexpr std::size_t kShards = 8;

  const auto tiled = congest::edge_tiled_shards(*topo, kShards);
  ASSERT_EQ(tiled.size(), kShards);
  // Contiguous cover of [0, n).
  graph::NodeId expect_begin = 0;
  for (auto [begin, end] : tiled) {
    EXPECT_EQ(begin, expect_begin);
    EXPECT_LE(begin, end);
    expect_begin = end;
  }
  EXPECT_EQ(expect_begin, g.num_nodes());

  const std::size_t tiled_worst = max_shard_slots(*topo, tiled);
  const std::size_t node_worst =
      max_shard_slots(*topo, node_sharded(g.num_nodes(), kShards));
  EXPECT_EQ(tiled_worst, 1023u);  // hub degree: one shard owns just the hub
  EXPECT_EQ(node_worst, 1150u);   // hub + 127 leaves land together
  EXPECT_LT(tiled_worst, node_worst);

  // Pure function of (topology, num_shards).
  EXPECT_EQ(tiled, congest::edge_tiled_shards(*topo, kShards));
}

/// Degree-0-heavy graphs: the +1 node cost keeps the compute phase
/// balanced instead of serializing all isolated nodes into one shard.
TEST(EdgeTiledShards, IsolatedNodesSpreadAcrossShards) {
  const graph::Graph g(1000);  // no edges at all
  const auto topo = congest::Topology::build(g);
  const auto tiled = congest::edge_tiled_shards(*topo, 8);
  std::size_t worst_nodes = 0;
  for (auto [begin, end] : tiled) {
    worst_nodes = std::max<std::size_t>(worst_nodes, end - begin);
  }
  EXPECT_LE(worst_nodes, 1000 / 8 + 1);
}

/// Structural invariants on random topologies and shard counts: exact
/// shard count, contiguous cover, determinism, and never worse than the
/// old node split by more than one node's cost.
TEST(EdgeTiledShards, RandomTopologiesContiguousCoverProperty) {
  const testing::Property prop = [&](std::uint64_t seed,
                                     std::size_t size) -> std::optional<std::string> {
    Rng rng(seed);
    const auto g = testing::random_topology(rng, 8 * size);
    const auto topo = congest::Topology::build(g);
    const std::size_t num_shards = 1 + rng.below(2 * size + 2);
    const auto tiled = congest::edge_tiled_shards(*topo, num_shards);
    if (tiled.size() != num_shards) return std::string("wrong shard count");
    graph::NodeId expect_begin = 0;
    for (auto [begin, end] : tiled) {
      if (begin != expect_begin || end < begin) {
        return std::string("shards not a contiguous cover");
      }
      expect_begin = end;
    }
    if (expect_begin != topo->n) return std::string("shards do not cover n");
    if (tiled != congest::edge_tiled_shards(*topo, num_shards)) {
      return std::string("partition not deterministic");
    }
    return std::nullopt;
  };
  auto failure = testing::check_seeds(prop, 0x51D0'0009, 40, 10);
  EXPECT_FALSE(failure.has_value()) << failure->describe();
}

}  // namespace
}  // namespace congestlb
