// Internal to the simd_*.cpp translation units (and the SIMD property
// tests, which compare vector kernels against these references): portable
// scalar kernel implementations, plus the SWAR word-window bit packers the
// vector tables share.

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "support/simd.hpp"

namespace congestlb::simd::detail {

inline void scalar_and_rows(std::uint64_t* dst, const std::uint64_t* a,
                            const std::uint64_t* b, std::size_t nw) {
  for (std::size_t w = 0; w < nw; ++w) dst[w] = a[w] & b[w];
}

inline void scalar_and_not_rows(std::uint64_t* dst, const std::uint64_t* a,
                                const std::uint64_t* b, std::size_t nw) {
  for (std::size_t w = 0; w < nw; ++w) dst[w] = a[w] & ~b[w];
}

inline std::size_t scalar_popcount(const std::uint64_t* row, std::size_t nw) {
  std::size_t c = 0;
  for (std::size_t w = 0; w < nw; ++w) {
    c += static_cast<std::size_t>(__builtin_popcountll(row[w]));
  }
  return c;
}

inline std::size_t scalar_and_popcount(const std::uint64_t* a,
                                       const std::uint64_t* b,
                                       std::size_t nw) {
  std::size_t c = 0;
  for (std::size_t w = 0; w < nw; ++w) {
    c += static_cast<std::size_t>(__builtin_popcountll(a[w] & b[w]));
  }
  return c;
}

inline std::size_t scalar_first_bit(const std::uint64_t* row, std::size_t nw,
                                    std::size_t none) {
  for (std::size_t w = 0; w < nw; ++w) {
    if (row[w]) {
      return w * 64 + static_cast<std::size_t>(__builtin_ctzll(row[w]));
    }
  }
  return none;
}

/// Byte-wise LSB-first append — the layout fuzz_test's bit-by-bit reference
/// checks; the SWAR packer below must produce identical buffers.
inline void scalar_pack_bits(std::byte* bytes, std::size_t bit_pos,
                             std::uint64_t value, std::size_t width) {
  std::size_t byte_i = bit_pos / 8;
  const std::size_t shift = bit_pos % 8;
  bytes[byte_i] |= static_cast<std::byte>((value << shift) & 0xFF);
  for (std::size_t written = 8 - shift; written < width; written += 8) {
    bytes[++byte_i] |= static_cast<std::byte>((value >> written) & 0xFF);
  }
}

inline std::uint64_t scalar_unpack_bits(const std::byte* bytes,
                                        std::size_t bit_pos,
                                        std::size_t width) {
  std::size_t byte_i = bit_pos / 8;
  const std::size_t shift = bit_pos % 8;
  std::uint64_t value = static_cast<std::uint64_t>(bytes[byte_i]) >> shift;
  for (std::size_t got = 8 - shift; got < width; got += 8) {
    value |= static_cast<std::uint64_t>(bytes[++byte_i]) << got;
  }
  if (width < 64) value &= (1ULL << width) - 1;
  return value;
}

inline std::size_t scalar_count_nonzero_u8(const std::uint8_t* p,
                                           std::size_t n) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i) c += p[i] != 0;
  return c;
}

inline std::uint64_t scalar_sum_u32(const std::uint32_t* p, std::size_t n) {
  std::uint64_t s = 0;
  for (std::size_t i = 0; i < n; ++i) s += p[i];
  return s;
}

inline void scalar_accumulate_u32_to_u64(std::uint64_t* acc,
                                         const std::uint32_t* p,
                                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += p[i];
}

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__

/// Word-window packer: one 8-byte store instead of up to nine byte RMWs,
/// plus a spill byte when shift + width > 64. The pack_bits contract (all
/// bits >= bit_pos are zero) means only the *first* byte of the window can
/// hold prior data, so the window is rebuilt from a 1-byte load — a wide
/// load here would partially overlap the previous field's store and stall
/// on failed store-to-load forwarding, which is slower than the byte loop.
/// Requires the Kernels::pack_bits slack contract (kPackSlackBytes
/// readable/writable past the payload). Little-endian only: the window's
/// byte order must match the LSB-first byte layout.
inline void swar_pack_bits(std::byte* bytes, std::size_t bit_pos,
                           std::uint64_t value, std::size_t width) {
  std::byte* p = bytes + bit_pos / 8;
  const std::size_t shift = bit_pos % 8;
  const std::uint64_t window =
      static_cast<std::uint64_t>(p[0]) | (value << shift);
  std::memcpy(p, &window, 8);
  if (shift + width > 64) {
    // The spill byte is entirely past bit_pos, hence zero: plain store.
    p[8] = static_cast<std::byte>(value >> (64 - shift));
  }
}

inline std::uint64_t swar_unpack_bits(const std::byte* bytes,
                                      std::size_t bit_pos, std::size_t width) {
  const std::byte* p = bytes + bit_pos / 8;
  const std::size_t shift = bit_pos % 8;
  std::uint64_t window;
  std::memcpy(&window, p, 8);
  std::uint64_t value = window >> shift;
  if (shift + width > 64) {
    value |= static_cast<std::uint64_t>(p[8]) << (64 - shift);
  }
  if (width < 64) value &= (1ULL << width) - 1;
  return value;
}

#endif  // little-endian

}  // namespace congestlb::simd::detail
