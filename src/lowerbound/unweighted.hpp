// Remark 1: converting the weighted hard instances to unweighted graphs.
//
// Every node v of weight w > 1 is replaced by an independent set I(v) of w
// unit-weight nodes. An edge {u, v} becomes: u—all of I(v) when u has unit
// weight, and the complete bipartite graph I(u) x I(v) when both are heavy.
// Any IS of the weighted graph maps to an equal-size IS of the expansion and
// vice versa (an optimal unweighted IS takes all of I(v) or none), so OPT is
// preserved exactly while n grows to Theta(k * ell) — costing the round
// bound one log factor, exactly as Remark 1 states.

#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace congestlb::lb {

struct UnweightedExpansion {
  graph::Graph graph;  ///< all weights 1
  /// copies_of[v] = the ids of I(v) in `graph` (singleton for unit nodes).
  std::vector<std::vector<graph::NodeId>> copies_of;

  /// Map an IS of the weighted graph to the corresponding IS here (take all
  /// copies of every member).
  std::vector<graph::NodeId> expand_set(
      const std::vector<graph::NodeId>& weighted_set) const;
};

/// Expand a weighted graph per Remark 1. Requires all weights >= 1.
UnweightedExpansion to_unweighted(const graph::Graph& g);

}  // namespace congestlb::lb
