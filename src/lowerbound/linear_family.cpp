#include "lowerbound/linear_family.hpp"

#include <algorithm>
#include <cmath>

#include "support/expect.hpp"

namespace congestlb::lb {

LinearConstruction::LinearConstruction(GadgetParams params, std::size_t t)
    : LinearConstruction(std::move(params), t, BuildOptions{}) {}

LinearConstruction::LinearConstruction(GadgetParams params, std::size_t t,
                                       const BuildOptions& opts)
    : params_(std::move(params)), t_(t), base_(params_), g_(0) {
  CLB_EXPECT(t_ >= 2, "linear construction: t >= 2");
  const std::size_t npc = params_.nodes_per_copy();
  const std::size_t p = params_.clique_size();
  const std::size_t m_pos = params_.num_positions();
  const std::size_t k = params_.k;
  g_ = graph::Graph(t_ * npc);
  g_.set_implicit_block_threshold(opts.implicit_threshold);

  if (!opts.skip_labels) {
    for (std::size_t i = 0; i < t_; ++i) {
      const NodeId offset = i * npc;
      for (NodeId local = 0; local < npc; ++local) {
        g_.set_label(offset + local,
                     base_.graph().label(local) + "^" + std::to_string(i + 1));
      }
    }
  }

  // Per-copy structure: the clique A^i, the code cliques C^i_h, and the
  // codeword star edges v^i_m <-> Code^i \ Code^i_m. All are contiguous id
  // ranges, so the cliques become blocks above the threshold; the stars are
  // the irreducibly explicit part (k * (ell+alpha) * (p-1) per copy).
  std::vector<std::pair<NodeId, NodeId>> stars;
  stars.reserve(t_ * k * m_pos * (p - 1));
  for (std::size_t i = 0; i < t_; ++i) {
    std::vector<NodeId> a(k);
    for (std::size_t m = 0; m < k; ++m) a[m] = a_node(i, m);
    g_.add_clique(a);
    for (std::size_t h = 0; h < m_pos; ++h) {
      g_.add_clique(clique_nodes(i, h));
    }
    for (std::size_t m = 0; m < k; ++m) {
      const codes::Word& w = base_.codeword(m);
      for (std::size_t h = 0; h < m_pos; ++h) {
        for (std::size_t r = 0; r < p; ++r) {
          if (r != w[h]) stars.emplace_back(a_node(i, m), code_node(i, h, r));
        }
      }
    }
  }
  g_.reserve_edges(stars.size());
  g_.add_edges(stars);

  // Inter-copy connections (Figure 2): for each position h, all edges
  // between C^i_h and C^j_h (i != j) except the natural perfect matching —
  // exactly one anti-matching grid over rows = copies, columns = symbols,
  // covering every copy pair at once (block count stays ell+alpha, not
  // C(t,2) * (ell+alpha)).
  for (std::size_t h = 0; h < m_pos; ++h) {
    g_.add_anti_matching_grid(static_cast<NodeId>(k + h * p), npc, t_, p);
  }
}

LinearConstruction::LinearConstruction(GadgetParams params, std::size_t t,
                                       graph::Graph cached_fixed)
    : params_(std::move(params)),
      t_(t),
      base_(params_),
      g_(std::move(cached_fixed)) {
  CLB_EXPECT(t_ >= 2, "linear construction: t >= 2");
  CLB_EXPECT(g_.num_nodes() == t_ * params_.nodes_per_copy(),
             "cached linear construction: node count mismatch");
  const std::size_t expected_edges =
      t_ * base_.graph().num_edges() + cut_size();
  CLB_EXPECT(g_.num_edges() == expected_edges,
             "cached linear construction: edge count mismatch");
}

graph::Graph LinearConstruction::instantiate(
    const comm::PromiseInstance& inst) const {
  comm::validate(inst);
  CLB_EXPECT(inst.k == params_.k, "instantiate: instance k mismatch");
  CLB_EXPECT(inst.t == t_, "instantiate: instance t mismatch");
  return instantiate_raw(inst.strings);
}

graph::Graph LinearConstruction::instantiate_raw(
    const std::vector<std::vector<std::uint8_t>>& strings) const {
  CLB_EXPECT(strings.size() == t_, "instantiate_raw: wrong player count");
  graph::Graph gx = g_;
  for (std::size_t i = 0; i < t_; ++i) {
    CLB_EXPECT(strings[i].size() == params_.k,
               "instantiate_raw: wrong string length");
    for (std::size_t m = 0; m < params_.k; ++m) {
      CLB_EXPECT(strings[i][m] <= 1, "instantiate_raw: non-binary entry");
      if (strings[i][m]) {
        gx.set_weight(a_node(i, m), static_cast<graph::Weight>(params_.ell));
      }
    }
  }
  return gx;
}

NodeId LinearConstruction::a_node(std::size_t i, std::size_t m) const {
  CLB_EXPECT(i < t_, "linear construction: player index out of range");
  return i * params_.nodes_per_copy() + base_.a_node(m);
}

NodeId LinearConstruction::code_node(std::size_t i, std::size_t h,
                                     std::size_t r) const {
  CLB_EXPECT(i < t_, "linear construction: player index out of range");
  return i * params_.nodes_per_copy() + base_.code_node(h, r);
}

std::vector<NodeId> LinearConstruction::codeword_nodes(std::size_t i,
                                                       std::size_t m) const {
  CLB_EXPECT(i < t_, "linear construction: player index out of range");
  std::vector<NodeId> out = base_.codeword_nodes(m);
  for (NodeId& v : out) v += i * params_.nodes_per_copy();
  return out;
}

std::vector<NodeId> LinearConstruction::clique_nodes(std::size_t i,
                                                     std::size_t h) const {
  CLB_EXPECT(i < t_, "linear construction: player index out of range");
  std::vector<NodeId> out = base_.clique_nodes(h);
  for (NodeId& v : out) v += i * params_.nodes_per_copy();
  return out;
}

std::pair<NodeId, NodeId> LinearConstruction::partition_range(
    std::size_t i) const {
  CLB_EXPECT(i < t_, "linear construction: player index out of range");
  const std::size_t npc = params_.nodes_per_copy();
  return {i * npc, (i + 1) * npc};
}

std::vector<NodeId> LinearConstruction::partition(std::size_t i) const {
  auto [lo, hi] = partition_range(i);
  std::vector<NodeId> out;
  out.reserve(hi - lo);
  for (NodeId v = lo; v < hi; ++v) out.push_back(v);
  return out;
}

std::size_t LinearConstruction::owner(NodeId v) const {
  CLB_EXPECT(v < num_nodes(), "linear construction: node out of range");
  return v / params_.nodes_per_copy();
}

std::vector<std::pair<NodeId, NodeId>> LinearConstruction::cut_edges() const {
  std::vector<std::pair<NodeId, NodeId>> cut;
  const auto consider = [&](NodeId u, NodeId v) {
    if (owner(u) != owner(v)) cut.emplace_back(u, v);
  };
  if (!g_.has_implicit_blocks()) {
    for (auto [u, v] : graph::edge_list(g_)) consider(u, v);
    return cut;
  }
  for (NodeId u = 0; u < g_.num_nodes(); ++u) {
    for (NodeId v : g_.explicit_neighbors(u)) {
      if (u < v) consider(u, v);
    }
  }
  for (const auto& b : g_.implicit_blocks()) b.for_each_edge(consider);
  std::sort(cut.begin(), cut.end());
  return cut;
}

std::size_t LinearConstruction::cut_size() const {
  const std::size_t p = params_.clique_size();
  return t_ * (t_ - 1) / 2 * params_.num_positions() * p * (p - 1);
}

std::vector<NodeId> LinearConstruction::yes_witness(std::size_t m) const {
  std::vector<NodeId> out;
  out.reserve(t_ * (1 + params_.num_positions()));
  for (std::size_t i = 0; i < t_; ++i) {
    out.push_back(a_node(i, m));
    const auto cw = codeword_nodes(i, m);
    out.insert(out.end(), cw.begin(), cw.end());
  }
  return out;
}

graph::Weight LinearConstruction::yes_weight() const {
  return linear_yes_weight_formula(params_, t_);
}

graph::Weight LinearConstruction::no_bound() const {
  return linear_no_bound_formula(params_, t_);
}

graph::Weight linear_yes_weight_formula(const GadgetParams& p, std::size_t t) {
  return static_cast<graph::Weight>(t * (2 * p.ell + p.alpha));
}

graph::Weight linear_no_bound_formula(const GadgetParams& p, std::size_t t) {
  const auto ell = static_cast<graph::Weight>(p.ell);
  const auto alpha = static_cast<graph::Weight>(p.alpha);
  const auto tw = static_cast<graph::Weight>(t);
  if (t == 2) return 3 * ell + 2 * alpha + 1;  // Claim 2
  return (tw + 1) * ell + alpha * tw * tw;     // Claim 5
}

double LinearConstruction::hardness_ratio() const {
  return static_cast<double>(no_bound()) / static_cast<double>(yes_weight());
}

double linear_hardness_ratio_formula(std::size_t ell, std::size_t alpha,
                                     std::size_t t) {
  CLB_EXPECT(t >= 2, "hardness ratio: t >= 2");
  const double no =
      t == 2 ? 3.0 * ell + 2.0 * alpha + 1.0
             : (t + 1.0) * ell + 1.0 * alpha * t * t;
  const double yes = t * (2.0 * ell + alpha);
  return no / yes;
}

std::size_t linear_players_for_epsilon(double eps) {
  CLB_EXPECT(eps > 0.0 && eps < 0.5,
             "Theorem 1 applies for 0 < eps < 1/2");
  return static_cast<std::size_t>(std::ceil(2.0 / eps));
}

}  // namespace congestlb::lb
