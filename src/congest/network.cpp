#include "congest/network.hpp"

#include <algorithm>

#include "support/expect.hpp"
#include "support/math.hpp"

namespace congestlb::congest {

void Outbox::send(std::size_t slot, Message msg) {
  CLB_EXPECT(slot < slots_.size(), "Outbox: neighbor slot out of range");
  CLB_EXPECT(!slots_[slot].has_value(),
             "Outbox: one message per neighbor per round");
  CLB_EXPECT(msg.bits > 0, "Outbox: refusing to send an empty message");
  slots_[slot] = std::move(msg);
}

void Outbox::send_all(const Message& msg) {
  for (std::size_t i = 0; i < slots_.size(); ++i) send(i, msg);
}

std::size_t congest_bandwidth_bits(std::size_t n) {
  return 4 * static_cast<std::size_t>(std::max(1, ceil_log2(std::max<std::size_t>(2, n))));
}

Network::Network(const graph::Graph& g, const ProgramFactory& factory,
                 NetworkConfig config)
    : g_(&g), config_(config) {
  CLB_EXPECT(g.num_nodes() > 0, "Network: empty graph");
  bits_per_edge_ = config.bits_per_edge != 0 ? config.bits_per_edge
                                             : congest_bandwidth_bits(g.num_nodes());
  CLB_EXPECT(bits_per_edge_ >= 1, "Network: bandwidth must be positive");

  // Assign dense edge ids (u < v order) and per-node slot -> edge id maps.
  edge_id_.resize(g.num_nodes());
  std::size_t next_edge = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    edge_id_[u].resize(g.neighbors(u).size());
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto& nb = g.neighbors(u);
    for (std::size_t s = 0; s < nb.size(); ++s) {
      const NodeId v = nb[s];
      if (u < v) {
        edge_id_[u][s] = next_edge;
        // Find u's slot in v's neighbor list (sorted -> binary search).
        const auto& nv = g.neighbors(v);
        const auto it = std::lower_bound(nv.begin(), nv.end(), u);
        edge_id_[v][static_cast<std::size_t>(it - nv.begin())] = next_edge;
        ++next_edge;
      }
    }
  }
  edge_bits_.assign(next_edge, 0);

  Rng seeder(config.seed);
  infos_.reserve(g.num_nodes());
  programs_.reserve(g.num_nodes());
  inflight_.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    NodeInfo info;
    info.id = v;
    info.n = g.num_nodes();
    info.weight = g.weight(v);
    info.neighbors = g.neighbors(v);
    info.bits_per_edge = bits_per_edge_;
    infos_.push_back(std::move(info));
    node_rng_.push_back(seeder.fork());
    inflight_.emplace_back(infos_.back().neighbors.size());
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    programs_.push_back(factory(v, infos_[v]));
    CLB_EXPECT(programs_.back() != nullptr, "Network: factory returned null");
  }
}

bool Network::step() {
  const std::size_t n = g_->num_nodes();
  std::vector<Outbox> outboxes;
  outboxes.reserve(n);
  bool any_inbound = false;
  for (NodeId v = 0; v < n; ++v) {
    for (const auto& m : inflight_[v]) {
      if (m.has_value()) {
        any_inbound = true;
        break;
      }
    }
    if (any_inbound) break;
  }
  for (NodeId v = 0; v < n; ++v) {
    Outbox out(infos_[v].neighbors.size());
    programs_[v]->round(infos_[v], inflight_[v], out, node_rng_[v]);
    outboxes.push_back(std::move(out));
  }
  // Enforce bandwidth + broadcast restriction, account bits, deliver.
  bool any_sent = false;
  std::vector<Inbox> next(n);
  for (NodeId v = 0; v < n; ++v) next[v].resize(infos_[v].neighbors.size());
  for (NodeId u = 0; u < n; ++u) {
    const auto& slots = outboxes[u].slots();
    if (config_.broadcast_only) {
      // All non-empty slots must carry identical payloads.
      const Message* first = nullptr;
      for (const auto& m : slots) {
        if (!m) continue;
        if (!first) {
          first = &*m;
        } else {
          CLB_EXPECT(first->bits == m->bits && first->data == m->data,
                     "CONGEST-Broadcast: different messages to different "
                     "neighbors in one round");
        }
      }
    }
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (!slots[s]) continue;
      const Message& m = *slots[s];
      CLB_EXPECT(m.bits <= bits_per_edge_,
                 "CONGEST bandwidth exceeded: message of " +
                     std::to_string(m.bits) + " bits on a " +
                     std::to_string(bits_per_edge_) + "-bit edge");
      any_sent = true;
      stats_.messages_sent += 1;
      stats_.bits_sent += m.bits;
      edge_bits_[edge_id_[u][s]] += m.bits;
      // Deliver to neighbor v at v's slot for u.
      const NodeId v = infos_[u].neighbors[s];
      if (config_.on_message) config_.on_message(stats_.rounds, u, v, m);
      const auto& nv = infos_[v].neighbors;
      const auto it = std::lower_bound(nv.begin(), nv.end(), u);
      next[v][static_cast<std::size_t>(it - nv.begin())] = m;
    }
  }
  inflight_ = std::move(next);
  stats_.rounds += 1;
  return any_sent || any_inbound;
}

RunStats Network::run() {
  while (stats_.rounds < config_.max_rounds) {
    bool all_done = true;
    for (const auto& p : programs_) {
      if (!p->finished()) {
        all_done = false;
        break;
      }
    }
    if (all_done) {
      bool quiet = true;
      for (const auto& inbox : inflight_) {
        for (const auto& m : inbox) {
          if (m.has_value()) {
            quiet = false;
            break;
          }
        }
        if (!quiet) break;
      }
      if (quiet) break;
    }
    step();
  }
  stats_.all_finished =
      std::all_of(programs_.begin(), programs_.end(),
                  [](const auto& p) { return p->finished(); });
  return stats_;
}

RunStats Network::run_rounds(std::size_t rounds) {
  for (std::size_t r = 0; r < rounds; ++r) step();
  stats_.all_finished =
      std::all_of(programs_.begin(), programs_.end(),
                  [](const auto& p) { return p->finished(); });
  return stats_;
}

const NodeProgram& Network::program(NodeId v) const {
  CLB_EXPECT(v < programs_.size(), "Network: node id out of range");
  return *programs_[v];
}

const NodeInfo& Network::info(NodeId v) const {
  CLB_EXPECT(v < infos_.size(), "Network: node id out of range");
  return infos_[v];
}

std::uint64_t Network::bits_on_edge(NodeId u, NodeId v) const {
  CLB_EXPECT(g_->has_edge(u, v), "bits_on_edge: no such edge");
  const auto& nu = g_->neighbors(u);
  const auto it = std::lower_bound(nu.begin(), nu.end(), v);
  return edge_bits_[edge_id_[u][static_cast<std::size_t>(it - nu.begin())]];
}

std::vector<std::int64_t> Network::outputs() const {
  std::vector<std::int64_t> out;
  out.reserve(programs_.size());
  for (const auto& p : programs_) out.push_back(p->output());
  return out;
}

std::vector<NodeId> Network::selected_nodes() const {
  std::vector<NodeId> sel;
  for (NodeId v = 0; v < programs_.size(); ++v) {
    if (programs_[v]->output() != 0) sel.push_back(v);
  }
  return sel;
}

}  // namespace congestlb::congest
