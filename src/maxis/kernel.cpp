#include "maxis/kernel.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "maxis/bitset.hpp"
#include "support/deadline.hpp"
#include "support/expect.hpp"

namespace congestlb::maxis {

namespace {

/// Merged (explicit + implicit-block) neighbor list of v. On a block-free
/// graph this is the adjacency list itself (no copy); with blocks present
/// it fills and returns `scratch` via the shared neighbor cursor.
const std::vector<NodeId>& merged_neighbors(const graph::Graph& g, NodeId v,
                                            std::vector<NodeId>& scratch) {
  if (!g.has_implicit_blocks()) return g.neighbors(v);
  scratch.clear();
  g.for_each_neighbor(v, [&](NodeId u) { scratch.push_back(u); });
  return scratch;
}

/// Mutable word-matrix view of the shrinking instance. All rule predicates
/// are word operations on adjacency rows over the *original* vertex ids;
/// vertices disappear by clearing their bit everywhere, so row indices stay
/// stable for the journal.
class Reducer {
 public:
  explicit Reducer(const graph::Graph& g)
      : n_(g.num_nodes()), nw_(words::row_words(n_ == 0 ? 1 : n_)) {
    rows_.assign(n_ * nw_, 0);
    alive_.assign(nw_, 0);
    scratch_.assign(nw_, 0);
    weight_.resize(n_);
    deg_.resize(n_);
    for (NodeId v = 0; v < n_; ++v) {
      weight_[v] = g.weight(v);
      CLB_EXPECT(weight_[v] >= 0, "kernelize requires nonnegative weights");
      words::set_bit(alive_.data(), v);
      // Through the merged cursor, not the explicit list: block-covered
      // vertices have implicit neighbors the dense row must include.
      g.for_each_neighbor(v, [&](NodeId u) { words::set_bit(row(v), u); });
      // Seeded from the materialized row (not g.degree) so the cache is
      // exactly the row popcount it replaces, whatever the input held.
      deg_[v] = words::popcount(row(v), nw_);
    }
  }

  std::size_t n() const { return n_; }
  Weight weight(NodeId v) const { return weight_[v]; }
  bool alive(NodeId v) const { return words::test_bit(alive_.data(), v); }

  /// Cached degree, maintained incrementally by remove() — every rule pass
  /// probes degrees, so recomputing the row popcount per call would be the
  /// pipeline's largest cost on dense instances.
  std::size_t degree(NodeId v) const { return deg_[v]; }

  const std::uint64_t* row(NodeId v) const { return rows_.data() + v * nw_; }
  std::uint64_t* row(NodeId v) { return rows_.data() + v * nw_; }

  template <typename Fn>
  void for_each_neighbor(NodeId v, Fn&& fn) const {
    const std::uint64_t* r = row(v);
    for (std::size_t w = 0; w < nw_; ++w) {
      std::uint64_t bits = r[w];
      while (bits != 0) {
        const std::size_t b = static_cast<std::size_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        fn(static_cast<NodeId>(w * 64 + b));
      }
    }
  }

  /// The single neighbor of a degree-1 vertex.
  NodeId only_neighbor(NodeId v) const {
    return static_cast<NodeId>(words::first_bit(row(v), nw_, n_));
  }

  void remove(NodeId x) {
    for_each_neighbor(x, [&](NodeId y) {
      words::clear_bit(row(y), x);
      --deg_[y];
    });
    std::uint64_t* r = row(x);
    for (std::size_t w = 0; w < nw_; ++w) r[w] = 0;
    deg_[x] = 0;
    words::clear_bit(alive_.data(), x);
  }

  void add_weight(NodeId v, Weight delta) { weight_[v] += delta; }

  /// True when every neighbor of v other than `except` is adjacent to u —
  /// i.e. N(v) \ {except} is contained in N(u). The workhorse predicate of
  /// the domination and simplicial rules.
  bool neighbors_within(NodeId v, NodeId u, NodeId except) {
    words::and_not_rows(scratch_.data(), row(v), row(u), nw_);
    words::clear_bit(scratch_.data(), except);
    words::clear_bit(scratch_.data(), u);
    return words::first_bit(scratch_.data(), nw_, n_) == n_;
  }

  /// FNV hash of v's adjacency row (twin bucketing).
  std::uint64_t row_hash(NodeId v) const {
    const std::uint64_t* r = row(v);
    std::uint64_t h = 1469598103934665603ULL;
    for (std::size_t w = 0; w < nw_; ++w) {
      h = (h ^ r[w]) * 1099511628211ULL;
    }
    return h;
  }

  bool rows_equal(NodeId a, NodeId b) const {
    const std::uint64_t* ra = row(a);
    const std::uint64_t* rb = row(b);
    for (std::size_t w = 0; w < nw_; ++w) {
      if (ra[w] != rb[w]) return false;
    }
    return true;
  }

 private:
  std::size_t n_;
  std::size_t nw_;
  std::vector<std::uint64_t> rows_;
  std::vector<std::uint64_t> alive_;
  std::vector<std::uint64_t> scratch_;
  std::vector<Weight> weight_;
  std::vector<std::size_t> deg_;  ///< live degree per vertex (see degree())
};

/// True when some reduction rule could fire on g, checked directly against
/// the CSR adjacency lists. A false return certifies the identity kernel
/// without ever materializing the Reducer's word matrix — on the paper's
/// instantiated gadgets (where nothing is reducible) this is the whole
/// kernelization cost, and it is O(m) plus O(cap^2 log cap) per low-degree
/// vertex instead of O(n^2/64) per pipeline pass. A spurious true is
/// harmless (the pipeline runs and decides nothing); the checks below are
/// exact mirrors of the rule predicates, so that does not happen in
/// practice.
bool any_rule_applicable(const graph::Graph& g, std::size_t cap,
                         unsigned rules) {
  const std::size_t n = g.num_nodes();

  // Isolated / degree-1 fire on degree alone.
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t d = g.degree(v);
    if ((d == 0 && (rules & kRuleIsolated) != 0) ||
        (d == 1 && (rules & kRuleDegree1) != 0)) {
      return true;
    }
  }

  // Twins: two vertices with identical (sorted) neighbor lists. Bucket by
  // a *sampled* signature — degree plus a few probe positions — so the
  // common case touches O(1) of each list instead of hashing all of it;
  // only vertices whose samples collide get the full comparison.
  if ((rules & kRuleTwin) != 0) {
    std::vector<NodeId> scratch_a, scratch_b;
    std::vector<std::pair<std::uint64_t, NodeId>> sig;
    sig.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      const auto& nb = merged_neighbors(g, v, scratch_a);
      const std::size_t d = nb.size();
      // The pipeline's twin pass skips degree-0 vertices, so mirror that
      // (and keep nb[d-1] in range when the degree rules are masked off).
      if (d == 0) continue;
      std::uint64_t h = 1469598103934665603ULL;
      h = (h ^ d) * 1099511628211ULL;
      for (const std::size_t idx :
           {std::size_t{0}, d / 3, d / 2, (2 * d) / 3, d - 1}) {
        h = (h ^ (nb[idx] + 1)) * 1099511628211ULL;
      }
      sig.emplace_back(h, v);
    }
    std::sort(sig.begin(), sig.end());
    for (std::size_t lo = 0; lo < sig.size();) {
      std::size_t hi = lo + 1;
      while (hi < sig.size() && sig[hi].first == sig[lo].first) ++hi;
      // All pairs within the run: a sampled hash can collide for non-equal
      // lists, and a colliding non-twin between two twins must not mask
      // them.
      for (std::size_t i = lo; i < hi; ++i) {
        for (std::size_t j = i + 1; j < hi; ++j) {
          if (merged_neighbors(g, sig[i].second, scratch_a) ==
              merged_neighbors(g, sig[j].second, scratch_b)) {
            return true;
          }
        }
      }
      lo = hi;
    }
  }

  // Domination and simplicial, restricted (like the pipeline) to vertices
  // with degree <= cap. `mark` holds N[u] for the subset tests.
  if ((rules & (kRuleDomination | kRuleSimplicial)) != 0) {
    std::vector<NodeId> scratch;
    std::vector<std::uint32_t> mark(n, 0);
    std::uint32_t stamp = 0;
    for (NodeId u = 0; u < n; ++u) {
      const auto& nu = merged_neighbors(g, u, scratch);
      if (nu.empty() || nu.size() > cap) continue;
      ++stamp;
      mark[u] = stamp;
      for (const NodeId x : nu) mark[x] = stamp;

      // Domination drops u when some neighbor v has w(v) >= w(u) and
      // N(v) \ {u} <= N(u), i.e. N(v) inside the marked N[u].
      if ((rules & kRuleDomination) != 0) {
        for (const NodeId v : nu) {
          if (g.weight(v) < g.weight(u)) continue;
          if (g.degree(v) > nu.size() + 1) continue;  // too big for N[u]
          bool inside = true;
          g.for_each_neighbor(v, [&](NodeId x) {
            if (mark[x] != stamp) inside = false;
          });
          if (inside) return true;
        }
      }

      // Simplicial takes u when it is a heaviest vertex of N[u] and N(u)
      // is a clique (every pair of neighbors adjacent).
      if ((rules & kRuleSimplicial) != 0) {
        bool take = true;
        for (const NodeId x : nu) {
          if (g.weight(x) > g.weight(u)) {
            take = false;
            break;
          }
        }
        for (std::size_t i = 0; take && i + 1 < nu.size(); ++i) {
          for (std::size_t j = i + 1; j < nu.size(); ++j) {
            if (!g.has_edge(nu[i], nu[j])) {
              take = false;
              break;
            }
          }
        }
        if (take) return true;
      }
    }
  }
  return false;
}

}  // namespace

bool kernelizable(const graph::Graph& g, const KernelOptions& opts) {
  const std::size_t n = g.num_nodes();
  const std::size_t cap = opts.max_rule_degree == 0
                              ? n + 1
                              : opts.max_rule_degree;
  return n > 0 && any_rule_applicable(g, cap, opts.rules & kAllKernelRules);
}

Kernel::Kernel(const graph::Graph& g, const KernelOptions& opts)
    : original_n_(g.num_nodes()) {
  const std::size_t n = g.num_nodes();
  // Degree cap for the quadratic rules (kernel.hpp): 0 means uncapped.
  const std::size_t cap = opts.max_rule_degree == 0
                              ? n + 1
                              : opts.max_rule_degree;
  const unsigned rules = opts.rules & kAllKernelRules;

  // Identity fast path: certify on the CSR adjacency that no rule can
  // fire, skipping the word-matrix pipeline entirely.
  if (n == 0 || !any_rule_applicable(g, cap, rules)) {
    reduced_ = g;
    survivors_.resize(n);
    std::iota(survivors_.begin(), survivors_.end(), 0);
    return;
  }

  Reducer r(g);

  bool changed = n > 0;
  while (changed) {
    // Deadline check between passes only: a pass is O(n + m)-ish, coarse
    // enough that per-pass granularity bounds overrun without paying a
    // clock read inside the rule scans. Stopping here is sound — see
    // KernelOptions::deadline.
    if (opts.deadline != nullptr && opts.deadline->expired()) break;
    changed = false;
    ++stats_.passes;

    // Isolated + degree-1 (one scan; both look only at the degree).
    for (NodeId v = 0; v < n; ++v) {
      if (!r.alive(v)) continue;
      const std::size_t deg = r.degree(v);
      if (deg == 0 && (rules & kRuleIsolated) != 0) {
        journal_.push_back({Rule::kTake, v, 0});
        offset_ += r.weight(v);
        r.remove(v);
        ++stats_.isolated;
        changed = true;
      } else if (deg == 1 && (rules & kRuleDegree1) != 0) {
        const NodeId u = r.only_neighbor(v);
        if (r.weight(v) >= r.weight(u)) {
          // Taking v dominates taking u (v conflicts only with u).
          journal_.push_back({Rule::kTake, v, 0});
          offset_ += r.weight(v);
          r.remove(u);
          r.remove(v);
          ++stats_.degree1;
        } else {
          // Fold: v rides on u's fate. Bank w(v); u keeps the surplus.
          journal_.push_back({Rule::kFold, v, u});
          offset_ += r.weight(v);
          r.add_weight(u, -r.weight(v));
          r.remove(v);
          ++stats_.folded;
        }
        changed = true;
      }
    }

    // Domination: drop u when some neighbor v has N[v] <= N[u] and
    // w(v) >= w(u) — swapping u for v in any solution never loses. Applied
    // one vertex at a time against the live graph, so a mutual (twin-like)
    // pair loses exactly one member.
    for (NodeId u = 0; (rules & kRuleDomination) != 0 && u < n; ++u) {
      if (!r.alive(u) || r.degree(u) > cap) continue;
      bool dropped = false;
      r.for_each_neighbor(u, [&](NodeId v) {
        if (dropped || r.weight(v) < r.weight(u)) return;
        if (r.neighbors_within(v, u, u)) dropped = true;
      });
      if (dropped) {
        r.remove(u);  // excluded: no journal entry, u simply stays out
        ++stats_.dominated;
        changed = true;
      }
    }

    // Simplicial: if N(v) is a clique, any solution uses at most one vertex
    // of N[v]; when v is the heaviest it is always a best pick.
    for (NodeId v = 0; (rules & kRuleSimplicial) != 0 && v < n; ++v) {
      if (!r.alive(v)) continue;
      const std::size_t deg = r.degree(v);
      if (deg == 0 || deg > cap) continue;
      bool take = true;
      r.for_each_neighbor(v, [&](NodeId u) {
        if (!take || r.weight(u) > r.weight(v)) {
          take = false;
          return;
        }
        if (!r.neighbors_within(v, u, u)) take = false;
      });
      if (!take) continue;
      journal_.push_back({Rule::kTake, v, 0});
      offset_ += r.weight(v);
      std::vector<NodeId> closed;
      r.for_each_neighbor(v, [&](NodeId u) { closed.push_back(u); });
      for (const NodeId u : closed) r.remove(u);
      r.remove(v);
      ++stats_.simplicial;
      changed = true;
    }

    // Twins: non-adjacent vertices with identical neighborhoods are in or
    // out together — merge the weights and keep one representative.
    if ((rules & kRuleTwin) != 0) {
      std::unordered_map<std::uint64_t, std::vector<NodeId>> buckets;
      for (NodeId v = 0; v < n; ++v) {
        if (!r.alive(v) || r.degree(v) == 0) continue;
        auto& bucket = buckets[r.row_hash(v)];
        bool merged = false;
        for (const NodeId u : bucket) {
          if (!r.alive(u) || !r.rows_equal(u, v)) continue;
          // Equal rows imply u !~ v (a self-bit can't match a non-self bit).
          journal_.push_back({Rule::kTwin, v, u});
          r.add_weight(u, r.weight(v));
          r.remove(v);
          ++stats_.twins;
          changed = true;
          merged = true;
          break;
        }
        if (!merged) bucket.push_back(v);
      }
    }
  }

  // Identity kernel: nothing fired, so the input *is* the kernel — a plain
  // copy beats re-materializing (and re-sorting) the edge list.
  if (stats_.decisions() == 0) {
    reduced_ = g;
    survivors_.resize(n);
    std::iota(survivors_.begin(), survivors_.end(), 0);
    return;
  }

  // Materialize the kernel instance over the survivors, ascending.
  for (NodeId v = 0; v < n; ++v) {
    if (r.alive(v)) survivors_.push_back(v);
  }
  reduced_ = graph::Graph(survivors_.size());
  std::vector<std::size_t> pos(n, 0);
  for (std::size_t i = 0; i < survivors_.size(); ++i) {
    pos[survivors_[i]] = i;
    reduced_.set_weight(i, r.weight(survivors_[i]));
    reduced_.set_label(i, g.label(survivors_[i]));
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (const NodeId v : survivors_) {
    r.for_each_neighbor(v, [&](NodeId u) {
      if (v < u) edges.emplace_back(pos[v], pos[u]);
    });
  }
  reduced_.add_edges(edges);
}

std::vector<NodeId> Kernel::unfold(
    std::span<const NodeId> kernel_solution) const {
  std::vector<char> in_sol(original_n_, 0);
  for (const NodeId i : kernel_solution) {
    CLB_EXPECT(i < survivors_.size(), "kernel unfold: id out of range");
    in_sol[survivors_[i]] = 1;
  }
  // Reverse replay: when an event (v, u) is processed, u's fate is already
  // final (u outlived v in the forward pass).
  for (auto it = journal_.rbegin(); it != journal_.rend(); ++it) {
    switch (it->rule) {
      case Rule::kTake:
        in_sol[it->v] = 1;
        break;
      case Rule::kFold:
        in_sol[it->v] = in_sol[it->u] ? 0 : 1;
        break;
      case Rule::kTwin:
        in_sol[it->v] = in_sol[it->u];
        break;
    }
  }
  std::vector<NodeId> out;
  for (NodeId v = 0; v < original_n_; ++v) {
    if (in_sol[v] != 0) out.push_back(v);
  }
  return out;
}

}  // namespace congestlb::maxis
