// Exact deterministic two-party communication complexity, by exhaustive
// protocol-tree search.
//
// The entire lower-bound technique the paper builds on bottoms out at
// "set-disjointness costs Omega(k) bits" [19, 25]. For tiny input domains
// that statement needs no asymptotics: D(f) is computable exactly by the
// textbook recursion over combinatorial rectangles —
//     D(R) = 0                       if f is constant on R,
//     D(R) = 1 + min over nontrivial row- or column-partitions (A0, A1)
//                of max(D(R restricted to A0), D(R restricted to A1)),
// memoized on (row-mask, col-mask). This module evaluates D for functions
// with up to 12x12 value matrices (set-disjointness up to k = 3), letting
// tests pin down D(DISJ_k) = k + 1 exactly — the concrete seed of the
// whole framework.

#pragma once

#include <cstdint>
#include <vector>

namespace congestlb::comm {

/// Value matrix of a two-party Boolean function: f[x][y] in {0,1}.
using CcMatrix = std::vector<std::vector<std::uint8_t>>;

/// Exact deterministic communication complexity (total bits exchanged in
/// the worst case until both players know f). Requires a non-empty
/// rectangular 0/1 matrix with at most kMaxCcDomain rows and columns.
inline constexpr std::size_t kMaxCcDomain = 12;
std::size_t exact_deterministic_cc(const CcMatrix& f);

/// The value matrix of two-party set-disjointness on k-bit sets:
/// f[x][y] = 1 iff x and y (as subsets of [k]) are disjoint. 2^k x 2^k.
CcMatrix disjointness_matrix(std::size_t k);

/// A fooling set certificate: pairs (x_i, y_i) with f(x_i, y_i) = b for
/// all i and, for every i != j, f(x_i, y_j) != b or f(x_j, y_i) != b.
/// A valid fooling set of size s certifies D(f) >= ceil(log2 s) — the
/// classical proof scheme behind the Omega(k) disjointness bound.
/// Returns the certified lower bound; throws if the set is not fooling.
std::size_t fooling_set_lower_bound(
    const CcMatrix& f,
    const std::vector<std::pair<std::size_t, std::size_t>>& pairs);

/// The canonical disjointness fooling set {(S, complement(S))}: size 2^k,
/// certifying D(DISJ_k) >= k.
std::vector<std::pair<std::size_t, std::size_t>> disjointness_fooling_set(
    std::size_t k);

/// The value matrix of equality on [n]: f[x][y] = 1 iff x == y.
CcMatrix equality_matrix(std::size_t n);

/// The value matrix of greater-than on [n]: f[x][y] = 1 iff x > y.
CcMatrix greater_than_matrix(std::size_t n);

}  // namespace congestlb::comm
