#include "graph/generators.hpp"

#include "support/expect.hpp"

namespace congestlb::graph {

Graph path_graph(std::size_t n) {
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph cycle_graph(std::size_t n) {
  CLB_EXPECT(n >= 3, "cycle_graph requires n >= 3");
  Graph g = path_graph(n);
  g.add_edge(0, n - 1);
  return g;
}

Graph complete_graph(std::size_t n) {
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph star_graph(std::size_t n) {
  CLB_EXPECT(n >= 1, "star_graph requires n >= 1");
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph gnp_random(Rng& rng, std::size_t n, double p, Weight max_weight) {
  CLB_EXPECT(max_weight >= 1, "gnp_random requires max_weight >= 1");
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) {
    g.set_weight(v, max_weight == 1
                        ? 1
                        : static_cast<Weight>(
                              1 + rng.below(static_cast<std::uint64_t>(
                                      max_weight))));
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.chance(p)) g.add_edge(u, v);
    }
  }
  return g;
}

Graph gnp_random_connected(Rng& rng, std::size_t n, double p,
                           Weight max_weight) {
  Graph g = gnp_random(rng, n, p, max_weight);
  for (NodeId v = 0; v + 1 < n; ++v) {
    if (!g.has_edge(v, v + 1)) g.add_edge(v, v + 1);
  }
  return g;
}

Graph random_bipartite(Rng& rng, std::size_t n_left, std::size_t n_right,
                       double p) {
  Graph g(n_left + n_right);
  for (NodeId u = 0; u < n_left; ++u) {
    for (NodeId v = 0; v < n_right; ++v) {
      if (rng.chance(p)) g.add_edge(u, n_left + v);
    }
  }
  return g;
}

}  // namespace congestlb::graph
