#include "congest/network.hpp"

#include <algorithm>

#include "support/expect.hpp"
#include "support/math.hpp"

namespace congestlb::congest {

void Outbox::send(std::size_t slot, Message msg) {
  CLB_EXPECT(slot < slots_.size(), "Outbox: neighbor slot out of range");
  CLB_EXPECT(!slots_[slot].has_value(),
             "Outbox: one message per neighbor per round");
  CLB_EXPECT(msg.bits > 0, "Outbox: refusing to send an empty message");
  slots_[slot] = std::move(msg);
}

void Outbox::send_all(const Message& msg) {
  for (std::size_t i = 0; i < slots_.size(); ++i) send(i, msg);
}

std::size_t congest_bandwidth_bits(std::size_t n) {
  return 4 * static_cast<std::size_t>(std::max(1, ceil_log2(std::max<std::size_t>(2, n))));
}

Network::Network(const graph::Graph& g, const ProgramFactory& factory,
                 NetworkConfig config)
    : g_(&g), config_(config) {
  CLB_EXPECT(g.num_nodes() > 0, "Network: empty graph");
  bits_per_edge_ = config.bits_per_edge != 0 ? config.bits_per_edge
                                             : congest_bandwidth_bits(g.num_nodes());
  CLB_EXPECT(bits_per_edge_ >= 1, "Network: bandwidth must be positive");
  if (config_.faults.enabled()) {
    injector_.emplace(config_.faults, g.num_nodes(), config_.seed);
  }

  // Assign dense edge ids (u < v order) and per-node slot -> edge id maps.
  edge_id_.resize(g.num_nodes());
  std::size_t next_edge = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    edge_id_[u].resize(g.neighbors(u).size());
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto& nb = g.neighbors(u);
    for (std::size_t s = 0; s < nb.size(); ++s) {
      const NodeId v = nb[s];
      if (u < v) {
        edge_id_[u][s] = next_edge;
        // Find u's slot in v's neighbor list (sorted -> binary search).
        const auto& nv = g.neighbors(v);
        const auto it = std::lower_bound(nv.begin(), nv.end(), u);
        edge_id_[v][static_cast<std::size_t>(it - nv.begin())] = next_edge;
        ++next_edge;
      }
    }
  }
  edge_bits_.assign(next_edge, 0);
  was_crashed_.assign(g.num_nodes(), 0);

  Rng seeder(config.seed);
  infos_.reserve(g.num_nodes());
  programs_.reserve(g.num_nodes());
  inflight_.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    NodeInfo info;
    info.id = v;
    info.n = g.num_nodes();
    info.weight = g.weight(v);
    info.neighbors = g.neighbors(v);
    info.bits_per_edge = bits_per_edge_;
    infos_.push_back(std::move(info));
    node_rng_.push_back(seeder.fork());
    inflight_.emplace_back(infos_.back().neighbors.size());
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    programs_.push_back(factory(v, infos_[v]));
    CLB_EXPECT(programs_.back() != nullptr, "Network: factory returned null");
  }
}

void Network::deliver(std::vector<Inbox>& next, std::size_t round, NodeId u,
                      NodeId v, const Message& msg) {
  const auto& nv = infos_[v].neighbors;
  const auto it = std::lower_bound(nv.begin(), nv.end(), u);
  const auto slot = static_cast<std::size_t>(it - nv.begin());
  stats_.messages_sent += 1;
  stats_.bits_sent += msg.bits;
  edge_bits_[edge_id_[v][slot]] += msg.bits;
  if (config_.on_message) config_.on_message(round, u, v, msg);
  next[v][slot] = msg;
}

bool Network::receiver_lost(NodeId v, std::size_t consume_round) const {
  return injector_.has_value() && injector_->node_crashed(v, consume_round);
}

bool Network::step() {
  const std::size_t n = g_->num_nodes();
  const std::size_t round = stats_.rounds;

  // Crash bookkeeping: record crash/recovery transitions for this round.
  std::vector<char> crashed_now(n, 0);
  if (injector_.has_value()) {
    for (NodeId v = 0; v < n; ++v) {
      crashed_now[v] = injector_->node_crashed(v, round) ? 1 : 0;
      if (crashed_now[v] && !was_crashed_[v]) stats_.nodes_crashed += 1;
      if (!crashed_now[v] && was_crashed_[v]) stats_.nodes_recovered += 1;
    }
    was_crashed_ = crashed_now;
  }

  std::vector<Outbox> outboxes;
  outboxes.reserve(n);
  bool any_inbound = false;
  for (NodeId v = 0; v < n; ++v) {
    for (const auto& m : inflight_[v]) {
      if (m.has_value()) {
        any_inbound = true;
        break;
      }
    }
    if (any_inbound) break;
  }
  for (NodeId v = 0; v < n; ++v) {
    Outbox out(infos_[v].neighbors.size());
    // A crashed node neither computes nor sends; its program state is
    // frozen until recovery (crash-stop, not amnesia).
    if (!crashed_now[v]) {
      programs_[v]->round(infos_[v], inflight_[v], out, node_rng_[v]);
    }
    outboxes.push_back(std::move(out));
  }
  // Enforce bandwidth + broadcast restriction, apply the fault schedule,
  // account bits, deliver. Only delivered messages are charged.
  std::uint64_t delivered_this_round = 0;
  std::uint64_t attempted_this_round = 0;
  std::vector<Inbox> next(n);
  for (NodeId v = 0; v < n; ++v) next[v].resize(infos_[v].neighbors.size());
  std::vector<PendingEcho> new_echoes;
  for (NodeId u = 0; u < n; ++u) {
    const auto& slots = outboxes[u].slots();
    if (config_.broadcast_only) {
      // All non-empty slots must carry identical payloads.
      const Message* first = nullptr;
      for (const auto& m : slots) {
        if (!m) continue;
        if (!first) {
          first = &*m;
        } else {
          CLB_EXPECT(first->bits == m->bits && first->data == m->data,
                     "CONGEST-Broadcast: different messages to different "
                     "neighbors in one round");
        }
      }
    }
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (!slots[s]) continue;
      const Message& m = *slots[s];
      // The model constraint is checked at send time, faults or not: a
      // program that oversends is buggy even if the message would be lost.
      CLB_EXPECT(m.bits <= bits_per_edge_,
                 "CONGEST bandwidth exceeded: message of " +
                     std::to_string(m.bits) + " bits on a " +
                     std::to_string(bits_per_edge_) + "-bit edge");
      attempted_this_round += 1;
      const NodeId v = infos_[u].neighbors[s];
      // Messages sent this round are consumed next round; a receiver
      // crashed at consumption time loses the message.
      if (receiver_lost(v, round + 1)) {
        stats_.messages_dropped += 1;
        stats_.bits_dropped += m.bits;
        continue;
      }
      const FaultAction action =
          injector_.has_value() ? injector_->classify(round, u, v)
                                : FaultAction::kDeliver;
      switch (action) {
        case FaultAction::kDrop:
          stats_.messages_dropped += 1;
          stats_.bits_dropped += m.bits;
          continue;
        case FaultAction::kCorrupt: {
          Message corrupted = m;
          injector_->corrupt(round, u, v, corrupted);
          stats_.messages_corrupted += 1;
          deliver(next, round, u, v, corrupted);
          delivered_this_round += 1;
          continue;
        }
        case FaultAction::kDuplicate: {
          deliver(next, round, u, v, m);
          delivered_this_round += 1;
          const auto& nv = infos_[v].neighbors;
          const auto it = std::lower_bound(nv.begin(), nv.end(), u);
          new_echoes.push_back(PendingEcho{
              u, v, static_cast<std::size_t>(it - nv.begin()), m});
          continue;
        }
        case FaultAction::kDeliver:
          deliver(next, round, u, v, m);
          delivered_this_round += 1;
          continue;
      }
    }
  }
  // Place the echoes queued in the previous round: a duplicated message is
  // redelivered one round after the original, but only if the edge slot is
  // otherwise idle this round (one message per edge per round — a fault
  // never violates the CONGEST budget) and the receiver survives. Displaced
  // or crash-lost echoes vanish without charge.
  for (const auto& echo : pending_echo_) {
    attempted_this_round += 1;
    if (next[echo.to][echo.slot].has_value() ||
        receiver_lost(echo.to, round + 1)) {
      continue;
    }
    stats_.messages_duplicated += 1;
    deliver(next, round, echo.from, echo.to, echo.msg);
    delivered_this_round += 1;
  }
  pending_echo_ = std::move(new_echoes);
  if (attempted_this_round > 0 && delivered_this_round == 0) {
    stats_.rounds_stalled += 1;
  }
  inflight_ = std::move(next);
  stats_.rounds += 1;
  return delivered_this_round > 0 || any_inbound;
}

bool Network::node_terminal(NodeId v) const {
  if (programs_[v]->finished() || programs_[v]->failed()) return true;
  // A permanently crashed node will never act again: waiting for it would
  // spin to max_rounds for nothing.
  if (injector_.has_value()) {
    const auto& span = injector_->plan().crashes[v];
    if (span.has_value() && span->permanent() &&
        span->crash_round <= stats_.rounds) {
      return true;
    }
  }
  return false;
}

RunStats Network::run() {
  while (stats_.rounds < config_.max_rounds) {
    bool all_done = true;
    for (NodeId v = 0; v < programs_.size(); ++v) {
      if (!node_terminal(v)) {
        all_done = false;
        break;
      }
    }
    if (all_done) {
      bool quiet = pending_echo_.empty();
      for (const auto& inbox : inflight_) {
        if (!quiet) break;
        for (const auto& m : inbox) {
          if (m.has_value()) {
            quiet = false;
            break;
          }
        }
      }
      if (quiet) break;
    }
    step();
  }
  stats_.all_finished =
      std::all_of(programs_.begin(), programs_.end(),
                  [](const auto& p) { return p->finished(); });
  stats_.any_failed =
      std::any_of(programs_.begin(), programs_.end(),
                  [](const auto& p) { return p->failed(); });
  return stats_;
}

RunStats Network::run_rounds(std::size_t rounds) {
  for (std::size_t r = 0; r < rounds && stats_.rounds < config_.max_rounds;
       ++r) {
    step();
  }
  stats_.all_finished =
      std::all_of(programs_.begin(), programs_.end(),
                  [](const auto& p) { return p->finished(); });
  stats_.any_failed =
      std::any_of(programs_.begin(), programs_.end(),
                  [](const auto& p) { return p->failed(); });
  return stats_;
}

const NodeProgram& Network::program(NodeId v) const {
  CLB_EXPECT(v < programs_.size(), "Network: node id out of range");
  return *programs_[v];
}

const NodeInfo& Network::info(NodeId v) const {
  CLB_EXPECT(v < infos_.size(), "Network: node id out of range");
  return infos_[v];
}

const FaultPlan* Network::fault_plan() const {
  return injector_.has_value() ? &injector_->plan() : nullptr;
}

bool Network::node_crashed(NodeId v) const {
  CLB_EXPECT(v < programs_.size(), "Network: node id out of range");
  return injector_.has_value() && injector_->node_crashed(v, stats_.rounds);
}

std::vector<std::string> Network::failure_diagnostics() const {
  std::vector<std::string> out;
  for (NodeId v = 0; v < programs_.size(); ++v) {
    if (!programs_[v]->failed()) continue;
    std::string line = "node " + std::to_string(v);
    const std::string detail = programs_[v]->diagnostic();
    if (!detail.empty()) line += ": " + detail;
    out.push_back(std::move(line));
  }
  return out;
}

std::uint64_t Network::bits_on_edge(NodeId u, NodeId v) const {
  CLB_EXPECT(g_->has_edge(u, v), "bits_on_edge: no such edge");
  const auto& nu = g_->neighbors(u);
  const auto it = std::lower_bound(nu.begin(), nu.end(), v);
  return edge_bits_[edge_id_[u][static_cast<std::size_t>(it - nu.begin())]];
}

std::vector<std::int64_t> Network::outputs() const {
  std::vector<std::int64_t> out;
  out.reserve(programs_.size());
  for (const auto& p : programs_) out.push_back(p->output());
  return out;
}

std::vector<NodeId> Network::selected_nodes() const {
  std::vector<NodeId> sel;
  for (NodeId v = 0; v < programs_.size(); ++v) {
    if (programs_[v]->output() != 0) sel.push_back(v);
  }
  return sel;
}

}  // namespace congestlb::congest
