// Stateless deterministic hashing for schedule-independent decisions.
//
// The fault injector (congest/faults.hpp) must make the *same* drop/corrupt
// decision for a message no matter in which order the simulator iterates
// nodes or edges — otherwise a refactor of the delivery loop would silently
// change every "random" fault schedule and break seed-based repros. These
// helpers turn a tuple of integers into a high-quality 64-bit hash (a chain
// of splitmix64 finalizers) and into a uniform double in [0,1), with no
// generator state involved: hash_mix(seed, a, b, c) is a pure function.

#pragma once

#include <cstdint>
#include <string_view>

namespace congestlb {

/// One splitmix64 finalizer round (no state advance — pure mixing).
inline std::uint64_t hash_mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Fold `v` into an accumulated hash (order-sensitive, as a tuple hash
/// should be: hash_combine(h, a, b) != hash_combine(h, b, a) in general).
inline std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  return hash_mix64(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

/// Hash an arbitrary tuple of integers: hash_mix(seed, a, b, ...).
template <typename... Rest>
inline std::uint64_t hash_mix(std::uint64_t first, Rest... rest) {
  std::uint64_t h = hash_mix64(first);
  ((h = hash_combine(h, static_cast<std::uint64_t>(rest))), ...);
  return h;
}

/// Map a hash to a uniform double in [0,1) (53 mantissa bits).
inline double hash_to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// FNV-1a over a byte string. The campaign cache (campaign/cache.hpp) keys
/// every stored artifact by the FNV-1a digest of a *canonical* textual
/// description of its inputs, so equal inputs hash equally across runs,
/// platforms, and worker counts — a content address, not a randomized hash.
inline std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace congestlb
