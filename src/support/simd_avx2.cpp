// AVX2 dispatch table. Compiled with -mavx2 (see src/CMakeLists.txt); the
// accessor below returns null when the translation unit was built without
// it (non-x86), and simd.cpp additionally gates on CPUID at runtime before
// ever calling through the table.

#include "support/simd.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include "support/simd_detail.hpp"

namespace congestlb::simd::detail {

namespace {

void avx2_and_rows(std::uint64_t* dst, const std::uint64_t* a,
                   const std::uint64_t* b, std::size_t nw) {
  std::size_t w = 0;
  for (; w + 4 <= nw; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_and_si256(va, vb));
  }
  for (; w < nw; ++w) dst[w] = a[w] & b[w];
}

void avx2_and_not_rows(std::uint64_t* dst, const std::uint64_t* a,
                       const std::uint64_t* b, std::size_t nw) {
  std::size_t w = 0;
  for (; w + 4 <= nw; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    // andnot computes ~first & second, so b goes first.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_andnot_si256(vb, va));
  }
  for (; w < nw; ++w) dst[w] = a[w] & ~b[w];
}

/// Per-byte popcount via the nibble lookup table (Mula), summed into four
/// u64 lanes by SAD against zero.
inline __m256i popcount_bytes(__m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                      _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

inline std::size_t horizontal_sum_epi64(__m256i acc) {
  std::uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return static_cast<std::size_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
}

std::size_t avx2_popcount(const std::uint64_t* row, std::size_t nw) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t w = 0;
  for (; w + 4 <= nw; w += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + w));
    acc = _mm256_add_epi64(acc, popcount_bytes(v));
  }
  std::size_t c = horizontal_sum_epi64(acc);
  for (; w < nw; ++w) {
    c += static_cast<std::size_t>(__builtin_popcountll(row[w]));
  }
  return c;
}

std::size_t avx2_and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t nw) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t w = 0;
  for (; w + 4 <= nw; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    acc = _mm256_add_epi64(acc, popcount_bytes(_mm256_and_si256(va, vb)));
  }
  std::size_t c = horizontal_sum_epi64(acc);
  for (; w < nw; ++w) {
    c += static_cast<std::size_t>(__builtin_popcountll(a[w] & b[w]));
  }
  return c;
}

std::size_t avx2_first_bit(const std::uint64_t* row, std::size_t nw,
                           std::size_t none) {
  // The vector loop only skips all-zero 4-word blocks; the first nonzero
  // block falls through to the exact scalar scan.
  std::size_t w = 0;
  for (; w + 4 <= nw; w += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + w));
    if (!_mm256_testz_si256(v, v)) break;
  }
  for (; w < nw; ++w) {
    if (row[w]) {
      return w * 64 + static_cast<std::size_t>(__builtin_ctzll(row[w]));
    }
  }
  return none;
}

std::size_t avx2_count_nonzero_u8(const std::uint8_t* p, std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  std::size_t zeros = 0;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const unsigned mask = static_cast<unsigned>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)));
    zeros += static_cast<std::size_t>(__builtin_popcount(mask));
  }
  for (; i < n; ++i) zeros += p[i] == 0;
  return n - zeros;
}

std::uint64_t avx2_sum_u32(const std::uint32_t* p, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    acc = _mm256_add_epi64(acc,
                           _mm256_cvtepu32_epi64(_mm256_castsi256_si128(v)));
    acc = _mm256_add_epi64(acc,
                           _mm256_cvtepu32_epi64(_mm256_extracti128_si256(v, 1)));
  }
  std::uint64_t s = horizontal_sum_epi64(acc);
  for (; i < n; ++i) s += p[i];
  return s;
}

void avx2_accumulate_u32_to_u64(std::uint64_t* acc, const std::uint32_t* p,
                                std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i v32 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const __m256i v64 = _mm256_cvtepu32_epi64(v32);
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        _mm256_add_epi64(a, v64));
  }
  for (; i < n; ++i) acc[i] += p[i];
}

const Kernels kTable = {
    Level::kAvx2,
    avx2_and_rows,
    avx2_and_not_rows,
    avx2_popcount,
    avx2_and_popcount,
    avx2_first_bit,
    swar_pack_bits,
    swar_unpack_bits,
    avx2_count_nonzero_u8,
    avx2_sum_u32,
    avx2_accumulate_u32_to_u64,
};

}  // namespace

const Kernels* avx2_table() { return &kTable; }

}  // namespace congestlb::simd::detail

#else  // !__AVX2__

namespace congestlb::simd::detail {

const Kernels* avx2_table() { return nullptr; }

}  // namespace congestlb::simd::detail

#endif
