// HTTP/JSON surface of the campaign service: binds a serve::Service to a
// serve::HttpServer handler. docs/SERVICE.md documents every endpoint;
// the summary:
//
//   GET  /v1/ping                     liveness probe
//   POST /v1/sweeps                   submit {"spec": <doc|builtin name>,
//                                     "client": "...", "priority": N}
//   GET  /v1/sweeps                   every known sweep, admission order
//   GET  /v1/sweeps/<key>             one sweep's status
//   GET  /v1/sweeps/<key>/manifest    canonical manifest (409 until done)
//   GET  /v1/sweeps/<key>/events      SSE progress feed (?since=<cursor>)
//   GET  /v1/stats                    pool/session/metrics snapshot
//   POST /v1/drain                    stop admitting (SIGTERM equivalent)
//
// Submission outcomes map onto status codes: kAccepted 202, kWarmHit and
// kDuplicate 200, kRejectedQuota 429, kDraining 503, kInvalid 400 — so a
// shell client can branch on the code alone.
//
// Kept separate from both sides on purpose: http.{hpp,cpp} stays a
// protocol library with no campaign types, service.{hpp,cpp} stays a
// sockets-free core the tests and the latency bench drive in-process.

#pragma once

#include "serve/http.hpp"
#include "serve/service.hpp"

namespace congestlb::serve {

/// Build the request handler for `service`. The service must outlive the
/// returned handler (the CLI owns both; tests scope them together).
HttpServer::Handler make_service_handler(Service& service);

}  // namespace congestlb::serve
