#include "graph/algorithms.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "support/expect.hpp"

namespace congestlb::graph {

std::vector<std::size_t> bfs_distances(const Graph& g, NodeId source) {
  CLB_EXPECT(source < g.num_nodes(), "bfs: source out of range");
  std::vector<std::size_t> dist(g.num_nodes(), kInfiniteDistance);
  std::queue<NodeId> q;
  dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    g.for_each_neighbor(u, [&](NodeId v) {
      if (dist[v] == kInfiniteDistance) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
    });
  }
  return dist;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(), [](std::size_t d) {
    return d == kInfiniteDistance;
  });
}

std::vector<std::size_t> connected_components(const Graph& g) {
  std::vector<std::size_t> comp(g.num_nodes(), kInfiniteDistance);
  // Flat FIFO shared across components: every vertex enters it exactly
  // once, so one n-sized buffer replaces a per-component deque (this scan
  // sits on the exact-solver hot path).
  std::vector<NodeId> queue;
  queue.reserve(g.num_nodes());
  std::size_t head = 0;
  std::size_t next = 0;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (comp[s] != kInfiniteDistance) continue;
    comp[s] = next;
    queue.push_back(s);
    while (head < queue.size()) {
      const NodeId u = queue[head++];
      g.for_each_neighbor(u, [&](NodeId v) {
        if (comp[v] == kInfiniteDistance) {
          comp[v] = next;
          queue.push_back(v);
        }
      });
    }
    ++next;
  }
  return comp;
}

std::size_t diameter(const Graph& g) {
  CLB_EXPECT(g.num_nodes() > 0, "diameter: empty graph");
  std::size_t diam = 0;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    auto dist = bfs_distances(g, s);
    for (std::size_t d : dist) {
      CLB_EXPECT(d != kInfiniteDistance, "diameter: graph must be connected");
      diam = std::max(diam, d);
    }
  }
  return diam;
}

std::vector<std::size_t> greedy_coloring(const Graph& g) {
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return g.degree(a) > g.degree(b) || (g.degree(a) == g.degree(b) && a < b);
  });
  std::vector<std::size_t> color(g.num_nodes(), kInfiniteDistance);
  std::vector<bool> taken;
  for (NodeId v : order) {
    taken.assign(g.degree(v) + 1, false);
    g.for_each_neighbor(v, [&](NodeId nb) {
      if (color[nb] != kInfiniteDistance && color[nb] < taken.size()) {
        taken[color[nb]] = true;
      }
    });
    std::size_t c = 0;
    while (taken[c]) ++c;
    color[v] = c;
  }
  return color;
}

}  // namespace congestlb::graph
