#include "support/deadline.hpp"

#include "support/expect.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"

namespace congestlb {

std::uint64_t backoff_delay_us(std::uint64_t seed, std::size_t attempt,
                               std::uint64_t base_us, std::uint64_t cap_us) {
  CLB_EXPECT(base_us >= 1, "backoff: base_us must be >= 1");
  CLB_EXPECT(cap_us >= base_us, "backoff: cap_us must be >= base_us");
  // Envelope base * 2^attempt, saturating at the cap (the shift would
  // overflow long before a plausible cap, so clamp by division instead).
  std::uint64_t envelope = cap_us;
  if (attempt < 64 && (cap_us >> attempt) > base_us) {
    envelope = base_us << attempt;
  }
  // Uniform jitter in [envelope/2, envelope]: full decorrelation across
  // jobs (seed) and attempts, while never collapsing below half the
  // envelope — retries always back off, they just don't march in lockstep.
  const std::uint64_t lo = envelope / 2;
  Rng rng(hash_mix(seed, attempt));
  return lo + rng.below(envelope - lo + 1);
}

}  // namespace congestlb
