#include "sim/traffic.hpp"

#include "support/expect.hpp"
#include "support/hash.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"

namespace congestlb::sim {

namespace {

using graph::NodeId;

std::size_t pattern_bits(std::size_t n) {
  return static_cast<std::size_t>(
      std::max(1, ceil_log2(std::max<std::size_t>(2, n))));
}

}  // namespace

std::string_view to_string(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kUniformRandom:
      return "uniform-random";
    case TrafficPattern::kBitComplement:
      return "bit-complement";
    case TrafficPattern::kShuffle:
      return "shuffle";
    case TrafficPattern::kTranspose:
      return "transpose";
    case TrafficPattern::kTornado:
      return "tornado";
  }
  return "?";
}

std::optional<TrafficPattern> traffic_pattern_from_string(
    std::string_view s) {
  for (TrafficPattern p : kAllTrafficPatterns) {
    if (to_string(p) == s) return p;
  }
  return std::nullopt;
}

std::vector<NodeId> traffic_destinations(TrafficPattern p, std::size_t n,
                                         std::uint64_t seed) {
  CLB_EXPECT(n >= 1, "traffic: n must be >= 1");
  std::vector<NodeId> dest(n);
  const std::size_t b = pattern_bits(n);
  // Transpose swaps bit halves, so it works over an even bit width.
  const std::size_t be = b + (b % 2);
  const std::uint64_t mask = (b >= 64) ? ~0ULL : ((1ULL << b) - 1);
  const std::uint64_t emask = (be >= 64) ? ~0ULL : ((1ULL << be) - 1);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t d = 0;
    switch (p) {
      case TrafficPattern::kUniformRandom: {
        Rng rng(hash_mix(seed, 0x7261ffULL, i));
        d = rng.below(n);
        break;
      }
      case TrafficPattern::kBitComplement:
        d = (~static_cast<std::uint64_t>(i)) & mask;
        break;
      case TrafficPattern::kShuffle:
        d = ((static_cast<std::uint64_t>(i) << 1) |
             (static_cast<std::uint64_t>(i) >> (b - 1))) &
            mask;
        break;
      case TrafficPattern::kTranspose: {
        const std::size_t half = be / 2;
        const std::uint64_t lo = i & ((1ULL << half) - 1);
        const std::uint64_t hi = static_cast<std::uint64_t>(i) >> half;
        d = ((lo << half) | hi) & emask;
        break;
      }
      case TrafficPattern::kTornado:
        d = static_cast<std::uint64_t>(i) + n / 2;
        break;
    }
    dest[i] = static_cast<NodeId>(d % n);
  }
  return dest;
}

graph::Graph traffic_graph(TrafficPattern p, std::size_t n,
                           std::uint64_t seed) {
  CLB_EXPECT(n >= 1, "traffic: n must be >= 1");
  graph::Graph g(n);
  for (NodeId v = 0; v < n; ++v) {
    g.set_weight(v, static_cast<graph::Weight>(
                        1 + (hash_mix(seed, 0x77ULL, v) % 8)));
  }
  const auto dest = traffic_destinations(p, n, seed);
  for (NodeId i = 0; i < n; ++i) {
    const NodeId d = dest[i];
    if (d != i && !g.has_edge(i, d)) g.add_edge(i, d);
  }
  for (NodeId i = 0; i + 1 < n; ++i) {
    if (!g.has_edge(i, i + 1)) g.add_edge(i, i + 1);
  }
  return g;
}

namespace {

constexpr std::size_t kMaxValueBits = 16;

class TrafficStressProgram final : public congest::NodeProgram {
 public:
  TrafficStressProgram(std::size_t duration, std::uint64_t seed)
      : duration_(duration), seed_(seed) {}

  void round(const congest::NodeInfo& info, const congest::Inbox& inbox,
             congest::Outbox& outbox, Rng& /*rng*/) override {
    if (finished_) return;
    if (value_bits_ == 0) {
      CLB_EXPECT(info.bits_per_edge >= 2, "traffic: bandwidth too small");
      chk_bits_ = std::min<std::size_t>(6, info.bits_per_edge / 2);
      value_bits_ = std::min(kMaxValueBits, info.bits_per_edge - chk_bits_);
    }
    for (const auto& slot : inbox) {
      if (!slot) continue;
      congest::MessageReader r(*slot);
      const std::uint64_t value = r.get(value_bits_);
      if (r.get(chk_bits_) == congest::fold_checksum(value, chk_bits_)) {
        ++received_;
      } else {
        ++rejected_;
      }
    }
    if (round_ < duration_ && !info.neighbors.empty()) {
      const std::size_t slot = (round_ + info.id) % info.neighbors.size();
      const std::uint64_t value =
          hash_mix(seed_, info.id, round_) &
          ((value_bits_ >= 64) ? ~0ULL : ((1ULL << value_bits_) - 1));
      outbox.send(slot,
                  std::move(congest::MessageWriter()
                                .put(value, value_bits_)
                                .put(congest::fold_checksum(value, chk_bits_),
                                     chk_bits_))
                      .finish());
    }
    ++round_;
    // Sends from round duration_-1 arrive in round duration_; nothing of
    // ours is in flight after that.
    if (round_ > duration_) finished_ = true;
  }

  bool finished() const override { return finished_; }
  std::int64_t output() const override {
    return static_cast<std::int64_t>(received_);
  }
  std::string diagnostic() const override {
    return rejected_ == 0 ? std::string{}
                          : std::to_string(rejected_) +
                                " checksum-rejected deliveries";
  }

 private:
  std::size_t duration_;
  std::uint64_t seed_;
  std::size_t value_bits_ = 0;
  std::size_t chk_bits_ = 0;
  std::size_t round_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t rejected_ = 0;
  bool finished_ = false;
};

}  // namespace

congest::ProgramFactory traffic_stress_factory(std::size_t duration,
                                               std::uint64_t seed) {
  return [duration, seed](NodeId, const congest::NodeInfo&) {
    return std::make_unique<TrafficStressProgram>(duration, seed);
  };
}

}  // namespace congestlb::sim
