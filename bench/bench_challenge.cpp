// Experiment CHG: "The Challenge" (Section 1) — why the reduction targets
// *promise pairwise* disjointness instead of plain multi-party
// set-disjointness.
//
// For plain t-party set-disjointness the NO case ("no index where all
// strings are 1") contains many sub-cases of pairwise intersections, and
// the paper observes that the gadget's MaxIS value depends on those
// sub-cases. We demonstrate it mechanically for t = 3: all inputs below
// are NO instances of plain 3-party disjointness, yet their exact MaxIS
// values differ according to which pairs intersect — so no single gap
// threshold can decide plain disjointness, while the promise (pairwise
// disjoint vs uniquely intersecting) removes every problematic sub-case.

#include <iostream>

#include "lowerbound/linear_family.hpp"
#include "maxis/branch_and_bound.hpp"
#include "support/table.hpp"

namespace clb = congestlb;
using clb::Table;

namespace {

/// 3 strings of length k with a prescribed pairwise-intersection pattern
/// and NO common index.
std::vector<std::vector<std::uint8_t>> pattern_strings(std::size_t k,
                                                       bool i12, bool i13,
                                                       bool i23) {
  // Reserve distinct indices for each requested pairwise intersection.
  std::vector<std::vector<std::uint8_t>> s(3, std::vector<std::uint8_t>(k, 0));
  std::size_t next = 0;
  auto add_pair = [&](std::size_t a, std::size_t b) {
    s[a][next] = 1;
    s[b][next] = 1;
    ++next;
  };
  if (i12) add_pair(0, 1);
  if (i13) add_pair(0, 2);
  if (i23) add_pair(1, 2);
  // One private index per player, so every string is nonempty.
  for (std::size_t i = 0; i < 3; ++i) {
    s[i][next++] = 1;
  }
  return s;
}

}  // namespace

int main() {
  std::cout << "=== bench_challenge: why promise pairwise disjointness ===\n";
  const std::size_t t = 3;
  const auto p = clb::lb::GadgetParams::from_l_alpha(5, 1, 6);
  const clb::lb::LinearConstruction c(p, t);

  clb::print_heading(
      std::cout,
      "t = 3, all inputs are NO instances of PLAIN set-disjointness "
      "(no triple intersection)");
  Table tbl({"x1&x2", "x1&x3", "x2&x3", "exact MaxIS", "promise-legal",
             "NO bound (t+1)l+at^2"});
  for (int mask = 0; mask < 8; ++mask) {
    const bool i12 = mask & 1, i13 = mask & 2, i23 = mask & 4;
    const auto strings = pattern_strings(p.k, i12, i13, i23);
    const auto g = c.instantiate_raw(strings);
    const auto opt = clb::maxis::solve_exact(g).weight;
    const bool promise_legal =
        clb::comm::classify(strings) != clb::comm::InstanceClass::kPromiseViolation;
    tbl.row(i12, i13, i23, opt, promise_legal, c.no_bound());
  }
  tbl.print(std::cout);

  std::cout
      << "\nReading the table: the exact MaxIS of the NO-side gadget varies "
         "with the pairwise-intersection\npattern (every extra intersecting "
         "pair adds weight), so a reduction to plain multi-party\n"
         "set-disjointness would need one threshold separating ALL these "
         "sub-cases from the YES case —\nimpossible once some NO sub-case "
         "weight reaches the YES weight ("
      << c.yes_weight()
      << " here). The promise keeps only the all-pairwise-disjoint row "
         "(no,no,no), restoring the gap.\n";
  return 0;
}
