// Experiment T5: the simulation argument of Theorem 5 executed end-to-end.
//
// t players simulate a CONGEST algorithm on G_xbar / F_xbar; every message
// crossing between players' parts is posted to a shared blackboard. The
// tables report, per run: rounds T, |cut|, bits on the board, the
// Theorem-5 budget T * 2|cut| * B, the algorithm's answer to promise
// pairwise disjointness via the gap predicate, and correctness.
//
// With the universal exact algorithm the answer is always right; with the
// local weighted-greedy the accounting still holds but the answer can be
// wrong — exactly the distinction the lower bound exploits (fast local
// algorithms cannot decide the gap).

#include <iostream>

#include "comm/lower_bound.hpp"
#include "congest/algorithms/universal_maxis.hpp"
#include "congest/algorithms/weighted_greedy.hpp"
#include "maxis/branch_and_bound.hpp"
#include "sim/reduction.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace clb = congestlb;
using clb::Table;

namespace {

clb::congest::LocalMaxIsSolver exact_solver() {
  return [](const clb::graph::Graph& g) {
    return clb::maxis::solve_exact(g).nodes;
  };
}

void add_row(Table& t, const std::string& algo, const std::string& branch,
             const clb::sim::ReductionReport& rep) {
  t.add_row({algo, branch, std::to_string(rep.n), std::to_string(rep.t),
             std::to_string(rep.rounds), std::to_string(rep.cut_edges),
             std::to_string(rep.blackboard_bits),
             std::to_string(rep.theorem5_budget),
             rep.accounting_ok ? "yes" : "NO",
             rep.decided_disjoint ? "disjoint" : "intersecting",
             rep.correct ? "yes" : "no"});
}

}  // namespace

int main() {
  std::cout << "=== bench_simulation: Theorem 5 end-to-end ===\n";
  clb::Rng rng(99);

  clb::print_heading(std::cout,
                     "linear family, universal exact algorithm (both branches)");
  Table t({"algorithm", "branch", "n", "t", "rounds", "cut", "board bits",
           "budget T*2|cut|*B", "bits<=budget", "decided", "correct"});
  for (std::size_t tp : {2, 3}) {
    const auto p = clb::lb::GadgetParams::for_linear_separation(tp, 1);
    const clb::lb::LinearConstruction c(p, tp);
    clb::congest::NetworkConfig cfg;
    cfg.bits_per_edge = clb::congest::universal_required_bits(
        c.num_nodes(), static_cast<clb::graph::Weight>(p.ell));
    cfg.max_rounds = 500'000;
    for (bool intersecting : {true, false}) {
      const auto inst =
          intersecting
              ? clb::comm::make_uniquely_intersecting(p.k, tp, rng, 0.3)
              : clb::comm::make_pairwise_disjoint(p.k, tp, rng, 0.3);
      clb::comm::Blackboard board(tp);
      const auto rep = clb::sim::run_linear_reduction(
          c, inst, clb::congest::universal_maxis_factory(exact_solver()),
          board, cfg);
      add_row(t, "universal-exact", intersecting ? "YES" : "NO", rep);
    }
  }

  // The fast local algorithm: accounting holds, decision unreliable.
  {
    const std::size_t tp = 3;
    const auto p = clb::lb::GadgetParams::for_linear_separation(tp, 1);
    const clb::lb::LinearConstruction c(p, tp);
    for (bool intersecting : {true, false}) {
      const auto inst =
          intersecting
              ? clb::comm::make_uniquely_intersecting(p.k, tp, rng, 0.3)
              : clb::comm::make_pairwise_disjoint(p.k, tp, rng, 0.3);
      clb::comm::Blackboard board(tp);
      clb::congest::NetworkConfig cfg;
      cfg.max_rounds = 100'000;
      const auto rep = clb::sim::run_linear_reduction(
          c, inst, clb::congest::weighted_greedy_factory(), board, cfg);
      add_row(t, "weighted-greedy", intersecting ? "YES" : "NO", rep);
    }
  }
  t.print(std::cout);

  clb::print_heading(std::cout, "quadratic family, universal exact algorithm");
  Table q({"algorithm", "branch", "n", "t", "rounds", "cut", "board bits",
           "budget T*2|cut|*B", "bits<=budget", "decided", "correct"});
  {
    const std::size_t tp = 2;
    const auto p = clb::lb::GadgetParams::from_l_alpha(3, 1, 4);
    const clb::lb::QuadraticConstruction c(p, tp);
    clb::congest::NetworkConfig cfg;
    cfg.bits_per_edge = clb::congest::universal_required_bits(
        c.num_nodes(), static_cast<clb::graph::Weight>(p.ell));
    cfg.max_rounds = 500'000;
    const auto inst = clb::comm::make_uniquely_intersecting(c.string_length(),
                                                            tp, rng, 0.4);
    clb::comm::Blackboard board(tp);
    const auto rep = clb::sim::run_quadratic_reduction(
        c, inst, clb::congest::universal_maxis_factory(exact_solver()), board,
        cfg);
    add_row(q, "universal-exact", "YES", rep);
  }
  q.print(std::cout);

  clb::print_heading(std::cout,
                     "cut-traffic profile over rounds (universal, t=2, YES)");
  {
    const auto p = clb::lb::GadgetParams::for_linear_separation(2, 1);
    const clb::lb::LinearConstruction c(p, 2);
    clb::congest::NetworkConfig cfg;
    cfg.bits_per_edge = clb::congest::universal_required_bits(
        c.num_nodes(), static_cast<clb::graph::Weight>(p.ell));
    cfg.max_rounds = 500'000;
    const auto inst = clb::comm::make_uniquely_intersecting(p.k, 2, rng, 0.3);
    clb::comm::Blackboard board(2);
    const auto rep = clb::sim::run_linear_reduction(
        c, inst, clb::congest::universal_maxis_factory(exact_solver()), board,
        cfg);
    const auto& series = rep.cut_bits_per_round;
    const std::uint64_t cap =
        static_cast<std::uint64_t>(2 * rep.cut_edges) * rep.bits_per_edge;
    Table prof({"round", "cut bits", "per-round cap 2|cut|B", "utilization"});
    for (std::size_t r : {std::size_t{1}, series.size() / 4,
                          series.size() / 2, 3 * series.size() / 4,
                          series.size() - 1}) {
      if (r >= series.size()) continue;
      prof.row(r, series[r], cap,
               clb::fmt_double(static_cast<double>(series[r]) /
                                   static_cast<double>(cap),
                               3));
    }
    prof.print(std::cout);
    std::cout << "  (every round stays under the per-round cap; the "
                 "Theorem-5 budget is the cap summed over rounds)\n";
  }

  clb::print_heading(std::cout,
                     "implied CC protocol cost vs the CKS lower bound");
  std::cout
      << "  The board bits above ARE a correct protocol's cost for promise\n"
         "  pairwise disjointness, so they must exceed Omega(k / t log t):\n";
  {
    Table ck({"t", "k", "board bits (universal, YES)", "CKS bound k/(t lg t)"});
    for (std::size_t tp : {2, 3}) {
      const auto p = clb::lb::GadgetParams::for_linear_separation(tp, 1);
      const clb::lb::LinearConstruction c(p, tp);
      clb::congest::NetworkConfig cfg;
      cfg.bits_per_edge = clb::congest::universal_required_bits(
          c.num_nodes(), static_cast<clb::graph::Weight>(p.ell));
      cfg.max_rounds = 500'000;
      const auto inst =
          clb::comm::make_uniquely_intersecting(p.k, tp, rng, 0.3);
      clb::comm::Blackboard board(tp);
      const auto rep = clb::sim::run_linear_reduction(
          c, inst, clb::congest::universal_maxis_factory(exact_solver()),
          board, cfg);
      ck.row(tp, p.k, rep.blackboard_bits,
             clb::fmt_double(clb::comm::cks_lower_bound_bits(p.k, tp), 1));
    }
    ck.print(std::cout);
  }

  std::cout << "\nSimulation experiments completed.\n";
  return 0;
}
