// The approximation-contract suite for the upper-bound algorithm zoo:
// KKSS-style (1+eps)-approximate MaxIS (congest/approx_mis.hpp) and the
// Assadi–Kol–Zhang blackboard MIS protocols (congest/blackboard_mis.hpp),
// sampled across workloads, seeds, thread counts, and fault profiles via
// the contract harness (approx_contract.hpp). Traffic-pattern graphs
// (sim/traffic.hpp) serve as the structured stress workloads.

#include <gtest/gtest.h>

#include <algorithm>

#include "approx_contract.hpp"
#include "campaign/campaign.hpp"
#include "campaign/manifest.hpp"
#include "congest/approx_mis.hpp"
#include "congest/blackboard_mis.hpp"
#include "congest/network.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "lowerbound/linear_family.hpp"
#include "lowerbound/params.hpp"
#include "maxis/branch_and_bound.hpp"
#include "maxis/verify.hpp"
#include "sim/traffic.hpp"
#include "support/rng.hpp"

namespace congestlb::testing {
namespace {

// ------------------------------------------------------ random workloads --

TEST(ApproxContract, RandomGraphsFaultFree) {
  const auto failure = check_seeds(
      approx_mis_contract_property({}, /*randomize_faults=*/false),
      /*base_seed=*/101, /*instances=*/6, /*max_size=*/10);
  EXPECT_FALSE(failure.has_value()) << failure->describe();
}

TEST(ApproxContract, RandomGraphsUnderFaults) {
  const auto failure = check_seeds(
      approx_mis_contract_property({}, /*randomize_faults=*/true),
      /*base_seed=*/211, /*instances=*/5, /*max_size=*/8);
  EXPECT_FALSE(failure.has_value()) << failure->describe();
}

TEST(ApproxContract, TighterEpsilonStillMeetsRatio) {
  ApproxContractOptions opts;
  opts.eps_num = 1;
  opts.eps_den = 8;
  const auto failure =
      check_seeds(approx_mis_contract_property(opts, false),
                  /*base_seed=*/307, /*instances=*/4, /*max_size=*/8);
  EXPECT_FALSE(failure.has_value()) << failure->describe();
}

TEST(ApproxContract, BlackboardProtocols) {
  const auto failure = check_seeds(blackboard_contract_property(),
                                   /*base_seed=*/401, /*instances=*/8,
                                   /*max_size=*/14);
  EXPECT_FALSE(failure.has_value()) << failure->describe();
}

// ------------------------------------------------------ traffic workloads --
// The interconnect patterns are the adversarial-structure workloads: rings
// with long chords (tornado, shuffle) and bipartite-ish matchings
// (bit-complement, transpose).

class TrafficWorkloadSweep
    : public ::testing::TestWithParam<sim::TrafficPattern> {};

TEST_P(TrafficWorkloadSweep, ApproxMisContractHolds) {
  const auto g = sim::traffic_graph(GetParam(), 12, /*seed=*/5);
  const auto failure = check_approx_mis_contract(g, /*seed=*/5);
  EXPECT_FALSE(failure.has_value()) << *failure;
}

TEST_P(TrafficWorkloadSweep, BlackboardContractHolds) {
  const auto g = sim::traffic_graph(GetParam(), 16, /*seed=*/6);
  const auto failure = check_blackboard_contract(g, /*seed=*/6, /*players=*/4);
  EXPECT_FALSE(failure.has_value()) << *failure;
}

INSTANTIATE_TEST_SUITE_P(Patterns, TrafficWorkloadSweep,
                         ::testing::ValuesIn(sim::kAllTrafficPatterns));

// ------------------------------------------------------- gadget workloads --
// The paper's own hard instances: instantiated linear-family gadgets, where
// the exact solver certifies the optimum. Acceptance requires the measured
// KKSS ratio <= 1 + eps on every such instance.

TEST(ApproxContract, LinearGadgetInstancesMeetRatio) {
  const auto params = lb::GadgetParams::from_l_alpha(2, 1, 3);
  const lb::LinearConstruction c(params, 2);
  ASSERT_LE(c.num_nodes(), 24u);

  // The fixed (all-weights-1) gadget graph.
  auto failure = check_approx_mis_contract(c.fixed_graph(), /*seed=*/1);
  EXPECT_FALSE(failure.has_value()) << "fixed graph: " << *failure;

  // Instantiated (reweighted) gadgets over a few input patterns.
  Rng rng(17);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<std::vector<std::uint8_t>> strings(
        2, std::vector<std::uint8_t>(params.k, 0));
    for (auto& s : strings) {
      for (auto& bit : s) bit = rng.chance(0.5) ? 1 : 0;
    }
    const auto g = c.instantiate_raw(strings);
    failure = check_approx_mis_contract(g, /*seed=*/trial + 2);
    EXPECT_FALSE(failure.has_value())
        << "instantiated trial " << trial << ": " << *failure;
  }
}

// ----------------------------------------------------------- unit pinning --

congest::LocalMaxIsSolver exact_solver() {
  return [](const graph::Graph& g) { return maxis::solve_exact(g).nodes; };
}

TEST(ApproxMis, SingleCliqueTakesHeaviest) {
  graph::Graph g(5);
  std::vector<graph::NodeId> all{0, 1, 2, 3, 4};
  for (graph::NodeId u = 0; u < 5; ++u) {
    for (graph::NodeId v = u + 1; v < 5; ++v) g.add_edge(u, v);
    g.set_weight(u, 1 + u);
  }
  congest::NetworkConfig cfg;
  cfg.bits_per_edge = congest::approx_mis_local_bits(5, 5);
  congest::Network net(g, congest::approx_mis_factory(exact_solver()), cfg);
  const auto stats = net.run();
  ASSERT_TRUE(stats.all_finished);
  EXPECT_EQ(net.selected_nodes(), (std::vector<graph::NodeId>{4}));
}

TEST(ApproxMis, PathIsSolvedOptimally) {
  // Unweighted path 0-1-2-3-4: OPT = {0,2,4} with weight 3; a (1+1/4)
  // approximation must reach weight >= 3 * 4/5 = 2.4, i.e. >= 3 here
  // because carves solve their balls exactly.
  graph::Graph g(5);
  for (graph::NodeId v = 0; v + 1 < 5; ++v) g.add_edge(v, v + 1);
  congest::NetworkConfig cfg;
  cfg.bits_per_edge = congest::approx_mis_local_bits(5, 1);
  congest::Network net(g, congest::approx_mis_factory(exact_solver()), cfg);
  const auto stats = net.run();
  ASSERT_TRUE(stats.all_finished);
  const auto sel = net.selected_nodes();
  EXPECT_TRUE(g.is_independent_set(sel));
  EXPECT_GE(g.weight_of(sel) * 5, maxis::solve_exact(g).weight * 4);
}

TEST(ApproxMis, RejectsBandwidthBelowFloor) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  congest::NetworkConfig cfg;
  cfg.bits_per_edge = congest::approx_mis_required_bits(4, 1) - 1;
  congest::Network net(g, congest::approx_mis_factory(exact_solver()), cfg);
  EXPECT_THROW(net.run(), InvariantError);
}

TEST(ApproxMis, RejectsNullSolver) {
  EXPECT_THROW(congest::approx_mis_factory(nullptr)(0, congest::NodeInfo{}),
               InvariantError);
}

TEST(ApproxMis, SigmaShrinksWithBandwidth) {
  // At the CONGEST floor sigma is maximal; at local bits it is 1. The
  // quantitative LOCAL/CONGEST gap the bench sweep charts.
  const std::size_t n = 32;
  const std::size_t floor_bits = congest::approx_mis_required_bits(n, 8);
  const std::size_t local_bits = congest::approx_mis_local_bits(n, 8);
  EXPECT_GT(congest::approx_mis_sigma(n, floor_bits), 1u);
  EXPECT_EQ(congest::approx_mis_sigma(n, local_bits), 1u);
  EXPECT_GT(congest::approx_mis_round_bound(n, 100, 1, 4, floor_bits),
            congest::approx_mis_round_bound(n, 100, 1, 4, local_bits));
}

TEST(BlackboardMis, FullRevelationBitsAreExact) {
  Rng rng(9);
  const auto g = graph::gnp_random_connected(rng, 12, 0.3);
  comm::Blackboard board(3);
  const auto rep = congest::full_revelation_mis(g, 3, board);
  EXPECT_EQ(rep.bits_posted, g.num_edges() * 2 * 4);  // id_bits(12) = 4
  EXPECT_EQ(rep.blackboard_rounds, 1u);
  EXPECT_EQ(board.total_bits(), rep.bits_posted);
}

TEST(BlackboardMis, LubyIndependentOfPlayerCount) {
  Rng rng(11);
  const auto g = graph::gnp_random_connected(rng, 20, 0.2);
  std::vector<std::vector<graph::NodeId>> results;
  for (const std::size_t players : {1, 2, 5}) {
    comm::Blackboard board(std::max<std::size_t>(2, players));
    results.push_back(
        congest::luby_blackboard_mis(g, players, board, /*seed=*/77).mis);
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(BlackboardMis, RejectsBadPlayerCount) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  comm::Blackboard board(2);
  EXPECT_THROW(congest::full_revelation_mis(g, 0, board), InvariantError);
  EXPECT_THROW(congest::full_revelation_mis(g, 5, board), InvariantError);
}

// ------------------------------------------------------ campaign builtins --
// The algorithm sweeps as resumable campaigns: every check must hold, and
// the records must survive a manifest round trip bit for bit.

TEST(ApproxCampaign, BuiltinApproxSweepAllHold) {
  const auto spec = campaign::builtin_campaign("approx_sweep");
  ASSERT_TRUE(spec.has_value());
  campaign::RunOptions opts;
  opts.threads = 2;
  const auto result = campaign::run_campaign(*spec, opts);
  EXPECT_TRUE(result.all_hold);
  EXPECT_EQ(result.checks, 6u);  // 3 shapes x 2 eps sweeps
  EXPECT_EQ(result.checks_holding, result.checks);

  // Algorithm records round-trip through the manifest exactly.
  std::ostringstream os;
  campaign::write_manifest(os, result, {.include_volatile = false});
  const auto parsed = campaign::read_manifest(os.str());
  EXPECT_TRUE(parsed.all_hold);
  const auto* rec = result.find("A8/ell=2,alpha=1,t=2,k=3/check");
  ASSERT_NE(rec, nullptr);
  EXPECT_GE(rec->outcome.alg_weight, 0);
  EXPECT_GT(rec->outcome.rounds, 0u);
  EXPECT_LE(rec->outcome.rounds, rec->outcome.round_bound);
  const auto it = parsed.records.find(rec->id);
  ASSERT_NE(it, parsed.records.end());
  EXPECT_EQ(it->second.outcome.alg_weight, rec->outcome.alg_weight);
  EXPECT_EQ(it->second.outcome.rounds, rec->outcome.rounds);
  EXPECT_EQ(it->second.outcome.bits, rec->outcome.bits);
}

TEST(ApproxCampaign, BuiltinBlackboardSweepAllHold) {
  const auto spec = campaign::builtin_campaign("blackboard_sweep");
  ASSERT_TRUE(spec.has_value());
  const auto result = campaign::run_campaign(*spec, {});
  EXPECT_TRUE(result.all_hold);
  EXPECT_EQ(result.checks, 4u);
}

TEST(ApproxCampaign, EpsRoundTripsThroughSpecText) {
  const auto spec = campaign::builtin_approx_campaign();
  std::ostringstream os;
  campaign::write_campaign_spec(os, spec);
  const auto reparsed = campaign::parse_campaign_spec_text(os.str());
  EXPECT_EQ(spec.canonical(), reparsed.canonical());
  EXPECT_EQ(spec.content_hash(), reparsed.content_hash());
  ASSERT_EQ(reparsed.sweeps.size(), 2u);
  EXPECT_EQ(reparsed.sweeps[1].eps_den, 8u);
}

TEST(ApproxCampaign, DefaultEpsKeepsLegacyCanonicalForm) {
  // The eps knob must be invisible in pre-approx specs: their canonical
  // text (and with it every content hash and cache key) is unchanged.
  const auto smoke = campaign::builtin_smoke_campaign();
  EXPECT_EQ(smoke.canonical().find("eps"), std::string::npos);
  const auto kind = campaign::check_kind_from_string("approx");
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(campaign::to_string(*kind), "approx");
  EXPECT_EQ(campaign::to_string(campaign::CheckKind::kBlackboardSweep),
            "blackboard");
}

// -------------------------------------------------- clique-partition bound --

TEST(CliquePartitionBound, IsAValidUpperBound) {
  Rng rng(13);
  for (int i = 0; i < 8; ++i) {
    auto g = graph::gnp_random_connected(rng, 4 + rng.below(14),
                                         0.1 + rng.uniform() * 0.5);
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      g.set_weight(v, static_cast<graph::Weight>(1 + rng.below(10)));
    }
    EXPECT_GE(maxis::clique_partition_upper_bound(g),
              maxis::solve_exact(g).weight);
  }
}

TEST(CliquePartitionBound, TightOnCliquesAndEmptyGraphs) {
  graph::Graph clique(6);
  for (graph::NodeId u = 0; u < 6; ++u) {
    clique.set_weight(u, 1 + u);
    for (graph::NodeId v = u + 1; v < 6; ++v) clique.add_edge(u, v);
  }
  EXPECT_EQ(maxis::clique_partition_upper_bound(clique), 6);

  graph::Graph empty(4);
  for (graph::NodeId v = 0; v < 4; ++v) empty.set_weight(v, 2);
  EXPECT_EQ(maxis::clique_partition_upper_bound(empty), 8);
}

}  // namespace
}  // namespace congestlb::testing
