#include "serve/routes.hpp"

#include <sstream>
#include <string>

#include "support/json.hpp"

namespace congestlb::serve {

namespace {

/// Minimal JSON string escaping for the one-line event/status documents
/// (SSE frames must be single-line; JsonWriter pretty-prints).
std::string esc(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string event_json(const ServeEvent& ev) {
  std::ostringstream out;
  out << "{\"seq\": " << ev.seq << ", \"sweep\": \"" << esc(ev.sweep)
      << "\", \"kind\": \"" << esc(ev.kind) << "\"";
  if (!ev.job_id.empty()) {
    out << ", \"job\": \"" << esc(ev.job_id) << "\", \"stage\": \""
        << esc(ev.stage) << "\"";
  }
  if (!ev.verdict.empty()) {
    out << ", \"verdict\": \"" << esc(ev.verdict) << "\"";
  }
  out << ", \"jobs_done\": " << ev.jobs_done
      << ", \"jobs_total\": " << ev.jobs_total << "}";
  return out.str();
}

std::string status_json(const SweepStatus& st) {
  std::ostringstream out;
  out << "{\"sweep\": \"" << esc(st.sweep) << "\", \"name\": \""
      << esc(st.name) << "\", \"client\": \"" << esc(st.client)
      << "\", \"priority\": " << st.priority << ", \"state\": \""
      << to_string(st.state) << "\", \"jobs_done\": " << st.jobs_done
      << ", \"jobs_total\": " << st.jobs_total
      << ", \"all_hold\": " << (st.all_hold ? "true" : "false");
  if (!st.diagnostic.empty()) {
    out << ", \"diagnostic\": \"" << esc(st.diagnostic) << "\"";
  }
  out << "}";
  return out.str();
}

int submit_status_code(SubmitOutcome outcome) {
  switch (outcome) {
    case SubmitOutcome::kAccepted: return 202;
    case SubmitOutcome::kWarmHit:
    case SubmitOutcome::kDuplicate: return 200;
    case SubmitOutcome::kRejectedQuota: return 429;
    case SubmitOutcome::kDraining: return 503;
    case SubmitOutcome::kInvalid: return 400;
  }
  return 500;
}

void handle_submit(Service& service, const HttpRequest& req, HttpConn& conn) {
  std::string client = "anon";
  int priority = 0;
  SubmitResult result;
  try {
    const JsonValue doc = parse_json(req.body);
    if (const JsonValue* c = doc.find("client")) client = c->as_string();
    if (const JsonValue* p = doc.find("priority")) {
      priority = static_cast<int>(p->as_i64());
    }
    const JsonValue& spec = doc.at("spec");
    if (spec.is_object()) {
      result = service.submit(client, campaign::parse_campaign_spec(spec),
                              priority);
    } else {
      result = service.submit_text(client, spec.as_string(), priority);
    }
  } catch (const std::exception& e) {
    result.outcome = SubmitOutcome::kInvalid;
    result.message = e.what();
  }
  std::ostringstream body;
  body << "{\"outcome\": \"" << to_string(result.outcome)
       << "\", \"sweep\": \"" << esc(result.sweep) << "\"";
  if (!result.message.empty()) {
    body << ", \"message\": \"" << esc(result.message) << "\"";
  }
  body << ", \"admit_ns\": " << result.admit_ns << "}\n";
  conn.respond({submit_status_code(result.outcome), "application/json",
                body.str()});
}

void handle_events(Service& service, const std::string& key,
                   const HttpRequest& req, HttpConn& conn) {
  if (!service.status(key)) {
    conn.respond({404, "application/json", "{\"error\": \"unknown sweep\"}\n"});
    return;
  }
  std::uint64_t cursor = 0;
  if (const std::string since = query_param(req.query, "since");
      !since.empty()) {
    cursor = std::strtoull(since.c_str(), nullptr, 10);
  }
  if (!conn.begin_sse()) return;
  while (true) {
    std::uint64_t next = cursor;
    const auto events =
        service.events().poll_wait(key, cursor, &next, /*timeout_ms=*/500);
    cursor = next;
    bool terminal = false;
    for (const ServeEvent& ev : events) {
      if (!conn.send_sse(event_json(ev))) return;  // peer gone
      terminal |= ev.kind == "completed" || ev.kind == "failed";
    }
    if (terminal) return;
    if (conn.server_stopping()) return;
    // The sweep may have finished before we subscribed (warm attach): end
    // the stream with a synthetic terminal frame instead of idling.
    if (events.empty()) {
      if (const auto st = service.status(key);
          st && (st->state == SweepState::kComplete ||
                 st->state == SweepState::kFailed)) {
        ServeEvent done;
        done.seq = cursor;
        done.sweep = key;
        done.kind =
            st->state == SweepState::kComplete ? "completed" : "failed";
        done.jobs_done = st->jobs_done;
        done.jobs_total = st->jobs_total;
        conn.send_sse(event_json(done));
        return;
      }
      if (!conn.send_sse_comment("heartbeat")) return;
    }
  }
}

void handle_stats(Service& service, HttpConn& conn) {
  std::ostringstream body;
  body << "{\"pool_executed\": " << service.pool_executed()
       << ", \"pool_errors\": " << service.pool_errors()
       << ", \"draining\": " << (service.draining() ? "true" : "false")
       << ", \"clients\": [";
  bool first = true;
  for (const auto& cs : service.session_stats()) {
    if (!first) body << ", ";
    first = false;
    body << "{\"client\": \"" << esc(cs.client)
         << "\", \"queued\": " << cs.queued
         << ", \"inflight\": " << cs.inflight << "}";
  }
  body << "], \"counters\": {";
  first = true;
  for (const auto& counter : service.metrics().counters()) {
    if (counter->name().rfind("serve.", 0) != 0) continue;
    if (!first) body << ", ";
    first = false;
    body << "\"" << esc(counter->name()) << "\": " << counter->value();
  }
  body << "}}\n";
  conn.respond({200, "application/json", body.str()});
}

}  // namespace

HttpServer::Handler make_service_handler(Service& service) {
  return [&service](const HttpRequest& req, HttpConn& conn) {
    const std::string& path = req.path;
    if (req.method == "GET" && path == "/v1/ping") {
      conn.respond({200, "application/json", "{\"ok\": true}\n"});
      return;
    }
    if (req.method == "POST" && path == "/v1/sweeps") {
      handle_submit(service, req, conn);
      return;
    }
    if (req.method == "GET" && path == "/v1/sweeps") {
      std::ostringstream body;
      body << "{\"sweeps\": [";
      bool first = true;
      for (const SweepStatus& st : service.list()) {
        if (!first) body << ", ";
        first = false;
        body << status_json(st);
      }
      body << "]}\n";
      conn.respond({200, "application/json", body.str()});
      return;
    }
    if (req.method == "GET" && path.rfind("/v1/sweeps/", 0) == 0) {
      const std::string rest = path.substr(std::string("/v1/sweeps/").size());
      const auto slash = rest.find('/');
      const std::string key = rest.substr(0, slash);
      const std::string sub =
          slash == std::string::npos ? "" : rest.substr(slash + 1);
      if (sub == "events") {
        handle_events(service, key, req, conn);
        return;
      }
      if (sub == "manifest") {
        const auto st = service.status(key);
        if (!st) {
          conn.respond(
              {404, "application/json", "{\"error\": \"unknown sweep\"}\n"});
        } else if (const auto text = service.manifest_text(key)) {
          conn.respond({200, "application/json", *text});
        } else {
          conn.respond({409, "application/json",
                        "{\"error\": \"sweep not complete\"}\n"});
        }
        return;
      }
      if (sub.empty()) {
        if (const auto st = service.status(key)) {
          conn.respond({200, "application/json", status_json(*st) + "\n"});
        } else {
          conn.respond(
              {404, "application/json", "{\"error\": \"unknown sweep\"}\n"});
        }
        return;
      }
    }
    if (req.method == "GET" && path == "/v1/stats") {
      handle_stats(service, conn);
      return;
    }
    if (req.method == "POST" && path == "/v1/drain") {
      service.begin_drain();
      conn.respond({200, "application/json", "{\"draining\": true}\n"});
      return;
    }
    conn.respond({404, "application/json", "{\"error\": \"not found\"}\n"});
  };
}

}  // namespace congestlb::serve
