// Baseline (weak) code-mappings used for ablation.
//
// The paper's gadget relies on codewords being far apart (Property 2 needs a
// matching of size >= ell between distinct codeword gadgets, which follows
// from distance >= ell). Plugging a weak code into the same gadget breaks
// the NO-side bound — bench_codes demonstrates exactly that, which is the
// "why does the error-correcting code matter" ablation from DESIGN.md.

#pragma once

#include "codes/code_mapping.hpp"

namespace congestlb::codes {

/// The identity mapping Sigma^L -> Sigma^L: distance 1 (any two distinct
/// messages differ somewhere). L = M, d = 1.
class IdentityCode final : public CodeMapping {
 public:
  IdentityCode(std::size_t length, std::uint64_t q);

  std::uint64_t alphabet_size() const override { return q_; }
  std::size_t message_length() const override { return len_; }
  std::size_t codeword_length() const override { return len_; }
  std::size_t min_distance() const override { return 1; }
  std::string name() const override;

  Word encode(std::span<const Symbol> message) const override;

 private:
  std::size_t len_;
  std::uint64_t q_;
};

/// Pad the message with a fixed symbol: Sigma^L -> Sigma^M, distance still 1.
/// Same (L, M) shape as Reed-Solomon but with no distance guarantee beyond 1.
class PaddingCode final : public CodeMapping {
 public:
  PaddingCode(std::size_t message_length, std::size_t codeword_length,
              std::uint64_t q);

  std::uint64_t alphabet_size() const override { return q_; }
  std::size_t message_length() const override { return len_l_; }
  std::size_t codeword_length() const override { return len_m_; }
  std::size_t min_distance() const override { return 1; }
  std::string name() const override;

  Word encode(std::span<const Symbol> message) const override;

 private:
  std::size_t len_l_;
  std::size_t len_m_;
  std::uint64_t q_;
};

/// Repeat a single symbol M times: Sigma^1 -> Sigma^M, distance M (maximum
/// possible), but only q messages. The opposite extreme from IdentityCode.
class RepetitionCode final : public CodeMapping {
 public:
  RepetitionCode(std::size_t codeword_length, std::uint64_t q);

  std::uint64_t alphabet_size() const override { return q_; }
  std::size_t message_length() const override { return 1; }
  std::size_t codeword_length() const override { return len_m_; }
  std::size_t min_distance() const override { return len_m_; }
  std::string name() const override;

  Word encode(std::span<const Symbol> message) const override;

 private:
  std::size_t len_m_;
  std::uint64_t q_;
};

}  // namespace congestlb::codes
