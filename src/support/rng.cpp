#include "support/rng.hpp"

#include "support/expect.hpp"

namespace congestlb {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  CLB_EXPECT(bound > 0, "Rng::below requires a positive bound");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  CLB_EXPECT(lo <= hi, "Rng::range requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::vector<std::size_t> Rng::sample(std::size_t n, std::size_t m) {
  CLB_EXPECT(m <= n, "Rng::sample requires m <= n");
  // Floyd's subset sampling: for j in [n-m, n), draw r in [0, j]; insert r,
  // or j if r already present. Uses a sorted vector as the set (m is small
  // in all our uses).
  std::vector<std::size_t> out;
  out.reserve(m);
  for (std::size_t j = n - m; j < n; ++j) {
    std::size_t r = static_cast<std::size_t>(below(j + 1));
    auto it = std::lower_bound(out.begin(), out.end(), r);
    if (it != out.end() && *it == r) {
      auto jt = std::lower_bound(out.begin(), out.end(), j);
      out.insert(jt, j);
    } else {
      out.insert(it, r);
    }
  }
  return out;
}

Rng Rng::fork() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace congestlb
