// Arithmetic in the prime field GF(p).
//
// Reed-Solomon codewords are polynomial evaluations over a finite field; for
// gadget-sized parameters a prime field found by trial division suffices
// (no need for extension fields: we simply round the alphabet up to the next
// prime, which only enlarges the gadget cliques slightly — see
// codes/params.hpp for the accounting).

#pragma once

#include <cstdint>
#include <vector>

namespace congestlb::codes {

/// GF(p) for prime p. Elements are represented as std::uint64_t in [0, p).
class PrimeField {
 public:
  /// Requires p prime (checked) and p < 2^32 so products fit in uint64.
  explicit PrimeField(std::uint64_t p);

  std::uint64_t order() const { return p_; }

  std::uint64_t add(std::uint64_t a, std::uint64_t b) const;
  std::uint64_t sub(std::uint64_t a, std::uint64_t b) const;
  std::uint64_t mul(std::uint64_t a, std::uint64_t b) const;
  std::uint64_t neg(std::uint64_t a) const;

  /// a^e by square-and-multiply.
  std::uint64_t pow(std::uint64_t a, std::uint64_t e) const;

  /// Multiplicative inverse; requires a != 0 (Fermat: a^(p-2)).
  std::uint64_t inv(std::uint64_t a) const;

  /// Evaluate the polynomial sum_i coeffs[i] * x^i at `x` (Horner).
  std::uint64_t eval_poly(const std::vector<std::uint64_t>& coeffs,
                          std::uint64_t x) const;

 private:
  std::uint64_t reduce_in(std::uint64_t a) const;
  std::uint64_t p_;
};

}  // namespace congestlb::codes
