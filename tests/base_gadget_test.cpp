// The base graph H (Section 4.1, Figure 1): structure counts, adjacency
// pattern between the A clique and the code gadget, and the Figure-1
// worked example (ell = 2, alpha = 1, k = 3).

#include <gtest/gtest.h>

#include <set>

#include "codes/trivial_codes.hpp"
#include "lowerbound/base_gadget.hpp"
#include "maxis/brute_force.hpp"
#include "support/expect.hpp"

namespace congestlb::lb {
namespace {

GadgetParams fig1_params() { return GadgetParams::from_l_alpha(2, 1, 3); }

TEST(BaseGadget, Figure1NodeCount) {
  const BaseGadget h(fig1_params());
  // A has k = 3 nodes; code gadget has (ell+alpha) = 3 cliques of 3 nodes.
  EXPECT_EQ(h.graph().num_nodes(), 12u);
  EXPECT_EQ(h.a_nodes().size(), 3u);
  EXPECT_EQ(h.code_nodes().size(), 9u);
  EXPECT_EQ(h.clique_nodes(0).size(), 3u);
}

TEST(BaseGadget, Figure1EdgeCount) {
  const BaseGadget h(fig1_params());
  // E(A): C(3,2) = 3; code cliques: 3 * 3 = 9;
  // each v_m connects to Code minus Code_m: 3 * (9 - 3) = 18.
  EXPECT_EQ(h.graph().num_edges(), 3u + 9 + 18);
}

TEST(BaseGadget, ACliqueIsComplete) {
  const BaseGadget h(GadgetParams::from_l_alpha(3, 2));
  const auto a = h.a_nodes();
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      EXPECT_TRUE(h.graph().has_edge(a[i], a[j]));
    }
  }
}

TEST(BaseGadget, CodeCliquesAreCompleteAndDisjoint) {
  const GadgetParams p = GadgetParams::from_l_alpha(3, 2);
  const BaseGadget h(p);
  for (std::size_t h1 = 0; h1 < p.num_positions(); ++h1) {
    const auto c = h.clique_nodes(h1);
    for (std::size_t i = 0; i < c.size(); ++i) {
      for (std::size_t j = i + 1; j < c.size(); ++j) {
        EXPECT_TRUE(h.graph().has_edge(c[i], c[j]));
      }
    }
    // No edges between different cliques of the code gadget.
    for (std::size_t h2 = h1 + 1; h2 < p.num_positions(); ++h2) {
      for (graph::NodeId u : c) {
        for (graph::NodeId v : h.clique_nodes(h2)) {
          EXPECT_FALSE(h.graph().has_edge(u, v));
        }
      }
    }
  }
}

TEST(BaseGadget, VmAdjacentToExactlyCodeMinusCodeM) {
  const GadgetParams p = GadgetParams::from_l_alpha(2, 2);
  const BaseGadget h(p);
  for (std::size_t m = 0; m < p.k; ++m) {
    const auto cw = h.codeword_nodes(m);
    const std::set<graph::NodeId> in_cw(cw.begin(), cw.end());
    ASSERT_EQ(cw.size(), p.num_positions());
    for (graph::NodeId u : h.code_nodes()) {
      EXPECT_EQ(h.graph().has_edge(h.a_node(m), u), !in_cw.count(u))
          << "m=" << m << " u=" << u;
    }
  }
}

TEST(BaseGadget, VmPlusCodeMIsIndependent) {
  const GadgetParams p = GadgetParams::from_l_alpha(3, 1);
  const BaseGadget h(p);
  for (std::size_t m = 0; m < p.k; ++m) {
    auto set = h.codeword_nodes(m);
    set.push_back(h.a_node(m));
    EXPECT_TRUE(h.graph().is_independent_set(set)) << "m=" << m;
  }
}

TEST(BaseGadget, MaxIsOfBaseGadgetIsOnePerClique) {
  // In H alone (unit weights) an optimal IS takes one node per code clique
  // plus possibly one A node compatible with them: weight ell+alpha+1 by
  // taking {v_m} + Code_m and nothing else... actually Code_m hits every
  // clique once, so OPT = (ell+alpha) + 1.
  const GadgetParams p = fig1_params();
  const BaseGadget h(p);
  const auto opt = maxis::solve_brute_force(h.graph());
  EXPECT_EQ(opt.weight,
            static_cast<graph::Weight>(p.num_positions() + 1));
}

TEST(BaseGadget, CodewordNodesFollowTheCode) {
  const GadgetParams p = GadgetParams::from_l_alpha(4, 2);
  const BaseGadget h(p);
  for (std::size_t m = 0; m < std::min<std::size_t>(p.k, 10); ++m) {
    const auto& w = h.codeword(m);
    const auto nodes = h.codeword_nodes(m);
    for (std::size_t pos = 0; pos < w.size(); ++pos) {
      EXPECT_EQ(nodes[pos], h.code_node(pos, static_cast<std::size_t>(w[pos])));
    }
  }
}

TEST(BaseGadget, DistinctCodewordsShareFewNodes) {
  // Distance >= ell means distinct codeword node sets overlap in at most
  // alpha positions.
  const GadgetParams p = GadgetParams::from_l_alpha(4, 2);
  const BaseGadget h(p);
  const std::size_t limit = std::min<std::size_t>(p.k, 12);
  for (std::size_t m1 = 0; m1 < limit; ++m1) {
    for (std::size_t m2 = m1 + 1; m2 < limit; ++m2) {
      const auto a = h.codeword_nodes(m1);
      const auto b = h.codeword_nodes(m2);
      std::size_t overlap = 0;
      for (std::size_t pos = 0; pos < a.size(); ++pos) {
        if (a[pos] == b[pos]) ++overlap;
      }
      EXPECT_LE(overlap, p.alpha) << m1 << "," << m2;
    }
  }
}

TEST(BaseGadget, WeakCodeStillBuildsTheSameShape) {
  // A code substitution changes the adjacency pattern, never the layout:
  // the gadget with a padding code has identical node counts and clique
  // structure, only the v_m <-> Code wiring differs.
  const std::size_t ell = 3, alpha = 1, k = 4;
  auto weak = std::make_shared<codes::PaddingCode>(alpha, ell + alpha, k);
  const BaseGadget hw(GadgetParams::with_code(ell, alpha, k, weak));
  const BaseGadget hs(GadgetParams::from_l_alpha(ell, alpha, k));
  EXPECT_EQ(hw.graph().num_nodes(), k + (ell + alpha) * k);
  // Different clique sizes (alphabet k=4 vs prime 5), so different node
  // counts — but per-structure invariants hold for both.
  for (const BaseGadget* h : {&hw, &hs}) {
    const auto& p = h->params();
    for (std::size_t m = 0; m < p.k; ++m) {
      auto set = h->codeword_nodes(m);
      set.push_back(h->a_node(m));
      EXPECT_TRUE(h->graph().is_independent_set(set));
    }
  }
}

TEST(BaseGadget, IndexAccessorsRejectOutOfRange) {
  const BaseGadget h(fig1_params());
  EXPECT_THROW(h.a_node(3), InvariantError);
  EXPECT_THROW(h.code_node(3, 0), InvariantError);
  EXPECT_THROW(h.code_node(0, 3), InvariantError);
  EXPECT_THROW(h.codeword(5), InvariantError);
}

TEST(BaseGadget, LabelsMatchPaperNotation) {
  const BaseGadget h(fig1_params());
  EXPECT_EQ(h.graph().label(h.a_node(0)), "v1");
  EXPECT_EQ(h.graph().label(h.code_node(0, 0)), "s(1,1)");
  EXPECT_EQ(h.graph().label(h.code_node(2, 1)), "s(3,2)");
}

}  // namespace
}  // namespace congestlb::lb
