// Distributed greedy MIS by identifier.
//
// Every round each undecided node tells its neighbors its state; a node
// joins the MIS when its id exceeds the ids of all still-undecided
// neighbors. Deterministic, O(n) rounds worst case, 2 bits per message.
// This is the simplest CONGEST independent-set routine and serves as one of
// the upper-bound baselines contrasted with the paper's hardness results
// (an MIS is only a Delta-approximation to MaxIS in general).

#pragma once

#include <memory>

#include "congest/network.hpp"

namespace congestlb::congest {

/// Factory for Network: one GreedyMisProgram per node.
ProgramFactory greedy_mis_factory();

}  // namespace congestlb::congest
