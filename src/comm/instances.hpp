// Promise pairwise disjointness instances (Definition 2).
//
// t players hold strings x^1..x^t in {0,1}^k with the promise that the
// strings are either (a) uniquely intersecting — some index m has
// x^1_m = ... = x^t_m = 1 — or (b) pairwise disjoint. The function outputs
// TRUE on pairwise-disjoint inputs and FALSE on uniquely-intersecting ones.
//
// Generators produce both branches deterministically from a seed, in two
// flavors: "canonical" intersecting instances that are pairwise disjoint
// away from the witness (the hard distribution used in the CKS lower bound),
// and "loose" ones with arbitrary extra overlaps (still legal per
// Definition 2, and exercised by robustness tests of Claim 3).

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "support/rng.hpp"

namespace congestlb::comm {

enum class PromiseKind : std::uint8_t {
  kUniquelyIntersecting,  ///< f = FALSE
  kPairwiseDisjoint,      ///< f = TRUE
};

struct PromiseInstance {
  std::size_t k = 0;  ///< string length (universe size)
  std::size_t t = 0;  ///< number of players
  /// strings[i][m] in {0,1}: player i's bit for index m.
  std::vector<std::vector<std::uint8_t>> strings;
  PromiseKind kind = PromiseKind::kPairwiseDisjoint;
  /// For intersecting instances: the common index m.
  std::optional<std::size_t> witness;

  /// Ground-truth value of the promise pairwise disjointness function.
  bool answer_is_disjoint() const {
    return kind == PromiseKind::kPairwiseDisjoint;
  }
};

/// How instance classification turned out (used to validate generators and
/// to reject promise violations at API boundaries).
enum class InstanceClass : std::uint8_t {
  kUniquelyIntersecting,
  kPairwiseDisjoint,
  kPromiseViolation,
};

/// Classify arbitrary strings against Definition 2. Strings where both cases
/// hold simultaneously are impossible for t >= 2 unless... they are not:
/// a common index violates pairwise disjointness, so the cases are mutually
/// exclusive; all-zero strings are classified as pairwise disjoint.
InstanceClass classify(const std::vector<std::vector<std::uint8_t>>& strings);

/// Canonical uniquely-intersecting instance: a witness index m set to 1 for
/// every player, all other 1-bits drawn from per-player disjoint chunks of
/// [k] (expected `density` fraction of each chunk). Requires k >= t >= 2.
PromiseInstance make_uniquely_intersecting(std::size_t k, std::size_t t,
                                           Rng& rng, double density = 0.3);

/// Uniquely-intersecting instance with arbitrary extra pairwise overlaps
/// away from the witness (legal per Definition 2's first branch).
PromiseInstance make_loose_intersecting(std::size_t k, std::size_t t, Rng& rng,
                                        double density = 0.3);

/// Pairwise-disjoint instance: each player's 1-bits drawn from its own chunk
/// of [k]. Requires k >= t >= 2.
PromiseInstance make_pairwise_disjoint(std::size_t k, std::size_t t, Rng& rng,
                                       double density = 0.3);

/// Throws InvariantError unless `inst.strings` matches `inst.kind` under
/// classify(); returns the instance by reference for chaining.
const PromiseInstance& validate(const PromiseInstance& inst);

}  // namespace congestlb::comm
