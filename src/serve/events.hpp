// Event hub for the campaign service: the live-progress feed behind
// `clb watch` and the /v1/sweeps/<key>/events SSE endpoint.
//
// The hub is the service-side analogue of the obs trace ring
// (obs/trace.hpp): a bounded ring of structured events with global
// sequence numbers, tailed by cursor exactly like Tracer::events_since —
// a consumer that falls more than `capacity` events behind observes a gap
// (next - since > returned size) instead of blocking the producers.
// Unlike the tracer, producers here are pool worker threads (the per-job
// completion hook of campaign::RunOptions::on_job), so publish/poll are
// fully synchronized, and poll_wait() lets an SSE writer block for new
// events instead of spinning.
//
// Events are deliberately coarse — sweep lifecycle plus one event per
// landed job record — because job records are the unit the manifest is
// made of: a client that has seen every "job" event of a sweep has seen
// the campaign's whole canonical content. Round-level detail stays in the
// obs tracer, which stays per-run; the hub carries the cross-tenant feed.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace congestlb::serve {

/// One feed entry. `seq` is assigned by the hub at publish time and is
/// globally monotone across sweeps; filtering by sweep key preserves the
/// per-sweep order because publication order within a sweep is the job
/// completion order.
struct ServeEvent {
  std::uint64_t seq = 0;
  std::string sweep;    ///< hex16 spec hash (ContentCache::hex_key)
  /// "accepted" | "started" | "job" | "completed" | "failed"
  std::string kind;
  std::string job_id;   ///< kind == "job": the record id
  std::string stage;    ///< kind == "job": build | solve-* | check
  std::string verdict;  ///< kind == "job": built | opt | holds | ...
  std::uint64_t jobs_done = 0;   ///< records landed so far for this sweep
  std::uint64_t jobs_total = 0;  ///< jobs the spec expands to
};

class EventHub {
 public:
  /// `capacity` bounds the ring; 0 is pinned up to 1 (a hub that holds
  /// nothing cannot hand out gap-consistent cursors).
  explicit EventHub(std::size_t capacity);

  EventHub(const EventHub&) = delete;
  EventHub& operator=(const EventHub&) = delete;

  /// Append an event (seq is assigned here; the passed value is ignored).
  /// Thread-safe; wakes every poll_wait()er.
  void publish(ServeEvent ev);

  /// Every held event with seq >= since — all sweeps when `sweep` is
  /// empty, else that sweep's only. *next is set to the seq one past the
  /// newest event held (pass it back as `since` to tail). Thread-safe.
  std::vector<ServeEvent> poll(const std::string& sweep, std::uint64_t since,
                               std::uint64_t* next) const;

  /// poll(), but blocks up to timeout_ms for a matching event when the
  /// immediate answer would be empty. An empty return after the timeout is
  /// the SSE writer's cue to emit a heartbeat and re-check its peer.
  std::vector<ServeEvent> poll_wait(const std::string& sweep,
                                    std::uint64_t since, std::uint64_t* next,
                                    std::uint64_t timeout_ms) const;

  /// Events ever published (== the next seq to be assigned).
  std::uint64_t published() const;

 private:
  std::vector<ServeEvent> poll_locked(const std::string& sweep,
                                      std::uint64_t since,
                                      std::uint64_t* next) const;

  std::size_t capacity_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::vector<ServeEvent> ring_;
  std::size_t head_ = 0;          ///< index of the oldest held event
  std::size_t count_ = 0;         ///< events held
  std::uint64_t published_ = 0;   ///< events ever published
};

}  // namespace congestlb::serve
