// Metrics registry: named monotonic counters, gauges, and fixed-bucket
// histograms for every layer of the library.
//
// Registration (MetricsRegistry::counter/gauge/histogram) is a serial-time
// operation that may allocate; updates (Counter::add, Histogram::observe,
// Gauge::set) are the hot-path operations and never allocate. Counters and
// histograms are sharded: each holds one cache-line-padded cell per engine
// shard, a worker thread writes only its own shard's cell (lock-free by
// construction — disjoint memory, no atomics needed), and reads merge the
// cells in shard index order. Because every merged quantity is an integer
// sum, the merged value is independent of the shard partition — the same
// argument that makes RunStats bit-identical across thread counts extends
// to every metric (engine_determinism_test / obs_property_test).
//
// Naming convention: dot-separated lowercase paths, "layer.thing[.detail]"
// — e.g. "engine.bits_delivered", "blackboard.player0.bits",
// "lb.linear.bounds". docs/OBSERVABILITY.md lists every name the library
// emits.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace congestlb::obs {

/// Monotonic counter with per-shard cells. add() from shard s touches only
/// cell s; value() sums cells in shard order.
class Counter {
 public:
  const std::string& name() const { return name_; }

  void add(std::uint64_t v, std::size_t shard = 0) { cells_[shard].v += v; }
  void inc(std::size_t shard = 0) { add(1, shard); }

  /// Merged total (shard-order sum).
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v;
    return total;
  }

 private:
  friend class MetricsRegistry;
  struct alignas(64) Cell {
    std::uint64_t v = 0;
  };

  explicit Counter(std::string name) : name_(std::move(name)), cells_(1) {}

  std::string name_;
  std::vector<Cell> cells_;
};

/// Last-write-wins signed gauge. Serial contexts only (the engine sets
/// gauges between rounds, never from worker threads).
class Gauge {
 public:
  const std::string& name() const { return name_; }

  void set(std::int64_t v) { value_ = v; }
  std::int64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::int64_t value_ = 0;
};

/// Fixed-bucket histogram with per-shard cells. Bucket i counts samples
/// <= upper_bounds[i] (ascending); one implicit overflow bucket catches the
/// rest. observe() is a linear scan over the (few) bounds plus three
/// increments — allocation-free.
class Histogram {
 public:
  const std::string& name() const { return name_; }
  const std::vector<std::uint64_t>& upper_bounds() const { return bounds_; }

  void observe(std::uint64_t v, std::size_t shard = 0) {
    Cell& c = cells_[shard];
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    c.counts[i] += 1;
    c.count += 1;
    c.sum += v;
  }

  /// Merged per-bucket counts (size = upper_bounds().size() + 1; the last
  /// entry is the overflow bucket), summed in shard order.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const;
  std::uint64_t sum() const;

 private:
  friend class MetricsRegistry;
  struct alignas(64) Cell {
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
  };

  Histogram(std::string name, std::vector<std::uint64_t> bounds);

  std::string name_;
  std::vector<std::uint64_t> bounds_;
  std::vector<Cell> cells_;
};

/// Owns metrics by name; hands out stable references. Instruments cache the
/// reference at setup time and update through it on the hot path.
class MetricsRegistry {
 public:
  /// num_shards sizes the per-shard cells of every instrument; grow later
  /// with ensure_shards (the engine calls it when it binds the registry).
  explicit MetricsRegistry(std::size_t num_shards = 1);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. References stay valid for the registry's lifetime.
  /// Serial contexts only (setup, not hot paths).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// upper_bounds must be ascending and non-empty. Re-requesting an
  /// existing histogram returns it unchanged (bounds are fixed at birth).
  Histogram& histogram(std::string_view name,
                       std::vector<std::uint64_t> upper_bounds);

  /// Grow every instrument to at least n shard cells. Serial contexts only
  /// — must not race with hot-path updates.
  void ensure_shards(std::size_t n);
  std::size_t num_shards() const { return num_shards_; }

  // Registration-ordered views for exporters.
  const std::vector<std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::vector<std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::vector<std::unique_ptr<Histogram>>& histograms() const {
    return histograms_;
  }

 private:
  std::size_t num_shards_;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
  std::unordered_map<std::string, Counter*> counter_index_;
  std::unordered_map<std::string, Gauge*> gauge_index_;
  std::unordered_map<std::string, Histogram*> histogram_index_;
};

/// The process-wide registry library internals report to when no explicit
/// registry is injected (e.g. the per-gadget-family counters in
/// lowerbound/framework.cpp). Single-sharded; serial call sites only.
MetricsRegistry& default_registry();

}  // namespace congestlb::obs
