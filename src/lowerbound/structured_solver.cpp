#include "lowerbound/structured_solver.hpp"

#include <algorithm>

#include "support/expect.hpp"

namespace congestlb::lb {

namespace {

constexpr int kNone = -1;

/// Incremental state for one code block: per-position symbol counts of the
/// constrained copies, the per-position max count, and the number of
/// unconstrained ("free") copies — enough to evaluate
///   sum_h (free + max_r cnt[h][r])
/// in O(1) amortized via a running total.
class BlockState {
 public:
  BlockState(std::size_t positions, std::size_t symbols)
      : positions_(positions),
        symbols_(symbols),
        cnt_(positions * symbols, 0),
        curmax_(positions, 0) {}

  void add_free() { ++free_; }
  void remove_free() { --free_; }

  /// Register a constrained copy with codeword `w`; returns the positions'
  /// previous maxima so the caller can undo.
  void add_codeword(const codes::Word& w, std::vector<std::size_t>& saved) {
    saved.resize(positions_);
    for (std::size_t h = 0; h < positions_; ++h) {
      saved[h] = curmax_[h];
      const std::size_t c = ++cnt_[h * symbols_ + w[h]];
      if (c > curmax_[h]) {
        code_sum_ += c - curmax_[h];
        curmax_[h] = c;
      }
    }
  }

  void remove_codeword(const codes::Word& w,
                       const std::vector<std::size_t>& saved) {
    for (std::size_t h = 0; h < positions_; ++h) {
      --cnt_[h * symbols_ + w[h]];
      code_sum_ -= curmax_[h] - saved[h];
      curmax_[h] = saved[h];
    }
  }

  /// sum_h (free + max_r cnt[h][r]) for the current assignment.
  std::size_t value(std::size_t /*t*/) const {
    return code_sum_ + free_ * positions_;
  }

  /// For witness reconstruction: the symbol achieving the max at h.
  std::size_t best_symbol(std::size_t h) const {
    std::size_t best_r = 0, best_c = 0;
    for (std::size_t r = 0; r < symbols_; ++r) {
      if (cnt_[h * symbols_ + r] > best_c) {
        best_c = cnt_[h * symbols_ + r];
        best_r = r;
      }
    }
    return best_r;
  }

  std::size_t count_at(std::size_t h, std::size_t r) const {
    return cnt_[h * symbols_ + r];
  }

 private:
  std::size_t positions_;
  std::size_t symbols_;
  std::vector<std::size_t> cnt_;
  std::vector<std::size_t> curmax_;
  std::size_t code_sum_ = 0;  ///< sum_h curmax_[h]
  std::size_t free_ = 0;
};

std::uint64_t pow_guard(std::uint64_t base, std::size_t exp,
                        std::uint64_t limit) {
  std::uint64_t v = 1;
  for (std::size_t i = 0; i < exp; ++i) {
    CLB_EXPECT(v <= limit / base,
               "structured solver: tuple budget exceeded — reduce k or t, or "
               "raise max_tuples");
    v *= base;
  }
  return v;
}

}  // namespace

maxis::IsSolution solve_linear_structured(const LinearConstruction& c,
                                          const comm::PromiseInstance& inst,
                                          std::uint64_t max_tuples) {
  comm::validate(inst);
  const auto& p = c.params();
  CLB_EXPECT(inst.k == p.k && inst.t == c.num_players(),
             "structured solver: instance shape mismatch");
  const std::size_t t = c.num_players();
  const std::size_t m_pos = p.num_positions();
  const std::size_t symbols = p.clique_size();
  pow_guard(p.k + 1, t, max_tuples);

  // Codewords and per-copy clique-node weights.
  std::vector<codes::Word> cw(p.k);
  const BaseGadget base(p);
  for (std::size_t m = 0; m < p.k; ++m) cw[m] = base.codeword(m);
  auto weight_of = [&](std::size_t i, std::size_t m) -> graph::Weight {
    return inst.strings[i][m] ? static_cast<graph::Weight>(p.ell) : 1;
  };

  BlockState block(m_pos, symbols);
  std::vector<int> assign(t, kNone), best_assign(t, kNone);
  graph::Weight best = -1;
  std::vector<std::vector<std::size_t>> saved(t);

  // Depth-first over per-copy choices with an optimistic-completion prune:
  // a remaining copy contributes at most ell (clique node) + m_pos (one
  // code node per position).
  const graph::Weight per_copy_cap =
      static_cast<graph::Weight>(p.ell + m_pos);
  auto recurse = [&](auto&& self, std::size_t i,
                     graph::Weight clique_weight) -> void {
    const auto code_now = static_cast<graph::Weight>(block.value(t));
    if (i == t) {
      const graph::Weight total = clique_weight + code_now;
      if (total > best) {
        best = total;
        best_assign = assign;
      }
      return;
    }
    const graph::Weight optimistic =
        clique_weight + code_now +
        static_cast<graph::Weight>(t - i) * per_copy_cap;
    if (optimistic <= best) return;

    // Option: copy i takes no clique node.
    assign[i] = kNone;
    block.add_free();
    self(self, i + 1, clique_weight);
    block.remove_free();

    // Option: copy i takes v^i_m.
    for (std::size_t m = 0; m < p.k; ++m) {
      assign[i] = static_cast<int>(m);
      block.add_codeword(cw[m], saved[i]);
      self(self, i + 1, clique_weight + weight_of(i, m));
      block.remove_codeword(cw[m], saved[i]);
    }
    assign[i] = kNone;
  };
  recurse(recurse, 0, 0);

  // Reconstruct the witness: replay the best assignment, then per position
  // take the majority symbol among constrained copies; free copies always
  // join it.
  for (std::size_t i = 0; i < t; ++i) {
    if (best_assign[i] != kNone) {
      block.add_codeword(cw[static_cast<std::size_t>(best_assign[i])],
                         saved[i]);
    }
  }
  std::vector<graph::NodeId> witness;
  for (std::size_t i = 0; i < t; ++i) {
    if (best_assign[i] != kNone) {
      witness.push_back(c.a_node(i, static_cast<std::size_t>(best_assign[i])));
    }
  }
  for (std::size_t h = 0; h < m_pos; ++h) {
    const std::size_t r = block.best_symbol(h);
    for (std::size_t i = 0; i < t; ++i) {
      if (best_assign[i] == kNone) {
        witness.push_back(c.code_node(i, h, r));
      } else if (cw[static_cast<std::size_t>(best_assign[i])][h] == r) {
        witness.push_back(c.code_node(i, h, r));
      }
    }
  }
  const graph::Graph gx = c.instantiate(inst);
  maxis::IsSolution sol = maxis::checked(gx, std::move(witness));
  CLB_EXPECT(sol.weight == best,
             "structured solver: witness weight disagrees with search value");
  return sol;
}

maxis::IsSolution solve_quadratic_structured(const QuadraticConstruction& c,
                                             const comm::PromiseInstance& inst,
                                             std::uint64_t max_tuples) {
  comm::validate(inst);
  const auto& p = c.params();
  CLB_EXPECT(inst.k == c.string_length() && inst.t == c.num_players(),
             "structured solver: instance shape mismatch");
  const std::size_t t = c.num_players();
  const std::size_t m_pos = p.num_positions();
  const std::size_t symbols = p.clique_size();
  pow_guard((p.k + 1) * (p.k + 1), t, max_tuples);

  std::vector<codes::Word> cw(p.k);
  const BaseGadget base(p);
  for (std::size_t m = 0; m < p.k; ++m) cw[m] = base.codeword(m);

  // Legal per-copy choices: (m1 or none, m2 or none); both chosen requires
  // the input bit x^i_(m1,m2) = 1 (otherwise the input edge forbids it).
  auto pair_allowed = [&](std::size_t i, int m1, int m2) {
    if (m1 == kNone || m2 == kNone) return true;
    return inst.strings[i][c.pair_index(static_cast<std::size_t>(m1),
                                        static_cast<std::size_t>(m2))] != 0;
  };

  BlockState block1(m_pos, symbols), block2(m_pos, symbols);
  std::vector<std::pair<int, int>> assign(t, {kNone, kNone});
  std::vector<std::pair<int, int>> best_assign = assign;
  graph::Weight best = -1;
  std::vector<std::vector<std::size_t>> saved1(t), saved2(t);

  const graph::Weight per_copy_cap =
      static_cast<graph::Weight>(2 * p.ell + 2 * m_pos);
  auto recurse = [&](auto&& self, std::size_t i,
                     graph::Weight clique_weight) -> void {
    const auto code_now =
        static_cast<graph::Weight>(block1.value(t) + block2.value(t));
    if (i == t) {
      const graph::Weight total = clique_weight + code_now;
      if (total > best) {
        best = total;
        best_assign = assign;
      }
      return;
    }
    const graph::Weight optimistic =
        clique_weight + code_now +
        static_cast<graph::Weight>(t - i) * per_copy_cap;
    if (optimistic <= best) return;

    for (int m1 = kNone; m1 < static_cast<int>(p.k); ++m1) {
      if (m1 == kNone) {
        block1.add_free();
      } else {
        block1.add_codeword(cw[static_cast<std::size_t>(m1)], saved1[i]);
      }
      for (int m2 = kNone; m2 < static_cast<int>(p.k); ++m2) {
        if (!pair_allowed(i, m1, m2)) continue;
        if (m2 == kNone) {
          block2.add_free();
        } else {
          block2.add_codeword(cw[static_cast<std::size_t>(m2)], saved2[i]);
        }
        assign[i] = {m1, m2};
        const graph::Weight dw =
            static_cast<graph::Weight>(p.ell) *
            ((m1 != kNone ? 1 : 0) + (m2 != kNone ? 1 : 0));
        self(self, i + 1, clique_weight + dw);
        if (m2 == kNone) {
          block2.remove_free();
        } else {
          block2.remove_codeword(cw[static_cast<std::size_t>(m2)], saved2[i]);
        }
      }
      if (m1 == kNone) {
        block1.remove_free();
      } else {
        block1.remove_codeword(cw[static_cast<std::size_t>(m1)], saved1[i]);
      }
      assign[i] = {kNone, kNone};
    }
  };
  recurse(recurse, 0, 0);

  // Witness reconstruction, per block.
  for (std::size_t i = 0; i < t; ++i) {
    if (best_assign[i].first != kNone) {
      block1.add_codeword(cw[static_cast<std::size_t>(best_assign[i].first)],
                          saved1[i]);
    }
    if (best_assign[i].second != kNone) {
      block2.add_codeword(cw[static_cast<std::size_t>(best_assign[i].second)],
                          saved2[i]);
    }
  }
  std::vector<graph::NodeId> witness;
  for (std::size_t i = 0; i < t; ++i) {
    if (best_assign[i].first != kNone) {
      witness.push_back(
          c.a_node(i, 0, static_cast<std::size_t>(best_assign[i].first)));
    }
    if (best_assign[i].second != kNone) {
      witness.push_back(
          c.a_node(i, 1, static_cast<std::size_t>(best_assign[i].second)));
    }
  }
  for (std::size_t b = 0; b < 2; ++b) {
    const BlockState& block = b == 0 ? block1 : block2;
    for (std::size_t h = 0; h < m_pos; ++h) {
      const std::size_t r = block.best_symbol(h);
      for (std::size_t i = 0; i < t; ++i) {
        const int choice =
            b == 0 ? best_assign[i].first : best_assign[i].second;
        if (choice == kNone ||
            cw[static_cast<std::size_t>(choice)][h] == r) {
          witness.push_back(c.code_node(i, b, h, r));
        }
      }
    }
  }
  const graph::Graph fx = c.instantiate(inst);
  maxis::IsSolution sol = maxis::checked(fx, std::move(witness));
  CLB_EXPECT(sol.weight == best,
             "structured solver: witness weight disagrees with search value");
  return sol;
}

}  // namespace congestlb::lb
