// Google-benchmark microbenchmarks for the hot substrates: Reed-Solomon
// encoding, Hopcroft-Karp on the Figure-2 anti-matchings, branch-and-bound
// on gadget instances, gadget construction itself, blackboard posting, the
// engine's Topology snapshot / bulk graph build, and raw CONGEST round
// throughput.
//
// A custom main (bottom of file) mirrors the console run into
// BENCH_micro.json — google-benchmark's own JSON format — so CI can archive
// the numbers alongside BENCH_simulation.json (see docs/PERFORMANCE.md).

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "codes/params.hpp"
#include "comm/blackboard.hpp"
#include "comm/exact_cc.hpp"
#include "comm/instances.hpp"
#include "congest/algorithms/greedy_mis.hpp"
#include "congest/network.hpp"
#include "congest/topology.hpp"
#include "graph/generators.hpp"
#include "graph/matching.hpp"
#include "lowerbound/linear_family.hpp"
#include "lowerbound/structured_solver.hpp"
#include "maxis/branch_and_bound.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"

namespace clb = congestlb;

namespace {

void BM_ReedSolomonEncode(benchmark::State& state) {
  const auto gc = clb::codes::make_gadget_code(
      static_cast<std::size_t>(state.range(0)), 2);
  std::uint64_t m = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gc.code->encode_index(m));
    m = (m + 1) % gc.max_messages;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReedSolomonEncode)->Arg(6)->Arg(12)->Arg(24);

void BM_AntiMatchingHopcroftKarp(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t a = 0; a < p; ++a) {
    for (std::size_t b = 0; b < p; ++b) {
      if (a != b) edges.emplace_back(a, b);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(clb::graph::max_bipartite_matching(p, p, edges));
  }
}
BENCHMARK(BM_AntiMatchingHopcroftKarp)->Arg(8)->Arg(32)->Arg(128);

void BM_LinearConstructionBuild(benchmark::State& state) {
  const auto p = clb::lb::GadgetParams::from_l_alpha(
      static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    clb::lb::LinearConstruction c(p, 3);
    benchmark::DoNotOptimize(c.fixed_graph().num_edges());
  }
}
BENCHMARK(BM_LinearConstructionBuild)->Arg(3)->Arg(6)->Arg(10);

void BM_ExactMaxIsOnGadget(benchmark::State& state) {
  const std::size_t t = static_cast<std::size_t>(state.range(0));
  const auto p = clb::lb::GadgetParams::for_linear_separation(t, 1);
  const clb::lb::LinearConstruction c(p, t);
  clb::Rng rng(5);
  const auto inst = clb::comm::make_pairwise_disjoint(p.k, t, rng, 0.4);
  const auto g = c.instantiate(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clb::maxis::solve_exact(g).weight);
  }
}
BENCHMARK(BM_ExactMaxIsOnGadget)->Arg(2)->Arg(3)->Arg(4);

void BM_BlackboardPost(benchmark::State& state) {
  for (auto _ : state) {
    clb::comm::Blackboard board(4);
    for (int i = 0; i < 64; ++i) {
      board.post_uint(static_cast<std::size_t>(i % 4),
                      static_cast<std::uint64_t>(i), 16);
    }
    benchmark::DoNotOptimize(board.total_bits());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_BlackboardPost);

void BM_CongestRoundThroughput(benchmark::State& state) {
  // Greedy MIS on a cycle: measures simulator round overhead.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  clb::graph::Graph g(n);
  for (clb::graph::NodeId v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  for (auto _ : state) {
    clb::congest::Network net(g, clb::congest::greedy_mis_factory());
    const auto stats = net.run();
    benchmark::DoNotOptimize(stats.rounds);
  }
}
BENCHMARK(BM_CongestRoundThroughput)->Arg(64)->Arg(256)->Arg(1024);

void BM_StructuredSolver(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const auto p = clb::lb::GadgetParams::from_l_alpha(8, 2, k);
  const clb::lb::LinearConstruction c(p, 2);
  clb::Rng rng(9);
  const auto inst = clb::comm::make_pairwise_disjoint(k, 2, rng, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clb::lb::solve_linear_structured(c, inst).weight);
  }
}
BENCHMARK(BM_StructuredSolver)->Arg(25)->Arg(50)->Arg(100);

void BM_ExactCcDisjointness(benchmark::State& state) {
  const auto f = clb::comm::disjointness_matrix(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(clb::comm::exact_deterministic_cc(f));
  }
}
BENCHMARK(BM_ExactCcDisjointness)->Arg(2)->Arg(3);

void BM_PromiseInstanceGeneration(benchmark::State& state) {
  clb::Rng rng(1);
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        clb::comm::make_uniquely_intersecting(k, 4, rng, 0.3));
  }
}
BENCHMARK(BM_PromiseInstanceGeneration)->Arg(1024)->Arg(16384);

void BM_TopologyBuild(benchmark::State& state) {
  // The per-Network cost of the CSR + reverse-slot snapshot (topology.hpp).
  clb::Rng rng(3);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto g = clb::graph::gnp_random_connected(rng, n, 8.0 / static_cast<double>(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(clb::congest::Topology::build(g));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_TopologyBuild)->Arg(256)->Arg(1024)->Arg(4096);

void BM_BulkGraphBuild(benchmark::State& state) {
  // Batch add_edges (append-unsorted, sort once) on a gnp edge list.
  clb::Rng rng(4);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto src =
      clb::graph::gnp_random_connected(rng, n, 16.0 / static_cast<double>(n));
  const auto edges = clb::graph::edge_list(src);
  for (auto _ : state) {
    clb::graph::Graph g(n);
    g.reserve_edges(edges.size());
    g.add_edges(edges);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(edges.size()));
}
BENCHMARK(BM_BulkGraphBuild)->Arg(1024)->Arg(8192);

/// Floods a 16-bit payload forever — the steady-state arena workload.
class MicroFlood final : public clb::congest::NodeProgram {
 public:
  void round(const clb::congest::NodeInfo& info,
             const clb::congest::Inbox& inbox, clb::congest::Outbox& outbox,
             clb::Rng&) override {
    for (const auto& m : inbox) {
      if (m) ++heard_;
    }
    if (!info.neighbors.empty()) {
      outbox.send_all(std::move(clb::congest::MessageWriter()
                                    .put(info.id & 0xFFFF, 16))
                          .finish());
    }
  }
  bool finished() const override { return false; }

 private:
  std::size_t heard_ = 0;
};

void BM_EngineSteadyRound(benchmark::State& state) {
  // One iteration = one allocation-free round of the rewritten engine
  // (arena reuse, pull-based delivery). range(1) = num_threads.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  clb::Rng rng(5);
  const auto g =
      clb::graph::gnp_random_connected(rng, n, 8.0 / static_cast<double>(n));
  clb::congest::NetworkConfig cfg;
  cfg.bits_per_edge = 16;
  cfg.max_rounds = 1'000'000'000;
  cfg.num_threads = static_cast<std::size_t>(state.range(1));
  clb::congest::Network net(g, [](clb::graph::NodeId,
                                  const clb::congest::NodeInfo&) {
    return std::make_unique<MicroFlood>();
  }, cfg);
  net.run_rounds(4);  // warm-up
  for (auto _ : state) {
    net.run_rounds(1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2 * static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_EngineSteadyRound)
    ->Args({1024, 1})
    ->Args({1024, 2})
    ->Args({1024, 4})
    ->Args({4096, 1})
    ->Args({4096, 4});

void BM_TraceEmit(benchmark::State& state) {
  // Raw cost of one ring push (the per-event price every traced delivery
  // pays). The ring wraps constantly, so this includes overwrite-oldest.
  if (!clb::obs::trace_compiled_in()) {
    state.SkipWithError("CONGESTLB_TRACE=0");
    return;
  }
  clb::obs::Tracer tracer({.capacity = std::size_t{1} << 12});
  std::uint32_t r = 0;
  for (auto _ : state) {
    tracer.emit({16, r++, 3, 5, clb::obs::EventKind::kDeliver});
  }
  benchmark::DoNotOptimize(tracer.recorded());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceEmit);

void BM_TraceStageAndSeal(benchmark::State& state) {
  // The engine's actual path: range(0) staged events per shard across 4
  // shards, then the deterministic phase-major/shard-ascending seal.
  if (!clb::obs::trace_compiled_in()) {
    state.SkipWithError("CONGESTLB_TRACE=0");
    return;
  }
  const std::uint32_t per_shard = static_cast<std::uint32_t>(state.range(0));
  constexpr std::size_t kShards = 4;
  clb::obs::Tracer tracer({.capacity = std::size_t{1} << 16});
  tracer.bind(kShards, per_shard);
  for (auto _ : state) {
    for (std::size_t s = 0; s < kShards; ++s) {
      for (std::uint32_t i = 0; i < per_shard; ++i) {
        tracer.emit_shard(1, s, {16, 0, i, i + 1,
                                 clb::obs::EventKind::kDeliver});
      }
    }
    tracer.seal_round();
  }
  benchmark::DoNotOptimize(tracer.recorded());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kShards * per_shard));
}
BENCHMARK(BM_TraceStageAndSeal)->Arg(16)->Arg(256);

void BM_MetricsCounterAdd(benchmark::State& state) {
  // Sharded-cell counter increment — the metrics price on the hot path.
  clb::obs::MetricsRegistry reg(4);
  clb::obs::Counter& c = reg.counter("bench.count");
  std::size_t shard = 0;
  for (auto _ : state) {
    c.add(1, shard);
    shard = (shard + 1) & 3;
  }
  benchmark::DoNotOptimize(c.value());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsCounterAdd);

void BM_EngineSteadyRoundTraced(benchmark::State& state) {
  // BM_EngineSteadyRound with a live tracer (sends recorded, every round
  // sampled) and metrics attached; compare against the untraced series for
  // the per-round observability overhead. range(1) = num_threads.
  if (!clb::obs::trace_compiled_in()) {
    state.SkipWithError("CONGESTLB_TRACE=0");
    return;
  }
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  clb::Rng rng(5);
  const auto g =
      clb::graph::gnp_random_connected(rng, n, 8.0 / static_cast<double>(n));
  clb::obs::Tracer tracer(
      {.capacity = std::size_t{1} << 16, .record_sends = true});
  clb::obs::MetricsRegistry metrics;
  clb::congest::NetworkConfig cfg;
  cfg.bits_per_edge = 16;
  cfg.max_rounds = 1'000'000'000;
  cfg.num_threads = static_cast<std::size_t>(state.range(1));
  cfg.tracer = &tracer;
  cfg.metrics = &metrics;
  clb::congest::Network net(g, [](clb::graph::NodeId,
                                  const clb::congest::NodeInfo&) {
    return std::make_unique<MicroFlood>();
  }, cfg);
  net.run_rounds(4);  // warm-up
  for (auto _ : state) {
    net.run_rounds(1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2 * static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_EngineSteadyRoundTraced)
    ->Args({1024, 1})
    ->Args({1024, 4});

// ------------------------------------------------ SIMD kernel variants --
// One row per (kernel, level) for every level this build + CPU supports,
// registered dynamically in main (BM_SimdPack/scalar, BM_SimdPack/avx2,
// ...). The scalar rows double as the portable baseline that
// check_bench_regression.py holds the fallback path to.

/// Multi-field payload packing through the level's pack_bits (the
/// MessageWriter::put hot loop).
void BM_SimdPack(benchmark::State& state, clb::simd::Level level) {
  static constexpr std::size_t kWidths[] = {16, 7, 33, 12, 64, 5, 24, 9};
  std::size_t total_bits = 0;
  for (std::size_t w : kWidths) total_bits += w;
  const std::size_t bytes = (total_bits + 7) / 8 + clb::simd::kPackSlackBytes;
  std::vector<std::byte> buf(bytes);
  const clb::simd::ScopedLevel forced(level);
  const clb::simd::Kernels& k = clb::simd::kernels();
  std::uint64_t s = 1;
  for (auto _ : state) {
    std::memset(buf.data(), 0, bytes);
    std::size_t pos = 0;
    for (std::size_t width : kWidths) {
      const std::uint64_t value =
          (s++ * 0x9E3779B97F4A7C15ULL) &
          (width == 64 ? ~0ULL : (1ULL << width) - 1);
      k.pack_bits(buf.data(), pos, value, width);
      pos += width;
    }
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(std::size(kWidths)));
}

/// Bulk delivery accounting over 16Ki directed slots (the network.cpp
/// fault-free fast path: delivered count, bits total, per-slot bits).
void BM_SimdDeliverAccount(benchmark::State& state, clb::simd::Level level) {
  constexpr std::size_t kSlots = 16384;
  std::vector<std::uint8_t> kinds(kSlots);
  std::vector<std::uint32_t> bits(kSlots);
  std::vector<std::uint64_t> acc(kSlots, 0);
  clb::Rng rng(11);
  for (std::size_t i = 0; i < kSlots; ++i) {
    kinds[i] = rng.chance(0.8) ? 1 : 0;
    bits[i] = kinds[i] != 0 ? 16 : 0;
  }
  const clb::simd::ScopedLevel forced(level);
  const clb::simd::Kernels& k = clb::simd::kernels();
  for (auto _ : state) {
    benchmark::DoNotOptimize(k.count_nonzero_u8(kinds.data(), kSlots));
    benchmark::DoNotOptimize(k.sum_u32(bits.data(), kSlots));
    k.accumulate_u32_to_u64(acc.data(), bits.data(), kSlots);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kSlots));
}

/// Candidate-row intersection + clique-cover domination probe on 4096-word
/// rows (the BnB inner loop at scale).
void BM_SimdIntersectPopcount(benchmark::State& state,
                              clb::simd::Level level) {
  constexpr std::size_t kWords = 4096;
  clb::Rng rng(42);
  std::vector<std::uint64_t> a(kWords), b(kWords), dst(kWords);
  for (std::size_t w = 0; w < kWords; ++w) {
    a[w] = rng.next();
    b[w] = rng.next() | rng.next();
  }
  const clb::simd::ScopedLevel forced(level);
  const clb::simd::Kernels& k = clb::simd::kernels();
  for (auto _ : state) {
    k.and_rows(dst.data(), a.data(), b.data(), kWords);
    benchmark::DoNotOptimize(k.and_popcount(dst.data(), b.data(), kWords));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kWords));
}

/// First-set-bit scan over a mostly-empty 4096-word row (the branching
/// vertex pick on a sparse candidate set).
void BM_SimdFirstBitScan(benchmark::State& state, clb::simd::Level level) {
  constexpr std::size_t kWords = 4096;
  std::vector<std::uint64_t> row(kWords, 0);
  row[kWords - 3] = 1ULL << 17;
  const clb::simd::ScopedLevel forced(level);
  const clb::simd::Kernels& k = clb::simd::kernels();
  for (auto _ : state) {
    benchmark::DoNotOptimize(k.first_bit(row.data(), kWords, kWords * 64));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kWords));
}

/// Register one row per supported level for each SIMD kernel bench.
void register_simd_benchmarks() {
  using clb::simd::Level;
  for (Level level : {Level::kScalar, Level::kAvx2, Level::kAvx512}) {
    if (!clb::simd::level_supported(level)) continue;
    const std::string suffix = clb::simd::level_name(level);
    benchmark::RegisterBenchmark(("BM_SimdPack/" + suffix).c_str(),
                                 BM_SimdPack, level);
    benchmark::RegisterBenchmark(("BM_SimdDeliverAccount/" + suffix).c_str(),
                                 BM_SimdDeliverAccount, level);
    benchmark::RegisterBenchmark(
        ("BM_SimdIntersectPopcount/" + suffix).c_str(),
        BM_SimdIntersectPopcount, level);
    benchmark::RegisterBenchmark(("BM_SimdFirstBitScan/" + suffix).c_str(),
                                 BM_SimdFirstBitScan, level);
  }
}

}  // namespace

// Custom main: unless the caller chose their own output file, mirror the
// console run into BENCH_micro.json (google-benchmark's JSON schema) for
// the CI artifact, by injecting the corresponding benchmark flags.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  register_simd_benchmarks();
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
